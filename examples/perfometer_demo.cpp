// perfometer: the Fig. 2 view.  Attach to a running multi-phase program
// and trace FLOP/s in real time; the FP bursts of phase_fp alternate
// with the silent memory and branch phases.
#include <cstdio>
#include <memory>

#include "sim/kernels.h"
#include "substrate/sim_substrate.h"
#include "tools/perfometer.h"

using namespace papirepro;

int main() {
  sim::Workload workload = sim::make_multiphase(6, 25'000);
  sim::Machine machine(workload.program, pmu::sim_x86().machine);
  workload.setup(machine);
  papi::SimSubstrateOptions options;
  options.charge_costs = false;
  papi::Library library(std::make_unique<papi::SimSubstrate>(
      machine, pmu::sim_x86(), options));

  tools::Perfometer meter(library,
                          papi::EventId::preset(papi::Preset::kFpOps),
                          /*interval_cycles=*/8'000);
  if (auto s = meter.start(); !s.ok()) {
    std::fprintf(stderr, "perfometer: %s\n", s.message().data());
    return 1;
  }
  machine.run();
  (void)meter.stop();

  std::printf("perfometer: PAPI_FP_OPS rate over time "
              "(multiphase program, sim-x86)\n\n");
  std::printf("%s\n", meter.render_ascii(72, 12).c_str());
  std::printf("%zu samples; first CSV lines of the off-line trace:\n",
              meter.trace().size());
  const std::string csv = meter.to_csv();
  std::size_t shown = 0, pos = 0;
  while (shown < 6 && pos < csv.size()) {
    const std::size_t nl = csv.find('\n', pos);
    std::printf("  %s\n", csv.substr(pos, nl - pos).c_str());
    pos = nl + 1;
    ++shown;
  }
  return 0;
}
