// TAU-style many-metric collection: more events than hardware counters,
// gathered in one run via explicitly-enabled multiplexing (Section 2's
// design decision), with the estimation caveat demonstrated by printing
// the same measurement from a run that is too short.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/library.h"
#include "sim/kernels.h"
#include "substrate/sim_substrate.h"

using namespace papirepro;

namespace {

void run_once(std::int64_t n, const char* label) {
  sim::Workload workload = sim::make_saxpy(n);
  sim::Machine machine(workload.program, pmu::sim_x86().machine);
  workload.setup(machine);
  papi::SimSubstrateOptions options;
  options.charge_costs = false;
  papi::Library library(std::make_unique<papi::SimSubstrate>(
      machine, pmu::sim_x86(), options));

  auto handle = library.create_event_set();
  papi::EventSet* set = library.event_set(handle.value()).value();
  if (auto s = set->enable_multiplex(/*slice_cycles=*/25'000); !s.ok()) {
    std::fprintf(stderr, "multiplex: %s\n", s.message().data());
    return;
  }
  std::vector<papi::Preset> added;
  for (papi::Preset p : library.available_presets()) {
    if (set->add_preset(p).ok()) added.push_back(p);
  }
  std::printf("%s: %zu metrics on %u counters (%zu mux groups)\n", label,
              added.size(), library.num_counters(),
              set->num_mux_groups());

  (void)set->start();
  machine.run();
  std::vector<long long> values(added.size());
  (void)set->stop(values);

  for (std::size_t i = 0; i < added.size(); ++i) {
    std::printf("  %-14s %14lld\n", papi::preset_name(added[i]).data(),
                values[i]);
  }
  std::printf("  (truth: FMA=%lld LD=%lld SR=%lld)\n\n",
              static_cast<long long>(n), static_cast<long long>(2 * n),
              static_cast<long long>(n));
}

}  // namespace

int main() {
  std::printf("multiplex demo: ~20 PAPI presets at once on 4 x86-style "
              "counters\n\n");
  run_once(400'000, "long run (estimates converge)");
  run_once(2'000, "short run (estimates NOT trustworthy - the paper's "
                  "accuracy caveat)");
  return 0;
}
