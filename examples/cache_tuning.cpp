// The canonical PAPI application-tuning story: use hardware counters to
// see *why* a blocked matrix multiply beats the naive loop order.  Runs
// both kernels over a sweep of block sizes and prints the cache events
// and cycle counts side by side.
#include <cstdio>
#include <memory>

#include "core/library.h"
#include "sim/kernels.h"
#include "substrate/sim_substrate.h"

using namespace papirepro;

namespace {

struct Row {
  const char* name;
  long long cycles, l1_dcm, l2_tcm, fma;
};

Row measure(const sim::Workload& workload, const char* name) {
  sim::Machine machine(workload.program, pmu::sim_x86().machine);
  if (workload.setup) workload.setup(machine);
  papi::SimSubstrateOptions options;
  options.charge_costs = false;
  papi::Library library(std::make_unique<papi::SimSubstrate>(
      machine, pmu::sim_x86(), options));

  auto handle = library.create_event_set();
  papi::EventSet* set = library.event_set(handle.value()).value();
  // 4 events, but L1_DCM/L2_TCM/FMA + cycles conflict on x86 counters:
  // use multiplexing like a real tool would.
  (void)set->enable_multiplex(/*slice_cycles=*/50'000);
  (void)set->add_preset(papi::Preset::kTotCyc);
  (void)set->add_preset(papi::Preset::kL1Dcm);
  (void)set->add_preset(papi::Preset::kL2Tcm);
  (void)set->add_preset(papi::Preset::kFmaIns);
  (void)set->start();
  machine.run();
  long long v[4] = {};
  (void)set->stop(v);
  return Row{name, v[0], v[1], v[2], v[3]};
}

void print(const Row& r) {
  std::printf("%-18s %14lld %12lld %12lld %12lld\n", r.name, r.cycles,
              r.l1_dcm, r.l2_tcm, r.fma);
}

}  // namespace

int main() {
  const std::int64_t n = 96;
  std::printf("cache tuning: %lldx%lld matmul on sim-x86 "
              "(multiplexed counters)\n\n",
              static_cast<long long>(n), static_cast<long long>(n));
  std::printf("%-18s %14s %12s %12s %12s\n", "kernel", "PAPI_TOT_CYC",
              "PAPI_L1_DCM", "PAPI_L2_TCM", "PAPI_FMA_INS");

  print(measure(sim::make_matmul(n), "naive ijk"));
  for (std::int64_t block : {4, 8, 16, 32}) {
    char label[32];
    std::snprintf(label, sizeof(label), "blocked B=%lld",
                  static_cast<long long>(block));
    print(measure(sim::make_matmul_blocked(n, block), label));
  }

  std::printf(
      "\nSame FMA work; blocking collapses the L1/L2 miss counts and the\n"
      "cycle count follows - the measurement a PAPI user acts on.\n");
  return 0;
}
