// event_info: the papi_avail / papi_native_avail utilities in one — list
// every preset a platform maps (with its derivation) and the platform's
// full native event table with counter constraints or groups.
//
//   event_info [platform]     (default: all platforms, presets only)
//   event_info sim-power3     (presets + natives + groups for one)
#include <cstdio>
#include <memory>
#include <string>

#include "core/library.h"
#include "sim/kernels.h"
#include "substrate/preset_maps.h"
#include "substrate/sim_substrate.h"

using namespace papirepro;

namespace {

void print_presets(const pmu::PlatformDescription& platform) {
  std::printf("\n%s — %s\n", platform.name.c_str(),
              platform.vendor_interface.c_str());
  std::printf("%u counters%s\n", platform.num_counters,
              platform.group_constrained() ? " (group-constrained)" : "");
  std::printf("%-14s %-10s %s\n", "preset", "derived", "realized as");
  for (std::size_t i = 0; i < papi::kNumPresets; ++i) {
    const auto preset = static_cast<papi::Preset>(i);
    auto mapping = papi::map_preset(platform, preset);
    if (!mapping.ok()) continue;
    std::string expr;
    for (const papi::MappingTerm& t : mapping.value().terms) {
      const pmu::NativeEvent* ev = platform.find_event(t.native);
      if (!expr.empty()) expr += t.coefficient > 0 ? " + " : " - ";
      else if (t.coefficient < 0) expr += "-";
      expr += ev != nullptr ? ev->name : "?";
    }
    std::printf("%-14s %-10s %s\n", papi::preset_name(preset).data(),
                mapping.value().derived() ? "yes" : "no", expr.c_str());
  }
}

void print_natives(const pmu::PlatformDescription& platform) {
  std::printf("\nnative events:\n%-20s %-10s %s\n", "name",
              "counters", "description");
  for (const pmu::NativeEvent& e : platform.events) {
    char mask[16];
    if (e.counter_mask == 0) {
      std::snprintf(mask, sizeof(mask), "sampled");
    } else {
      std::string bits;
      for (std::uint32_t c = 0; c < platform.num_counters; ++c) {
        if (e.counter_mask & (1u << c)) {
          if (!bits.empty()) bits += ',';
          bits += std::to_string(c);
        }
      }
      std::snprintf(mask, sizeof(mask), "%s", bits.c_str());
    }
    std::printf("%-20s %-10s %s\n", e.name.c_str(), mask,
                e.description.c_str());
  }
  if (platform.group_constrained()) {
    std::printf("\ncounter groups (must be programmed as a unit):\n");
    for (const pmu::CounterGroup& g : platform.groups) {
      std::printf("  group %u '%s':", g.id, g.name.c_str());
      for (std::size_t slot = 0; slot < g.slots.size(); ++slot) {
        if (g.slots[slot] == pmu::kNoNativeEvent) continue;
        const pmu::NativeEvent* ev = platform.find_event(g.slots[slot]);
        std::printf(" [%zu]=%s", slot,
                    ev != nullptr ? ev->name.c_str() : "?");
      }
      std::printf("\n");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    const pmu::PlatformDescription* platform = pmu::find_platform(argv[1]);
    if (platform == nullptr) {
      std::fprintf(stderr, "unknown platform '%s'\n", argv[1]);
      return 1;
    }
    print_presets(*platform);
    print_natives(*platform);
    return 0;
  }
  for (const pmu::PlatformDescription* p : pmu::all_platforms()) {
    print_presets(*p);
  }
  return 0;
}
