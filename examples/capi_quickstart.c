/* The C face of the library: the same flow as quickstart.cpp, written
 * against the classic PAPI C API.  Demonstrates the "trivial C interop"
 * the specification was designed for. */
#include <stdio.h>

#include "capi/papi.h"

int main(void) {
  PAPIrepro_sim_t* sim = PAPIrepro_sim_create("sim-power3", "saxpy", 50000);
  if (sim == NULL) {
    fprintf(stderr, "failed to build simulator\n");
    return 1;
  }
  if (PAPIrepro_bind_sim(sim) != PAPI_OK ||
      PAPI_library_init(PAPI_VER_CURRENT) != PAPI_VER_CURRENT) {
    fprintf(stderr, "PAPI_library_init failed\n");
    return 1;
  }
  printf("C quickstart: saxpy(50000) on sim-power3, %d counters\n",
         PAPI_num_hwctrs());

  int event_set = PAPI_NULL;
  long long values[3];
  int rc;
  if ((rc = PAPI_create_eventset(&event_set)) != PAPI_OK ||
      (rc = PAPI_add_event(event_set, PAPI_TOT_CYC)) != PAPI_OK ||
      (rc = PAPI_add_event(event_set, PAPI_FP_INS)) != PAPI_OK ||
      (rc = PAPI_add_event(event_set, PAPI_FP_OPS)) != PAPI_OK ||
      (rc = PAPI_start(event_set)) != PAPI_OK) {
    fprintf(stderr, "setup failed: %s\n", PAPI_strerror(rc));
    return 1;
  }

  PAPIrepro_sim_run(sim, -1); /* run the workload to completion */

  if ((rc = PAPI_stop(event_set, values)) != PAPI_OK) {
    fprintf(stderr, "PAPI_stop: %s\n", PAPI_strerror(rc));
    return 1;
  }
  printf("  PAPI_TOT_CYC = %lld\n", values[0]);
  printf("  PAPI_FP_INS  = %lld  (raw hardware count)\n", values[1]);
  printf("  PAPI_FP_OPS  = %lld  (normalized: FMA counts as 2)\n",
         values[2]);
  printf("  real time    = %lld us\n", PAPI_get_real_usec());

  PAPI_mem_info_t mem;
  if (PAPI_get_memory_info(&mem) == PAPI_OK) {
    printf("  resident     = %lld bytes (PAPI 3 memory extension)\n",
           mem.process_resident_bytes);
  }

  PAPI_destroy_eventset(&event_set);
  PAPI_shutdown();
  PAPIrepro_sim_destroy(sim);
  return 0;
}
