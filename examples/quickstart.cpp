// Quickstart: measure a matrix multiply with the high-level API — the
// canonical first PAPI program (start counters, run, stop, plus the
// PAPI_flops convenience call).
#include <cstdio>

#include "core/highlevel.h"
#include "sim/kernels.h"
#include "substrate/sim_substrate.h"

using namespace papirepro;

int main() {
  // Build the "machine" we measure: a simulated x86-style CPU loaded
  // with a 64x64 dense matmul.
  sim::Workload workload = sim::make_matmul(64);
  sim::Machine machine(workload.program, pmu::sim_x86().machine);
  workload.setup(machine);

  // Bring up PAPI over that machine's substrate.
  papi::Library library(
      std::make_unique<papi::SimSubstrate>(machine, pmu::sim_x86()));
  papi::HighLevel papi_hl(library);

  std::printf("quickstart: matmul(64) on %s, %u hardware counters\n",
              library.substrate().name().data(), library.num_counters());

  // --- high-level counting ---
  const papi::EventId events[] = {
      papi::EventId::preset(papi::Preset::kTotCyc),
      papi::EventId::preset(papi::Preset::kTotIns),
      papi::EventId::preset(papi::Preset::kL1Dcm),
  };
  if (auto s = papi_hl.start_counters(events); !s.ok()) {
    std::fprintf(stderr, "start_counters: %s\n", s.message().data());
    return 1;
  }
  machine.run();
  long long values[3] = {};
  if (auto s = papi_hl.stop_counters(values); !s.ok()) {
    std::fprintf(stderr, "stop_counters: %s\n", s.message().data());
    return 1;
  }
  std::printf("  PAPI_TOT_CYC = %lld\n", values[0]);
  std::printf("  PAPI_TOT_INS = %lld  (IPC %.2f)\n", values[1],
              static_cast<double>(values[1]) /
                  static_cast<double>(values[0]));
  std::printf("  PAPI_L1_DCM  = %lld\n", values[2]);

  // --- PAPI_flops on a fresh run ---
  sim::Machine machine2(workload.program, pmu::sim_x86().machine);
  workload.setup(machine2);
  papi::Library library2(
      std::make_unique<papi::SimSubstrate>(machine2, pmu::sim_x86()));
  papi::HighLevel hl2(library2);
  (void)hl2.flops();  // arms the counters
  machine2.run();
  auto info = hl2.flops();
  if (!info.ok()) return 1;
  std::printf("  PAPI_flops: %lld FLOPs in %.4f s => %.1f MFLOP/s\n",
              info.value().flops, info.value().real_time_s,
              info.value().mflops);
  std::printf("  (expected FLOPs: 2 * 64^3 = %lld)\n",
              2LL * 64 * 64 * 64);
  return 0;
}
