// papirun CLI: "execute a program and easily collect basic timing and
// hardware counter data" (Section 5).
//
//   papirun [--platform P] [--workload W] [--n N] [--events A,B,C]
//           [--no-multiplex] [--estimation] [--list]
//
// --collect switches to papicollect mode: a rank population runs a ring
// exchange while a collector aggregates their published snapshots into
// a live cluster reduction (min/max/avg/percentiles + top-N ranks).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "pmu/platform.h"
#include "sim/workload_registry.h"
#include "tools/papicollect.h"
#include "tools/papirun.h"

using namespace papirepro;

namespace {

void usage() {
  std::printf(
      "usage: papirun [options]\n"
      "  --platform P     sim-x86 | sim-power3 | sim-ia64 | sim-alpha\n"
      "  --workload W     workload name (see --list)\n"
      "  --n N            workload size knob (0 = default)\n"
      "  --events A,B,C   PAPI_* preset or native event names\n"
      "  --no-multiplex   fail instead of multiplexing on conflicts\n"
      "  --estimation     DADD-style count estimation (sim-alpha)\n"
      "  --health         append a per-component health report\n"
      "  --strict         exit nonzero on disabled/quarantined-component warnings\n"
      "  --list           list platforms and workloads\n"
      "  --list-components  list registered components for --platform\n"
      "  --collect        aggregate a rank population (papicollect mode)\n"
      "  --ranks N        rank count for --collect (default 8)\n"
      "  --fan-in N       ranks per node in the reduction tree "
      "(default 4)\n"
      "  --top N          rows in the top-N rank table (default 4)\n");
}

void list_targets() {
  std::printf("platforms:\n");
  for (const pmu::PlatformDescription* p : pmu::all_platforms()) {
    std::printf("  %-12s %u counters  (%s)\n", p->name.c_str(),
                p->num_counters, p->vendor_interface.c_str());
  }
  std::printf("workloads:\n");
  for (std::string_view w : sim::workload_names()) {
    std::printf("  %s\n", std::string(w).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  tools::PapirunRequest request;
  tools::PapicollectRequest collect_request;
  bool collect = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--platform") {
      if (const char* v = next()) request.platform = v;
    } else if (arg == "--workload") {
      if (const char* v = next()) request.workload = v;
    } else if (arg == "--n") {
      if (const char* v = next()) request.n = std::atoll(v);
    } else if (arg == "--events") {
      const char* v = next();
      if (v != nullptr) {
        std::string list(v);
        std::size_t pos = 0;
        while (pos != std::string::npos) {
          const std::size_t comma = list.find(',', pos);
          request.events.push_back(
              list.substr(pos, comma == std::string::npos ? comma
                                                          : comma - pos));
          pos = comma == std::string::npos ? comma : comma + 1;
        }
      }
    } else if (arg == "--no-multiplex") {
      request.allow_multiplex = false;
    } else if (arg == "--estimation") {
      request.use_estimation = true;
    } else if (arg == "--health") {
      request.health_report = true;
    } else if (arg == "--strict") {
      request.strict = true;
    } else if (arg == "--list-components") {
      request.list_components = true;
    } else if (arg == "--collect") {
      collect = true;
    } else if (arg == "--ranks") {
      if (const char* v = next()) {
        collect_request.ranks = static_cast<std::uint32_t>(std::atoi(v));
      }
    } else if (arg == "--fan-in") {
      if (const char* v = next()) {
        collect_request.ranks_per_node =
            static_cast<std::uint32_t>(std::atoi(v));
      }
    } else if (arg == "--top") {
      if (const char* v = next()) {
        collect_request.top_n = static_cast<std::uint32_t>(std::atoi(v));
      }
    } else if (arg == "--list") {
      list_targets();
      return 0;
    } else {
      usage();
      return arg == "--help" ? 0 : 2;
    }
  }

  if (collect) {
    collect_request.platform = request.platform;
    if (request.n > 0) collect_request.iters = request.n;
    auto collected = tools::papicollect(collect_request);
    if (!collected.ok()) {
      std::fprintf(stderr, "papicollect: %s\n",
                   std::string(to_string(collected.error())).c_str());
      return 1;
    }
    std::printf("%s", collected.value().report.c_str());
    return 0;
  }

  auto result = tools::papirun(request);
  if (!result.ok()) {
    std::fprintf(stderr, "papirun: %s\n",
                 std::string(to_string(result.error())).c_str());
    return 1;
  }
  for (const std::string& warning : result.value().warnings) {
    std::fprintf(stderr, "%s\n", warning.c_str());
  }
  std::printf("%s", result.value().report.c_str());
  if (request.strict && !result.value().warnings.empty()) return 3;
  return 0;
}
