// papi_cost: the classic PAPI utility that measures what the measurement
// itself costs.  For the simulated substrates the cost is the charged
// simulated cycles per call (the E3/E9 cost model, observable through
// the machine's overhead accounting); for the real perf_event substrate
// it is wall nanoseconds per call.
#include <chrono>
#include <cstdio>
#include <memory>

#include "core/library.h"
#include "sim/kernels.h"
#include "substrate/perf_event_substrate.h"
#include "substrate/sim_substrate.h"

using namespace papirepro;

namespace {

void sim_costs() {
  std::printf("simulated substrates (cycles charged per call):\n\n");
  std::printf("%-12s %10s %10s %10s %12s\n", "substrate", "read",
              "start", "stop", "read+pollute");
  for (const pmu::PlatformDescription* p : pmu::all_platforms()) {
    sim::Workload w = sim::make_empty_loop(10);
    sim::Machine machine(w.program, p->machine);
    papi::SimSubstrate sub(machine, *p);
    auto cyc = sub.native_by_name(
        p->find_event("CPU_CLK_UNHALTED") != nullptr ? "CPU_CLK_UNHALTED"
        : p->name == "sim-power3"                    ? "PM_CYC"
        : p->name == "sim-ia64"                      ? "CPU_CYCLES"
        : p->name == "sim-alpha"                     ? "CYCLES"
                                                     : "EV5_CYCLES");
    if (!cyc.ok()) continue;
    auto ctx = sub.create_context();
    if (!ctx.ok()) continue;
    const pmu::NativeEventCode events[] = {cyc.value()};
    std::uint32_t counters[] = {0};
    (void)ctx.value()->program(events, counters);

    auto cost_of = [&machine](auto&& fn) {
      const std::uint64_t before = machine.overhead_cycles();
      fn();
      return machine.overhead_cycles() - before;
    };
    std::uint64_t out[1];
    const std::uint64_t start_cost =
        cost_of([&] { (void)ctx.value()->start(); });
    const std::uint64_t read_cost =
        cost_of([&] { (void)ctx.value()->read(out); });
    const std::uint64_t stop_cost =
        cost_of([&] { (void)ctx.value()->stop(); });
    std::printf("%-12s %10llu %10llu %10llu %12u\n", p->name.c_str(),
                static_cast<unsigned long long>(read_cost),
                static_cast<unsigned long long>(start_cost),
                static_cast<unsigned long long>(stop_cost),
                p->costs.read_pollute_lines);
  }
}

void perf_costs() {
  papi::PerfEventSubstrate sub;
  if (!sub.available()) {
    std::printf("\nperf_event: unavailable in this environment\n");
    return;
  }
  auto code = sub.native_by_name("PERF_COUNT_SW_TASK_CLOCK");
  auto ctx = sub.create_context();
  if (!ctx.ok()) return;
  const pmu::NativeEventCode events[] = {code.value()};
  std::uint32_t counters[] = {0};
  if (!ctx.value()->program(events, counters).ok() ||
      !ctx.value()->start().ok()) {
    return;
  }

  constexpr int kIters = 100'000;
  std::uint64_t out[1];
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) (void)ctx.value()->read(out);
  const auto t1 = std::chrono::steady_clock::now();
  (void)ctx.value()->stop();

  constexpr int kPairs = 20'000;
  const auto t2 = std::chrono::steady_clock::now();
  for (int i = 0; i < kPairs; ++i) {
    (void)ctx.value()->start();
    (void)ctx.value()->stop();
  }
  const auto t3 = std::chrono::steady_clock::now();

  const double read_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / kIters;
  const double pair_ns =
      std::chrono::duration<double, std::nano>(t3 - t2).count() / kPairs;
  std::printf("\nperf_event substrate (real wall time per call):\n");
  std::printf("  read (1 sw event):   %8.0f ns\n", read_ns);
  std::printf("  start+stop pair:     %8.0f ns\n", pair_ns);
}

}  // namespace

int main() {
  std::printf("papi_cost: the price of reading the counters\n\n");
  sim_costs();
  perf_costs();
  std::printf("\nThe x86/power3/ia64/alpha reads are system calls "
              "(thousands of cycles);\nthe T3E read is a register move — "
              "the spread behind the paper's overhead\nfindings.\n");
  return 0;
}
