// Vampir-style interval tracing (Section 3): multiple PAPI metrics
// sampled over time, aligned with phase markers the program itself
// emits — the data a timeline tool correlates with communication or
// phase behavior.
#include <cstdio>
#include <memory>

#include "sim/kernels.h"
#include "sim/program.h"
#include "substrate/sim_substrate.h"
#include "tools/tracer.h"

using namespace papirepro;

namespace {

/// Three-phase program that announces each phase with a marker probe:
/// FP burst -> strided memory walk -> branchy integer work.
sim::Workload make_marked_program(std::int64_t inner) {
  sim::ProgramBuilder b;
  b.begin_function("main");
  b.li(1, 0);
  b.li(2, inner);
  b.probe(1000);  // marker 0: FP phase begins
  auto fp = b.new_label();
  b.bind(fp);
  b.fmadd(3, 4, 5);
  b.fmadd(6, 7, 8);
  b.addi(1, 1, 1);
  b.blt(1, 2, fp);
  b.probe(1001);  // marker 1: memory phase
  b.li(1, 0);
  b.li(10, 0x40000000);
  auto mem = b.new_label();
  b.bind(mem);
  b.load(5, 10, 0);
  b.addi(10, 10, 256);
  b.addi(1, 1, 1);
  b.blt(1, 2, mem);
  b.probe(1002);  // marker 2: branch phase
  b.li(1, 0);
  b.li(0, 0);
  auto br = b.new_label();
  auto skip = b.new_label();
  b.bind(br);
  b.and_(5, 1, 1);
  b.shri(6, 5, 2);
  b.beq(6, 0, skip);
  b.addi(7, 7, 1);
  b.bind(skip);
  b.addi(1, 1, 1);
  b.blt(1, 2, br);
  b.probe(1003);  // marker 3: done
  b.halt();
  b.end_function();

  sim::Workload w;
  w.name = "marked_phases";
  w.program = std::move(b).build();
  return w;
}

}  // namespace

int main() {
  sim::Workload workload = make_marked_program(30'000);
  sim::Machine machine(workload.program, pmu::sim_x86().machine);
  papi::SimSubstrateOptions options;
  options.charge_costs = false;
  papi::Library library(std::make_unique<papi::SimSubstrate>(
      machine, pmu::sim_x86(), options));

  // These three presets co-schedule on sim-x86's 4 counters, so each
  // interval delta is an exact hardware count.  (Metrics that need
  // multiplexing trace too, but their per-interval deltas are
  // fluctuating *estimates* — the Section 2 caveat; see tracer.h.)
  tools::EventTracer tracer(
      library,
      {papi::EventId::preset(papi::Preset::kFpOps),
       papi::EventId::preset(papi::Preset::kL1Dcm),
       papi::EventId::preset(papi::Preset::kTlbDm)},
      /*interval_cycles=*/25'000, &machine);
  if (auto s = tracer.start(); !s.ok()) {
    std::fprintf(stderr, "tracer: %s\n", s.message().data());
    return 1;
  }
  machine.run();
  (void)tracer.stop();

  std::printf("interval trace with program phase markers:\n\n%s\n",
              tracer.render_timeline().c_str());
  std::printf("intervals: %zu, markers: %zu\n", tracer.intervals().size(),
              tracer.markers().size());
  return 0;
}
