// dynaprof in action: attach probes to the functions of a multi-phase
// program without touching its "source", run it, and get per-function
// hardware-counter and wallclock profiles.
#include <cstdio>

#include "tools/dynaprof.h"

using namespace papirepro;

int main() {
  tools::DynaprofOptions options;
  options.metrics = {papi::EventId::preset(papi::Preset::kTotCyc),
                     papi::EventId::preset(papi::Preset::kFpOps)};

  tools::DynaprofSession session(sim::make_multiphase(4, 30'000),
                                 pmu::sim_x86(), options);
  if (auto s = session.run(); !s.ok()) {
    std::fprintf(stderr, "dynaprof: %s\n", s.message().data());
    return 1;
  }
  std::printf("%s\n", session.report().c_str());
  std::printf("probe overhead: %llu of %llu cycles (%.2f%%)\n",
              static_cast<unsigned long long>(
                  session.machine().overhead_cycles()),
              static_cast<unsigned long long>(session.machine().cycles()),
              100.0 *
                  static_cast<double>(session.machine().overhead_cycles()) /
                  static_cast<double>(session.machine().cycles()));
  return 0;
}
