// Counting the *real* host CPU through the perf_event substrate — the
// kernel interface that standardized what the paper's out-of-tree
// patches did.  Uses software events everywhere; hardware events too
// where perf_event_paranoid permits.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/library.h"
#include "substrate/perf_event_substrate.h"

using namespace papirepro;

int main() {
  auto sub_ptr = std::make_unique<papi::PerfEventSubstrate>();
  const bool hw = sub_ptr->hardware_available();
  if (!sub_ptr->available()) {
    std::printf("perf_event is unavailable in this environment "
                "(software events denied);\nnothing to count — the same "
                "situation as PAPI on an unpatched 2003 kernel.\n");
    return 0;
  }
  papi::Library library(std::move(sub_ptr));

  std::printf("host counting via perf_event (hardware events %s)\n\n",
              hw ? "available" : "denied by perf_event_paranoid");

  std::vector<const char*> names = {"PERF_COUNT_SW_TASK_CLOCK",
                                    "PERF_COUNT_SW_PAGE_FAULTS",
                                    "PERF_COUNT_SW_CONTEXT_SWITCHES"};
  if (hw) {
    names.insert(names.end(), {"PERF_COUNT_HW_CPU_CYCLES",
                               "PERF_COUNT_HW_INSTRUCTIONS",
                               "PERF_COUNT_HW_BRANCH_MISSES"});
  }

  auto handle = library.create_event_set();
  papi::EventSet* set = library.event_set(handle.value()).value();
  for (const char* name : names) {
    if (auto s = set->add_named(name); !s.ok()) {
      std::fprintf(stderr, "add %s: %s\n", name, s.message().data());
      return 1;
    }
  }

  const auto t0 = library.real_usec();
  if (auto s = set->start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.message().data());
    return 1;
  }

  // The measured "application": FP work plus a page-faulting sweep.
  volatile double x = 1.0;
  for (int i = 0; i < 20'000'000; ++i) x = x * 1.0000001 + 0.25;
  std::vector<char> pages(32 * 1024 * 1024);
  for (std::size_t i = 0; i < pages.size(); i += 4096) pages[i] = 1;

  std::vector<long long> values(names.size());
  (void)set->stop(values);
  const auto elapsed = library.real_usec() - t0;

  for (std::size_t i = 0; i < names.size(); ++i) {
    std::printf("  %-34s %14lld\n", names[i], values[i]);
  }
  std::printf("  %-34s %14lld\n", "real time (us)",
              static_cast<long long>(elapsed));
  return 0;
}
