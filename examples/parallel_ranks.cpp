// Per-rank measurement of a message-passing program — the scenario the
// paper's tool ecosystem (TAU profiles per rank, Vampir timelines) was
// built for.  Four simulated ranks run a ring exchange
// (compute-then-communicate) on four real threads sharing ONE PAPI
// library: each thread binds its own machine to the substrate and runs
// its own EventSet, exercising the per-thread CounterContext path the
// same way a threaded MPI runtime would.  Rank 2 is given extra work to
// create the load imbalance a per-rank profile exposes.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/library.h"
#include "sim/comm.h"
#include "substrate/sim_substrate.h"

using namespace papirepro;

int main() {
  constexpr std::size_t kRanks = 4;
  constexpr std::int64_t kIters = 40;

  std::vector<sim::Workload> workloads;
  std::vector<std::unique_ptr<sim::Machine>> machines;
  std::vector<sim::Machine*> raw;
  for (std::size_t r = 0; r < kRanks; ++r) {
    // The imbalance: rank 2 computes 4x the work per iteration.
    const std::int64_t work = r == 2 ? 8'000 : 2'000;
    workloads.push_back(
        sim::make_ring_rank(r, kRanks, kIters, work, /*chunk_words=*/16));
    machines.push_back(std::make_unique<sim::Machine>(
        workloads.back().program, pmu::sim_x86().machine));
    raw.push_back(machines.back().get());
  }

  // One library over one substrate for all ranks — thread support means
  // we no longer need a PAPI instance per rank.
  papi::SimSubstrateOptions options;
  options.charge_costs = false;
  auto owned = std::make_unique<papi::SimSubstrate>(*machines[0],
                                                    pmu::sim_x86(), options);
  papi::SimSubstrate* substrate = owned.get();
  papi::Library library(std::move(owned));

  std::vector<papi::EventSet*> sets(kRanks, nullptr);
  std::vector<std::vector<long long>> values(kRanks);

  // Communication layer attaches after the substrate so counter state
  // and mailbox handling co-exist on the probe path.
  sim::CommWorld world(raw);
  const bool all_halted = world.run_threaded(
      /*max_instructions_per_rank=*/100'000'000,
      /*thread_begin=*/
      [&](std::size_t r) {
        substrate->bind_thread_machine(*machines[r]);
        auto handle = library.create_event_set();
        if (!handle.ok()) return;
        sets[r] = library.event_set(handle.value()).value();
        (void)sets[r]->add_preset(papi::Preset::kTotCyc);
        (void)sets[r]->add_preset(papi::Preset::kTotIns);
        (void)sets[r]->add_preset(papi::Preset::kFpOps);
        (void)sets[r]->start();
      },
      /*thread_end=*/
      [&](std::size_t r) {
        if (sets[r] == nullptr) return;
        values[r].assign(3, 0);
        (void)sets[r]->stop(values[r]);
        (void)library.unregister_thread();
      });
  if (!all_halted) {
    std::fprintf(stderr, "ranks did not complete (deadlock?)\n");
    return 1;
  }

  std::printf("per-rank profile of a 4-rank ring exchange "
              "(rank 2 overloaded),\nmeasured by one shared library "
              "from four rank threads:\n\n");
  std::printf("%5s %14s %14s %14s %10s %12s\n", "rank", "PAPI_TOT_CYC",
              "PAPI_TOT_INS", "PAPI_FP_OPS", "msgs", "wait_retries");
  for (std::size_t r = 0; r < kRanks; ++r) {
    std::printf("%5zu %14lld %14lld %14lld %10llu %12llu\n", r,
                values[r][0], values[r][1], values[r][2],
                static_cast<unsigned long long>(world.stats(r).sends +
                                                world.stats(r).recvs),
                static_cast<unsigned long long>(
                    world.stats(r).wait_retries));
  }
  std::printf(
      "\nThe profile tells the story a per-rank tool (TAU) would: every\n"
      "rank does identical FLOPs except rank 2 (4x), and the others burn\n"
      "their surplus as recv busy-wait retries — communication wait\n"
      "visible in hardware counters.\n");
  return 0;
}
