// Per-rank measurement of a message-passing program — the scenario the
// paper's tool ecosystem (TAU profiles per rank, Vampir timelines) was
// built for.  Four simulated ranks run a ring exchange
// (compute-then-communicate); each rank carries its own PAPI library
// over its own substrate, exactly like one PAPI instance per MPI
// process.  Rank 2 is given extra work to create the load imbalance a
// per-rank profile exposes.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/library.h"
#include "sim/comm.h"
#include "substrate/sim_substrate.h"

using namespace papirepro;

int main() {
  constexpr std::size_t kRanks = 4;
  constexpr std::int64_t kIters = 40;

  std::vector<sim::Workload> workloads;
  std::vector<std::unique_ptr<sim::Machine>> machines;
  std::vector<std::unique_ptr<papi::Library>> libraries;
  std::vector<papi::EventSet*> sets;
  std::vector<sim::Machine*> raw;

  for (std::size_t r = 0; r < kRanks; ++r) {
    // The imbalance: rank 2 computes 4x the work per iteration.
    const std::int64_t work = r == 2 ? 8'000 : 2'000;
    workloads.push_back(
        sim::make_ring_rank(r, kRanks, kIters, work, /*chunk_words=*/16));
    machines.push_back(std::make_unique<sim::Machine>(
        workloads.back().program, pmu::sim_x86().machine));
    raw.push_back(machines.back().get());

    papi::SimSubstrateOptions options;
    options.charge_costs = false;
    libraries.push_back(std::make_unique<papi::Library>(
        std::make_unique<papi::SimSubstrate>(*machines.back(),
                                             pmu::sim_x86(), options)));
    auto handle = libraries.back()->create_event_set();
    papi::EventSet* set =
        libraries.back()->event_set(handle.value()).value();
    (void)set->add_preset(papi::Preset::kTotCyc);
    (void)set->add_preset(papi::Preset::kTotIns);
    (void)set->add_preset(papi::Preset::kFpOps);
    (void)set->start();
    sets.push_back(set);
  }

  // Communication layer attaches after the substrates so counter state
  // and mailbox handling co-exist on the probe path.
  sim::CommWorld world(raw);
  if (!world.run_lockstep(/*quantum=*/2'000)) {
    std::fprintf(stderr, "ranks did not complete (deadlock?)\n");
    return 1;
  }

  std::printf("per-rank profile of a 4-rank ring exchange "
              "(rank 2 overloaded):\n\n");
  std::printf("%5s %14s %14s %14s %10s %12s\n", "rank", "PAPI_TOT_CYC",
              "PAPI_TOT_INS", "PAPI_FP_OPS", "msgs", "wait_retries");
  for (std::size_t r = 0; r < kRanks; ++r) {
    std::vector<long long> v(3);
    (void)sets[r]->stop(v);
    std::printf("%5zu %14lld %14lld %14lld %10llu %12llu\n", r, v[0],
                v[1], v[2],
                static_cast<unsigned long long>(world.stats(r).sends +
                                                world.stats(r).recvs),
                static_cast<unsigned long long>(
                    world.stats(r).wait_retries));
  }
  std::printf(
      "\nThe profile tells the story a per-rank tool (TAU) would: every\n"
      "rank does identical FLOPs except rank 2 (4x), and the others burn\n"
      "their surplus as recv busy-wait retries — communication wait\n"
      "visible in hardware counters.\n");
  return 0;
}
