# Empty compiler generated dependencies file for papirepro_tools.
# This may be replaced when dependencies are built.
