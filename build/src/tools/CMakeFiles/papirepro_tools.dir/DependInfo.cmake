
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/calibrate.cpp" "src/tools/CMakeFiles/papirepro_tools.dir/calibrate.cpp.o" "gcc" "src/tools/CMakeFiles/papirepro_tools.dir/calibrate.cpp.o.d"
  "/root/repo/src/tools/dynaprof.cpp" "src/tools/CMakeFiles/papirepro_tools.dir/dynaprof.cpp.o" "gcc" "src/tools/CMakeFiles/papirepro_tools.dir/dynaprof.cpp.o.d"
  "/root/repo/src/tools/memprof.cpp" "src/tools/CMakeFiles/papirepro_tools.dir/memprof.cpp.o" "gcc" "src/tools/CMakeFiles/papirepro_tools.dir/memprof.cpp.o.d"
  "/root/repo/src/tools/papirun.cpp" "src/tools/CMakeFiles/papirepro_tools.dir/papirun.cpp.o" "gcc" "src/tools/CMakeFiles/papirepro_tools.dir/papirun.cpp.o.d"
  "/root/repo/src/tools/perfometer.cpp" "src/tools/CMakeFiles/papirepro_tools.dir/perfometer.cpp.o" "gcc" "src/tools/CMakeFiles/papirepro_tools.dir/perfometer.cpp.o.d"
  "/root/repo/src/tools/tracer.cpp" "src/tools/CMakeFiles/papirepro_tools.dir/tracer.cpp.o" "gcc" "src/tools/CMakeFiles/papirepro_tools.dir/tracer.cpp.o.d"
  "/root/repo/src/tools/vprof.cpp" "src/tools/CMakeFiles/papirepro_tools.dir/vprof.cpp.o" "gcc" "src/tools/CMakeFiles/papirepro_tools.dir/vprof.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/papirepro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/substrate/CMakeFiles/papirepro_substrate.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/papirepro_events.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/papirepro_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/papirepro_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
