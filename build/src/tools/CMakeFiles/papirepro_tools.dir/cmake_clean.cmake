file(REMOVE_RECURSE
  "CMakeFiles/papirepro_tools.dir/calibrate.cpp.o"
  "CMakeFiles/papirepro_tools.dir/calibrate.cpp.o.d"
  "CMakeFiles/papirepro_tools.dir/dynaprof.cpp.o"
  "CMakeFiles/papirepro_tools.dir/dynaprof.cpp.o.d"
  "CMakeFiles/papirepro_tools.dir/memprof.cpp.o"
  "CMakeFiles/papirepro_tools.dir/memprof.cpp.o.d"
  "CMakeFiles/papirepro_tools.dir/papirun.cpp.o"
  "CMakeFiles/papirepro_tools.dir/papirun.cpp.o.d"
  "CMakeFiles/papirepro_tools.dir/perfometer.cpp.o"
  "CMakeFiles/papirepro_tools.dir/perfometer.cpp.o.d"
  "CMakeFiles/papirepro_tools.dir/tracer.cpp.o"
  "CMakeFiles/papirepro_tools.dir/tracer.cpp.o.d"
  "CMakeFiles/papirepro_tools.dir/vprof.cpp.o"
  "CMakeFiles/papirepro_tools.dir/vprof.cpp.o.d"
  "libpapirepro_tools.a"
  "libpapirepro_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papirepro_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
