file(REMOVE_RECURSE
  "libpapirepro_tools.a"
)
