file(REMOVE_RECURSE
  "CMakeFiles/papirepro_substrate.dir/host_substrate.cpp.o"
  "CMakeFiles/papirepro_substrate.dir/host_substrate.cpp.o.d"
  "CMakeFiles/papirepro_substrate.dir/perf_event_substrate.cpp.o"
  "CMakeFiles/papirepro_substrate.dir/perf_event_substrate.cpp.o.d"
  "CMakeFiles/papirepro_substrate.dir/preset_maps.cpp.o"
  "CMakeFiles/papirepro_substrate.dir/preset_maps.cpp.o.d"
  "CMakeFiles/papirepro_substrate.dir/sim_substrate.cpp.o"
  "CMakeFiles/papirepro_substrate.dir/sim_substrate.cpp.o.d"
  "CMakeFiles/papirepro_substrate.dir/substrate.cpp.o"
  "CMakeFiles/papirepro_substrate.dir/substrate.cpp.o.d"
  "libpapirepro_substrate.a"
  "libpapirepro_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papirepro_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
