file(REMOVE_RECURSE
  "libpapirepro_substrate.a"
)
