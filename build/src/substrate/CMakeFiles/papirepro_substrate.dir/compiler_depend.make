# Empty compiler generated dependencies file for papirepro_substrate.
# This may be replaced when dependencies are built.
