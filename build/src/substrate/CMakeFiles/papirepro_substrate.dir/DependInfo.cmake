
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/substrate/host_substrate.cpp" "src/substrate/CMakeFiles/papirepro_substrate.dir/host_substrate.cpp.o" "gcc" "src/substrate/CMakeFiles/papirepro_substrate.dir/host_substrate.cpp.o.d"
  "/root/repo/src/substrate/perf_event_substrate.cpp" "src/substrate/CMakeFiles/papirepro_substrate.dir/perf_event_substrate.cpp.o" "gcc" "src/substrate/CMakeFiles/papirepro_substrate.dir/perf_event_substrate.cpp.o.d"
  "/root/repo/src/substrate/preset_maps.cpp" "src/substrate/CMakeFiles/papirepro_substrate.dir/preset_maps.cpp.o" "gcc" "src/substrate/CMakeFiles/papirepro_substrate.dir/preset_maps.cpp.o.d"
  "/root/repo/src/substrate/sim_substrate.cpp" "src/substrate/CMakeFiles/papirepro_substrate.dir/sim_substrate.cpp.o" "gcc" "src/substrate/CMakeFiles/papirepro_substrate.dir/sim_substrate.cpp.o.d"
  "/root/repo/src/substrate/substrate.cpp" "src/substrate/CMakeFiles/papirepro_substrate.dir/substrate.cpp.o" "gcc" "src/substrate/CMakeFiles/papirepro_substrate.dir/substrate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pmu/CMakeFiles/papirepro_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/papirepro_events.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/papirepro_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
