
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/branch_predictor.cpp" "src/sim/CMakeFiles/papirepro_sim.dir/branch_predictor.cpp.o" "gcc" "src/sim/CMakeFiles/papirepro_sim.dir/branch_predictor.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/papirepro_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/papirepro_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/comm.cpp" "src/sim/CMakeFiles/papirepro_sim.dir/comm.cpp.o" "gcc" "src/sim/CMakeFiles/papirepro_sim.dir/comm.cpp.o.d"
  "/root/repo/src/sim/event.cpp" "src/sim/CMakeFiles/papirepro_sim.dir/event.cpp.o" "gcc" "src/sim/CMakeFiles/papirepro_sim.dir/event.cpp.o.d"
  "/root/repo/src/sim/isa.cpp" "src/sim/CMakeFiles/papirepro_sim.dir/isa.cpp.o" "gcc" "src/sim/CMakeFiles/papirepro_sim.dir/isa.cpp.o.d"
  "/root/repo/src/sim/kernels.cpp" "src/sim/CMakeFiles/papirepro_sim.dir/kernels.cpp.o" "gcc" "src/sim/CMakeFiles/papirepro_sim.dir/kernels.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/papirepro_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/papirepro_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/sim/CMakeFiles/papirepro_sim.dir/memory.cpp.o" "gcc" "src/sim/CMakeFiles/papirepro_sim.dir/memory.cpp.o.d"
  "/root/repo/src/sim/program.cpp" "src/sim/CMakeFiles/papirepro_sim.dir/program.cpp.o" "gcc" "src/sim/CMakeFiles/papirepro_sim.dir/program.cpp.o.d"
  "/root/repo/src/sim/tlb.cpp" "src/sim/CMakeFiles/papirepro_sim.dir/tlb.cpp.o" "gcc" "src/sim/CMakeFiles/papirepro_sim.dir/tlb.cpp.o.d"
  "/root/repo/src/sim/workload_registry.cpp" "src/sim/CMakeFiles/papirepro_sim.dir/workload_registry.cpp.o" "gcc" "src/sim/CMakeFiles/papirepro_sim.dir/workload_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
