# Empty compiler generated dependencies file for papirepro_sim.
# This may be replaced when dependencies are built.
