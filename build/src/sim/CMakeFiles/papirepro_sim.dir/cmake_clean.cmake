file(REMOVE_RECURSE
  "CMakeFiles/papirepro_sim.dir/branch_predictor.cpp.o"
  "CMakeFiles/papirepro_sim.dir/branch_predictor.cpp.o.d"
  "CMakeFiles/papirepro_sim.dir/cache.cpp.o"
  "CMakeFiles/papirepro_sim.dir/cache.cpp.o.d"
  "CMakeFiles/papirepro_sim.dir/comm.cpp.o"
  "CMakeFiles/papirepro_sim.dir/comm.cpp.o.d"
  "CMakeFiles/papirepro_sim.dir/event.cpp.o"
  "CMakeFiles/papirepro_sim.dir/event.cpp.o.d"
  "CMakeFiles/papirepro_sim.dir/isa.cpp.o"
  "CMakeFiles/papirepro_sim.dir/isa.cpp.o.d"
  "CMakeFiles/papirepro_sim.dir/kernels.cpp.o"
  "CMakeFiles/papirepro_sim.dir/kernels.cpp.o.d"
  "CMakeFiles/papirepro_sim.dir/machine.cpp.o"
  "CMakeFiles/papirepro_sim.dir/machine.cpp.o.d"
  "CMakeFiles/papirepro_sim.dir/memory.cpp.o"
  "CMakeFiles/papirepro_sim.dir/memory.cpp.o.d"
  "CMakeFiles/papirepro_sim.dir/program.cpp.o"
  "CMakeFiles/papirepro_sim.dir/program.cpp.o.d"
  "CMakeFiles/papirepro_sim.dir/tlb.cpp.o"
  "CMakeFiles/papirepro_sim.dir/tlb.cpp.o.d"
  "CMakeFiles/papirepro_sim.dir/workload_registry.cpp.o"
  "CMakeFiles/papirepro_sim.dir/workload_registry.cpp.o.d"
  "libpapirepro_sim.a"
  "libpapirepro_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papirepro_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
