file(REMOVE_RECURSE
  "libpapirepro_sim.a"
)
