file(REMOVE_RECURSE
  "libpapirepro_core.a"
)
