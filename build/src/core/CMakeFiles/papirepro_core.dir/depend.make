# Empty dependencies file for papirepro_core.
# This may be replaced when dependencies are built.
