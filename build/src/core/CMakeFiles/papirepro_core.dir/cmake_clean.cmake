file(REMOVE_RECURSE
  "CMakeFiles/papirepro_core.dir/eventset.cpp.o"
  "CMakeFiles/papirepro_core.dir/eventset.cpp.o.d"
  "CMakeFiles/papirepro_core.dir/highlevel.cpp.o"
  "CMakeFiles/papirepro_core.dir/highlevel.cpp.o.d"
  "CMakeFiles/papirepro_core.dir/library.cpp.o"
  "CMakeFiles/papirepro_core.dir/library.cpp.o.d"
  "CMakeFiles/papirepro_core.dir/multiplex.cpp.o"
  "CMakeFiles/papirepro_core.dir/multiplex.cpp.o.d"
  "libpapirepro_core.a"
  "libpapirepro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papirepro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
