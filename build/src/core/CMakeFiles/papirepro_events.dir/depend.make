# Empty dependencies file for papirepro_events.
# This may be replaced when dependencies are built.
