
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocator.cpp" "src/core/CMakeFiles/papirepro_events.dir/allocator.cpp.o" "gcc" "src/core/CMakeFiles/papirepro_events.dir/allocator.cpp.o.d"
  "/root/repo/src/core/presets.cpp" "src/core/CMakeFiles/papirepro_events.dir/presets.cpp.o" "gcc" "src/core/CMakeFiles/papirepro_events.dir/presets.cpp.o.d"
  "/root/repo/src/core/profile.cpp" "src/core/CMakeFiles/papirepro_events.dir/profile.cpp.o" "gcc" "src/core/CMakeFiles/papirepro_events.dir/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pmu/CMakeFiles/papirepro_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/papirepro_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
