file(REMOVE_RECURSE
  "libpapirepro_events.a"
)
