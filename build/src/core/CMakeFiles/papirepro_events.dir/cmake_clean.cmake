file(REMOVE_RECURSE
  "CMakeFiles/papirepro_events.dir/allocator.cpp.o"
  "CMakeFiles/papirepro_events.dir/allocator.cpp.o.d"
  "CMakeFiles/papirepro_events.dir/presets.cpp.o"
  "CMakeFiles/papirepro_events.dir/presets.cpp.o.d"
  "CMakeFiles/papirepro_events.dir/profile.cpp.o"
  "CMakeFiles/papirepro_events.dir/profile.cpp.o.d"
  "libpapirepro_events.a"
  "libpapirepro_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papirepro_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
