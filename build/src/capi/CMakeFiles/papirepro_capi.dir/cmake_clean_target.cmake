file(REMOVE_RECURSE
  "libpapirepro_capi.a"
)
