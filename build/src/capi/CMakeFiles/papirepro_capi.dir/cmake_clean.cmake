file(REMOVE_RECURSE
  "CMakeFiles/papirepro_capi.dir/papi_c.cpp.o"
  "CMakeFiles/papirepro_capi.dir/papi_c.cpp.o.d"
  "libpapirepro_capi.a"
  "libpapirepro_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papirepro_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
