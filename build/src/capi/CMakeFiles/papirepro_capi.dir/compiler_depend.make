# Empty compiler generated dependencies file for papirepro_capi.
# This may be replaced when dependencies are built.
