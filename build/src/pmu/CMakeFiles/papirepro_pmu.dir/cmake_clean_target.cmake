file(REMOVE_RECURSE
  "libpapirepro_pmu.a"
)
