file(REMOVE_RECURSE
  "CMakeFiles/papirepro_pmu.dir/platform.cpp.o"
  "CMakeFiles/papirepro_pmu.dir/platform.cpp.o.d"
  "CMakeFiles/papirepro_pmu.dir/platforms/sim_alpha.cpp.o"
  "CMakeFiles/papirepro_pmu.dir/platforms/sim_alpha.cpp.o.d"
  "CMakeFiles/papirepro_pmu.dir/platforms/sim_ia64.cpp.o"
  "CMakeFiles/papirepro_pmu.dir/platforms/sim_ia64.cpp.o.d"
  "CMakeFiles/papirepro_pmu.dir/platforms/sim_power3.cpp.o"
  "CMakeFiles/papirepro_pmu.dir/platforms/sim_power3.cpp.o.d"
  "CMakeFiles/papirepro_pmu.dir/platforms/sim_t3e.cpp.o"
  "CMakeFiles/papirepro_pmu.dir/platforms/sim_t3e.cpp.o.d"
  "CMakeFiles/papirepro_pmu.dir/platforms/sim_x86.cpp.o"
  "CMakeFiles/papirepro_pmu.dir/platforms/sim_x86.cpp.o.d"
  "CMakeFiles/papirepro_pmu.dir/pmu.cpp.o"
  "CMakeFiles/papirepro_pmu.dir/pmu.cpp.o.d"
  "CMakeFiles/papirepro_pmu.dir/sampling.cpp.o"
  "CMakeFiles/papirepro_pmu.dir/sampling.cpp.o.d"
  "libpapirepro_pmu.a"
  "libpapirepro_pmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papirepro_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
