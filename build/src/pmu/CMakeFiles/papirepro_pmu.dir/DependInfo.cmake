
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmu/platform.cpp" "src/pmu/CMakeFiles/papirepro_pmu.dir/platform.cpp.o" "gcc" "src/pmu/CMakeFiles/papirepro_pmu.dir/platform.cpp.o.d"
  "/root/repo/src/pmu/platforms/sim_alpha.cpp" "src/pmu/CMakeFiles/papirepro_pmu.dir/platforms/sim_alpha.cpp.o" "gcc" "src/pmu/CMakeFiles/papirepro_pmu.dir/platforms/sim_alpha.cpp.o.d"
  "/root/repo/src/pmu/platforms/sim_ia64.cpp" "src/pmu/CMakeFiles/papirepro_pmu.dir/platforms/sim_ia64.cpp.o" "gcc" "src/pmu/CMakeFiles/papirepro_pmu.dir/platforms/sim_ia64.cpp.o.d"
  "/root/repo/src/pmu/platforms/sim_power3.cpp" "src/pmu/CMakeFiles/papirepro_pmu.dir/platforms/sim_power3.cpp.o" "gcc" "src/pmu/CMakeFiles/papirepro_pmu.dir/platforms/sim_power3.cpp.o.d"
  "/root/repo/src/pmu/platforms/sim_t3e.cpp" "src/pmu/CMakeFiles/papirepro_pmu.dir/platforms/sim_t3e.cpp.o" "gcc" "src/pmu/CMakeFiles/papirepro_pmu.dir/platforms/sim_t3e.cpp.o.d"
  "/root/repo/src/pmu/platforms/sim_x86.cpp" "src/pmu/CMakeFiles/papirepro_pmu.dir/platforms/sim_x86.cpp.o" "gcc" "src/pmu/CMakeFiles/papirepro_pmu.dir/platforms/sim_x86.cpp.o.d"
  "/root/repo/src/pmu/pmu.cpp" "src/pmu/CMakeFiles/papirepro_pmu.dir/pmu.cpp.o" "gcc" "src/pmu/CMakeFiles/papirepro_pmu.dir/pmu.cpp.o.d"
  "/root/repo/src/pmu/sampling.cpp" "src/pmu/CMakeFiles/papirepro_pmu.dir/sampling.cpp.o" "gcc" "src/pmu/CMakeFiles/papirepro_pmu.dir/sampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/papirepro_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
