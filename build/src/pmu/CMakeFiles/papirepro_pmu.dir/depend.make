# Empty dependencies file for papirepro_pmu.
# This may be replaced when dependencies are built.
