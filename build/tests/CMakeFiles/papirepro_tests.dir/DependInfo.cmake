
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/capi/test_capi.cpp" "tests/CMakeFiles/papirepro_tests.dir/capi/test_capi.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/capi/test_capi.cpp.o.d"
  "/root/repo/tests/core/test_allocator.cpp" "tests/CMakeFiles/papirepro_tests.dir/core/test_allocator.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/core/test_allocator.cpp.o.d"
  "/root/repo/tests/core/test_domain.cpp" "tests/CMakeFiles/papirepro_tests.dir/core/test_domain.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/core/test_domain.cpp.o.d"
  "/root/repo/tests/core/test_eventset.cpp" "tests/CMakeFiles/papirepro_tests.dir/core/test_eventset.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/core/test_eventset.cpp.o.d"
  "/root/repo/tests/core/test_highlevel.cpp" "tests/CMakeFiles/papirepro_tests.dir/core/test_highlevel.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/core/test_highlevel.cpp.o.d"
  "/root/repo/tests/core/test_library.cpp" "tests/CMakeFiles/papirepro_tests.dir/core/test_library.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/core/test_library.cpp.o.d"
  "/root/repo/tests/core/test_multiplex.cpp" "tests/CMakeFiles/papirepro_tests.dir/core/test_multiplex.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/core/test_multiplex.cpp.o.d"
  "/root/repo/tests/core/test_overflow.cpp" "tests/CMakeFiles/papirepro_tests.dir/core/test_overflow.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/core/test_overflow.cpp.o.d"
  "/root/repo/tests/core/test_presets.cpp" "tests/CMakeFiles/papirepro_tests.dir/core/test_presets.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/core/test_presets.cpp.o.d"
  "/root/repo/tests/core/test_profile.cpp" "tests/CMakeFiles/papirepro_tests.dir/core/test_profile.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/core/test_profile.cpp.o.d"
  "/root/repo/tests/core/test_status.cpp" "tests/CMakeFiles/papirepro_tests.dir/core/test_status.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/core/test_status.cpp.o.d"
  "/root/repo/tests/integration/test_portability.cpp" "tests/CMakeFiles/papirepro_tests.dir/integration/test_portability.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/integration/test_portability.cpp.o.d"
  "/root/repo/tests/integration/test_property_counts.cpp" "tests/CMakeFiles/papirepro_tests.dir/integration/test_property_counts.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/integration/test_property_counts.cpp.o.d"
  "/root/repo/tests/integration/test_random_programs.cpp" "tests/CMakeFiles/papirepro_tests.dir/integration/test_random_programs.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/integration/test_random_programs.cpp.o.d"
  "/root/repo/tests/pmu/test_platforms.cpp" "tests/CMakeFiles/papirepro_tests.dir/pmu/test_platforms.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/pmu/test_platforms.cpp.o.d"
  "/root/repo/tests/pmu/test_pmu.cpp" "tests/CMakeFiles/papirepro_tests.dir/pmu/test_pmu.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/pmu/test_pmu.cpp.o.d"
  "/root/repo/tests/pmu/test_sampling.cpp" "tests/CMakeFiles/papirepro_tests.dir/pmu/test_sampling.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/pmu/test_sampling.cpp.o.d"
  "/root/repo/tests/sim/test_branch.cpp" "tests/CMakeFiles/papirepro_tests.dir/sim/test_branch.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/sim/test_branch.cpp.o.d"
  "/root/repo/tests/sim/test_cache.cpp" "tests/CMakeFiles/papirepro_tests.dir/sim/test_cache.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/sim/test_cache.cpp.o.d"
  "/root/repo/tests/sim/test_cache_properties.cpp" "tests/CMakeFiles/papirepro_tests.dir/sim/test_cache_properties.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/sim/test_cache_properties.cpp.o.d"
  "/root/repo/tests/sim/test_comm.cpp" "tests/CMakeFiles/papirepro_tests.dir/sim/test_comm.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/sim/test_comm.cpp.o.d"
  "/root/repo/tests/sim/test_isa.cpp" "tests/CMakeFiles/papirepro_tests.dir/sim/test_isa.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/sim/test_isa.cpp.o.d"
  "/root/repo/tests/sim/test_kernels.cpp" "tests/CMakeFiles/papirepro_tests.dir/sim/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/sim/test_kernels.cpp.o.d"
  "/root/repo/tests/sim/test_machine.cpp" "tests/CMakeFiles/papirepro_tests.dir/sim/test_machine.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/sim/test_machine.cpp.o.d"
  "/root/repo/tests/sim/test_memory.cpp" "tests/CMakeFiles/papirepro_tests.dir/sim/test_memory.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/sim/test_memory.cpp.o.d"
  "/root/repo/tests/sim/test_program.cpp" "tests/CMakeFiles/papirepro_tests.dir/sim/test_program.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/sim/test_program.cpp.o.d"
  "/root/repo/tests/sim/test_regions.cpp" "tests/CMakeFiles/papirepro_tests.dir/sim/test_regions.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/sim/test_regions.cpp.o.d"
  "/root/repo/tests/sim/test_rng.cpp" "tests/CMakeFiles/papirepro_tests.dir/sim/test_rng.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/sim/test_rng.cpp.o.d"
  "/root/repo/tests/sim/test_skid.cpp" "tests/CMakeFiles/papirepro_tests.dir/sim/test_skid.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/sim/test_skid.cpp.o.d"
  "/root/repo/tests/sim/test_tlb.cpp" "tests/CMakeFiles/papirepro_tests.dir/sim/test_tlb.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/sim/test_tlb.cpp.o.d"
  "/root/repo/tests/sim/test_workload_registry.cpp" "tests/CMakeFiles/papirepro_tests.dir/sim/test_workload_registry.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/sim/test_workload_registry.cpp.o.d"
  "/root/repo/tests/substrate/test_host_substrate.cpp" "tests/CMakeFiles/papirepro_tests.dir/substrate/test_host_substrate.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/substrate/test_host_substrate.cpp.o.d"
  "/root/repo/tests/substrate/test_perf_event.cpp" "tests/CMakeFiles/papirepro_tests.dir/substrate/test_perf_event.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/substrate/test_perf_event.cpp.o.d"
  "/root/repo/tests/substrate/test_preset_maps.cpp" "tests/CMakeFiles/papirepro_tests.dir/substrate/test_preset_maps.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/substrate/test_preset_maps.cpp.o.d"
  "/root/repo/tests/substrate/test_sim_substrate.cpp" "tests/CMakeFiles/papirepro_tests.dir/substrate/test_sim_substrate.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/substrate/test_sim_substrate.cpp.o.d"
  "/root/repo/tests/substrate/test_t3e.cpp" "tests/CMakeFiles/papirepro_tests.dir/substrate/test_t3e.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/substrate/test_t3e.cpp.o.d"
  "/root/repo/tests/tools/test_calibrate.cpp" "tests/CMakeFiles/papirepro_tests.dir/tools/test_calibrate.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/tools/test_calibrate.cpp.o.d"
  "/root/repo/tests/tools/test_dynaprof.cpp" "tests/CMakeFiles/papirepro_tests.dir/tools/test_dynaprof.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/tools/test_dynaprof.cpp.o.d"
  "/root/repo/tests/tools/test_instrumentation_property.cpp" "tests/CMakeFiles/papirepro_tests.dir/tools/test_instrumentation_property.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/tools/test_instrumentation_property.cpp.o.d"
  "/root/repo/tests/tools/test_memprof.cpp" "tests/CMakeFiles/papirepro_tests.dir/tools/test_memprof.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/tools/test_memprof.cpp.o.d"
  "/root/repo/tests/tools/test_papirun.cpp" "tests/CMakeFiles/papirepro_tests.dir/tools/test_papirun.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/tools/test_papirun.cpp.o.d"
  "/root/repo/tests/tools/test_perfometer.cpp" "tests/CMakeFiles/papirepro_tests.dir/tools/test_perfometer.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/tools/test_perfometer.cpp.o.d"
  "/root/repo/tests/tools/test_tracer.cpp" "tests/CMakeFiles/papirepro_tests.dir/tools/test_tracer.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/tools/test_tracer.cpp.o.d"
  "/root/repo/tests/tools/test_vprof.cpp" "tests/CMakeFiles/papirepro_tests.dir/tools/test_vprof.cpp.o" "gcc" "tests/CMakeFiles/papirepro_tests.dir/tools/test_vprof.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/papirepro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/papirepro_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/capi/CMakeFiles/papirepro_capi.dir/DependInfo.cmake"
  "/root/repo/build/src/substrate/CMakeFiles/papirepro_substrate.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/papirepro_events.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/papirepro_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/papirepro_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
