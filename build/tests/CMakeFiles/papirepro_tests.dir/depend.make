# Empty dependencies file for papirepro_tests.
# This may be replaced when dependencies are built.
