file(REMOVE_RECURSE
  "CMakeFiles/papirun.dir/papirun.cpp.o"
  "CMakeFiles/papirun.dir/papirun.cpp.o.d"
  "papirun"
  "papirun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papirun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
