# Empty dependencies file for papirun.
# This may be replaced when dependencies are built.
