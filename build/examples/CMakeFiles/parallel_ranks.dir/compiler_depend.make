# Empty compiler generated dependencies file for parallel_ranks.
# This may be replaced when dependencies are built.
