file(REMOVE_RECURSE
  "CMakeFiles/parallel_ranks.dir/parallel_ranks.cpp.o"
  "CMakeFiles/parallel_ranks.dir/parallel_ranks.cpp.o.d"
  "parallel_ranks"
  "parallel_ranks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_ranks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
