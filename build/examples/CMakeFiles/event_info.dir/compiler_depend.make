# Empty compiler generated dependencies file for event_info.
# This may be replaced when dependencies are built.
