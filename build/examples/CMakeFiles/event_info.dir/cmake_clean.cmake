file(REMOVE_RECURSE
  "CMakeFiles/event_info.dir/event_info.cpp.o"
  "CMakeFiles/event_info.dir/event_info.cpp.o.d"
  "event_info"
  "event_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
