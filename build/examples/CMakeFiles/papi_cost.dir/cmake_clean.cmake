file(REMOVE_RECURSE
  "CMakeFiles/papi_cost.dir/papi_cost.cpp.o"
  "CMakeFiles/papi_cost.dir/papi_cost.cpp.o.d"
  "papi_cost"
  "papi_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papi_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
