
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/papi_cost.cpp" "examples/CMakeFiles/papi_cost.dir/papi_cost.cpp.o" "gcc" "examples/CMakeFiles/papi_cost.dir/papi_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tools/CMakeFiles/papirepro_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/papirepro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/substrate/CMakeFiles/papirepro_substrate.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/papirepro_events.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/papirepro_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/papirepro_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
