# Empty dependencies file for papi_cost.
# This may be replaced when dependencies are built.
