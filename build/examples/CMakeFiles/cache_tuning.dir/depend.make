# Empty dependencies file for cache_tuning.
# This may be replaced when dependencies are built.
