file(REMOVE_RECURSE
  "CMakeFiles/perfometer_demo.dir/perfometer_demo.cpp.o"
  "CMakeFiles/perfometer_demo.dir/perfometer_demo.cpp.o.d"
  "perfometer_demo"
  "perfometer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfometer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
