# Empty compiler generated dependencies file for perfometer_demo.
# This may be replaced when dependencies are built.
