file(REMOVE_RECURSE
  "CMakeFiles/multiplex_demo.dir/multiplex_demo.cpp.o"
  "CMakeFiles/multiplex_demo.dir/multiplex_demo.cpp.o.d"
  "multiplex_demo"
  "multiplex_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiplex_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
