# Empty compiler generated dependencies file for multiplex_demo.
# This may be replaced when dependencies are built.
