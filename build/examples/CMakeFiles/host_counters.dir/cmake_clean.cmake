file(REMOVE_RECURSE
  "CMakeFiles/host_counters.dir/host_counters.cpp.o"
  "CMakeFiles/host_counters.dir/host_counters.cpp.o.d"
  "host_counters"
  "host_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
