# Empty compiler generated dependencies file for host_counters.
# This may be replaced when dependencies are built.
