# Empty compiler generated dependencies file for capi_quickstart.
# This may be replaced when dependencies are built.
