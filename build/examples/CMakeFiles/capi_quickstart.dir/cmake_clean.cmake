file(REMOVE_RECURSE
  "CMakeFiles/capi_quickstart.dir/capi_quickstart.c.o"
  "CMakeFiles/capi_quickstart.dir/capi_quickstart.c.o.d"
  "capi_quickstart"
  "capi_quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang C)
  include(CMakeFiles/capi_quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
