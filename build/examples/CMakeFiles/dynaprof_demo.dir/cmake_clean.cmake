file(REMOVE_RECURSE
  "CMakeFiles/dynaprof_demo.dir/dynaprof_demo.cpp.o"
  "CMakeFiles/dynaprof_demo.dir/dynaprof_demo.cpp.o.d"
  "dynaprof_demo"
  "dynaprof_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaprof_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
