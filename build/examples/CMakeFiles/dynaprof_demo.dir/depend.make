# Empty dependencies file for dynaprof_demo.
# This may be replaced when dependencies are built.
