file(REMOVE_RECURSE
  "CMakeFiles/bench_multiplex.dir/bench_multiplex.cpp.o"
  "CMakeFiles/bench_multiplex.dir/bench_multiplex.cpp.o.d"
  "bench_multiplex"
  "bench_multiplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
