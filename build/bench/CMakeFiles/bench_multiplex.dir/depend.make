# Empty dependencies file for bench_multiplex.
# This may be replaced when dependencies are built.
