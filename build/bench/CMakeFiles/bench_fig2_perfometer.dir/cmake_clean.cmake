file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_perfometer.dir/bench_fig2_perfometer.cpp.o"
  "CMakeFiles/bench_fig2_perfometer.dir/bench_fig2_perfometer.cpp.o.d"
  "bench_fig2_perfometer"
  "bench_fig2_perfometer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_perfometer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
