# Empty compiler generated dependencies file for bench_profiling_accuracy.
# This may be replaced when dependencies are built.
