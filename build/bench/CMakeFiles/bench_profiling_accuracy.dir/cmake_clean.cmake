file(REMOVE_RECURSE
  "CMakeFiles/bench_profiling_accuracy.dir/bench_profiling_accuracy.cpp.o"
  "CMakeFiles/bench_profiling_accuracy.dir/bench_profiling_accuracy.cpp.o.d"
  "bench_profiling_accuracy"
  "bench_profiling_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_profiling_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
