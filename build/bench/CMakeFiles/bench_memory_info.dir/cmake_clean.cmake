file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_info.dir/bench_memory_info.cpp.o"
  "CMakeFiles/bench_memory_info.dir/bench_memory_info.cpp.o.d"
  "bench_memory_info"
  "bench_memory_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
