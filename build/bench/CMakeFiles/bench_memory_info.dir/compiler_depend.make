# Empty compiler generated dependencies file for bench_memory_info.
# This may be replaced when dependencies are built.
