file(REMOVE_RECURSE
  "CMakeFiles/bench_flops_normalization.dir/bench_flops_normalization.cpp.o"
  "CMakeFiles/bench_flops_normalization.dir/bench_flops_normalization.cpp.o.d"
  "bench_flops_normalization"
  "bench_flops_normalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flops_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
