# Empty dependencies file for bench_flops_normalization.
# This may be replaced when dependencies are built.
