file(REMOVE_RECURSE
  "CMakeFiles/bench_timers.dir/bench_timers.cpp.o"
  "CMakeFiles/bench_timers.dir/bench_timers.cpp.o.d"
  "bench_timers"
  "bench_timers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
