// SP1: asynchronous sampling pipeline — overhead and convergence.  The
// paper's Section 4 lesson: direct counting "can cost up to 30 %" while
// statistical sampling substrates sit at 1-2 %, *if* taking a sample
// costs the measured thread no more than the trap itself.  This bench
// pits four regimes of the same saxpy run against each other on
// sim-power3's cost model (trap+enqueue 320 cycles vs full synchronous
// handler 3500, counter read 1800):
//
//   uninstrumented   no PAPI at all (the baseline cycle count)
//   direct           counter reads on a 10k-cycle timer (perfometer)
//   profil_sync      PAPI_profil, handlers inline in the counting thread
//   profil_async     PAPI_profil through the ring + aggregator thread
//
// and then verifies the async histogram is *identical* to the sync one
// on a costs-off run (same instruction stream, same overflow points —
// the pipeline reorders work in time, not in content).  Emits
// BENCH_sampling_pipeline.json for the CI artifact trail.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace papirepro;
using bench::Rig;

namespace {

constexpr std::int64_t kIters = 200'000;
constexpr std::uint64_t kProfilThreshold = 10'000;
constexpr std::uint64_t kReadPeriodCycles = 10'000;
constexpr double kAsyncBudget = 0.05;  // the <= 5 % acceptance line

struct Row {
  const char* mode;
  std::uint64_t cycles = 0;
  std::uint64_t overhead_cycles = 0;
  std::uint64_t samples = 0;
  std::uint64_t dropped = 0;
  double overhead_pct = 0;
};

Row finish(const char* mode, const Rig& rig, std::uint64_t samples,
           std::uint64_t dropped) {
  Row row{mode};
  row.cycles = rig.machine->cycles();
  row.overhead_cycles = rig.machine->overhead_cycles();
  row.samples = samples;
  row.dropped = dropped;
  row.overhead_pct = 100.0 * rig.overhead_fraction();
  return row;
}

Row run_uninstrumented() {
  Rig rig(sim::make_saxpy(kIters), pmu::sim_power3());
  rig.machine->run();
  return finish("uninstrumented", rig, 0, 0);
}

Row run_direct() {
  Rig rig(sim::make_saxpy(kIters), pmu::sim_power3());
  papi::EventSet& set = rig.new_set();
  (void)set.add_preset(papi::Preset::kTotIns);
  (void)set.start();
  long long v[1];
  std::uint64_t reads = 0;
  auto timer = rig.library->substrate().add_timer(
      kReadPeriodCycles, [&] {
        ++reads;
        (void)set.read(v);
      });
  rig.machine->run();
  if (timer.ok()) (void)rig.library->substrate().cancel_timer(timer.value());
  (void)set.stop();
  return finish("direct_read_timer", rig, reads, 0);
}

Row run_profil(bool async, papi::ProfileBuffer& buf) {
  Rig rig(sim::make_saxpy(kIters), pmu::sim_power3());
  (void)rig.library->configure_sampling({.async = async});
  papi::EventSet& set = rig.new_set();
  (void)set.add_preset(papi::Preset::kTotIns);
  (void)set.profil(buf, papi::EventId::preset(papi::Preset::kTotIns),
                   kProfilThreshold);
  (void)set.start();
  rig.machine->run();
  (void)set.stop();
  const papi::SamplingStats stats = rig.library->sampling_stats();
  return finish(async ? "profil_async" : "profil_sync", rig,
                buf.total_samples(), stats.dropped);
}

/// Costs-off sync/async pair: identical instruction streams, so the
/// async histogram (plus accounted drops) must reproduce sync exactly.
bool histograms_converge(std::uint64_t* sync_total,
                         std::uint64_t* async_total,
                         std::uint64_t* async_dropped) {
  papi::SimSubstrateOptions off;
  off.charge_costs = false;
  papi::ProfileBuffer sync_buf(sim::kTextBase, 4096);
  {
    Rig rig(sim::make_saxpy(kIters), pmu::sim_power3(), off);
    papi::EventSet& set = rig.new_set();
    (void)set.add_preset(papi::Preset::kTotIns);
    (void)set.profil(sync_buf,
                     papi::EventId::preset(papi::Preset::kTotIns), 2'000);
    (void)set.start();
    rig.machine->run();
    (void)set.stop();
  }
  papi::ProfileBuffer async_buf(sim::kTextBase, 4096);
  std::uint64_t dropped = 0;
  {
    Rig rig(sim::make_saxpy(kIters), pmu::sim_power3(), off);
    (void)rig.library->configure_sampling(
        {.async = true, .ring_capacity = 1u << 12});
    papi::EventSet& set = rig.new_set();
    (void)set.add_preset(papi::Preset::kTotIns);
    (void)set.profil(async_buf,
                     papi::EventId::preset(papi::Preset::kTotIns), 2'000);
    (void)set.start();
    rig.machine->run();
    (void)set.stop();
    dropped = rig.library->sampling_stats().dropped;
  }
  *sync_total = sync_buf.total_samples();
  *async_total = async_buf.total_samples();
  *async_dropped = dropped;
  return async_buf.total_samples() + dropped == sync_buf.total_samples() &&
         async_buf.buckets() == sync_buf.buckets();
}

void write_json(const std::vector<Row>& rows, bool converged,
                std::uint64_t sync_total, std::uint64_t async_total,
                std::uint64_t async_dropped) {
  std::FILE* f = std::fopen("BENCH_sampling_pipeline.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_sampling_pipeline.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"sampling_pipeline\",\n"
                  "  \"iters\": %lld,\n  \"modes\": {\n",
               static_cast<long long>(kIters));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    \"%s\": {\"cycles\": %llu, \"overhead_cycles\": "
                 "%llu, \"overhead_pct\": %.2f, \"samples\": %llu, "
                 "\"dropped\": %llu}%s\n",
                 r.mode, static_cast<unsigned long long>(r.cycles),
                 static_cast<unsigned long long>(r.overhead_cycles),
                 r.overhead_pct,
                 static_cast<unsigned long long>(r.samples),
                 static_cast<unsigned long long>(r.dropped),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  },\n  \"convergence\": {\"exact\": %s, \"sync_total\": "
               "%llu, \"async_total\": %llu, \"async_dropped\": %llu}\n}\n",
               converged ? "true" : "false",
               static_cast<unsigned long long>(sync_total),
               static_cast<unsigned long long>(async_total),
               static_cast<unsigned long long>(async_dropped));
  std::fclose(f);
}

}  // namespace

int main() {
  bench::header("SP1", "async sampling pipeline: overhead vs direct "
                       "counting, histogram convergence");
  std::printf("saxpy(%lld) on sim-power3 (enqueue 320 cy, handler 3500 "
              "cy, read 1800 cy);\nprofil threshold %llu, direct reads "
              "every %llu cycles.\n\n",
              static_cast<long long>(kIters),
              static_cast<unsigned long long>(kProfilThreshold),
              static_cast<unsigned long long>(kReadPeriodCycles));
  std::printf("%-18s %14s %16s %12s %9s %8s\n", "mode", "cycles",
              "overhead_cycles", "overhead", "samples", "dropped");

  std::vector<Row> rows;
  rows.push_back(run_uninstrumented());
  rows.push_back(run_direct());
  papi::ProfileBuffer sync_buf(sim::kTextBase, 4096);
  rows.push_back(run_profil(false, sync_buf));
  papi::ProfileBuffer async_buf(sim::kTextBase, 4096);
  rows.push_back(run_profil(true, async_buf));

  for (const Row& r : rows) {
    std::printf("%-18s %14llu %16llu %11.2f%% %9llu %8llu\n", r.mode,
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.overhead_cycles),
                r.overhead_pct,
                static_cast<unsigned long long>(r.samples),
                static_cast<unsigned long long>(r.dropped));
  }

  std::uint64_t sync_total = 0, async_total = 0, async_dropped = 0;
  const bool converged = histograms_converge(&sync_total, &async_total,
                                             &async_dropped);

  const double async_pct = rows[3].overhead_pct;
  const double sync_pct = rows[2].overhead_pct;
  const double direct_pct = rows[1].overhead_pct;
  const bool async_ok = async_pct <= 100 * kAsyncBudget;
  const bool ordering_ok = async_pct < sync_pct && async_pct < direct_pct;

  std::printf("\nconvergence (costs off, threshold 2000): sync %llu vs "
              "async %llu + %llu dropped -> %s\n",
              static_cast<unsigned long long>(sync_total),
              static_cast<unsigned long long>(async_total),
              static_cast<unsigned long long>(async_dropped),
              converged ? "identical" : "MISMATCH");
  std::printf("async overhead %.2f%% (budget %.0f%%): %s\n", async_pct,
              100 * kAsyncBudget, async_ok ? "PASS" : "FAIL");
  std::printf("async < sync (%.2f%%) and async < direct (%.2f%%): %s\n",
              sync_pct, direct_pct, ordering_ok ? "PASS" : "FAIL");

  write_json(rows, converged, sync_total, async_total, async_dropped);
  std::printf("\nJSON written to BENCH_sampling_pipeline.json.\n");
  return (converged && async_ok && ordering_ok) ? 0 : 1;
}
