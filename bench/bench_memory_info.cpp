// E11: the PAPI 3 memory-utilization extensions (Section 5's wish
// list): node memory, per-process resident/peak, page accounting —
// demonstrated on the host substrate (real /proc data) and the
// simulated substrates (touched-page accounting), with a growth check
// that the per-process numbers actually track allocations.
#include <vector>

#include "bench_util.h"
#include "substrate/host_substrate.h"
#include "tools/memprof.h"

using namespace papirepro;
using bench::Rig;

namespace {

void print_info(const char* label, const papi::MemoryInfo& info) {
  std::printf("%-12s %14llu %14llu %14llu %14llu %10llu\n", label,
              static_cast<unsigned long long>(info.total_bytes),
              static_cast<unsigned long long>(info.available_bytes),
              static_cast<unsigned long long>(info.process_resident_bytes),
              static_cast<unsigned long long>(info.process_peak_bytes),
              static_cast<unsigned long long>(info.page_faults));
}

}  // namespace

int main() {
  bench::header("E11", "PAPI 3 memory utilization extensions (Section 5)");
  std::printf("%-12s %14s %14s %14s %14s %10s\n", "substrate", "total",
              "available", "resident", "peak", "pages");

  papi::HostSubstrate host_substrate;
  print_info("host", host_substrate.memory_info().value());

  for (auto [n, label] :
       {std::pair{1'000LL, "sim n=1k"}, {100'000LL, "sim n=100k"}}) {
    Rig rig(sim::make_saxpy(n), pmu::sim_x86(), {});
    rig.machine->run();
    print_info(label, rig.library->memory_info().value());
  }

  // Growth check on the host: allocate 64 MiB, watch resident/peak move.
  const auto before = host_substrate.memory_info().value();
  std::vector<char> hog(64 * 1024 * 1024, 1);
  for (std::size_t i = 0; i < hog.size(); i += 4096) hog[i] = 2;
  const auto after = host_substrate.memory_info().value();
  std::printf(
      "\nhost growth check after touching 64 MiB: resident +%lld KiB, "
      "peak +%lld KiB\n",
      (static_cast<long long>(after.process_resident_bytes) -
       static_cast<long long>(before.process_resident_bytes)) /
          1024,
      (static_cast<long long>(after.process_peak_bytes) -
       static_cast<long long>(before.process_peak_bytes)) /
          1024);
  std::printf("shape: process-level numbers track allocations; simulated "
              "substrates\nreport the machine's touched-page footprint.\n");

  // "location of memory used by an object (e.g., array or structure)":
  // per-object attribution of the naive matmul's cache traffic — the
  // column-strided B array takes the blame.
  std::printf("\nper-object memory profile (naive matmul, n=64, small "
              "L1):\n\n");
  sim::Workload w = sim::make_matmul(64);
  sim::MachineConfig config = pmu::sim_x86().machine;
  config.l1d = {.size_bytes = 8 * 1024, .line_bytes = 64,
                .associativity = 2, .miss_latency = 8};
  sim::Machine machine(w.program, config);
  w.setup(machine);
  tools::MemoryProfiler prof(machine, w.regions);
  machine.run();
  std::printf("%s", prof.report().c_str());
  std::printf("\nshape: B (column-strided) carries the misses; A/C stream"
              " cleanly.\n");
  return 0;
}
