// E4 + E12: multiplexing accuracy vs run length, and the TAU-style
// "up to 25 metrics" configuration.  "Erroneous results can occur when
// the runtime is insufficient to permit the estimated counter values to
// converge to their expected values" — the error column must fall from
// catastrophic to percent-level as the run grows.
#include <algorithm>
#include <cmath>

#include "bench_util.h"

using namespace papirepro;
using bench::Rig;

namespace {

struct MuxResult {
  double worst_rel_err = 0;
  std::size_t zero_events = 0;
  std::size_t groups = 0;
};

MuxResult run_mux(std::int64_t n, std::uint64_t slice_cycles) {
  papi::SimSubstrateOptions options;
  options.charge_costs = false;
  Rig rig(sim::make_saxpy(n), pmu::sim_x86(), options);
  papi::EventSet& set = rig.new_set();
  (void)set.enable_multiplex(slice_cycles);

  struct Check {
    const char* name;
    double expected;
  };
  const Check checks[] = {
      {"PAPI_FMA_INS", static_cast<double>(n)},
      {"PAPI_LD_INS", static_cast<double>(2 * n)},
      {"PAPI_SR_INS", static_cast<double>(n)},
      {"PAPI_BR_INS", static_cast<double>(n)},
      {"PAPI_L1_DCA", static_cast<double>(3 * n)},
      {"PAPI_TOT_INS", 0},  // filled below
  };
  for (const Check& c : checks) (void)set.add_named(c.name);
  (void)set.start();
  rig.machine->run();
  std::vector<long long> v(set.num_events());
  (void)set.stop(v);

  MuxResult r;
  r.groups = set.num_mux_groups();
  for (std::size_t i = 0; i + 1 < std::size(checks); ++i) {
    const double measured = static_cast<double>(v[i]);
    if (measured == 0) ++r.zero_events;
    r.worst_rel_err = std::max(
        r.worst_rel_err, bench::rel_error(measured, checks[i].expected));
  }
  // TOT_INS against the machine's own retirement count.
  r.worst_rel_err = std::max(
      r.worst_rel_err,
      bench::rel_error(static_cast<double>(v[5]),
                       static_cast<double>(rig.machine->retired())));
  return r;
}

}  // namespace

int main() {
  bench::header("E4", "multiplexing estimates vs run length (Section 2)");
  std::printf("6 events on 4 counters, slice = 200k cycles (a fixed timer, as in\n"
              "real PAPI), saxpy(n)\n\n");
  std::printf("%12s %14s %12s %12s\n", "n", "instructions",
              "worst_rel_err", "zero_events");
  for (std::int64_t n :
       {1'000LL, 5'000LL, 20'000LL, 100'000LL, 400'000LL, 1'500'000LL}) {
    const MuxResult r = run_mux(n, 200'000);
    std::printf("%12lld %14lld %12.4f %12zu\n",
                static_cast<long long>(n),
                static_cast<long long>(8 * n + 5), r.worst_rel_err,
                r.zero_events);
  }
  std::printf("\nshape: short runs give zero/garbage estimates; error "
              "decays toward 0 with runtime.\n");

  bench::header("E12", "TAU-style many-metric profile (up to 25 metrics)");
  papi::SimSubstrateOptions options;
  options.charge_costs = false;
  Rig rig(sim::make_matmul(64), pmu::sim_x86(), options);
  papi::EventSet& set = rig.new_set();
  (void)set.enable_multiplex(30'000);
  std::vector<papi::Preset> added;
  for (papi::Preset p : rig.library->available_presets()) {
    if (set.add_preset(p).ok()) added.push_back(p);
  }
  (void)set.start();
  rig.machine->run();
  std::vector<long long> v(added.size());
  (void)set.stop(v);
  std::printf("metrics collected simultaneously: %zu (hardware counters: "
              "%u, mux groups: %zu)\n\n",
              added.size(), rig.library->num_counters(),
              set.num_mux_groups());
  const double n3 = 64.0 * 64 * 64;
  for (std::size_t i = 0; i < added.size(); ++i) {
    std::printf("  %-14s %14lld", papi::preset_name(added[i]).data(),
                v[i]);
    if (added[i] == papi::Preset::kFmaIns) {
      std::printf("   (expected %.0f, rel_err %.4f)", n3,
                  bench::rel_error(static_cast<double>(v[i]), n3));
    }
    std::printf("\n");
  }
  return 0;
}
