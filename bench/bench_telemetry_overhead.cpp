// TL1: self-telemetry cost on the counter hot path.  The registry's
// whole design brief is "observability that costs ~nothing": the bump
// path is a relaxed flag load plus a relaxed load/store pair on a
// thread-private cache line, and the trace path one SPSC ring push.
// This bench pins
// that contract numerically — telemetry-enabled reads must stay within
// 3 % of the disabled baseline, trace-ring recording within 10 % — and
// fails the build (nonzero exit) when the budget is blown.  Timing
// noise is strictly additive, so each scenario reports the *minimum*
// over interleaved repetitions (the classic microbench estimator of
// true cost); a small absolute floor keeps single-digit-nanosecond
// jitter from tripping the relative gates on loaded CI runners.  Emits
// BENCH_telemetry_overhead.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench_util.h"
#include "core/telemetry.h"

// --- global operator-new counting -----------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace papirepro;

namespace {

constexpr int kIters = 100'000;
constexpr int kReps = 9;
// Relative budgets from the issue, plus an absolute floor: on a ~100 ns
// call a couple of nanoseconds of timer noise is not a regression.
constexpr double kEnabledBudget = 1.03;
constexpr double kTraceBudget = 1.10;
constexpr double kAbsSlackNs = 4.0;

struct Scenario {
  const char* name;
  bench::Rig rig;
  papi::EventSet* set = nullptr;
  std::vector<long long> values;
  std::vector<double> reps_ns;
  double read_ns = 0;
  double read_allocs = 0;

  Scenario(const char* n)
      : name(n),
        rig(sim::make_empty_loop(10), pmu::sim_x86(),
            {.charge_costs = false}) {}

  bool prepare() {
    set = &rig.new_set();
    (void)set->add_preset(papi::Preset::kTotIns);
    (void)set->add_preset(papi::Preset::kTotCyc);
    if (!set->start().ok()) return false;
    values.assign(set->num_events(), 0);
    return true;
  }
};

/// One timed repetition: (ns/call, allocs/call) over kIters reads.
std::pair<double, double> time_reads(Scenario& s) {
  for (int i = 0; i < 64; ++i) (void)s.set->read(s.values);
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) (void)s.set->read(s.values);
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
  return {
      std::chrono::duration<double, std::nano>(t1 - t0).count() / kIters,
      static_cast<double>(a1 - a0) / kIters};
}

double best_of(const std::vector<double>& xs) {
  return *std::min_element(xs.begin(), xs.end());
}

void write_json(const std::vector<Scenario*>& scenarios, bool pass) {
  std::FILE* f = std::fopen("BENCH_telemetry_overhead.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_telemetry_overhead.json\n");
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"telemetry_overhead\",\n"
               "  \"iters\": %d,\n  \"reps\": %d,\n  \"scenarios\": {\n",
               kIters, kReps);
  const double base = scenarios[0]->read_ns;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = *scenarios[i];
    std::fprintf(f,
                 "    \"%s\": {\"read_ns\": %.2f, \"read_allocs\": %.4f, "
                 "\"vs_disabled\": %.4f}%s\n",
                 s.name, s.read_ns, s.read_allocs,
                 base > 0 ? s.read_ns / base : 0.0,
                 i + 1 < scenarios.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"pass\": %s\n}\n", pass ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main() {
  bench::header("TL1", "self-telemetry hot-path overhead");
  std::printf("best-of read() ns over %d reps x %d iters (sim-x86, cost\n"
              "charging off); gates: enabled <= disabled x %.2f, "
              "trace <= disabled x %.2f,\nzero heap allocations:\n\n",
              kReps, kIters, kEnabledBudget, kTraceBudget);

  Scenario disabled("disabled");
  Scenario enabled("enabled");
  Scenario traced("trace");
  disabled.rig.library->telemetry().set_enabled(false);
  if (!disabled.rig.library->set_trace(false).ok() ||
      !traced.rig.library->set_trace(true).ok()) {
    std::fprintf(stderr, "set_trace failed\n");
    return 1;
  }
  std::vector<Scenario*> scenarios = {&disabled, &enabled, &traced};
  for (Scenario* s : scenarios) {
    if (!s->prepare()) {
      std::fprintf(stderr, "%s: start() failed\n", s->name);
      return 1;
    }
  }

  // Interleave repetitions across scenarios so frequency drift hits all
  // three equally instead of biasing whichever ran last.
  for (int rep = 0; rep < kReps; ++rep) {
    for (Scenario* s : scenarios) {
      auto [ns, allocs] = time_reads(*s);
      s->reps_ns.push_back(ns);
      s->read_allocs = std::max(s->read_allocs, allocs);
    }
  }
  for (Scenario* s : scenarios) s->read_ns = best_of(s->reps_ns);

  bool pass = true;
  const double base = disabled.read_ns;
  std::printf("%-10s %10s %12s %14s\n", "scenario", "read_ns",
              "read_allocs", "vs_disabled");
  for (Scenario* s : scenarios) {
    std::printf("%-10s %10.1f %12.4f %13.3fx\n", s->name, s->read_ns,
                s->read_allocs, base > 0 ? s->read_ns / base : 0.0);
  }

  if (enabled.read_ns > base * kEnabledBudget + kAbsSlackNs) {
    std::fprintf(stderr,
                 "FAIL: telemetry-enabled read %.1f ns exceeds budget "
                 "(%.1f ns base, %.0f%% + %.0f ns slack)\n",
                 enabled.read_ns, base, (kEnabledBudget - 1) * 100,
                 kAbsSlackNs);
    pass = false;
  }
  if (traced.read_ns > base * kTraceBudget + kAbsSlackNs) {
    std::fprintf(stderr,
                 "FAIL: trace-ring read %.1f ns exceeds budget "
                 "(%.1f ns base, %.0f%% + %.0f ns slack)\n",
                 traced.read_ns, base, (kTraceBudget - 1) * 100,
                 kAbsSlackNs);
    pass = false;
  }
  for (Scenario* s : scenarios) {
    if (s->read_allocs > 0) {
      std::fprintf(stderr, "FAIL: %s read path allocated (%.4f/call)\n",
                   s->name, s->read_allocs);
      pass = false;
    }
  }

  write_json(scenarios, pass);
  std::printf("\n%s — JSON written to BENCH_telemetry_overhead.json.\n",
              pass ? "all gates green" : "BUDGET EXCEEDED");
  return pass ? 0 : 1;
}
