// E2 (Figure 2): perfometer's real-time FLOPS trace.  The paper's
// screenshot shows the FLOP rate of a running code oscillating between
// bursts and quiet phases; we regenerate it with the multiphase program
// (FP burst -> memory walk -> branchy integer, repeated) and print both
// the ASCII chart and the per-phase rate statistics.  Shape to
// reproduce: clear alternation between near-peak and near-zero FLOPS.
#include <algorithm>

#include "bench_util.h"
#include "tools/perfometer.h"

using namespace papirepro;
using bench::Rig;

int main() {
  bench::header("E2", "perfometer real-time FLOPS trace (Fig. 2)");

  Rig rig(sim::make_multiphase(6, 25'000), pmu::sim_x86(),
          [] {
            papi::SimSubstrateOptions o;
            o.charge_costs = false;
            return o;
          }());
  tools::Perfometer meter(*rig.library,
                          papi::EventId::preset(papi::Preset::kFpOps),
                          /*interval_cycles=*/8'000);
  if (!meter.start().ok()) return 1;
  rig.machine->run();
  (void)meter.stop();

  std::printf("\n%s\n", meter.render_ascii(72, 12).c_str());

  double peak = 0;
  for (const auto& p : meter.trace()) {
    peak = std::max(peak, p.rate_per_sec);
  }
  std::size_t burst = 0, quiet = 0;
  for (const auto& p : meter.trace()) {
    if (p.rate_per_sec > 0.5 * peak) ++burst;
    if (p.rate_per_sec < 0.05 * peak) ++quiet;
  }
  std::printf("samples: %zu   peak rate: %.3g FLOP/s\n",
              meter.trace().size(), peak);
  std::printf("intervals above 50%% of peak: %zu   below 5%% of peak: %zu\n",
              burst, quiet);
  std::printf("shape check (burst/quiet alternation): %s\n",
              burst > 5 && quiet > 5 ? "REPRODUCED" : "NOT reproduced");
  return 0;
}
