// E10: "One of the most popular features of PAPI has proven to be the
// portable timing routines.  Using the lowest overhead and most accurate
// timers available on a given platform..."  google-benchmark measures
// the real nanosecond cost of each portable timer on the host substrate;
// a companion table reports the *simulated-cycle* cost model of counter
// reads per platform (the knob the overhead experiments rely on).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "substrate/host_substrate.h"

using namespace papirepro;

namespace {

papi::HostSubstrate& host() {
  static papi::HostSubstrate substrate;
  return substrate;
}

void BM_RealUsec(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(host().real_usec());
  }
}
BENCHMARK(BM_RealUsec);

void BM_RealCycles(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(host().real_cycles());
  }
}
BENCHMARK(BM_RealCycles);

void BM_VirtUsec(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(host().virt_usec());
  }
}
BENCHMARK(BM_VirtUsec);

void BM_MemoryInfo(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(host().memory_info());
  }
}
BENCHMARK(BM_MemoryInfo);

void BM_SimTimerRead(benchmark::State& state) {
  // Host-side cost of reading the simulated clock (library-call path).
  sim::Workload w = sim::make_empty_loop(10);
  sim::Machine machine(w.program, pmu::sim_x86().machine);
  papi::SimSubstrate substrate(machine, pmu::sim_x86());
  for (auto _ : state) {
    benchmark::DoNotOptimize(substrate.real_usec());
  }
}
BENCHMARK(BM_SimTimerRead);

void cost_model_table() {
  bench::header("E10", "portable timers and the substrate cost model");
  std::printf("simulated-cycle costs per counter interface call (the\n"
              "machine-dependent numbers behind E3/E9):\n\n");
  std::printf("%-12s %12s %12s %12s %12s\n", "platform", "read",
              "start/stop", "ovf handler", "per-sample");
  for (const pmu::PlatformDescription* p : pmu::all_platforms()) {
    std::printf("%-12s %12llu %12llu %12llu %12llu\n", p->name.c_str(),
                static_cast<unsigned long long>(p->costs.read_cost_cycles),
                static_cast<unsigned long long>(
                    p->costs.start_stop_cost_cycles),
                static_cast<unsigned long long>(
                    p->costs.overflow_handler_cost_cycles),
                static_cast<unsigned long long>(
                    p->costs.sample_cost_cycles));
  }
  std::printf("\nhost timer costs (real ns/op) follow, via "
              "google-benchmark:\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  cost_model_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
