// E1 (Figure 1): the layered architecture's payoff — one portable
// program, five substrates.  Prints the preset-availability matrix (the
// `avail` utility's table) and the same measurement taken through the
// same code on every platform model.  Shape to reproduce: deterministic
// events agree exactly everywhere; availability differs per platform;
// the alpha substrate needs its sampling mode for most events.
#include <cmath>

#include "bench_util.h"
#include "substrate/preset_maps.h"

using namespace papirepro;
using bench::Rig;

namespace {

void availability_matrix() {
  std::printf("\npreset availability (the avail utility):\n%-14s",
              "preset");
  for (const pmu::PlatformDescription* p : pmu::all_platforms()) {
    std::printf(" %10s", p->name.c_str() + 4);  // strip "sim-"
  }
  std::printf("\n");
  for (std::size_t i = 0; i < papi::kNumPresets; ++i) {
    const auto preset = static_cast<papi::Preset>(i);
    std::printf("%-14s", papi::preset_name(preset).data());
    for (const pmu::PlatformDescription* p : pmu::all_platforms()) {
      const auto mapping = papi::map_preset(*p, preset);
      const char* cell = !mapping.ok() ? "-"
                         : mapping.value().derived() ? "derived"
                                                     : "yes";
      std::printf(" %10s", cell);
    }
    std::printf("\n");
  }
}

void same_code_everywhere() {
  std::printf("\nsame portable code on every substrate "
              "(stream triad, n=50000;\nFP_OPS measured in its own run — "
              "it cannot co-schedule with LD/SR on\n4-counter machines):\n");
  std::printf("%-12s %14s %14s %14s %14s\n", "platform", "PAPI_TOT_INS",
              "PAPI_LD_INS", "PAPI_SR_INS", "PAPI_FP_OPS");
  for (const pmu::PlatformDescription* p : pmu::all_platforms()) {
    long long v[4] = {-1, -1, -1, -1};
    {
      Rig rig(sim::make_stream_triad(50'000), *p, {});
      if (p->sampling.has_profileme) {
        (void)rig.substrate->set_estimation(true);
      }
      papi::EventSet& set = rig.new_set();
      const papi::Preset wanted[] = {papi::Preset::kTotIns,
                                     papi::Preset::kLdIns,
                                     papi::Preset::kSrIns};
      std::vector<int> index;
      for (int i = 0; i < 3; ++i) {
        if (set.add_preset(wanted[i]).ok()) index.push_back(i);
      }
      (void)set.start();
      rig.machine->run();
      std::vector<long long> out(index.size());
      (void)set.stop(out);
      for (std::size_t k = 0; k < index.size(); ++k) v[index[k]] = out[k];
    }
    {
      Rig rig(sim::make_stream_triad(50'000), *p, {});
      if (p->sampling.has_profileme) {
        (void)rig.substrate->set_estimation(true);
      }
      papi::EventSet& set = rig.new_set();
      if (set.add_preset(papi::Preset::kFpOps).ok()) {
        (void)set.start();
        rig.machine->run();
        (void)set.stop({&v[3], 1});
      }
    }

    std::printf("%-12s", p->name.c_str());
    for (int i = 0; i < 4; ++i) {
      if (v[i] >= 0) {
        std::printf(" %14lld", v[i]);
      } else {
        std::printf(" %14s", "(unmapped)");
      }
    }
    std::printf("\n");
  }
  std::printf("expected:      (varies)          100000          50000"
              "         100000\n");
}

}  // namespace

int main() {
  bench::header("E1", "one interface, five substrates (Fig. 1)");
  std::printf("substrates: ");
  for (const pmu::PlatformDescription* p : pmu::all_platforms()) {
    std::printf("%s(%u ctrs) ", p->name.c_str(), p->num_counters);
  }
  std::printf("+ host(timers/memory only)\n");
  availability_matrix();
  same_code_everywhere();
  return 0;
}
