// E5: counter allocation as bipartite matching (Section 5).  Compares
// the optimal matcher (PAPI 2.3's contribution) against naive first-fit
// on random constraint instances and on the platform-derived cases, and
// times the solver.  Shape to reproduce: the optimal matcher always
// places >= as many events, with a measurable win on constrained
// instances, at microsecond-scale cost.
#include <chrono>

#include "bench_util.h"
#include "common/rng.h"
#include "core/allocator.h"

using namespace papirepro;
using papi::AllocationInstance;
using papi::AllocationResult;

namespace {

void random_sweep() {
  std::printf("random instances (1000 trials each):\n");
  std::printf("%8s %9s | %10s %10s %12s %12s\n", "events", "counters",
              "opt_full%", "greedy_full%", "opt_mapped", "greedy_mapped");
  Xoshiro256 rng(20030407);
  for (const auto& [events, counters] :
       {std::pair{3, 2}, {4, 4}, {6, 4}, {8, 4}, {8, 8}, {12, 8}}) {
    int opt_full = 0, greedy_full = 0;
    std::uint64_t opt_mapped = 0, greedy_mapped = 0;
    const std::uint32_t full_mask = (1u << counters) - 1;
    constexpr int kTrials = 1000;
    for (int t = 0; t < kTrials; ++t) {
      AllocationInstance inst;
      inst.num_counters = static_cast<std::uint32_t>(counters);
      for (int e = 0; e < events; ++e) {
        // Sparse masks (1-3 allowed counters) model real constraints.
        std::uint32_t mask = 0;
        const int k = 1 + static_cast<int>(rng.next_below(3));
        for (int j = 0; j < k; ++j) {
          mask |= 1u << rng.next_below(static_cast<std::uint64_t>(counters));
        }
        inst.allowed.push_back(mask & full_mask);
      }
      const AllocationResult opt = papi::solve_max_cardinality(inst);
      const AllocationResult greedy = papi::solve_greedy_first_fit(inst);
      opt_full += opt.complete();
      greedy_full += greedy.complete();
      opt_mapped += opt.mapped_count;
      greedy_mapped += greedy.mapped_count;
    }
    std::printf("%8d %9d | %9.1f%% %11.1f%% %12.2f %12.2f\n", events,
                counters, 100.0 * opt_full / kTrials,
                100.0 * greedy_full / kTrials,
                static_cast<double>(opt_mapped) / kTrials,
                static_cast<double>(greedy_mapped) / kTrials);
  }
}

void platform_cases() {
  std::printf("\nplatform-derived instances (sim-x86 constraint masks):\n");
  struct Case {
    const char* description;
    std::vector<const char*> events;
  };
  const Case cases[] = {
      {"cache trio (greedy-hostile order)",
       {"L1D_MISS", "L2_MISS", "DTLB_MISS"}},
      {"mixed fp+mem", {"FP_OPS_RETIRED", "L1D_MISS", "BR_INS_RETIRED",
                        "L2_MISS"}},
      {"overcommitted low counters",
       {"L1D_MISS", "L1D_ACCESS", "LD_RETIRED"}},
  };
  const auto& platform = pmu::sim_x86();
  for (const Case& c : cases) {
    AllocationInstance inst;
    inst.num_counters = platform.num_counters;
    for (const char* name : c.events) {
      inst.allowed.push_back(platform.find_event(name)->counter_mask);
    }
    const AllocationResult opt = papi::solve_max_cardinality(inst);
    const AllocationResult greedy = papi::solve_greedy_first_fit(inst);
    std::printf("  %-38s optimal %u/%zu, first-fit %u/%zu\n",
                c.description, opt.mapped_count, c.events.size(),
                greedy.mapped_count, c.events.size());
  }
}

void timing() {
  // Allocation happens at PAPI_add_event time; it must be cheap.
  Xoshiro256 rng(7);
  AllocationInstance inst;
  inst.num_counters = 8;
  for (int e = 0; e < 12; ++e) {
    inst.allowed.push_back(static_cast<std::uint32_t>(rng.next()) & 0xff);
  }
  constexpr int kIters = 200'000;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    sink += papi::solve_max_cardinality(inst).mapped_count;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / kIters;
  std::printf("\noptimal matcher latency (12 events x 8 counters): "
              "%.0f ns/allocation (checksum %llu)\n",
              ns, static_cast<unsigned long long>(sink));
}

}  // namespace

int main() {
  bench::header("E5",
                "counter allocation: optimal matching vs first-fit "
                "(Section 5)");
  random_sweep();
  platform_cases();
  timing();
  std::printf("\nshape: optimal >= greedy everywhere; the gap is where "
              "PAPI 2.3's matcher earns its keep.\n");
  return 0;
}
