// HO1: cost of the component health monitor on the counter hot path.
// The breaker brackets every slice operation with admit()/record() — two
// relaxed atomic loads when the component is healthy — so the steady-
// state read must not regress: the gate holds the health-enabled direct
// read within 5% of the health-disabled read and every row at zero heap
// allocations.  Also measures what the breaker buys: the fail-fast
// rejection path against a quarantined component (the alternative is a
// full retry ladder per call).  Emits BENCH_health_overhead.json for
// trend tracking, exit code 1 on gate failure.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/health.h"
#include "substrate/component_substrates.h"
#include "substrate/fault_substrate.h"

// --- global operator-new counting -----------------------------------------
// Replaceable allocation functions counting every heap allocation made by
// the process; reads in steady state should add zero to this.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace papirepro;

namespace {

constexpr int kIters = 100'000;
constexpr int kRepeats = 5;  // best-of-N to shed scheduler noise

struct Row {
  const char* scenario;
  double ns = 0;
  double allocs = 0;
};

/// Times `iters` calls of `op`, best wall time of kRepeats runs, and
/// reports (ns/call, allocs/call).
template <typename Op>
std::pair<double, double> measure(int iters, Op&& op) {
  for (int i = 0; i < 64; ++i) op();  // warm scratch capacities
  double best_ns = 0.0;
  double allocs = 0.0;
  for (int r = 0; r < kRepeats; ++r) {
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) op();
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
    if (r == 0 || ns < best_ns) best_ns = ns;
    allocs = static_cast<double>(a1 - a0) / iters;  // any repeat's leak
    if (allocs > 0.0) break;
  }
  return {best_ns, allocs};
}

/// Direct single-component read with the health layer in the given
/// state.  The two calls differ only in HealthPolicy::enabled.
Row run_direct(const char* scenario, bool health_enabled) {
  bench::Rig rig(sim::make_empty_loop(10), pmu::sim_x86(),
                 {.charge_costs = false});
  papi::HealthPolicy policy;
  policy.enabled = health_enabled;
  (void)rig.library->set_health_policy(policy);
  papi::EventSet& set = rig.new_set();
  (void)set.add_preset(papi::Preset::kTotIns);
  (void)set.add_preset(papi::Preset::kTotCyc);
  if (!set.start().ok()) return {scenario};
  Row row{scenario};
  std::vector<long long> v(set.num_events());
  std::tie(row.ns, row.allocs) = measure(kIters, [&] { (void)set.read(v); });
  (void)set.stop();
  return row;
}

/// Spanning cpu+mem read_ex with everything healthy: the partial-read
/// entry point's own steady-state cost (flag computation included).
Row run_read_ex_spanning() {
  bench::Rig rig(sim::make_empty_loop(10), pmu::sim_x86(),
                 {.charge_costs = false});
  (void)rig.library->register_component(
      "mem", "uncore",
      std::make_unique<papi::MemBandwidthSubstrate>(*rig.machine));
  papi::EventSet& set = rig.new_set();
  (void)set.add_preset(papi::Preset::kTotIns);
  (void)set.add_named("mem::BANDWIDTH_RD");
  if (!set.start().ok()) return {"read_ex_spanning"};
  Row row{"read_ex_spanning"};
  std::vector<long long> v(set.num_events());
  std::vector<std::uint32_t> flags(set.num_events());
  std::tie(row.ns, row.allocs) =
      measure(kIters, [&] { (void)set.read_ex(v, flags); });
  (void)set.stop();
  return row;
}

/// read_ex against a spanning set whose mem component is quarantined:
/// the fail-fast path the breaker substitutes for the retry ladder.
Row run_quarantined_fail_fast() {
  bench::Rig rig(sim::make_empty_loop(10), pmu::sim_x86(),
                 {.charge_costs = false});
  papi::FaultPlan plan;
  plan.at(papi::FaultSite::kRead).fail_times = 1 << 30;  // hard down
  auto wrapped = std::make_unique<papi::FaultInjectingSubstrate>(
      std::make_unique<papi::MemBandwidthSubstrate>(*rig.machine), plan);
  auto mem_id = rig.library->register_component("mem", "faulty uncore",
                                                std::move(wrapped));
  papi::HealthPolicy policy;
  policy.max_consecutive_exhaustions = 1;
  policy.probe_cooldown_usec = 1'000'000'000'000ULL;  // never re-probe
  policy.probe_cooldown_max_usec = policy.probe_cooldown_usec;
  (void)rig.library->set_health_policy(policy);

  papi::EventSet& set = rig.new_set();
  (void)set.add_preset(papi::Preset::kTotIns);
  (void)set.add_named("mem::BANDWIDTH_RD");
  if (!set.start().ok()) return {"quarantined_fail_fast"};
  std::vector<long long> v(set.num_events());
  std::vector<std::uint32_t> flags(set.num_events());
  (void)set.read_ex(v, flags);  // trips the breaker (one exhausted read)
  if (!mem_id.ok() ||
      rig.library->component_health(mem_id.value()).value().state !=
          papi::HealthState::kQuarantined) {
    return {"quarantined_fail_fast"};
  }
  Row row{"quarantined_fail_fast"};
  std::tie(row.ns, row.allocs) =
      measure(kIters, [&] { (void)set.read_ex(v, flags); });
  (void)set.stop();
  return row;
}

void write_json(const std::vector<Row>& rows, double overhead_pct) {
  std::FILE* f = std::fopen("BENCH_health_overhead.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_health_overhead.json\n");
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"health_overhead\",\n  \"iters\": %d,\n"
               "  \"overhead_pct\": %.2f,\n  \"scenarios\": {\n",
               kIters, overhead_pct);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f, "    \"%s\": {\"read_ns\": %.1f, \"allocs\": %.3f}%s\n",
                 r.scenario, r.ns, r.allocs,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  bench::header("HO1", "component health monitor hot-path overhead");
  std::printf(
      "wall ns and heap allocations per call after start() (sim-x86,\n"
      "cost charging off; best of %d x %d iterations per cell):\n\n",
      kRepeats, kIters);
  std::printf("%-24s %10s %10s\n", "scenario", "read_ns", "allocs");

  std::vector<Row> rows;
  rows.push_back(run_direct("health_disabled", false));
  rows.push_back(run_direct("health_enabled", true));
  rows.push_back(run_read_ex_spanning());
  rows.push_back(run_quarantined_fail_fast());

  for (const Row& r : rows) {
    std::printf("%-24s %10.1f %10.3f\n", r.scenario, r.ns, r.allocs);
  }

  const Row& off = rows[0];
  const Row& on = rows[1];
  const double overhead_pct =
      off.ns > 0 ? (on.ns / off.ns - 1.0) * 100.0 : 0.0;
  write_json(rows, overhead_pct);

  std::printf(
      "\nthe healthy-path bracket is two relaxed atomic loads per slice\n"
      "op; quarantined_fail_fast shows the rejection cost the breaker\n"
      "substitutes for a full retry ladder.  JSON written to\n"
      "BENCH_health_overhead.json.\n\n");

  // Gates: the health bracket must cost <= 5% on the direct read (with
  // half a nanosecond of absolute grace against timer noise on very
  // short calls), and every steady-state row stays allocation-free.
  bool gate_ok = true;
  if (off.ns > 0 && on.ns > off.ns * 1.05 + 0.5) {
    std::printf("GATE FAIL: health_enabled read %.1f ns exceeds 5%% over "
                "health_disabled %.1f ns\n", on.ns, off.ns);
    gate_ok = false;
  }
  for (const Row& r : rows) {
    if (r.ns == 0.0) {
      std::printf("GATE FAIL: scenario %s did not run\n", r.scenario);
      gate_ok = false;
    }
    if (r.allocs != 0.0) {
      std::printf("GATE FAIL: scenario %s allocates (%.3f allocs/call)\n",
                  r.scenario, r.allocs);
      gate_ok = false;
    }
  }
  if (gate_ok) {
    std::printf("gate: health_enabled %.1f ns vs disabled %.1f ns "
                "(%+.1f%%), all rows 0 allocs — OK\n",
                on.ns, off.ns, overhead_pct);
  }
  return gate_ok ? 0 : 1;
}
