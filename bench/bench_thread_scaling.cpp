// TS1: hot-path cost of the thread-aware library — nanoseconds per
// start/read/stop call when 1..64 threads hammer one shared Library
// concurrently, each through its own CounterContext.  The contention-free
// registry claims the counter hot path shares no mutable state between
// threads and takes zero lock-prefixed instructions; if that holds,
// per-call cost stays flat as threads are added.
//
// Measurement uses CLOCK_THREAD_CPUTIME_ID (per-thread CPU time), not
// wall clock: at 16/32/64 threads the machine is oversubscribed and wall
// time measures the scheduler, not the library.  CPU time per call is
// the honest scaling signal — cross-thread contention (lock waits show
// as spinning, cache-line ping-pong as stalls) inflates it, scheduling
// delay does not.
//
// Emits BENCH_thread_scaling.json and exit-gates the headline claim:
// per-read CPU cost at 64 threads within 1.25x of single-threaded.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <thread>
#include <vector>

#include "bench_util.h"

using namespace papirepro;

namespace {

/// Per-thread CPU nanoseconds (Linux); falls back to wall time where the
/// thread clock is unavailable.
std::uint64_t thread_cpu_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct HotPathCosts {
  double read_ns = 0;
  double start_stop_ns = 0;
};

// One thread's measurement loop over its own machine + EventSet.  All
// threads arm, then spin on the shared release gate so the measured
// windows overlap — contention, if any exists, is actually exercised.
HotPathCosts measure_thread(papi::Library& library,
                            papi::SimSubstrate& substrate,
                            sim::Machine& machine, int read_iters,
                            int pair_iters, std::atomic<int>& armed,
                            std::atomic<bool>& go) {
  substrate.bind_thread_machine(machine);
  auto handle = library.create_event_set();
  papi::EventSet* set = library.event_set(handle.value()).value();
  (void)set->add_preset(papi::Preset::kTotIns);

  HotPathCosts costs;
  long long v[1];
  if (!set->start().ok()) return costs;
  armed.fetch_add(1, std::memory_order_acq_rel);
  while (!go.load(std::memory_order_acquire)) std::this_thread::yield();

  const std::uint64_t t0 = thread_cpu_ns();
  for (int i = 0; i < read_iters; ++i) (void)set->read(v);
  const std::uint64_t t1 = thread_cpu_ns();
  (void)set->stop();

  const std::uint64_t t2 = thread_cpu_ns();
  for (int i = 0; i < pair_iters; ++i) {
    (void)set->start();
    (void)set->stop();
  }
  const std::uint64_t t3 = thread_cpu_ns();

  costs.read_ns = static_cast<double>(t1 - t0) / read_iters;
  costs.start_stop_ns = static_cast<double>(t3 - t2) / pair_iters;
  (void)library.destroy_event_set(handle.value());
  (void)library.unregister_thread();
  return costs;
}

HotPathCosts run_at(int num_threads) {
  // Scale iterations down as threads go up so the oversubscribed runs
  // finish promptly; per-thread CPU time stays well above the thread
  // clock's resolution either way.
  const int read_iters = num_threads >= 16 ? 20'000 : 50'000;
  const int pair_iters = num_threads >= 16 ? 2'000 : 10'000;

  // Per-thread machines over a tiny workload; costs off so the clock
  // measures the library layer, not the simulated syscall model.
  std::vector<sim::Workload> workloads;
  std::vector<std::unique_ptr<sim::Machine>> machines;
  for (int t = 0; t < num_threads; ++t) {
    workloads.push_back(sim::make_empty_loop(10));
    machines.push_back(std::make_unique<sim::Machine>(
        workloads.back().program, pmu::sim_x86().machine));
  }
  auto owned = std::make_unique<papi::SimSubstrate>(
      *machines[0], pmu::sim_x86(),
      papi::SimSubstrateOptions{.charge_costs = false});
  papi::SimSubstrate* substrate = owned.get();
  papi::Library library(std::move(owned));

  std::atomic<int> armed{0};
  std::atomic<bool> go{false};
  std::vector<HotPathCosts> per_thread(num_threads);
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      per_thread[t] = measure_thread(library, *substrate, *machines[t],
                                     read_iters, pair_iters, armed, go);
    });
  }
  while (armed.load(std::memory_order_acquire) < num_threads) {
    std::this_thread::yield();
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  HotPathCosts mean;
  for (const HotPathCosts& c : per_thread) {
    mean.read_ns += c.read_ns;
    mean.start_stop_ns += c.start_stop_ns;
  }
  mean.read_ns /= num_threads;
  mean.start_stop_ns /= num_threads;
  std::printf("%8d %14.0f %18.0f\n", num_threads, mean.read_ns,
              mean.start_stop_ns);
  return mean;
}

}  // namespace

int main() {
  bench::header("TS1", "per-thread hot-path cost vs thread count");
  std::printf("mean CPU ns per call (CLOCK_THREAD_CPUTIME_ID), each "
              "thread driving\nits own EventSet through one shared "
              "Library (sim-x86, cost charging\noff):\n\n");
  std::printf("%8s %14s %18s\n", "threads", "read_cpu_ns",
              "start+stop_cpu_ns");
  const std::vector<int> counts = {1, 2, 4, 8, 16, 32, 64};
  std::vector<HotPathCosts> rows;
  for (const int n : counts) rows.push_back(run_at(n));
  std::printf("\nFlat columns = the counter hot path stays per-thread "
              "(lock-free\nregistry scans + uncontended CAS); growth "
              "would mean cross-thread\ncontention crept back in.\n");

  std::FILE* f = std::fopen("BENCH_thread_scaling.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"thread_scaling\",\n"
                    "  \"clock\": \"thread_cpu\",\n  \"scenarios\": {\n");
    for (std::size_t i = 0; i < counts.size(); ++i) {
      std::fprintf(f,
                   "    \"threads_x%d\": {\"read_ns\": %.1f, "
                   "\"start_stop_ns\": %.1f}%s\n",
                   counts[i], rows[i].read_ns, rows[i].start_stop_ns,
                   i + 1 < counts.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
  } else {
    std::fprintf(stderr, "cannot write BENCH_thread_scaling.json\n");
  }

  // Exit gate: per-read CPU cost at 64 threads within 1.25x of the
  // single-thread baseline.  CPU time excludes scheduler wait, so this
  // holds on oversubscribed CI boxes iff the read path truly shares no
  // contended state.
  const double x1 = rows.front().read_ns;
  const double x64 = rows.back().read_ns;
  if (x1 > 0 && x64 > 1.25 * x1) {
    std::printf("\nGATE FAIL: 64-thread read %.0f ns exceeds 1.25x "
                "single-thread %.0f ns\n", x64, x1);
    return 1;
  }
  std::printf("\ngate: 64-thread read %.0f ns <= 1.25x single-thread "
              "%.0f ns — OK\n", x64, x1);
  return 0;
}
