// TS1: hot-path cost of the thread-aware library — wall nanoseconds per
// start/read/stop call when 1, 2, 4, 8 threads hammer one shared
// Library concurrently, each through its own CounterContext.  The
// per-thread refactor claims the counter hot path shares no mutable
// state between threads; if that holds, per-call cost stays flat as
// threads are added (the registry lookup is a shared_lock and the
// running-slot CAS is uncontended).
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"

using namespace papirepro;

namespace {

struct HotPathCosts {
  double read_ns = 0;
  double start_stop_ns = 0;
};

// One thread's measurement loop over its own machine + EventSet.
HotPathCosts measure_thread(papi::Library& library,
                            papi::SimSubstrate& substrate,
                            sim::Machine& machine, int read_iters,
                            int pair_iters) {
  substrate.bind_thread_machine(machine);
  auto handle = library.create_event_set();
  papi::EventSet* set = library.event_set(handle.value()).value();
  (void)set->add_preset(papi::Preset::kTotIns);

  HotPathCosts costs;
  long long v[1];
  if (!set->start().ok()) return costs;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < read_iters; ++i) (void)set->read(v);
  const auto t1 = std::chrono::steady_clock::now();
  (void)set->stop();

  const auto t2 = std::chrono::steady_clock::now();
  for (int i = 0; i < pair_iters; ++i) {
    (void)set->start();
    (void)set->stop();
  }
  const auto t3 = std::chrono::steady_clock::now();

  costs.read_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      read_iters;
  costs.start_stop_ns =
      std::chrono::duration<double, std::nano>(t3 - t2).count() /
      pair_iters;
  (void)library.destroy_event_set(handle.value());
  (void)library.unregister_thread();
  return costs;
}

void run_at(int num_threads) {
  constexpr int kReadIters = 50'000;
  constexpr int kPairIters = 10'000;

  // Per-thread machines over a tiny workload; costs off so wall time
  // measures the library layer, not the simulated syscall model.
  std::vector<sim::Workload> workloads;
  std::vector<std::unique_ptr<sim::Machine>> machines;
  for (int t = 0; t < num_threads; ++t) {
    workloads.push_back(sim::make_empty_loop(10));
    machines.push_back(std::make_unique<sim::Machine>(
        workloads.back().program, pmu::sim_x86().machine));
  }
  auto owned = std::make_unique<papi::SimSubstrate>(
      *machines[0], pmu::sim_x86(),
      papi::SimSubstrateOptions{.charge_costs = false});
  papi::SimSubstrate* substrate = owned.get();
  papi::Library library(std::move(owned));

  std::vector<HotPathCosts> per_thread(num_threads);
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      per_thread[t] = measure_thread(library, *substrate, *machines[t],
                                     kReadIters, kPairIters);
    });
  }
  for (auto& th : threads) th.join();

  double read_ns = 0;
  double pair_ns = 0;
  for (const HotPathCosts& c : per_thread) {
    read_ns += c.read_ns;
    pair_ns += c.start_stop_ns;
  }
  read_ns /= num_threads;
  pair_ns /= num_threads;
  std::printf("%8d %14.0f %18.0f\n", num_threads, read_ns, pair_ns);
}

}  // namespace

int main() {
  bench::header("TS1", "per-thread hot-path cost vs thread count");
  std::printf("mean wall ns per call, each thread driving its own "
              "EventSet\nthrough one shared Library (sim-x86, cost "
              "charging off):\n\n");
  std::printf("%8s %14s %18s\n", "threads", "read_ns", "start+stop_ns");
  for (const int n : {1, 2, 4, 8}) run_at(n);
  std::printf("\nFlat columns = the counter hot path stays per-thread "
              "(registry\nshared_lock + uncontended CAS); growth would "
              "mean cross-thread\ncontention crept back in.\n");
  return 0;
}
