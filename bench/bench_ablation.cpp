// Ablations over the design knobs DESIGN.md calls out: the multiplex
// time-slice length, the ProfileMe sampling period, and the out-of-order
// skid depth.  Each sweep isolates one knob and shows the tradeoff the
// default sits on.
#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "tools/vprof.h"

using namespace papirepro;
using bench::Rig;

namespace {

// --- (a) multiplex slice length: accuracy vs switching overhead ---
void mux_slice_sweep() {
  std::printf("(a) multiplex slice length, 6 events on 4 counters, "
              "saxpy(300000):\n\n");
  std::printf("%14s %12s %14s %12s\n", "slice (cyc)", "rotations",
              "worst_rel_err", "switch_ovh");
  // Slices below the ~11k-cycle switch cost degenerate into an interrupt
  // storm (rotation per instruction) — start just above it.
  for (std::uint64_t slice :
       {15'000ULL, 40'000ULL, 160'000ULL, 640'000ULL, 2'560'000ULL}) {
    const std::int64_t n = 300'000;
    Rig rig(sim::make_saxpy(n), pmu::sim_x86(), {});
    papi::EventSet& set = rig.new_set();
    (void)set.enable_multiplex(slice);
    const struct {
      const char* name;
      double expected;
    } checks[] = {{"PAPI_FMA_INS", double(n)},
                  {"PAPI_LD_INS", double(2 * n)},
                  {"PAPI_SR_INS", double(n)},
                  {"PAPI_BR_INS", double(n)},
                  {"PAPI_L1_DCA", double(3 * n)},
                  {"PAPI_TOT_INS", double(8 * n + 5)}};
    for (const auto& c : checks) (void)set.add_named(c.name);
    (void)set.start();
    rig.machine->run();
    std::vector<long long> v(set.num_events());
    (void)set.stop(v);
    double worst = 0;
    for (std::size_t i = 0; i < std::size(checks); ++i) {
      worst = std::max(worst, bench::rel_error(static_cast<double>(v[i]),
                                               checks[i].expected));
    }
    const std::uint64_t rotations =
        rig.machine->cycles() / std::max<std::uint64_t>(slice, 1);
    std::printf("%14llu %12llu %14.4f %11.2f%%\n",
                static_cast<unsigned long long>(slice),
                static_cast<unsigned long long>(rotations), worst,
                100 * rig.overhead_fraction());
  }
  std::printf("\n  tradeoff: short slices burn cycles on start/stop "
              "switches; long slices\n  starve groups of samples on "
              "short runs.\n");
}

// --- (b) ProfileMe period: estimation error vs sampling overhead ---
void sampling_period_sweep() {
  std::printf("\n(b) ProfileMe sampling period, sim-alpha, "
              "saxpy(400000), PAPI_FP_OPS:\n\n");
  std::printf("%14s %10s %12s %12s\n", "period (ins)", "samples",
              "rel_err", "overhead");
  for (std::uint64_t period :
       {64ULL, 128ULL, 256ULL, 512ULL, 2'048ULL, 8'192ULL}) {
    papi::SimSubstrateOptions options;
    options.sample_period = period;
    const std::int64_t n = 400'000;
    Rig rig(sim::make_saxpy(n), pmu::sim_alpha(), options);
    (void)rig.substrate->set_estimation(true);
    papi::EventSet& set = rig.new_set();
    (void)set.add_preset(papi::Preset::kFpOps);
    (void)set.start();
    rig.machine->run();
    long long v = 0;
    (void)set.stop({&v, 1});
    const auto* engine = rig.substrate->sampling_engine();
    std::printf("%14llu %10llu %12.4f %11.2f%%\n",
                static_cast<unsigned long long>(period),
                static_cast<unsigned long long>(
                    engine != nullptr ? engine->samples_taken() : 0),
                bench::rel_error(static_cast<double>(v),
                                 static_cast<double>(2 * n)),
                100 * rig.overhead_fraction());
  }
  std::printf("\n  tradeoff: denser sampling buys accuracy with overhead;"
              " the default (512)\n  sits at the paper's 1-2%% point.\n");
}

// --- (c) skid depth: attribution accuracy vs out-of-order window ---
void skid_sweep() {
  std::printf("\n(c) interrupt skid depth vs attribution accuracy "
              "(pointer chase, L1_DCM):\n\n");
  std::printf("%22s %10s %10s\n", "skid model", "samples", "exact");
  struct Case {
    const char* label;
    sim::SkidModel skid;
  };
  const Case cases[] = {
      {"precise (in-order)", sim::SkidModel::precise()},
      {"fixed 2", sim::SkidModel::fixed_skid(2)},
      {"fixed 6", sim::SkidModel::fixed_skid(6)},
      {"OoO cap 8", sim::SkidModel::out_of_order(0.3, 8, 1)},
      {"OoO cap 24", sim::SkidModel::out_of_order(0.3, 24, 3)},
      {"OoO cap 64", sim::SkidModel::out_of_order(0.3, 64, 8)},
  };
  for (const Case& c : cases) {
    pmu::PlatformDescription platform = pmu::sim_x86();
    platform.skid = c.skid;
    papi::SimSubstrateOptions options;
    options.charge_costs = false;
    Rig rig(sim::make_pointer_chase(1024, 100'000, 17), platform,
            options);
    papi::EventSet& set = rig.new_set();
    (void)set.add_preset(papi::Preset::kL1Dcm);
    papi::ProfileBuffer buf(sim::kTextBase,
                            rig.workload.program.size() *
                                sim::kInstrBytes);
    (void)set.profil(buf, papi::EventId::preset(papi::Preset::kL1Dcm),
                     400);
    (void)set.start();
    rig.machine->run();
    (void)set.stop();
    const auto acc =
        tools::attribution_accuracy(buf, rig.workload.program, 3);
    std::printf("%22s %10llu %9.1f%%\n", c.label,
                static_cast<unsigned long long>(acc.total_samples),
                100 * acc.exact);
  }
  std::printf("\n  tradeoff: attribution degrades from exact to uniform "
              "smear as the\n  out-of-order window deepens — why the "
              "paper pushes EAR/ProfileMe.\n");
}

}  // namespace

int main() {
  bench::header("ABL", "design-knob ablations (multiplex slice, sampling "
                       "period, skid)");
  mux_slice_sweep();
  sampling_period_sweep();
  skid_sweep();
  return 0;
}
