// E3: "Test runs of the PAPI calibrate utility on this substrate have
// shown that event counts converge to the expected value ... while
// incurring only one to two percent overhead, as compared to up to 30
// percent on other substrates that use direct counting."
//
// We reproduce both sides with the calibrate tool: direct-counting
// substrates reading the counters at a realistic per-interval rate pay
// tens of percent in system-call and cache-pollution cycles; the
// sim-alpha DADD substrate estimates the same counts from ProfileMe
// samples at ~1-2 % overhead, converging on long runs.
#include "bench_util.h"
#include "tools/calibrate.h"

using namespace papirepro;

namespace {

void report(const char* mode, const pmu::PlatformDescription& platform,
            const tools::CalibrationOptions& options, std::int64_t n) {
  auto rows =
      tools::calibrate_workload(sim::make_saxpy(n), platform, options);
  if (!rows.ok() || rows.value().empty()) {
    std::printf("%-26s %-12s (no measurable presets)\n", mode,
                platform.name.c_str());
    return;
  }
  // Report the FP_OPS row (the paper's calibrate target); platforms
  // that cannot derive FP_OPS (sim-t3e has no FMA event) report their
  // load count instead — overhead is what this table is about.
  const tools::CalibrationRow* chosen = nullptr;
  for (const tools::CalibrationRow& r : rows.value()) {
    if (r.event == "PAPI_FP_OPS") chosen = &r;
  }
  if (chosen == nullptr) {
    for (const tools::CalibrationRow& r : rows.value()) {
      if (r.event == "PAPI_LD_INS") chosen = &r;
    }
  }
  if (chosen == nullptr) chosen = &rows.value().front();
  std::printf("%-26s %-12s %12.0f %12.0f %9.4f %9.2f%%  (%s)\n", mode,
              platform.name.c_str(), chosen->expected, chosen->measured,
              chosen->rel_error, 100.0 * chosen->overhead_fraction,
              chosen->event.c_str());
}

}  // namespace

int main() {
  bench::header(
      "E3", "direct-counting overhead vs sampling estimation (Section 4)");
  std::printf("workload: saxpy(200000); FP_OPS calibration\n\n");
  std::printf("%-26s %-12s %12s %12s %9s %10s\n", "mode", "substrate",
              "expected", "measured", "rel_err", "overhead");

  const std::int64_t n = 200'000;
  tools::CalibrationOptions whole;  // one start/stop around the run

  // Direct counting, coarse: cheap everywhere.
  report("direct, whole-run", pmu::sim_x86(), whole, n);
  report("direct, whole-run", pmu::sim_power3(), whole, n);

  // Direct counting, fine-grained reads (the tight-instrumentation
  // regime Section 4 calls excessive).
  for (std::uint64_t interval : {50'000ULL, 20'000ULL, 10'000ULL}) {
    tools::CalibrationOptions fine;
    fine.read_interval_cycles = interval;
    char label[48];
    std::snprintf(label, sizeof(label), "direct, read every %lluc",
                  static_cast<unsigned long long>(interval));
    report(label, pmu::sim_x86(), fine, n);
  }

  // The register-level extreme: Cray T3E reads cost a few cycles, so
  // even the finest-grained direct counting stays nearly free.
  {
    tools::CalibrationOptions fine;
    fine.read_interval_cycles = 10'000;
    report("direct, read every 10000c", pmu::sim_t3e(), fine, n);
  }

  // DADD-style sampling estimation on sim-alpha.
  tools::CalibrationOptions est;
  est.use_estimation = true;
  report("sampled estimation", pmu::sim_alpha(), est, n);
  report("sampled estimation", pmu::sim_alpha(), est, 5 * n);

  std::printf(
      "\nshape to reproduce: fine-grained direct counting reaches tens of\n"
      "percent overhead (paper: 'up to 30 percent'), sampling stays at\n"
      "~1-2%% with rel_err -> 0 as the run lengthens.\n");
  return 0;
}
