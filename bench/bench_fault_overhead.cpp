// Hardening tax: the fault-injecting decorator and the bounded-retry
// wrapper stay compiled into the stack; this harness checks that a
// *disabled* decorator plus the retry fast path cost under 5% on the
// hot read()/start() paths versus the bare substrate.  Three rigs:
//
//   bare      - SimSubstrate straight into the Library (the seed path)
//   decorated - FaultInjectingSubstrate wrapped, injection DISABLED
//               (one relaxed atomic load per call)
//   injecting - decorator enabled with an all-zero plan (mutex-guarded
//               consult per call; the price of live fault accounting)
#include <chrono>

#include "bench_util.h"
#include "substrate/fault_substrate.h"

using namespace papirepro;

namespace {

struct PathCosts {
  double read_ns = 0;
  double start_stop_ns = 0;
};

/// Wall-clock cost per read() and per start/stop pair, averaged over
/// enough iterations to squeeze out timer noise.
PathCosts measure(papi::Library& library, sim::Machine& machine) {
  auto handle = library.create_event_set();
  papi::EventSet& set = *library.event_set(handle.value()).value();
  if (!set.add_named("PAPI_TOT_INS").ok()) return {};

  PathCosts costs;
  constexpr int kReads = 200'000;
  constexpr int kStartStops = 20'000;
  std::vector<long long> v(1);

  if (!set.start().ok()) return {};
  machine.run(10'000);
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kReads; ++i) {
    (void)set.read(v);
  }
  auto t1 = std::chrono::steady_clock::now();
  (void)set.stop();
  costs.read_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / kReads;

  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kStartStops; ++i) {
    (void)set.start();
    (void)set.stop();
  }
  t1 = std::chrono::steady_clock::now();
  costs.start_stop_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      kStartStops;
  return costs;
}

double pct_delta(double base, double value) {
  return base == 0 ? 0.0 : 100.0 * (value - base) / base;
}

}  // namespace

int main() {
  bench::header("R1",
                "fault-injection hardening overhead on hot paths");
  std::printf(
      "workload: saxpy(400000) on sim-x86; per-op wall-clock cost\n\n");
  std::printf("%-11s %12s %9s %16s %9s\n", "rig", "read (ns)", "vs bare",
              "start+stop (ns)", "vs bare");

  auto make_rig = [](int mode) {
    auto rig = std::make_unique<bench::Rig>(sim::make_saxpy(400'000),
                                            pmu::sim_x86(),
                                            papi::SimSubstrateOptions{
                                                .charge_costs = false});
    if (mode > 0) {
      // Re-wrap the rig's library around a decorated substrate.
      auto inner = std::make_unique<papi::SimSubstrate>(
          *rig->machine, pmu::sim_x86(),
          papi::SimSubstrateOptions{.charge_costs = false});
      auto wrapped = std::make_unique<papi::FaultInjectingSubstrate>(
          std::move(inner), papi::FaultPlan{});
      wrapped->set_enabled(mode == 2);
      rig->library =
          std::make_unique<papi::Library>(std::move(wrapped));
    }
    return rig;
  };

  // Best-of-N per rig: the minimum is the least-noise estimate of the
  // true path cost on a time-shared machine.
  auto best_of = [&](int mode) {
    PathCosts best;
    for (int rep = 0; rep < 5; ++rep) {
      auto rig = make_rig(mode);
      const PathCosts c = measure(*rig->library, *rig->machine);
      if (rep == 0 || c.read_ns < best.read_ns) best.read_ns = c.read_ns;
      if (rep == 0 || c.start_stop_ns < best.start_stop_ns) {
        best.start_stop_ns = c.start_stop_ns;
      }
    }
    return best;
  };
  const PathCosts bare = best_of(0);
  const PathCosts decorated = best_of(1);
  const PathCosts injecting = best_of(2);

  std::printf("%-11s %12.1f %9s %16.1f %9s\n", "bare", bare.read_ns, "-",
              bare.start_stop_ns, "-");
  std::printf("%-11s %12.1f %+8.2f%% %16.1f %+8.2f%%\n", "decorated",
              decorated.read_ns, pct_delta(bare.read_ns, decorated.read_ns),
              decorated.start_stop_ns,
              pct_delta(bare.start_stop_ns, decorated.start_stop_ns));
  std::printf("%-11s %12.1f %+8.2f%% %16.1f %+8.2f%%\n", "injecting",
              injecting.read_ns,
              pct_delta(bare.read_ns, injecting.read_ns),
              injecting.start_stop_ns,
              pct_delta(bare.start_stop_ns, injecting.start_stop_ns));

  std::printf(
      "\nshape to reproduce: 'decorated' (injection compiled in but\n"
      "disabled) stays within 5%% of 'bare' on both paths; 'injecting'\n"
      "pays the per-call mutex but stays in the same decade.\n");
  return 0;
}
