// E8: "event counts converge to the expected value, given a long enough
// run time to obtain sufficient samples" — the calibrate utility on the
// DADD/ProfileMe substrate, swept over run length.  Error falls roughly
// as 1/sqrt(samples); overhead stays pinned at the per-sample hardware
// cost (~1-2 %).
#include <algorithm>

#include "bench_util.h"
#include "tools/calibrate.h"

using namespace papirepro;

int main() {
  bench::header("E8", "sampled-count convergence on the DADD substrate "
                      "(Section 4)");
  std::printf("sim-alpha ProfileMe estimation, saxpy(n), PAPI_FP_OPS\n\n");
  std::printf("%12s %12s %12s %12s %10s\n", "n", "expected", "measured",
              "rel_err", "overhead");

  tools::CalibrationOptions options;
  options.use_estimation = true;
  for (std::int64_t n : {500LL, 2'000LL, 10'000LL, 50'000LL, 200'000LL,
                         1'000'000LL, 4'000'000LL}) {
    auto rows = tools::calibrate_workload(sim::make_saxpy(n),
                                          pmu::sim_alpha(), options);
    if (!rows.ok()) return 1;
    for (const tools::CalibrationRow& r : rows.value()) {
      if (r.event != "PAPI_FP_OPS") continue;
      std::printf("%12lld %12.0f %12.0f %12.5f %9.2f%%\n",
                  static_cast<long long>(n), r.expected, r.measured,
                  r.rel_error, 100 * r.overhead_fraction);
    }
  }
  std::printf("\nshape: rel_err decays toward 0 with run length while "
              "overhead stays ~1-2%%.\n");

  std::printf("\nall calibratable presets at n = 1,000,000:\n");
  auto rows = tools::calibrate_workload(sim::make_saxpy(1'000'000),
                                        pmu::sim_alpha(), options);
  if (rows.ok()) {
    std::printf("%s", tools::render_calibration(rows.value()).c_str());
  }
  return 0;
}
