// E9: "the overhead of library calls to read the hardware counters can
// be excessive if the routines are called frequently — for example, on
// entry and exit of a small subroutine or basic block within a tight
// loop.  Unacceptable overhead has caused some tool developers to reduce
// the number of calls through statistical sampling techniques."
//
// Sweeps dynaprof entry/exit probing over function body sizes (the
// smaller the function, the worse the relative cost), then shows the
// statistical-sampling alternative (overflow-driven profiling) on the
// same workload.
#include "bench_util.h"
#include "tools/dynaprof.h"

using namespace papirepro;
using bench::Rig;

namespace {

void probe_sweep() {
  std::printf("dynaprof entry/exit probes on a leaf called 20000x:\n\n");
  std::printf("%14s %14s %14s %10s\n", "body (FMAs)", "app cycles",
              "probe cycles", "overhead");
  for (int body : {1, 2, 4, 16, 64, 256}) {
    tools::DynaprofOptions options;
    options.functions = {"work"};
    options.metrics = {papi::EventId::preset(papi::Preset::kTotCyc)};
    tools::DynaprofSession session(sim::make_tight_call(20'000, body),
                                   pmu::sim_x86(), options);
    if (!session.run().ok()) return;
    const auto& m = session.machine();
    const std::uint64_t app = m.cycles() - m.overhead_cycles();
    std::printf("%14d %14llu %14llu %9.1f%%\n", body,
                static_cast<unsigned long long>(app),
                static_cast<unsigned long long>(m.overhead_cycles()),
                100.0 * static_cast<double>(m.overhead_cycles()) /
                    static_cast<double>(m.cycles()));
  }
}

void sampling_alternative() {
  std::printf("\nstatistical-sampling alternative (overflow profiling of "
              "the same\nworkload, threshold sweep):\n\n");
  std::printf("%14s %12s %14s %10s\n", "threshold", "samples",
              "probe cycles", "overhead");
  // Thresholds well above the interrupt-handler cost (4500 cycles on
  // sim-x86); below that the handler's own cycles retrigger overflow — a
  // real interrupt-storm failure mode, but not the regime tools run in.
  for (std::uint64_t threshold : {20'000ULL, 100'000ULL, 500'000ULL}) {
    Rig rig(sim::make_tight_call(20'000, 2), pmu::sim_x86(), {});
    papi::EventSet& set = rig.new_set();
    (void)set.add_preset(papi::Preset::kTotCyc);
    papi::ProfileBuffer buf(sim::kTextBase,
                            rig.workload.program.size() *
                                sim::kInstrBytes);
    (void)set.profil(buf, papi::EventId::preset(papi::Preset::kTotCyc),
                     threshold);
    (void)set.start();
    rig.machine->run();
    (void)set.stop();
    std::printf("%14llu %12llu %14llu %9.1f%%\n",
                static_cast<unsigned long long>(threshold),
                static_cast<unsigned long long>(buf.total_samples()),
                static_cast<unsigned long long>(
                    rig.machine->overhead_cycles()),
                100.0 * rig.overhead_fraction());
  }
}

}  // namespace

int main() {
  bench::header("E9", "instrumentation granularity vs overhead "
                      "(Section 4)");
  probe_sweep();
  sampling_alternative();
  std::printf("\nshape: per-call probing of a tiny function costs a large"
              " multiple of\nthe application itself; overflow-driven "
              "sampling brings overhead down\nto single-digit percent at"
              " equivalent insight.\n");
  return 0;
}
