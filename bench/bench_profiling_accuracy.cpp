// E6: profiling attribution accuracy.  "On out-of-order processors, the
// program counter may yield an address that is several instructions or
// even basic blocks removed from the true address ... DCPI has very low
// overhead and identifies the exact address of an instruction ... A
// similar capability exists on the Itanium ... where Event Address
// Registers (EARs) accurately identify the instruction and data
// addresses."
//
// Profiles L1 D-cache misses of the pointer chase (whose misses all come
// from one load instruction) on every platform and reports the fraction
// of samples attributed to the correct instruction / source line /
// function.
#include "bench_util.h"
#include "tools/vprof.h"

using namespace papirepro;
using bench::Rig;

namespace {

constexpr std::int64_t kNodes = 1024;
constexpr std::int64_t kIters = 120'000;
constexpr std::int64_t kLoadIndex = 3;  // the chase load instruction

tools::AttributionAccuracy profile_interrupt(
    const pmu::PlatformDescription& platform, bool prefer_precise,
    const sim::Program** program_out) {
  papi::SimSubstrateOptions options;
  options.charge_costs = false;
  Rig rig(sim::make_pointer_chase(kNodes, kIters, 17), platform, options);
  papi::EventSet& set = rig.new_set();
  (void)set.add_preset(papi::Preset::kL1Dcm);
  papi::ProfileBuffer buf(sim::kTextBase,
                          rig.workload.program.size() * sim::kInstrBytes);
  (void)set.profil(buf, papi::EventId::preset(papi::Preset::kL1Dcm), 400,
                   prefer_precise);
  (void)set.start();
  rig.machine->run();
  (void)set.stop();
  *program_out = nullptr;
  return tools::attribution_accuracy(buf, rig.workload.program,
                                     kLoadIndex);
}

/// sim-alpha path: DCPI-style profiling straight from the ProfileMe
/// sample buffer (no overflow interrupts involved).
tools::AttributionAccuracy profile_dcpi() {
  papi::SimSubstrateOptions options;
  options.charge_costs = false;
  options.sample_period = 256;
  Rig rig(sim::make_pointer_chase(kNodes, kIters, 17), pmu::sim_alpha(),
          options);
  (void)rig.substrate->set_estimation(true);
  papi::EventSet& set = rig.new_set();
  (void)set.add_named("PME_L1D_MISS");
  (void)set.start();
  rig.machine->run();

  papi::ProfileBuffer buf(sim::kTextBase,
                          rig.workload.program.size() * sim::kInstrBytes);
  const pmu::ProfileMeEngine* engine = rig.substrate->sampling_engine();
  if (engine != nullptr) {
    for (const auto& s : engine->samples()) {
      if (s.weights[0] > 0) buf.record(s.pc);  // samples that missed L1D
    }
  }
  (void)set.stop();
  return tools::attribution_accuracy(buf, rig.workload.program,
                                     kLoadIndex);
}

void row(const char* platform, const char* mechanism,
         const tools::AttributionAccuracy& acc) {
  std::printf("%-12s %-22s %10llu %9.1f%% %9.1f%% %9.1f%%\n", platform,
              mechanism, static_cast<unsigned long long>(acc.total_samples),
              100 * acc.exact, 100 * acc.same_line,
              100 * acc.same_function);
}

}  // namespace

int main() {
  bench::header("E6", "PC attribution: interrupt skid vs EAR/ProfileMe "
                      "(Section 4)");
  std::printf("profiling PAPI_L1_DCM of pointer_chase(%lld nodes, %lld "
              "iters); the single\nchase load (instr %lld) causes every "
              "miss.\n\n",
              static_cast<long long>(kNodes),
              static_cast<long long>(kIters),
              static_cast<long long>(kLoadIndex));
  std::printf("%-12s %-22s %10s %10s %10s %10s\n", "platform",
              "mechanism", "samples", "exact", "same_line", "same_func");

  const sim::Program* unused;
  row("sim-x86", "interrupt (OoO skid)",
      profile_interrupt(pmu::sim_x86(), true, &unused));
  row("sim-power3", "interrupt (skid 2)",
      profile_interrupt(pmu::sim_power3(), true, &unused));
  row("sim-ia64", "interrupt, no EAR",
      profile_interrupt(pmu::sim_ia64(), false, &unused));
  row("sim-ia64", "EAR precise",
      profile_interrupt(pmu::sim_ia64(), true, &unused));
  row("sim-alpha", "ProfileMe samples", profile_dcpi());

  std::printf(
      "\nshape: out-of-order interrupts smear samples across the loop\n"
      "('several instructions removed'); EAR and ProfileMe attribute\n"
      "~100%% to the exact instruction.\n");
  return 0;
}
