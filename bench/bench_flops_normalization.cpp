// E7: the POWER3 FP-count discrepancy and PAPI_flops normalization.
// "a discrepancy in the number of floating point instructions was
// resolved when it was discovered that extra rounding instructions were
// being introduced ... and were being included as floating point
// instructions", and "the PAPI flops call ... sometimes entails
// multiplying the measured counts by a factor of two to count
// floating-point multiply-add instructions as two floating point
// operations and/or subtracting counts for miscellaneous types of
// floating point instructions."
#include "bench_util.h"
#include "core/highlevel.h"

using namespace papirepro;
using bench::Rig;

namespace {

struct Row {
  long long raw_fp_ins = -1;   // PAPI_FP_INS (raw hardware semantics)
  long long fp_ops = -1;       // PAPI_FP_OPS preset (normalized derived)
  long long flops_call = -1;   // PAPI_flops high-level result
};

Row measure(const pmu::PlatformDescription& platform,
            const sim::Workload& workload) {
  papi::SimSubstrateOptions options;
  options.charge_costs = false;
  Row row;
  // One preset per run: FP_INS and FP_OPS need three high-counter
  // natives together, which a 4-counter machine cannot co-schedule.
  for (auto [preset, slot] :
       {std::pair{papi::Preset::kFpIns, &row.raw_fp_ins},
        {papi::Preset::kFpOps, &row.fp_ops}}) {
    Rig rig(workload, platform, options);
    papi::EventSet& set = rig.new_set();
    if (!set.add_preset(preset).ok()) continue;
    (void)set.start();
    rig.machine->run();
    (void)set.stop({slot, 1});
  }
  {
    Rig rig(workload, platform, options);
    papi::HighLevel hl(*rig.library);
    if (hl.flops().ok()) {
      rig.machine->run();
      auto info = hl.flops();
      if (info.ok()) row.flops_call = info.value().flops;
    }
  }
  return row;
}

void print_row(const char* platform, const char* kernel, const Row& r,
               long long expected) {
  auto cell = [](long long v) {
    static char buf[32];
    if (v < 0) return "(unmapped)";
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return static_cast<const char*>(buf);
  };
  std::printf("%-12s %-14s %14s", platform, kernel, cell(r.raw_fp_ins));
  std::printf(" %14s", cell(r.fp_ops));
  std::printf(" %14s %14lld\n", cell(r.flops_call), expected);
}

}  // namespace

int main() {
  bench::header("E7", "FP counting quirks and PAPI_flops normalization "
                      "(Section 4)");
  const std::int64_t n = 100'000;
  std::printf("kernels: fcvt_mixed(n): n fadds + n double->single converts"
              " (true FLOPs = n)\n         saxpy(n): n FMAs (true FLOPs ="
              " 2n), n = %lld\n\n",
              static_cast<long long>(n));
  std::printf("%-12s %-14s %14s %14s %14s %14s\n", "platform", "kernel",
              "PAPI_FP_INS", "PAPI_FP_OPS", "PAPI_flops", "true FLOPs");

  const sim::Workload cvt = sim::make_fcvt_mixed(n);
  const sim::Workload fma = sim::make_saxpy(n);
  for (const pmu::PlatformDescription* p :
       {&pmu::sim_power3(), &pmu::sim_x86(), &pmu::sim_ia64()}) {
    print_row(p->name.c_str(), "fcvt_mixed", measure(*p, cvt), n);
    print_row(p->name.c_str(), "saxpy/fma", measure(*p, fma), 2 * n);
  }

  std::printf(
      "\nshape: on sim-power3 the raw PAPI_FP_INS of fcvt_mixed reads 2n\n"
      "(rounding instructions included) while PAPI_FP_OPS/PAPI_flops read"
      " n;\non the FMA kernel raw counts read n but normalized FLOPs read"
      " 2n.\n");
  return 0;
}
