// AG1: cluster-scale aggregation cost and correctness at 1024 simulated
// ranks.  One library hosts 1024 EventSets (1 live + 1023 stopped at
// staggered times, so the value population has a real spread); each
// poll snapshots all of them (seqlock publications — the counting side
// is never stopped), batches each node's 32 ranks into one rank-run
// wire frame (the node-agent shape of the reduction tree), ingests the
// frames into the collector, reduces rank -> node -> cluster, and
// publishes the reduction through the shared snapshot region.
//
// Gates (nonzero exit on violation):
//   1. the cluster min/max/sum/avg match a sequentially computed oracle
//      exactly, and p50/p95/p99 sit within the histogram's documented
//      12.5 % relative error;
//   2. a steady-state poll (snapshot + encode + ingest + reduce +
//      publish) performs zero heap allocations;
//   3. decoding ingest stays within 2x the snapshot_all per-set cost —
//      the aggregation tax cannot dwarf the read it aggregates;
//   4. the counting side is never stopped: the telemetry stop counter
//      is flat across the whole measurement;
//   5. the seqlock region round-trips the final reduction intact.
//
// Clock: per-thread CPU time, min over reps (bench_read_hotpath's
// method).  Emits BENCH_aggregation.json for PR-over-PR tracking.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <new>
#include <vector>

#include "aggregate/collector.h"
#include "aggregate/shm_region.h"
#include "aggregate/wire.h"
#include "bench_util.h"

// --- global operator-new counting (zero-alloc gate) -----------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace papirepro;
namespace aggregate = papirepro::aggregate;

namespace {

constexpr int kRanks = 1024;
constexpr std::uint32_t kMetrics = 2;  // TOT_CYC, TOT_INS
constexpr std::uint32_t kFanIn = 32;   // ranks per node = ranks per frame
constexpr int kReps = 5;
constexpr int kPollsPerRep = 50;

std::uint64_t thread_cpu_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Oracle {
  long long min[kMetrics];
  long long max[kMetrics];
  long long sum[kMetrics];
  double avg[kMetrics];
  std::uint64_t p50[kMetrics];
  std::uint64_t p95[kMetrics];
  std::uint64_t p99[kMetrics];
};

/// Sequential reference reduction over the per-rank metric values.
Oracle compute_oracle(
    const std::vector<std::vector<long long>>& per_metric) {
  Oracle o{};
  for (std::uint32_t m = 0; m < kMetrics; ++m) {
    std::vector<long long> sorted = per_metric[m];
    std::sort(sorted.begin(), sorted.end());
    o.min[m] = sorted.front();
    o.max[m] = sorted.back();
    long long sum = 0;
    for (const long long v : sorted) sum += v;
    o.sum[m] = sum;
    o.avg[m] = static_cast<double>(sum) /
               static_cast<double>(sorted.size());
    auto at = [&](double q) {
      auto idx = static_cast<std::size_t>(
          q * static_cast<double>(sorted.size()));
      if (idx >= sorted.size()) idx = sorted.size() - 1;
      return static_cast<std::uint64_t>(sorted[idx]);
    };
    o.p50[m] = at(0.50);
    o.p95[m] = at(0.95);
    o.p99[m] = at(0.99);
  }
  return o;
}

bool within_histogram_error(std::uint64_t got, std::uint64_t exact) {
  const double e = static_cast<double>(exact);
  const double g = static_cast<double>(got);
  return g <= e && g >= e * 0.875 - 1.0;
}

}  // namespace

int main() {
  bench::header("AG1", "cluster aggregation over 1024 simulated ranks");

  // --- population: 1024 sets stopped at staggered machine times -----------
  bench::Rig rig(sim::make_empty_loop(1'000'000), pmu::sim_x86(),
                 {.charge_costs = false});
  papi::Library& library = *rig.library;
  std::vector<int> handles;
  handles.reserve(kRanks);
  for (int i = 0; i < kRanks; ++i) {
    auto handle = library.create_event_set();
    if (!handle.ok()) return 1;
    papi::EventSet& set = *library.event_set(handle.value()).value();
    (void)set.add_preset(papi::Preset::kTotCyc);
    (void)set.add_preset(papi::Preset::kTotIns);
    handles.push_back(handle.value());
    if (i == 0) continue;  // rank 0 keeps counting through the bench
    if (!set.start().ok()) return 1;
    // Staggered stop times spread the value population across three
    // decades, so the percentile gates measure something real.
    rig.machine->run(10 + (i % 97) * 11);
    if (!set.stop().ok()) return 1;
  }
  papi::EventSet& live = *library.event_set(handles[0]).value();
  if (!live.start().ok()) return 1;
  rig.machine->run(5'000);

  aggregate::CollectorConfig cc;
  cc.max_ranks = kRanks;
  cc.ranks_per_node = 32;
  cc.num_metrics = kMetrics;
  aggregate::Collector collector(cc, &library.telemetry());
  aggregate::SharedSnapshotRegion region;

  std::vector<papi::SnapshotEntry> entries;
  std::vector<long long> values;
  std::vector<std::uint8_t> wire;

  // One full poll: snapshot every set, batch each node's 32 ranks into
  // one rank-run frame (the node-agent shape of the reduction tree),
  // ingest, reduce, publish.  Returns frames accepted.
  auto poll = [&]() -> std::size_t {
    if (!library.snapshot_all(entries, values).ok()) return 0;
    wire.clear();
    for (std::size_t base = 0; base < entries.size(); base += kFanIn) {
      const std::size_t n = std::min<std::size_t>(
          kFanIn, entries.size() - base);
      (void)aggregate::encode_frame(
          static_cast<std::uint32_t>(base), entries[base].pub_cycles,
          {&entries[base], n}, values, wire,
          aggregate::kFrameModeRankRun);
    }
    const std::size_t accepted = collector.ingest(wire);
    collector.reduce(library.real_cycles());
    region.publish(collector.cluster());
    return accepted;
  };
  constexpr std::size_t kFramesPerPoll = (kRanks + kFanIn - 1) / kFanIn;

  // Warm-up: vector capacities, slot arrays, first-touch.
  if (poll() != kFramesPerPoll) {
    std::printf("GATE FAIL: warm-up poll did not accept %zu frames\n",
                kFramesPerPoll);
    return 1;
  }

  // --- oracle over the snapshot the collector actually saw ---------------
  std::vector<std::vector<long long>> per_metric(kMetrics);
  for (const papi::SnapshotEntry& e : entries) {
    for (std::uint32_t m = 0; m < kMetrics && m < e.num_values; ++m) {
      per_metric[m].push_back(values[e.first_value + m]);
    }
  }
  const Oracle oracle = compute_oracle(per_metric);

  // --- measured steady state ----------------------------------------------
  const std::uint64_t stops_before =
      library.telemetry_snapshot().value(papi::TelemetryCounter::kStops);
  const std::uint64_t allocs_before =
      g_allocs.load(std::memory_order_relaxed);
  double best_poll_ns = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::uint64_t t0 = thread_cpu_ns();
    for (int p = 0; p < kPollsPerRep; ++p) (void)poll();
    const std::uint64_t t1 = thread_cpu_ns();
    const double ns = static_cast<double>(t1 - t0) / kPollsPerRep;
    if (ns < best_poll_ns) best_poll_ns = ns;
  }
  const std::uint64_t poll_allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;
  const std::uint64_t stops_delta =
      library.telemetry_snapshot().value(papi::TelemetryCounter::kStops) -
      stops_before;

  // Component costs, same clock discipline.
  auto time_loop = [&](int iters, auto&& op) {
    double best = 1e18;
    for (int rep = 0; rep < kReps; ++rep) {
      const std::uint64_t t0 = thread_cpu_ns();
      for (int i = 0; i < iters; ++i) op();
      const std::uint64_t t1 = thread_cpu_ns();
      const double ns = static_cast<double>(t1 - t0) / iters;
      if (ns < best) best = ns;
    }
    return best;
  };
  const double snapshot_pass_ns =
      time_loop(50, [&] { (void)library.snapshot_all(entries, values); });
  const double snapshot_per_set_ns = snapshot_pass_ns / kRanks;
  // Pre-encoded buffer: the decode side alone.
  const double ingest_pass_ns =
      time_loop(50, [&] { (void)collector.ingest(wire); });
  const double ingest_per_set_ns = ingest_pass_ns / kRanks;
  const double reduce_ns =
      time_loop(50, [&] { collector.reduce(library.real_cycles()); });

  const aggregate::ClusterReduction& red = collector.reduce(
      library.real_cycles());
  region.publish(red);

  std::printf("population: %d ranks (1 live, %d stopped), %u metrics, "
              "fan-in 32\n\n", kRanks, kRanks - 1, kMetrics);
  std::printf("full poll (snapshot+encode+ingest+reduce+publish): "
              "%.0f ns (%.1f ns/rank)\n", best_poll_ns,
              best_poll_ns / kRanks);
  std::printf("snapshot_all: %.1f ns/set   ingest: %.1f ns/set "
              "(%.2fx snapshot)\n", snapshot_per_set_ns,
              ingest_per_set_ns,
              ingest_per_set_ns / snapshot_per_set_ns);
  std::printf("reduce over %d ranks: %.0f ns   allocs per measured poll: "
              "%.3f\n", kRanks, reduce_ns,
              static_cast<double>(poll_allocs) / (kReps * kPollsPerRep));
  std::printf("wire bytes per poll: %zu (%.1f per rank)\n", wire.size(),
              static_cast<double>(wire.size()) / kRanks);

  bool ok = true;

  // Gate 1: oracle match.
  for (std::uint32_t m = 0; m < kMetrics; ++m) {
    const aggregate::MetricStats& ms = red.metrics[m];
    if (ms.count != kRanks || ms.min != oracle.min[m] ||
        ms.max != oracle.max[m] || ms.sum != oracle.sum[m] ||
        ms.avg != oracle.avg[m]) {
      std::printf("GATE FAIL: metric %u min/max/sum/avg "
                  "(%lld/%lld/%lld/%.2f over %llu) vs oracle "
                  "(%lld/%lld/%lld/%.2f)\n",
                  m, ms.min, ms.max, ms.sum, ms.avg,
                  static_cast<unsigned long long>(ms.count),
                  oracle.min[m], oracle.max[m], oracle.sum[m],
                  oracle.avg[m]);
      ok = false;
    }
    const struct {
      const char* name;
      std::uint64_t got;
      std::uint64_t exact;
    } qs[] = {{"p50", ms.p50, oracle.p50[m]},
              {"p95", ms.p95, oracle.p95[m]},
              {"p99", ms.p99, oracle.p99[m]}};
    for (const auto& q : qs) {
      if (!within_histogram_error(q.got, q.exact)) {
        std::printf("GATE FAIL: metric %u %s %llu outside 12.5%% of "
                    "oracle %llu\n", m, q.name,
                    static_cast<unsigned long long>(q.got),
                    static_cast<unsigned long long>(q.exact));
        ok = false;
      }
    }
  }

  // Gate 2: zero allocations in steady state.
  if (poll_allocs != 0) {
    std::printf("GATE FAIL: %llu heap allocations across %d measured "
                "polls (must be 0)\n",
                static_cast<unsigned long long>(poll_allocs),
                kReps * kPollsPerRep);
    ok = false;
  }

  // Gate 3: ingest within 2x the snapshot per-set cost.
  if (ingest_per_set_ns > 2.0 * snapshot_per_set_ns) {
    std::printf("GATE FAIL: ingest %.1f ns/set exceeds 2x "
                "snapshot_all %.1f ns/set\n", ingest_per_set_ns,
                snapshot_per_set_ns);
    ok = false;
  }

  // Gate 4: the counting side was never stopped by the collector.
  if (stops_delta != 0) {
    std::printf("GATE FAIL: %llu stop() calls during aggregation "
                "(counting threads must never be stopped)\n",
                static_cast<unsigned long long>(stops_delta));
    ok = false;
  }

  // Gate 5: the region round-trips the final reduction.
  aggregate::RegionSnapshot snap;
  if (!region.read_into(snap) ||
      snap.reduce_count != red.reduce_count ||
      snap.ranks_live != red.ranks_live ||
      snap.metrics[0].sum != red.metrics[0].sum ||
      snap.metrics[1].max != red.metrics[1].max) {
    std::printf("GATE FAIL: seqlock region does not round-trip the "
                "final reduction\n");
    ok = false;
  }

  std::FILE* f = std::fopen("BENCH_aggregation.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n  \"bench\": \"aggregation\",\n  \"ranks\": %d,\n"
        "  \"metrics\": %u,\n  \"clock\": \"thread_cpu_min_of_%d\",\n"
        "  \"poll_ns\": %.0f,\n  \"poll_ns_per_rank\": %.1f,\n"
        "  \"snapshot_per_set_ns\": %.1f,\n"
        "  \"ingest_per_set_ns\": %.1f,\n"
        "  \"ingest_vs_snapshot_ratio\": %.2f,\n"
        "  \"reduce_ns\": %.0f,\n  \"wire_bytes_per_rank\": %.1f,\n"
        "  \"allocs_per_poll\": %.3f,\n  \"stops_during_bench\": %llu,\n"
        "  \"gates_ok\": %s\n}\n",
        kRanks, kMetrics, kReps, best_poll_ns, best_poll_ns / kRanks,
        snapshot_per_set_ns, ingest_per_set_ns,
        ingest_per_set_ns / snapshot_per_set_ns, reduce_ns,
        static_cast<double>(wire.size()) / kRanks,
        static_cast<double>(poll_allocs) / (kReps * kPollsPerRep),
        static_cast<unsigned long long>(stops_delta),
        ok ? "true" : "false");
    std::fclose(f);
  }

  if (ok) {
    std::printf("\ngates: oracle exact, 0 allocs, ingest %.2fx snapshot "
                "(<= 2x), 0 stops, region intact — OK\n",
                ingest_per_set_ns / snapshot_per_set_ns);
  }
  return ok ? 0 : 1;
}
