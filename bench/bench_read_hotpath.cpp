// RH1: steady-state counter hot-path cost — CPU nanoseconds and heap
// allocations per EventSet::read()/accum() call, across the regimes a
// tool actually runs in: direct counting, folded narrow-width counters,
// multiplexed estimation, N threads hammering one shared Library, and a
// batched snapshot_all() pass over 1000 EventSets.  The paper's
// overhead lesson (Section 4: direct counting can cost up to 30 % while
// sampling substrates stay at 1-2 %) means the portable layer must add
// ~nothing on top of the substrate; after the zero-allocation hot-path
// work, every steady-state read should report 0 allocs.
//
// Measurement: per-thread CPU time (CLOCK_THREAD_CPUTIME_ID), minimum
// over several repetitions — shared CI boxes inflate wall time with
// scheduler noise, and the minimum of CPU time is the stable estimate
// of what the code path actually costs.  Also emits machine-readable
// BENCH_read_hotpath.json (in the working directory — the repo root
// when run via CI) so successive PRs can track the trajectory.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <new>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sim/comm.h"
#include "substrate/component_substrates.h"
#include "substrate/fault_substrate.h"

// --- global operator-new counting -----------------------------------------
// Replaceable allocation functions counting every heap allocation made by
// the process; reads in steady state should add zero to this.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace papirepro;

namespace {

constexpr int kIters = 100'000;
constexpr int kReps = 5;

/// Per-thread CPU nanoseconds; falls back to wall time where the thread
/// clock is unavailable.
std::uint64_t thread_cpu_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Row {
  const char* scenario;
  double read_ns = 0;
  double read_allocs = 0;
  double accum_ns = 0;
  double accum_allocs = 0;
};

/// Times `iters` calls of `op`, best of kReps repetitions, and reports
/// (ns/call, allocs/call).  Allocations are summed over every rep (the
/// warm-up absorbs first-touch growth, so steady state must stay at 0).
template <typename Op>
std::pair<double, double> measure(int iters, Op&& op) {
  // Warm-up: fill scratch capacities / caches so we measure steady state.
  for (int i = 0; i < 64; ++i) op();
  double best_ns = 1e18;
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  for (int rep = 0; rep < kReps; ++rep) {
    const std::uint64_t t0 = thread_cpu_ns();
    for (int i = 0; i < iters; ++i) op();
    const std::uint64_t t1 = thread_cpu_ns();
    const double ns = static_cast<double>(t1 - t0) / iters;
    if (ns < best_ns) best_ns = ns;
  }
  const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
  return {best_ns,
          static_cast<double>(a1 - a0) / (static_cast<double>(iters) * kReps)};
}

Row measure_set(const char* scenario, papi::EventSet& set,
                int iters = kIters) {
  Row row{scenario};
  std::vector<long long> v(set.num_events());
  std::tie(row.read_ns, row.read_allocs) =
      measure(iters, [&] { (void)set.read(v); });
  std::tie(row.accum_ns, row.accum_allocs) =
      measure(iters, [&] { (void)set.accum(v); });
  return row;
}

Row run_direct() {
  bench::Rig rig(sim::make_empty_loop(10), pmu::sim_x86(),
                 {.charge_costs = false});
  papi::EventSet& set = rig.new_set();
  (void)set.add_preset(papi::Preset::kTotIns);
  (void)set.add_preset(papi::Preset::kTotCyc);
  if (!set.start().ok()) return {"direct"};
  Row row = measure_set("direct", set);
  (void)set.stop();
  return row;
}

Row run_folded() {
  // Narrow 24-bit counters through the fault decorator (no fault
  // scripts armed): every read goes through the wraparound-folding path.
  sim::Workload w = sim::make_empty_loop(10);
  auto machine =
      std::make_unique<sim::Machine>(w.program, pmu::sim_x86().machine);
  auto inner = std::make_unique<papi::SimSubstrate>(
      *machine, pmu::sim_x86(),
      papi::SimSubstrateOptions{.charge_costs = false});
  papi::FaultPlan plan;
  plan.counter_width_bits = 24;
  papi::Library library(std::make_unique<papi::FaultInjectingSubstrate>(
      std::move(inner), plan));
  auto handle = library.create_event_set();
  papi::EventSet& set = *library.event_set(handle.value()).value();
  (void)set.add_preset(papi::Preset::kTotIns);
  (void)set.add_preset(papi::Preset::kTotCyc);
  if (!set.start().ok()) return {"folded_24bit"};
  Row row = measure_set("folded_24bit", set);
  (void)set.stop();
  return row;
}

Row run_cross_component() {
  // EventSet spanning cpu:: + mem:: + net::: every read fans out over
  // three component slices.  The gate (checked in main) is that the
  // fan-out machinery stays allocation-free and costs at most 2x the
  // single-component direct read.
  bench::Rig rig(sim::make_empty_loop(10), pmu::sim_x86(),
                 {.charge_costs = false});
  sim::CommWorld world({rig.machine.get()});
  (void)rig.library->register_component(
      "mem", "uncore", std::make_unique<papi::MemBandwidthSubstrate>(
                           *rig.machine));
  (void)rig.library->register_component(
      "net", "nic", std::make_unique<papi::NetworkSubstrate>(world));
  papi::EventSet& set = rig.new_set();
  (void)set.add_preset(papi::Preset::kTotIns);
  (void)set.add_named("mem::BANDWIDTH_RD");
  (void)set.add_named("net::MSG_SENT");
  if (!set.start().ok()) return {"cross_component"};
  Row row = measure_set("cross_component", set);
  (void)set.stop();
  return row;
}

Row run_multiplexed() {
  bench::Rig rig(sim::make_saxpy(50'000), pmu::sim_x86(),
                 {.charge_costs = false});
  papi::EventSet& set = rig.new_set();
  (void)set.enable_multiplex(/*slice_cycles=*/20'000);
  for (const char* name : {"PAPI_FMA_INS", "PAPI_LD_INS", "PAPI_SR_INS",
                           "PAPI_TOT_INS", "PAPI_BR_INS", "PAPI_L1_DCA"}) {
    (void)set.add_named(name);
  }
  if (!set.start().ok()) return {"multiplexed"};
  rig.machine->run();  // let the slices rotate over a real workload
  Row row = measure_set("multiplexed", set);
  (void)set.stop();
  return row;
}

/// N threads, each driving its own EventSet through one shared Library.
/// All threads arm, then spin on the release gate so the measured
/// windows overlap and contention (if any crept back in) is exercised.
/// Both read() and accum() are measured per thread (accum used to be
/// silently skipped here, reporting 0.0).
Row run_threaded(const char* scenario, int num_threads) {
  const int iters = num_threads >= 16 ? 20'000 : kIters;
  std::vector<sim::Workload> workloads;
  std::vector<std::unique_ptr<sim::Machine>> machines;
  for (int t = 0; t < num_threads; ++t) {
    workloads.push_back(sim::make_empty_loop(10));
    machines.push_back(std::make_unique<sim::Machine>(
        workloads.back().program, pmu::sim_x86().machine));
  }
  auto owned = std::make_unique<papi::SimSubstrate>(
      *machines[0], pmu::sim_x86(),
      papi::SimSubstrateOptions{.charge_costs = false});
  papi::SimSubstrate* substrate = owned.get();
  papi::Library library(std::move(owned));

  std::atomic<int> armed{0};
  std::atomic<bool> go{false};
  std::vector<Row> per_thread(num_threads, Row{scenario});
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      substrate->bind_thread_machine(*machines[t]);
      auto handle = library.create_event_set();
      papi::EventSet& set = *library.event_set(handle.value()).value();
      (void)set.add_preset(papi::Preset::kTotIns);
      if (!set.start().ok()) return;
      armed.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      per_thread[t] = measure_set(scenario, set, iters);
      (void)set.stop();
      (void)library.destroy_event_set(set.handle());
      (void)library.unregister_thread();
    });
  }
  while (armed.load(std::memory_order_acquire) < num_threads) {
    std::this_thread::yield();
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  Row row{scenario};
  for (const Row& r : per_thread) {
    row.read_ns += r.read_ns / num_threads;
    row.read_allocs += r.read_allocs / num_threads;
    row.accum_ns += r.accum_ns / num_threads;
    row.accum_allocs += r.accum_allocs / num_threads;
  }
  return row;
}

/// Batched snapshot over 1000 EventSets: one running set plus 999
/// started-then-stopped sets (their finals live in the seqlock
/// publication).  Compares the naive per-handle loop — event_set(h)
/// lookup + read() per set, what a monitor without the batch API writes
/// — against one warm snapshot_all() pass.
struct SnapshotResult {
  double naive_per_set_ns = 0;
  double batched_per_set_ns = 0;
  double naive_allocs_per_pass = 0;
  double batched_allocs_per_pass = 0;
  bool ok = false;
};

SnapshotResult run_snapshot_all() {
  constexpr int kSets = 1000;
  constexpr int kPasses = 200;
  SnapshotResult res;
  bench::Rig rig(sim::make_empty_loop(10), pmu::sim_x86(),
                 {.charge_costs = false});
  papi::Library& library = *rig.library;
  std::vector<int> handles;
  handles.reserve(kSets);
  for (int i = 0; i < kSets; ++i) {
    auto handle = library.create_event_set();
    if (!handle.ok()) return res;
    papi::EventSet& set = *library.event_set(handle.value()).value();
    (void)set.add_preset(papi::Preset::kTotIns);
    (void)set.add_preset(papi::Preset::kTotCyc);
    handles.push_back(handle.value());
    if (i == 0) continue;  // the first set runs live below
    if (!set.start().ok() || !set.stop().ok()) return res;
  }
  papi::EventSet& live = *library.event_set(handles[0]).value();
  if (!live.start().ok()) return res;

  // Naive: per-handle lookup + read into a per-set buffer.
  std::vector<long long> v(2);
  auto naive_pass = [&] {
    for (const int h : handles) {
      (void)library.event_set(h).value()->read(v);
    }
  };
  const auto [naive_pass_ns, naive_pass_allocs] = measure(kPasses, naive_pass);
  res.naive_per_set_ns = naive_pass_ns / kSets;
  res.naive_allocs_per_pass = naive_pass_allocs;

  // Batched: one snapshot_all over the whole registry, warm vectors.
  std::vector<papi::SnapshotEntry> entries;
  std::vector<long long> values;
  auto batched_pass = [&] { (void)library.snapshot_all(entries, values); };
  const auto [batched_pass_ns, batched_pass_allocs] =
      measure(kPasses, batched_pass);
  res.batched_per_set_ns = batched_pass_ns / kSets;
  res.batched_allocs_per_pass = batched_pass_allocs;
  res.ok = entries.size() == kSets;
  (void)live.stop();
  return res;
}

void write_json(const std::vector<Row>& rows, const SnapshotResult& snap) {
  std::FILE* f = std::fopen("BENCH_read_hotpath.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_read_hotpath.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"read_hotpath\",\n  \"iters\": %d,\n"
                  "  \"clock\": \"thread_cpu_min_of_%d\",\n"
                  "  \"scenarios\": {\n", kIters, kReps);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    \"%s\": {\"read_ns\": %.1f, \"read_allocs\": %.3f, "
                 "\"accum_ns\": %.1f, \"accum_allocs\": %.3f}%s\n",
                 r.scenario, r.read_ns, r.read_allocs, r.accum_ns,
                 r.accum_allocs, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"snapshot_all_1000\": {"
                  "\"naive_per_set_ns\": %.1f, "
                  "\"batched_per_set_ns\": %.1f, "
                  "\"naive_allocs_per_pass\": %.3f, "
                  "\"batched_allocs_per_pass\": %.3f}\n}\n",
               snap.naive_per_set_ns, snap.batched_per_set_ns,
               snap.naive_allocs_per_pass, snap.batched_allocs_per_pass);
  std::fclose(f);
}

}  // namespace

int main() {
  bench::header("RH1", "steady-state read()/accum() hot-path cost");
  std::printf("CPU ns (best of %d reps) and heap allocations per call "
              "after start()\n(sim-x86, cost charging off; %d iterations "
              "per cell):\n\n", kReps, kIters);
  std::printf("%-14s %10s %12s %10s %12s\n", "scenario", "read_ns",
              "read_allocs", "accum_ns", "accum_allocs");

  std::vector<Row> rows;
  rows.push_back(run_direct());
  rows.push_back(run_cross_component());
  rows.push_back(run_folded());
  rows.push_back(run_multiplexed());
  rows.push_back(run_threaded("threaded_x4", 4));
  rows.push_back(run_threaded("threaded_x16", 16));
  rows.push_back(run_threaded("threaded_x32", 32));
  rows.push_back(run_threaded("threaded_x64", 64));

  for (const Row& r : rows) {
    std::printf("%-16s %10.0f %12.3f %10.0f %12.3f\n", r.scenario,
                r.read_ns, r.read_allocs, r.accum_ns, r.accum_allocs);
  }
  const SnapshotResult snap = run_snapshot_all();
  std::printf("\nsnapshot_all over 1000 sets (1 live + 999 stopped): "
              "naive loop %.1f ns/set,\nbatched %.1f ns/set, batched "
              "allocs/pass %.3f\n", snap.naive_per_set_ns,
              snap.batched_per_set_ns, snap.batched_allocs_per_pass);
  write_json(rows, snap);
  std::printf("\nallocs columns should read 0.000 in every steady-state "
              "row: the\nread/fold/mux-rotation buffers are preallocated "
              "at start() and the\nretry wrapper is templated away.  "
              "JSON written to BENCH_read_hotpath.json.\n");

  const Row& direct = rows[0];
  const Row& cross = rows[1];
  bool gate_ok = true;
  // Gate 1: the direct read hot path stays at or under 20 ns CPU per
  // call with zero allocations (seed was 36.9 ns wall; the epoch/flat
  // layout work brought it to ~16 ns CPU).
  if (direct.read_ns > 20.0 || direct.read_allocs != 0.0) {
    std::printf("\nGATE FAIL: direct read %.1f ns (limit 20.0) / %.3f "
                "allocs per call\n", direct.read_ns, direct.read_allocs);
    gate_ok = false;
  }
  // Gate 2: a three-component read stays allocation-free and within 2x
  // the single-component direct read (it does strictly more work —
  // three slice reads — but the fan-out itself must add no hidden cost).
  if (cross.read_allocs != 0.0) {
    std::printf("\nGATE FAIL: cross_component read allocates "
                "(%.3f allocs/call)\n", cross.read_allocs);
    gate_ok = false;
  }
  if (direct.read_ns > 0 && cross.read_ns > 2.0 * direct.read_ns) {
    std::printf("\nGATE FAIL: cross_component read %.0f ns exceeds 2x "
                "direct read %.0f ns\n", cross.read_ns, direct.read_ns);
    gate_ok = false;
  }
  // Gate 3: one snapshot_all pass beats the naive per-handle read loop
  // and allocates nothing once its vectors are warm.
  if (!snap.ok || snap.batched_per_set_ns >= snap.naive_per_set_ns ||
      snap.batched_allocs_per_pass != 0.0) {
    std::printf("\nGATE FAIL: snapshot_all %.1f ns/set vs naive %.1f "
                "ns/set, %.3f allocs/pass\n", snap.batched_per_set_ns,
                snap.naive_per_set_ns, snap.batched_allocs_per_pass);
    gate_ok = false;
  }
  if (gate_ok) {
    std::printf("gates: direct %.1f ns <= 20, cross %.0f ns <= 2x direct, "
                "snapshot_all %.1f < naive %.1f ns/set, 0 allocs — OK\n",
                direct.read_ns, cross.read_ns, snap.batched_per_set_ns,
                snap.naive_per_set_ns);
  }
  return gate_ok ? 0 : 1;
}
