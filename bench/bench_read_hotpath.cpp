// RH1: steady-state counter hot-path cost — wall nanoseconds and heap
// allocations per EventSet::read()/accum() call, across the four regimes
// a tool actually runs in: direct counting, folded narrow-width
// counters, multiplexed estimation, and N threads hammering one shared
// Library.  The paper's overhead lesson (Section 4: direct counting can
// cost up to 30 % while sampling substrates stay at 1-2 %) means the
// portable layer must add ~nothing on top of the substrate; after the
// zero-allocation hot-path work, every steady-state read should report
// 0 allocs.  Also emits machine-readable BENCH_read_hotpath.json (in
// the working directory — the repo root when run via CI) so successive
// PRs can track the trajectory.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sim/comm.h"
#include "substrate/component_substrates.h"
#include "substrate/fault_substrate.h"

// --- global operator-new counting -----------------------------------------
// Replaceable allocation functions counting every heap allocation made by
// the process; reads in steady state should add zero to this.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace papirepro;

namespace {

constexpr int kIters = 100'000;

struct Row {
  const char* scenario;
  double read_ns = 0;
  double read_allocs = 0;
  double accum_ns = 0;
  double accum_allocs = 0;
};

/// Times `iters` calls of `op` and reports (ns/call, allocs/call).
template <typename Op>
std::pair<double, double> measure(int iters, Op&& op) {
  // Warm-up: fill scratch capacities / caches so we measure steady state.
  for (int i = 0; i < 64; ++i) op();
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) op();
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
  return {std::chrono::duration<double, std::nano>(t1 - t0).count() / iters,
          static_cast<double>(a1 - a0) / iters};
}

Row measure_set(const char* scenario, papi::EventSet& set) {
  Row row{scenario};
  std::vector<long long> v(set.num_events());
  std::tie(row.read_ns, row.read_allocs) =
      measure(kIters, [&] { (void)set.read(v); });
  std::tie(row.accum_ns, row.accum_allocs) =
      measure(kIters, [&] { (void)set.accum(v); });
  return row;
}

Row run_direct() {
  bench::Rig rig(sim::make_empty_loop(10), pmu::sim_x86(),
                 {.charge_costs = false});
  papi::EventSet& set = rig.new_set();
  (void)set.add_preset(papi::Preset::kTotIns);
  (void)set.add_preset(papi::Preset::kTotCyc);
  if (!set.start().ok()) return {"direct"};
  Row row = measure_set("direct", set);
  (void)set.stop();
  return row;
}

Row run_folded() {
  // Narrow 24-bit counters through the fault decorator (no fault
  // scripts armed): every read goes through the wraparound-folding path.
  sim::Workload w = sim::make_empty_loop(10);
  auto machine =
      std::make_unique<sim::Machine>(w.program, pmu::sim_x86().machine);
  auto inner = std::make_unique<papi::SimSubstrate>(
      *machine, pmu::sim_x86(),
      papi::SimSubstrateOptions{.charge_costs = false});
  papi::FaultPlan plan;
  plan.counter_width_bits = 24;
  papi::Library library(std::make_unique<papi::FaultInjectingSubstrate>(
      std::move(inner), plan));
  auto handle = library.create_event_set();
  papi::EventSet& set = *library.event_set(handle.value()).value();
  (void)set.add_preset(papi::Preset::kTotIns);
  (void)set.add_preset(papi::Preset::kTotCyc);
  if (!set.start().ok()) return {"folded_24bit"};
  Row row = measure_set("folded_24bit", set);
  (void)set.stop();
  return row;
}

Row run_cross_component() {
  // EventSet spanning cpu:: + mem:: + net::: every read fans out over
  // three component slices.  The gate (checked in main) is that the
  // fan-out machinery stays allocation-free and costs at most 2x the
  // single-component direct read.
  bench::Rig rig(sim::make_empty_loop(10), pmu::sim_x86(),
                 {.charge_costs = false});
  sim::CommWorld world({rig.machine.get()});
  (void)rig.library->register_component(
      "mem", "uncore", std::make_unique<papi::MemBandwidthSubstrate>(
                           *rig.machine));
  (void)rig.library->register_component(
      "net", "nic", std::make_unique<papi::NetworkSubstrate>(world));
  papi::EventSet& set = rig.new_set();
  (void)set.add_preset(papi::Preset::kTotIns);
  (void)set.add_named("mem::BANDWIDTH_RD");
  (void)set.add_named("net::MSG_SENT");
  if (!set.start().ok()) return {"cross_component"};
  Row row = measure_set("cross_component", set);
  (void)set.stop();
  return row;
}

Row run_multiplexed() {
  bench::Rig rig(sim::make_saxpy(50'000), pmu::sim_x86(),
                 {.charge_costs = false});
  papi::EventSet& set = rig.new_set();
  (void)set.enable_multiplex(/*slice_cycles=*/20'000);
  for (const char* name : {"PAPI_FMA_INS", "PAPI_LD_INS", "PAPI_SR_INS",
                           "PAPI_TOT_INS", "PAPI_BR_INS", "PAPI_L1_DCA"}) {
    (void)set.add_named(name);
  }
  if (!set.start().ok()) return {"multiplexed"};
  rig.machine->run();  // let the slices rotate over a real workload
  Row row = measure_set("multiplexed", set);
  (void)set.stop();
  return row;
}

Row run_threaded() {
  constexpr int kThreads = 4;
  std::vector<sim::Workload> workloads;
  std::vector<std::unique_ptr<sim::Machine>> machines;
  for (int t = 0; t < kThreads; ++t) {
    workloads.push_back(sim::make_empty_loop(10));
    machines.push_back(std::make_unique<sim::Machine>(
        workloads.back().program, pmu::sim_x86().machine));
  }
  auto owned = std::make_unique<papi::SimSubstrate>(
      *machines[0], pmu::sim_x86(),
      papi::SimSubstrateOptions{.charge_costs = false});
  papi::SimSubstrate* substrate = owned.get();
  papi::Library library(std::move(owned));

  std::vector<double> ns(kThreads, 0.0);
  std::vector<double> allocs(kThreads, 0.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      substrate->bind_thread_machine(*machines[t]);
      auto handle = library.create_event_set();
      papi::EventSet& set = *library.event_set(handle.value()).value();
      (void)set.add_preset(papi::Preset::kTotIns);
      if (!set.start().ok()) return;
      long long v[1];
      std::tie(ns[t], allocs[t]) =
          measure(kIters, [&] { (void)set.read(v); });
      (void)set.stop();
      (void)library.destroy_event_set(set.handle());
      (void)library.unregister_thread();
    });
  }
  for (auto& th : threads) th.join();

  Row row{"threaded_x4"};
  for (int t = 0; t < kThreads; ++t) {
    row.read_ns += ns[t] / kThreads;
    row.read_allocs += allocs[t] / kThreads;
  }
  return row;
}

void write_json(const std::vector<Row>& rows) {
  std::FILE* f = std::fopen("BENCH_read_hotpath.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_read_hotpath.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"read_hotpath\",\n  \"iters\": %d,\n"
                  "  \"scenarios\": {\n", kIters);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    \"%s\": {\"read_ns\": %.1f, \"read_allocs\": %.3f, "
                 "\"accum_ns\": %.1f, \"accum_allocs\": %.3f}%s\n",
                 r.scenario, r.read_ns, r.read_allocs, r.accum_ns,
                 r.accum_allocs, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  bench::header("RH1", "steady-state read()/accum() hot-path cost");
  std::printf("wall ns and heap allocations per call after start() "
              "(sim-x86,\ncost charging off; %d iterations per cell):\n\n",
              kIters);
  std::printf("%-14s %10s %12s %10s %12s\n", "scenario", "read_ns",
              "read_allocs", "accum_ns", "accum_allocs");

  std::vector<Row> rows;
  rows.push_back(run_direct());
  rows.push_back(run_cross_component());
  rows.push_back(run_folded());
  rows.push_back(run_multiplexed());
  rows.push_back(run_threaded());

  for (const Row& r : rows) {
    std::printf("%-16s %10.0f %12.3f %10.0f %12.3f\n", r.scenario,
                r.read_ns, r.read_allocs, r.accum_ns, r.accum_allocs);
  }
  write_json(rows);
  std::printf("\nallocs columns should read 0.000 in every steady-state "
              "row: the\nread/fold/mux-rotation buffers are preallocated "
              "at start() and the\nretry wrapper is templated away.  "
              "JSON written to BENCH_read_hotpath.json.\n");

  // Regression gate for the component fan-out: a three-component read
  // must stay allocation-free and within 2x the single-component direct
  // read (it does strictly more work — three slice reads — but the
  // fan-out itself must add no hidden cost).
  const Row& direct = rows[0];
  const Row& cross = rows[1];
  bool gate_ok = true;
  if (cross.read_allocs != 0.0) {
    std::printf("\nGATE FAIL: cross_component read allocates "
                "(%.3f allocs/call)\n", cross.read_allocs);
    gate_ok = false;
  }
  if (direct.read_ns > 0 && cross.read_ns > 2.0 * direct.read_ns) {
    std::printf("\nGATE FAIL: cross_component read %.0f ns exceeds 2x "
                "direct read %.0f ns\n", cross.read_ns, direct.read_ns);
    gate_ok = false;
  }
  if (gate_ok) {
    std::printf("gate: cross_component read %.0f ns <= 2x direct %.0f "
                "ns, 0 allocs — OK\n", cross.read_ns, direct.read_ns);
  }
  return gate_ok ? 0 : 1;
}
