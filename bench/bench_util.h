// Shared helpers for the experiment harness binaries.  Each bench binary
// regenerates one paper artifact (figure or quantified claim) as a
// printed table; EXPERIMENTS.md records paper-vs-measured per id.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/eventset.h"
#include "core/library.h"
#include "sim/kernels.h"
#include "substrate/sim_substrate.h"

namespace papirepro::bench {

/// Machine + substrate + library over a workload.
struct Rig {
  sim::Workload workload;
  std::unique_ptr<sim::Machine> machine;
  papi::SimSubstrate* substrate = nullptr;  // owned by library
  std::unique_ptr<papi::Library> library;

  Rig(sim::Workload w, const pmu::PlatformDescription& platform,
      papi::SimSubstrateOptions options = {})
      : workload(std::move(w)) {
    machine = std::make_unique<sim::Machine>(workload.program,
                                             platform.machine);
    if (workload.setup) workload.setup(*machine);
    auto sub = std::make_unique<papi::SimSubstrate>(*machine, platform,
                                                    options);
    substrate = sub.get();
    library = std::make_unique<papi::Library>(std::move(sub));
  }

  papi::EventSet& new_set() {
    auto handle = library->create_event_set();
    return *library->event_set(handle.value()).value();
  }

  double overhead_fraction() const {
    return machine->cycles() == 0
               ? 0.0
               : static_cast<double>(machine->overhead_cycles()) /
                     static_cast<double>(machine->cycles());
  }
};

inline void header(const char* id, const char* title) {
  std::printf("\n==============================================================="
              "=========\n");
  std::printf("%s: %s\n", id, title);
  std::printf("================================================================"
              "========\n");
}

inline double rel_error(double measured, double expected) {
  if (expected == 0) return measured == 0 ? 0.0 : 1.0;
  return std::abs(measured - expected) / expected;
}

}  // namespace papirepro::bench
