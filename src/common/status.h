// Error handling for the PAPI-style API.  The original PAPI is a C library
// built on integer return codes; we keep that spirit (the C bridge maps
// 1:1) but give the C++ layer a typed Error enum and a lightweight
// Result<T> so call sites cannot ignore failures accidentally.
#pragma once

#include <cassert>
#include <string_view>
#include <utility>
#include <variant>

namespace papirepro {

/// Error codes, mirroring the PAPI return-code vocabulary.
enum class Error : int {
  kOk = 0,            ///< PAPI_OK
  kInvalid = -1,      ///< PAPI_EINVAL: invalid argument
  kNoMemory = -2,     ///< PAPI_ENOMEM
  kSystem = -3,       ///< PAPI_ESYS: substrate/OS failure
  kSubstrate = -4,    ///< PAPI_ESBSTR: substrate cannot do this
  kNoSupport = -7,    ///< PAPI_ENOSUPP: feature unavailable on platform
  kNoEvent = -8,      ///< PAPI_ENOEVNT: preset not mapped on this platform
  kConflict = -9,     ///< PAPI_ECNFLCT: events cannot be counted together
  kNotRunning = -10,  ///< PAPI_ENOTRUN: eventset not running
  kIsRunning = -11,   ///< PAPI_EISRUN: eventset already running
  kNoEventSet = -12,  ///< PAPI_ENOEVST: no such eventset
  kNotPreset = -13,   ///< PAPI_ENOTPRESET
  kNoCounters = -14,  ///< PAPI_ENOCNTR: hardware has no counters
  kMisc = -15,        ///< PAPI_EMISC
  kPermission = -16,  ///< PAPI_EPERM
  kNoInit = -17,      ///< PAPI_ENOINIT: library not initialized
  kBufferFull = -18,  ///< sample/trace buffer exhausted
  kComponentDisabled = -19,
  kNoComponent = -20,  ///< PAPI_ENOCMP: no such component
  kComponentQuarantined = -21,  ///< PAPI_ECMPQUAR: circuit breaker open
};

/// Human-readable error string (mirrors PAPI_strerror).
constexpr std::string_view to_string(Error e) noexcept {
  switch (e) {
    case Error::kOk: return "No error";
    case Error::kInvalid: return "Invalid argument";
    case Error::kNoMemory: return "Insufficient memory";
    case Error::kSystem: return "A system or C library call failed";
    case Error::kSubstrate: return "Substrate returned an error";
    case Error::kNoSupport: return "Not supported by this substrate";
    case Error::kNoEvent: return "Event does not exist on this platform";
    case Error::kConflict: return "Event exists but cannot be counted "
                                  "due to hardware resource conflicts";
    case Error::kNotRunning: return "EventSet is currently not running";
    case Error::kIsRunning: return "EventSet is currently counting";
    case Error::kNoEventSet: return "No such EventSet";
    case Error::kNotPreset: return "Event is not a valid preset";
    case Error::kNoCounters: return "Hardware does not support counters";
    case Error::kMisc: return "Unknown error";
    case Error::kPermission: return "Permission-level does not permit this";
    case Error::kNoInit: return "PAPI library has not been initialized";
    case Error::kBufferFull: return "Sample or trace buffer is full";
    case Error::kComponentDisabled: return "Component is disabled";
    case Error::kNoComponent: return "No such component";
    case Error::kComponentQuarantined:
      return "Component is quarantined by the health monitor";
  }
  return "Unknown error";
}

/// Transient-fault classification used by the retry/degradation layer.
/// These codes can be produced by momentary substrate conditions — a
/// counter file briefly held by another client (kConflict), a kernel
/// transiently refusing a counter fd (kNoCounters), an interrupted
/// system call (kSystem), or memory pressure (kNoMemory) — so a bounded
/// retry may legitimately succeed.  Everything else (bad arguments,
/// unmapped events, state-machine violations) is deterministic and must
/// surface immediately.
constexpr bool is_transient(Error e) noexcept {
  switch (e) {
    case Error::kConflict:
    case Error::kNoCounters:
    case Error::kSystem:
    case Error::kNoMemory:
      return true;
    default:
      return false;
  }
}

/// Minimal expected-style result.  Holds either a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : store_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : store_(error) {          // NOLINT(google-explicit-constructor)
    assert(error != Error::kOk && "use a value for success");
  }

  bool ok() const noexcept { return std::holds_alternative<T>(store_); }
  explicit operator bool() const noexcept { return ok(); }

  Error error() const noexcept {
    return ok() ? Error::kOk : std::get<Error>(store_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(store_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(store_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(store_));
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(store_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> store_;
};

/// Result<void> analogue: just an Error that must be looked at.
class [[nodiscard]] Status {
 public:
  Status() noexcept : error_(Error::kOk) {}
  Status(Error error) noexcept : error_(error) {}  // NOLINT(google-explicit-constructor)

  bool ok() const noexcept { return error_ == Error::kOk; }
  explicit operator bool() const noexcept { return ok(); }
  Error error() const noexcept { return error_; }
  std::string_view message() const noexcept { return to_string(error_); }

 private:
  Error error_;
};

/// Propagate-on-error helper for Status-returning functions.
#define PAPIREPRO_RETURN_IF_ERROR(expr)                       \
  do {                                                        \
    ::papirepro::Status papirepro_status_ = (expr);                  \
    if (!papirepro_status_.ok()) return papirepro_status_.error();   \
  } while (false)

}  // namespace papirepro
