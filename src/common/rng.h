// Deterministic pseudo-random number generation used throughout the
// simulator and sampling engines. Every stochastic component owns its own
// generator seeded explicitly, so all experiments are bit-reproducible
// (std::rand / random_device are never used).
#pragma once

#include <cstdint>

namespace papirepro {

/// SplitMix64: tiny, fast, statistically solid generator.  Used both as a
/// generator in its own right and to seed Xoshiro256**.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — the workhorse generator for workload data and sampling.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire-style rejection-free reduction is fine for simulation use.
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Geometric draw: number of failures before first success with
  /// probability p per trial, capped at `cap`.  Used by the out-of-order
  /// skid model.
  constexpr std::uint32_t next_geometric(double p, std::uint32_t cap) noexcept {
    std::uint32_t n = 0;
    while (n < cap && next_double() >= p) ++n;
    return n;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace papirepro
