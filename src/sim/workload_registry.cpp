#include "sim/workload_registry.h"

namespace papirepro::sim {

std::vector<std::string_view> workload_names() {
  return {"saxpy",         "matmul",     "matmul_blocked", "stream",
          "pointer_chase", "branchy",    "fcvt_mixed",     "multiphase",
          "tight_call",    "empty_loop", "stencil2d",      "reduction",
          "random_access"};
}

std::optional<Workload> make_workload(std::string_view name,
                                      std::int64_t n) {
  if (name == "saxpy") return make_saxpy(n > 0 ? n : 10'000);
  if (name == "matmul") return make_matmul(n > 0 ? n : 48);
  if (name == "matmul_blocked") {
    const std::int64_t size = n > 0 ? n : 48;
    const std::int64_t block = size % 8 == 0 ? 8 : 1;
    return make_matmul_blocked(size, block);
  }
  if (name == "stream") return make_stream_triad(n > 0 ? n : 10'000);
  if (name == "pointer_chase") {
    return make_pointer_chase(4096, n > 0 ? n : 50'000, /*seed=*/1234);
  }
  if (name == "branchy") return make_branchy(n > 0 ? n : 20'000, 99);
  if (name == "fcvt_mixed") return make_fcvt_mixed(n > 0 ? n : 10'000);
  if (name == "multiphase") return make_multiphase(n > 0 ? n : 8, 4'000);
  if (name == "tight_call") return make_tight_call(n > 0 ? n : 20'000, 4);
  if (name == "empty_loop") return make_empty_loop(n > 0 ? n : 100'000);
  if (name == "stencil2d") return make_stencil2d(n > 0 ? n : 64, 2);
  if (name == "reduction") return make_reduction(n > 0 ? n : 50'000);
  if (name == "random_access") {
    return make_random_access(1 << 16, n > 0 ? n : 50'000);
  }
  return std::nullopt;
}

}  // namespace papirepro::sim
