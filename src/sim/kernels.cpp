#include "sim/kernels.h"

#include <cassert>
#include <numeric>
#include <vector>

#include "common/rng.h"

namespace papirepro::sim {
namespace {

// Data-segment bases, far enough apart that kernels never alias.
constexpr std::int64_t kABase = 0x10000000;
constexpr std::int64_t kBBase = 0x14000000;
constexpr std::int64_t kCBase = 0x18000000;
constexpr std::int64_t kXBase = 0x20000000;
constexpr std::int64_t kYBase = 0x24000000;
constexpr std::int64_t kZBase = 0x28000000;
constexpr std::int64_t kDataBase = 0x30000000;

}  // namespace

Workload make_saxpy(std::int64_t n) {
  assert(n > 0);
  ProgramBuilder b;
  b.begin_function("main");
  b.set_line(1);
  b.li(4, n);
  b.li(1, 0);
  b.li(10, kXBase);
  b.li(11, kYBase);
  b.fli(0, 2.5);
  auto loop = b.new_label();
  b.bind(loop);
  b.set_line(2);
  b.fload(1, 10, 0);
  b.fload(2, 11, 0);
  b.fmadd(2, 0, 1);  // y += a * x
  b.fstore(2, 11, 0);
  b.set_line(3);
  b.addi(10, 10, 8);
  b.addi(11, 11, 8);
  b.addi(1, 1, 1);
  b.blt(1, 4, loop);
  b.halt();
  b.end_function();

  Workload w;
  w.name = "saxpy";
  w.program = std::move(b).build();
  w.setup = [n](Machine& m) {
    for (std::int64_t i = 0; i < n; ++i) {
      m.memory().write_f64(kXBase + 8 * i, 0.5 * static_cast<double>(i));
      m.memory().write_f64(kYBase + 8 * i, 1.0);
    }
  };
  const auto un = static_cast<std::uint64_t>(n);
  w.expected = {.fp_fma = un,
                .flops = 2 * un,
                .loads = 2 * un,
                .stores = un,
                .branches = un};
  w.regions = {{"x", static_cast<std::uint64_t>(kXBase), 8 * un},
               {"y", static_cast<std::uint64_t>(kYBase), 8 * un}};
  return w;
}

Workload make_matmul(std::int64_t n) {
  assert(n > 0);
  ProgramBuilder b;
  const std::int64_t row_bytes = 8 * n;
  b.begin_function("main");
  b.set_line(1);
  b.li(6, n);
  b.li(1, 0);           // i
  b.li(16, kABase);     // &A[i][0]
  b.li(17, kCBase);     // &C[i][0]
  b.li(18, kBBase);     // &B[0][j]
  auto iloop = b.new_label();
  b.bind(iloop);
  b.li(2, 0);           // j
  b.mov(12, 17);        // &C[i][j]
  auto jloop = b.new_label();
  b.bind(jloop);
  b.set_line(2);
  b.fli(3, 0.0);        // acc
  b.li(3, 0);           // k
  b.mov(10, 16);        // &A[i][k]
  b.mov(11, 18);        // &B[k][j]
  auto kloop = b.new_label();
  b.bind(kloop);
  b.set_line(3);
  b.fload(1, 10, 0);
  b.fload(2, 11, 0);
  b.fmadd(3, 1, 2);
  b.addi(10, 10, 8);
  b.addi(11, 11, row_bytes);
  b.addi(3, 3, 1);
  b.blt(3, 6, kloop);
  b.set_line(4);
  b.fstore(3, 12, 0);
  b.addi(12, 12, 8);
  b.addi(18, 18, 8);
  b.addi(2, 2, 1);
  b.blt(2, 6, jloop);
  b.addi(16, 16, row_bytes);
  b.addi(17, 17, row_bytes);
  b.li(18, kBBase);
  b.addi(1, 1, 1);
  b.blt(1, 6, iloop);
  b.halt();
  b.end_function();

  Workload w;
  w.name = "matmul_naive";
  w.program = std::move(b).build();
  w.setup = [n](Machine& m) {
    for (std::int64_t i = 0; i < n * n; ++i) {
      m.memory().write_f64(kABase + 8 * i,
                           1.0 + static_cast<double>(i % 7));
      m.memory().write_f64(kBBase + 8 * i,
                           2.0 - static_cast<double>(i % 5));
    }
  };
  const auto un = static_cast<std::uint64_t>(n);
  w.expected = {.fp_fma = un * un * un,
                .flops = 2 * un * un * un,
                .loads = 2 * un * un * un,
                .stores = un * un};
  w.regions = {{"A", static_cast<std::uint64_t>(kABase), 8 * un * un},
               {"B", static_cast<std::uint64_t>(kBBase), 8 * un * un},
               {"C", static_cast<std::uint64_t>(kCBase), 8 * un * un}};
  return w;
}

Workload make_matmul_blocked(std::int64_t n, std::int64_t block) {
  assert(n > 0 && block > 0 && n % block == 0);
  const std::int64_t row_bytes = 8 * n;
  ProgramBuilder b;
  b.begin_function("main");
  b.set_line(1);
  b.li(6, n);
  b.li(7, block);
  b.li(1, 0);  // jj
  auto jjloop = b.new_label();
  b.bind(jjloop);
  b.li(2, 0);  // kk
  auto kkloop = b.new_label();
  b.bind(kkloop);
  // r13 = &B[kk][jj],  r15 = &A[0][kk],  r16 = &C[0][jj]
  b.mul(22, 2, 6);
  b.add(22, 22, 1);
  b.shli(22, 22, 3);
  b.li(23, kBBase);
  b.add(13, 23, 22);
  b.shli(22, 2, 3);
  b.li(23, kABase);
  b.add(15, 23, 22);
  b.shli(22, 1, 3);
  b.li(23, kCBase);
  b.add(16, 23, 22);
  b.li(3, 0);  // i
  auto iloop = b.new_label();
  b.bind(iloop);
  b.mov(14, 16);  // &C[i][jj+j]
  b.mov(20, 13);  // &B[kk][jj+j] column base for current j
  b.li(5, 0);     // j (0..block)
  auto jloop = b.new_label();
  b.bind(jloop);
  b.set_line(2);
  b.fload(3, 14, 0);  // acc = C[i][j]
  b.mov(10, 15);      // &A[i][kk+k]
  b.mov(11, 20);      // &B[kk+k][j]
  b.li(4, 0);         // k (0..block)
  auto kloop = b.new_label();
  b.bind(kloop);
  b.set_line(3);
  b.fload(1, 10, 0);
  b.fload(2, 11, 0);
  b.fmadd(3, 1, 2);
  b.addi(10, 10, 8);
  b.addi(11, 11, row_bytes);
  b.addi(4, 4, 1);
  b.blt(4, 7, kloop);
  b.set_line(4);
  b.fstore(3, 14, 0);
  b.addi(14, 14, 8);
  b.addi(20, 20, 8);
  b.addi(5, 5, 1);
  b.blt(5, 7, jloop);
  b.addi(15, 15, row_bytes);
  b.addi(16, 16, row_bytes);
  b.addi(3, 3, 1);
  b.blt(3, 6, iloop);
  b.addi(2, 2, block);
  b.blt(2, 6, kkloop);
  b.addi(1, 1, block);
  b.blt(1, 6, jjloop);
  b.halt();
  b.end_function();

  Workload w;
  w.name = "matmul_blocked";
  w.program = std::move(b).build();
  w.setup = [n](Machine& m) {
    for (std::int64_t i = 0; i < n * n; ++i) {
      m.memory().write_f64(kABase + 8 * i,
                           1.0 + static_cast<double>(i % 7));
      m.memory().write_f64(kBBase + 8 * i,
                           2.0 - static_cast<double>(i % 5));
    }
  };
  const auto un = static_cast<std::uint64_t>(n);
  const auto ub = static_cast<std::uint64_t>(block);
  w.expected = {.fp_fma = un * un * un,
                .flops = 2 * un * un * un,
                .loads = 2 * un * un * un + un * un * (un / ub),
                .stores = un * un * (un / ub)};
  w.regions = {{"A", static_cast<std::uint64_t>(kABase), 8 * un * un},
               {"B", static_cast<std::uint64_t>(kBBase), 8 * un * un},
               {"C", static_cast<std::uint64_t>(kCBase), 8 * un * un}};
  return w;
}

Workload make_stream_triad(std::int64_t n) {
  assert(n > 0);
  ProgramBuilder b;
  b.begin_function("main");
  b.set_line(1);
  b.li(4, n);
  b.li(1, 0);
  b.li(10, kXBase);  // a
  b.li(11, kYBase);  // b
  b.li(12, kZBase);  // c
  b.fli(0, 3.0);     // s
  auto loop = b.new_label();
  b.bind(loop);
  b.set_line(2);
  b.fload(1, 11, 0);
  b.fload(2, 12, 0);
  b.fmul(3, 2, 0);
  b.fadd(3, 3, 1);
  b.fstore(3, 10, 0);
  b.addi(10, 10, 8);
  b.addi(11, 11, 8);
  b.addi(12, 12, 8);
  b.addi(1, 1, 1);
  b.blt(1, 4, loop);
  b.halt();
  b.end_function();

  Workload w;
  w.name = "stream_triad";
  w.program = std::move(b).build();
  w.setup = [n](Machine& m) {
    for (std::int64_t i = 0; i < n; ++i) {
      m.memory().write_f64(kYBase + 8 * i, static_cast<double>(i));
      m.memory().write_f64(kZBase + 8 * i, 1.0 / (1.0 + i));
    }
  };
  const auto un = static_cast<std::uint64_t>(n);
  w.expected = {.fp_add = un,
                .fp_mul = un,
                .flops = 2 * un,
                .loads = 2 * un,
                .stores = un,
                .branches = un};
  w.regions = {{"a", static_cast<std::uint64_t>(kXBase), 8 * un},
               {"b", static_cast<std::uint64_t>(kYBase), 8 * un},
               {"c", static_cast<std::uint64_t>(kZBase), 8 * un}};
  return w;
}

Workload make_pointer_chase(std::int64_t nodes, std::int64_t iterations,
                            std::uint64_t seed) {
  assert(nodes > 1 && iterations > 0);
  constexpr std::int64_t kStride = 136;  // prime-ish spacing, 8-aligned
  // Build a random single-cycle permutation (Sattolo's algorithm) so the
  // chase visits every node before repeating.
  std::vector<std::int64_t> perm(static_cast<std::size_t>(nodes));
  std::iota(perm.begin(), perm.end(), 0);
  Xoshiro256 rng(seed);
  for (std::int64_t i = nodes - 1; i > 0; --i) {
    const auto j = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(i)));
    std::swap(perm[i], perm[j]);
  }
  auto addr_of = [](std::int64_t node) {
    return kDataBase + node * kStride;
  };

  ProgramBuilder b;
  b.begin_function("main");
  b.set_line(1);
  b.li(4, iterations);
  b.li(2, 0);
  b.li(1, addr_of(perm[0]));
  auto loop = b.new_label();
  b.bind(loop);
  b.set_line(2);
  b.load(1, 1, 0);
  b.set_line(3);
  b.addi(2, 2, 1);
  b.set_line(4);
  b.blt(2, 4, loop);
  b.halt();
  b.end_function();

  Workload w;
  w.name = "pointer_chase";
  w.program = std::move(b).build();
  w.setup = [perm, addr_of](Machine& m) {
    for (std::size_t i = 0; i < perm.size(); ++i) {
      const std::int64_t next = perm[(i + 1) % perm.size()];
      m.memory().write_i64(static_cast<std::uint64_t>(addr_of(perm[i])),
                           addr_of(next));
    }
  };
  const auto ui = static_cast<std::uint64_t>(iterations);
  w.expected = {.loads = ui, .branches = ui};
  w.regions = {{"nodes", static_cast<std::uint64_t>(kDataBase),
                static_cast<std::uint64_t>(nodes * kStride)}};
  return w;
}

Workload make_branchy(std::int64_t n, std::uint64_t seed) {
  assert(n > 0);
  ProgramBuilder b;
  b.begin_function("main");
  b.set_line(1);
  b.li(4, n);
  b.li(1, 0);
  b.li(10, kDataBase);
  b.li(0, 0);  // r0 kept zero by convention in this kernel
  b.li(6, 0);  // accumulator
  auto loop = b.new_label();
  auto skip = b.new_label();
  b.bind(loop);
  b.set_line(2);
  b.load(5, 10, 0);
  b.beq(5, 0, skip);
  b.set_line(3);
  b.addi(6, 6, 1);
  b.bind(skip);
  b.addi(10, 10, 8);
  b.addi(1, 1, 1);
  b.blt(1, 4, loop);
  b.halt();
  b.end_function();

  Workload w;
  w.name = "branchy";
  w.program = std::move(b).build();
  w.setup = [n, seed](Machine& m) {
    Xoshiro256 rng(seed);
    for (std::int64_t i = 0; i < n; ++i) {
      m.memory().write_i64(static_cast<std::uint64_t>(kDataBase + 8 * i),
                           static_cast<std::int64_t>(rng.next() & 1));
    }
  };
  const auto un = static_cast<std::uint64_t>(n);
  w.expected = {.loads = un, .branches = 2 * un};
  w.regions = {{"data", static_cast<std::uint64_t>(kDataBase), 8 * un}};
  return w;
}

Workload make_fcvt_mixed(std::int64_t n) {
  assert(n > 0);
  ProgramBuilder b;
  b.begin_function("main");
  b.set_line(1);
  b.li(4, n);
  b.li(1, 0);
  b.li(10, kXBase);
  b.li(11, kYBase);
  b.fli(0, 0.0);  // double-precision accumulator
  auto loop = b.new_label();
  b.bind(loop);
  b.set_line(2);
  b.fload(1, 10, 0);
  b.fadd(0, 0, 1);
  // Store in single precision: the convert is the "extra rounding
  // instruction" the POWER3 counted as a floating point instruction.
  b.fcvt_ds(5, 0);
  b.fstore(5, 11, 0);
  b.addi(10, 10, 8);
  b.addi(11, 11, 8);
  b.addi(1, 1, 1);
  b.blt(1, 4, loop);
  b.halt();
  b.end_function();

  Workload w;
  w.name = "fcvt_mixed";
  w.program = std::move(b).build();
  w.setup = [n](Machine& m) {
    for (std::int64_t i = 0; i < n; ++i) {
      m.memory().write_f64(kXBase + 8 * i, 0.125 * static_cast<double>(i));
    }
  };
  const auto un = static_cast<std::uint64_t>(n);
  w.expected = {.fp_add = un,
                .fp_cvt = un,
                .flops = un,
                .loads = un,
                .stores = un,
                .branches = un};
  w.regions = {{"x", static_cast<std::uint64_t>(kXBase), 8 * un},
               {"y", static_cast<std::uint64_t>(kYBase), 8 * un}};
  return w;
}

Workload make_multiphase(std::int64_t reps, std::int64_t inner) {
  assert(reps > 0 && inner > 0);
  ProgramBuilder b;

  // Phase 1: register-resident FP burst — 4 FMAs per iteration.
  b.begin_function("phase_fp");
  b.set_line(10);
  b.li(1, 0);
  b.li(4, inner);
  auto fp_loop = b.new_label();
  b.bind(fp_loop);
  b.fmadd(1, 2, 3);
  b.fmadd(4, 5, 6);
  b.fmadd(7, 8, 9);
  b.fmadd(10, 11, 12);
  b.addi(1, 1, 1);
  b.blt(1, 4, fp_loop);
  b.ret();
  b.end_function();

  // Phase 2: memory-bound strided walk, no FP.
  b.begin_function("phase_mem");
  b.set_line(20);
  b.li(1, 0);
  b.li(4, inner);
  b.li(10, kDataBase);
  auto mem_loop = b.new_label();
  b.bind(mem_loop);
  b.load(5, 10, 0);
  b.load(6, 10, 4096);
  b.addi(10, 10, 64);
  b.addi(1, 1, 1);
  b.blt(1, 4, mem_loop);
  b.ret();
  b.end_function();

  // Phase 3: branchy integer work.
  b.begin_function("phase_branch");
  b.set_line(30);
  b.li(1, 0);
  b.li(4, inner);
  b.li(10, kDataBase);
  b.li(0, 0);
  auto br_loop = b.new_label();
  auto br_skip = b.new_label();
  b.bind(br_loop);
  b.load(5, 10, 0);
  b.and_(5, 5, 5);
  b.beq(5, 0, br_skip);
  b.addi(6, 6, 1);
  b.bind(br_skip);
  b.addi(10, 10, 8);
  b.addi(1, 1, 1);
  b.blt(1, 4, br_loop);
  b.ret();
  b.end_function();

  b.begin_function("main");
  b.set_line(1);
  b.li(20, 0);
  b.li(21, reps);
  auto main_loop = b.new_label();
  b.bind(main_loop);
  b.call("phase_fp");
  b.call("phase_mem");
  b.call("phase_branch");
  b.addi(20, 20, 1);
  b.blt(20, 21, main_loop);
  b.halt();
  b.end_function();

  Workload w;
  w.name = "multiphase";
  w.program = std::move(b).build();
  w.setup = [inner](Machine& m) {
    Xoshiro256 rng(42);
    for (std::int64_t i = 0; i < inner + 512; ++i) {
      m.memory().write_i64(static_cast<std::uint64_t>(kDataBase + 8 * i),
                           static_cast<std::int64_t>(rng.next() & 1));
    }
  };
  const auto total_fma =
      static_cast<std::uint64_t>(reps) * static_cast<std::uint64_t>(inner) * 4;
  w.expected = {.fp_fma = total_fma, .flops = 2 * total_fma};
  w.regions = {{"data", static_cast<std::uint64_t>(kDataBase),
                static_cast<std::uint64_t>(inner) * 64 + 8192}};
  return w;
}

Workload make_tight_call(std::int64_t calls, int body_fmas) {
  assert(calls > 0 && body_fmas >= 0);
  ProgramBuilder b;

  b.begin_function("work");
  b.set_line(10);
  for (int i = 0; i < body_fmas; ++i) {
    b.fmadd(1 + (i % 8), 9, 10);
  }
  b.ret();
  b.end_function();

  b.begin_function("main");
  b.set_line(1);
  b.li(1, 0);
  b.li(4, calls);
  auto loop = b.new_label();
  b.bind(loop);
  b.call("work");
  b.addi(1, 1, 1);
  b.blt(1, 4, loop);
  b.halt();
  b.end_function();

  Workload w;
  w.name = "tight_call";
  w.program = std::move(b).build();
  const auto total =
      static_cast<std::uint64_t>(calls) * static_cast<std::uint64_t>(body_fmas);
  w.expected = {.fp_fma = total,
                .flops = 2 * total,
                .branches = static_cast<std::uint64_t>(calls)};
  return w;
}

Workload make_empty_loop(std::int64_t n) {
  assert(n > 0);
  ProgramBuilder b;
  b.begin_function("main");
  b.set_line(1);
  b.li(1, 0);
  b.li(4, n);
  auto loop = b.new_label();
  b.bind(loop);
  b.addi(1, 1, 1);
  b.blt(1, 4, loop);
  b.halt();
  b.end_function();

  Workload w;
  w.name = "empty_loop";
  w.program = std::move(b).build();
  w.expected = {.branches = static_cast<std::uint64_t>(n)};
  return w;
}

Workload make_stencil2d(std::int64_t n, std::int64_t sweeps) {
  assert(n >= 3 && sweeps > 0);
  const std::int64_t row_bytes = 8 * n;
  ProgramBuilder b;
  b.begin_function("main");
  b.set_line(1);
  b.li(7, n - 1);      // interior bound
  b.li(20, 0);         // sweep counter
  b.li(21, sweeps);
  b.fli(0, 0.25);
  auto sweep_loop = b.new_label();
  b.bind(sweep_loop);
  b.li(1, 1);                          // i
  b.li(15, kABase + row_bytes + 8);    // &in[1][1]
  b.li(16, kBBase + row_bytes + 8);    // &out[1][1]
  auto iloop = b.new_label();
  b.bind(iloop);
  b.li(2, 1);  // j
  b.mov(10, 15);
  b.mov(11, 16);
  auto jloop = b.new_label();
  b.bind(jloop);
  b.set_line(2);
  b.fload(1, 10, -row_bytes);  // up
  b.fload(2, 10, row_bytes);   // down
  b.fload(3, 10, -8);          // left
  b.fload(4, 10, 8);           // right
  b.fadd(1, 1, 2);
  b.fadd(3, 3, 4);
  b.fadd(1, 1, 3);
  b.fmul(1, 1, 0);
  b.fstore(1, 11, 0);
  b.set_line(3);
  b.addi(10, 10, 8);
  b.addi(11, 11, 8);
  b.addi(2, 2, 1);
  b.blt(2, 7, jloop);
  b.addi(15, 15, row_bytes);
  b.addi(16, 16, row_bytes);
  b.addi(1, 1, 1);
  b.blt(1, 7, iloop);
  b.addi(20, 20, 1);
  b.blt(20, 21, sweep_loop);
  b.halt();
  b.end_function();

  Workload w;
  w.name = "stencil2d";
  w.program = std::move(b).build();
  w.setup = [n](Machine& m) {
    for (std::int64_t i = 0; i < n * n; ++i) {
      m.memory().write_f64(kABase + 8 * i,
                           static_cast<double>(i % 11) * 0.5);
    }
  };
  const auto points = static_cast<std::uint64_t>((n - 2) * (n - 2)) *
                      static_cast<std::uint64_t>(sweeps);
  w.expected = {.fp_add = 3 * points,
                .fp_mul = points,
                .flops = 4 * points,
                .loads = 4 * points,
                .stores = points};
  const auto un = static_cast<std::uint64_t>(n);
  w.regions = {{"in", static_cast<std::uint64_t>(kABase), 8 * un * un},
               {"out", static_cast<std::uint64_t>(kBBase), 8 * un * un}};
  return w;
}

Workload make_reduction(std::int64_t n) {
  assert(n > 0);
  ProgramBuilder b;
  b.begin_function("main");
  b.set_line(1);
  b.li(4, n);
  b.li(1, 0);
  b.li(10, kXBase);
  b.fli(0, 0.0);
  auto loop = b.new_label();
  b.bind(loop);
  b.set_line(2);
  b.fload(1, 10, 0);
  b.fadd(0, 0, 1);
  b.addi(10, 10, 8);
  b.addi(1, 1, 1);
  b.blt(1, 4, loop);
  b.halt();
  b.end_function();

  Workload w;
  w.name = "reduction";
  w.program = std::move(b).build();
  w.setup = [n](Machine& m) {
    for (std::int64_t i = 0; i < n; ++i) {
      m.memory().write_f64(kXBase + 8 * i, 0.5 * static_cast<double>(i));
    }
  };
  const auto un = static_cast<std::uint64_t>(n);
  w.expected = {.fp_add = un,
                .flops = un,
                .loads = un,
                .stores = 0,
                .branches = un};
  w.regions = {{"x", static_cast<std::uint64_t>(kXBase), 8 * un}};
  return w;
}

Workload make_random_access(std::int64_t table_words,
                            std::int64_t updates) {
  assert(table_words > 0 && (table_words & (table_words - 1)) == 0 &&
         "table size must be a power of two");
  assert(updates > 0);
  ProgramBuilder b;
  b.begin_function("main");
  b.set_line(1);
  b.li(4, updates);
  b.li(1, 0);
  b.li(5, 0x2545F4914F6CDD1D);            // LCG state (seed)
  b.li(3, 6364136223846793005);           // LCG multiplier
  b.li(7, (table_words - 1));              // index mask (words)
  b.li(8, kDataBase);                      // table base
  auto loop = b.new_label();
  b.bind(loop);
  b.set_line(2);
  b.mul(5, 5, 3);
  b.addi(5, 5, 1442695040888963407);
  b.shri(6, 5, 13);
  b.and_(6, 6, 7);
  b.shli(6, 6, 3);
  b.add(6, 6, 8);
  b.set_line(3);
  b.load(9, 6, 0);
  b.xor_(9, 9, 5);
  b.store(9, 6, 0);
  b.addi(1, 1, 1);
  b.blt(1, 4, loop);
  b.halt();
  b.end_function();

  Workload w;
  w.name = "random_access";
  w.program = std::move(b).build();
  // The table reads as zero until first touched: no setup needed.
  const auto uu = static_cast<std::uint64_t>(updates);
  w.expected = {.loads = uu, .stores = uu, .branches = uu};
  w.regions = {{"table", static_cast<std::uint64_t>(kDataBase),
                static_cast<std::uint64_t>(table_words) * 8}};
  return w;
}

}  // namespace papirepro::sim
