// Interrupt-attribution skid model.  Section 4 of the paper: "On
// out-of-order processors, the program counter may yield an address that
// is several instructions or even basic blocks removed from the true
// address of the instruction that caused the overflow event."  Counter
// overflow interrupts are delivered this many retired instructions late;
// the profiled PC is whatever is retiring at delivery time.  EAR /
// ProfileMe platforms bypass the skid by latching the precise address at
// event time.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace papirepro::sim {

struct SkidModel {
  enum class Kind : std::uint8_t {
    kPrecise,    ///< delivery at the causing instruction (in-order/EAR)
    kFixed,      ///< constant skid (simple pipelined core)
    kGeometric,  ///< out-of-order: geometric tail, occasionally very long
  };

  Kind kind = Kind::kPrecise;
  std::uint32_t fixed = 0;      ///< skid for kFixed
  double p = 0.35;              ///< per-instruction stop probability
  std::uint32_t cap = 24;       ///< max skid for kGeometric
  std::uint32_t min = 2;        ///< min skid for kGeometric

  /// Number of additional instructions to retire before the interrupt is
  /// delivered.
  std::uint32_t draw(Xoshiro256& rng) const noexcept {
    switch (kind) {
      case Kind::kPrecise: return 0;
      case Kind::kFixed: return fixed;
      case Kind::kGeometric: return min + rng.next_geometric(p, cap - min);
    }
    return 0;
  }

  static SkidModel precise() noexcept { return {}; }
  static SkidModel fixed_skid(std::uint32_t n) noexcept {
    return {.kind = Kind::kFixed, .fixed = n};
  }
  static SkidModel out_of_order(double p = 0.35, std::uint32_t cap = 24,
                                std::uint32_t min = 2) noexcept {
    return {.kind = Kind::kGeometric, .p = p, .cap = cap, .min = min};
  }
};

}  // namespace papirepro::sim
