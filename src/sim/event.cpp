#include "sim/event.h"

namespace papirepro::sim {

std::string_view sim_event_name(SimEvent e) noexcept {
  switch (e) {
    case SimEvent::kCycles: return "CYCLES";
    case SimEvent::kInstructions: return "INSTRUCTIONS";
    case SimEvent::kIntIns: return "INT_INS";
    case SimEvent::kFpAdd: return "FP_ADD";
    case SimEvent::kFpMul: return "FP_MUL";
    case SimEvent::kFpFma: return "FP_FMA";
    case SimEvent::kFpDiv: return "FP_DIV";
    case SimEvent::kFpSqrt: return "FP_SQRT";
    case SimEvent::kFpCvt: return "FP_CVT";
    case SimEvent::kFpMove: return "FP_MOVE";
    case SimEvent::kLoadIns: return "LOAD_INS";
    case SimEvent::kStoreIns: return "STORE_INS";
    case SimEvent::kL1DAccess: return "L1D_ACCESS";
    case SimEvent::kL1DMiss: return "L1D_MISS";
    case SimEvent::kL1IAccess: return "L1I_ACCESS";
    case SimEvent::kL1IMiss: return "L1I_MISS";
    case SimEvent::kL2Access: return "L2_ACCESS";
    case SimEvent::kL2Miss: return "L2_MISS";
    case SimEvent::kDTlbMiss: return "DTLB_MISS";
    case SimEvent::kITlbMiss: return "ITLB_MISS";
    case SimEvent::kBrIns: return "BR_INS";
    case SimEvent::kBrTaken: return "BR_TAKEN";
    case SimEvent::kBrMispred: return "BR_MISPRED";
    case SimEvent::kStallCycles: return "STALL_CYCLES";
    case SimEvent::kCount: break;
  }
  return "?";
}

}  // namespace papirepro::sim
