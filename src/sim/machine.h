// The simulated processor.  Executes an assembled Program against the
// memory/cache/TLB/branch-predictor models, raises architectural event
// signals to subscribed listeners (the PMU models), fires cycle timers
// (the multiplexing time-slicer, perfometer sampling), delivers counter
// overflow interrupts with a configurable out-of-order attribution skid,
// and lets instrumentation charge overhead cycles and cache pollution —
// everything needed to reproduce the paper's accuracy and overhead
// findings deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "sim/branch_predictor.h"
#include "sim/cache.h"
#include "sim/event.h"
#include "sim/isa.h"
#include "sim/memory.h"
#include "sim/program.h"
#include "sim/skid.h"
#include "sim/tlb.h"

namespace papirepro::sim {

struct MachineConfig {
  CacheConfig l1i{.size_bytes = 16 * 1024, .line_bytes = 64,
                  .associativity = 2, .miss_latency = 8};
  CacheConfig l1d{.size_bytes = 32 * 1024, .line_bytes = 64,
                  .associativity = 4, .miss_latency = 8};
  CacheConfig l2{.size_bytes = 512 * 1024, .line_bytes = 64,
                 .associativity = 8, .miss_latency = 80};
  TlbConfig dtlb{.entries = 64, .page_bits = 12, .miss_latency = 30};
  TlbConfig itlb{.entries = 32, .page_bits = 12, .miss_latency = 30};
  BranchPredictorConfig branch{};

  // Extra cycles beyond the 1-cycle base, per instruction class.
  std::uint32_t int_mul_latency = 2;
  std::uint32_t int_div_latency = 12;
  std::uint32_t fp_add_latency = 2;
  std::uint32_t fp_mul_latency = 3;
  std::uint32_t fp_fma_latency = 3;
  std::uint32_t fp_div_latency = 18;
  std::uint32_t fp_sqrt_latency = 24;
  std::uint32_t fp_cvt_latency = 2;

  /// PC-attribution behaviour of overflow interrupts (see skid.h).
  SkidModel skid = SkidModel::precise();

  /// Clock frequency used to convert cycles to microseconds for the
  /// simulated-time PAPI timers.
  double frequency_ghz = 1.0;

  std::uint64_t seed = 0x9a5c3f1e2b4d6870ULL;
};

/// Delivered with an overflow interrupt.
struct InterruptContext {
  std::uint64_t pc_requested = 0;  ///< precise PC of the causing instruction
  std::uint64_t pc_delivered = 0;  ///< PC observed by the handler (skidded)
  std::uint64_t retired = 0;
  std::uint64_t cycles = 0;
};

struct RunResult {
  bool halted = false;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
};

class Machine {
 public:
  using ProbeHandler = std::function<void(std::int64_t probe_id, Machine&)>;
  using TimerCallback = std::function<void(Machine&)>;
  using InterruptHandler = std::function<void(const InterruptContext&)>;

  /// The machine owns its program image (loaded into "text memory"), so
  /// callers may pass temporaries.
  Machine(Program program, const MachineConfig& config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // --- architectural state ---
  std::int64_t int_reg(int r) const { return iregs_.at(r); }
  void set_int_reg(int r, std::int64_t v) { iregs_.at(r) = v; }
  double fp_reg(int r) const { return fregs_.at(r); }
  void set_fp_reg(int r, double v) { fregs_.at(r) = v; }
  Memory& memory() noexcept { return memory_; }
  const Memory& memory() const noexcept { return memory_; }

  std::uint64_t pc_address() const noexcept { return instr_address(pc_); }
  void set_pc_index(std::int32_t idx) noexcept { pc_ = idx; }
  bool halted() const noexcept { return halted_; }

  // --- counters / stats ---
  std::uint64_t cycles() const noexcept { return cycles_; }
  std::uint64_t retired() const noexcept { return retired_; }
  /// Cycles injected by instrumentation via charge_cycles().
  std::uint64_t overhead_cycles() const noexcept { return overhead_cycles_; }
  double seconds() const noexcept {
    return static_cast<double>(cycles_) / (config_.frequency_ghz * 1e9);
  }
  std::uint64_t microseconds() const noexcept {
    return static_cast<std::uint64_t>(
        static_cast<double>(cycles_) / (config_.frequency_ghz * 1e3));
  }

  const Cache& l1i() const noexcept { return l1i_; }
  const Cache& l1d() const noexcept { return l1d_; }
  const Cache& l2() const noexcept { return l2_; }
  const Tlb& dtlb() const noexcept { return dtlb_; }
  const Tlb& itlb() const noexcept { return itlb_; }
  const BranchPredictor& branch_predictor() const noexcept { return bp_; }
  const MachineConfig& config() const noexcept { return config_; }
  const Program& program() const noexcept { return program_; }

  // --- instrumentation hooks ---
  void add_listener(EventListener* listener);
  void remove_listener(EventListener* listener);

  void set_probe_handler(ProbeHandler handler) {
    probe_handler_ = std::move(handler);
  }
  /// Current probe handler (empty if none) — lets tools chain handlers.
  const ProbeHandler& probe_handler() const noexcept {
    return probe_handler_;
  }

  /// Registers a periodic timer firing every `period_cycles`.  Returns a
  /// timer id usable with cancel_timer().  Used by the multiplexing
  /// time-slicer and by perfometer's sampling interval.
  int add_cycle_timer(std::uint64_t period_cycles, TimerCallback callback);
  void cancel_timer(int id);

  /// Schedules an interrupt `delay_instructions` retirements in the
  /// future (0 = immediately after the current instruction), recording
  /// `pc_requested` as the precise cause.  The PMU draws the delay from
  /// the platform skid model.
  void schedule_interrupt(std::uint32_t delay_instructions,
                          std::uint64_t pc_requested,
                          InterruptHandler handler);

  /// Charges instrumentation overhead: advances the cycle clock (visible
  /// to all cycle counters, as in real hardware) and optionally pollutes
  /// the data cache — the two overhead sources Section 4 names for
  /// counter-read system calls.
  void charge_cycles(std::uint64_t n, std::uint32_t pollute_lines = 0);

  /// Skid RNG, exposed so the PMU can draw delivery delays from the
  /// machine-owned deterministic stream.
  Xoshiro256& skid_rng() noexcept { return rng_; }

  // --- execution ---
  /// Runs until HALT or until `max_instructions` retire.
  RunResult run(std::uint64_t max_instructions =
                    std::numeric_limits<std::uint64_t>::max());

  /// Executes exactly one instruction (test hook).
  void step();

 private:
  struct Timer {
    int id;
    std::uint64_t period;
    std::uint64_t next_deadline;
    TimerCallback callback;
    bool cancelled;
  };
  struct PendingInterrupt {
    std::uint64_t deliver_at_retired;
    std::uint64_t pc_requested;
    InterruptHandler handler;
  };

  void emit(SimEvent e, std::uint64_t weight, const EventContext& ctx);
  std::uint32_t data_access(std::uint64_t addr, const EventContext& ctx);
  std::uint32_t fetch(const EventContext& ctx);
  void fire_timers();
  void deliver_interrupts(std::uint64_t pc_delivered);

  Program program_;
  MachineConfig config_;
  Memory memory_;
  Cache l1i_, l1d_, l2_;
  Tlb dtlb_, itlb_;
  BranchPredictor bp_;
  Xoshiro256 rng_;

  std::vector<std::int64_t> iregs_;
  std::vector<double> fregs_;
  std::vector<std::int32_t> call_stack_;
  std::int32_t pc_ = 0;
  bool halted_ = false;

  std::uint64_t cycles_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t overhead_cycles_ = 0;

  /// Guards listener-list *mutation* only: cross-thread Library
  /// registration attaches PMU listeners concurrently (one context per
  /// registering thread on the fallback machine), so add/remove must
  /// serialize.  Dispatch (emit) stays lock-free under the machine's
  /// ownership rule — only the owning thread runs it, and never while a
  /// registration is in flight on this machine.
  std::mutex listeners_mutex_;
  std::vector<EventListener*> listeners_;
  ProbeHandler probe_handler_;
  std::vector<Timer> timers_;
  std::uint64_t next_timer_deadline_ =
      std::numeric_limits<std::uint64_t>::max();
  int next_timer_id_ = 0;
  std::vector<PendingInterrupt> pending_interrupts_;
  bool in_handler_ = false;
};

}  // namespace papirepro::sim
