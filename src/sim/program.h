// Program representation and a small assembler.  Programs carry function
// boundaries and source-line debug info so that the profiling tools
// (PAPI_profil buckets, dynaprof, the vprof-style source correlator) can
// attribute events to program structure exactly the way the paper's tools
// attribute them to routines and statements.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sim/isa.h"

namespace papirepro::sim {

/// A contiguous range of instructions with a name; the unit dynaprof
/// instruments and function-level profiles report on.
struct Function {
  std::string name;
  std::int32_t entry = 0;  ///< first instruction index
  std::int32_t end = 0;    ///< one past the last instruction index

  bool contains(std::int64_t idx) const noexcept {
    return idx >= entry && idx < end;
  }
};

/// An assembled program: instructions plus symbol/debug metadata.
class Program {
 public:
  const std::vector<Instruction>& code() const noexcept { return code_; }
  const std::vector<Function>& functions() const noexcept {
    return functions_;
  }
  std::size_t size() const noexcept { return code_.size(); }
  bool empty() const noexcept { return code_.empty(); }

  const Instruction& at(std::int64_t idx) const { return code_.at(idx); }

  /// Function containing instruction `idx`, or nullptr.
  const Function* function_at(std::int64_t idx) const noexcept;

  /// Function by name, or nullptr.
  const Function* find_function(std::string_view name) const noexcept;

  /// Index of the entry instruction (label "main" if defined, else 0).
  std::int32_t entry() const noexcept { return entry_; }

  /// Source line recorded for instruction `idx` (0 when unknown).
  std::uint32_t line_of(std::int64_t idx) const;

  /// Full-text disassembly (tests / debugging).
  std::string dump() const;

  /// Assembles a program directly from resolved parts (all branch/call
  /// targets must already be absolute indices).  Used by program
  /// rewriters such as the dynaprof instrumenter.
  static Program from_parts(std::vector<Instruction> code,
                            std::vector<Function> functions);

 private:
  friend class ProgramBuilder;
  std::vector<Instruction> code_;
  std::vector<Function> functions_;
  std::int32_t entry_ = 0;
};

/// Assembler with label fixups.  Usage:
///
///   ProgramBuilder b;
///   b.begin_function("main");
///   auto loop = b.new_label();
///   b.li(1, 0);
///   b.bind(loop);
///   ... body ...
///   b.blt(1, 2, loop);
///   b.halt();
///   b.end_function();
///   Program p = std::move(b).build();
class ProgramBuilder {
 public:
  using Label = std::int32_t;

  Label new_label() {
    label_targets_.push_back(-1);
    return static_cast<Label>(label_targets_.size() - 1);
  }

  /// Binds `label` to the next emitted instruction.
  void bind(Label label);

  /// Sets the source line attached to subsequently emitted instructions.
  void set_line(std::uint32_t line) noexcept { line_ = line; }

  void begin_function(std::string name);
  void end_function();

  // --- emission helpers (thin wrappers over emit()) ---
  void nop() { emit({Opcode::kNop}); }
  void halt() { emit({Opcode::kHalt}); }
  void probe(std::int64_t id) { emit({.op = Opcode::kProbe, .imm = id}); }

  void li(int rd, std::int64_t imm) {
    emit({.op = Opcode::kLi, .rd = u8(rd), .imm = imm});
  }
  void mov(int rd, int rs1) {
    emit({.op = Opcode::kMov, .rd = u8(rd), .rs1 = u8(rs1)});
  }
  void add(int rd, int rs1, int rs2) { rrr(Opcode::kAdd, rd, rs1, rs2); }
  void addi(int rd, int rs1, std::int64_t imm) {
    emit({.op = Opcode::kAddi, .rd = u8(rd), .rs1 = u8(rs1), .imm = imm});
  }
  void sub(int rd, int rs1, int rs2) { rrr(Opcode::kSub, rd, rs1, rs2); }
  void mul(int rd, int rs1, int rs2) { rrr(Opcode::kMul, rd, rs1, rs2); }
  void divi(int rd, int rs1, std::int64_t imm) {
    emit({.op = Opcode::kDivi, .rd = u8(rd), .rs1 = u8(rs1), .imm = imm});
  }
  void and_(int rd, int rs1, int rs2) { rrr(Opcode::kAnd, rd, rs1, rs2); }
  void or_(int rd, int rs1, int rs2) { rrr(Opcode::kOr, rd, rs1, rs2); }
  void xor_(int rd, int rs1, int rs2) { rrr(Opcode::kXor, rd, rs1, rs2); }
  void shli(int rd, int rs1, std::int64_t imm) {
    emit({.op = Opcode::kShli, .rd = u8(rd), .rs1 = u8(rs1), .imm = imm});
  }
  void shri(int rd, int rs1, std::int64_t imm) {
    emit({.op = Opcode::kShri, .rd = u8(rd), .rs1 = u8(rs1), .imm = imm});
  }
  void slt(int rd, int rs1, int rs2) { rrr(Opcode::kSlt, rd, rs1, rs2); }

  void fli(int fd, double value);
  void fmov(int fd, int fs1) {
    emit({.op = Opcode::kFMov, .rd = u8(fd), .rs1 = u8(fs1)});
  }
  void fadd(int fd, int fs1, int fs2) { rrr(Opcode::kFAdd, fd, fs1, fs2); }
  void fsub(int fd, int fs1, int fs2) { rrr(Opcode::kFSub, fd, fs1, fs2); }
  void fmul(int fd, int fs1, int fs2) { rrr(Opcode::kFMul, fd, fs1, fs2); }
  void fmadd(int fd, int fs1, int fs2) { rrr(Opcode::kFMadd, fd, fs1, fs2); }
  void fdiv(int fd, int fs1, int fs2) { rrr(Opcode::kFDiv, fd, fs1, fs2); }
  void fsqrt(int fd, int fs1) {
    emit({.op = Opcode::kFSqrt, .rd = u8(fd), .rs1 = u8(fs1)});
  }
  void fcvt_ds(int fd, int fs1) {
    emit({.op = Opcode::kFCvtDS, .rd = u8(fd), .rs1 = u8(fs1)});
  }
  void fcvt_sd(int fd, int fs1) {
    emit({.op = Opcode::kFCvtSD, .rd = u8(fd), .rs1 = u8(fs1)});
  }
  void fneg(int fd, int fs1) {
    emit({.op = Opcode::kFNeg, .rd = u8(fd), .rs1 = u8(fs1)});
  }

  void load(int rd, int rs1, std::int64_t offset) {
    emit({.op = Opcode::kLoad, .rd = u8(rd), .rs1 = u8(rs1), .imm = offset});
  }
  void store(int rs2, int rs1, std::int64_t offset) {
    emit({.op = Opcode::kStore, .rs1 = u8(rs1), .rs2 = u8(rs2),
          .imm = offset});
  }
  void fload(int fd, int rs1, std::int64_t offset) {
    emit({.op = Opcode::kFLoad, .rd = u8(fd), .rs1 = u8(rs1), .imm = offset});
  }
  void fstore(int fs2, int rs1, std::int64_t offset) {
    emit({.op = Opcode::kFStore, .rs1 = u8(rs1), .rs2 = u8(fs2),
          .imm = offset});
  }

  void beq(int rs1, int rs2, Label l) { branch(Opcode::kBeq, rs1, rs2, l); }
  void bne(int rs1, int rs2, Label l) { branch(Opcode::kBne, rs1, rs2, l); }
  void blt(int rs1, int rs2, Label l) { branch(Opcode::kBlt, rs1, rs2, l); }
  void bge(int rs1, int rs2, Label l) { branch(Opcode::kBge, rs1, rs2, l); }
  void jump(Label l) { branch(Opcode::kJump, 0, 0, l); }

  /// Call a function by name; the name must exist by build() time.
  void call(std::string_view function);
  void ret() { emit({Opcode::kRet}); }

  std::int32_t next_index() const noexcept {
    return static_cast<std::int32_t>(code_.size());
  }

  /// Resolve labels/calls and produce the program.  Aborts (assert) on
  /// unresolved labels — an unresolved label is a harness bug, not a
  /// runtime condition.
  Program build() &&;

 private:
  static std::uint8_t u8(int r);
  void emit(Instruction ins);
  void rrr(Opcode op, int rd, int rs1, int rs2) {
    emit({.op = op, .rd = u8(rd), .rs1 = u8(rs1), .rs2 = u8(rs2)});
  }
  void branch(Opcode op, int rs1, int rs2, Label l);

  std::vector<Instruction> code_;
  std::vector<Function> functions_;
  std::vector<std::int32_t> label_targets_;
  /// (instruction index, label) pairs awaiting resolution.
  std::vector<std::pair<std::int32_t, Label>> fixups_;
  /// (instruction index, callee name) pairs awaiting resolution.
  std::vector<std::pair<std::int32_t, std::string>> call_fixups_;
  std::uint32_t line_ = 0;
  bool in_function_ = false;
};

}  // namespace papirepro::sim
