#include "sim/branch_predictor.h"

namespace papirepro::sim {

bool BranchPredictor::predict_and_train(std::uint64_t pc, bool taken) {
  ++stats_.conditional;
  if (taken) ++stats_.taken;

  std::uint8_t& counter = table_[index(pc)];
  const bool predicted_taken = counter >= 2;

  if (taken && counter < 3) ++counter;
  if (!taken && counter > 0) --counter;
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;

  const bool correct = predicted_taken == taken;
  if (!correct) ++stats_.mispredicted;
  return correct;
}

}  // namespace papirepro::sim
