#include "sim/comm.h"

#include <algorithm>
#include <cassert>
#include <thread>

#include "sim/kernels.h"
#include "sim/program.h"

namespace papirepro::sim {

CommWorld::CommWorld(std::vector<Machine*> ranks)
    : ranks_(std::move(ranks)) {
  assert(!ranks_.empty());
  stats_ = std::make_unique<AtomicRankStats[]>(ranks_.size());
  chained_.resize(ranks_.size());
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    chained_[r] = ranks_[r]->probe_handler();
    ranks_[r]->set_probe_handler(
        [this, r](std::int64_t id, Machine& machine) {
          on_probe(r, id, machine);
        });
  }
}

CommWorld::~CommWorld() {
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    ranks_[r]->set_probe_handler(chained_[r]);
  }
}

void CommWorld::on_probe(std::size_t rank, std::int64_t id,
                         Machine& machine) {
  const auto n = static_cast<std::int64_t>(ranks_.size());
  if (id >= kSendBase && id < kSendBase + n) {
    const auto dest = static_cast<std::size_t>(id - kSendBase);
    const auto addr =
        static_cast<std::uint64_t>(machine.int_reg(kAddrReg));
    const auto count =
        static_cast<std::uint64_t>(machine.int_reg(kCountReg));
    std::vector<std::int64_t> payload;
    payload.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      payload.push_back(machine.memory().read_i64(addr + 8 * i));
    }
    // Single-writer relaxed bumps (this rank's thread is the only
    // writer of its entry); load+store avoids an RMW on the hot path.
    AtomicRankStats& s = stats_[rank];
    s.words_sent.store(
        s.words_sent.load(std::memory_order_relaxed) + payload.size(),
        std::memory_order_relaxed);
    s.sends.store(s.sends.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(comm_mutex_);
      mailboxes_[{dest, rank}].push_back(std::move(payload));
    }
    return;
  }
  if (id >= kRecvBase && id < kRecvBase + n) {
    const auto src = static_cast<std::size_t>(id - kRecvBase);
    std::vector<std::int64_t> payload;
    bool got = false;
    {
      const std::lock_guard<std::mutex> lock(comm_mutex_);
      auto& queue = mailboxes_[{rank, src}];
      if (!queue.empty()) {
        payload = std::move(queue.front());
        queue.pop_front();
        got = true;
      }
    }
    if (!got) {
      // Nothing to receive yet: rewind onto the recv probe so the rank
      // busy-waits, burning visible cycles.
      const std::int64_t next_index =
          address_to_index(machine.pc_address());
      machine.set_pc_index(static_cast<std::int32_t>(next_index - 1));
      AtomicRankStats& s = stats_[rank];
      s.wait_retries.store(
          s.wait_retries.load(std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      return;
    }
    const auto addr =
        static_cast<std::uint64_t>(machine.int_reg(kAddrReg));
    const auto cap =
        static_cast<std::uint64_t>(machine.int_reg(kCountReg));
    for (std::uint64_t i = 0; i < payload.size() && i < cap; ++i) {
      machine.memory().write_i64(addr + 8 * i, payload[i]);
    }
    AtomicRankStats& s = stats_[rank];
    s.words_recv.store(
        s.words_recv.load(std::memory_order_relaxed) +
            std::min<std::uint64_t>(payload.size(), cap),
        std::memory_order_relaxed);
    s.recvs.store(s.recvs.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
    return;
  }
  if (chained_[rank]) chained_[rank](id, machine);
}

bool CommWorld::run_threaded(
    std::uint64_t max_instructions_per_rank,
    const std::function<void(std::size_t)>& thread_begin,
    const std::function<void(std::size_t)>& thread_end) {
  std::vector<std::thread> threads;
  std::vector<unsigned char> halted(ranks_.size(), 0);
  threads.reserve(ranks_.size());
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    threads.emplace_back([&, r] {
      if (thread_begin) thread_begin(r);
      ranks_[r]->run(max_instructions_per_rank);
      halted[r] = ranks_[r]->halted() ? 1 : 0;
      if (thread_end) thread_end(r);
    });
  }
  for (std::thread& t : threads) t.join();
  bool all = true;
  for (const unsigned char h : halted) all &= h != 0;
  return all;
}

bool CommWorld::run_lockstep(std::uint64_t quantum,
                             std::uint64_t max_rounds) {
  for (std::uint64_t round = 0; round < max_rounds; ++round) {
    bool all_halted = true;
    for (Machine* rank : ranks_) {
      if (!rank->halted()) {
        rank->run(quantum);
        all_halted &= rank->halted();
      }
    }
    if (all_halted) return true;
  }
  return false;
}

Workload make_ring_rank(std::size_t rank, std::size_t nranks,
                        std::int64_t iters, std::int64_t work,
                        std::int64_t chunk_words) {
  assert(nranks >= 2 && rank < nranks);
  assert(iters > 0 && work > 0 && chunk_words > 0);
  const auto right =
      static_cast<std::int64_t>((rank + 1) % nranks);
  const auto left =
      static_cast<std::int64_t>((rank + nranks - 1) % nranks);
  constexpr std::int64_t kSendBuf = 0x20000000;
  constexpr std::int64_t kRecvBuf = 0x28000000;

  ProgramBuilder b;
  b.begin_function("main");
  b.set_line(1);
  b.li(1, 0);  // iteration
  b.li(2, iters);
  auto loop = b.new_label();
  b.bind(loop);
  // --- compute phase ---
  b.set_line(2);
  b.li(3, 0);
  b.li(4, work);
  auto comp = b.new_label();
  b.bind(comp);
  b.fmadd(1, 2, 3);
  b.addi(3, 3, 1);
  b.blt(3, 4, comp);
  // --- communicate phase ---
  b.set_line(3);
  b.li(CommWorld::kAddrReg, kSendBuf);
  b.store(1, CommWorld::kAddrReg, 0);  // payload[0] = iteration
  b.li(CommWorld::kCountReg, chunk_words);
  b.probe(CommWorld::kSendBase + right);
  b.li(CommWorld::kAddrReg, kRecvBuf);
  b.li(CommWorld::kCountReg, chunk_words);
  b.probe(CommWorld::kRecvBase + left);
  b.addi(1, 1, 1);
  b.blt(1, 2, loop);
  b.halt();
  b.end_function();

  Workload w;
  w.name = "ring_rank";
  w.program = std::move(b).build();
  const auto total_fma = static_cast<std::uint64_t>(iters) *
                         static_cast<std::uint64_t>(work);
  w.expected = {.fp_fma = total_fma, .flops = 2 * total_fma};
  w.regions = {{"sendbuf", static_cast<std::uint64_t>(kSendBuf),
                static_cast<std::uint64_t>(chunk_words) * 8},
               {"recvbuf", static_cast<std::uint64_t>(kRecvBuf),
                static_cast<std::uint64_t>(chunk_words) * 8}};
  return w;
}

}  // namespace papirepro::sim
