#include "sim/tlb.h"

namespace papirepro::sim {

bool Tlb::access(std::uint64_t addr) {
  ++stats_.accesses;
  const std::uint64_t vpn = addr >> config_.page_bits;

  Slot* victim = &slots_.front();
  for (auto& slot : slots_) {
    if (slot.valid && slot.vpn == vpn) {
      slot.lru = ++stamp_;
      return true;
    }
    if (!slot.valid) {
      victim = &slot;
    } else if (victim->valid && slot.lru < victim->lru) {
      victim = &slot;
    }
  }

  ++stats_.misses;
  victim->valid = true;
  victim->vpn = vpn;
  victim->lru = ++stamp_;
  return false;
}

void Tlb::flush() {
  for (auto& slot : slots_) slot.valid = false;
}

}  // namespace papirepro::sim
