// Workload library: the synthetic kernels every experiment runs.  Each
// kernel is a Workload — an assembled Program, a memory-setup function,
// and (where they are analytically computable) the *expected* event
// counts.  Expected counts are what the paper's `calibrate` utility and
// micro-benchmark methodology rely on: "test programs can take the form
// of micro-benchmarks for which the expected counts are known."
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "sim/machine.h"
#include "sim/program.h"

namespace papirepro::sim {

/// Analytically-known event counts for a kernel (only the ones that are
/// exact by construction are filled in).
struct ExpectedCounts {
  std::optional<std::uint64_t> fp_add;   ///< FP add/sub instructions
  std::optional<std::uint64_t> fp_mul;   ///< FP multiply instructions
  std::optional<std::uint64_t> fp_fma;   ///< fused multiply-adds
  std::optional<std::uint64_t> fp_cvt;   ///< precision converts
  std::optional<std::uint64_t> flops;    ///< normalized FLOPs (FMA = 2)
  std::optional<std::uint64_t> loads;
  std::optional<std::uint64_t> stores;
  std::optional<std::uint64_t> branches; ///< conditional branches
};

/// A named data object of a workload (an array the kernel touches);
/// feeds the PAPI 3 "location of memory used by an object" extension.
struct MemoryRegion {
  std::string name;
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;

  bool contains(std::uint64_t addr) const noexcept {
    return addr >= base && addr < base + bytes;
  }
};

struct Workload {
  std::string name;
  Program program;
  /// Initializes machine memory/registers before the run; may be empty.
  std::function<void(Machine&)> setup;
  ExpectedCounts expected;
  /// The kernel's named data objects (arrays), for per-object memory
  /// profiling.
  std::vector<MemoryRegion> regions;
};

/// y[i] += a * x[i]; one FMA per element.
Workload make_saxpy(std::int64_t n);

/// Dense n x n matrix multiply, naive ijk order (strided B accesses give
/// the poor cache behaviour the blocked variant fixes).
Workload make_matmul(std::int64_t n);

/// Cache-blocked n x n matrix multiply.  Same n^3 FMAs, far fewer L1/L2
/// misses — the canonical PAPI tuning demo.  n must be a multiple of
/// `block`.
Workload make_matmul_blocked(std::int64_t n, std::int64_t block);

/// STREAM triad a[i] = b[i] + s * c[i] with separate mul + add (no FMA).
Workload make_stream_triad(std::int64_t n);

/// Random-permutation pointer chase: `iterations` dependent loads over
/// `nodes` nodes spread across memory.  High D-cache/D-TLB miss rates;
/// the single load instruction makes profiling attribution unambiguous.
Workload make_pointer_chase(std::int64_t nodes, std::int64_t iterations,
                            std::uint64_t seed);

/// Data-dependent branches over random 0/1 data: ~50% taken, high
/// mispredict rate.
Workload make_branchy(std::int64_t n, std::uint64_t seed);

/// Mixed-precision loop: each iteration does one FP add and one
/// double->single convert ("rounding instruction").  Reproduces the
/// POWER3 FP-instruction discrepancy when run on sim-power3.
Workload make_fcvt_mixed(std::int64_t n);

/// Multi-phase program for the perfometer trace (Fig. 2): alternating
/// FP-burst, memory-bound, and branchy phases, `reps` rounds of `inner`
/// iterations each.
Workload make_multiphase(std::int64_t reps, std::int64_t inner);

/// A tiny leaf function called `calls` times from a loop; `body_fmas`
/// FMAs per call.  The instrumentation-overhead workload: probing every
/// entry/exit of a small routine is exactly the case Section 4 calls
/// "excessive" for direct counting.
Workload make_tight_call(std::int64_t calls, int body_fmas);

/// Pure empty counting loop (baseline for overhead measurements).
Workload make_empty_loop(std::int64_t n);

/// 5-point 2D Jacobi stencil sweep over an n x n grid (interior points):
/// out[i][j] = 0.25 * (in[i-1][j] + in[i+1][j] + in[i][j-1] + in[i][j+1]).
/// Classic HPC memory pattern: three rows live in cache at once.
Workload make_stencil2d(std::int64_t n, std::int64_t sweeps = 1);

/// Sum reduction over n elements (sequential adds into one register).
Workload make_reduction(std::int64_t n);

/// GUPS-style random access: `updates` read-modify-writes at pseudo-
/// random (LCG-generated) locations in a `table_words`-word table.
/// Maximal TLB/cache pressure with analytically exact op counts.
Workload make_random_access(std::int64_t table_words,
                            std::int64_t updates);

}  // namespace papirepro::sim
