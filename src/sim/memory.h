// Sparse, paged byte-addressable memory for the simulated machine.
// Pages are allocated on first touch; the page count feeds the simulated
// process-memory statistics behind the PAPI 3 memory-utilization
// extensions (resident size, high-water mark).
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <unordered_map>

namespace papirepro::sim {

inline constexpr std::uint64_t kPageBits = 12;  // 4 KiB pages
inline constexpr std::uint64_t kPageSize = 1ULL << kPageBits;
inline constexpr std::uint64_t kPageMask = kPageSize - 1;

class Memory {
 public:
  std::int64_t read_i64(std::uint64_t addr) const;
  void write_i64(std::uint64_t addr, std::int64_t value);

  double read_f64(std::uint64_t addr) const {
    return std::bit_cast<double>(read_i64(addr));
  }
  void write_f64(std::uint64_t addr, double value) {
    write_i64(addr, std::bit_cast<std::int64_t>(value));
  }

  /// Number of distinct pages ever touched (high-water mark in pages).
  std::uint64_t pages_touched() const noexcept { return pages_.size(); }
  std::uint64_t bytes_touched() const noexcept {
    return pages_.size() * kPageSize;
  }

  static constexpr std::uint64_t page_of(std::uint64_t addr) noexcept {
    return addr >> kPageBits;
  }

 private:
  struct Page {
    std::int64_t words[kPageSize / 8] = {};
  };
  Page& page(std::uint64_t page_index);
  const Page* find_page(std::uint64_t page_index) const;

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace papirepro::sim
