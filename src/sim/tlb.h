// Fully-associative translation lookaside buffer with LRU replacement.
// Drives the PAPI_TLB_DM / PAPI_TLB_IM preset events.
#pragma once

#include <cstdint>
#include <vector>

namespace papirepro::sim {

struct TlbConfig {
  std::uint32_t entries = 64;
  std::uint32_t page_bits = 12;  ///< 4 KiB pages by default
  std::uint32_t miss_latency = 30;
};

struct TlbStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& config) : config_(config) {
    slots_.resize(config.entries);
  }

  /// Translates `addr`; returns true on TLB hit.
  bool access(std::uint64_t addr);

  void flush();

  const TlbStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }
  const TlbConfig& config() const noexcept { return config_; }

 private:
  struct Slot {
    std::uint64_t vpn = 0;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  TlbConfig config_;
  std::vector<Slot> slots_;
  std::uint64_t stamp_ = 0;
  TlbStats stats_;
};

}  // namespace papirepro::sim
