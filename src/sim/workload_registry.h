// Name-based workload construction, used by the papirun utility, the C
// API's simulator bootstrap, and the benchmark harness.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "sim/kernels.h"

namespace papirepro::sim {

/// Known workload names (see kernels.h for semantics):
///   saxpy, matmul, matmul_blocked, stream, pointer_chase, branchy,
///   fcvt_mixed, multiphase, tight_call, empty_loop
std::vector<std::string_view> workload_names();

/// Builds `name` with a problem-size knob `n` (kernel-specific meaning;
/// 0 picks a sensible default).  nullopt for unknown names.
std::optional<Workload> make_workload(std::string_view name,
                                      std::int64_t n = 0);

}  // namespace papirepro::sim
