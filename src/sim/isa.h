// Instruction-set definition for the simulated processor that stands in
// for the paper's 2003-era hardware (x86, POWER3, Itanium, Alpha).  The
// machine is a 64-bit register machine: 32 integer registers, 32 floating
// point registers, byte-addressed memory, label-resolved control flow.
//
// The ISA is deliberately small but covers every event class the paper's
// claims depend on: integer/FP arithmetic (including fused multiply-add
// and the double<->single *convert/rounding* instructions behind the
// POWER3 FP-count discrepancy), loads/stores (cache + TLB events),
// branches (prediction events), calls/returns (function-level profiling),
// and probe instructions (dynaprof instrumentation points).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace papirepro::sim {

inline constexpr int kNumIntRegs = 32;
inline constexpr int kNumFpRegs = 32;

/// Base virtual address of the text segment.  Instruction i lives at
/// kTextBase + 4*i, giving profilers realistic-looking addresses.
inline constexpr std::uint64_t kTextBase = 0x400000;
inline constexpr std::uint64_t kInstrBytes = 4;

enum class Opcode : std::uint8_t {
  kNop,
  kHalt,
  /// Instrumentation probe: transfers control to the host probe handler
  /// (dynaprof).  imm carries the probe id.
  kProbe,

  // --- integer ---
  kLi,    ///< rd = imm
  kMov,   ///< rd = rs1
  kAdd,   ///< rd = rs1 + rs2
  kAddi,  ///< rd = rs1 + imm
  kSub,   ///< rd = rs1 - rs2
  kMul,   ///< rd = rs1 * rs2
  kDivi,  ///< rd = rs1 / imm (imm != 0)
  kAnd,   ///< rd = rs1 & rs2
  kOr,    ///< rd = rs1 | rs2
  kXor,   ///< rd = rs1 ^ rs2
  kShli,  ///< rd = rs1 << imm
  kShri,  ///< rd = rs1 >> imm (logical)
  kSlt,   ///< rd = (rs1 < rs2) ? 1 : 0

  // --- floating point (double precision unless noted) ---
  kFLi,    ///< fd = bit_cast<double>(imm)
  kFMov,   ///< fd = fs1
  kFAdd,   ///< fd = fs1 + fs2
  kFSub,   ///< fd = fs1 - fs2
  kFMul,   ///< fd = fs1 * fs2
  kFMadd,  ///< fd = fd + fs1 * fs2   (fused multiply-add: 1 instruction,
           ///                         2 floating point operations)
  kFDiv,   ///< fd = fs1 / fs2
  kFSqrt,  ///< fd = sqrt(fs1)
  kFCvtDS, ///< fd = (double)(float)fs1  — round to single: the "extra
           ///   rounding instruction" POWER3 counted as an FP instruction
  kFCvtSD, ///< fd = widen(fs1) (single to double; same rounding class)
  kFNeg,   ///< fd = -fs1

  // --- memory (8-byte words) ---
  kLoad,   ///< rd = mem64[rs1 + imm]
  kStore,  ///< mem64[rs1 + imm] = rs2
  kFLoad,  ///< fd = memf64[rs1 + imm]
  kFStore, ///< memf64[rs1 + imm] = fs2

  // --- control flow (target = absolute instruction index) ---
  kBeq,   ///< if (rs1 == rs2) goto target
  kBne,   ///< if (rs1 != rs2) goto target
  kBlt,   ///< if (rs1 <  rs2) goto target
  kBge,   ///< if (rs1 >= rs2) goto target
  kJump,  ///< goto target
  kCall,  ///< push return address; goto target (function entry)
  kRet,   ///< pop return address
};

/// Which functional class an opcode belongs to; drives event generation.
enum class OpClass : std::uint8_t {
  kNop,
  kIntAlu,
  kIntMul,
  kIntDiv,
  kFpAdd,
  kFpMul,
  kFpFma,
  kFpDiv,
  kFpSqrt,
  kFpCvt,
  kFpMove,
  kLoad,
  kStore,
  kBranch,
  kJump,
  kCall,
  kRet,
  kProbe,
  kHalt,
};

constexpr OpClass op_class(Opcode op) noexcept {
  switch (op) {
    case Opcode::kNop: return OpClass::kNop;
    case Opcode::kHalt: return OpClass::kHalt;
    case Opcode::kProbe: return OpClass::kProbe;
    case Opcode::kLi:
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kAddi:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShli:
    case Opcode::kShri:
    case Opcode::kSlt: return OpClass::kIntAlu;
    case Opcode::kMul: return OpClass::kIntMul;
    case Opcode::kDivi: return OpClass::kIntDiv;
    case Opcode::kFLi:
    case Opcode::kFMov:
    case Opcode::kFNeg: return OpClass::kFpMove;
    case Opcode::kFAdd:
    case Opcode::kFSub: return OpClass::kFpAdd;
    case Opcode::kFMul: return OpClass::kFpMul;
    case Opcode::kFMadd: return OpClass::kFpFma;
    case Opcode::kFDiv: return OpClass::kFpDiv;
    case Opcode::kFSqrt: return OpClass::kFpSqrt;
    case Opcode::kFCvtDS:
    case Opcode::kFCvtSD: return OpClass::kFpCvt;
    case Opcode::kLoad:
    case Opcode::kFLoad: return OpClass::kLoad;
    case Opcode::kStore:
    case Opcode::kFStore: return OpClass::kStore;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge: return OpClass::kBranch;
    case Opcode::kJump: return OpClass::kJump;
    case Opcode::kCall: return OpClass::kCall;
    case Opcode::kRet: return OpClass::kRet;
  }
  return OpClass::kNop;
}

constexpr bool is_conditional_branch(Opcode op) noexcept {
  return op_class(op) == OpClass::kBranch;
}

constexpr bool is_fp_arith(OpClass c) noexcept {
  switch (c) {
    case OpClass::kFpAdd:
    case OpClass::kFpMul:
    case OpClass::kFpFma:
    case OpClass::kFpDiv:
    case OpClass::kFpSqrt:
    case OpClass::kFpCvt: return true;
    default: return false;
  }
}

std::string_view opcode_name(Opcode op) noexcept;

/// One decoded instruction.  `target` is an absolute instruction index,
/// resolved by the assembler from labels.  `line` is source-line debug
/// info used by the vprof-style source correlation tool.
struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int64_t imm = 0;
  std::int32_t target = -1;
  std::uint32_t line = 0;
};

/// Virtual address of instruction index `idx`.
constexpr std::uint64_t instr_address(std::int64_t idx) noexcept {
  return kTextBase + static_cast<std::uint64_t>(idx) * kInstrBytes;
}

/// Inverse of instr_address.
constexpr std::int64_t address_to_index(std::uint64_t addr) noexcept {
  return static_cast<std::int64_t>((addr - kTextBase) / kInstrBytes);
}

/// Disassemble for diagnostics/tests.
std::string disassemble(const Instruction& ins);

}  // namespace papirepro::sim
