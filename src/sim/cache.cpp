#include "sim/cache.h"

#include <cassert>

namespace papirepro::sim {

Cache::Cache(const CacheConfig& config)
    : config_(config), sets_(config.num_sets()) {
  assert(sets_ > 0 && "cache too small for line size / associativity");
  assert((sets_ & (sets_ - 1)) == 0 && "set count must be a power of two");
  ways_.resize(sets_ * config_.associativity);
}

bool Cache::access(std::uint64_t addr) {
  ++stats_.accesses;
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  Way* base = &ways_[set * config_.associativity];

  Way* victim = base;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = ++stamp_;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }

  ++stats_.misses;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = ++stamp_;
  return false;
}

void Cache::pollute(std::uint32_t lines) {
  // Round-robin invalidation: cheap, deterministic, and spread across
  // sets the way kernel-entry cache pollution is in practice.
  for (std::uint32_t i = 0; i < lines && !ways_.empty(); ++i) {
    ways_[pollute_cursor_].valid = false;
    pollute_cursor_ = (pollute_cursor_ + config_.associativity) %
                      static_cast<std::uint32_t>(ways_.size());
    if (i % sets_ == sets_ - 1) ++pollute_cursor_;  // shift to next way
  }
}

}  // namespace papirepro::sim
