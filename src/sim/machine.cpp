#include "sim/machine.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <utility>

namespace papirepro::sim {

Machine::Machine(Program program, const MachineConfig& config)
    : program_(std::move(program)),
      config_(config),
      l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2),
      dtlb_(config.dtlb),
      itlb_(config.itlb),
      bp_(config.branch),
      rng_(config.seed),
      iregs_(kNumIntRegs, 0),
      fregs_(kNumFpRegs, 0.0),
      pc_(program.entry()) {}

void Machine::add_listener(EventListener* listener) {
  assert(listener != nullptr);
  const std::lock_guard<std::mutex> lock(listeners_mutex_);
  listeners_.push_back(listener);
}

void Machine::remove_listener(EventListener* listener) {
  const std::lock_guard<std::mutex> lock(listeners_mutex_);
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

void Machine::emit(SimEvent e, std::uint64_t weight,
                   const EventContext& ctx) {
  for (EventListener* l : listeners_) l->on_event(e, weight, ctx);
}

int Machine::add_cycle_timer(std::uint64_t period_cycles,
                             TimerCallback callback) {
  assert(period_cycles > 0);
  const int id = next_timer_id_++;
  timers_.push_back({id, period_cycles, cycles_ + period_cycles,
                     std::move(callback), false});
  next_timer_deadline_ = std::min(next_timer_deadline_,
                                  timers_.back().next_deadline);
  return id;
}

void Machine::cancel_timer(int id) {
  for (auto& t : timers_) {
    if (t.id == id) t.cancelled = true;
  }
}

void Machine::schedule_interrupt(std::uint32_t delay_instructions,
                                 std::uint64_t pc_requested,
                                 InterruptHandler handler) {
  pending_interrupts_.push_back(
      {retired_ + delay_instructions, pc_requested, std::move(handler)});
}

void Machine::charge_cycles(std::uint64_t n, std::uint32_t pollute_lines) {
  cycles_ += n;
  overhead_cycles_ += n;
  if (pollute_lines > 0) l1d_.pollute(pollute_lines);
  // Overhead cycles are real cycles: any active cycle counter sees them,
  // which is exactly how instrumentation overhead shows up on hardware.
  emit(SimEvent::kCycles, n,
       {.pc = pc_address(), .seq = retired_, .kernel = true});
}

void Machine::fire_timers() {
  if (cycles_ < next_timer_deadline_) return;
  std::uint64_t new_min = std::numeric_limits<std::uint64_t>::max();
  for (auto& t : timers_) {
    if (t.cancelled) continue;
    if (t.next_deadline <= cycles_) {
      // Reschedule from *now* before running the callback: callbacks may
      // charge more cycles than the period (e.g. a multiplex rotation
      // with a tiny slice), and firing at most once per check keeps that
      // a slow-but-progressing interrupt storm instead of a livelock.
      t.next_deadline = cycles_ + t.period;
      t.callback(*this);
    }
    if (!t.cancelled) new_min = std::min(new_min, t.next_deadline);
  }
  timers_.erase(std::remove_if(timers_.begin(), timers_.end(),
                               [](const Timer& t) { return t.cancelled; }),
                timers_.end());
  next_timer_deadline_ = new_min;
}

void Machine::deliver_interrupts(std::uint64_t pc_delivered) {
  if (pending_interrupts_.empty() || in_handler_) return;
  in_handler_ = true;
  for (std::size_t i = 0; i < pending_interrupts_.size();) {
    if (pending_interrupts_[i].deliver_at_retired <= retired_) {
      PendingInterrupt p = std::move(pending_interrupts_[i]);
      pending_interrupts_.erase(pending_interrupts_.begin() +
                                static_cast<std::ptrdiff_t>(i));
      p.handler(InterruptContext{.pc_requested = p.pc_requested,
                                 .pc_delivered = pc_delivered,
                                 .retired = retired_,
                                 .cycles = cycles_});
    } else {
      ++i;
    }
  }
  in_handler_ = false;
}

std::uint32_t Machine::data_access(std::uint64_t addr,
                                   const EventContext& ctx) {
  std::uint32_t extra = 0;
  if (!dtlb_.access(addr)) {
    extra += dtlb_.config().miss_latency;
    emit(SimEvent::kDTlbMiss, 1, ctx);
  }
  emit(SimEvent::kL1DAccess, 1, ctx);
  if (!l1d_.access(addr)) {
    emit(SimEvent::kL1DMiss, 1, ctx);
    emit(SimEvent::kL2Access, 1, ctx);
    if (!l2_.access(addr)) {
      emit(SimEvent::kL2Miss, 1, ctx);
      extra += l2_.config().miss_latency;
    } else {
      extra += l1d_.config().miss_latency;
    }
  } else {
    extra += l1d_.config().hit_latency;
  }
  return extra;
}

std::uint32_t Machine::fetch(const EventContext& ctx) {
  const std::uint64_t pc_addr = ctx.pc;
  std::uint32_t extra = 0;
  if (!itlb_.access(pc_addr)) {
    extra += itlb_.config().miss_latency;
    emit(SimEvent::kITlbMiss, 1, ctx);
  }
  emit(SimEvent::kL1IAccess, 1, ctx);
  if (!l1i_.access(pc_addr)) {
    emit(SimEvent::kL1IMiss, 1, ctx);
    emit(SimEvent::kL2Access, 1, ctx);
    if (!l2_.access(pc_addr)) {
      emit(SimEvent::kL2Miss, 1, ctx);
      extra += l2_.config().miss_latency;
    } else {
      extra += l1i_.config().miss_latency;
    }
  }
  return extra;
}

void Machine::step() {
  assert(!halted_);
  assert(pc_ >= 0 && static_cast<std::size_t>(pc_) < program_.size() &&
         "PC out of program bounds");

  const Instruction& ins = program_.code()[pc_];
  const std::uint64_t pc_addr = instr_address(pc_);
  EventContext ctx{.pc = pc_addr, .seq = retired_};

  std::uint32_t cost = 1 + fetch(ctx);
  std::int32_t next_pc = pc_ + 1;

  switch (ins.op) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      halted_ = true;
      break;
    case Opcode::kProbe:
      // Event accounting happens before the host handler runs so the
      // probe's own retirement is visible to the counters it reads.
      break;
    case Opcode::kLi:
      iregs_[ins.rd] = ins.imm;
      break;
    case Opcode::kMov:
      iregs_[ins.rd] = iregs_[ins.rs1];
      break;
    case Opcode::kAdd:
      iregs_[ins.rd] = iregs_[ins.rs1] + iregs_[ins.rs2];
      break;
    case Opcode::kAddi:
      iregs_[ins.rd] = iregs_[ins.rs1] + ins.imm;
      break;
    case Opcode::kSub:
      iregs_[ins.rd] = iregs_[ins.rs1] - iregs_[ins.rs2];
      break;
    case Opcode::kMul:
      // Wrap-around semantics (compute unsigned: signed overflow is UB).
      iregs_[ins.rd] = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(iregs_[ins.rs1]) *
          static_cast<std::uint64_t>(iregs_[ins.rs2]));
      cost += config_.int_mul_latency;
      break;
    case Opcode::kDivi:
      assert(ins.imm != 0);
      iregs_[ins.rd] = iregs_[ins.rs1] / ins.imm;
      cost += config_.int_div_latency;
      break;
    case Opcode::kAnd:
      iregs_[ins.rd] = iregs_[ins.rs1] & iregs_[ins.rs2];
      break;
    case Opcode::kOr:
      iregs_[ins.rd] = iregs_[ins.rs1] | iregs_[ins.rs2];
      break;
    case Opcode::kXor:
      iregs_[ins.rd] = iregs_[ins.rs1] ^ iregs_[ins.rs2];
      break;
    case Opcode::kShli:
      iregs_[ins.rd] = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(iregs_[ins.rs1]) << ins.imm);
      break;
    case Opcode::kShri:
      iregs_[ins.rd] = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(iregs_[ins.rs1]) >> ins.imm);
      break;
    case Opcode::kSlt:
      iregs_[ins.rd] = iregs_[ins.rs1] < iregs_[ins.rs2] ? 1 : 0;
      break;

    case Opcode::kFLi:
      fregs_[ins.rd] = std::bit_cast<double>(ins.imm);
      break;
    case Opcode::kFMov:
      fregs_[ins.rd] = fregs_[ins.rs1];
      break;
    case Opcode::kFNeg:
      fregs_[ins.rd] = -fregs_[ins.rs1];
      break;
    case Opcode::kFAdd:
      fregs_[ins.rd] = fregs_[ins.rs1] + fregs_[ins.rs2];
      cost += config_.fp_add_latency;
      break;
    case Opcode::kFSub:
      fregs_[ins.rd] = fregs_[ins.rs1] - fregs_[ins.rs2];
      cost += config_.fp_add_latency;
      break;
    case Opcode::kFMul:
      fregs_[ins.rd] = fregs_[ins.rs1] * fregs_[ins.rs2];
      cost += config_.fp_mul_latency;
      break;
    case Opcode::kFMadd:
      fregs_[ins.rd] += fregs_[ins.rs1] * fregs_[ins.rs2];
      cost += config_.fp_fma_latency;
      break;
    case Opcode::kFDiv:
      fregs_[ins.rd] = fregs_[ins.rs1] / fregs_[ins.rs2];
      cost += config_.fp_div_latency;
      break;
    case Opcode::kFSqrt:
      fregs_[ins.rd] = std::sqrt(fregs_[ins.rs1]);
      cost += config_.fp_sqrt_latency;
      break;
    case Opcode::kFCvtDS:
      fregs_[ins.rd] = static_cast<double>(static_cast<float>(fregs_[ins.rs1]));
      cost += config_.fp_cvt_latency;
      break;
    case Opcode::kFCvtSD:
      fregs_[ins.rd] = static_cast<double>(static_cast<float>(fregs_[ins.rs1]));
      cost += config_.fp_cvt_latency;
      break;

    case Opcode::kLoad: {
      const auto addr =
          static_cast<std::uint64_t>(iregs_[ins.rs1] + ins.imm);
      ctx.addr = addr;
      ctx.has_addr = true;
      cost += data_access(addr, ctx);
      iregs_[ins.rd] = memory_.read_i64(addr);
      break;
    }
    case Opcode::kStore: {
      const auto addr =
          static_cast<std::uint64_t>(iregs_[ins.rs1] + ins.imm);
      ctx.addr = addr;
      ctx.has_addr = true;
      cost += data_access(addr, ctx);
      memory_.write_i64(addr, iregs_[ins.rs2]);
      break;
    }
    case Opcode::kFLoad: {
      const auto addr =
          static_cast<std::uint64_t>(iregs_[ins.rs1] + ins.imm);
      ctx.addr = addr;
      ctx.has_addr = true;
      cost += data_access(addr, ctx);
      fregs_[ins.rd] = memory_.read_f64(addr);
      break;
    }
    case Opcode::kFStore: {
      const auto addr =
          static_cast<std::uint64_t>(iregs_[ins.rs1] + ins.imm);
      ctx.addr = addr;
      ctx.has_addr = true;
      cost += data_access(addr, ctx);
      memory_.write_f64(addr, fregs_[ins.rs2]);
      break;
    }

    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge: {
      bool taken = false;
      switch (ins.op) {
        case Opcode::kBeq: taken = iregs_[ins.rs1] == iregs_[ins.rs2]; break;
        case Opcode::kBne: taken = iregs_[ins.rs1] != iregs_[ins.rs2]; break;
        case Opcode::kBlt: taken = iregs_[ins.rs1] < iregs_[ins.rs2]; break;
        case Opcode::kBge: taken = iregs_[ins.rs1] >= iregs_[ins.rs2]; break;
        default: break;
      }
      emit(SimEvent::kBrIns, 1, ctx);
      if (taken) {
        emit(SimEvent::kBrTaken, 1, ctx);
        next_pc = ins.target;
      }
      if (!bp_.predict_and_train(pc_addr, taken)) {
        emit(SimEvent::kBrMispred, 1, ctx);
        cost += bp_.config().mispredict_penalty;
      }
      break;
    }
    case Opcode::kJump:
      next_pc = ins.target;
      break;
    case Opcode::kCall:
      call_stack_.push_back(pc_ + 1);
      next_pc = ins.target;
      break;
    case Opcode::kRet:
      if (call_stack_.empty()) {
        halted_ = true;  // returning from the outermost frame ends the run
      } else {
        next_pc = call_stack_.back();
        call_stack_.pop_back();
      }
      break;
  }

  // --- event accounting for the retired instruction ---
  cycles_ += cost;
  ++retired_;
  emit(SimEvent::kInstructions, 1, ctx);
  emit(SimEvent::kCycles, cost, ctx);
  if (cost > 1) emit(SimEvent::kStallCycles, cost - 1, ctx);

  switch (op_class(ins.op)) {
    case OpClass::kIntAlu:
    case OpClass::kIntMul:
    case OpClass::kIntDiv:
      emit(SimEvent::kIntIns, 1, ctx);
      break;
    case OpClass::kFpAdd: emit(SimEvent::kFpAdd, 1, ctx); break;
    case OpClass::kFpMul: emit(SimEvent::kFpMul, 1, ctx); break;
    case OpClass::kFpFma: emit(SimEvent::kFpFma, 1, ctx); break;
    case OpClass::kFpDiv: emit(SimEvent::kFpDiv, 1, ctx); break;
    case OpClass::kFpSqrt: emit(SimEvent::kFpSqrt, 1, ctx); break;
    case OpClass::kFpCvt: emit(SimEvent::kFpCvt, 1, ctx); break;
    case OpClass::kFpMove: emit(SimEvent::kFpMove, 1, ctx); break;
    case OpClass::kLoad: emit(SimEvent::kLoadIns, 1, ctx); break;
    case OpClass::kStore: emit(SimEvent::kStoreIns, 1, ctx); break;
    default: break;
  }

  pc_ = next_pc;

  // Probe handlers and interrupt/timer callbacks run after retirement,
  // like traps on real hardware.
  if (ins.op == Opcode::kProbe && probe_handler_) {
    probe_handler_(ins.imm, *this);
  }
  deliver_interrupts(pc_addr);
  fire_timers();
}

RunResult Machine::run(std::uint64_t max_instructions) {
  const std::uint64_t start_retired = retired_;
  const std::uint64_t start_cycles = cycles_;
  while (!halted_ && retired_ - start_retired < max_instructions) {
    step();
  }
  return RunResult{.halted = halted_,
                   .instructions = retired_ - start_retired,
                   .cycles = cycles_ - start_cycles};
}

}  // namespace papirepro::sim
