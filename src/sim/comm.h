// Multi-rank execution and message passing.  The paper's tool ecosystem
// exists for "parallel and threaded and/or message-passing programs"
// (TAU, Vampir correlating event rates with communication); this module
// provides the substrate for that scenario: N simulated machines
// ("ranks", distributed memory like MPI processes) interleaved in
// lockstep, exchanging messages through a mailbox layer driven by probe
// instructions.
//
// Communication ABI (probe-id based, so no ISA changes):
//   send to rank d:    probe(kSendBase + d)  with r24 = buffer address,
//                                                 r25 = word count
//   recv from rank s:  probe(kRecvBase + s)  with r24 = buffer address,
//                                                 r25 = max words
// Sends are non-blocking (message queued); receives busy-wait: if no
// message is pending, the probe handler rewinds the PC so the rank
// re-executes the recv probe — the wait burns real simulated cycles,
// which is exactly what a counter-based tool observes during
// communication phases.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "sim/kernels.h"
#include "sim/machine.h"

namespace papirepro::sim {

class CommWorld {
 public:
  static constexpr std::int64_t kSendBase = 2000;
  static constexpr std::int64_t kRecvBase = 3000;
  /// Register convention for the communication ABI.
  static constexpr int kAddrReg = 24;
  static constexpr int kCountReg = 25;

  /// Point-in-time snapshot of one rank's communication counters.
  struct RankStats {
    std::uint64_t sends = 0;
    std::uint64_t recvs = 0;
    std::uint64_t words_sent = 0;
    std::uint64_t words_recv = 0;
    /// Instructions spent re-executing a recv probe while waiting.
    std::uint64_t wait_retries = 0;
  };

  /// Installs the communication probe handlers on every rank (chaining
  /// any handler already present for non-comm probe ids).
  explicit CommWorld(std::vector<Machine*> ranks);

  /// Restores each rank's previous probe handler: the installed ones
  /// capture `this` and must not outlive the world.
  ~CommWorld();

  std::size_t num_ranks() const noexcept { return ranks_.size(); }
  /// Snapshot of `rank`'s counters, safe to call from any thread while
  /// the ranks run (a live-polling collector's view).  Each counter is
  /// internally a relaxed atomic written only by the owning rank's
  /// thread, so the snapshot is race-free; counters in one snapshot may
  /// straddle a probe (e.g. sends bumped, words_sent not yet), which a
  /// monitor tolerates by construction.
  RankStats stats(std::size_t rank) const {
    const AtomicRankStats& s = *stats_at(rank);
    RankStats out;
    out.sends = s.sends.load(std::memory_order_relaxed);
    out.recvs = s.recvs.load(std::memory_order_relaxed);
    out.words_sent = s.words_sent.load(std::memory_order_relaxed);
    out.words_recv = s.words_recv.load(std::memory_order_relaxed);
    out.wait_retries = s.wait_retries.load(std::memory_order_relaxed);
    return out;
  }
  Machine& rank_machine(std::size_t rank) const { return *ranks_.at(rank); }

  /// Runs all ranks round-robin in quanta of `quantum` instructions
  /// until every rank halts or `max_rounds` scheduler rounds elapse.
  /// Returns true if all ranks halted (false = budget exhausted, e.g. a
  /// deadlocked recv).
  bool run_lockstep(std::uint64_t quantum = 1'000,
                    std::uint64_t max_rounds = 1'000'000);

  /// Runs every rank on its own std::thread until it halts or retires
  /// `max_instructions_per_rank` (the deadlock budget — a starved recv
  /// busy-waits, retiring instructions, so it is bounded too).  The
  /// mailboxes are mutex-guarded; each Machine is still touched only by
  /// its own thread.  `thread_begin(rank)` / `thread_end(rank)` run on
  /// the rank's thread around execution — the place to bind the thread's
  /// machine to a substrate and start/stop its EventSet.  Returns true
  /// if every rank halted.
  bool run_threaded(
      std::uint64_t max_instructions_per_rank = 100'000'000,
      const std::function<void(std::size_t)>& thread_begin = {},
      const std::function<void(std::size_t)>& thread_end = {});

 private:
  /// Live counter storage.  Single-writer: each entry is bumped only by
  /// its own rank's thread (probe handlers run on the executing rank),
  /// so the writers use relaxed load+store — no RMW contention — while
  /// cross-thread pollers read via `stats()` snapshots.  Held in a
  /// unique_ptr array because atomics are not movable (vector resize
  /// would not compile) and the rank count is fixed at construction.
  struct AtomicRankStats {
    std::atomic<std::uint64_t> sends{0};
    std::atomic<std::uint64_t> recvs{0};
    std::atomic<std::uint64_t> words_sent{0};
    std::atomic<std::uint64_t> words_recv{0};
    std::atomic<std::uint64_t> wait_retries{0};
  };

  void on_probe(std::size_t rank, std::int64_t id, Machine& machine);

  const AtomicRankStats* stats_at(std::size_t rank) const {
    if (rank >= ranks_.size()) throw std::out_of_range("CommWorld::stats");
    return &stats_[rank];
  }

  std::vector<Machine*> ranks_;
  std::unique_ptr<AtomicRankStats[]> stats_;
  std::vector<Machine::ProbeHandler> chained_;
  /// Guards the mailboxes (the only cross-rank state).
  std::mutex comm_mutex_;
  /// mailboxes_[dest][src] = queue of pending messages.
  std::map<std::pair<std::size_t, std::size_t>,
           std::deque<std::vector<std::int64_t>>>
      mailboxes_;
};

/// Builds the program one rank of a ring-exchange benchmark runs:
/// `iters` rounds of (compute `work` FMAs on a local array; send a
/// `chunk_words` message to the right neighbour; receive from the left).
/// The classic compute/communicate alternation Vampir-style views show.
Workload make_ring_rank(std::size_t rank, std::size_t nranks,
                        std::int64_t iters, std::int64_t work,
                        std::int64_t chunk_words);

}  // namespace papirepro::sim
