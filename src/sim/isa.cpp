#include "sim/isa.h"

#include <sstream>

namespace papirepro::sim {

std::string_view opcode_name(Opcode op) noexcept {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
    case Opcode::kProbe: return "probe";
    case Opcode::kLi: return "li";
    case Opcode::kMov: return "mov";
    case Opcode::kAdd: return "add";
    case Opcode::kAddi: return "addi";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDivi: return "divi";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShli: return "shli";
    case Opcode::kShri: return "shri";
    case Opcode::kSlt: return "slt";
    case Opcode::kFLi: return "fli";
    case Opcode::kFMov: return "fmov";
    case Opcode::kFAdd: return "fadd";
    case Opcode::kFSub: return "fsub";
    case Opcode::kFMul: return "fmul";
    case Opcode::kFMadd: return "fmadd";
    case Opcode::kFDiv: return "fdiv";
    case Opcode::kFSqrt: return "fsqrt";
    case Opcode::kFCvtDS: return "fcvt.d.s";
    case Opcode::kFCvtSD: return "fcvt.s.d";
    case Opcode::kFNeg: return "fneg";
    case Opcode::kLoad: return "ld";
    case Opcode::kStore: return "st";
    case Opcode::kFLoad: return "fld";
    case Opcode::kFStore: return "fst";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kBlt: return "blt";
    case Opcode::kBge: return "bge";
    case Opcode::kJump: return "j";
    case Opcode::kCall: return "call";
    case Opcode::kRet: return "ret";
  }
  return "?";
}

std::string disassemble(const Instruction& ins) {
  std::ostringstream os;
  os << opcode_name(ins.op);
  switch (op_class(ins.op)) {
    case OpClass::kNop:
    case OpClass::kHalt:
    case OpClass::kRet:
      break;
    case OpClass::kProbe:
      os << " #" << ins.imm;
      break;
    case OpClass::kLoad:
      os << " r" << int(ins.rd) << ", " << ins.imm << "(r" << int(ins.rs1)
         << ")";
      break;
    case OpClass::kStore:
      os << " r" << int(ins.rs2) << ", " << ins.imm << "(r" << int(ins.rs1)
         << ")";
      break;
    case OpClass::kBranch:
      os << " r" << int(ins.rs1) << ", r" << int(ins.rs2) << ", @"
         << ins.target;
      break;
    case OpClass::kJump:
    case OpClass::kCall:
      os << " @" << ins.target;
      break;
    default:
      os << " r" << int(ins.rd) << ", r" << int(ins.rs1) << ", r"
         << int(ins.rs2) << ", imm=" << ins.imm;
      break;
  }
  return os.str();
}

}  // namespace papirepro::sim
