// Set-associative cache model with true-LRU replacement.  Used for the
// L1 instruction, L1 data, and unified L2 caches of the simulated
// machine.  Only hit/miss behaviour and latency matter for counter
// reproduction; coherence and write-back traffic are out of scope.
#pragma once

#include <cstdint>
#include <vector>

namespace papirepro::sim {

struct CacheConfig {
  std::uint32_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t associativity = 4;
  std::uint32_t hit_latency = 0;   ///< extra cycles on hit (beyond base)
  std::uint32_t miss_latency = 10; ///< extra cycles charged on miss

  std::uint32_t num_sets() const noexcept {
    return size_bytes / (line_bytes * associativity);
  }
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;

  double miss_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Accesses `addr`; returns true on hit.  On miss, the line is filled
  /// (allocate-on-miss for both reads and writes).
  bool access(std::uint64_t addr);

  /// Invalidates `lines` least-recently-used lines across the cache —
  /// models the cache pollution a counter-read system call causes in the
  /// monitored process (Section 4: "the interfaces cause cache pollution").
  void pollute(std::uint32_t lines);

  void reset_stats() noexcept { stats_ = {}; }
  const CacheStats& stats() const noexcept { return stats_; }
  const CacheConfig& config() const noexcept { return config_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< last-touch stamp; smaller = older
    bool valid = false;
  };

  std::uint64_t set_of(std::uint64_t addr) const noexcept {
    return (addr / config_.line_bytes) % sets_;
  }
  std::uint64_t tag_of(std::uint64_t addr) const noexcept {
    return addr / config_.line_bytes / sets_;
  }

  CacheConfig config_;
  std::uint64_t sets_;
  std::uint64_t stamp_ = 0;
  std::vector<Way> ways_;  ///< sets_ x associativity, row-major
  CacheStats stats_;
  std::uint32_t pollute_cursor_ = 0;
};

}  // namespace papirepro::sim
