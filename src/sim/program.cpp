#include "sim/program.h"

#include <bit>
#include <cassert>
#include <sstream>

namespace papirepro::sim {

const Function* Program::function_at(std::int64_t idx) const noexcept {
  for (const auto& f : functions_) {
    if (f.contains(idx)) return &f;
  }
  return nullptr;
}

const Function* Program::find_function(std::string_view name) const noexcept {
  for (const auto& f : functions_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::uint32_t Program::line_of(std::int64_t idx) const {
  return code_.at(idx).line;
}

std::string Program::dump() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    for (const auto& f : functions_) {
      if (f.entry == static_cast<std::int32_t>(i)) {
        os << f.name << ":\n";
      }
    }
    os << "  " << i << ": " << disassemble(code_[i]) << "\n";
  }
  return os.str();
}

Program Program::from_parts(std::vector<Instruction> code,
                            std::vector<Function> functions) {
  Program p;
  p.code_ = std::move(code);
  p.functions_ = std::move(functions);
  p.entry_ = 0;
  for (const auto& f : p.functions_) {
    if (f.name == "main") p.entry_ = f.entry;
  }
  return p;
}

std::uint8_t ProgramBuilder::u8(int r) {
  assert(r >= 0 && r < kNumIntRegs);
  return static_cast<std::uint8_t>(r);
}

void ProgramBuilder::emit(Instruction ins) {
  ins.line = line_;
  code_.push_back(ins);
}

void ProgramBuilder::bind(Label label) {
  assert(label >= 0 &&
         static_cast<std::size_t>(label) < label_targets_.size());
  assert(label_targets_[label] == -1 && "label bound twice");
  label_targets_[label] = next_index();
}

void ProgramBuilder::begin_function(std::string name) {
  assert(!in_function_ && "nested functions are not supported");
  in_function_ = true;
  functions_.push_back({std::move(name), next_index(), next_index()});
}

void ProgramBuilder::end_function() {
  assert(in_function_);
  in_function_ = false;
  functions_.back().end = next_index();
}

void ProgramBuilder::fli(int fd, double value) {
  emit({.op = Opcode::kFLi, .rd = u8(fd),
        .imm = std::bit_cast<std::int64_t>(value)});
}

void ProgramBuilder::branch(Opcode op, int rs1, int rs2, Label l) {
  fixups_.emplace_back(next_index(), l);
  emit({.op = op, .rs1 = u8(rs1), .rs2 = u8(rs2), .target = -1});
}

void ProgramBuilder::call(std::string_view function) {
  call_fixups_.emplace_back(next_index(), std::string(function));
  emit({.op = Opcode::kCall, .target = -1});
}

Program ProgramBuilder::build() && {
  assert(!in_function_ && "end_function() missing");
  for (auto [idx, label] : fixups_) {
    const std::int32_t target = label_targets_.at(label);
    assert(target >= 0 && "unbound label");
    code_[idx].target = target;
  }
  for (auto& [idx, name] : call_fixups_) {
    std::int32_t target = -1;
    for (const auto& f : functions_) {
      if (f.name == name) {
        target = f.entry;
        break;
      }
    }
    assert(target >= 0 && "call to unknown function");
    code_[idx].target = target;
  }

  Program p;
  p.code_ = std::move(code_);
  p.functions_ = std::move(functions_);
  p.entry_ = 0;
  for (const auto& f : p.functions_) {
    if (f.name == "main") p.entry_ = f.entry;
  }
  return p;
}

}  // namespace papirepro::sim
