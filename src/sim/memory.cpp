#include "sim/memory.h"

#include <cassert>

namespace papirepro::sim {

Memory::Page& Memory::page(std::uint64_t page_index) {
  auto& slot = pages_[page_index];
  if (!slot) slot = std::make_unique<Page>();
  return *slot;
}

const Memory::Page* Memory::find_page(std::uint64_t page_index) const {
  auto it = pages_.find(page_index);
  return it == pages_.end() ? nullptr : it->second.get();
}

std::int64_t Memory::read_i64(std::uint64_t addr) const {
  assert((addr & 7) == 0 && "unaligned 8-byte access");
  const Page* p = find_page(page_of(addr));
  if (p == nullptr) return 0;  // untouched memory reads as zero
  return p->words[(addr & kPageMask) >> 3];
}

void Memory::write_i64(std::uint64_t addr, std::int64_t value) {
  assert((addr & 7) == 0 && "unaligned 8-byte access");
  page(page_of(addr)).words[(addr & kPageMask) >> 3] = value;
}

}  // namespace papirepro::sim
