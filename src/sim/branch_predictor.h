// Gshare-style branch direction predictor: a table of 2-bit saturating
// counters indexed by PC xor global history.  Drives PAPI_BR_MSP /
// PAPI_BR_PRC and the mispredict-penalty cycles of the machine model.
#pragma once

#include <cstdint>
#include <vector>

namespace papirepro::sim {

struct BranchPredictorConfig {
  std::uint32_t table_bits = 12;       ///< 4096-entry pattern table
  std::uint32_t history_bits = 8;
  std::uint32_t mispredict_penalty = 12;
};

struct BranchStats {
  std::uint64_t conditional = 0;
  std::uint64_t taken = 0;
  std::uint64_t mispredicted = 0;
};

class BranchPredictor {
 public:
  explicit BranchPredictor(const BranchPredictorConfig& config)
      : config_(config),
        table_(std::size_t{1} << config.table_bits, 1 /* weakly not-taken */),
        history_mask_((1u << config.history_bits) - 1) {}

  /// Predicts and trains on a conditional branch at `pc` whose actual
  /// outcome is `taken`.  Returns true if the prediction was correct.
  bool predict_and_train(std::uint64_t pc, bool taken);

  const BranchStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }
  const BranchPredictorConfig& config() const noexcept { return config_; }

 private:
  std::size_t index(std::uint64_t pc) const noexcept {
    return static_cast<std::size_t>((pc >> 2) ^ history_) &
           (table_.size() - 1);
  }

  BranchPredictorConfig config_;
  std::vector<std::uint8_t> table_;
  std::uint32_t history_ = 0;
  std::uint32_t history_mask_;
  BranchStats stats_;
};

}  // namespace papirepro::sim
