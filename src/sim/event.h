// Architectural event signals raised by the simulated machine, and the
// listener interface PMU models subscribe to.  These signals play the
// role of the raw hardware event lines; each PMU platform defines its own
// *native events* as (signal, multiplier) combinations with
// platform-specific quirks (e.g. sim-power3's FP-instruction event
// includes the convert/rounding signals — the POWER3 discrepancy from
// Section 4 of the paper).
#pragma once

#include <cstdint>
#include <string_view>

namespace papirepro::sim {

enum class SimEvent : std::uint8_t {
  kCycles = 0,       ///< weight = cycles elapsed
  kInstructions,     ///< every retired instruction
  kIntIns,           ///< integer ALU/mul/div instructions
  kFpAdd,            ///< FP add/sub
  kFpMul,            ///< FP multiply
  kFpFma,            ///< fused multiply-add (1 instruction, 2 FLOPs)
  kFpDiv,            ///< FP divide
  kFpSqrt,           ///< FP square root
  kFpCvt,            ///< FP precision convert ("rounding instruction")
  kFpMove,           ///< FP register moves / immediates / negate
  kLoadIns,          ///< load instructions
  kStoreIns,         ///< store instructions
  kL1DAccess,
  kL1DMiss,
  kL1IAccess,
  kL1IMiss,
  kL2Access,
  kL2Miss,
  kDTlbMiss,
  kITlbMiss,
  kBrIns,            ///< conditional branches
  kBrTaken,
  kBrMispred,
  kStallCycles,      ///< cycles beyond 1-per-instruction (latency, misses)
  kCount,            // sentinel
};

inline constexpr std::size_t kNumSimEvents =
    static_cast<std::size_t>(SimEvent::kCount);

std::string_view sim_event_name(SimEvent e) noexcept;

/// Context delivered with every event: the PC of the causing instruction
/// (always precise at this layer — imprecision is introduced by the
/// *interrupt delivery* skid, not by the signals) and, for memory events,
/// the effective data address.  Event Address Registers on the sim-ia64
/// platform latch exactly these fields.
struct EventContext {
  std::uint64_t pc = 0;
  std::uint64_t addr = 0;
  /// Retirement index of the instruction this event belongs to; lets
  /// sampling engines group the signals of one instruction together.
  std::uint64_t seq = 0;
  bool has_addr = false;
  /// True for cycles spent in measurement-infrastructure context
  /// (counter-read system calls, overflow handlers) rather than user
  /// code — the distinction behind PAPI's counting domains.
  bool kernel = false;
};

class EventListener {
 public:
  virtual ~EventListener() = default;
  virtual void on_event(SimEvent event, std::uint64_t weight,
                        const EventContext& ctx) = 0;
};

}  // namespace papirepro::sim
