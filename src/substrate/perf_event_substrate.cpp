#include "substrate/perf_event_substrate.h"

#include <cerrno>
#include <cstring>
#include <ctime>

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace papirepro::papi {
namespace {

/// Native event codes pack (perf type << 16) | perf config.
constexpr pmu::NativeEventCode pack(std::uint32_t type,
                                    std::uint32_t config) {
  return (type << 16) | config;
}
constexpr std::uint32_t type_of(pmu::NativeEventCode code) {
  return code >> 16;
}
constexpr std::uint32_t config_of(pmu::NativeEventCode code) {
  return code & 0xffff;
}

struct PerfEventDef {
  pmu::NativeEventCode code;
  const char* name;
};

constexpr PerfEventDef kPerfEvents[] = {
    {pack(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES),
     "PERF_COUNT_HW_CPU_CYCLES"},
    {pack(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS),
     "PERF_COUNT_HW_INSTRUCTIONS"},
    {pack(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES),
     "PERF_COUNT_HW_CACHE_REFERENCES"},
    {pack(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES),
     "PERF_COUNT_HW_CACHE_MISSES"},
    {pack(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS),
     "PERF_COUNT_HW_BRANCH_INSTRUCTIONS"},
    {pack(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES),
     "PERF_COUNT_HW_BRANCH_MISSES"},
    {pack(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK),
     "PERF_COUNT_SW_TASK_CLOCK"},
    {pack(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS),
     "PERF_COUNT_SW_PAGE_FAULTS"},
    {pack(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES),
     "PERF_COUNT_SW_CONTEXT_SWITCHES"},
    {pack(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CPU_MIGRATIONS),
     "PERF_COUNT_SW_CPU_MIGRATIONS"},
    {pack(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS_MIN),
     "PERF_COUNT_SW_PAGE_FAULTS_MIN"},
    {pack(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS_MAJ),
     "PERF_COUNT_SW_PAGE_FAULTS_MAJ"},
};

int open_event(pmu::NativeEventCode code, bool disabled) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type_of(code);
  attr.size = sizeof(attr);
  attr.config = config_of(code);
  attr.disabled = disabled ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  // pid=0, cpu=-1: count the calling thread on any CPU — the context is
  // inherently bound to the thread that programs it.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

std::uint64_t clock_ns(clockid_t id) {
  timespec ts{};
  clock_gettime(id, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

// ---------------------------------------------------------------------------
// PerfCounterContext
// ---------------------------------------------------------------------------

PerfCounterContext::~PerfCounterContext() { close_all(); }

void PerfCounterContext::close_all() {
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
  fds_.clear();
}

Status PerfCounterContext::program(
    std::span<const pmu::NativeEventCode> events,
    std::span<const std::uint32_t> assignment) {
  if (!substrate_.available()) return Error::kSystem;
  if (running_) return Error::kIsRunning;
  if (events.size() != assignment.size()) return Error::kInvalid;
  if (events.size() > PerfEventSubstrate::kMaxEvents) {
    return Error::kConflict;
  }

  close_all();
  fds_.reserve(events.size());
  for (const auto code : events) {
    const int fd = open_event(code, /*disabled=*/true);
    if (fd < 0) {
      const Status status = errno == EACCES || errno == EPERM
                                ? Error::kPermission
                                : Error::kNoCounters;
      close_all();
      return status;
    }
    fds_.push_back(fd);
  }
  return Error::kOk;
}

Status PerfCounterContext::start() {
  if (!substrate_.available()) return Error::kSystem;
  if (running_) return Error::kIsRunning;
  if (fds_.empty()) return Error::kInvalid;
  for (int fd : fds_) {
    if (ioctl(fd, PERF_EVENT_IOC_RESET, 0) != 0 ||
        ioctl(fd, PERF_EVENT_IOC_ENABLE, 0) != 0) {
      return Error::kSystem;
    }
  }
  running_ = true;
  return Error::kOk;
}

Status PerfCounterContext::stop() {
  if (!running_) return Error::kNotRunning;
  for (int fd : fds_) {
    (void)ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  }
  running_ = false;
  return Error::kOk;
}

Status PerfCounterContext::read(std::span<std::uint64_t> out) {
  if (fds_.empty()) return Error::kInvalid;
  if (out.size() < fds_.size()) return Error::kInvalid;
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    struct {
      std::uint64_t value;
      std::uint64_t time_enabled;
      std::uint64_t time_running;
    } data{};
    if (::read(fds_[i], &data, sizeof(data)) != sizeof(data)) {
      return Error::kSystem;
    }
    // Kernel-side multiplexing: scale by the duty cycle, exactly the
    // estimation core/multiplex performs for the simulated substrates.
    std::uint64_t value = data.value;
    if (data.time_running > 0 && data.time_running < data.time_enabled) {
      value = static_cast<std::uint64_t>(
          static_cast<double>(value) *
          static_cast<double>(data.time_enabled) /
          static_cast<double>(data.time_running));
    }
    out[i] = value;
  }
  return Error::kOk;
}

Status PerfCounterContext::reset_counts() {
  for (int fd : fds_) {
    if (ioctl(fd, PERF_EVENT_IOC_RESET, 0) != 0) return Error::kSystem;
  }
  return Error::kOk;
}

std::uint64_t PerfCounterContext::cycles() const {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return clock_ns(CLOCK_MONOTONIC);
#endif
}

// ---------------------------------------------------------------------------
// PerfEventSubstrate
// ---------------------------------------------------------------------------

PerfEventSubstrate::PerfEventSubstrate()
    : epoch_ns_(clock_ns(CLOCK_MONOTONIC)) {
  // Probe: software events tell us perf exists at all; a hardware event
  // tells us whether paranoid/capabilities permit real counters.
  int fd = open_event(pack(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK),
                      /*disabled=*/true);
  if (fd >= 0) {
    available_ = true;
    close(fd);
  }
  fd = open_event(pack(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES),
                  /*disabled=*/true);
  if (fd >= 0) {
    hw_available_ = true;
    close(fd);
  }
}

Result<std::unique_ptr<CounterContext>> PerfEventSubstrate::create_context() {
  return std::unique_ptr<CounterContext>(new PerfCounterContext(*this));
}

Result<PresetMapping> PerfEventSubstrate::preset_mapping(
    Preset preset) const {
  auto single = [&](std::uint32_t config) -> Result<PresetMapping> {
    PresetMapping m;
    m.preset = preset;
    m.terms = {{pack(PERF_TYPE_HARDWARE, config), 1}};
    return m;
  };
  switch (preset) {
    case Preset::kTotCyc: return single(PERF_COUNT_HW_CPU_CYCLES);
    case Preset::kTotIns: return single(PERF_COUNT_HW_INSTRUCTIONS);
    case Preset::kL2Tca: return single(PERF_COUNT_HW_CACHE_REFERENCES);
    case Preset::kL2Tcm: return single(PERF_COUNT_HW_CACHE_MISSES);
    case Preset::kBrIns:
      return single(PERF_COUNT_HW_BRANCH_INSTRUCTIONS);
    case Preset::kBrMsp: return single(PERF_COUNT_HW_BRANCH_MISSES);
    case Preset::kBrPrc: {
      PresetMapping m;
      m.preset = preset;
      m.terms = {
          {pack(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS), 1},
          {pack(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES), -1}};
      return m;
    }
    default:
      return Error::kNoEvent;
  }
}

Result<pmu::NativeEventCode> PerfEventSubstrate::native_by_name(
    std::string_view event_name) const {
  for (const PerfEventDef& def : kPerfEvents) {
    if (event_name == def.name) return def.code;
  }
  return Error::kNoEvent;
}

Result<std::string> PerfEventSubstrate::native_name(
    pmu::NativeEventCode code) const {
  for (const PerfEventDef& def : kPerfEvents) {
    if (code == def.code) return std::string(def.name);
  }
  return Error::kNoEvent;
}

Result<AllocationInstance> PerfEventSubstrate::translate_allocation(
    std::span<const pmu::NativeEventCode> events,
    std::span<const int> priorities) const {
  // The kernel schedules events onto physical counters itself (and
  // multiplexes on conflict), so the bipartite instance is fully
  // permissive.
  AllocationInstance inst;
  inst.num_counters = kMaxEvents;
  inst.priority.assign(priorities.begin(), priorities.end());
  for (const auto code : events) {
    if (!native_name(code).ok()) return Error::kNoEvent;
    inst.allowed.push_back((1u << kMaxEvents) - 1);
  }
  return inst;
}

std::uint64_t PerfEventSubstrate::real_usec() const {
  return (clock_ns(CLOCK_MONOTONIC) - epoch_ns_) / 1000;
}

std::uint64_t PerfEventSubstrate::real_cycles() const {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return clock_ns(CLOCK_MONOTONIC);
#endif
}

std::uint64_t PerfEventSubstrate::virt_usec() const {
  return clock_ns(CLOCK_THREAD_CPUTIME_ID) / 1000;
}

Result<MemoryInfo> PerfEventSubstrate::memory_info() const {
  MemoryInfo info;
  info.page_size_bytes = static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    info.process_peak_bytes =
        static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
    info.process_resident_bytes = info.process_peak_bytes;
    info.page_faults =
        static_cast<std::uint64_t>(usage.ru_minflt + usage.ru_majflt);
  }
  return info;
}

}  // namespace papirepro::papi
