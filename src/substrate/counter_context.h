// A CounterContext is one independently-programmable view of the
// hardware counters: the stateful half of what used to be the Substrate
// interface (program/start/stop/read/reset/overflow/domain), split out so
// that concurrent threads — or concurrent simulated ranks — can each
// drive their own counters without sharing mutable state.  The Substrate
// is the *factory* for contexts plus the stateless services (event
// namespace, allocation translation, process-global timers); a context is
// the per-thread programming state.
//
// This mirrors what thread support required of real PAPI: the kernel (or
// the substrate) virtualizes one counter file per thread, and the
// portable layer keys its running-EventSet rule by thread instead of by
// process.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "common/status.h"
#include "pmu/native_event.h"

namespace papirepro::papi {

/// Overflow notification from the substrate: event index within the
/// programmed list, the PC a handler would observe (already skidded on
/// out-of-order platforms), and the precise PC where hardware assists
/// (EAR / ProfileMe) provide one.
struct SubstrateOverflow {
  std::uint32_t event_index = 0;
  std::uint64_t pc_observed = 0;
  std::uint64_t pc_precise = 0;
  bool has_precise = false;
  std::uint64_t addr = 0;
};

/// How much work the overflow callback does in the delivery context.
/// kSynchronous is the classic PAPI shape: the full handler runs inside
/// the (simulated) interrupt, so the substrate charges the counting
/// thread the whole handler cost.  kDeferred promises the callback only
/// captures the sample (an O(1), no-allocation ring enqueue) and the
/// heavy dispatch happens on another thread — substrates that model
/// delivery cost charge the cheaper enqueue-only price.
enum class OverflowDeliveryMode : std::uint8_t {
  kSynchronous,
  kDeferred,
};

class CounterContext {
 public:
  using OverflowCallback = std::function<void(const SubstrateOverflow&)>;
  using TimerCallback = std::function<void()>;

  virtual ~CounterContext() = default;

  // --- counter control ---
  virtual Status program(std::span<const pmu::NativeEventCode> events,
                         std::span<const std::uint32_t> assignment) = 0;
  virtual Status start() = 0;
  virtual Status stop() = 0;
  /// Values in programmed-event order.
  virtual Status read(std::span<std::uint64_t> out) = 0;
  virtual Status reset_counts() = 0;
  virtual Status set_overflow(
      std::uint32_t event_index, std::uint64_t threshold,
      OverflowCallback callback,
      OverflowDeliveryMode mode = OverflowDeliveryMode::kSynchronous) = 0;
  virtual Status clear_overflow(std::uint32_t event_index) = 0;
  virtual bool running() const noexcept = 0;

  /// Counting domain applied to every programmed counter (PAPI
  /// PAPI_set_domain).  Takes effect at the next program().
  virtual Status set_domain(std::uint32_t /*domain_mask*/) {
    return Error::kNoSupport;
  }

  // --- per-context clock and timer service ---
  /// Cycle clock of whatever this context measures (the bound simulated
  /// machine, or the host TSC).  The multiplexing time-slicer runs on
  /// this clock so each context rotates on its own rank's time.
  virtual std::uint64_t cycles() const = 0;
  /// Cycles this context's clock has charged to measurement
  /// infrastructure (counter access costs, overflow delivery, sampling
  /// engines) — the numerator of the paper's "up to 30 % direct vs
  /// 1-2 % sampling" overhead ratio.  0 where the substrate cannot
  /// attribute its own cost (the host).
  virtual std::uint64_t overhead_cycles() const noexcept { return 0; }
  virtual Result<int> add_timer(std::uint64_t /*period_cycles*/,
                                TimerCallback /*callback*/) {
    return Error::kNoSupport;
  }
  virtual Status cancel_timer(int /*id*/) { return Error::kNoSupport; }
};

}  // namespace papirepro::papi
