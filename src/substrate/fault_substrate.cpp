#include "substrate/fault_substrate.h"

#include <utility>

#include "core/telemetry.h"

namespace papirepro::papi {

namespace {

/// Per-site stream seeds: mix the site index into the plan seed so every
/// site draws from an independent deterministic sequence.
std::uint64_t site_seed(std::uint64_t plan_seed, std::size_t site) {
  SplitMix64 mixer(plan_seed + 0x9e3779b97f4a7c15ULL * (site + 1));
  return mixer.next();
}

double next_unit(SplitMix64& rng) {
  return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

}  // namespace

// ---------------------------------------------------------------------------
// FaultInjectingContext
// ---------------------------------------------------------------------------

/// Decorates one CounterContext from the inner substrate.  All fault
/// state (scripts, streams, width) lives on the owning substrate so a
/// plan scripts the *process-wide* call sequence, matching how a flaky
/// kernel misbehaves regardless of which thread's context hits it.
class FaultInjectingContext final : public CounterContext {
 public:
  FaultInjectingContext(FaultInjectingSubstrate& owner,
                        std::unique_ptr<CounterContext> inner)
      : owner_(owner), inner_(std::move(inner)) {}

  // The hot counter-control paths check the master switch once and
  // tail-call the inner context when injection is off, keeping the
  // disabled decorator to one relaxed load per call (bench_fault_overhead
  // holds this under 5% on the read/start paths).
  Status program(std::span<const pmu::NativeEventCode> events,
                 std::span<const std::uint32_t> assignment) override {
    if (!owner_.enabled()) return inner_->program(events, assignment);
    if (const Error e = owner_.consult(FaultSite::kProgram);
        e != Error::kOk) {
      return e;
    }
    return inner_->program(events, assignment);
  }

  Status start() override {
    if (!owner_.enabled()) return inner_->start();
    if (const Error e = owner_.consult(FaultSite::kStart);
        e != Error::kOk) {
      return e;
    }
    return inner_->start();
  }

  Status stop() override { return inner_->stop(); }

  Status read(std::span<std::uint64_t> out) override {
    if (!owner_.enabled()) return inner_->read(out);
    if (const Error e = owner_.consult(FaultSite::kRead);
        e != Error::kOk) {
      return e;
    }
    PAPIREPRO_RETURN_IF_ERROR(inner_->read(out));
    if (owner_.plan().narrow_counters()) {
      const std::uint64_t mask = owner_.plan().counter_mask();
      for (std::uint64_t& v : out) v &= mask;
    }
    owner_.apply_read_rewind(out);
    return Error::kOk;
  }

  Status reset_counts() override { return inner_->reset_counts(); }

  Status set_overflow(std::uint32_t event_index, std::uint64_t threshold,
                      OverflowCallback callback,
                      OverflowDeliveryMode mode) override {
    return inner_->set_overflow(event_index, threshold,
                                std::move(callback), mode);
  }
  Status clear_overflow(std::uint32_t event_index) override {
    return inner_->clear_overflow(event_index);
  }
  Status set_domain(std::uint32_t domain_mask) override {
    return inner_->set_domain(domain_mask);
  }
  bool running() const noexcept override { return inner_->running(); }

  std::uint64_t cycles() const override { return inner_->cycles(); }
  std::uint64_t overhead_cycles() const noexcept override {
    return inner_->overhead_cycles();
  }

  Result<int> add_timer(std::uint64_t period_cycles,
                        TimerCallback callback) override {
    return owner_.decorate_timer(
        period_cycles, std::move(callback),
        [this](std::uint64_t period, TimerCallback cb) {
          return inner_->add_timer(period, std::move(cb));
        });
  }
  Status cancel_timer(int id) override { return inner_->cancel_timer(id); }

 private:
  FaultInjectingSubstrate& owner_;
  std::unique_ptr<CounterContext> inner_;
};

// ---------------------------------------------------------------------------
// FaultInjectingSubstrate
// ---------------------------------------------------------------------------

FaultInjectingSubstrate::FaultInjectingSubstrate(
    std::unique_ptr<Substrate> inner, const FaultPlan& plan)
    : inner_(std::move(inner)) {
  decorated_name_ = "fault+" + std::string(inner_->name());
  set_plan(plan);
}

FaultInjectingSubstrate::~FaultInjectingSubstrate() = default;

void FaultInjectingSubstrate::set_plan(const FaultPlan& plan) {
  const std::lock_guard<std::mutex> lock(mutex_);
  plan_ = plan;
  for (std::size_t s = 0; s < kNumFaultSites; ++s) {
    sites_[s].rng = SplitMix64(site_seed(plan_.seed, s));
    sites_[s].remaining_scripted_failures = plan_.scripts[s].fail_times;
    sites_[s].calls = 0;
    sites_[s].injected = 0;
  }
  timer_rng_ = SplitMix64(site_seed(plan_.seed, kNumFaultSites));
  successful_reads_ = 0;
}

std::uint64_t FaultInjectingSubstrate::injected_count(
    FaultSite site) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sites_[static_cast<std::size_t>(site)].injected;
}

std::uint64_t FaultInjectingSubstrate::call_count(FaultSite site) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sites_[static_cast<std::size_t>(site)].calls;
}

std::string_view FaultInjectingSubstrate::name() const noexcept {
  return decorated_name_;
}

std::uint32_t FaultInjectingSubstrate::counter_width_bits() const noexcept {
  if (enabled() && plan_.narrow_counters()) {
    return plan_.counter_width_bits;
  }
  return inner_->counter_width_bits();
}

void FaultInjectingSubstrate::bind_telemetry(
    TelemetryRegistry* telemetry) {
  telemetry_.store(telemetry, std::memory_order_relaxed);
  inner_->bind_telemetry(telemetry);
}

Error FaultInjectingSubstrate::consult(FaultSite site) {
  if (!enabled()) return Error::kOk;
  Error injected = Error::kOk;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const FaultScript& script = plan_.at(site);
    SiteState& state = sites_[static_cast<std::size_t>(site)];
    ++state.calls;
    if (!script.armed()) return Error::kOk;
    if (state.remaining_scripted_failures > 0 &&
        state.calls > static_cast<std::uint64_t>(script.fail_after)) {
      // The deferred hard-down window: the first fail_after calls pass
      // untouched, then fail_times consecutive calls fail, then the
      // site recovers (calls is already incremented, so fail_after == 0
      // keeps the legacy fail-from-the-first-call behaviour).
      --state.remaining_scripted_failures;
      ++state.injected;
      injected = script.error;
    } else if (state.remaining_scripted_failures == 0 &&
               script.probability > 0.0 &&
               next_unit(state.rng) < script.probability) {
      ++state.injected;
      injected = script.error;
    }
  }
  if (injected != Error::kOk) {
    if (TelemetryRegistry* telemetry =
            telemetry_.load(std::memory_order_relaxed)) {
      telemetry->bump(TelemetryCounter::kFaultsInjected);
    }
  }
  return injected;
}

void FaultInjectingSubstrate::apply_read_rewind(
    std::span<std::uint64_t> out) {
  // Unlocked disabled-window check: rewind fields are only written by
  // set_plan, same benign pattern as the narrow-counter mask in read().
  if (plan_.read_rewind_times == 0 || plan_.read_rewind_delta == 0) {
    return;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t n = successful_reads_++;
  if (n < plan_.read_rewind_after ||
      n >= static_cast<std::uint64_t>(plan_.read_rewind_after) +
               plan_.read_rewind_times) {
    return;
  }
  for (std::uint64_t& v : out) {
    v = v > plan_.read_rewind_delta ? v - plan_.read_rewind_delta : 0;
  }
}

bool FaultInjectingSubstrate::drop_timer_fire() {
  if (!enabled() || plan_.timer_drop_probability <= 0.0) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_unit(timer_rng_) < plan_.timer_drop_probability;
}

Result<int> FaultInjectingSubstrate::decorate_timer(
    std::uint64_t period_cycles, TimerCallback callback,
    const std::function<Result<int>(std::uint64_t, TimerCallback)>& arm) {
  if (const Error e = consult(FaultSite::kAddTimer); e != Error::kOk) {
    return e;
  }
  std::uint64_t period = period_cycles;
  if (enabled()) period += plan_.timer_extra_delay_cycles;
  return arm(period, [this, cb = std::move(callback)] {
    if (drop_timer_fire()) return;  // the slice timer misfired
    cb();
  });
}

Result<std::unique_ptr<CounterContext>>
FaultInjectingSubstrate::create_context() {
  if (const Error e = consult(FaultSite::kCreateContext);
      e != Error::kOk) {
    return e;
  }
  auto inner = inner_->create_context();
  if (!inner.ok()) return inner.error();
  return std::unique_ptr<CounterContext>(
      new FaultInjectingContext(*this, std::move(inner).value()));
}

Result<int> FaultInjectingSubstrate::add_timer(std::uint64_t period_cycles,
                                               TimerCallback callback) {
  return decorate_timer(
      period_cycles, std::move(callback),
      [this](std::uint64_t period, TimerCallback cb) {
        return inner_->add_timer(period, std::move(cb));
      });
}

}  // namespace papirepro::papi
