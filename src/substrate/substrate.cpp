#include "substrate/substrate.h"

namespace papirepro::papi {

Result<std::vector<std::uint32_t>> Substrate::allocate(
    std::span<const pmu::NativeEventCode> events,
    std::span<const int> priorities) const {
  auto instance = translate_allocation(events, priorities);
  if (!instance.ok()) return instance.error();

  const AllocationResult solved = priorities.empty()
                                      ? solve_max_cardinality(instance.value())
                                      : solve_max_weight(instance.value());
  if (!solved.complete()) return Error::kConflict;

  std::vector<std::uint32_t> assignment(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    assignment[i] = static_cast<std::uint32_t>(solved.assignment[i]);
  }
  return assignment;
}

Result<int> Substrate::add_timer(std::uint64_t /*period_cycles*/,
                                 TimerCallback /*callback*/) {
  return Error::kNoSupport;
}

Status Substrate::cancel_timer(int /*id*/) { return Error::kNoSupport; }

}  // namespace papirepro::papi
