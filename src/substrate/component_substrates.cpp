#include "substrate/component_substrates.h"

#include "sim/memory.h"

namespace papirepro::papi {

// --- DeltaCounterContext ------------------------------------------------

Status DeltaCounterContext::program(
    std::span<const pmu::NativeEventCode> events,
    std::span<const std::uint32_t> assignment) {
  if (running_) return Error::kIsRunning;
  if (events.size() != assignment.size()) return Error::kInvalid;
  if (events.size() > num_counters_) return Error::kNoCounters;
  for (const pmu::NativeEventCode code : events) {
    if (!valid_code(code)) return Error::kNoEvent;
  }
  events_.assign(events.begin(), events.end());
  base_.assign(events.size(), 0);
  frozen_.assign(events.size(), 0);
  return {};
}

Status DeltaCounterContext::start() {
  if (running_) return Error::kIsRunning;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    base_[i] = sample(events_[i]);
  }
  running_ = true;
  return {};
}

Status DeltaCounterContext::stop() {
  if (!running_) return Error::kNotRunning;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    frozen_[i] = sample(events_[i]) - base_[i];
  }
  running_ = false;
  return {};
}

Status DeltaCounterContext::read(std::span<std::uint64_t> out) {
  if (out.size() < events_.size()) return Error::kInvalid;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out[i] = running_ ? sample(events_[i]) - base_[i] : frozen_[i];
  }
  return {};
}

Status DeltaCounterContext::reset_counts() {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (running_) base_[i] = sample(events_[i]);
    frozen_[i] = 0;
  }
  return {};
}

Status DeltaCounterContext::set_overflow(std::uint32_t /*event_index*/,
                                         std::uint64_t /*threshold*/,
                                         OverflowCallback /*callback*/,
                                         OverflowDeliveryMode /*mode*/) {
  return Error::kNoSupport;  // no interrupt line on these units
}

Status DeltaCounterContext::clear_overflow(std::uint32_t /*event_index*/) {
  return {};
}

Status DeltaCounterContext::set_domain(std::uint32_t domain_mask) {
  // Off-core units count regardless of privilege mode; accept any valid
  // mask (the counts simply do not partition by domain).
  return valid_domain(domain_mask) ? Status() : Status(Error::kInvalid);
}

namespace {

// --- mem component ------------------------------------------------------

struct NamedCode {
  pmu::NativeEventCode code;
  std::string_view name;
  std::string_view description;
};

constexpr NamedCode kMemEvents[] = {
    {mem_events::kBandwidthRd, "BANDWIDTH_RD",
     "Bytes read from memory (L2 fills x line size)"},
    {mem_events::kL2Traffic, "L2_TRAFFIC",
     "Bytes transferred between L1 and L2 (L1 fills x line size)"},
    {mem_events::kL2Accesses, "L2_ACCESSES", "L2 cache accesses"},
    {mem_events::kL2Misses, "L2_MISSES", "L2 cache misses"},
    {mem_events::kPagesTouched, "PAGES_TOUCHED",
     "Distinct memory pages ever touched"},
    {mem_events::kResidentBytes, "RESIDENT_BYTES",
     "Resident bytes (pages touched x page size)"},
};

constexpr NamedCode kNetEvents[] = {
    {net_events::kMsgSent, "MSG_SENT", "Messages sent by this rank"},
    {net_events::kMsgRecv, "MSG_RECV", "Messages received by this rank"},
    {net_events::kWordsSent, "WORDS_SENT", "Payload words sent"},
    {net_events::kWordsRecv, "WORDS_RECV", "Payload words received"},
    {net_events::kBytesSent, "BYTES_SENT", "Payload bytes sent"},
    {net_events::kWaitRetries, "WAIT_RETRIES",
     "Receive busy-wait probe retries"},
};

const NamedCode* find_code(std::span<const NamedCode> table,
                           pmu::NativeEventCode code) noexcept {
  for (const NamedCode& entry : table) {
    if (entry.code == code) return &entry;
  }
  return nullptr;
}

const NamedCode* find_name(std::span<const NamedCode> table,
                           std::string_view name) noexcept {
  for (const NamedCode& entry : table) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

// Mask-platform translation shared by both components: every event may
// sit on any of the unit's counters.
Result<AllocationInstance> translate_full_mask(
    std::span<const NamedCode> table, std::uint32_t num_counters,
    std::span<const pmu::NativeEventCode> events,
    std::span<const int> priorities) {
  AllocationInstance instance;
  instance.num_counters = num_counters;
  instance.allowed.reserve(events.size());
  instance.priority.reserve(events.size());
  const std::uint64_t full_mask = (1ULL << num_counters) - 1;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (find_code(table, events[i]) == nullptr) return Error::kNoEvent;
    instance.allowed.push_back(full_mask);
    instance.priority.push_back(i < priorities.size() ? priorities[i]
                                                      : 0);
  }
  return instance;
}

class MemBandwidthContext final : public DeltaCounterContext {
 public:
  MemBandwidthContext(std::uint32_t num_counters, sim::Machine& machine)
      : DeltaCounterContext(num_counters), machine_(machine) {}

  std::uint64_t cycles() const override { return machine_.cycles(); }

 protected:
  std::uint64_t sample(pmu::NativeEventCode code) const override {
    switch (code) {
      case mem_events::kBandwidthRd:
        return machine_.l2().stats().misses *
               machine_.l2().config().line_bytes;
      case mem_events::kL2Traffic:
        return (machine_.l1i().stats().misses +
                machine_.l1d().stats().misses) *
               machine_.l1d().config().line_bytes;
      case mem_events::kL2Accesses:
        return machine_.l2().stats().accesses;
      case mem_events::kL2Misses:
        return machine_.l2().stats().misses;
      case mem_events::kPagesTouched:
        return machine_.memory().pages_touched();
      case mem_events::kResidentBytes:
        return machine_.memory().bytes_touched();
      default:
        return 0;
    }
  }
  bool valid_code(pmu::NativeEventCode code) const noexcept override {
    return find_code(kMemEvents, code) != nullptr;
  }

 private:
  sim::Machine& machine_;
};

class NetworkContext final : public DeltaCounterContext {
 public:
  NetworkContext(std::uint32_t num_counters, const sim::CommWorld& world,
                 std::size_t rank)
      : DeltaCounterContext(num_counters), world_(world), rank_(rank) {}

  std::uint64_t cycles() const override {
    return world_.rank_machine(rank_).cycles();
  }

 protected:
  std::uint64_t sample(pmu::NativeEventCode code) const override {
    const sim::CommWorld::RankStats& stats = world_.stats(rank_);
    switch (code) {
      case net_events::kMsgSent:
        return stats.sends;
      case net_events::kMsgRecv:
        return stats.recvs;
      case net_events::kWordsSent:
        return stats.words_sent;
      case net_events::kWordsRecv:
        return stats.words_recv;
      case net_events::kBytesSent:
        return stats.words_sent * 8;
      case net_events::kWaitRetries:
        return stats.wait_retries;
      default:
        return 0;
    }
  }
  bool valid_code(pmu::NativeEventCode code) const noexcept override {
    return find_code(kNetEvents, code) != nullptr;
  }

 private:
  const sim::CommWorld& world_;
  std::size_t rank_;
};

}  // namespace

// --- MemBandwidthSubstrate ----------------------------------------------

Result<std::unique_ptr<CounterContext>>
MemBandwidthSubstrate::create_context() {
  return std::unique_ptr<CounterContext>(std::make_unique<
      MemBandwidthContext>(num_counters(), machine_for_current_thread()));
}

void MemBandwidthSubstrate::bind_thread_machine(sim::Machine& machine) {
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  thread_machines_[std::this_thread::get_id()] = &machine;
}

void MemBandwidthSubstrate::unbind_thread_machine() {
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  thread_machines_.erase(std::this_thread::get_id());
}

sim::Machine& MemBandwidthSubstrate::machine_for_current_thread() const {
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  const auto it = thread_machines_.find(std::this_thread::get_id());
  return it != thread_machines_.end() ? *it->second : machine_;
}

Result<PresetMapping> MemBandwidthSubstrate::preset_mapping(
    Preset preset) const {
  PresetMapping mapping;
  mapping.preset = preset;
  switch (preset) {
    case Preset::kL2Tca:
      mapping.terms = {{mem_events::kL2Accesses, 1}};
      return mapping;
    case Preset::kL2Tcm:
      mapping.terms = {{mem_events::kL2Misses, 1}};
      return mapping;
    default:
      return Error::kNoEvent;
  }
}

Result<pmu::NativeEventCode> MemBandwidthSubstrate::native_by_name(
    std::string_view event_name) const {
  const NamedCode* entry = find_name(kMemEvents, event_name);
  if (entry == nullptr) return Error::kNoEvent;
  return entry->code;
}

Result<std::string> MemBandwidthSubstrate::native_name(
    pmu::NativeEventCode code) const {
  const NamedCode* entry = find_code(kMemEvents, code);
  if (entry == nullptr) return Error::kNoEvent;
  return std::string(entry->name);
}

Result<std::string> MemBandwidthSubstrate::native_description(
    pmu::NativeEventCode code) const {
  const NamedCode* entry = find_code(kMemEvents, code);
  if (entry == nullptr) return Error::kNoEvent;
  return std::string(entry->description);
}

Result<AllocationInstance> MemBandwidthSubstrate::translate_allocation(
    std::span<const pmu::NativeEventCode> events,
    std::span<const int> priorities) const {
  return translate_full_mask(kMemEvents, num_counters(), events,
                             priorities);
}

Result<MemoryInfo> MemBandwidthSubstrate::memory_info() const {
  // Model the machine as a 1 GiB node: resident = pages ever touched.
  constexpr std::uint64_t kNodeBytes = 1ULL << 30;
  const sim::Machine& machine = machine_for_current_thread();
  MemoryInfo info;
  info.total_bytes = kNodeBytes;
  info.process_resident_bytes = machine.memory().bytes_touched();
  info.process_peak_bytes = info.process_resident_bytes;
  info.available_bytes = kNodeBytes - info.process_resident_bytes;
  info.page_size_bytes = sim::kPageSize;
  info.page_faults = machine.memory().pages_touched();
  return info;
}

// --- NetworkSubstrate ---------------------------------------------------

Result<std::unique_ptr<CounterContext>>
NetworkSubstrate::create_context() {
  return std::unique_ptr<CounterContext>(std::make_unique<NetworkContext>(
      num_counters(), world_, rank_for_current_thread()));
}

void NetworkSubstrate::bind_thread_rank(std::size_t rank) {
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  thread_ranks_[std::this_thread::get_id()] = rank;
}

void NetworkSubstrate::unbind_thread_rank() {
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  thread_ranks_.erase(std::this_thread::get_id());
}

std::size_t NetworkSubstrate::rank_for_current_thread() const {
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  const auto it = thread_ranks_.find(std::this_thread::get_id());
  return it != thread_ranks_.end() ? it->second : 0;
}

Result<PresetMapping> NetworkSubstrate::preset_mapping(
    Preset preset) const {
  PresetMapping mapping;
  mapping.preset = preset;
  switch (preset) {
    case Preset::kMsgSnt:
      mapping.terms = {{net_events::kMsgSent, 1}};
      return mapping;
    case Preset::kMsgRcv:
      mapping.terms = {{net_events::kMsgRecv, 1}};
      return mapping;
    default:
      return Error::kNoEvent;
  }
}

Result<pmu::NativeEventCode> NetworkSubstrate::native_by_name(
    std::string_view event_name) const {
  const NamedCode* entry = find_name(kNetEvents, event_name);
  if (entry == nullptr) return Error::kNoEvent;
  return entry->code;
}

Result<std::string> NetworkSubstrate::native_name(
    pmu::NativeEventCode code) const {
  const NamedCode* entry = find_code(kNetEvents, code);
  if (entry == nullptr) return Error::kNoEvent;
  return std::string(entry->name);
}

Result<std::string> NetworkSubstrate::native_description(
    pmu::NativeEventCode code) const {
  const NamedCode* entry = find_code(kNetEvents, code);
  if (entry == nullptr) return Error::kNoEvent;
  return std::string(entry->description);
}

Result<AllocationInstance> NetworkSubstrate::translate_allocation(
    std::span<const pmu::NativeEventCode> events,
    std::span<const int> priorities) const {
  return translate_full_mask(kNetEvents, num_counters(), events,
                             priorities);
}

}  // namespace papirepro::papi
