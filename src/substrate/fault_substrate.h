// Fault-injecting substrate decorator.  Wraps any Substrate (and every
// CounterContext it hands out) and injects the partial-failure modes the
// portable layers must survive: transient kConflict/kNoCounters from
// program(), context-creation failures, read errors, multiplex-timer
// misfire (dropped or delayed slices), and counter wraparound at a
// configurable bit width (narrow hardware counters are Section 6's
// silent-accuracy hazard).  Every fault is driven by a seeded FaultPlan —
// per-site "fail N times then succeed" scripts plus a per-site
// deterministic probability stream — so any observed failure sequence is
// reproducible from (plan, call sequence) alone.
//
// The decorator is the test substrate for the retry/degradation hardening
// in core/: the Library's bounded-retry policy, the EventSet's
// wraparound-safe accumulation, and the multiplex sequential-slice
// fallback are all exercised against it (tests/core/
// test_fault_hardening.cpp).  When disabled at runtime it is a pure
// forwarder — one relaxed atomic load per call — so it can stay compiled
// into tools and benchmarks (bench_fault_overhead.cpp measures the cost).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/rng.h"
#include "substrate/substrate.h"

namespace papirepro::papi {

/// Call sites a FaultScript can target, one scripted stream per site.
enum class FaultSite : std::size_t {
  kCreateContext = 0,  ///< Substrate::create_context
  kProgram,            ///< CounterContext::program
  kStart,              ///< CounterContext::start
  kRead,               ///< CounterContext::read
  kAddTimer,           ///< add_timer (context and process-global)
  kNumSites
};
inline constexpr std::size_t kNumFaultSites =
    static_cast<std::size_t>(FaultSite::kNumSites);

/// Failure schedule for one call site: after `fail_after` untouched
/// calls, the next `fail_times` calls fail unconditionally (scripted
/// hard-down-for-N-calls-then-recover — with fail_after 0 this is the
/// classic "fail N times then succeed"), and later calls fail with
/// `probability` drawn from the site's seeded stream.  `error` is the
/// injected code for both.  The deferred window is what the health-
/// monitor tests script: healthy warm-up, deterministic outage, then
/// recovery at an exact call number.
struct FaultScript {
  int fail_times = 0;
  double probability = 0.0;
  Error error = Error::kConflict;
  /// Calls that pass untouched before the scripted failures begin.
  int fail_after = 0;

  bool armed() const noexcept {
    return fail_times > 0 || probability > 0.0;
  }
};

/// A complete deterministic fault schedule.  Same plan + same call
/// sequence => same injected faults, bit-for-bit.
struct FaultPlan {
  std::uint64_t seed = 0x5eedfa17ULL;
  std::array<FaultScript, kNumFaultSites> scripts{};
  /// Counter register width in bits; reads are truncated to this width
  /// (1..63), emulating narrow hardware counters that wrap mid-run.
  /// 0 or >= 64 means full-width counters.
  std::uint32_t counter_width_bits = 64;
  /// Multiplex-slice timer misfire: each timer firing is swallowed with
  /// this probability (a missed rotation the estimator must absorb).
  double timer_drop_probability = 0.0;
  /// Added to every requested timer period — a slow/late timer service.
  std::uint64_t timer_extra_delay_cycles = 0;
  /// Non-monotonic counter injection: after `read_rewind_after`
  /// successful reads, the next `read_rewind_times` reads report values
  /// rewound by `read_rewind_delta` (clamped at 0) — the impossible
  /// backwards delta the fold path's sanity guard must flag.  Times or
  /// delta of 0 disables the window.
  std::uint32_t read_rewind_after = 0;
  std::uint32_t read_rewind_times = 0;
  std::uint64_t read_rewind_delta = 0;

  FaultScript& at(FaultSite site) {
    return scripts[static_cast<std::size_t>(site)];
  }
  const FaultScript& at(FaultSite site) const {
    return scripts[static_cast<std::size_t>(site)];
  }
  bool narrow_counters() const noexcept {
    return counter_width_bits >= 1 && counter_width_bits < 64;
  }
  std::uint64_t counter_mask() const noexcept {
    return narrow_counters() ? (1ULL << counter_width_bits) - 1
                             : ~0ULL;
  }
};

class FaultInjectingSubstrate final : public Substrate {
 public:
  /// Takes ownership of the decorated substrate.  Injection starts
  /// enabled; set_enabled(false) turns the decorator into a forwarder.
  FaultInjectingSubstrate(std::unique_ptr<Substrate> inner,
                          const FaultPlan& plan);
  ~FaultInjectingSubstrate() override;

  Substrate& inner() noexcept { return *inner_; }
  const Substrate& inner() const noexcept { return *inner_; }

  /// Runtime master switch (the PAPIrepro_inject_faults knob).  While
  /// disabled every call forwards untouched and scripts do not advance.
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Replaces the plan and rewinds every script/stream to call zero.
  void set_plan(const FaultPlan& plan);
  const FaultPlan& plan() const noexcept { return plan_; }

  /// Total faults injected at `site` since the last set_plan (test
  /// observability: "was the failure actually exercised?").
  std::uint64_t injected_count(FaultSite site) const;
  /// Calls observed at `site` (injected or forwarded).
  std::uint64_t call_count(FaultSite site) const;

  /// Counts every delivered fault in the library-wide registry
  /// (kFaultsInjected) and forwards the binding to the inner substrate.
  void bind_telemetry(TelemetryRegistry* telemetry) override;

  // --- Substrate interface (decorated) ---
  std::string_view name() const noexcept override;
  std::uint32_t num_counters() const noexcept override {
    return inner_->num_counters();
  }
  const pmu::PlatformDescription* platform() const noexcept override {
    return inner_->platform();
  }
  std::uint32_t counter_width_bits() const noexcept override;
  std::uint64_t allocation_generation() const noexcept override {
    return inner_->allocation_generation();
  }

  Result<std::unique_ptr<CounterContext>> create_context() override;

  Result<PresetMapping> preset_mapping(Preset preset) const override {
    return inner_->preset_mapping(preset);
  }
  Result<pmu::NativeEventCode> native_by_name(
      std::string_view event_name) const override {
    return inner_->native_by_name(event_name);
  }
  Result<std::string> native_name(
      pmu::NativeEventCode code) const override {
    return inner_->native_name(code);
  }
  Result<std::string> native_description(
      pmu::NativeEventCode code) const override {
    return inner_->native_description(code);
  }

  Result<AllocationInstance> translate_allocation(
      std::span<const pmu::NativeEventCode> events,
      std::span<const int> priorities) const override {
    return inner_->translate_allocation(events, priorities);
  }
  Result<std::vector<std::uint32_t>> allocate(
      std::span<const pmu::NativeEventCode> events,
      std::span<const int> priorities) const override {
    return inner_->allocate(events, priorities);
  }

  bool supports_estimation() const noexcept override {
    return inner_->supports_estimation();
  }
  Status set_estimation(bool enable) override {
    return inner_->set_estimation(enable);
  }

  std::uint64_t real_usec() const override { return inner_->real_usec(); }
  std::uint64_t real_cycles() const override {
    return inner_->real_cycles();
  }
  std::uint64_t virt_usec() const override { return inner_->virt_usec(); }

  bool supports_multiplex() const noexcept override {
    return inner_->supports_multiplex();
  }
  Result<int> add_timer(std::uint64_t period_cycles,
                        TimerCallback callback) override;
  Status cancel_timer(int id) override { return inner_->cancel_timer(id); }

  Result<MemoryInfo> memory_info() const override {
    return inner_->memory_info();
  }

 private:
  friend class FaultInjectingContext;

  /// One call at `site`: Error::kOk to forward, otherwise the injected
  /// error.  Advances the site's script and probability stream.
  Error consult(FaultSite site);
  /// Applies the read-rewind window to a successful read's values.
  void apply_read_rewind(std::span<std::uint64_t> out);
  /// Deterministic timer-misfire draw (kOk semantics do not apply).
  bool drop_timer_fire();
  /// Wraps a timer request: injects kAddTimer faults, stretches the
  /// period, and arms the drop stream on the callback.
  Result<int> decorate_timer(
      std::uint64_t period_cycles, TimerCallback callback,
      const std::function<Result<int>(std::uint64_t, TimerCallback)>& arm);

  struct SiteState {
    SplitMix64 rng{0};
    int remaining_scripted_failures = 0;
    std::uint64_t calls = 0;
    std::uint64_t injected = 0;
  };

  std::unique_ptr<Substrate> inner_;
  FaultPlan plan_;
  std::atomic<bool> enabled_{true};
  /// Owned by the Library, which outlives the substrate; written once
  /// by bind_telemetry, relaxed-read on the injection path.
  std::atomic<TelemetryRegistry*> telemetry_{nullptr};
  mutable std::mutex mutex_;  ///< guards sites_, timer_rng_, reads
  std::array<SiteState, kNumFaultSites> sites_;
  SplitMix64 timer_rng_{0};
  /// Successful reads since set_plan — the read-rewind window's clock.
  std::uint64_t successful_reads_ = 0;
  mutable std::string decorated_name_;
};

}  // namespace papirepro::papi
