#include "substrate/preset_maps.h"

#include <string_view>
#include <utility>
#include <vector>

namespace papirepro::papi {
namespace {

struct NamedTerm {
  std::string_view native_name;
  int coefficient;
};

struct NamedMapping {
  Preset preset;
  std::vector<NamedTerm> terms;
};

using Table = std::vector<NamedMapping>;

const Table& x86_table() {
  static const Table t = {
      {Preset::kTotCyc, {{"CPU_CLK_UNHALTED", 1}}},
      {Preset::kTotIns, {{"INST_RETIRED", 1}}},
      {Preset::kFpIns, {{"FP_INS_RETIRED", 1}}},
      // FMA retires as one FP_OPS count natively; adding FP_FMA_RETIRED
      // once more yields the normalized "FMA counts as two" semantics.
      {Preset::kFpOps, {{"FP_OPS_RETIRED", 1}, {"FP_FMA_RETIRED", 1}}},
      {Preset::kFmaIns, {{"FP_FMA_RETIRED", 1}}},
      {Preset::kLdIns, {{"LD_RETIRED", 1}}},
      {Preset::kSrIns, {{"ST_RETIRED", 1}}},
      {Preset::kLstIns, {{"DATA_MEM_REFS", 1}}},
      {Preset::kL1Dca, {{"L1D_ACCESS", 1}}},
      {Preset::kL1Dcm, {{"L1D_MISS", 1}}},
      {Preset::kL1Icm, {{"L1I_MISS", 1}}},
      {Preset::kL1Tcm, {{"L1D_MISS", 1}, {"L1I_MISS", 1}}},
      {Preset::kL2Tca, {{"L2_ACCESS", 1}}},
      {Preset::kL2Tcm, {{"L2_MISS", 1}}},
      {Preset::kTlbDm, {{"DTLB_MISS", 1}}},
      {Preset::kTlbIm, {{"ITLB_MISS", 1}}},
      {Preset::kTlbTl, {{"DTLB_MISS", 1}, {"ITLB_MISS", 1}}},
      {Preset::kBrIns, {{"BR_INS_RETIRED", 1}}},
      {Preset::kBrTkn, {{"BR_TAKEN_RETIRED", 1}}},
      {Preset::kBrMsp, {{"BR_MISP_RETIRED", 1}}},
      {Preset::kBrPrc, {{"BR_INS_RETIRED", 1}, {"BR_MISP_RETIRED", -1}}},
      {Preset::kStlCcy, {{"RESOURCE_STALLS", 1}}},
  };
  return t;
}

const Table& power3_table() {
  static const Table t = {
      {Preset::kTotCyc, {{"PM_CYC", 1}}},
      {Preset::kTotIns, {{"PM_INST_CMPL", 1}}},
      // Raw FP instructions: includes the convert/rounding instructions —
      // the low level "does not attempt any normalization or calibration
      // of counter data but simply reports the counts given by the
      // hardware".
      {Preset::kFpIns, {{"PM_FPU_INS", 1}}},
      // The normalized operation count subtracts the converts and adds
      // FMA once more (PM_FPU_INS counts an FMA as one instruction).
      {Preset::kFpOps,
       {{"PM_FPU_INS", 1}, {"PM_FPU_CVT", -1}, {"PM_EXEC_FMA", 1}}},
      {Preset::kFmaIns, {{"PM_EXEC_FMA", 1}}},
      {Preset::kFdvIns, {{"PM_FPU_DIV", 1}}},
      {Preset::kLdIns, {{"PM_LD_CMPL", 1}}},
      {Preset::kSrIns, {{"PM_ST_CMPL", 1}}},
      {Preset::kLstIns, {{"PM_LD_CMPL", 1}, {"PM_ST_CMPL", 1}}},
      {Preset::kL1Dca, {{"PM_DC_ACCESS", 1}}},
      {Preset::kL1Dcm, {{"PM_DC_MISS", 1}}},
      {Preset::kL1Icm, {{"PM_IC_MISS", 1}}},
      {Preset::kL1Tcm, {{"PM_DC_MISS", 1}, {"PM_IC_MISS", 1}}},
      {Preset::kL2Tcm, {{"PM_L2_MISS", 1}}},
      {Preset::kTlbDm, {{"PM_DTLB_MISS", 1}}},
      {Preset::kTlbIm, {{"PM_ITLB_MISS", 1}}},
      {Preset::kTlbTl, {{"PM_DTLB_MISS", 1}, {"PM_ITLB_MISS", 1}}},
      {Preset::kBrIns, {{"PM_BR_CMPL", 1}}},
      {Preset::kBrTkn, {{"PM_BR_TAKEN", 1}}},
      {Preset::kBrMsp, {{"PM_BR_MPRED", 1}}},
      {Preset::kBrPrc, {{"PM_BR_CMPL", 1}, {"PM_BR_MPRED", -1}}},
      {Preset::kStlCcy, {{"PM_STALL_CYC", 1}}},
  };
  return t;
}

const Table& ia64_table() {
  static const Table t = {
      {Preset::kTotCyc, {{"CPU_CYCLES", 1}}},
      {Preset::kTotIns, {{"IA64_INST_RETIRED", 1}}},
      {Preset::kFpOps, {{"FP_OPS_RETIRED", 1}, {"FP_FMA_RETIRED", 1}}},
      {Preset::kFmaIns, {{"FP_FMA_RETIRED", 1}}},
      {Preset::kLdIns, {{"LOADS_RETIRED", 1}}},
      {Preset::kSrIns, {{"STORES_RETIRED", 1}}},
      {Preset::kLstIns, {{"LOADS_RETIRED", 1}, {"STORES_RETIRED", 1}}},
      {Preset::kL1Dca, {{"L1D_READS", 1}}},
      {Preset::kL1Dcm, {{"L1D_READ_MISSES", 1}}},
      {Preset::kL1Icm, {{"L1I_MISSES", 1}}},
      {Preset::kL1Tcm, {{"L1D_READ_MISSES", 1}, {"L1I_MISSES", 1}}},
      {Preset::kL2Tca, {{"L2_REFERENCES", 1}}},
      {Preset::kL2Tcm, {{"L2_MISSES", 1}}},
      {Preset::kTlbDm, {{"DTLB_MISSES", 1}}},
      {Preset::kTlbIm, {{"ITLB_MISSES", 1}}},
      {Preset::kTlbTl, {{"DTLB_MISSES", 1}, {"ITLB_MISSES", 1}}},
      {Preset::kBrIns, {{"BR_RETIRED", 1}}},
      {Preset::kBrMsp, {{"BR_MISPRED_DETAIL", 1}}},
      {Preset::kBrPrc, {{"BR_RETIRED", 1}, {"BR_MISPRED_DETAIL", -1}}},
      {Preset::kStlCcy, {{"BACK_END_BUBBLE", 1}}},
  };
  return t;
}

const Table& alpha_table() {
  static const Table t = {
      {Preset::kTotCyc, {{"CYCLES", 1}}},
      {Preset::kTotIns, {{"RETIRED_INSTRUCTIONS", 1}}},
      {Preset::kL2Tcm, {{"BCACHE_MISSES", 1}}},
      // Everything below is ProfileMe-only: countable solely with the
      // substrate's sampling-estimation mode enabled.
      {Preset::kFpOps, {{"PME_RETIRED_FP", 1}, {"PME_FMA", 1}}},
      {Preset::kFmaIns, {{"PME_FMA", 1}}},
      {Preset::kL1Dcm, {{"PME_L1D_MISS", 1}}},
      {Preset::kTlbDm, {{"PME_DTLB_MISS", 1}}},
      {Preset::kLdIns, {{"PME_RETIRED_LOADS", 1}}},
      {Preset::kSrIns, {{"PME_RETIRED_STORES", 1}}},
      {Preset::kLstIns,
       {{"PME_RETIRED_LOADS", 1}, {"PME_RETIRED_STORES", 1}}},
      {Preset::kBrIns, {{"PME_BR_RETIRED", 1}}},
      {Preset::kBrMsp, {{"PME_BR_MISPRED", 1}}},
  };
  return t;
}

const Table& t3e_table() {
  static const Table t = {
      {Preset::kTotCyc, {{"EV5_CYCLES", 1}}},
      {Preset::kTotIns, {{"EV5_ISSUES", 1}}},
      // EV5_FLOPS counts an FMA once; no separate FMA event exists, so
      // the normalized PAPI_FP_OPS cannot be built and only the raw
      // instruction count maps (a genuine T3E-era limitation).
      {Preset::kFpIns, {{"EV5_FLOPS", 1}}},
      {Preset::kLdIns, {{"EV5_LOADS", 1}}},
      {Preset::kSrIns, {{"EV5_STORES", 1}}},
      {Preset::kLstIns, {{"EV5_LOADS", 1}, {"EV5_STORES", 1}}},
      {Preset::kL1Dcm, {{"EV5_DCACHE_MISS", 1}}},
      {Preset::kL1Icm, {{"EV5_ICACHE_MISS", 1}}},
      {Preset::kL1Tcm, {{"EV5_DCACHE_MISS", 1}, {"EV5_ICACHE_MISS", 1}}},
      {Preset::kL2Tcm, {{"EV5_SCACHE_MISS", 1}}},
      {Preset::kTlbDm, {{"EV5_DTB_MISS", 1}}},
      {Preset::kBrIns, {{"EV5_BRANCHES", 1}}},
      {Preset::kBrMsp, {{"EV5_BRANCH_MISPR", 1}}},
      {Preset::kBrPrc, {{"EV5_BRANCHES", 1}, {"EV5_BRANCH_MISPR", -1}}},
  };
  return t;
}

const Table* table_for(const pmu::PlatformDescription& platform) {
  if (platform.name == "sim-x86") return &x86_table();
  if (platform.name == "sim-power3") return &power3_table();
  if (platform.name == "sim-ia64") return &ia64_table();
  if (platform.name == "sim-alpha") return &alpha_table();
  if (platform.name == "sim-t3e") return &t3e_table();
  return nullptr;
}

}  // namespace

Result<PresetMapping> map_preset(const pmu::PlatformDescription& platform,
                                 Preset preset) {
  const Table* table = table_for(platform);
  if (table == nullptr) return Error::kSubstrate;
  for (const NamedMapping& m : *table) {
    if (m.preset != preset) continue;
    PresetMapping out;
    out.preset = preset;
    for (const NamedTerm& t : m.terms) {
      const pmu::NativeEvent* ev = platform.find_event(t.native_name);
      if (ev == nullptr) return Error::kSubstrate;  // table/platform skew
      out.terms.push_back({ev->code, t.coefficient});
    }
    return out;
  }
  return Error::kNoEvent;
}

std::vector<Preset> available_presets(
    const pmu::PlatformDescription& platform) {
  std::vector<Preset> out;
  for (std::size_t i = 0; i < kNumPresets; ++i) {
    const auto p = static_cast<Preset>(i);
    if (map_preset(platform, p).ok()) out.push_back(p);
  }
  return out;
}

}  // namespace papirepro::papi
