// Per-platform preset-to-native mapping tables: "For each platform, the
// reference implementation attempts to map as many of the PAPI standard
// events as possible to native events on that platform."  Mappings may
// be derived (signed combinations of natives); presets a platform cannot
// express are simply absent, and queries return Error::kNoEvent.
#pragma once

#include "common/status.h"
#include "core/events.h"
#include "pmu/platform.h"

namespace papirepro::papi {

/// Realization of `preset` on `platform`, resolving native names to
/// codes.  Error::kNoEvent when the platform has no mapping.
Result<PresetMapping> map_preset(const pmu::PlatformDescription& platform,
                                 Preset preset);

/// All presets available on `platform` (the "avail" utility's table).
std::vector<Preset> available_presets(
    const pmu::PlatformDescription& platform);

}  // namespace papirepro::papi
