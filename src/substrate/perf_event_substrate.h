// Substrate over the Linux perf_event interface — the kernel counter
// API that eventually absorbed the out-of-tree patches the paper
// describes ("it is encouraging to see that the required kernel
// modifications are being incorporated into the standard release of some
// operating systems").  This is the one substrate that measures the
// *real* host CPU.
//
// Scope: counting mode only (no overflow/signal profiling), one fd per
// event, kernel-side multiplexing with TIME_ENABLED/TIME_RUNNING
// scaling — the same estimate-from-duty-cycle idea as core/multiplex,
// done by the scheduler.  Hardware events require perf_event_paranoid
// permissions; software events (task-clock, page-faults, context
// switches) work nearly everywhere, so the substrate degrades exactly
// the way PAPI did on unpatched kernels: present, honest about what it
// cannot count.
//
// Each PerfCounterContext owns its own fds, opened with pid=0 (calling
// thread) — so per-thread contexts genuinely count per-thread, with no
// shared state at all between contexts.
#pragma once

#include <string>
#include <vector>

#include "substrate/substrate.h"

namespace papirepro::papi {

class PerfEventSubstrate;

class PerfCounterContext final : public CounterContext {
 public:
  explicit PerfCounterContext(const PerfEventSubstrate& substrate)
      : substrate_(substrate) {}
  ~PerfCounterContext() override;

  Status program(std::span<const pmu::NativeEventCode> events,
                 std::span<const std::uint32_t> assignment) override;
  Status start() override;
  Status stop() override;
  /// Values scaled by time_enabled/time_running (kernel multiplexing).
  Status read(std::span<std::uint64_t> out) override;
  Status reset_counts() override;
  Status set_overflow(std::uint32_t, std::uint64_t, OverflowCallback,
                      OverflowDeliveryMode) override {
    return Error::kNoSupport;
  }
  Status clear_overflow(std::uint32_t) override {
    return Error::kNoSupport;
  }
  bool running() const noexcept override { return running_; }
  std::uint64_t cycles() const override;

 private:
  void close_all();

  const PerfEventSubstrate& substrate_;
  bool running_ = false;
  std::vector<int> fds_;
};

class PerfEventSubstrate final : public Substrate {
 public:
  PerfEventSubstrate();

  /// False when the kernel refuses even software events (no perf at
  /// all — e.g. seccomp'd container); everything then returns kSystem.
  bool available() const noexcept { return available_; }
  /// True when hardware events (cycles, instructions) are permitted.
  bool hardware_available() const noexcept { return hw_available_; }

  std::string_view name() const noexcept override { return "perf_event"; }
  std::uint32_t num_counters() const noexcept override {
    return kMaxEvents;
  }

  Result<std::unique_ptr<CounterContext>> create_context() override;

  Result<PresetMapping> preset_mapping(Preset preset) const override;
  Result<pmu::NativeEventCode> native_by_name(
      std::string_view event_name) const override;
  Result<std::string> native_name(
      pmu::NativeEventCode code) const override;

  Result<AllocationInstance> translate_allocation(
      std::span<const pmu::NativeEventCode> events,
      std::span<const int> priorities) const override;

  std::uint64_t real_usec() const override;
  std::uint64_t real_cycles() const override;
  std::uint64_t virt_usec() const override;
  Result<MemoryInfo> memory_info() const override;

  static constexpr std::uint32_t kMaxEvents = 16;

 private:
  bool available_ = false;
  bool hw_available_ = false;
  std::uint64_t epoch_ns_ = 0;
};

}  // namespace papirepro::papi
