// The substrate interface: "The machine-dependent part of the
// implementation, called the substrate, is all that needs to be
// rewritten to port PAPI to a new architecture."  Everything above this
// interface (EventSets, multiplexing, overflow dispatch, profiling, the
// high-level calls) is portable; everything below it is one of the
// platform models (or the host).
//
// Since the per-thread CounterContext refactor the substrate is a
// *context factory* plus the stateless services: the event namespace,
// the allocation translation, the process-global timers, and memory
// utilization.  All counter programming state lives in CounterContext
// objects handed out by create_context() — one per thread (the Library's
// ThreadRegistry owns them), so concurrent threads never share mutable
// counter state.
//
// The allocation split (Section 5 / PAPI 3 plan) lives here too: the
// substrate translates its counter-constraint scheme into a pure
// bipartite AllocationInstance (translate_allocation), and the portable
// core solves it (core/allocator) — "the hardware-independent portion
// solving the graph matching problem and the hardware-dependent problem
// translating the counter scheme on a particular platform into the graph
// matching problem."
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/allocator.h"
#include "core/events.h"
#include "core/memory_info.h"
#include "core/options.h"
#include "pmu/platform.h"
#include "substrate/counter_context.h"

namespace papirepro::papi {

class TelemetryRegistry;

class Substrate {
 public:
  using OverflowCallback = CounterContext::OverflowCallback;
  using TimerCallback = CounterContext::TimerCallback;

  virtual ~Substrate() = default;

  /// Called once by the owning Library with its TelemetryRegistry, which
  /// outlives the substrate.  Substrates that observe library-relevant
  /// events (the fault-injecting decorator counts delivered faults)
  /// record them there; the default ignores the registry.
  virtual void bind_telemetry(TelemetryRegistry* /*telemetry*/) {}

  // --- identity ---
  virtual std::string_view name() const noexcept = 0;
  virtual std::uint32_t num_counters() const noexcept = 0;
  /// Platform description for simulated substrates, nullptr on host.
  virtual const pmu::PlatformDescription* platform() const noexcept {
    return nullptr;
  }
  /// Width of the physical counter registers in bits.  Values read from a
  /// context are truncated to this width by the hardware, so sub-64-bit
  /// substrates wrap mid-run; the portable layer (core/eventset) folds
  /// successive reads into wraparound-safe 64-bit totals using this.
  virtual std::uint32_t counter_width_bits() const noexcept { return 64; }

  // --- counter context factory ---
  /// A fresh, independent programming context.  Thread-aware substrates
  /// bind the context to the calling thread's counter domain (the
  /// thread-bound simulated machine, or the calling thread's perf fds);
  /// substrates without counters return a context whose control calls
  /// fail with Error::kNoCounters.  Must be callable from any thread.
  virtual Result<std::unique_ptr<CounterContext>> create_context() = 0;

  // --- event namespace (stateless, thread-safe) ---
  /// Realization of `preset` on this platform (Error::kNoEvent if
  /// unmapped).
  virtual Result<PresetMapping> preset_mapping(Preset preset) const = 0;
  virtual Result<pmu::NativeEventCode> native_by_name(
      std::string_view name) const = 0;
  virtual Result<std::string> native_name(
      pmu::NativeEventCode code) const = 0;
  /// Human-readable description of a native event.  The default answers
  /// from the platform description; substrates without one (host,
  /// component substrates with hand-rolled tables) override.
  virtual Result<std::string> native_description(
      pmu::NativeEventCode code) const {
    const pmu::PlatformDescription* desc = platform();
    if (desc == nullptr) return Error::kNoEvent;
    const pmu::NativeEvent* event = desc->find_event(code);
    if (event == nullptr) return Error::kNoEvent;
    return event->description;
  }

  // --- counter allocation (hardware-dependent half; stateless) ---
  /// Translates the platform constraint scheme for `events` into a pure
  /// bipartite instance.  Group-constrained platforms return one
  /// instance per candidate group via the `group_choices` out-param
  /// semantics below: the default implementation handles mask platforms;
  /// group platforms override allocate() directly.
  virtual Result<AllocationInstance> translate_allocation(
      std::span<const pmu::NativeEventCode> events,
      std::span<const int> priorities) const = 0;

  /// Full allocation: returns the physical counter per event, or
  /// Error::kConflict when no complete assignment exists.
  virtual Result<std::vector<std::uint32_t>> allocate(
      std::span<const pmu::NativeEventCode> events,
      std::span<const int> priorities) const;

  /// Version counter over the substrate's allocation *rules*: bumped
  /// whenever the outcome of allocate()/translate_allocation() for a
  /// fixed event list may change (e.g. sim-alpha's estimation-mode
  /// toggle makes maskless events placeable).  The core's
  /// AllocationCache keys its memo on this so cached solves never
  /// outlive the rules that produced them.
  virtual std::uint64_t allocation_generation() const noexcept {
    return 0;
  }

  // --- sampling-based count estimation (PAPI 3 option; sim-alpha) ---
  virtual bool supports_estimation() const noexcept { return false; }
  /// When enabled, events that cannot be placed on physical counters are
  /// serviced from ProfileMe sample extrapolation.  Process-global mode
  /// switch: it affects allocation and the *next* program() on every
  /// context.
  virtual Status set_estimation(bool /*enabled*/) {
    return Error::kNoSupport;
  }

  // --- timers (the "most popular feature"; process-global) ---
  virtual std::uint64_t real_usec() const = 0;
  virtual std::uint64_t real_cycles() const = 0;
  /// Process-virtual time; equals real time on the simulated machines.
  virtual std::uint64_t virt_usec() const = 0;

  // --- multiplexing timer service (process-global; per-context timers
  // --- live on CounterContext) ---
  virtual bool supports_multiplex() const noexcept { return false; }
  virtual Result<int> add_timer(std::uint64_t period_cycles,
                                TimerCallback callback);
  virtual Status cancel_timer(int id);

  // --- memory utilization (PAPI 3 extension) ---
  virtual Result<MemoryInfo> memory_info() const = 0;
};

}  // namespace papirepro::papi
