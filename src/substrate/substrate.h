// The substrate interface: "The machine-dependent part of the
// implementation, called the substrate, is all that needs to be
// rewritten to port PAPI to a new architecture."  Everything above this
// interface (EventSets, multiplexing, overflow dispatch, profiling, the
// high-level calls) is portable; everything below it is one of the
// platform models (or the host).
//
// The allocation split (Section 5 / PAPI 3 plan) lives here too: the
// substrate translates its counter-constraint scheme into a pure
// bipartite AllocationInstance (translate_allocation), and the portable
// core solves it (core/allocator) — "the hardware-independent portion
// solving the graph matching problem and the hardware-dependent problem
// translating the counter scheme on a particular platform into the graph
// matching problem."
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/allocator.h"
#include "core/events.h"
#include "core/memory_info.h"
#include "core/options.h"
#include "pmu/platform.h"

namespace papirepro::papi {

/// Overflow notification from the substrate: event index within the
/// programmed list, the PC a handler would observe (already skidded on
/// out-of-order platforms), and the precise PC where hardware assists
/// (EAR / ProfileMe) provide one.
struct SubstrateOverflow {
  std::uint32_t event_index = 0;
  std::uint64_t pc_observed = 0;
  std::uint64_t pc_precise = 0;
  bool has_precise = false;
  std::uint64_t addr = 0;
};

class Substrate {
 public:
  using OverflowCallback = std::function<void(const SubstrateOverflow&)>;
  using TimerCallback = std::function<void()>;

  virtual ~Substrate() = default;

  // --- identity ---
  virtual std::string_view name() const noexcept = 0;
  virtual std::uint32_t num_counters() const noexcept = 0;
  /// Platform description for simulated substrates, nullptr on host.
  virtual const pmu::PlatformDescription* platform() const noexcept {
    return nullptr;
  }

  // --- event namespace ---
  /// Realization of `preset` on this platform (Error::kNoEvent if
  /// unmapped).
  virtual Result<PresetMapping> preset_mapping(Preset preset) const = 0;
  virtual Result<pmu::NativeEventCode> native_by_name(
      std::string_view name) const = 0;
  virtual Result<std::string> native_name(
      pmu::NativeEventCode code) const = 0;

  // --- counter allocation (hardware-dependent half) ---
  /// Translates the platform constraint scheme for `events` into a pure
  /// bipartite instance.  Group-constrained platforms return one
  /// instance per candidate group via the `group_choices` out-param
  /// semantics below: the default implementation handles mask platforms;
  /// group platforms override allocate() directly.
  virtual Result<AllocationInstance> translate_allocation(
      std::span<const pmu::NativeEventCode> events,
      std::span<const int> priorities) const = 0;

  /// Full allocation: returns the physical counter per event, or
  /// Error::kConflict when no complete assignment exists.
  virtual Result<std::vector<std::uint32_t>> allocate(
      std::span<const pmu::NativeEventCode> events,
      std::span<const int> priorities) const;

  // --- counter control (host substrate returns kNoCounters) ---
  virtual Status program(std::span<const pmu::NativeEventCode> events,
                         std::span<const std::uint32_t> assignment) = 0;
  virtual Status start() = 0;
  virtual Status stop() = 0;
  /// Values in programmed-event order.
  virtual Status read(std::span<std::uint64_t> out) = 0;
  virtual Status reset_counts() = 0;
  virtual Status set_overflow(std::uint32_t event_index,
                              std::uint64_t threshold,
                              OverflowCallback callback) = 0;
  virtual Status clear_overflow(std::uint32_t event_index) = 0;

  /// Counting domain applied to every programmed counter (PAPI
  /// PAPI_set_domain): domain::kUser counts only application context,
  /// domain::kKernel only measurement-infrastructure context, kAll both.
  /// Takes effect at the next program().
  virtual Status set_domain(std::uint32_t /*domain_mask*/) {
    return Error::kNoSupport;
  }

  // --- sampling-based count estimation (PAPI 3 option; sim-alpha) ---
  virtual bool supports_estimation() const noexcept { return false; }
  /// When enabled, events that cannot be placed on physical counters are
  /// serviced from ProfileMe sample extrapolation.
  virtual Status set_estimation(bool /*enabled*/) {
    return Error::kNoSupport;
  }

  // --- timers (the "most popular feature") ---
  virtual std::uint64_t real_usec() const = 0;
  virtual std::uint64_t real_cycles() const = 0;
  /// Process-virtual time; equals real time on the simulated machines.
  virtual std::uint64_t virt_usec() const = 0;

  // --- multiplexing timer service ---
  virtual bool supports_multiplex() const noexcept { return false; }
  virtual Result<int> add_timer(std::uint64_t period_cycles,
                                TimerCallback callback);
  virtual Status cancel_timer(int id);

  // --- memory utilization (PAPI 3 extension) ---
  virtual Result<MemoryInfo> memory_info() const = 0;
};

}  // namespace papirepro::papi
