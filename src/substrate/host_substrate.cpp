#include "substrate/host_substrate.h"

#include <ctime>
#include <fstream>
#include <string>

#include <sys/resource.h>
#include <unistd.h>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace papirepro::papi {
namespace {

std::uint64_t clock_ns(clockid_t id) {
  timespec ts{};
  clock_gettime(id, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// Parses "key:   value kB" lines from /proc files.
std::uint64_t proc_kb(const char* path, std::string_view key) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key, 0) == 0) {
      const std::size_t pos = line.find_first_of("0123456789");
      if (pos == std::string::npos) return 0;
      return std::stoull(line.substr(pos));
    }
  }
  return 0;
}

}  // namespace

std::uint64_t NullCounterContext::cycles() const {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return clock_ns(CLOCK_MONOTONIC);
#endif
}

HostSubstrate::HostSubstrate() : epoch_ns_(clock_ns(CLOCK_MONOTONIC)) {}

Result<std::unique_ptr<CounterContext>> HostSubstrate::create_context() {
  return std::unique_ptr<CounterContext>(new NullCounterContext());
}

Result<PresetMapping> HostSubstrate::preset_mapping(Preset) const {
  return Error::kNoEvent;
}

Result<pmu::NativeEventCode> HostSubstrate::native_by_name(
    std::string_view) const {
  return Error::kNoEvent;
}

Result<std::string> HostSubstrate::native_name(pmu::NativeEventCode) const {
  return Error::kNoEvent;
}

Result<AllocationInstance> HostSubstrate::translate_allocation(
    std::span<const pmu::NativeEventCode>, std::span<const int>) const {
  return Error::kNoCounters;
}

std::uint64_t HostSubstrate::real_usec() const {
  return (clock_ns(CLOCK_MONOTONIC) - epoch_ns_) / 1000;
}

std::uint64_t HostSubstrate::real_cycles() const {
#if defined(__x86_64__)
  return __rdtsc();
#else
  // No cycle counter register: nanoseconds are the best monotonic
  // fine-grain clock available.
  return clock_ns(CLOCK_MONOTONIC);
#endif
}

std::uint64_t HostSubstrate::virt_usec() const {
  return clock_ns(CLOCK_THREAD_CPUTIME_ID) / 1000;
}

Result<MemoryInfo> HostSubstrate::memory_info() const {
  MemoryInfo info;
  info.page_size_bytes =
      static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
  info.total_bytes = proc_kb("/proc/meminfo", "MemTotal") * 1024;
  info.available_bytes = proc_kb("/proc/meminfo", "MemAvailable") * 1024;
  info.process_resident_bytes = proc_kb("/proc/self/status", "VmRSS") * 1024;
  info.process_peak_bytes = proc_kb("/proc/self/status", "VmHWM") * 1024;

  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    info.page_faults = static_cast<std::uint64_t>(usage.ru_minflt +
                                                  usage.ru_majflt);
    if (info.process_peak_bytes == 0) {
      info.process_peak_bytes =
          static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
    }
  }
  return info;
}

}  // namespace papirepro::papi
