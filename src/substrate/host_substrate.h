// Host substrate: runs on the real machine this library is compiled for.
// Counter access is unavailable (the 2003 Linux substrate needed a kernel
// patch; this container has none), so contexts created here fail every
// control call with Error::kNoCounters — but the portable timers and the
// PAPI 3 memory utilization extensions are fully functional, backed by
// clock_gettime, the TSC where available, getrusage, and /proc.  This
// mirrors how PAPI degraded gracefully on unpatched systems, and it is
// what the timer benchmarks (E10) measure real nanosecond overheads
// against.
#pragma once

#include "substrate/substrate.h"

namespace papirepro::papi {

/// Context for counter-less substrates: every control call reports
/// kNoCounters, the clock is the host monotonic clock.
class NullCounterContext final : public CounterContext {
 public:
  Status program(std::span<const pmu::NativeEventCode>,
                 std::span<const std::uint32_t>) override {
    return Error::kNoCounters;
  }
  Status start() override { return Error::kNoCounters; }
  Status stop() override { return Error::kNoCounters; }
  Status read(std::span<std::uint64_t>) override {
    return Error::kNoCounters;
  }
  Status reset_counts() override { return Error::kNoCounters; }
  Status set_overflow(std::uint32_t, std::uint64_t, OverflowCallback,
                      OverflowDeliveryMode) override {
    return Error::kNoCounters;
  }
  Status clear_overflow(std::uint32_t) override {
    return Error::kNoCounters;
  }
  bool running() const noexcept override { return false; }
  std::uint64_t cycles() const override;
};

class HostSubstrate final : public Substrate {
 public:
  HostSubstrate();

  std::string_view name() const noexcept override { return "host"; }
  std::uint32_t num_counters() const noexcept override { return 0; }

  Result<std::unique_ptr<CounterContext>> create_context() override;

  Result<PresetMapping> preset_mapping(Preset preset) const override;
  Result<pmu::NativeEventCode> native_by_name(
      std::string_view event_name) const override;
  Result<std::string> native_name(
      pmu::NativeEventCode code) const override;

  Result<AllocationInstance> translate_allocation(
      std::span<const pmu::NativeEventCode> events,
      std::span<const int> priorities) const override;

  std::uint64_t real_usec() const override;
  std::uint64_t real_cycles() const override;
  std::uint64_t virt_usec() const override;

  Result<MemoryInfo> memory_info() const override;

 private:
  std::uint64_t epoch_ns_ = 0;
};

}  // namespace papirepro::papi
