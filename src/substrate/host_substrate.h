// Host substrate: runs on the real machine this library is compiled for.
// Counter access is unavailable (the 2003 Linux substrate needed a kernel
// patch; this container has none), so event programming returns
// Error::kNoCounters — but the portable timers and the PAPI 3 memory
// utilization extensions are fully functional, backed by clock_gettime,
// the TSC where available, getrusage, and /proc.  This mirrors how PAPI
// degraded gracefully on unpatched systems, and it is what the timer
// benchmarks (E10) measure real nanosecond overheads against.
#pragma once

#include "substrate/substrate.h"

namespace papirepro::papi {

class HostSubstrate final : public Substrate {
 public:
  HostSubstrate();

  std::string_view name() const noexcept override { return "host"; }
  std::uint32_t num_counters() const noexcept override { return 0; }

  Result<PresetMapping> preset_mapping(Preset preset) const override;
  Result<pmu::NativeEventCode> native_by_name(
      std::string_view event_name) const override;
  Result<std::string> native_name(
      pmu::NativeEventCode code) const override;

  Result<AllocationInstance> translate_allocation(
      std::span<const pmu::NativeEventCode> events,
      std::span<const int> priorities) const override;

  Status program(std::span<const pmu::NativeEventCode> events,
                 std::span<const std::uint32_t> assignment) override;
  Status start() override;
  Status stop() override;
  Status read(std::span<std::uint64_t> out) override;
  Status reset_counts() override;
  Status set_overflow(std::uint32_t event_index, std::uint64_t threshold,
                      OverflowCallback callback) override;
  Status clear_overflow(std::uint32_t event_index) override;

  std::uint64_t real_usec() const override;
  std::uint64_t real_cycles() const override;
  std::uint64_t virt_usec() const override;

  Result<MemoryInfo> memory_info() const override;

 private:
  std::uint64_t epoch_ns_ = 0;
};

}  // namespace papirepro::papi
