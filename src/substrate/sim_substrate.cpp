#include "substrate/sim_substrate.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "substrate/preset_maps.h"

namespace papirepro::papi {

// ---------------------------------------------------------------------------
// SimCounterContext
// ---------------------------------------------------------------------------

SimCounterContext::SimCounterContext(SimSubstrate& substrate,
                                     sim::Machine& machine)
    : substrate_(substrate),
      machine_(machine),
      platform_(substrate.platform_description()),
      charge_costs_(substrate.options().charge_costs),
      pmu_(platform_, machine) {
  substrate_.register_context(this);
}

SimCounterContext::~SimCounterContext() {
  substrate_.unregister_context(this);
}

void SimCounterContext::charge(std::uint64_t cycles,
                               std::uint32_t pollute_lines) {
  if (charge_costs_) {
    machine_.charge_cycles(cycles, pollute_lines);
  }
}

Status SimCounterContext::program(
    std::span<const pmu::NativeEventCode> events,
    std::span<const std::uint32_t> assignment) {
  if (running_) return Error::kIsRunning;
  if (events.size() != assignment.size()) return Error::kInvalid;

  // Partition physical vs sampled (into reused scratch: slice rotations
  // call program() continually and must not allocate).
  std::vector<pmu::NativeEventCode>& phys_events = scratch_phys_events_;
  std::vector<std::uint32_t>& phys_counters = scratch_phys_counters_;
  std::vector<std::size_t>& sampled_indices = scratch_sampled_indices_;
  phys_events.clear();
  phys_counters.clear();
  sampled_indices.clear();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (assignment[i] >= SimSubstrate::kSampledBase) {
      sampled_indices.push_back(i);
    } else {
      phys_events.push_back(events[i]);
      phys_counters.push_back(assignment[i]);
    }
  }

  if (!sampled_indices.empty() && (!substrate_.estimation_enabled() ||
                                   !platform_.sampling.has_profileme)) {
    return Error::kNoSupport;
  }

  PAPIREPRO_RETURN_IF_ERROR(pmu_.program(phys_events, phys_counters));

  // Build the sampling engine's tracked-signal set: the union of the
  // sampled events' signal terms.
  sampled_terms_.clear();
  if (sampled_indices.empty()) {
    // Keep any existing engine alive but dormant: a multiplexed
    // EventSet will re-program the sampled group shortly, and the
    // engine's RNG/countdown continuity is what keeps slice estimates
    // unbiased.  start()/stop() only touch it when the *current*
    // programming has sampled events.
    if (engine_) engine_->stop();
  } else {
    std::vector<sim::SimEvent>& tracked = scratch_tracked_;
    tracked.clear();
    sampled_terms_.resize(sampled_indices.size());
    for (std::size_t s = 0; s < sampled_indices.size(); ++s) {
      const pmu::NativeEvent* ev =
          platform_.find_event(events[sampled_indices[s]]);
      assert(ev != nullptr && ev->counter_mask == 0);
      for (const pmu::SignalTerm& t : ev->terms) {
        auto it = std::find(tracked.begin(), tracked.end(), t.signal);
        if (it == tracked.end()) {
          if (tracked.size() >= pmu::ProfileMeEngine::kMaxTracked) {
            return Error::kConflict;  // out of sampling slots
          }
          tracked.push_back(t.signal);
          it = tracked.end() - 1;
        }
        sampled_terms_[s].terms.emplace_back(
            static_cast<std::size_t>(it - tracked.begin()), t.multiplier);
      }
    }
    // Reuse a live engine whose tracked set is unchanged (the common
    // case when a multiplexed EventSet reprograms the same group):
    // keeping it preserves the sampling stream's RNG/countdown state,
    // so successive slices see decorrelated sample alignments.
    const bool reuse =
        engine_ != nullptr &&
        std::equal(tracked.begin(), tracked.end(),
                   engine_->tracked().begin(), engine_->tracked().end());
    if (!reuse) {
      engine_ = std::make_unique<pmu::ProfileMeEngine>(
          machine_, tracked, substrate_.options().sample_period,
          substrate_.options().sample_seed,
          platform_.costs.sample_cost_cycles);
    }
  }

  // Apply the counting domain to the freshly-programmed counters.
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (assignment[i] < SimSubstrate::kSampledBase) {
      PAPIREPRO_RETURN_IF_ERROR(
          pmu_.set_domain(assignment[i], domain_mask_));
    }
  }

  events_.assign(events.begin(), events.end());
  assignment_.assign(assignment.begin(), assignment.end());
  return Error::kOk;
}

Status SimCounterContext::set_domain(std::uint32_t domain_mask) {
  if (!valid_domain(domain_mask)) return Error::kInvalid;
  if (running_) return Error::kIsRunning;
  domain_mask_ = domain_mask;
  return Error::kOk;
}

Status SimCounterContext::start() {
  if (running_) return Error::kIsRunning;
  charge(platform_.costs.start_stop_cost_cycles);
  PAPIREPRO_RETURN_IF_ERROR(pmu_.start());
  if (engine_ && !sampled_terms_.empty()) engine_->start();
  running_ = true;
  return Error::kOk;
}

Status SimCounterContext::stop() {
  if (!running_) return Error::kNotRunning;
  charge(platform_.costs.start_stop_cost_cycles);
  PAPIREPRO_RETURN_IF_ERROR(pmu_.stop());
  if (engine_) engine_->stop();
  running_ = false;
  return Error::kOk;
}

Status SimCounterContext::read(std::span<std::uint64_t> out) {
  if (out.size() < events_.size()) return Error::kInvalid;
  charge(platform_.costs.read_cost_cycles,
         platform_.costs.read_pollute_lines);
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (assignment_[i] >= SimSubstrate::kSampledBase) {
      const auto slot = assignment_[i] - SimSubstrate::kSampledBase;
      double v = 0.0;
      for (const auto& [tracked_idx, mult] : sampled_terms_[slot].terms) {
        v += static_cast<double>(mult) * engine_->estimate(tracked_idx);
      }
      out[i] = static_cast<std::uint64_t>(std::llround(v));
    } else {
      auto v = pmu_.read(assignment_[i]);
      if (!v.ok()) return v.error();
      out[i] = v.value();
    }
  }
  return Error::kOk;
}

Status SimCounterContext::reset_counts() {
  pmu_.reset_counts();
  if (engine_ && !sampled_terms_.empty()) engine_->reset();
  return Error::kOk;
}

Status SimCounterContext::set_overflow(std::uint32_t event_index,
                                       std::uint64_t threshold,
                                       OverflowCallback callback,
                                       OverflowDeliveryMode mode) {
  if (event_index >= events_.size() || !callback) return Error::kInvalid;
  if (assignment_[event_index] >= SimSubstrate::kSampledBase) {
    return Error::kNoSupport;
  }
  // A deferred callback only captures the sample into a ring; the
  // counting thread pays the (much cheaper) enqueue cost while the full
  // handler price moves to the aggregator thread.  This is the cost
  // asymmetry behind the paper's sampling-vs-direct-counting gap.
  const std::uint64_t handler_cost =
      mode == OverflowDeliveryMode::kDeferred
          ? platform_.costs.overflow_enqueue_cost_cycles
          : platform_.costs.overflow_handler_cost_cycles;
  auto wrapped = [this, event_index, handler_cost,
                  cb = std::move(callback)](const pmu::OverflowInfo& info) {
    charge(handler_cost);
    cb(SubstrateOverflow{.event_index = event_index,
                         .pc_observed = info.pc_skidded,
                         .pc_precise = info.pc_precise,
                         .has_precise = info.has_precise,
                         .addr = info.addr});
  };
  return pmu_.set_overflow(assignment_[event_index], threshold,
                           std::move(wrapped));
}

Status SimCounterContext::clear_overflow(std::uint32_t event_index) {
  if (event_index >= events_.size()) return Error::kInvalid;
  if (assignment_[event_index] >= SimSubstrate::kSampledBase) {
    return Error::kNoSupport;
  }
  return pmu_.clear_overflow(assignment_[event_index]);
}

Result<int> SimCounterContext::add_timer(std::uint64_t period_cycles,
                                         TimerCallback callback) {
  if (period_cycles == 0) return Error::kInvalid;
  return machine_.add_cycle_timer(
      period_cycles, [cb = std::move(callback)](sim::Machine&) { cb(); });
}

Status SimCounterContext::cancel_timer(int id) {
  machine_.cancel_timer(id);
  return Error::kOk;
}

// ---------------------------------------------------------------------------
// SimSubstrate
// ---------------------------------------------------------------------------

SimSubstrate::SimSubstrate(sim::Machine& machine,
                           const pmu::PlatformDescription& platform,
                           const SimSubstrateOptions& options)
    : machine_(machine), platform_(platform), options_(options) {}

SimSubstrate::~SimSubstrate() = default;

Result<std::unique_ptr<CounterContext>> SimSubstrate::create_context() {
  return std::unique_ptr<CounterContext>(
      new SimCounterContext(*this, machine_for_current_thread()));
}

void SimSubstrate::bind_thread_machine(sim::Machine& machine) {
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  thread_machines_[std::this_thread::get_id()] = &machine;
}

void SimSubstrate::unbind_thread_machine() {
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  thread_machines_.erase(std::this_thread::get_id());
}

sim::Machine& SimSubstrate::machine_for_current_thread() const {
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  const auto it = thread_machines_.find(std::this_thread::get_id());
  return it != thread_machines_.end() ? *it->second : machine_;
}

void SimSubstrate::register_context(SimCounterContext* context) {
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  live_contexts_[std::this_thread::get_id()].push_back(context);
}

void SimSubstrate::unregister_context(SimCounterContext* context) {
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  for (auto& [tid, contexts] : live_contexts_) {
    contexts.erase(
        std::remove(contexts.begin(), contexts.end(), context),
        contexts.end());
  }
}

const pmu::ProfileMeEngine* SimSubstrate::sampling_engine() const noexcept {
  const std::lock_guard<std::mutex> lock(threads_mutex_);
  const auto it = live_contexts_.find(std::this_thread::get_id());
  if (it == live_contexts_.end()) return nullptr;
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (const auto* engine = (*rit)->sampling_engine()) return engine;
  }
  return nullptr;
}

Result<PresetMapping> SimSubstrate::preset_mapping(Preset preset) const {
  return map_preset(platform_, preset);
}

Result<pmu::NativeEventCode> SimSubstrate::native_by_name(
    std::string_view event_name) const {
  const pmu::NativeEvent* ev = platform_.find_event(event_name);
  if (ev == nullptr) return Error::kNoEvent;
  return ev->code;
}

Result<std::string> SimSubstrate::native_name(
    pmu::NativeEventCode code) const {
  const pmu::NativeEvent* ev = platform_.find_event(code);
  if (ev == nullptr) return Error::kNoEvent;
  return ev->name;
}

Result<AllocationInstance> SimSubstrate::translate_allocation(
    std::span<const pmu::NativeEventCode> events,
    std::span<const int> priorities) const {
  AllocationInstance inst;
  inst.num_counters = platform_.num_counters;
  inst.priority.assign(priorities.begin(), priorities.end());

  if (!platform_.group_constrained()) {
    for (const auto code : events) {
      const pmu::NativeEvent* ev = platform_.find_event(code);
      if (ev == nullptr) return Error::kNoEvent;
      inst.allowed.push_back(ev->counter_mask &
                             ((1u << platform_.num_counters) - 1));
    }
    return inst;
  }

  // Group-constrained: translate against the first group containing all
  // requested events (each event then has exactly one legal counter —
  // its slot).  No group => unsatisfiable instance signalled as conflict.
  for (const pmu::CounterGroup& g : platform_.groups) {
    std::vector<std::uint32_t> allowed;
    allowed.reserve(events.size());
    bool all = true;
    for (const auto code : events) {
      const auto it = std::find(g.slots.begin(), g.slots.end(), code);
      if (it == g.slots.end()) {
        all = false;
        break;
      }
      allowed.push_back(
          1u << static_cast<std::uint32_t>(it - g.slots.begin()));
    }
    if (all) {
      inst.allowed = std::move(allowed);
      return inst;
    }
  }
  return Error::kConflict;
}

Result<std::vector<std::uint32_t>> SimSubstrate::allocate(
    std::span<const pmu::NativeEventCode> events,
    std::span<const int> priorities) const {
  // Split estimation-serviced events (counter_mask == 0) from countable
  // ones; only the countable subset goes through the matcher.
  std::vector<pmu::NativeEventCode> countable;
  std::vector<int> countable_prio;
  std::vector<std::size_t> countable_pos, sampled_pos;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const pmu::NativeEvent* ev = platform_.find_event(events[i]);
    if (ev == nullptr) return Error::kNoEvent;
    if (ev->counter_mask == 0) {
      if (!estimation_enabled() || !platform_.sampling.has_profileme) {
        return Error::kConflict;  // not countable without sampling mode
      }
      sampled_pos.push_back(i);
    } else {
      countable.push_back(events[i]);
      if (!priorities.empty()) countable_prio.push_back(priorities[i]);
      countable_pos.push_back(i);
    }
  }

  std::vector<std::uint32_t> out(events.size());
  for (std::size_t s = 0; s < sampled_pos.size(); ++s) {
    out[sampled_pos[s]] = kSampledBase + static_cast<std::uint32_t>(s);
  }
  if (!countable.empty()) {
    auto sub = Substrate::allocate(countable, countable_prio);
    if (!sub.ok()) return sub.error();
    for (std::size_t i = 0; i < countable_pos.size(); ++i) {
      out[countable_pos[i]] = sub.value()[i];
    }
  }
  return out;
}

Status SimSubstrate::set_estimation(bool enabled) {
  if (!platform_.sampling.has_profileme) return Error::kNoSupport;
  estimation_.store(enabled, std::memory_order_relaxed);
  allocation_generation_.fetch_add(1, std::memory_order_relaxed);
  return Error::kOk;
}

Result<int> SimSubstrate::add_timer(std::uint64_t period_cycles,
                                    TimerCallback callback) {
  if (period_cycles == 0) return Error::kInvalid;
  return machine_.add_cycle_timer(
      period_cycles, [cb = std::move(callback)](sim::Machine&) { cb(); });
}

Status SimSubstrate::cancel_timer(int id) {
  machine_.cancel_timer(id);
  return Error::kOk;
}

Result<MemoryInfo> SimSubstrate::memory_info() const {
  constexpr std::uint64_t kNodeBytes = 1ULL << 30;  // 1 GiB node
  MemoryInfo info;
  info.total_bytes = kNodeBytes;
  info.process_resident_bytes = machine_.memory().bytes_touched();
  info.process_peak_bytes = info.process_resident_bytes;
  info.available_bytes =
      kNodeBytes > info.process_resident_bytes
          ? kNodeBytes - info.process_resident_bytes
          : 0;
  info.page_size_bytes = sim::kPageSize;
  info.page_faults = machine_.memory().pages_touched();
  return info;
}

}  // namespace papirepro::papi
