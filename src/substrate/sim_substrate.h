// Substrate implementation for the four simulated platforms.  Counter
// programming lives in SimCounterContext objects, each owning a private
// PmuModel attached to one sim::Machine — so N machines (one per
// simulated "rank") can be driven from N threads concurrently, each with
// its own running EventSet.  The context charges the platform's
// system-call cost model on every counter access (the source of the
// "up to 30 %" direct-counting overhead), provides the cycle-timer
// service the multiplexing layer needs, and — on sim-alpha — services
// estimation-mode events from a ProfileMe sampling engine (the DADD
// behaviour: counts estimated from samples at 1-2 % overhead).
//
// Thread model: the substrate is constructed over a *primary* machine
// (the single-rank case).  A thread driving its own machine calls
// bind_thread_machine() first; create_context() then binds the calling
// thread's machine, falling back to the primary.  Each machine must only
// ever be touched by the thread that runs it.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pmu/pmu.h"
#include "pmu/sampling.h"
#include "substrate/substrate.h"

namespace papirepro::papi {

struct SimSubstrateOptions {
  /// Mean instruction gap between ProfileMe samples.
  std::uint64_t sample_period = 512;
  std::uint64_t sample_seed = 0x5eed5a3715ULL;
  /// When false, counter accesses are free — used by experiments that
  /// need overhead-less reference counts.
  bool charge_costs = true;
};

class SimSubstrate;

/// One programmable counter file over one simulated machine.
class SimCounterContext final : public CounterContext {
 public:
  SimCounterContext(SimSubstrate& substrate, sim::Machine& machine);
  ~SimCounterContext() override;

  Status program(std::span<const pmu::NativeEventCode> events,
                 std::span<const std::uint32_t> assignment) override;
  Status start() override;
  Status stop() override;
  Status read(std::span<std::uint64_t> out) override;
  Status reset_counts() override;
  Status set_overflow(std::uint32_t event_index, std::uint64_t threshold,
                      OverflowCallback callback,
                      OverflowDeliveryMode mode =
                          OverflowDeliveryMode::kSynchronous) override;
  Status clear_overflow(std::uint32_t event_index) override;
  Status set_domain(std::uint32_t domain_mask) override;
  bool running() const noexcept override { return running_; }

  std::uint64_t cycles() const override { return machine_.cycles(); }
  /// Everything charge() billed to the bound machine — counter access
  /// costs, overflow delivery, and the ProfileMe sampling engine all
  /// accumulate there, so an EventSet can attribute its own overhead.
  std::uint64_t overhead_cycles() const noexcept override {
    return machine_.overhead_cycles();
  }
  Result<int> add_timer(std::uint64_t period_cycles,
                        TimerCallback callback) override;
  Status cancel_timer(int id) override;

  /// Sample buffer access for tools (DCPI-style precise profiling);
  /// nullptr until estimation events are programmed and started.
  const pmu::ProfileMeEngine* sampling_engine() const noexcept {
    return engine_.get();
  }
  sim::Machine& machine() noexcept { return machine_; }
  const pmu::PmuModel& pmu() const noexcept { return pmu_; }

 private:
  void charge(std::uint64_t cycles, std::uint32_t pollute_lines = 0);

  SimSubstrate& substrate_;
  sim::Machine& machine_;
  const pmu::PlatformDescription& platform_;
  /// options().charge_costs, latched at construction (options are
  /// immutable): charge() is on every counter access, and chasing
  /// substrate_ -> options_ per read costs more than the charge check.
  const bool charge_costs_;
  pmu::PmuModel pmu_;

  // Programming state.
  std::vector<pmu::NativeEventCode> events_;
  std::vector<std::uint32_t> assignment_;
  /// Per sampled slot: (tracked signal index, multiplier) terms.
  struct SampledTermList {
    std::vector<std::pair<std::size_t, std::uint32_t>> terms;
  };
  std::vector<SampledTermList> sampled_terms_;
  std::unique_ptr<pmu::ProfileMeEngine> engine_;
  bool running_ = false;
  std::uint32_t domain_mask_ = domain::kAll;

  /// program() scratch, reused across calls: a multiplexed EventSet
  /// reprograms this context on every slice rotation, so the partition
  /// buffers must not be reallocated per call.
  std::vector<pmu::NativeEventCode> scratch_phys_events_;
  std::vector<std::uint32_t> scratch_phys_counters_;
  std::vector<std::size_t> scratch_sampled_indices_;
  std::vector<sim::SimEvent> scratch_tracked_;
};

class SimSubstrate final : public Substrate {
 public:
  /// Assignment sentinel: events serviced by sampling estimation carry
  /// kSampledBase + tracked-slot instead of a physical counter index.
  static constexpr std::uint32_t kSampledBase = 0x80000000u;

  SimSubstrate(sim::Machine& machine,
               const pmu::PlatformDescription& platform,
               const SimSubstrateOptions& options = {});
  ~SimSubstrate() override;

  // --- identity ---
  std::string_view name() const noexcept override {
    return platform_.name;
  }
  std::uint32_t num_counters() const noexcept override {
    return platform_.num_counters;
  }
  const pmu::PlatformDescription* platform() const noexcept override {
    return &platform_;
  }

  // --- context factory / thread-machine binding ---
  Result<std::unique_ptr<CounterContext>> create_context() override;
  /// Binds `machine` as the calling thread's counter domain: contexts
  /// created by this thread attach to it.  A thread may rebind.
  void bind_thread_machine(sim::Machine& machine);
  void unbind_thread_machine();
  /// The machine create_context() would bind for the calling thread.
  sim::Machine& machine_for_current_thread() const;

  // --- event namespace ---
  Result<PresetMapping> preset_mapping(Preset preset) const override;
  Result<pmu::NativeEventCode> native_by_name(
      std::string_view event_name) const override;
  Result<std::string> native_name(
      pmu::NativeEventCode code) const override;

  // --- allocation ---
  Result<AllocationInstance> translate_allocation(
      std::span<const pmu::NativeEventCode> events,
      std::span<const int> priorities) const override;
  Result<std::vector<std::uint32_t>> allocate(
      std::span<const pmu::NativeEventCode> events,
      std::span<const int> priorities) const override;
  std::uint64_t allocation_generation() const noexcept override {
    return allocation_generation_.load(std::memory_order_relaxed);
  }

  // --- estimation (sim-alpha) ---
  bool supports_estimation() const noexcept override {
    return platform_.sampling.has_profileme;
  }
  Status set_estimation(bool enabled) override;
  bool estimation_enabled() const noexcept {
    return estimation_.load(std::memory_order_relaxed);
  }
  /// Sampling engine of the calling thread's most recent live context
  /// (DCPI-style tools); nullptr when none has estimation events.
  const pmu::ProfileMeEngine* sampling_engine() const noexcept;

  // --- timers (primary machine's clock) ---
  std::uint64_t real_usec() const override { return machine_.microseconds(); }
  std::uint64_t real_cycles() const override { return machine_.cycles(); }
  std::uint64_t virt_usec() const override { return machine_.microseconds(); }

  bool supports_multiplex() const noexcept override { return true; }
  Result<int> add_timer(std::uint64_t period_cycles,
                        TimerCallback callback) override;
  Status cancel_timer(int id) override;

  // --- memory ---
  Result<MemoryInfo> memory_info() const override;

  sim::Machine& machine() noexcept { return machine_; }
  const SimSubstrateOptions& options() const noexcept { return options_; }
  const pmu::PlatformDescription& platform_description() const noexcept {
    return platform_;
  }

 private:
  friend class SimCounterContext;
  void register_context(SimCounterContext* context);
  void unregister_context(SimCounterContext* context);

  sim::Machine& machine_;
  const pmu::PlatformDescription& platform_;
  SimSubstrateOptions options_;
  std::atomic<bool> estimation_{false};
  /// Bumped by set_estimation(): allocation outcomes depend on the mode.
  std::atomic<std::uint64_t> allocation_generation_{0};

  mutable std::mutex threads_mutex_;
  std::unordered_map<std::thread::id, sim::Machine*> thread_machines_;
  /// Live contexts per thread, in creation order (newest last).
  std::unordered_map<std::thread::id, std::vector<SimCounterContext*>>
      live_contexts_;
};

}  // namespace papirepro::papi
