// Substrate implementation for the four simulated platforms.  Drives a
// PmuModel attached to a Machine, charges the platform's system-call
// cost model on every counter access (the source of the "up to 30 %"
// direct-counting overhead), provides the cycle-timer service the
// multiplexing layer needs, and — on sim-alpha — services
// estimation-mode events from a ProfileMe sampling engine (the DADD
// behaviour: counts estimated from samples at 1-2 % overhead).
#pragma once

#include <memory>
#include <vector>

#include "pmu/pmu.h"
#include "pmu/sampling.h"
#include "substrate/substrate.h"

namespace papirepro::papi {

struct SimSubstrateOptions {
  /// Mean instruction gap between ProfileMe samples.
  std::uint64_t sample_period = 512;
  std::uint64_t sample_seed = 0x5eed5a3715ULL;
  /// When false, counter accesses are free — used by experiments that
  /// need overhead-less reference counts.
  bool charge_costs = true;
};

class SimSubstrate final : public Substrate {
 public:
  /// Assignment sentinel: events serviced by sampling estimation carry
  /// kSampledBase + tracked-slot instead of a physical counter index.
  static constexpr std::uint32_t kSampledBase = 0x80000000u;

  SimSubstrate(sim::Machine& machine,
               const pmu::PlatformDescription& platform,
               const SimSubstrateOptions& options = {});
  ~SimSubstrate() override;

  // --- identity ---
  std::string_view name() const noexcept override {
    return platform_.name;
  }
  std::uint32_t num_counters() const noexcept override {
    return platform_.num_counters;
  }
  const pmu::PlatformDescription* platform() const noexcept override {
    return &platform_;
  }

  // --- event namespace ---
  Result<PresetMapping> preset_mapping(Preset preset) const override;
  Result<pmu::NativeEventCode> native_by_name(
      std::string_view event_name) const override;
  Result<std::string> native_name(
      pmu::NativeEventCode code) const override;

  // --- allocation ---
  Result<AllocationInstance> translate_allocation(
      std::span<const pmu::NativeEventCode> events,
      std::span<const int> priorities) const override;
  Result<std::vector<std::uint32_t>> allocate(
      std::span<const pmu::NativeEventCode> events,
      std::span<const int> priorities) const override;

  // --- counter control ---
  Status program(std::span<const pmu::NativeEventCode> events,
                 std::span<const std::uint32_t> assignment) override;
  Status start() override;
  Status stop() override;
  Status read(std::span<std::uint64_t> out) override;
  Status reset_counts() override;
  Status set_overflow(std::uint32_t event_index, std::uint64_t threshold,
                      OverflowCallback callback) override;
  Status clear_overflow(std::uint32_t event_index) override;
  Status set_domain(std::uint32_t domain_mask) override;

  // --- estimation (sim-alpha) ---
  bool supports_estimation() const noexcept override {
    return platform_.sampling.has_profileme;
  }
  Status set_estimation(bool enabled) override;
  bool estimation_enabled() const noexcept { return estimation_; }
  /// Sample buffer access for tools (DCPI-style precise profiling);
  /// nullptr until estimation events are programmed and started.
  const pmu::ProfileMeEngine* sampling_engine() const noexcept {
    return engine_.get();
  }

  // --- timers ---
  std::uint64_t real_usec() const override { return machine_.microseconds(); }
  std::uint64_t real_cycles() const override { return machine_.cycles(); }
  std::uint64_t virt_usec() const override { return machine_.microseconds(); }

  bool supports_multiplex() const noexcept override { return true; }
  Result<int> add_timer(std::uint64_t period_cycles,
                        TimerCallback callback) override;
  Status cancel_timer(int id) override;

  // --- memory ---
  Result<MemoryInfo> memory_info() const override;

  sim::Machine& machine() noexcept { return machine_; }
  const pmu::PmuModel& pmu() const noexcept { return pmu_; }

 private:
  void charge(std::uint64_t cycles, std::uint32_t pollute_lines = 0);

  sim::Machine& machine_;
  const pmu::PlatformDescription& platform_;
  SimSubstrateOptions options_;
  pmu::PmuModel pmu_;

  // Programming state.
  std::vector<pmu::NativeEventCode> events_;
  std::vector<std::uint32_t> assignment_;
  /// Per sampled slot: (tracked signal index, multiplier) terms.
  struct SampledTermList {
    std::vector<std::pair<std::size_t, std::uint32_t>> terms;
  };
  std::vector<SampledTermList> sampled_terms_;
  std::unique_ptr<pmu::ProfileMeEngine> engine_;
  bool estimation_ = false;
  bool running_ = false;
  std::uint32_t domain_mask_ = domain::kAll;
};

}  // namespace papirepro::papi
