// Non-CPU measurement components: the PAPI-C motivation was exactly
// that "the substrate" stopped being one thing — memory controllers,
// network adapters, and other off-core units expose their own counter
// files with their own budgets and namespaces.  This module provides
// two simulated ones, registered as components next to the CPU core
// substrate:
//
//   * MemBandwidthSubstrate ("mem::") — memory/uncore traffic counters
//     derived from the simulated cache hierarchy and page map (read
//     bandwidth = L2 fills x line size, L2 traffic, resident bytes).
//   * NetworkSubstrate ("net::") — NIC-style message counters backed by
//     a sim::CommWorld's per-rank statistics (messages/words/bytes
//     sent and received, receive-wait retries).
//
// Both are *free-running* counter files: the sources (cache stats, rank
// stats) increment monotonically for the life of the machine, so the
// contexts latch a base sample at start() and report deltas — the same
// discipline a real uncore PMU driver uses over its MSRs.  Counter
// access is free (no syscall cost model): these units are polled out of
// band, not via the instrumented process.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/comm.h"
#include "sim/machine.h"
#include "substrate/substrate.h"

namespace papirepro::papi {

/// Native event codes in the "mem" component namespace.  Codes are
/// small integers — components own independent namespaces, so they may
/// (and do) collide with CPU native codes; EventSet keys natives on
/// (component, code).
namespace mem_events {
inline constexpr pmu::NativeEventCode kBandwidthRd = 0x01;
inline constexpr pmu::NativeEventCode kL2Traffic = 0x02;
inline constexpr pmu::NativeEventCode kL2Accesses = 0x03;
inline constexpr pmu::NativeEventCode kL2Misses = 0x04;
inline constexpr pmu::NativeEventCode kPagesTouched = 0x05;
inline constexpr pmu::NativeEventCode kResidentBytes = 0x06;
}  // namespace mem_events

/// Native event codes in the "net" component namespace.
namespace net_events {
inline constexpr pmu::NativeEventCode kMsgSent = 0x01;
inline constexpr pmu::NativeEventCode kMsgRecv = 0x02;
inline constexpr pmu::NativeEventCode kWordsSent = 0x03;
inline constexpr pmu::NativeEventCode kWordsRecv = 0x04;
inline constexpr pmu::NativeEventCode kBytesSent = 0x05;
inline constexpr pmu::NativeEventCode kWaitRetries = 0x06;
}  // namespace net_events

/// Shared shape of both component counter files: program a list of
/// native codes, latch base samples at start(), report monotonic deltas
/// on read(), freeze on stop().  Derived classes supply the source
/// sample for one code.  Overflow interrupts are not supported (these
/// units have no interrupt line — the wrong-component error path the
/// portable layer must surface as kNoSupport).
class DeltaCounterContext : public CounterContext {
 public:
  explicit DeltaCounterContext(std::uint32_t num_counters)
      : num_counters_(num_counters) {}

  Status program(std::span<const pmu::NativeEventCode> events,
                 std::span<const std::uint32_t> assignment) override;
  Status start() override;
  Status stop() override;
  Status read(std::span<std::uint64_t> out) override;
  Status reset_counts() override;
  Status set_overflow(std::uint32_t event_index, std::uint64_t threshold,
                      OverflowCallback callback,
                      OverflowDeliveryMode mode =
                          OverflowDeliveryMode::kSynchronous) override;
  Status clear_overflow(std::uint32_t event_index) override;
  Status set_domain(std::uint32_t domain_mask) override;
  bool running() const noexcept override { return running_; }

 protected:
  /// Current value of the free-running source counter behind `code`.
  virtual std::uint64_t sample(pmu::NativeEventCode code) const = 0;
  virtual bool valid_code(pmu::NativeEventCode code) const noexcept = 0;

 private:
  std::uint32_t num_counters_;
  // Reused across program() calls so reprogramming never reallocates.
  std::vector<pmu::NativeEventCode> events_;
  std::vector<std::uint64_t> base_;
  std::vector<std::uint64_t> frozen_;
  bool running_ = false;
};

/// Memory/uncore bandwidth component over one simulated machine's cache
/// hierarchy and page map.  Thread model mirrors SimSubstrate: threads
/// driving their own machine bind it first; contexts attach to the
/// calling thread's machine, falling back to the primary.
class MemBandwidthSubstrate final : public Substrate {
 public:
  explicit MemBandwidthSubstrate(sim::Machine& primary)
      : machine_(primary) {}

  std::string_view name() const noexcept override { return "sim-mem"; }
  std::uint32_t num_counters() const noexcept override { return 4; }

  Result<std::unique_ptr<CounterContext>> create_context() override;
  void bind_thread_machine(sim::Machine& machine);
  void unbind_thread_machine();
  sim::Machine& machine_for_current_thread() const;

  Result<PresetMapping> preset_mapping(Preset preset) const override;
  Result<pmu::NativeEventCode> native_by_name(
      std::string_view event_name) const override;
  Result<std::string> native_name(
      pmu::NativeEventCode code) const override;
  Result<std::string> native_description(
      pmu::NativeEventCode code) const override;

  Result<AllocationInstance> translate_allocation(
      std::span<const pmu::NativeEventCode> events,
      std::span<const int> priorities) const override;
  std::uint64_t allocation_generation() const noexcept override {
    return allocation_generation_.load(std::memory_order_relaxed);
  }
  /// Test hook: models an uncore reconfiguration that changes the
  /// allocation rules, so per-component cache invalidation is testable.
  void bump_allocation_generation() noexcept {
    allocation_generation_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t real_usec() const override {
    return machine_.microseconds();
  }
  std::uint64_t real_cycles() const override { return machine_.cycles(); }
  std::uint64_t virt_usec() const override {
    return machine_.microseconds();
  }

  Result<MemoryInfo> memory_info() const override;

 private:
  sim::Machine& machine_;  ///< primary (fallback) machine
  mutable std::mutex threads_mutex_;
  std::unordered_map<std::thread::id, sim::Machine*> thread_machines_;
  std::atomic<std::uint64_t> allocation_generation_{0};
};

/// Network component over a sim::CommWorld: per-rank message counters
/// as a NIC-style counter file.  A thread driving one rank binds its
/// rank id first; contexts attach to the calling thread's rank, falling
/// back to rank 0.  RankStats entries are written only by the owning
/// rank's thread, so a context must be used on the thread bound to its
/// rank (the same single-writer contract as sim::Machine).
class NetworkSubstrate final : public Substrate {
 public:
  explicit NetworkSubstrate(sim::CommWorld& world) : world_(world) {}

  std::string_view name() const noexcept override { return "sim-net"; }
  std::uint32_t num_counters() const noexcept override { return 4; }

  Result<std::unique_ptr<CounterContext>> create_context() override;
  void bind_thread_rank(std::size_t rank);
  void unbind_thread_rank();
  std::size_t rank_for_current_thread() const;

  Result<PresetMapping> preset_mapping(Preset preset) const override;
  Result<pmu::NativeEventCode> native_by_name(
      std::string_view event_name) const override;
  Result<std::string> native_name(
      pmu::NativeEventCode code) const override;
  Result<std::string> native_description(
      pmu::NativeEventCode code) const override;

  Result<AllocationInstance> translate_allocation(
      std::span<const pmu::NativeEventCode> events,
      std::span<const int> priorities) const override;

  std::uint64_t real_usec() const override {
    return world_.rank_machine(0).microseconds();
  }
  std::uint64_t real_cycles() const override {
    return world_.rank_machine(0).cycles();
  }
  std::uint64_t virt_usec() const override {
    return world_.rank_machine(0).microseconds();
  }

  Result<MemoryInfo> memory_info() const override {
    return Error::kNoSupport;
  }

 private:
  sim::CommWorld& world_;
  mutable std::mutex threads_mutex_;
  std::unordered_map<std::thread::id, std::size_t> thread_ranks_;
};

}  // namespace papirepro::papi
