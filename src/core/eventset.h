// EventSets: "PAPI manages events in user-defined sets called EventSets
// ... managed explicitly by the user in the low-level interface."
// An EventSet owns a list of preset/native events, expands them into the
// unique native events they require (shared natives are counted once and
// reused by every derived event that references them), allocates those
// natives onto physical counters via the bipartite matcher, and controls
// counting.  A set may span components: natives are grouped into
// per-component slices (kept sorted by component id), each programmed
// onto that component's CounterContext with its own allocation and
// counter-width folding; start()/read()/stop() fan out across the
// slices in ascending component order (stop descends), so snapshots
// have one coherent ordering.  Multiplexing is *opt-in* (enable_multiplex) per the mailing
// list decision recorded in Section 2: naive transparent multiplexing
// could silently return unconverged estimates, so the user must operate
// at the low level to turn it on.  Overlapping EventSets are not
// supported (the PAPI 3 simplification), but the rule is per *thread*:
// start() claims the calling thread's CounterContext from the Library,
// so one EventSet runs per thread at a time, and N threads may run N
// EventSets concurrently.  An EventSet itself is not thread-safe — it
// belongs to whichever thread started it until stop().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/events.h"
#include "core/multiplex.h"
#include "core/profile.h"
#include "core/sample_ring.h"
#include "substrate/substrate.h"

namespace papirepro::papi {

class Library;
struct Component;

/// Degradation-ladder flags: loud markers that counting continued in a
/// reduced mode after a substrate fault, set on the EventSet so callers
/// can distinguish full-fidelity results from degraded ones (silently
/// wrong counts are worse than errors).
namespace degradation {
/// Multiplex timer service failed: slices rotate on read()/accum()
/// instead of a timer, so estimates need periodic reads to converge.
inline constexpr std::uint32_t kMuxSequential = 0x1;
}  // namespace degradation

/// Per-event validity flags returned by read_ex(): 0 means the value is
/// a live, trusted reading; any set bit marks reduced fidelity.  Flags
/// OR together (a quarantined slice's value is also stale).
namespace read_flag {
inline constexpr std::uint32_t kValid = 0;
/// The value is the last latched good reading, not a fresh one (the
/// event's slice failed this read).
inline constexpr std::uint32_t kStale = 0x1;
/// The event's component is quarantined by the health monitor.
inline constexpr std::uint32_t kQuarantined = 0x2;
/// The counter regressed non-monotonically beyond its wrap mask at some
/// point since start()/reset(); totals may be wrong.  Sticky until
/// reset().
inline constexpr std::uint32_t kSuspect = 0x4;
/// The value was served from the set's cross-thread publication (the
/// seqlock snapshot its owning thread refreshes at start/read/stop)
/// rather than a live substrate read — it may lag the live counters by
/// up to one publication interval.  Batched reads set this for every
/// set not running on the calling thread.
inline constexpr std::uint32_t kPublished = 0x8;
/// No value was available for this slot: the event is beyond the
/// publication capacity, or the set never ran.  The value reads 0.
inline constexpr std::uint32_t kNoData = 0x10;
}  // namespace read_flag

/// One set's result within a batched read (Library::read_many /
/// Library::snapshot_all): where its values landed in the shared values
/// buffer, its per-set status, and the OR-fold of its events'
/// read_flag::* bits.
struct SnapshotEntry {
  int handle = 0;
  std::uint32_t first_value = 0;  ///< index into the shared values buffer
  std::uint32_t num_values = 0;
  Error status = Error::kOk;
  std::uint32_t flags = 0;
  /// Substrate cycle stamp of the moment the values were produced: the
  /// publication time for kPublished entries, the read time for live
  /// ones.  A collector ages-out ranks whose stamps stop advancing —
  /// without it a STALE entry from a dead rank is indistinguishable
  /// from a fresh one.  0 when the set never ran.
  std::uint64_t pub_cycles = 0;
};

/// Context passed to user overflow handlers.
struct OverflowEvent {
  EventId event;
  /// PC as observed by the interrupt handler (skidded on out-of-order
  /// platforms — "several instructions or even basic blocks removed").
  std::uint64_t pc_observed = 0;
  /// Hardware-assisted precise PC, when the platform provides one.
  std::uint64_t pc_precise = 0;
  bool has_precise = false;
  std::uint64_t addr = 0;
};

class EventSet {
 public:
  enum class State : std::uint8_t { kStopped, kRunning };

  using OverflowHandler = std::function<void(EventSet&, const OverflowEvent&)>;

  EventSet(const EventSet&) = delete;
  EventSet& operator=(const EventSet&) = delete;
  ~EventSet();

  int handle() const noexcept { return handle_; }
  State state() const noexcept { return state_; }
  bool running() const noexcept { return state_ == State::kRunning; }

  // --- event membership ---
  Status add_event(EventId id);
  Status add_preset(Preset p) { return add_event(EventId::preset(p)); }
  Status add_native(pmu::NativeEventCode c) {
    return add_event(EventId::native(c));
  }
  /// Add by "PAPI_*" preset name or platform native name.
  Status add_named(std::string_view name);
  Status remove_event(EventId id);
  std::size_t num_events() const noexcept { return entries_.size(); }
  std::vector<EventId> events() const;

  // --- multiplexing (explicitly enabled; see header comment) ---
  Status enable_multiplex(std::uint64_t slice_cycles = kDefaultMuxSliceCycles);
  bool multiplexed() const noexcept { return multiplex_; }
  /// Number of time-sliced hardware groups (1 when not multiplexed).
  std::size_t num_mux_groups() const noexcept {
    return multiplex_ ? mux_plans_.size() : 1;
  }

  /// Counting domain for this set's counters (PAPI_set_domain):
  /// domain::kUser excludes measurement-infrastructure cycles,
  /// domain::kKernel isolates them, domain::kAll (default) counts both.
  Status set_domain(std::uint32_t domain_mask);
  std::uint32_t counting_domain() const noexcept { return domain_mask_; }

  /// degradation::* flags applied since the last start() (0 = none).
  std::uint32_t degradations() const noexcept { return degradations_; }

  // --- self-overhead attribution ---
  /// Cycles the substrate charged to measurement infrastructure during
  /// this set's runs (counter access costs, overflow delivery, sampling
  /// engines); includes the live run so far.  0 where the substrate
  /// cannot attribute its own cost.
  std::uint64_t overhead_cycles() const noexcept;
  /// Total cycles this set's runs have spanned, start() to stop(),
  /// including the live run so far.
  std::uint64_t measured_cycles() const noexcept;
  /// overhead_cycles() / measured_cycles(): the paper's "up to ~30 %
  /// direct counting vs 1-2 % sampling" finding as a queryable metric.
  /// 0 before the first start().
  double overhead_ratio() const noexcept;

  // --- counting control ---
  Status start();
  /// Stops counting; if `out` is non-empty it receives the final values.
  Status stop(std::span<long long> out = {});
  Status read(std::span<long long> out);
  /// Partial-failure read for spanning sets: values from healthy
  /// component slices are delivered normally; a failing or quarantined
  /// slice contributes its last latched good values instead of failing
  /// the whole read, and `flags[i]` carries the read_flag::* bits for
  /// event i (0 = fully valid).  Returns kOk as long as the read could
  /// be serviced at all (flags tell the fidelity story); argument-size
  /// and not-running errors still surface as before.
  Status read_ex(std::span<long long> out, std::span<std::uint32_t> flags);
  /// Adds current values into `inout` and resets the counters.
  Status accum(std::span<long long> inout);
  Status reset();

  /// Batched read over `sets` (all from the same Library): one
  /// thread-state resolve and one epoch pin amortized across every set.
  /// Sets running on the calling thread are read live; all others are
  /// served from their seqlock publication (read_flag::kPublished).
  /// Values pack consecutively per set into `values`; `entries[i]`
  /// records set i's window, status, and flags.  kInvalid when entries
  /// is smaller than sets, the sets span libraries, or values runs out
  /// of capacity.  Zero-allocation.
  static Status read_many(std::span<EventSet* const> sets,
                          std::span<long long> values,
                          std::span<SnapshotEntry> entries,
                          std::size_t* values_used = nullptr);

  // --- overflow dispatch ---
  /// Arms overflow on `id` (must be a non-derived member event; not
  /// available while multiplexing).  `threshold` counts per interrupt.
  /// Whether dispatch runs synchronously in the counting thread or via
  /// the library's asynchronous sampling pipeline is decided at start()
  /// from the library's SamplingConfig.
  Status set_overflow(EventId id, std::uint64_t threshold,
                      OverflowHandler handler);
  /// Removes the overflow config for `id`.  Safe while running: the
  /// substrate is disarmed first, then (in async mode) pending ring
  /// samples are flushed, so no dispatch for `id` occurs after return.
  Status clear_overflow(EventId id);

  /// True while this run dispatches overflows through the async ring.
  bool async_sampling_active() const noexcept { return async_active_; }
  /// The run's sample ring (null when sync or never started async).
  const SampleRing* sample_ring() const noexcept {
    return sample_ring_.get();
  }

  // --- SVR4-compatible statistical profiling (PAPI_profil) ---
  /// Histograms the PC observed at each overflow of `id` into `buffer`.
  /// With `prefer_precise`, EAR-style precise addresses are used when the
  /// hardware provides them; otherwise the skidded interrupt PC is
  /// bucketed — the difference is experiment E6.
  Status profil(ProfileBuffer& buffer, EventId id, std::uint64_t threshold,
                bool prefer_precise = true);
  Status profil_stop(EventId id);

 private:
  friend class Library;
  EventSet(Library& library, int handle);

  struct TermRef {
    std::size_t native_index;
    int coefficient;
  };
  struct Entry {
    EventId id;
    std::vector<TermRef> terms;
  };
  struct OverflowConfig {
    EventId id;
    std::uint64_t threshold;
    OverflowHandler handler;
    ProfileBuffer* profile = nullptr;  ///< non-null for profil()
    bool prefer_precise = true;
    /// Set by clear_overflow(): an interrupt already in flight at the
    /// disarm (the PMU copies the handler when it schedules delivery)
    /// still lands, but dispatch drops it — clear means clear, exactly.
    /// Atomic because the async aggregator reads it off-thread.
    std::atomic<bool> retired{false};
  };
  struct MuxGroupState {
    std::vector<std::uint64_t> accum;  ///< per member
    std::uint64_t active_cycles = 0;
  };
  /// One component's contiguous share of natives_: its allocation, its
  /// thread context for the current run, and its counter-width mask.
  /// Slices are kept sorted ascending by component id — the fan-out
  /// order for start/read (stop descends).
  struct ComponentSlice {
    std::uint32_t component = 0;
    std::size_t offset = 0;  ///< into natives_
    std::size_t count = 0;
    std::vector<std::uint32_t> assignment;
    /// Live between start() and stop(); the calling thread's context
    /// for this component.
    CounterContext* context = nullptr;
    std::uint64_t wrap_mask = ~0ULL;
    /// The component's registry entry, resolved once at rebuild()
    /// (Component addresses are stable for the library's lifetime) so
    /// the per-read health bracket skips the registry lookup.
    Component* comp = nullptr;
  };

  Status rebuild(const std::vector<Entry>& candidate_entries,
                 const std::vector<pmu::NativeEventCode>& candidate_natives,
                 const std::vector<std::uint32_t>& candidate_components);
  /// Regenerates flat_terms_/calc_ from entries_ — must follow every
  /// entries_ assignment (both rebuild() branches).
  void rebuild_flat_terms();
  Status program_and_arm();
  /// Sizes every steady-state scratch buffer (read/fold snapshots, mux
  /// live-slice reads, accum intermediates, the stop() snapshot) so the
  /// running paths perform no heap allocation after start().
  void preallocate_scratch();
  Status arm_overflows();
  Status arm_overflow(std::size_t config_index);
  /// Clears every armed overflow at the substrate and, in async mode,
  /// drains and detaches the sample ring.  Requires a live context_.
  void disarm_overflows();
  /// Runs one overflow's heavy half: histogram update or user handler.
  void dispatch_overflow(const OverflowConfig& config,
                         const SubstrateOverflow& overflow);
  /// Non-mux raw read with bounded retry and wraparound folding: deltas
  /// between successive reads are taken modulo the substrate counter
  /// width and accumulated into 64-bit totals.
  Status read_folded(std::vector<std::uint64_t>& raw_out);
  /// Reads one component slice's share of `raw_out` through the health
  /// breaker + retry wrapper, applies wraparound folding / monotonic
  /// sanity guards, latches good values, and records per-native
  /// read_flag bits in scratch_flags_.  On failure the slice's window
  /// is filled from the latched values (flags mark it stale).
  [[gnu::always_inline]] Status read_slice(
      ComponentSlice& slice, std::vector<std::uint64_t>& raw_out);
  /// Folds the per-native read flags into per-event flags: each event's
  /// flags are the OR over its term natives.
  void compute_flags(std::span<std::uint32_t> flags) const;
  /// OR of every native's last read flags — one batched entry's
  /// fidelity summary.
  std::uint32_t folded_read_flags() const noexcept;
  /// Refreshes the cross-thread publication (seqlock write; owner
  /// thread only).  Flags come from folds_' current read flags.
  [[gnu::always_inline]] void publish_values(
      std::span<const long long> values, std::uint32_t pub_state) noexcept;
  /// Invalidates the publication (membership changed / snapshot
  /// dropped) without touching folds_ — safe mid-rebuild.
  void publish_clear() noexcept;
  Status program_mux_group(std::size_t g);
  void rotate_mux();
  Status snapshot_raw(std::vector<std::uint64_t>& raw_out);
  [[gnu::always_inline]] void compute_values(
      std::span<const std::uint64_t> raw, std::span<long long> out) const;
  int find_entry(EventId id) const;

  Library& library_;
  int handle_;
  State state_ = State::kStopped;
  /// The primary (lowest-component) slice's context — the one the mux,
  /// overflow, trace, and overhead-attribution paths use; non-null from
  /// a successful start() until the matching stop().
  CounterContext* context_ = nullptr;

  std::vector<Entry> entries_;
  /// Unique natives, sorted ascending by owning component so each
  /// component's share is one contiguous slice.  Codes are only unique
  /// *within* a component (namespaces overlap), hence the parallel
  /// component vector.
  std::vector<pmu::NativeEventCode> natives_;
  std::vector<std::uint32_t> native_components_;  ///< parallel to natives_
  /// Per-component sub-state, sorted ascending by component id.
  std::vector<ComponentSlice> slices_;

  std::uint32_t domain_mask_ = domain::kAll;
  std::uint32_t degradations_ = 0;
  /// Which component the most recent per-slice control failure belongs
  /// to: the start() fan-out runs as one retried unit, so the outcome
  /// must be attributed to the failing slice's breaker, not all of them.
  std::uint32_t attributed_component_ = 0;

  /// Self-overhead attribution: the context's overhead/clock marks
  /// latched at start(), folded into the lifetime totals at stop().
  std::uint64_t overhead_base_ = 0;
  std::uint64_t window_base_ = 0;
  std::uint64_t total_overhead_cycles_ = 0;
  std::uint64_t total_window_cycles_ = 0;

  /// Per-native hot-path state, one record per native instead of five
  /// parallel arrays, so a read's fold/latch/flag work touches one
  /// cache line per native: the wraparound-folding accumulators (the
  /// mask is per-slice — an all-ones mask means full-width counters,
  /// the no-fold fast path), the last good post-fold value read_ex()
  /// serves when a slice fails, the sticky fidelity bits (kSuspect
  /// persists until reset()), and the per-read working flags.
  struct NativeFold {
    std::uint64_t wrap_last = 0;
    std::uint64_t wrap_accum = 0;
    std::uint64_t latched = 0;
    std::uint8_t sticky_flags = 0;
    std::uint8_t read_flags = 0;
  };
  std::vector<NativeFold> folds_;

  /// Rebuild-time flattening of entries_[i].terms into one contiguous
  /// run: the read hot path (compute_values / compute_flags /
  /// publish_values) walks flat_terms_[calc_[i].begin ..] sequentially
  /// instead of chasing a per-entry vector allocation, so a two-event
  /// read touches two adjacent 8-byte records and nothing else.
  struct FlatTerm {
    std::uint32_t native_index = 0;
    std::int32_t coefficient = 1;
  };
  struct EntryCalc {
    std::uint32_t begin = 0;
    std::uint32_t count = 0;
  };
  std::vector<FlatTerm> flat_terms_;
  std::vector<EntryCalc> calc_;  ///< parallel to entries_
  /// True when every entry is exactly one term, coefficient +1, with
  /// native_index == entry index — the overwhelmingly common shape
  /// (single-counter presets and native events, no derived formulas).
  /// compute_values collapses to a copy and publish_values reads each
  /// entry's flags straight out of folds_.
  bool terms_identity_ = false;

  bool multiplex_ = false;
  std::uint64_t mux_slice_cycles_ = kDefaultMuxSliceCycles;
  std::vector<MuxGroupPlan> mux_plans_;
  std::vector<MuxGroupState> mux_state_;
  /// Per mux group: member native codes, prebuilt at rebuild() so
  /// program_mux_group() passes a ready list instead of regathering (and
  /// reallocating) it on every slice rotation.
  std::vector<std::vector<pmu::NativeEventCode>> mux_group_events_;
  std::size_t mux_current_ = 0;
  std::uint64_t mux_slice_start_ = 0;
  std::uint64_t mux_window_start_ = 0;
  int mux_timer_id_ = -1;

  /// Steady-state scratch, sized by preallocate_scratch() at start():
  /// the raw snapshot read() folds from, the live buffer for the
  /// currently-open mux slice, and accum()'s intermediate values.  All
  /// reuse capacity across calls — the running hot paths never allocate.
  std::vector<std::uint64_t> scratch_raw_;
  std::vector<std::uint64_t> scratch_live_;
  std::vector<long long> scratch_values_;

  /// Overflow configs are shared_ptr-owned: the callbacks armed at the
  /// substrate (and the async dispatch closure) each hold their own
  /// reference, so reconfiguration — erase, push_back, vector
  /// reallocation — can never leave an armed callback dereferencing
  /// freed storage.  (The armed lambda used to capture a raw pointer
  /// into this vector; any clear_overflow() after arming was a
  /// use-after-free.)
  std::vector<std::shared_ptr<OverflowConfig>> overflow_configs_;
  /// Substrate event indices armed by the current run, for disarming at
  /// stop()/clear_overflow() — the substrate keeps callbacks armed
  /// until told otherwise, and a released context must never fire a
  /// stale one.
  std::vector<std::uint32_t> armed_event_indices_;

  /// Async sampling pipeline state for the current run.  Shared with
  /// the armed enqueue callbacks: an interrupt latched by the PMU can
  /// deliver after stop() replaced the ring, and must land in the ring
  /// it was armed against, not freed memory.
  std::shared_ptr<SampleRing> sample_ring_;
  bool ring_attached_ = false;
  bool async_active_ = false;

  /// Raw native counts snapshotted at stop(), so read() after stop still
  /// returns this set's values even if the substrate is reprogrammed.
  std::vector<std::uint64_t> stopped_raw_;
  bool stopped_raw_valid_ = false;

  // --- cross-thread value publication -------------------------------------
  /// Published values per set; sets with more events publish the first
  /// kMaxPublishedValues and batch readers flag the rest kNoData.
  static constexpr std::size_t kMaxPublishedValues = 16;
  enum : std::uint32_t { kPubNeverRan = 0, kPubRunning = 1, kPubStopped = 2 };
  /// Seqlock-published snapshot of this set's values, refreshed by the
  /// owning thread at start()/read()/stop()/reset().  All fields are
  /// atomics (relaxed inside the seq bracket), so concurrent batch
  /// readers on other threads are race-free without ever touching the
  /// owner's substrate contexts; torn reads are discarded via the seq
  /// check.  Single writer: the thread driving the set.
  struct Published {
    std::atomic<std::uint32_t> seq{0};  ///< odd while a write is open
    std::atomic<std::uint32_t> state{kPubNeverRan};
    std::atomic<std::uint32_t> num_events{0};  ///< authoritative count
    std::atomic<std::uint32_t> stored{0};      ///< values published
    /// Substrate cycle stamp taken at publication — the age signal
    /// batch readers and the aggregation collector key liveness on.
    std::atomic<std::uint64_t> pub_cycles{0};
    std::array<std::atomic<long long>, kMaxPublishedValues> values{};
    std::array<std::atomic<std::uint8_t>, kMaxPublishedValues> flags{};
  };
  /// The batch readers' publication path: one seqlock read bracket
  /// copying the published values straight into `out` and folding
  /// status/flags into `e` — no intermediate snapshot struct (zeroing
  /// and copying fixed kMaxPublishedValues arrays per set dominated
  /// snapshot_all over large registries).
  void read_published_into(std::span<long long> out,
                           SnapshotEntry& e) const noexcept;
  Published published_;
  /// Single-writer shadow of published_.seq: the owning thread is the
  /// only writer, so publish paths bump this plain copy instead of
  /// re-loading the atomic on every read.
  std::uint32_t pub_seq_shadow_ = 0;
};

// Defined here (not eventset.cpp) so Library's batch loops inline it:
// snapshot_all over a large registry runs this once per set, and the
// cross-TU call was a measurable share of the per-set cost.
inline void EventSet::read_published_into(std::span<long long> out,
                                          SnapshotEntry& e) const noexcept {
  const Published& p = published_;
  for (int attempt = 0; attempt < 64; ++attempt) {
    // The final attempt gives up on consistency: serve the copy anyway,
    // marked kStale (the writer kept racing us — a read loop on the
    // owning thread).
    const bool last = attempt == 63;
    const std::uint32_t s1 = p.seq.load(std::memory_order_acquire);
    if ((s1 & 1u) != 0 && !last) continue;  // write in progress
    const std::uint32_t state = p.state.load(std::memory_order_relaxed);
    const std::uint64_t pub_cycles =
        p.pub_cycles.load(std::memory_order_relaxed);
    const std::uint32_t num_events =
        p.num_events.load(std::memory_order_relaxed);
    const std::uint32_t stored_raw =
        std::min(p.stored.load(std::memory_order_relaxed),
                 static_cast<std::uint32_t>(kMaxPublishedValues));
    std::size_t n = num_events;
    bool clipped = false;
    if (n > out.size()) {
      n = out.size();
      clipped = true;
    }
    const std::size_t stored = std::min<std::size_t>(stored_raw, n);
    std::uint32_t folded = 0;
    for (std::size_t i = 0; i < stored; ++i) {
      out[i] = p.values[i].load(std::memory_order_relaxed);
      folded |= p.flags[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (!last && p.seq.load(std::memory_order_relaxed) != s1) continue;
    if (state == kPubNeverRan) {
      e.status = Error::kNotRunning;
      e.num_values = 0;
      return;
    }
    e.pub_cycles = pub_cycles;
    e.flags |= read_flag::kPublished | folded;
    if (clipped || last) e.flags |= read_flag::kStale;
    for (std::size_t i = stored; i < n; ++i) {
      out[i] = 0;
      e.flags |= read_flag::kNoData;
    }
    e.num_values = static_cast<std::uint32_t>(n);
    return;
  }
}

}  // namespace papirepro::papi
