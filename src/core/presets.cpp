#include "core/presets.h"

#include <array>

namespace papirepro::papi {
namespace {

struct PresetInfo {
  std::string_view name;
  std::string_view description;
};

constexpr std::array<PresetInfo, kNumPresets> kPresetTable = {{
    {"PAPI_TOT_CYC", "Total cycles"},
    {"PAPI_TOT_INS", "Instructions completed"},
    {"PAPI_FP_INS", "Floating point instructions"},
    {"PAPI_FP_OPS", "Floating point operations (FMA counts as 2)"},
    {"PAPI_FMA_INS", "Fused multiply-add instructions"},
    {"PAPI_FDV_INS", "Floating point divide instructions"},
    {"PAPI_LD_INS", "Load instructions"},
    {"PAPI_SR_INS", "Store instructions"},
    {"PAPI_LST_INS", "Load/store instructions completed"},
    {"PAPI_L1_DCA", "L1 data cache accesses"},
    {"PAPI_L1_DCM", "L1 data cache misses"},
    {"PAPI_L1_ICM", "L1 instruction cache misses"},
    {"PAPI_L1_TCM", "L1 total cache misses"},
    {"PAPI_L2_TCA", "L2 total cache accesses"},
    {"PAPI_L2_TCM", "L2 total cache misses"},
    {"PAPI_TLB_DM", "Data TLB misses"},
    {"PAPI_TLB_IM", "Instruction TLB misses"},
    {"PAPI_TLB_TL", "Total TLB misses"},
    {"PAPI_BR_INS", "Conditional branch instructions"},
    {"PAPI_BR_TKN", "Conditional branches taken"},
    {"PAPI_BR_MSP", "Conditional branches mispredicted"},
    {"PAPI_BR_PRC", "Conditional branches correctly predicted"},
    {"PAPI_STL_CCY", "Cycles stalled (no instruction completion)"},
    {"PAPI_MSG_SNT", "Messages sent"},
    {"PAPI_MSG_RCV", "Messages received"},
}};

}  // namespace

std::string_view preset_name(Preset p) noexcept {
  return kPresetTable[static_cast<std::size_t>(p)].name;
}

std::string_view preset_description(Preset p) noexcept {
  return kPresetTable[static_cast<std::size_t>(p)].description;
}

std::optional<Preset> preset_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kPresetTable.size(); ++i) {
    if (kPresetTable[i].name == name) return static_cast<Preset>(i);
  }
  return std::nullopt;
}

}  // namespace papirepro::papi
