#include "core/sampling_pipeline.h"

#include <algorithm>
#include <chrono>

#include "core/telemetry.h"

namespace papirepro::papi {

SamplingAggregator::~SamplingAggregator() {
  {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void SamplingAggregator::configure(const SamplingConfig& config) {
  {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    config_ = config;
    if (config_.ring_capacity == 0) config_.ring_capacity = 1024;
    if (config_.batch_limit == 0) config_.batch_limit = 256;
    if (config_.poll_interval_us == 0) config_.poll_interval_us = 100;
  }
  cv_.notify_all();
}

SamplingConfig SamplingAggregator::config() const {
  const std::lock_guard<std::recursive_mutex> lock(mutex_);
  return config_;
}

void SamplingAggregator::ensure_thread_locked() {
  if (thread_.joinable() || stop_requested_) return;
  thread_ = std::thread([this] { run(); });
}

void SamplingAggregator::attach(SampleRing* ring, Dispatch dispatch) {
  const std::lock_guard<std::recursive_mutex> lock(mutex_);
  sources_.push_back({ring, std::move(dispatch), false});
  ensure_thread_locked();
  cv_.notify_all();
}

void SamplingAggregator::detach(SampleRing* ring) {
  const std::lock_guard<std::recursive_mutex> lock(mutex_);
  for (Source& s : sources_) {
    if (s.ring != ring || s.dead) continue;
    drain_locked(s, 0);
    flushes_.fetch_add(1, std::memory_order_relaxed);
    retired_pushed_.fetch_add(ring->pushed(), std::memory_order_relaxed);
    retired_dropped_.fetch_add(ring->dropped(),
                               std::memory_order_relaxed);
    s.dead = true;
    break;
  }
  // The sweep loop walks sources_ by index; erasing under its feet (a
  // dispatch callback may detach) would skip or repeat entries, so mid-
  // sweep removals are only marked and pruned when the pass finishes.
  if (!sweeping_) {
    sources_.erase(std::remove_if(sources_.begin(), sources_.end(),
                                  [](const Source& s) { return s.dead; }),
                   sources_.end());
  }
}

void SamplingAggregator::flush(SampleRing* ring) {
  const std::lock_guard<std::recursive_mutex> lock(mutex_);
  for (Source& s : sources_) {
    if (s.ring != ring || s.dead) continue;
    drain_locked(s, 0);
    flushes_.fetch_add(1, std::memory_order_relaxed);
    break;
  }
}

void SamplingAggregator::drain_locked(Source& source, std::size_t limit) {
  SampleRecord record;
  std::size_t n = 0;
  while ((limit == 0 || n < limit) && source.ring->try_pop(record)) {
    ++n;
    dispatched_.fetch_add(1, std::memory_order_relaxed);
    if (source.dispatch) source.dispatch(record);
  }
  if (n > 0) {
    if (TelemetryRegistry* telemetry =
            telemetry_.load(std::memory_order_relaxed)) {
      telemetry->bump(TelemetryCounter::kSamplesDispatched, n);
    }
  }
}

void SamplingAggregator::run() {
  std::unique_lock<std::recursive_mutex> lock(mutex_);
  while (!stop_requested_) {
    sweeping_ = true;
    bool drained_any = false;
    // Index loop: dispatch callbacks may attach (push_back can
    // reallocate) or detach (marks dead) while we walk.
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      if (sources_[i].dead) continue;
      const std::size_t before = sources_[i].ring->size();
      if (before == 0) continue;
      drain_locked(sources_[i], config_.batch_limit);
      drained_any = true;
    }
    sweeping_ = false;
    sources_.erase(std::remove_if(sources_.begin(), sources_.end(),
                                  [](const Source& s) { return s.dead; }),
                   sources_.end());
    sweeps_.fetch_add(1, std::memory_order_relaxed);
    if (stop_requested_) break;
    if (drained_any) continue;  // more may already be queued
    cv_.wait_for(lock,
                 std::chrono::microseconds(config_.poll_interval_us));
  }
}

SamplingStats SamplingAggregator::stats() const {
  SamplingStats out;
  out.dispatched = dispatched_.load(std::memory_order_relaxed);
  out.sweeps = sweeps_.load(std::memory_order_relaxed);
  out.flushes = flushes_.load(std::memory_order_relaxed);
  out.enqueued = retired_pushed_.load(std::memory_order_relaxed);
  out.dropped = retired_dropped_.load(std::memory_order_relaxed);
  const std::lock_guard<std::recursive_mutex> lock(mutex_);
  for (const Source& s : sources_) {
    if (s.dead) continue;
    out.enqueued += s.ring->pushed();
    out.dropped += s.ring->dropped();
    ++out.rings_active;
  }
  out.ring_capacity = config_.ring_capacity;
  out.async = config_.async;
  return out;
}

}  // namespace papirepro::papi
