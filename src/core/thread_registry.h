// Per-thread counter state for the Library.  Each registered thread owns
// one CounterContext per registered component (component 0's — the CPU
// core's — is created eagerly at registration, the rest lazily on first
// use) and one running-EventSet slot — the PAPI 3 one-running-EventSet
// rule, keyed by thread instead of by process.  The registry itself is guarded by a
// shared_mutex (readers: every start/stop/read; writers: thread
// register/unregister), while the `running` slot is atomic so another
// thread — the Library destructor, or a stop() issued from a different
// thread than the start() — can scan for a set without racing the owner.
#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include <array>

#include "common/status.h"
#include "core/component.h"
#include "substrate/counter_context.h"

namespace papirepro::papi {

class EventSet;

class ThreadRegistry {
 public:
  struct ThreadState {
    std::thread::id key;
    /// Numeric id from the user's PAPI_thread_init id function.
    unsigned long numeric_id = 0;
    /// Component 0's (CPU core) context — created eagerly during
    /// registration; a context-less slot marks a failed registration.
    std::unique_ptr<CounterContext> context;
    /// Lazily-created contexts for components 1..N-1, indexed by
    /// component id (slot 0 unused).  Touched only by the owning thread.
    std::array<std::unique_ptr<CounterContext>, kMaxComponents>
        component_contexts;
    std::atomic<EventSet*> running{nullptr};
  };

  /// The calling thread's state, or nullptr if not registered.
  ThreadState* find_current() const;

  /// Claims (or returns) the calling thread's slot *without* a context —
  /// the first half of claim-then-create registration.  The caller must
  /// either attach a context or call release_partial_current(); a
  /// leaked context-less slot would permanently block re-registration.
  ThreadState& claim_current(unsigned long numeric_id);

  /// Releases the calling thread's slot iff it is still context-less (a
  /// claim whose create_context() failed).  No-op for completed
  /// registrations and unregistered threads.
  void release_partial_current();

  /// Drops the calling thread's state.  kIsRunning while its EventSet
  /// runs, kInvalid when the thread was never registered.
  Status erase_current();

  /// The state whose running slot holds `set`, or nullptr.  Used to
  /// release a set that may have been started on another thread.
  ThreadState* find_running(const EventSet* set) const;

  /// Every currently-running EventSet (destructor cleanup).
  std::vector<EventSet*> running_sets() const;

  std::size_t size() const;

 private:
  mutable std::shared_mutex mutex_;
  /// unique_ptr entries so ThreadState addresses stay stable across
  /// rehashes — callers hold ThreadState* outside the lock.
  std::unordered_map<std::thread::id, std::unique_ptr<ThreadState>>
      entries_;
};

}  // namespace papirepro::papi
