// Per-thread counter state for the Library.  Each registered thread owns
// one CounterContext per registered component (component 0's — the CPU
// core's — is created eagerly at registration, the rest lazily on first
// use) and one running-EventSet slot — the PAPI 3 one-running-EventSet
// rule, keyed by thread instead of by process.
//
// Storage is contention-free for readers: ThreadStates live in-place in
// append-only chunks linked by atomic next pointers, so every read-side
// operation (find_current, find_running, running_sets, the epoch scans)
// is a lock-free walk over atomic fields — no shared_mutex, no
// lock-prefixed instructions.  Writers (claim/erase) serialize on one
// plain mutex.  Slot storage is never freed before the registry is
// destroyed: an erased slot's key returns to 0 and the slot is reused by
// a later registration, so a concurrent scanner can never touch freed
// memory (capacity is bounded by the peak number of concurrently
// registered threads).  Threads are identified by a process-wide
// monotonic 64-bit key instead of std::thread::id, so cross-thread key
// comparisons are plain atomic loads.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "core/component.h"
#include "substrate/counter_context.h"

namespace papirepro::papi {

class EventSet;

class ThreadRegistry {
 public:
  /// Cache-line-aligned so adjacent slots' `running` CAS traffic (the
  /// start/stop path at high thread counts) never false-shares.
  struct alignas(64) ThreadState {
    /// Owning thread's registry key; 0 marks a free slot.  Written only
    /// under the writer mutex (release-published after the slot's plain
    /// fields are initialized), read lock-free by scanners.
    std::atomic<std::uint64_t> key{0};
    /// Numeric id from the user's PAPI_thread_init id function.
    unsigned long numeric_id = 0;
    /// Component 0's (CPU core) context — created eagerly during
    /// registration; a context-less slot marks a failed registration.
    /// Contexts are touched only by the owning thread (or under the
    /// writer mutex during erase) — never by lock-free scanners.
    std::unique_ptr<CounterContext> context;
    /// Lazily-created contexts for components 1..N-1, indexed by
    /// component id (slot 0 unused).  Touched only by the owning thread.
    std::array<std::unique_ptr<CounterContext>, kMaxComponents>
        component_contexts;
    std::atomic<EventSet*> running{nullptr};
    /// Epoch pin for batched readers: nonzero while this thread holds
    /// handle-table pointers inside read_many()/snapshot_all(); 0 when
    /// quiescent.  Deferred EventSet reclamation scans these.
    std::atomic<std::uint64_t> epoch{0};
  };

  ThreadRegistry() = default;
  ~ThreadRegistry();

  ThreadRegistry(const ThreadRegistry&) = delete;
  ThreadRegistry& operator=(const ThreadRegistry&) = delete;

  /// The calling thread's process-wide registry key (never 0, never
  /// reused — the same ABA defence as the telemetry slab keys).
  static std::uint64_t current_key() noexcept;

  /// The calling thread's state, or nullptr if not registered.
  /// Lock-free scan (steady state is the Library's thread-local memo).
  ThreadState* find_current() const noexcept;

  /// Claims (or returns) the calling thread's slot *without* a context —
  /// the first half of claim-then-create registration.  The caller must
  /// either attach a context or call release_partial_current(); a
  /// leaked context-less slot would permanently block re-registration.
  ThreadState& claim_current(unsigned long numeric_id);

  /// Releases the calling thread's slot iff it is still context-less (a
  /// claim whose create_context() failed).  No-op for completed
  /// registrations and unregistered threads.
  void release_partial_current();

  /// Drops the calling thread's state.  kIsRunning while its EventSet
  /// runs, kInvalid when the thread was never registered.
  Status erase_current();

  /// The state whose running slot holds `set`, or nullptr.  Used to
  /// release a set that may have been started on another thread.
  /// Lock-free.
  ThreadState* find_running(const EventSet* set) const noexcept;

  /// Every currently-running EventSet (destructor cleanup).  Lock-free
  /// scan (allocates the result vector).
  std::vector<EventSet*> running_sets() const;

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

  /// Smallest nonzero epoch currently pinned by any registered thread,
  /// or UINT64_MAX when every thread is quiescent.  seq_cst loads: the
  /// reclamation protocol argues correctness through the single total
  /// order over the unpublish store, the epoch bump, and these scans.
  std::uint64_t min_active_epoch() const noexcept;

  /// Writer-mutex acquisitions so far — the assertion hook tests use to
  /// prove the steady-state read path never takes a registry lock.
  std::uint64_t lock_acquisitions() const noexcept {
    return lock_acquisitions_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kChunkSlots = 64;
  /// In-place slot storage: never moved, never freed before the registry
  /// dies.  `next` is release-published after the new chunk's slots are
  /// default-initialized (all keys 0), so lock-free walkers only ever
  /// see initialized slots.
  struct Chunk {
    std::array<ThreadState, kChunkSlots> slots;
    std::atomic<Chunk*> next{nullptr};
  };

  /// Lock-free slot walk; stops early when fn returns a non-null state.
  template <typename Fn>
  ThreadState* scan(Fn&& fn) const noexcept {
    for (const Chunk* chunk = &head_; chunk != nullptr;
         chunk = chunk->next.load(std::memory_order_acquire)) {
      for (const ThreadState& slot : chunk->slots) {
        if (fn(slot)) return const_cast<ThreadState*>(&slot);
      }
    }
    return nullptr;
  }

  Chunk head_;  ///< first chunk inline: the common case never allocates
  std::mutex writer_mutex_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> lock_acquisitions_{0};
};

}  // namespace papirepro::papi
