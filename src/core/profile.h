// SVR4-compatible statistical profiling buffer (PAPI_profil).  "The
// current PAPI code implements statistical profiling over aggregate
// counting by generating an interrupt on counter overflow of a threshold
// and sampling the program counter."  The buffer is a bucket histogram
// over a text-address range; each overflow hashes the observed PC into a
// bucket.  Attribution accuracy is whatever the delivered PC is —
// skidded on out-of-order platforms, exact with EAR/ProfileMe support —
// which is precisely what experiment E6 measures.
#pragma once

#include <cstdint>
#include <vector>

namespace papirepro::papi {

class ProfileBuffer {
 public:
  /// Buckets cover [text_base, text_base + span_bytes); `scale` follows
  /// the SVR4 profil convention: 0x10000 maps one bucket per byte,
  /// 0x8000 one bucket per 2 bytes, etc.  We default to one bucket per
  /// 4-byte instruction.
  ProfileBuffer(std::uint64_t text_base, std::uint64_t span_bytes,
                std::uint32_t scale = 0x4000);

  void record(std::uint64_t pc);

  std::uint64_t text_base() const noexcept { return text_base_; }
  std::uint64_t span_bytes() const noexcept { return span_bytes_; }
  std::uint32_t scale() const noexcept { return scale_; }
  std::size_t num_buckets() const noexcept { return buckets_.size(); }
  const std::vector<std::uint32_t>& buckets() const noexcept {
    return buckets_;
  }

  std::uint64_t total_samples() const noexcept { return total_; }
  std::uint64_t out_of_range_samples() const noexcept {
    return out_of_range_;
  }

  /// Address of the first byte covered by bucket `i`.
  std::uint64_t bucket_address(std::size_t i) const noexcept;
  /// Bucket index covering `pc`, or -1 when out of range.
  std::int64_t bucket_of(std::uint64_t pc) const noexcept;

  void reset();

 private:
  std::uint64_t text_base_;
  std::uint64_t span_bytes_;
  std::uint32_t scale_;
  std::uint64_t bytes_per_bucket_;
  std::vector<std::uint32_t> buckets_;
  std::uint64_t total_ = 0;
  std::uint64_t out_of_range_ = 0;
};

}  // namespace papirepro::papi
