// SVR4-compatible statistical profiling buffer (PAPI_profil).  "The
// current PAPI code implements statistical profiling over aggregate
// counting by generating an interrupt on counter overflow of a threshold
// and sampling the program counter."  The buffer is a bucket histogram
// over a text-address range; each overflow hashes the observed PC into a
// bucket.  Attribution accuracy is whatever the delivered PC is —
// skidded on out-of-order platforms, exact with EAR/ProfileMe support —
// which is precisely what experiment E6 measures.
//
// record() is multi-producer-safe: buckets and totals update with
// relaxed atomics, so synchronous overflow delivery from several
// counting threads and the asynchronous sampling aggregator can feed
// the same buffer.  Buckets saturate at UINT32_MAX instead of wrapping;
// saturated buckets and the samples lost to them are accounted.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace papirepro::papi {

class ProfileBuffer {
 public:
  /// One bucket per 4-byte instruction.
  static constexpr std::uint32_t kDefaultScale = 0x4000;

  /// SVR4 profil accepts scales in [1, 0x10000]: 0x10000 maps one
  /// bucket per byte, 0x8000 one per 2 bytes, ...; anything larger (or
  /// zero) is a caller error the C API reports as PAPI_EINVAL.
  static constexpr bool valid_scale(std::uint32_t scale) noexcept {
    return scale >= 1 && scale <= 0x10000;
  }

  /// Buckets cover [text_base, text_base + span_bytes); `scale` follows
  /// the SVR4 profil convention: bucket = (pc - base) * scale / 0x10000.
  /// An invalid scale is clamped to kDefaultScale (the C API rejects it
  /// before getting here; this keeps the class total in release builds
  /// instead of dividing by zero as the old code did).
  ProfileBuffer(std::uint64_t text_base, std::uint64_t span_bytes,
                std::uint32_t scale = kDefaultScale);

  void record(std::uint64_t pc) noexcept;

  std::uint64_t text_base() const noexcept { return text_base_; }
  std::uint64_t span_bytes() const noexcept { return span_bytes_; }
  std::uint32_t scale() const noexcept { return scale_; }
  std::size_t num_buckets() const noexcept { return buckets_.size(); }
  /// Raw bucket storage.  Stable to read once recording has quiesced
  /// (set stopped / rings flushed); use snapshot() while live.
  const std::vector<std::uint32_t>& buckets() const noexcept {
    return buckets_;
  }

  std::uint64_t total_samples() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  std::uint64_t out_of_range_samples() const noexcept {
    return out_of_range_.load(std::memory_order_relaxed);
  }
  /// Buckets pinned at UINT32_MAX, and samples discarded because their
  /// bucket was already saturated.
  std::uint64_t saturated_buckets() const noexcept {
    return saturated_buckets_.load(std::memory_order_relaxed);
  }
  std::uint64_t saturated_samples() const noexcept {
    return saturated_samples_.load(std::memory_order_relaxed);
  }

  /// Coherent-enough copy for live polling (perfometer/vprof while the
  /// aggregator is still writing): each cell is loaded atomically.
  struct Snapshot {
    std::uint64_t total = 0;
    std::uint64_t out_of_range = 0;
    std::uint64_t saturated_buckets = 0;
    std::uint64_t saturated_samples = 0;
    std::vector<std::uint32_t> buckets;
  };
  Snapshot snapshot() const;

  /// Address of the first byte covered by bucket `i`.
  std::uint64_t bucket_address(std::size_t i) const noexcept;
  /// Bucket index covering `pc`, or -1 when out of range.
  std::int64_t bucket_of(std::uint64_t pc) const noexcept;

  /// Not safe against concurrent record(); quiesce first.
  void reset();

 private:
  std::uint64_t text_base_;
  std::uint64_t span_bytes_;
  std::uint32_t scale_;
  std::vector<std::uint32_t> buckets_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> out_of_range_{0};
  std::atomic<std::uint64_t> saturated_buckets_{0};
  std::atomic<std::uint64_t> saturated_samples_{0};
};

}  // namespace papirepro::papi
