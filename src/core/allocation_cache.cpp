#include "core/allocation_cache.h"

#include "core/telemetry.h"
#include "substrate/substrate.h"

namespace papirepro::papi {

namespace {

// FNV-1a over the key's scalar contents.
inline void hash_mix(std::size_t& h, std::uint64_t v) noexcept {
  h ^= static_cast<std::size_t>(v);
  h *= 0x100000001b3ULL;
}

}  // namespace

std::size_t AllocationCache::KeyHash::operator()(
    const Key& key) const noexcept {
  std::size_t h = 0xcbf29ce484222325ULL;
  hash_mix(h, key.component);
  hash_mix(h, key.events.size());
  for (const pmu::NativeEventCode code : key.events) hash_mix(h, code);
  hash_mix(h, key.priorities.size());
  for (const int p : key.priorities) {
    hash_mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(p)));
  }
  return h;
}

AllocationCache::AllocationCache(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

Result<std::vector<std::uint32_t>> AllocationCache::allocate(
    const Substrate& substrate,
    std::span<const pmu::NativeEventCode> events,
    std::span<const int> priorities, std::uint32_t component) {
  if (component >= kMaxComponents) return Error::kNoComponent;
  Key key{component,
          {events.begin(), events.end()},
          {priorities.begin(), priorities.end()}};
  TelemetryRegistry* telemetry =
      telemetry_.load(std::memory_order_relaxed);

  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t generation = substrate.allocation_generation();
  if (generation != generations_[component]) {
    // This component's allocation rules moved under us (estimation
    // toggle, uncore reconfiguration): its cached outcomes are suspect.
    // Other components' rules did not move, so only this component's
    // entries are dropped.
    bool erased = false;
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (it->first.component == component) {
        index_.erase(it->first);
        it = lru_.erase(it);
        erased = true;
      } else {
        ++it;
      }
    }
    if (erased) {
      ++stats_.invalidations;
      if (telemetry) {
        telemetry->bump(TelemetryCounter::kAllocCacheInvalidations);
      }
    }
    generations_[component] = generation;
  }

  if (const auto it = index_.find(key); it != index_.end()) {
    ++stats_.hits;
    if (telemetry) telemetry->bump(TelemetryCounter::kAllocCacheHits);
    lru_.splice(lru_.begin(), lru_, it->second);
    const CachedSolve& solve = it->second->second;
    if (solve.error != Error::kOk) return solve.error;
    return std::vector<std::uint32_t>(solve.assignment);
  }

  ++stats_.misses;
  if (telemetry) telemetry->bump(TelemetryCounter::kAllocCacheMisses);
  auto solved = substrate.allocate(events, priorities);
  CachedSolve entry;
  if (solved.ok()) {
    entry.assignment = solved.value();
  } else {
    entry.error = solved.error();
  }
  lru_.emplace_front(std::move(key), std::move(entry));
  index_.emplace(lru_.front().first, lru_.begin());
  if (index_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
    if (telemetry) telemetry->bump(TelemetryCounter::kAllocCacheEvictions);
  }
  return solved;
}

AllocationCache::Stats AllocationCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.entries = index_.size();
  return out;
}

void AllocationCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_ = Stats{};
  generations_.fill(0);
}

}  // namespace papirepro::papi
