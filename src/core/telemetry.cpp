#include "core/telemetry.h"

#include <algorithm>
#include <sstream>

namespace papirepro::papi {

Status TelemetryRegistry::set_trace(bool enabled,
                                    std::size_t ring_capacity) {
  if (ring_capacity > TraceRing::kMaxCapacity) return Error::kInvalid;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (enabled) {
    if (ring_capacity != 0) trace_capacity_ = ring_capacity;
    for (const auto& slab : slabs_) {
      if (slab->ring.load(std::memory_order_relaxed) != nullptr) continue;
      rings_.push_back(std::make_unique<TraceRing>(trace_capacity_));
      slab->ring.store(rings_.back().get(), std::memory_order_release);
    }
  }
  trace_enabled_.store(enabled, std::memory_order_relaxed);
  return Error::kOk;
}

TelemetrySnapshot TelemetryRegistry::snapshot() const {
  TelemetrySnapshot out;
  out.enabled = enabled_.load(std::memory_order_relaxed);
  out.trace_enabled = trace_enabled_.load(std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mutex_);
  out.threads_seen = slabs_.size();
  for (const auto& slab : slabs_) {
    for (std::size_t c = 0; c < kNumTelemetryCounters; ++c) {
      out.counters[c] +=
          slab->counts[c].value.load(std::memory_order_relaxed);
    }
    for (std::size_t c = 0; c < out.component_counters.size(); ++c) {
      out.component_counters[c] +=
          slab->component_counts[c].load(std::memory_order_relaxed);
    }
    if (const TraceRing* ring =
            slab->ring.load(std::memory_order_relaxed)) {
      out.trace_records_buffered += ring->size();
    }
  }
  return out;
}

namespace {

struct DrainedRecord {
  std::uint64_t tid = 0;
  TraceRecord record;
};

}  // namespace

std::string TelemetryRegistry::dump_trace(TraceFormat format) {
  // Drain under the mutex: the consumer side of every ring is
  // serialized here, preserving each ring's SPSC contract against its
  // (still live) producer thread.
  std::vector<DrainedRecord> records;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& slab : slabs_) {
      TraceRing* ring = slab->ring.load(std::memory_order_relaxed);
      if (ring == nullptr) continue;
      TraceRecord r;
      while (ring->try_pop(r)) {
        records.push_back({slab->tid_label, r});
      }
    }
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const DrainedRecord& a, const DrainedRecord& b) {
                     return a.record.ts_cycles < b.record.ts_cycles;
                   });

  std::ostringstream os;
  if (format == TraceFormat::kCsv) {
    os << "tid,kind,ts_cycles,dur_cycles,arg\n";
    for (const DrainedRecord& d : records) {
      os << d.tid << ',' << trace_event_name(d.record.kind) << ','
         << d.record.ts_cycles << ',' << d.record.dur_cycles << ','
         << d.record.arg << "\n";
    }
    return os.str();
  }

  // chrome://tracing JSON (the trace_event "JSON Array" container with
  // named traceEvents).  Timestamps are simulated cycles emitted in the
  // microsecond "ts"/"dur" fields — one cycle renders as one display
  // unit, which is exactly the resolution the substrate clock has.
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const DrainedRecord& d : records) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << trace_event_name(d.record.kind)
       << "\",\"cat\":\"papirepro\",\"pid\":1,\"tid\":" << d.tid
       << ",\"ts\":" << d.record.ts_cycles;
    if (d.record.dur_cycles > 0) {
      os << ",\"ph\":\"X\",\"dur\":" << d.record.dur_cycles;
    } else {
      os << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    os << ",\"args\":{\"arg\":" << d.record.arg << "}}";
  }
  os << "]}";
  return os.str();
}

std::string TelemetryRegistry::render_summary(
    const TelemetrySnapshot& snapshot) {
  std::ostringstream os;
  os << "papirepro telemetry summary\n";
  os << "  threads_seen: " << snapshot.threads_seen
     << "  enabled: " << (snapshot.enabled ? "yes" : "no")
     << "  trace: " << (snapshot.trace_enabled ? "on" : "off") << "\n";
  for (std::size_t c = 0; c < kNumTelemetryCounters; ++c) {
    os << "  " << kTelemetryCounterNames[c] << ": "
       << snapshot.counters[c] << "\n";
  }
  for (std::size_t comp = 0; comp < snapshot.num_components; ++comp) {
    os << "  component[" << comp << "]: starts="
       << snapshot.component_value(comp, ComponentCounter::kStarts)
       << " stops="
       << snapshot.component_value(comp, ComponentCounter::kStops)
       << " reads="
       << snapshot.component_value(comp, ComponentCounter::kReads)
       << "\n";
  }
  os << "  alloc_cache_entries: " << snapshot.alloc_cache_entries << "\n";
  os << "  sampling: sweeps=" << snapshot.sampling_sweeps
     << " flushes=" << snapshot.sampling_flushes
     << " rings_active=" << snapshot.sampling_rings_active
     << " ring_capacity=" << snapshot.sampling_ring_capacity
     << " async=" << (snapshot.sampling_async ? "yes" : "no") << "\n";
  os << "  trace_records_buffered: " << snapshot.trace_records_buffered
     << "\n";
  return os.str();
}

}  // namespace papirepro::papi
