#include "core/health.h"

#include <bit>

#include "core/telemetry.h"
#include "substrate/substrate.h"

namespace papirepro::papi {

namespace {
/// Trace-record arg layout for TraceEventKind::kHealth.
std::uint64_t pack_transition(std::uint32_t component, HealthState from,
                              HealthState to) noexcept {
  return static_cast<std::uint64_t>(component) |
         (static_cast<std::uint64_t>(from) << 8) |
         (static_cast<std::uint64_t>(to) << 16);
}
}  // namespace

void HealthMonitor::set_policy(const HealthPolicy& policy) noexcept {
  enabled_.store(policy.enabled, std::memory_order_relaxed);
  max_consecutive_.store(policy.max_consecutive_exhaustions,
                         std::memory_order_relaxed);
  window_min_ops_.store(policy.window_min_ops, std::memory_order_relaxed);
  failure_rate_threshold_.store(policy.failure_rate_threshold,
                                std::memory_order_relaxed);
  probation_successes_.store(policy.probation_successes,
                             std::memory_order_relaxed);
  cooldown_base_usec_.store(policy.probe_cooldown_usec,
                            std::memory_order_relaxed);
  cooldown_max_usec_.store(policy.probe_cooldown_max_usec,
                           std::memory_order_relaxed);
}

HealthPolicy HealthMonitor::policy() const noexcept {
  HealthPolicy p;
  p.enabled = enabled_.load(std::memory_order_relaxed);
  p.max_consecutive_exhaustions =
      max_consecutive_.load(std::memory_order_relaxed);
  p.window_min_ops = window_min_ops_.load(std::memory_order_relaxed);
  p.failure_rate_threshold =
      failure_rate_threshold_.load(std::memory_order_relaxed);
  p.probation_successes =
      probation_successes_.load(std::memory_order_relaxed);
  p.probe_cooldown_usec =
      cooldown_base_usec_.load(std::memory_order_relaxed);
  p.probe_cooldown_max_usec =
      cooldown_max_usec_.load(std::memory_order_relaxed);
  return p;
}

std::uint64_t HealthMonitor::now_usec() const noexcept {
  return clock_ != nullptr ? clock_->real_usec() : 0;
}

bool HealthMonitor::transition(HealthState from, HealthState to) noexcept {
  auto expected = static_cast<std::uint8_t>(from);
  if (!state_.compare_exchange_strong(expected,
                                      static_cast<std::uint8_t>(to),
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
    return false;
  }
  transitions_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry_ != nullptr) {
    telemetry_->bump(TelemetryCounter::kHealthTransitions);
    telemetry_->trace_instant(
        TraceEventKind::kHealth,
        clock_ != nullptr ? clock_->real_cycles() : 0,
        pack_transition(component_, from, to));
  }
  return true;
}

void HealthMonitor::window_push(bool failed) noexcept {
  std::uint64_t bits = window_bits_.load(std::memory_order_relaxed);
  while (!window_bits_.compare_exchange_weak(
      bits, (bits << 1) | (failed ? 1u : 0u), std::memory_order_relaxed)) {
  }
  std::uint32_t ops = window_ops_.load(std::memory_order_relaxed);
  while (ops < 64 && !window_ops_.compare_exchange_weak(
                         ops, ops + 1, std::memory_order_relaxed)) {
  }
}

void HealthMonitor::maybe_trip(HealthState s) noexcept {
  bool trip = false;
  const std::uint32_t consec =
      consecutive_exhaustions_.load(std::memory_order_relaxed);
  if (consec >= max_consecutive_.load(std::memory_order_relaxed)) {
    trip = true;
  } else {
    const std::uint32_t min_ops =
        window_min_ops_.load(std::memory_order_relaxed);
    const std::uint32_t ops = window_ops_.load(std::memory_order_relaxed);
    if (min_ops > 0 && ops >= min_ops) {
      const std::uint64_t bits =
          window_bits_.load(std::memory_order_relaxed);
      const std::uint32_t span = ops < 64 ? ops : 64;
      const std::uint64_t mask =
          span >= 64 ? ~0ULL : ((1ULL << span) - 1);
      const auto failures = static_cast<std::uint32_t>(
          std::popcount(bits & mask));
      const double rate =
          static_cast<double>(failures) / static_cast<double>(span);
      trip = rate >=
             failure_rate_threshold_.load(std::memory_order_relaxed);
    }
  }
  if (!trip) return;
  if (!transition(s, HealthState::kQuarantined)) return;
  std::uint64_t cd = cooldown_usec_.load(std::memory_order_relaxed);
  if (cd == 0) cd = cooldown_base_usec_.load(std::memory_order_relaxed);
  cooldown_usec_.store(cd, std::memory_order_relaxed);
  quarantine_until_usec_.store(now_usec() + cd, std::memory_order_relaxed);
  probe_successes_.store(0, std::memory_order_relaxed);
  quarantines_.fetch_add(1, std::memory_order_relaxed);
}

Status HealthMonitor::admit_slow(HealthState s) noexcept {
  if (!enabled_.load(std::memory_order_relaxed)) return Error::kOk;
  for (;;) {
    switch (s) {
      case HealthState::kHealthy:
      case HealthState::kDegraded:
        return Error::kOk;
      case HealthState::kProbation:
        probes_.fetch_add(1, std::memory_order_relaxed);
        if (telemetry_ != nullptr) {
          telemetry_->bump(TelemetryCounter::kHealthProbes);
        }
        return Error::kOk;
      case HealthState::kQuarantined: {
        if (now_usec() <
            quarantine_until_usec_.load(std::memory_order_relaxed)) {
          fail_fasts_.fetch_add(1, std::memory_order_relaxed);
          if (telemetry_ != nullptr) {
            telemetry_->bump(TelemetryCounter::kHealthFailFasts);
          }
          return Error::kComponentQuarantined;
        }
        // Cool-down elapsed: one CAS winner flips to Probation; losers
        // re-read and fall through the loop (they will admit as probes
        // or fail fast against a fresh re-quarantine).
        (void)transition(HealthState::kQuarantined,
                         HealthState::kProbation);
        s = state();
        continue;
      }
    }
  }
}

void HealthMonitor::record_slow(Error outcome, HealthState /*hint*/)
    noexcept {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  // Our own fail-fast rejection circulating back through a caller must
  // not feed the state machine (it never reached the substrate).
  if (outcome == Error::kComponentQuarantined) return;
  const HealthState s = state();
  const bool failed = outcome != Error::kOk;
  // Deterministic, non-transient failures (bad arguments, unsupported
  // features) say nothing about substrate health; only retry-exhausted
  // transient faults drive the breaker.
  const bool counts = failed && is_transient(outcome);
  if (failed) {
    last_error_.store(static_cast<int>(outcome),
                      std::memory_order_relaxed);
  }
  switch (s) {
    case HealthState::kQuarantined:
      // An op admitted before the breaker tripped is finishing late;
      // its outcome is already represented by the trip.
      return;
    case HealthState::kProbation: {
      if (counts) {
        // Probe failed: re-quarantine with a doubled cool-down.
        std::uint64_t cd = cooldown_usec_.load(std::memory_order_relaxed);
        const std::uint64_t base =
            cooldown_base_usec_.load(std::memory_order_relaxed);
        const std::uint64_t cap =
            cooldown_max_usec_.load(std::memory_order_relaxed);
        cd = cd == 0 ? base : cd * 2;
        if (cd > cap) cd = cap;
        if (transition(HealthState::kProbation,
                       HealthState::kQuarantined)) {
          cooldown_usec_.store(cd, std::memory_order_relaxed);
          quarantine_until_usec_.store(now_usec() + cd,
                                       std::memory_order_relaxed);
          probe_successes_.store(0, std::memory_order_relaxed);
          quarantines_.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (!failed) {
        const std::uint32_t got =
            probe_successes_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (got >=
                probation_successes_.load(std::memory_order_relaxed) &&
            transition(HealthState::kProbation, HealthState::kHealthy)) {
          cooldown_usec_.store(0, std::memory_order_relaxed);
          window_bits_.store(0, std::memory_order_relaxed);
          window_ops_.store(0, std::memory_order_relaxed);
          consecutive_exhaustions_.store(0, std::memory_order_relaxed);
          probe_successes_.store(0, std::memory_order_relaxed);
        }
      }
      return;
    }
    case HealthState::kHealthy:
    case HealthState::kDegraded: {
      window_push(counts);
      if (counts) {
        consecutive_exhaustions_.fetch_add(1, std::memory_order_relaxed);
        if (s == HealthState::kHealthy) {
          (void)transition(HealthState::kHealthy, HealthState::kDegraded);
        }
        maybe_trip(state() == HealthState::kDegraded
                       ? HealthState::kDegraded
                       : HealthState::kHealthy);
      } else if (!failed) {
        consecutive_exhaustions_.store(0, std::memory_order_relaxed);
        if (s == HealthState::kDegraded) {
          const std::uint32_t min_ops =
              window_min_ops_.load(std::memory_order_relaxed);
          const std::uint32_t ops =
              window_ops_.load(std::memory_order_relaxed);
          const std::uint64_t bits =
              window_bits_.load(std::memory_order_relaxed);
          const std::uint32_t span = min_ops < 64 ? min_ops : 64;
          const std::uint64_t mask =
              span >= 64 ? ~0ULL : ((1ULL << span) - 1);
          // The last window_min_ops operations all succeeded: recover.
          if (ops >= min_ops && (bits & mask) == 0 &&
              transition(HealthState::kDegraded, HealthState::kHealthy)) {
            window_bits_.store(0, std::memory_order_relaxed);
            window_ops_.store(0, std::memory_order_relaxed);
          }
        }
      }
      return;
    }
  }
}

ComponentHealth HealthMonitor::snapshot() const noexcept {
  ComponentHealth h;
  h.component = component_;
  h.state = state();
  h.consecutive_exhaustions =
      consecutive_exhaustions_.load(std::memory_order_relaxed);
  const std::uint32_t ops = window_ops_.load(std::memory_order_relaxed);
  const std::uint64_t bits = window_bits_.load(std::memory_order_relaxed);
  const std::uint32_t span = ops < 64 ? ops : 64;
  const std::uint64_t mask = span >= 64 ? ~0ULL : ((1ULL << span) - 1);
  h.window_ops = ops;
  h.window_failures =
      static_cast<std::uint32_t>(std::popcount(bits & mask));
  h.quarantines = quarantines_.load(std::memory_order_relaxed);
  h.fail_fasts = fail_fasts_.load(std::memory_order_relaxed);
  h.probes = probes_.load(std::memory_order_relaxed);
  h.transitions = transitions_.load(std::memory_order_relaxed);
  h.cooldown_usec = cooldown_usec_.load(std::memory_order_relaxed);
  h.last_error =
      static_cast<Error>(last_error_.load(std::memory_order_relaxed));
  return h;
}

void HealthMonitor::force_healthy() noexcept {
  const auto from = static_cast<HealthState>(state_.exchange(
      static_cast<std::uint8_t>(HealthState::kHealthy),
      std::memory_order_acq_rel));
  window_bits_.store(0, std::memory_order_relaxed);
  window_ops_.store(0, std::memory_order_relaxed);
  consecutive_exhaustions_.store(0, std::memory_order_relaxed);
  probe_successes_.store(0, std::memory_order_relaxed);
  cooldown_usec_.store(0, std::memory_order_relaxed);
  quarantine_until_usec_.store(0, std::memory_order_relaxed);
  if (from != HealthState::kHealthy) {
    transitions_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry_ != nullptr) {
      telemetry_->bump(TelemetryCounter::kHealthTransitions);
      telemetry_->trace_instant(
          TraceEventKind::kHealth,
          clock_ != nullptr ? clock_->real_cycles() : 0,
          pack_transition(component_, from, HealthState::kHealthy));
    }
  }
}

}  // namespace papirepro::papi
