// Portable event identity: a PAPI event is either a preset (portable
// name, mapped per platform) or a native event (platform namespace).
// PresetMapping is the per-platform realization of a preset as a signed
// linear combination of native events — PAPI's "derived events"
// (e.g. PAPI_FP_OPS on sim-power3 = PM_FPU_INS - PM_FPU_CVT + PM_EXEC_FMA,
// which both removes the rounding-instruction inflation and counts each
// FMA as two operations).
#pragma once

#include <cstdint>
#include <vector>

#include "core/presets.h"
#include "pmu/native_event.h"

namespace papirepro::papi {

struct EventId {
  enum class Kind : std::uint8_t { kPreset, kNative };
  Kind kind = Kind::kPreset;
  std::uint32_t value = 0;  ///< Preset index or NativeEventCode
  /// Owning component id (0 = the CPU core component).  Component-0
  /// natives keep their full legacy 32-bit codes; non-zero components
  /// stamp their id into bits 30..24 of the integer code.
  std::uint32_t component = 0;

  static constexpr EventId preset(Preset p,
                                  std::uint32_t component = 0) noexcept {
    return {Kind::kPreset, static_cast<std::uint32_t>(p), component};
  }
  static constexpr EventId native(pmu::NativeEventCode code,
                                  std::uint32_t component = 0) noexcept {
    return {Kind::kNative, code, component};
  }

  bool is_preset() const noexcept { return kind == Kind::kPreset; }
  Preset as_preset() const noexcept { return static_cast<Preset>(value); }
  pmu::NativeEventCode as_native() const noexcept { return value; }

  /// PAPI-style integer code (preset codes carry the high bit; the
  /// component id rides in bits 30..24).
  std::uint32_t code() const noexcept {
    const std::uint32_t base =
        is_preset() ? preset_code(as_preset()) : value;
    return base | (component << kEventComponentShift);
  }

  friend bool operator==(const EventId&, const EventId&) = default;
};

/// One term of a derived-event mapping.
struct MappingTerm {
  pmu::NativeEventCode native = pmu::kNoNativeEvent;
  int coefficient = 1;  ///< +1 or -1 (PAPI derived add/sub); also used as
                        ///< x2 where a platform needs FMA counted twice
};

/// How a preset is realized on one platform.
struct PresetMapping {
  Preset preset = Preset::kTotCyc;
  std::vector<MappingTerm> terms;

  bool derived() const noexcept { return terms.size() > 1; }
};

}  // namespace papirepro::papi
