#include "core/multiplex.h"

#include <unordered_map>

#include "core/allocation_cache.h"
#include "core/allocator.h"

namespace papirepro::papi {

Result<std::vector<MuxGroupPlan>> plan_multiplex(
    const Substrate& substrate,
    std::span<const pmu::NativeEventCode> natives,
    AllocationCache* cache) {
  std::vector<std::size_t> remaining(natives.size());
  for (std::size_t i = 0; i < remaining.size(); ++i) remaining[i] = i;

  // chosen[idx] flags membership in the round's chosen group, replacing
  // the former O(|remaining|^2) std::find scans.
  std::vector<char> chosen(natives.size(), 0);

  std::vector<MuxGroupPlan> plans;
  while (!remaining.empty()) {
    std::vector<pmu::NativeEventCode> subset;
    subset.reserve(remaining.size());
    for (std::size_t idx : remaining) subset.push_back(natives[idx]);

    // First try the whole remainder at once (common fast path), then
    // fall back to the max-cardinality matching to pick the largest
    // placeable subset.
    std::vector<std::size_t> chosen_members;
    std::vector<std::uint32_t> chosen_assignment;
    auto whole = cache != nullptr ? cache->allocate(substrate, subset, {})
                                  : substrate.allocate(subset, {});
    if (whole.ok()) {
      chosen_members = remaining;
      chosen_assignment = std::move(whole.value());
    } else {
      const pmu::PlatformDescription* platform = substrate.platform();
      if (platform != nullptr && platform->group_constrained()) {
        // Pick the group covering the most of the remaining events,
        // testing membership against a hashed view of the remainder
        // instead of scanning each group's slot list per event.
        std::unordered_map<pmu::NativeEventCode, std::uint32_t>
            remaining_codes;
        remaining_codes.reserve(remaining.size());
        for (std::size_t idx : remaining) ++remaining_codes[natives[idx]];
        const pmu::CounterGroup* best = nullptr;
        std::size_t best_cover = 0;
        std::unordered_map<pmu::NativeEventCode, std::uint32_t> slot_seen;
        for (const pmu::CounterGroup& g : platform->groups) {
          std::size_t cover = 0;
          slot_seen.clear();
          for (const pmu::NativeEventCode slot : g.slots) {
            if (!slot_seen.emplace(slot, 0).second) continue;  // dup slot
            const auto it = remaining_codes.find(slot);
            if (it != remaining_codes.end()) cover += it->second;
          }
          if (cover > best_cover) {
            best_cover = cover;
            best = &g;
          }
        }
        if (best == nullptr) return Error::kConflict;
        std::unordered_map<pmu::NativeEventCode, std::uint32_t> slot_of;
        slot_of.reserve(best->slots.size());
        for (std::size_t s = 0; s < best->slots.size(); ++s) {
          slot_of.emplace(best->slots[s], static_cast<std::uint32_t>(s));
        }
        for (std::size_t idx : remaining) {
          const auto it = slot_of.find(natives[idx]);
          if (it != slot_of.end()) {
            chosen_members.push_back(idx);
            chosen_assignment.push_back(it->second);
          }
        }
      } else if (auto inst = substrate.translate_allocation(subset, {});
                 !inst.ok()) {
        return inst.error();
      } else {
        const AllocationResult solved = solve_max_cardinality(inst.value());
        if (solved.mapped_count == 0) return Error::kConflict;
        for (std::size_t i = 0; i < remaining.size(); ++i) {
          if (solved.assignment[i] != AllocationResult::kUnassigned) {
            chosen_members.push_back(remaining[i]);
            chosen_assignment.push_back(
                static_cast<std::uint32_t>(solved.assignment[i]));
          }
        }
      }
    }

    for (std::size_t idx : chosen_members) chosen[idx] = 1;
    std::vector<std::size_t> next_remaining;
    for (std::size_t idx : remaining) {
      if (!chosen[idx]) next_remaining.push_back(idx);
    }
    plans.push_back({std::move(chosen_members), std::move(chosen_assignment)});
    remaining = std::move(next_remaining);
  }
  return plans;
}

}  // namespace papirepro::papi
