#include "core/multiplex.h"

#include <algorithm>

#include "core/allocator.h"

namespace papirepro::papi {

Result<std::vector<MuxGroupPlan>> plan_multiplex(
    const Substrate& substrate,
    std::span<const pmu::NativeEventCode> natives) {
  std::vector<std::size_t> remaining(natives.size());
  for (std::size_t i = 0; i < remaining.size(); ++i) remaining[i] = i;

  std::vector<MuxGroupPlan> plans;
  while (!remaining.empty()) {
    std::vector<pmu::NativeEventCode> subset;
    subset.reserve(remaining.size());
    for (std::size_t idx : remaining) subset.push_back(natives[idx]);

    // First try the whole remainder at once (common fast path), then
    // fall back to the max-cardinality matching to pick the largest
    // placeable subset.
    std::vector<std::size_t> chosen_members;
    std::vector<std::uint32_t> chosen_assignment;
    if (auto whole = substrate.allocate(subset, {}); whole.ok()) {
      chosen_members = remaining;
      chosen_assignment = std::move(whole.value());
    } else {
      const pmu::PlatformDescription* platform = substrate.platform();
      if (platform != nullptr && platform->group_constrained()) {
        // Pick the group covering the most of the remaining events.
        const pmu::CounterGroup* best = nullptr;
        std::size_t best_cover = 0;
        for (const pmu::CounterGroup& g : platform->groups) {
          std::size_t cover = 0;
          for (std::size_t idx : remaining) {
            if (std::find(g.slots.begin(), g.slots.end(), natives[idx]) !=
                g.slots.end()) {
              ++cover;
            }
          }
          if (cover > best_cover) {
            best_cover = cover;
            best = &g;
          }
        }
        if (best == nullptr) return Error::kConflict;
        for (std::size_t idx : remaining) {
          const auto it =
              std::find(best->slots.begin(), best->slots.end(), natives[idx]);
          if (it != best->slots.end()) {
            chosen_members.push_back(idx);
            chosen_assignment.push_back(
                static_cast<std::uint32_t>(it - best->slots.begin()));
          }
        }
      } else if (auto inst = substrate.translate_allocation(subset, {});
                 !inst.ok()) {
        return inst.error();
      } else {
        const AllocationResult solved = solve_max_cardinality(inst.value());
        if (solved.mapped_count == 0) return Error::kConflict;
        for (std::size_t i = 0; i < remaining.size(); ++i) {
          if (solved.assignment[i] != AllocationResult::kUnassigned) {
            chosen_members.push_back(remaining[i]);
            chosen_assignment.push_back(
                static_cast<std::uint32_t>(solved.assignment[i]));
          }
        }
      }
    }

    std::vector<std::size_t> next_remaining;
    for (std::size_t idx : remaining) {
      if (std::find(chosen_members.begin(), chosen_members.end(), idx) ==
          chosen_members.end()) {
        next_remaining.push_back(idx);
      }
    }
    plans.push_back({std::move(chosen_members), std::move(chosen_assignment)});
    remaining = std::move(next_remaining);
  }
  return plans;
}

}  // namespace papirepro::papi
