// The PAPI standard preset events: "a standard set of events deemed most
// relevant for application performance tuning."  Each substrate maps as
// many of these as possible onto its native events (possibly as derived
// add/subtract combinations) and reports Error::kNoEvent for the rest —
// the availability matrix differs per platform exactly as in real PAPI.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace papirepro::papi {

enum class Preset : std::uint32_t {
  kTotCyc = 0,  ///< PAPI_TOT_CYC: total cycles
  kTotIns,      ///< PAPI_TOT_INS: instructions completed
  kFpIns,       ///< PAPI_FP_INS: floating point instructions
  kFpOps,       ///< PAPI_FP_OPS: floating point operations (FMA = 2)
  kFmaIns,      ///< PAPI_FMA_INS: fused multiply-add instructions
  kFdvIns,      ///< PAPI_FDV_INS: FP divide instructions
  kLdIns,       ///< PAPI_LD_INS: load instructions
  kSrIns,       ///< PAPI_SR_INS: store instructions
  kLstIns,      ///< PAPI_LST_INS: loads + stores
  kL1Dca,       ///< PAPI_L1_DCA: L1 data cache accesses
  kL1Dcm,       ///< PAPI_L1_DCM: L1 data cache misses
  kL1Icm,       ///< PAPI_L1_ICM: L1 instruction cache misses
  kL1Tcm,       ///< PAPI_L1_TCM: L1 total cache misses (derived)
  kL2Tca,       ///< PAPI_L2_TCA: L2 total accesses
  kL2Tcm,       ///< PAPI_L2_TCM: L2 total misses
  kTlbDm,       ///< PAPI_TLB_DM: data TLB misses
  kTlbIm,       ///< PAPI_TLB_IM: instruction TLB misses
  kTlbTl,       ///< PAPI_TLB_TL: total TLB misses (derived)
  kBrIns,       ///< PAPI_BR_INS: conditional branch instructions
  kBrTkn,       ///< PAPI_BR_TKN: taken branches
  kBrMsp,       ///< PAPI_BR_MSP: mispredicted branches
  kBrPrc,       ///< PAPI_BR_PRC: correctly predicted branches (derived)
  kStlCcy,      ///< PAPI_STL_CCY: cycles with no instruction completion
  kMsgSnt,      ///< PAPI_MSG_SNT: messages sent (network components)
  kMsgRcv,      ///< PAPI_MSG_RCV: messages received (network components)
  kCount,       // sentinel
};

inline constexpr std::size_t kNumPresets =
    static_cast<std::size_t>(Preset::kCount);

/// PAPI encodes presets with the high bit set; we keep the convention so
/// the C API's integer codes look familiar.
inline constexpr std::uint32_t kPresetCodeBase = 0x80000000u;

/// PAPI-C style component field: bits 30..24 of an event code carry the
/// owning component's id, so one 32-bit code addresses (component,
/// event).  Component 0 (the CPU core) leaves the field clear, which
/// keeps every legacy code bit-identical.
inline constexpr std::uint32_t kEventComponentShift = 24;
inline constexpr std::uint32_t kEventComponentMask = 0x7f000000u;

constexpr std::uint32_t event_code_component(std::uint32_t code) noexcept {
  return (code & kEventComponentMask) >> kEventComponentShift;
}

constexpr std::uint32_t preset_code(Preset p) noexcept {
  return kPresetCodeBase | static_cast<std::uint32_t>(p);
}

constexpr std::optional<Preset> preset_from_code(std::uint32_t code) noexcept {
  if ((code & kPresetCodeBase) == 0) return std::nullopt;
  const std::uint32_t idx = code & ~(kPresetCodeBase | kEventComponentMask);
  if (idx >= kNumPresets) return std::nullopt;
  return static_cast<Preset>(idx);
}

/// Canonical "PAPI_*" name.
std::string_view preset_name(Preset p) noexcept;

/// Short description, as printed by the avail utility.
std::string_view preset_description(Preset p) noexcept;

/// Parses "PAPI_TOT_CYC"-style names.
std::optional<Preset> preset_from_name(std::string_view name) noexcept;

}  // namespace papirepro::papi
