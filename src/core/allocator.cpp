#include "core/allocator.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <numeric>

namespace papirepro::papi {
namespace {

/// Tries to find an augmenting path starting from event `e`.
/// counter_owner[c] = event currently matched to counter c, or -1.
bool augment(const AllocationInstance& inst, int e,
             std::vector<int>& counter_owner,
             std::vector<char>& visited) {
  for (std::uint32_t c = 0; c < inst.num_counters; ++c) {
    if ((inst.allowed[e] & (1u << c)) == 0 || visited[c]) continue;
    visited[c] = 1;
    if (counter_owner[c] < 0 ||
        augment(inst, counter_owner[c], counter_owner, visited)) {
      counter_owner[c] = e;
      return true;
    }
  }
  return false;
}

AllocationResult run_in_order(const AllocationInstance& inst,
                              const std::vector<int>& order) {
  AllocationResult result;
  result.assignment.assign(inst.allowed.size(),
                           AllocationResult::kUnassigned);
  std::vector<int> counter_owner(inst.num_counters, -1);
  std::vector<char> visited(inst.num_counters, 0);
  for (int e : order) {
    std::fill(visited.begin(), visited.end(), 0);
    if (augment(inst, e, counter_owner, visited)) ++result.mapped_count;
  }
  for (std::uint32_t c = 0; c < inst.num_counters; ++c) {
    if (counter_owner[c] >= 0) {
      result.assignment[counter_owner[c]] = static_cast<int>(c);
    }
  }
  return result;
}

}  // namespace

AllocationResult solve_max_cardinality(const AllocationInstance& inst) {
  assert(inst.num_counters <= 32);
  std::vector<int> order(inst.allowed.size());
  std::iota(order.begin(), order.end(), 0);
  return run_in_order(inst, order);
}

AllocationResult solve_max_weight(const AllocationInstance& inst) {
  assert(inst.num_counters <= 32);
  std::vector<int> order(inst.allowed.size());
  std::iota(order.begin(), order.end(), 0);
  if (!inst.priority.empty()) {
    assert(inst.priority.size() == inst.allowed.size());
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return inst.priority[a] > inst.priority[b];
    });
  }
  return run_in_order(inst, order);
}

AllocationResult solve_greedy_first_fit(const AllocationInstance& inst) {
  AllocationResult result;
  result.assignment.assign(inst.allowed.size(),
                           AllocationResult::kUnassigned);
  std::uint32_t used = 0;
  for (std::size_t e = 0; e < inst.allowed.size(); ++e) {
    const std::uint32_t free_allowed = inst.allowed[e] & ~used;
    if (free_allowed == 0) continue;
    const auto c = static_cast<std::uint32_t>(
        std::countr_zero(free_allowed));
    used |= 1u << c;
    result.assignment[e] = static_cast<int>(c);
    ++result.mapped_count;
  }
  return result;
}

}  // namespace papirepro::papi
