// Memoized counter allocation.  The common EventSet build-up pattern —
// N add_event() calls, each triggering a full rebuild — used to re-run
// the bipartite matcher on every prefix of the native list, and
// plan_multiplex re-solved its whole-remainder probe on every rebuild.
// The matcher is deterministic for a given (event list, priorities)
// pair, so its outcomes — successful assignments *and* kConflict
// failures (a failed full allocation is exactly what routes
// plan_multiplex to its partial-solve fallback) — are memoized here in
// an LRU keyed on that pair.  A repeated identical build is then 100 %
// cache hits, and any build sequence performs at most one solve per
// distinct native list.
//
// Staleness: allocation outcomes can change when the substrate's
// allocation rules change (sim-alpha's estimation mode turns otherwise
// unplaceable events placeable).  Substrate::allocation_generation()
// versions those rules; the cache drops that substrate's entries when
// its generation moves.  One cache serves every registered component:
// entries are keyed on (component id, native list, priorities) — the
// same small native codes recur across component namespaces, so the
// component id is part of identity, and each component's generation is
// tracked independently (an uncore reconfiguration must not flush the
// CPU core's solves).  The cache is mutex-guarded — it sits on the
// EventSet *build* path (add/remove/enable_multiplex), never on the
// read hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include <array>

#include "common/status.h"
#include "core/component.h"
#include "pmu/native_event.h"

namespace papirepro::papi {

class Substrate;
class TelemetryRegistry;

class AllocationCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 128;

  explicit AllocationCache(std::size_t capacity = kDefaultCapacity);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;  ///< generation-change flushes
    std::size_t entries = 0;
  };

  /// Substrate::allocate through the memo: a hit returns the cached
  /// assignment (or cached conflict) without consulting the matcher.
  /// `component` scopes the entry: pass the id the substrate is
  /// registered under (0, the default, is the CPU core component).
  Result<std::vector<std::uint32_t>> allocate(
      const Substrate& substrate,
      std::span<const pmu::NativeEventCode> events,
      std::span<const int> priorities, std::uint32_t component = 0);

  Stats stats() const;
  void clear();
  std::size_t capacity() const noexcept { return capacity_; }

  /// Mirrors hit/miss/eviction/invalidation counts into the library-wide
  /// registry, which outlives the cache.  Called once by the Library.
  void bind_telemetry(TelemetryRegistry* telemetry) noexcept {
    telemetry_.store(telemetry, std::memory_order_relaxed);
  }

 private:
  struct Key {
    std::uint32_t component = 0;
    std::vector<pmu::NativeEventCode> events;
    std::vector<int> priorities;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };
  struct CachedSolve {
    Error error = Error::kOk;  ///< kOk => assignment is valid
    std::vector<std::uint32_t> assignment;
  };
  using LruList = std::list<std::pair<Key, CachedSolve>>;

  std::atomic<TelemetryRegistry*> telemetry_{nullptr};
  mutable std::mutex mutex_;
  std::size_t capacity_;
  /// Last-seen allocation generation per component id.
  std::array<std::uint64_t, kMaxComponents> generations_{};
  Stats stats_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
};

}  // namespace papirepro::papi
