// Counting-mode options (PAPI_set_domain / PAPI_set_opt territory).
// The domain controls which execution contexts a counter observes:
// user-level application work, or the "kernel" work the measurement
// infrastructure itself induces (counter-read system calls, overflow
// handler execution, ProfileMe bookkeeping).  Real PAPI defaults to
// PAPI_DOM_USER; we default to kAll so raw experiments see total machine
// activity, and expose the user-only mode for the perturbation studies.
#pragma once

#include <cstdint>

namespace papirepro::papi {

namespace domain {
inline constexpr std::uint32_t kUser = 0x1;
inline constexpr std::uint32_t kKernel = 0x2;
inline constexpr std::uint32_t kAll = kUser | kKernel;
}  // namespace domain

constexpr bool valid_domain(std::uint32_t mask) noexcept {
  return mask != 0 && (mask & ~domain::kAll) == 0;
}

}  // namespace papirepro::papi
