// The asynchronous sampling pipeline: a per-Library aggregator thread
// that drains the per-context SPSC sample rings and runs the heavy half
// of overflow dispatch — user handlers and ProfileBuffer histogram
// updates — off the counting thread.  This is the shape the paper's
// accuracy/overhead finding points at: statistical sampling converges
// to true counts at 1-2 % overhead while direct counting costs up to
// ~30 %, but only if collecting a sample costs the measured thread no
// more than the interrupt itself.  (ScALPEL makes the same move with
// lock-free buffering between the measured thread and the collector;
// LIKWID layers cheap aggregation above raw counter access.)
//
// Ordering guarantees: records from one ring dispatch in enqueue order
// (SPSC FIFO).  Records from different rings interleave arbitrarily.
// detach() and flush() drain synchronously: when they return, every
// record enqueued before the call has been dispatched — this is what
// makes EventSet::stop() histograms complete (minus accounted drops).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/sample_ring.h"

namespace papirepro::papi {

class TelemetryRegistry;

/// Pipeline knobs (PAPIrepro_set_sampling).  `async` off keeps the seed
/// behaviour: overflow handlers run synchronously inside the counting
/// thread.  Changes apply to EventSets started afterwards.
struct SamplingConfig {
  bool async = false;
  std::size_t ring_capacity = 1024;
  /// Max records drained from one ring per sweep before the aggregator
  /// moves on (keeps one noisy ring from starving the others).
  std::size_t batch_limit = 256;
  /// Aggregator wake-up cadence between explicit kicks.
  std::uint64_t poll_interval_us = 100;
};

/// Cumulative pipeline counters (PAPIrepro_sampling_stats); totals
/// since Library construction, across all rings ever attached.
struct SamplingStats {
  std::uint64_t enqueued = 0;    ///< records accepted by rings
  std::uint64_t dropped = 0;     ///< records lost to full rings
  std::uint64_t dispatched = 0;  ///< records delivered to handlers
  std::uint64_t sweeps = 0;      ///< aggregator drain passes
  std::uint64_t flushes = 0;     ///< synchronous flush/detach drains
  std::uint64_t rings_active = 0;
  std::size_t ring_capacity = 0;  ///< configured capacity for new rings
  bool async = false;
};

/// Owns the aggregator thread (started lazily on the first attach) and
/// the ring registry.  Consumer-side ring operations are serialized by
/// the registry mutex, so sweep/flush/detach may run from any thread
/// without breaking the SPSC contract.
class SamplingAggregator {
 public:
  using Dispatch = std::function<void(const SampleRecord&)>;

  SamplingAggregator() = default;
  ~SamplingAggregator();

  SamplingAggregator(const SamplingAggregator&) = delete;
  SamplingAggregator& operator=(const SamplingAggregator&) = delete;

  void configure(const SamplingConfig& config);
  SamplingConfig config() const;

  /// Registers `ring`; `dispatch` runs on the aggregator thread (or on
  /// the thread calling flush/detach) once per drained record.  The
  /// ring and everything `dispatch` touches must stay alive until
  /// detach() returns.
  void attach(SampleRing* ring, Dispatch dispatch);
  /// Drains the ring to empty, dispatching every record, then removes
  /// it.  Safe to call from a dispatch callback (recursive mutex).
  void detach(SampleRing* ring);
  /// Drains the ring to empty without removing it.
  void flush(SampleRing* ring);

  SamplingStats stats() const;

  /// Mirrors dispatch counts into the library-wide registry (the
  /// aggregator thread registers its own slab on first dispatch).
  /// Called once by the owning Library, which outlives the aggregator.
  void bind_telemetry(TelemetryRegistry* telemetry) noexcept {
    telemetry_.store(telemetry, std::memory_order_relaxed);
  }

 private:
  struct Source {
    SampleRing* ring = nullptr;
    Dispatch dispatch;
    bool dead = false;  ///< detached mid-sweep; pruned after the pass
  };

  void run();
  /// Pops up to `limit` records (0 = to empty) from `source`.  Caller
  /// holds mutex_.
  void drain_locked(Source& source, std::size_t limit);
  void ensure_thread_locked();

  mutable std::recursive_mutex mutex_;
  std::condition_variable_any cv_;
  std::vector<Source> sources_;
  SamplingConfig config_;
  std::thread thread_;
  bool stop_requested_ = false;
  bool sweeping_ = false;  ///< aggregator mid-pass; detach defers erase

  std::atomic<TelemetryRegistry*> telemetry_{nullptr};
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> flushes_{0};
  /// Push/drop totals folded in from rings as they detach (live rings
  /// are summed on demand in stats()).
  std::atomic<std::uint64_t> retired_pushed_{0};
  std::atomic<std::uint64_t> retired_dropped_{0};
};

}  // namespace papirepro::papi
