// Fixed-capacity lock-free SPSC ring for overflow samples.  The
// producer is the substrate's overflow delivery running *inside* the
// counting thread (an interrupt handler, in real-PAPI terms): it must
// never block, never allocate, and never run user code.  The consumer
// is the Library's sampling aggregator thread, which drains records in
// batches and runs the heavy half of dispatch — user handlers and
// ProfileBuffer histogram updates — off the hot path.  When the ring is
// full the producer drops the sample and accounts it (graceful
// degradation: a lost sample biases a statistical profile far less than
// a stalled counting thread biases every count).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace papirepro::papi {

/// One overflow occurrence, as captured at interrupt delivery.  POD so
/// enqueue is a handful of stores; the armed-config index says which
/// handler / profile buffer the aggregator dispatches it to.
struct SampleRecord {
  std::uint32_t config_index = 0;
  std::uint32_t has_precise = 0;
  std::uint64_t pc_observed = 0;
  std::uint64_t pc_precise = 0;
  std::uint64_t addr = 0;
};

/// Single-producer single-consumer bounded queue.  All producer-side
/// state (tail_, dropped_) is written only by the producer; all
/// consumer-side state (head_) only by the consumer.  Capacity is
/// rounded up to a power of two so index masking is a single AND.
class SampleRing {
 public:
  static constexpr std::size_t kMinCapacity = 8;
  static constexpr std::size_t kMaxCapacity = 1u << 20;

  explicit SampleRing(std::size_t capacity) {
    std::size_t cap = kMinCapacity;
    while (cap < capacity && cap < kMaxCapacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<SampleRecord[]>(cap);
  }

  SampleRing(const SampleRing&) = delete;
  SampleRing& operator=(const SampleRing&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }

  /// Producer side.  O(1), wait-free, no allocation; a full ring drops
  /// the record and bumps the drop count instead of blocking.
  bool try_push(const SampleRecord& record) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[tail & mask_] = record;
    tail_.store(tail + 1, std::memory_order_release);
    pushed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Consumer side (the aggregator serializes all callers).
  bool try_pop(SampleRecord& out) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }
  std::size_t size() const noexcept {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  /// Samples enqueued / dropped-on-full since construction.
  std::uint64_t pushed() const noexcept {
    return pushed_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::unique_ptr<SampleRecord[]> slots_;
  /// Consumer cursor and producer cursor on separate cache lines so the
  /// enqueue path never false-shares with the draining aggregator.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace papirepro::papi
