#include "core/eventset.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "core/library.h"

namespace papirepro::papi {

EventSet::EventSet(Library& library, int handle)
    : library_(library), handle_(handle) {}

EventSet::~EventSet() {
  // A set destroyed while its ring is still registered would leave the
  // aggregator draining into freed storage.
  if (ring_attached_) {
    library_.sampling().detach(sample_ring_.get());
    ring_attached_ = false;
  }
}

int EventSet::find_entry(EventId id) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

std::vector<EventId> EventSet::events() const {
  std::vector<EventId> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.id);
  return out;
}

Status EventSet::rebuild(
    const std::vector<Entry>& candidate_entries,
    const std::vector<pmu::NativeEventCode>& candidate_natives,
    const std::vector<std::uint32_t>& candidate_components) {
  if (multiplex_) {
    // Multiplexing stays a single-component (CPU core) feature: slices
    // of one counter file rotated on one timer.
    for (const std::uint32_t component : candidate_components) {
      if (component != 0) return Error::kConflict;
    }
    auto plans = plan_multiplex(library_.substrate(), candidate_natives,
                                &library_.allocation_cache());
    if (!plans.ok()) return plans.error();
    mux_plans_ = std::move(plans.value());
    mux_group_events_.assign(mux_plans_.size(), {});
    for (std::size_t g = 0; g < mux_plans_.size(); ++g) {
      mux_group_events_[g].reserve(mux_plans_[g].members.size());
      for (std::size_t idx : mux_plans_[g].members) {
        mux_group_events_[g].push_back(candidate_natives[idx]);
      }
    }
    std::vector<ComponentSlice> slices;
    if (!candidate_natives.empty()) {
      ComponentSlice slice;
      slice.count = candidate_natives.size();
      slice.comp = library_.components_.at(0);
      slices.push_back(std::move(slice));
    }
    entries_ = candidate_entries;
    natives_ = candidate_natives;
    native_components_ = candidate_components;
    slices_ = std::move(slices);
    rebuild_flat_terms();
    // Membership changed: the stop() snapshot and the cross-thread
    // publication describe the old member list — drop both.
    stopped_raw_valid_ = false;
    publish_clear();
    return Error::kOk;
  }

  // Order natives ascending by component (stable within a component) so
  // each component's share is contiguous, and remap every entry's term
  // indices to the new order.
  std::vector<std::size_t> order(candidate_natives.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return candidate_components[a] <
                            candidate_components[b];
                   });
  std::vector<pmu::NativeEventCode> sorted_natives;
  std::vector<std::uint32_t> sorted_components;
  std::vector<std::size_t> remap(order.size());
  sorted_natives.reserve(order.size());
  sorted_components.reserve(order.size());
  for (std::size_t new_index = 0; new_index < order.size(); ++new_index) {
    const std::size_t old_index = order[new_index];
    remap[old_index] = new_index;
    sorted_natives.push_back(candidate_natives[old_index]);
    sorted_components.push_back(candidate_components[old_index]);
  }

  // One allocation per component slice, each against its own substrate
  // and its own (component-keyed) memo entry.
  std::vector<ComponentSlice> slices;
  std::size_t begin = 0;
  while (begin < sorted_natives.size()) {
    const std::uint32_t component = sorted_components[begin];
    std::size_t end = begin;
    while (end < sorted_natives.size() &&
           sorted_components[end] == component) {
      ++end;
    }
    Substrate* substrate = library_.component_substrate(component);
    if (substrate == nullptr) return Error::kNoComponent;
    auto assignment = library_.allocation_cache().allocate(
        *substrate,
        std::span<const pmu::NativeEventCode>(sorted_natives)
            .subspan(begin, end - begin),
        {}, component);
    if (!assignment.ok()) return assignment.error();
    ComponentSlice slice;
    slice.component = component;
    slice.offset = begin;
    slice.count = end - begin;
    slice.assignment = std::move(assignment).value();
    slice.comp = library_.components_.at(component);
    slices.push_back(std::move(slice));
    begin = end;
  }

  std::vector<Entry> remapped_entries = candidate_entries;
  for (Entry& entry : remapped_entries) {
    for (TermRef& term : entry.terms) {
      term.native_index = remap[term.native_index];
    }
  }
  entries_ = std::move(remapped_entries);
  natives_ = std::move(sorted_natives);
  native_components_ = std::move(sorted_components);
  slices_ = std::move(slices);
  rebuild_flat_terms();
  // Membership changed: the stop() snapshot and the cross-thread
  // publication describe the old member list — drop both.
  stopped_raw_valid_ = false;
  publish_clear();
  return Error::kOk;
}

void EventSet::rebuild_flat_terms() {
  // Flatten the term lists for the read hot path: one contiguous array,
  // rebuilt whenever membership changes (both rebuild() branches).
  flat_terms_.clear();
  calc_.clear();
  calc_.reserve(entries_.size());
  for (const Entry& e : entries_) {
    calc_.push_back({static_cast<std::uint32_t>(flat_terms_.size()),
                     static_cast<std::uint32_t>(e.terms.size())});
    for (const TermRef& t : e.terms) {
      flat_terms_.push_back({static_cast<std::uint32_t>(t.native_index),
                             static_cast<std::int32_t>(t.coefficient)});
    }
  }
  terms_identity_ = flat_terms_.size() == calc_.size();
  if (terms_identity_) {
    for (std::size_t i = 0; i < flat_terms_.size(); ++i) {
      if (flat_terms_[i].native_index != i ||
          flat_terms_[i].coefficient != 1) {
        terms_identity_ = false;
        break;
      }
    }
  }
}

namespace {

/// Dedup key for a native within a set: codes repeat across component
/// namespaces, so identity is the (component, code) pair.
constexpr std::uint64_t native_key(std::uint32_t component,
                                   pmu::NativeEventCode code) noexcept {
  return (static_cast<std::uint64_t>(component) << 32) | code;
}

}  // namespace

Status EventSet::add_event(EventId id) {
  if (running()) return Error::kIsRunning;
  if (find_entry(id) >= 0) return Error::kConflict;  // already present
  auto info = library_.component_info(id.component);
  if (!info.ok()) return info.error();
  if (!info.value().enabled) return Error::kComponentDisabled;
  if (multiplex_ && id.component != 0) {
    return Error::kConflict;  // mux is a single-component feature
  }
  Substrate& substrate = *library_.component_substrate(id.component);

  // Resolve the event into native terms within its component's
  // namespace.
  std::vector<MappingTerm> terms;
  if (id.is_preset()) {
    auto mapping = substrate.preset_mapping(id.as_preset());
    if (!mapping.ok()) return mapping.error();
    terms = std::move(mapping.value().terms);
  } else {
    auto name = substrate.native_name(id.as_native());
    if (!name.ok()) return name.error();
    terms = {{id.as_native(), 1}};
  }

  // Expand into the candidate native list, sharing natives already
  // required by other member events (hashed index instead of a linear
  // scan per term).
  std::vector<pmu::NativeEventCode> candidate_natives = natives_;
  std::vector<std::uint32_t> candidate_components = native_components_;
  std::unordered_map<std::uint64_t, std::size_t> native_index;
  native_index.reserve(candidate_natives.size() + terms.size());
  for (std::size_t i = 0; i < candidate_natives.size(); ++i) {
    native_index.emplace(
        native_key(candidate_components[i], candidate_natives[i]), i);
  }
  Entry entry{id, {}};
  for (const MappingTerm& t : terms) {
    const auto [it, inserted] = native_index.try_emplace(
        native_key(id.component, t.native), candidate_natives.size());
    if (inserted) {
      candidate_natives.push_back(t.native);
      candidate_components.push_back(id.component);
    }
    entry.terms.push_back({it->second, t.coefficient});
  }
  std::vector<Entry> candidate_entries = entries_;
  candidate_entries.push_back(std::move(entry));

  return rebuild(candidate_entries, candidate_natives,
                 candidate_components);
}

Status EventSet::add_named(std::string_view name) {
  auto id = library_.event_from_name(name);
  if (!id.ok()) return id.error();
  return add_event(id.value());
}

Status EventSet::remove_event(EventId id) {
  if (running()) return Error::kIsRunning;
  const int pos = find_entry(id);
  if (pos < 0) return Error::kNoEvent;

  std::vector<Entry> candidate_entries = entries_;
  candidate_entries.erase(candidate_entries.begin() + pos);

  // Recompute the native list from scratch (drop now-unused natives),
  // deduplicating through a hashed index instead of a scan per term.
  std::vector<pmu::NativeEventCode> candidate_natives;
  std::vector<std::uint32_t> candidate_components;
  std::unordered_map<std::uint64_t, std::size_t> native_index;
  for (Entry& e : candidate_entries) {
    for (TermRef& ref : e.terms) {
      const pmu::NativeEventCode code = natives_[ref.native_index];
      const std::uint32_t component =
          native_components_[ref.native_index];
      const auto [it, inserted] = native_index.try_emplace(
          native_key(component, code), candidate_natives.size());
      if (inserted) {
        candidate_natives.push_back(code);
        candidate_components.push_back(component);
      }
      ref.native_index = it->second;
    }
  }
  overflow_configs_.erase(
      std::remove_if(
          overflow_configs_.begin(), overflow_configs_.end(),
          [&](const std::shared_ptr<OverflowConfig>& c) {
            return c->id == id;
          }),
      overflow_configs_.end());
  return rebuild(candidate_entries, candidate_natives,
                 candidate_components);
}

Status EventSet::enable_multiplex(std::uint64_t slice_cycles) {
  if (running()) return Error::kIsRunning;
  if (!library_.substrate().supports_multiplex()) return Error::kNoSupport;
  if (slice_cycles == 0) return Error::kInvalid;
  if (!overflow_configs_.empty()) return Error::kConflict;
  for (const std::uint32_t component : native_components_) {
    if (component != 0) return Error::kConflict;  // mux is CPU-only
  }
  multiplex_ = true;
  mux_slice_cycles_ = slice_cycles;
  return rebuild(entries_, natives_, native_components_);
}

Status EventSet::program_mux_group(std::size_t g) {
  // The member event list is prebuilt at rebuild(): a slice rotation
  // reprograms the counters without allocating.
  return context_->program(mux_group_events_[g], mux_plans_[g].assignment);
}

Status EventSet::set_domain(std::uint32_t domain_mask) {
  if (running()) return Error::kIsRunning;
  if (!valid_domain(domain_mask)) return Error::kInvalid;
  domain_mask_ = domain_mask;
  return Error::kOk;
}

Status EventSet::program_and_arm() {
  const auto apply_domain = [this](CounterContext* context) -> Status {
    const Status s = context->set_domain(domain_mask_);
    if (!s.ok() && !(s.error() == Error::kNoSupport &&
                     domain_mask_ == domain::kAll)) {
      return s;
    }
    return Error::kOk;
  };
  if (multiplex_) {
    PAPIREPRO_RETURN_IF_ERROR(apply_domain(context_));
    mux_state_.assign(mux_plans_.size(), {});
    for (std::size_t g = 0; g < mux_plans_.size(); ++g) {
      mux_state_[g].accum.assign(mux_plans_[g].members.size(), 0);
    }
    mux_current_ = 0;
    PAPIREPRO_RETURN_IF_ERROR(program_mux_group(0));
    return Error::kOk;
  }
  // Program every component slice, ascending component order.
  for (ComponentSlice& slice : slices_) {
    attributed_component_ = slice.component;
    PAPIREPRO_RETURN_IF_ERROR(apply_domain(slice.context));
    PAPIREPRO_RETURN_IF_ERROR(slice.context->program(
        std::span<const pmu::NativeEventCode>(natives_)
            .subspan(slice.offset, slice.count),
        slice.assignment));
  }
  attributed_component_ = 0;  // overflow arming is a CPU-core feature
  return arm_overflows();
}

Status EventSet::arm_overflows() {
  armed_event_indices_.clear();
  for (std::size_t i = 0; i < overflow_configs_.size(); ++i) {
    PAPIREPRO_RETURN_IF_ERROR(arm_overflow(i));
  }
  return Error::kOk;
}

void EventSet::dispatch_overflow(const OverflowConfig& config,
                                 const SubstrateOverflow& o) {
  // An interrupt in flight when clear_overflow() disarmed this config
  // still gets delivered (the PMU latches the handler at trigger time);
  // drop it here so a cleared event never dispatches again.
  if (config.retired.load(std::memory_order_acquire)) {
    library_.telemetry().bump(TelemetryCounter::kOverflowsSuppressed);
    return;
  }
  if (config.profile != nullptr) {
    config.profile->record(config.prefer_precise && o.has_precise
                               ? o.pc_precise
                               : o.pc_observed);
    return;
  }
  if (config.handler) {
    config.handler(*this, OverflowEvent{.event = config.id,
                                        .pc_observed = o.pc_observed,
                                        .pc_precise = o.pc_precise,
                                        .has_precise = o.has_precise,
                                        .addr = o.addr});
  }
}

Status EventSet::arm_overflow(std::size_t config_index) {
  // The armed callback owns its config through the shared_ptr: later
  // clear_overflow()/set_overflow() calls may erase or reallocate
  // overflow_configs_ without invalidating anything the substrate still
  // holds.
  std::shared_ptr<OverflowConfig> config = overflow_configs_[config_index];
  const int pos = find_entry(config->id);
  assert(pos >= 0);
  const Entry& entry = entries_[pos];
  assert(entry.terms.size() == 1);
  const auto event_index =
      static_cast<std::uint32_t>(entry.terms.front().native_index);
  Status armed = Error::kOk;
  if (async_active_) {
    // Deferred delivery: the interrupt-side callback is a wait-free,
    // allocation-free ring enqueue; the aggregator runs the heavy half.
    // The callback co-owns the ring — a late delivery after this run's
    // ring is replaced pushes into a detached (but live) ring and is
    // simply never drained.
    std::shared_ptr<SampleRing> ring = sample_ring_;
    const auto idx = static_cast<std::uint32_t>(config_index);
    // The registry outlives every armed callback (it is the Library's
    // first member); counter bumps are safe from the delivery context,
    // but no trace record here — tracing reads the counting thread's
    // clock, and deferred delivery may run elsewhere.
    TelemetryRegistry* telemetry = &library_.telemetry();
    armed = context_->set_overflow(
        event_index, config->threshold,
        [ring, idx, telemetry](const SubstrateOverflow& o) {
          const bool pushed = ring->try_push(SampleRecord{
              .config_index = idx,
              .has_precise = o.has_precise ? 1u : 0u,
              .pc_observed = o.pc_observed,
              .pc_precise = o.pc_precise,
              .addr = o.addr});
          telemetry->bump(pushed ? TelemetryCounter::kSamplesEnqueued
                                 : TelemetryCounter::kSamplesDropped);
        },
        OverflowDeliveryMode::kDeferred);
  } else {
    armed = context_->set_overflow(
        event_index, config->threshold,
        [this, config](const SubstrateOverflow& o) {
          // Synchronous delivery runs on the counting thread, so the
          // context clock is safe to stamp here.
          if (context_ != nullptr) {
            library_.telemetry().trace_instant(
                TraceEventKind::kOverflowDispatch, context_->cycles(),
                static_cast<std::uint64_t>(handle_));
          }
          dispatch_overflow(*config, o);
        },
        OverflowDeliveryMode::kSynchronous);
  }
  if (armed.ok()) armed_event_indices_.push_back(event_index);
  return armed;
}

void EventSet::disarm_overflows() {
  for (const std::uint32_t event_index : armed_event_indices_) {
    (void)context_->clear_overflow(event_index);
  }
  armed_event_indices_.clear();
  if (ring_attached_) {
    // Synchronous drain: every sample enqueued before this point is
    // dispatched before detach() returns, so a stopped set's histogram
    // is complete (minus accounted drops).
    library_.sampling().detach(sample_ring_.get());
    ring_attached_ = false;
  }
  async_active_ = false;
}

void EventSet::preallocate_scratch() {
  // Size every buffer the running paths touch, so read()/accum()/stop()
  // and the mux slice rotation reuse capacity instead of allocating.
  scratch_raw_.assign(natives_.size(), 0);
  scratch_values_.assign(entries_.size(), 0);
  std::size_t max_group = 0;
  for (const MuxGroupPlan& plan : mux_plans_) {
    max_group = std::max(max_group, plan.members.size());
  }
  scratch_live_.assign(multiplex_ ? max_group : 0, 0);
  stopped_raw_.reserve(natives_.size());  // stop() snapshots into this
  // Per-native fold/latch/flag state: last good values start at the
  // post-reset zero point, fidelity flags start clean.
  folds_.assign(natives_.size(), NativeFold{});
}

Status EventSet::start() {
  if (running()) return Error::kIsRunning;
  if (entries_.empty()) return Error::kInvalid;
  // Claim the calling thread's running slot; kIsRunning when another
  // set already runs on this thread (the per-thread rule).  Then bind
  // each component slice to this thread's context for that component
  // (component 0's exists from registration; the rest are created
  // lazily, on this thread, on first use).
  auto thread = library_.acquire_thread(this);
  if (!thread.ok()) return thread.error();
  ThreadRegistry::ThreadState& tstate = *thread.value();
  for (ComponentSlice& slice : slices_) {
    auto ctx = library_.component_context(tstate, slice.component);
    if (!ctx.ok()) {
      for (ComponentSlice& s : slices_) s.context = nullptr;
      library_.release_context(this);
      return ctx.error();
    }
    slice.context = ctx.value();
  }
  // The primary (lowest-component) context drives clocks, overflow, and
  // multiplexing; slices are never empty here (entries_ is not).
  context_ = slices_.front().context;

  // Delivery mode is latched per run from the library-wide sampling
  // config; the ring is created before the (retryable) arming sequence
  // and registered with the aggregator only once, after success.
  const SamplingConfig sampling_config = library_.sampling().config();
  async_active_ = sampling_config.async && !multiplex_ &&
                  !overflow_configs_.empty();
  if (async_active_) {
    sample_ring_ = std::make_shared<SampleRing>(
        sampling_config.ring_capacity);
  }

  auto abort_start = [this](Status status) {
    // A partially-armed run must not leave stale callbacks on the
    // context it is about to hand back.
    for (const std::uint32_t event_index : armed_event_indices_) {
      (void)context_->clear_overflow(event_index);
    }
    armed_event_indices_.clear();
    async_active_ = false;
    library_.release_context(this);
    context_ = nullptr;
    for (ComponentSlice& s : slices_) s.context = nullptr;
    return status;
  };
  // Transient substrate faults (a counter file briefly busy, an
  // interrupted syscall) are retried as one unit — program is idempotent
  // on a stopped context, so re-running the whole sequence is safe.
  // Slices start ascending by component; a mid-sequence failure unwinds
  // the already-started slices (descending) before the unit returns, so
  // a retry never observes a half-started fan-out.
  const Status started = library_.run_with_retries([this]() -> Status {
    // Health gate first: a quarantined slice rejects the whole start
    // fast (kComponentQuarantined is not transient, so the retry loop
    // never sleeps in backoff on a dead component).
    for (const ComponentSlice& slice : slices_) {
      attributed_component_ = slice.component;
      PAPIREPRO_RETURN_IF_ERROR(library_.health_admit(slice.component));
    }
    PAPIREPRO_RETURN_IF_ERROR(program_and_arm());
    if (multiplex_) {
      attributed_component_ = 0;
      PAPIREPRO_RETURN_IF_ERROR(context_->reset_counts());
      return context_->start();
    }
    for (ComponentSlice& slice : slices_) {
      attributed_component_ = slice.component;
      PAPIREPRO_RETURN_IF_ERROR(slice.context->reset_counts());
    }
    for (std::size_t i = 0; i < slices_.size(); ++i) {
      attributed_component_ = slices_[i].component;
      const Status s = slices_[i].context->start();
      if (!s.ok()) {
        for (std::size_t j = i; j-- > 0;) (void)slices_[j].context->stop();
        return s;
      }
    }
    return Error::kOk;
  });
  if (!started.ok()) {
    library_.health_record(attributed_component_, started.error());
    return abort_start(started);
  }
  for (const ComponentSlice& slice : slices_) {
    library_.health_record(slice.component, Error::kOk);
  }
  state_ = State::kRunning;
  degradations_ = 0;
  preallocate_scratch();

  // Overhead attribution window: everything the context's clock charges
  // to measurement infrastructure between here and stop() is this run's
  // overhead; the wall window is its denominator.
  overhead_base_ = context_->overhead_cycles();
  window_base_ = context_->cycles();
  library_.telemetry().bump(TelemetryCounter::kStarts);
  for (const ComponentSlice& slice : slices_) {
    library_.telemetry().bump_component(slice.component,
                                        ComponentCounter::kStarts);
  }
  library_.telemetry().trace_instant(TraceEventKind::kStart, window_base_,
                                     static_cast<std::uint64_t>(handle_));

  if (async_active_) {
    // The dispatch closure owns a snapshot of the armed configs (each a
    // shared_ptr copy), so records drained after a clear_overflow() or
    // reconfiguration still resolve to live storage.
    std::vector<std::shared_ptr<OverflowConfig>> snapshot =
        overflow_configs_;
    library_.sampling().attach(
        sample_ring_.get(),
        [this, snapshot = std::move(snapshot)](const SampleRecord& r) {
          if (r.config_index >= snapshot.size()) return;
          dispatch_overflow(
              *snapshot[r.config_index],
              SubstrateOverflow{.event_index = 0,
                                .pc_observed = r.pc_observed,
                                .pc_precise = r.pc_precise,
                                .has_precise = r.has_precise != 0,
                                .addr = r.addr});
        });
    ring_attached_ = true;
  }

  // Arm wraparound folding against each component substrate's counter
  // width; the accumulators live in folds_ (zeroed by
  // preallocate_scratch above), the masks per slice.
  for (ComponentSlice& slice : slices_) {
    const std::uint32_t width =
        library_.component_substrate(slice.component)->counter_width_bits();
    slice.wrap_mask = width < 64 ? (1ULL << width) - 1 : ~0ULL;
  }

  // Counters are at the post-reset zero point: publish it so batch
  // readers on other threads see this set as running-from-zero rather
  // than serving the previous run's finals.
  publish_values({}, kPubRunning);

  if (multiplex_) {
    mux_window_start_ = mux_slice_start_ = context_->cycles();
    auto timer =
        context_->add_timer(mux_slice_cycles_, [this] { rotate_mux(); });
    if (!timer.ok()) {
      // Degradation ladder: no timer service — fall back to sequential
      // slices, rotated by read()/accum() instead of aborting the run.
      mux_timer_id_ = -1;
      degradations_ |= degradation::kMuxSequential;
      library_.telemetry().bump(TelemetryCounter::kDegradations);
      library_.telemetry().trace_instant(TraceEventKind::kDegrade,
                                         context_->cycles(),
                                         degradation::kMuxSequential);
    } else {
      mux_timer_id_ = timer.value();
    }
  }
  return Error::kOk;
}

void EventSet::rotate_mux() {
  if (!running() || mux_plans_.size() < 2) return;

  // One clock snapshot at entry, reused for both the closing slice's
  // active-cycle accounting and the opening slice's start mark: the
  // rotation's own stop/read/program overhead is charged to neither
  // slice (it used to inflate the closing slice's active window, biasing
  // its scale-up factor low).
  const std::uint64_t now = context_->cycles();

  // Close the current slice.
  (void)context_->stop();
  scratch_live_.assign(mux_plans_[mux_current_].members.size(), 0);
  (void)context_->read(scratch_live_);
  MuxGroupState& st = mux_state_[mux_current_];
  for (std::size_t i = 0; i < scratch_live_.size(); ++i) {
    st.accum[i] += scratch_live_[i];
  }
  st.active_cycles += now - mux_slice_start_;

  // Open the next one.
  mux_current_ = (mux_current_ + 1) % mux_plans_.size();
  (void)program_mux_group(mux_current_);
  (void)context_->reset_counts();
  (void)context_->start();
  mux_slice_start_ = now;

  TelemetryRegistry& telemetry = library_.telemetry();
  telemetry.bump(TelemetryCounter::kMuxRotations);
  if (telemetry.tracing()) {
    const std::uint64_t after = context_->cycles();
    telemetry.trace(TraceEventKind::kRotate, now,
                    after > now ? after - now : 0,
                    static_cast<std::uint64_t>(mux_current_));
  }
}

inline Status EventSet::read_slice(ComponentSlice& slice,
                            std::vector<std::uint64_t>& raw_out) {
  std::span<std::uint64_t> window(raw_out.data() + slice.offset,
                                  slice.count);
  // Health breaker + retry wrapper around the substrate read; the
  // lambda captures by reference, so the hot path stays allocation-free,
  // and the component entry was resolved at rebuild() so the bracket is
  // two relaxed loads on one already-hot line.
  const Status status = library_.run_slice_op(
      *slice.comp, [&] { return slice.context->read(window); });
  NativeFold* folds = folds_.data() + slice.offset;
  if (!status.ok()) {
    // Partial-failure semantics: serve the last latched good values and
    // flag them.  read_ex() keeps going; read() propagates the error.
    const std::uint8_t fail_flags = static_cast<std::uint8_t>(
        read_flag::kStale | (status.error() == Error::kComponentQuarantined
                                 ? read_flag::kQuarantined
                                 : 0));
    for (std::size_t i = 0; i < slice.count; ++i) {
      window[i] = folds[i].latched;
      folds[i].read_flags = folds[i].sticky_flags | fail_flags;
    }
    return status;
  }
  if (slice.wrap_mask == ~0ULL) {
    // Full-width counters count up monotonically from the start()/
    // reset() zero point; a regression is an impossible delta — flag
    // the native suspect (sticky) and serve the last good value rather
    // than silently trusting it.  Narrow counters cannot make this
    // call (a wrap is indistinguishable from a regression).
    for (std::size_t i = 0; i < slice.count; ++i) {
      NativeFold& f = folds[i];
      const std::uint64_t raw = window[i];
      if (raw < f.wrap_last) [[unlikely]] {
        f.sticky_flags |= read_flag::kSuspect;
        library_.telemetry().bump(TelemetryCounter::kSanityFaults);
        window[i] = f.latched;
      } else {
        f.wrap_last = raw;
        f.latched = raw;
      }
      f.read_flags = f.sticky_flags;
    }
    return Error::kOk;
  }
  // Narrow counters wrap: trust only the delta since the previous
  // read, folded modulo the counter width into the 64-bit
  // accumulator.  Any reader cadence faster than one wrap period
  // recovers exact totals.
  for (std::size_t i = 0; i < slice.count; ++i) {
    NativeFold& f = folds[i];
    const std::uint64_t raw = window[i] & slice.wrap_mask;
    f.wrap_accum += (raw - f.wrap_last) & slice.wrap_mask;
    f.wrap_last = raw;
    window[i] = f.wrap_accum;
    f.latched = f.wrap_accum;
    f.read_flags = f.sticky_flags;
  }
  return Error::kOk;
}

Status EventSet::read_folded(std::vector<std::uint64_t>& raw_out) {
  // Fan out across the component slices in ascending component order —
  // the coherent snapshot order every reader (read/accum/stop) shares.
  // All-or-nothing: the first failing slice fails the read (read_ex()
  // is the partial-failure path).
  for (ComponentSlice& slice : slices_) {
    PAPIREPRO_RETURN_IF_ERROR(read_slice(slice, raw_out));
  }
  return Error::kOk;
}

Status EventSet::snapshot_raw(std::vector<std::uint64_t>& raw_out) {
  raw_out.assign(natives_.size(), 0);

  if (!multiplex_) {
    return read_folded(raw_out);
  }

  const std::uint64_t now = context_->cycles();
  if (running()) {
    scratch_live_.assign(mux_plans_[mux_current_].members.size(), 0);
    PAPIREPRO_RETURN_IF_ERROR(library_.run_with_retries(
        [&] { return context_->read(scratch_live_); }));
  }
  const std::uint64_t window =
      now > mux_window_start_ ? now - mux_window_start_ : 0;

  for (std::size_t g = 0; g < mux_plans_.size(); ++g) {
    const MuxGroupPlan& plan = mux_plans_[g];
    const MuxGroupState& st = mux_state_[g];
    std::uint64_t active = st.active_cycles;
    for (std::size_t i = 0; i < plan.members.size(); ++i) {
      std::uint64_t raw = st.accum[i];
      if (running() && g == mux_current_) {
        raw += scratch_live_[i];  // current slice is still open
      }
      std::uint64_t active_g = active;
      if (running() && g == mux_current_ && now > mux_slice_start_) {
        active_g += now - mux_slice_start_;
      }
      // Scale the observed counts up by the fraction of the window this
      // group was actually live — the estimation step whose convergence
      // Section 2 warns about.
      double scaled = static_cast<double>(raw);
      if (active_g > 0 && window > 0) {
        scaled *= static_cast<double>(window) /
                  static_cast<double>(active_g);
      }
      raw_out[plan.members[i]] =
          static_cast<std::uint64_t>(std::llround(scaled));
    }
  }
  return Error::kOk;
}

inline void EventSet::compute_values(std::span<const std::uint64_t> raw,
                              std::span<long long> out) const {
  // Walks the rebuild-time flattened term array sequentially — no
  // per-entry vector indirection on the hot path.
  const std::size_t n = std::min(calc_.size(), out.size());
  if (terms_identity_) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<long long>(raw[i]);
    }
    return;
  }
  const FlatTerm* terms = flat_terms_.data();
  for (std::size_t i = 0; i < n; ++i) {
    const EntryCalc c = calc_[i];
    long long v = 0;
    for (std::uint32_t t = 0; t < c.count; ++t) {
      const FlatTerm& ft = terms[c.begin + t];
      v += static_cast<long long>(ft.coefficient) *
           static_cast<long long>(raw[ft.native_index]);
    }
    out[i] = v;
  }
}

void EventSet::compute_flags(std::span<std::uint32_t> flags) const {
  // An event's fidelity is the OR over its term natives: one stale term
  // makes a derived value stale.
  const FlatTerm* terms = flat_terms_.data();
  const std::size_t n = std::min(calc_.size(), flags.size());
  for (std::size_t i = 0; i < n; ++i) {
    const EntryCalc c = calc_[i];
    std::uint32_t f = read_flag::kValid;
    for (std::uint32_t t = 0; t < c.count; ++t) {
      f |= folds_[terms[c.begin + t].native_index].read_flags;
    }
    flags[i] = f;
  }
}

std::uint32_t EventSet::folded_read_flags() const noexcept {
  std::uint32_t f = read_flag::kValid;
  for (const NativeFold& fold : folds_) f |= fold.read_flags;
  return f;
}

// --- cross-thread value publication ----------------------------------------

inline void EventSet::publish_values(std::span<const long long> values,
                              std::uint32_t pub_state) noexcept {
  // Seqlock write (single writer: the owning thread).  The release
  // fence orders the odd seq store before the data stores; the final
  // release store orders the data before the even seq — a reader that
  // sees the same even seq on both sides of its copy got a consistent
  // snapshot.  All data fields are atomics, so a torn interleaving is
  // discarded by the seq check, never undefined behaviour.
  // Stamp the publication age before opening the bracket: the stamp is
  // the liveness signal collectors key on (a publication whose stamp
  // stops advancing belongs to a stalled or dead rank).  The running
  // context's clock is authoritative while live; stop() publishes after
  // releasing, so fall back to the library's timer substrate.
  const std::uint64_t now = context_ != nullptr
                                ? context_->cycles()
                                : library_.real_cycles();
  Published& p = published_;
  const std::uint32_t s = pub_seq_shadow_;
  pub_seq_shadow_ = s + 2;
  p.seq.store(s + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  const std::size_t n = std::min(calc_.size(), kMaxPublishedValues);
  p.state.store(pub_state, std::memory_order_relaxed);
  p.pub_cycles.store(now, std::memory_order_relaxed);
  p.num_events.store(static_cast<std::uint32_t>(calc_.size()),
                     std::memory_order_relaxed);
  p.stored.store(static_cast<std::uint32_t>(n), std::memory_order_relaxed);
  const NativeFold* folds = folds_.data();
  if (terms_identity_ && values.size() >= n) [[likely]] {
    // One fused pass, flags straight from the per-native fold records —
    // the steady-state read's publication cost is this loop plus the
    // seq bracket.
    for (std::size_t i = 0; i < n; ++i) {
      p.values[i].store(values[i], std::memory_order_relaxed);
      p.flags[i].store(folds[i].read_flags, std::memory_order_relaxed);
    }
    p.seq.store(s + 2, std::memory_order_release);
    return;
  }
  const FlatTerm* terms = flat_terms_.data();
  for (std::size_t i = 0; i < n; ++i) {
    p.values[i].store(i < values.size() ? values[i] : 0,
                      std::memory_order_relaxed);
    const EntryCalc c = calc_[i];
    std::uint8_t f = 0;
    for (std::uint32_t t = 0; t < c.count; ++t) {
      f |= folds[terms[c.begin + t].native_index].read_flags;
    }
    p.flags[i].store(f, std::memory_order_relaxed);
  }
  p.seq.store(s + 2, std::memory_order_release);
}

void EventSet::publish_clear() noexcept {
  Published& p = published_;
  const std::uint32_t s = pub_seq_shadow_;
  pub_seq_shadow_ = s + 2;
  p.seq.store(s + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  p.state.store(kPubNeverRan, std::memory_order_relaxed);
  p.pub_cycles.store(0, std::memory_order_relaxed);
  p.num_events.store(0, std::memory_order_relaxed);
  p.stored.store(0, std::memory_order_relaxed);
  p.seq.store(s + 2, std::memory_order_release);
}

Status EventSet::read_ex(std::span<long long> out,
                         std::span<std::uint32_t> flags) {
  if (out.size() < entries_.size() || flags.size() < entries_.size()) {
    return Error::kInvalid;
  }
  if (!running() && !stopped_raw_valid_) return Error::kNotRunning;
  TelemetryRegistry& telemetry = library_.telemetry();
  telemetry.bump(TelemetryCounter::kReads);
  if (!running() && stopped_raw_valid_) {
    compute_values(stopped_raw_, out);
    // The stop() snapshot's fidelity was persisted into the sticky
    // flags; surface those.
    for (NativeFold& f : folds_) f.read_flags = f.sticky_flags;
    compute_flags(flags);
    return Error::kOk;
  }
  if (multiplex_) {
    // Estimation is single-component (CPU) — no partial-failure story;
    // plain read semantics with pass-through flags.
    if ((degradations_ & degradation::kMuxSequential) != 0) rotate_mux();
    PAPIREPRO_RETURN_IF_ERROR(snapshot_raw(scratch_raw_));
    telemetry.bump_component(0, ComponentCounter::kReads);
    compute_values(scratch_raw_, out);
    for (NativeFold& f : folds_) f.read_flags = f.sticky_flags;
    compute_flags(flags);
    publish_values(out, kPubRunning);
    return Error::kOk;
  }
  // The partial-failure fan-out: every slice is attempted; a failing
  // slice serves latched values (read_slice fills flags + window), and
  // the read as a whole still succeeds.  read_slice overwrites every
  // native in its window, so no zero-fill is needed first.
  for (ComponentSlice& slice : slices_) {
    const Status s = read_slice(slice, scratch_raw_);
    if (s.ok()) {
      telemetry.bump_component(slice.component, ComponentCounter::kReads);
    }
  }
  compute_values(scratch_raw_, out);
  compute_flags(flags);
  publish_values(out, kPubRunning);
  return Error::kOk;
}

Status EventSet::read(std::span<long long> out) {
  if (out.size() < entries_.size()) return Error::kInvalid;
  TelemetryRegistry& telemetry = library_.telemetry();
  if (!running()) {
    if (!stopped_raw_valid_) return Error::kNotRunning;
    telemetry.bump(TelemetryCounter::kReads);
    compute_values(stopped_raw_, out);
    return Error::kOk;
  }
  if (multiplex_ || telemetry.tracing()) [[unlikely]] {
    telemetry.bump(TelemetryCounter::kReads);
    if (multiplex_ && (degradations_ & degradation::kMuxSequential) != 0) {
      rotate_mux();  // sequential-slice fallback: reads drive rotation
    }
    const bool tracing = telemetry.tracing();
    const std::uint64_t ts = tracing ? context_->cycles() : 0;
    PAPIREPRO_RETURN_IF_ERROR(snapshot_raw(scratch_raw_));
    for (const ComponentSlice& slice : slices_) {
      telemetry.bump_component(slice.component, ComponentCounter::kReads);
    }
    compute_values(scratch_raw_, out);
    publish_values(out, kPubRunning);
    if (tracing) {
      const std::uint64_t after = context_->cycles();
      telemetry.trace(TraceEventKind::kRead, ts,
                      after > ts ? after - ts : 0,
                      static_cast<std::uint64_t>(handle_));
    }
    return Error::kOk;
  }
  // Non-mux, non-tracing steady state — the sub-10 ns target path.
  // read_slice overwrites every native in its window (slices partition
  // natives_), so the old pre-read zero-fill is skipped, and telemetry
  // folds into one fused bump after success instead of separate
  // library-wide and per-component touches.
  for (ComponentSlice& slice : slices_) {
    const Status s = read_slice(slice, scratch_raw_);
    if (!s.ok()) {
      telemetry.bump(TelemetryCounter::kReads);  // attempts still count
      return s;
    }
  }
  compute_values(scratch_raw_, out);
  publish_values(out, kPubRunning);
  telemetry.bump_read(slices_.front().component);
  for (std::size_t i = 1; i < slices_.size(); ++i) {
    telemetry.bump_component(slices_[i].component, ComponentCounter::kReads);
  }
  return Error::kOk;
}

Status EventSet::read_many(std::span<EventSet* const> sets,
                           std::span<long long> values,
                           std::span<SnapshotEntry> entries,
                           std::size_t* values_used) {
  if (values_used != nullptr) *values_used = 0;
  if (sets.empty()) return Error::kOk;
  if (entries.size() < sets.size()) return Error::kInvalid;
  Library* library = nullptr;
  for (EventSet* set : sets) {
    if (set == nullptr) return Error::kInvalid;
    if (library == nullptr) {
      library = &set->library_;
    } else if (&set->library_ != library) {
      return Error::kInvalid;  // one batch, one library
    }
  }
  return library->read_many(sets, values, entries, values_used);
}

Status EventSet::accum(std::span<long long> inout) {
  if (inout.size() < entries_.size()) return Error::kInvalid;
  // Note: the inner read() below also counts one kReads — accums are a
  // subset marker, not disjoint from reads.
  library_.telemetry().bump(TelemetryCounter::kAccums);
  scratch_values_.assign(entries_.size(), 0);
  PAPIREPRO_RETURN_IF_ERROR(read(scratch_values_));
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    inout[i] += scratch_values_[i];
  }
  return reset();
}

Status EventSet::reset() {
  library_.telemetry().bump(TelemetryCounter::kResets);
  // When stopped there is no context and nothing live to reset: just
  // drop the snapshot so read() reports kNotRunning again.
  if (running()) {
    if (multiplex_) {
      PAPIREPRO_RETURN_IF_ERROR(context_->reset_counts());
    } else {
      for (ComponentSlice& slice : slices_) {
        PAPIREPRO_RETURN_IF_ERROR(slice.context->reset_counts());
      }
    }
  }
  for (NativeFold& f : folds_) f = NativeFold{};
  if (multiplex_) {
    for (auto& st : mux_state_) {
      std::fill(st.accum.begin(), st.accum.end(), 0ULL);
      st.active_cycles = 0;
    }
    if (running()) {
      mux_window_start_ = mux_slice_start_ = context_->cycles();
    }
  }
  stopped_raw_valid_ = false;
  if (running()) {
    publish_values({}, kPubRunning);  // batched readers see zeros, not stale
  } else {
    publish_clear();
  }
  return Error::kOk;
}

Status EventSet::stop(std::span<long long> out) {
  if (!running()) return Error::kNotRunning;

  // First per-slice failure, reported after the teardown completes: a
  // sick component must not abort the unwind mid-way (the other slices'
  // counters would keep running and the context would never release).
  Status partial = Error::kOk;

  if (multiplex_) {
    // Close the final slice before the counters go away.  As in
    // rotate_mux(), the clock is snapshotted before the stop/read
    // overhead so it is not billed to the closing slice.
    const std::uint64_t now = context_->cycles();
    (void)context_->stop();
    scratch_live_.assign(mux_plans_[mux_current_].members.size(), 0);
    PAPIREPRO_RETURN_IF_ERROR(library_.run_with_retries(
        [&] { return context_->read(scratch_live_); }));
    MuxGroupState& st = mux_state_[mux_current_];
    for (std::size_t i = 0; i < scratch_live_.size(); ++i) {
      st.accum[i] += scratch_live_[i];
    }
    st.active_cycles += now - mux_slice_start_;
    if (mux_timer_id_ >= 0) {
      (void)context_->cancel_timer(mux_timer_id_);
      mux_timer_id_ = -1;
    }
    state_ = State::kStopped;
  } else {
    // Stop descending by component — the mirror image of start()'s
    // ascending order, so the snapshot window nests coherently.  Every
    // slice is attempted (through its breaker): a quarantined or
    // failing component records the first error but cannot leave the
    // healthy slices counting.
    for (std::size_t i = slices_.size(); i-- > 0;) {
      ComponentSlice& slice = slices_[i];
      const Status s = library_.run_slice_op(
          slice.component, [&] { return slice.context->stop(); });
      if (!s.ok() && partial.ok()) partial = s;
    }
    state_ = State::kStopped;
  }
  // Snapshot straight into the preallocated stop buffer: stop() is part
  // of the steady-state path and performs no heap allocation.
  if (multiplex_) {
    PAPIREPRO_RETURN_IF_ERROR(snapshot_raw(stopped_raw_));
  } else {
    // Resilient final snapshot: a failing slice latches its last good
    // values instead of losing the healthy slices' finals; the
    // snapshot's fidelity bits persist so read_ex() after stop()
    // reports it.
    stopped_raw_.assign(natives_.size(), 0);
    for (ComponentSlice& slice : slices_) {
      const Status s = read_slice(slice, stopped_raw_);
      if (!s.ok() && partial.ok()) partial = s;
    }
    for (NativeFold& f : folds_) f.sticky_flags = f.read_flags;
  }

  // Disarm before the context goes back to the library: the substrate
  // keeps callbacks armed until told otherwise, and the next user of
  // this thread's context must not inherit them.  In async mode this
  // also drains the ring, completing the histogram.
  disarm_overflows();

  // Close the attribution window while the context is still ours: its
  // overhead clock keeps running for the thread's next user.
  const std::uint64_t overhead_now = context_->overhead_cycles();
  if (overhead_now > overhead_base_) {
    total_overhead_cycles_ += overhead_now - overhead_base_;
  }
  const std::uint64_t clock_now = context_->cycles();
  if (clock_now > window_base_) {
    total_window_cycles_ += clock_now - window_base_;
  }
  library_.telemetry().bump(TelemetryCounter::kStops);
  for (const ComponentSlice& slice : slices_) {
    library_.telemetry().bump_component(slice.component,
                                        ComponentCounter::kStops);
  }
  library_.telemetry().trace_instant(TraceEventKind::kStop, clock_now,
                                     static_cast<std::uint64_t>(handle_));

  stopped_raw_valid_ = true;
  // Publish the final totals so batched readers on other threads keep
  // seeing this set's values after it stops (capacity already reserved).
  scratch_values_.assign(entries_.size(), 0);
  compute_values(stopped_raw_, scratch_values_);
  publish_values(scratch_values_, kPubStopped);
  library_.release_context(this);
  context_ = nullptr;
  for (ComponentSlice& slice : slices_) slice.context = nullptr;
  if (!out.empty()) {
    if (out.size() < entries_.size()) return Error::kInvalid;
    compute_values(stopped_raw_, out);
  }
  return partial;
}

Status EventSet::set_overflow(EventId id, std::uint64_t threshold,
                              OverflowHandler handler) {
  if (running()) return Error::kIsRunning;
  if (multiplex_) return Error::kConflict;  // PAPI: no overflow while muxed
  // Overflow interrupts are a CPU-core (component 0) feature: the sim
  // memory/network substrates have no interrupt line.
  if (id.component != 0) return Error::kNoSupport;
  if (threshold == 0 || !handler) return Error::kInvalid;
  const int pos = find_entry(id);
  if (pos < 0) return Error::kNoEvent;
  if (entries_[pos].terms.size() != 1 ||
      entries_[pos].terms.front().coefficient != 1) {
    return Error::kInvalid;  // overflow on derived events is not allowed
  }
  clear_overflow(id).ok();  // replace any prior config
  auto config = std::make_shared<OverflowConfig>();
  config->id = id;
  config->threshold = threshold;
  config->handler = std::move(handler);
  overflow_configs_.push_back(std::move(config));
  return Error::kOk;
}

Status EventSet::clear_overflow(EventId id) {
  const auto it = std::find_if(
      overflow_configs_.begin(), overflow_configs_.end(),
      [&](const std::shared_ptr<OverflowConfig>& c) { return c->id == id; });
  if (it == overflow_configs_.end()) return Error::kNoEvent;
  if (running()) {
    // Disarm at the substrate first — erasing only the config used to
    // leave the armed callback firing into freed state for the rest of
    // the run (and beyond: the context is shared across runs).
    const int pos = find_entry(id);
    if (pos >= 0 && !entries_[pos].terms.empty()) {
      const auto event_index =
          static_cast<std::uint32_t>(entries_[pos].terms.front().native_index);
      (void)context_->clear_overflow(event_index);
      armed_event_indices_.erase(
          std::remove(armed_event_indices_.begin(),
                      armed_event_indices_.end(), event_index),
          armed_event_indices_.end());
    }
    // Samples already enqueued dispatch now (they occurred while
    // armed); nothing for `id` can arrive after the disarm above.
    if (ring_attached_) library_.sampling().flush(sample_ring_.get());
  }
  // An interrupt the PMU latched before the disarm may still be in
  // flight; mark the config retired so dispatch drops it on delivery.
  (*it)->retired.store(true, std::memory_order_release);
  overflow_configs_.erase(it);
  return Error::kOk;
}

Status EventSet::profil(ProfileBuffer& buffer, EventId id,
                        std::uint64_t threshold, bool prefer_precise) {
  if (running()) return Error::kIsRunning;
  if (multiplex_) return Error::kConflict;
  if (id.component != 0) return Error::kNoSupport;  // CPU-core only
  if (threshold == 0) return Error::kInvalid;
  const int pos = find_entry(id);
  if (pos < 0) return Error::kNoEvent;
  if (entries_[pos].terms.size() != 1 ||
      entries_[pos].terms.front().coefficient != 1) {
    return Error::kInvalid;
  }
  clear_overflow(id).ok();
  auto config = std::make_shared<OverflowConfig>();
  config->id = id;
  config->threshold = threshold;
  config->profile = &buffer;
  config->prefer_precise = prefer_precise;
  overflow_configs_.push_back(std::move(config));
  return Error::kOk;
}

Status EventSet::profil_stop(EventId id) { return clear_overflow(id); }

// --- self-overhead attribution --------------------------------------------

std::uint64_t EventSet::overhead_cycles() const noexcept {
  std::uint64_t total = total_overhead_cycles_;
  if (running() && context_ != nullptr) {
    const std::uint64_t now = context_->overhead_cycles();
    if (now > overhead_base_) total += now - overhead_base_;
  }
  return total;
}

std::uint64_t EventSet::measured_cycles() const noexcept {
  std::uint64_t total = total_window_cycles_;
  if (running() && context_ != nullptr) {
    const std::uint64_t now = context_->cycles();
    if (now > window_base_) total += now - window_base_;
  }
  return total;
}

double EventSet::overhead_ratio() const noexcept {
  const std::uint64_t window = measured_cycles();
  if (window == 0) return 0.0;
  return static_cast<double>(overhead_cycles()) /
         static_cast<double>(window);
}

}  // namespace papirepro::papi
