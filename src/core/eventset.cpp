#include "core/eventset.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "core/library.h"

namespace papirepro::papi {

EventSet::EventSet(Library& library, int handle)
    : library_(library), handle_(handle) {}

int EventSet::find_entry(EventId id) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

std::vector<EventId> EventSet::events() const {
  std::vector<EventId> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.id);
  return out;
}

Status EventSet::rebuild(
    const std::vector<Entry>& candidate_entries,
    const std::vector<pmu::NativeEventCode>& candidate_natives) {
  if (multiplex_) {
    auto plans = plan_multiplex(library_.substrate(), candidate_natives,
                                &library_.allocation_cache());
    if (!plans.ok()) return plans.error();
    mux_plans_ = std::move(plans.value());
    mux_group_events_.assign(mux_plans_.size(), {});
    for (std::size_t g = 0; g < mux_plans_.size(); ++g) {
      mux_group_events_[g].reserve(mux_plans_[g].members.size());
      for (std::size_t idx : mux_plans_[g].members) {
        mux_group_events_[g].push_back(candidate_natives[idx]);
      }
    }
  } else if (!candidate_natives.empty()) {
    auto assignment = library_.allocation_cache().allocate(
        library_.substrate(), candidate_natives, {});
    if (!assignment.ok()) return assignment.error();
    assignment_ = std::move(assignment.value());
  } else {
    assignment_.clear();
  }
  entries_ = candidate_entries;
  natives_ = candidate_natives;
  return Error::kOk;
}

Status EventSet::add_event(EventId id) {
  if (running()) return Error::kIsRunning;
  if (find_entry(id) >= 0) return Error::kConflict;  // already present

  // Resolve the event into native terms.
  std::vector<MappingTerm> terms;
  if (id.is_preset()) {
    auto mapping = library_.substrate().preset_mapping(id.as_preset());
    if (!mapping.ok()) return mapping.error();
    terms = std::move(mapping.value().terms);
  } else {
    auto name = library_.substrate().native_name(id.as_native());
    if (!name.ok()) return name.error();
    terms = {{id.as_native(), 1}};
  }

  // Expand into the candidate native list, sharing natives already
  // required by other member events (hashed index instead of a linear
  // scan per term).
  std::vector<pmu::NativeEventCode> candidate_natives = natives_;
  std::unordered_map<pmu::NativeEventCode, std::size_t> native_index;
  native_index.reserve(candidate_natives.size() + terms.size());
  for (std::size_t i = 0; i < candidate_natives.size(); ++i) {
    native_index.emplace(candidate_natives[i], i);
  }
  Entry entry{id, {}};
  for (const MappingTerm& t : terms) {
    const auto [it, inserted] =
        native_index.try_emplace(t.native, candidate_natives.size());
    if (inserted) candidate_natives.push_back(t.native);
    entry.terms.push_back({it->second, t.coefficient});
  }
  std::vector<Entry> candidate_entries = entries_;
  candidate_entries.push_back(std::move(entry));

  return rebuild(candidate_entries, candidate_natives);
}

Status EventSet::add_named(std::string_view name) {
  auto id = library_.event_from_name(name);
  if (!id.ok()) return id.error();
  return add_event(id.value());
}

Status EventSet::remove_event(EventId id) {
  if (running()) return Error::kIsRunning;
  const int pos = find_entry(id);
  if (pos < 0) return Error::kNoEvent;

  std::vector<Entry> candidate_entries = entries_;
  candidate_entries.erase(candidate_entries.begin() + pos);

  // Recompute the native list from scratch (drop now-unused natives),
  // deduplicating through a hashed index instead of a scan per term.
  std::vector<pmu::NativeEventCode> candidate_natives;
  std::unordered_map<pmu::NativeEventCode, std::size_t> native_index;
  for (Entry& e : candidate_entries) {
    for (TermRef& ref : e.terms) {
      const pmu::NativeEventCode code = natives_[ref.native_index];
      const auto [it, inserted] =
          native_index.try_emplace(code, candidate_natives.size());
      if (inserted) candidate_natives.push_back(code);
      ref.native_index = it->second;
    }
  }
  overflow_configs_.erase(
      std::remove_if(overflow_configs_.begin(), overflow_configs_.end(),
                     [&](const OverflowConfig& c) { return c.id == id; }),
      overflow_configs_.end());
  return rebuild(candidate_entries, candidate_natives);
}

Status EventSet::enable_multiplex(std::uint64_t slice_cycles) {
  if (running()) return Error::kIsRunning;
  if (!library_.substrate().supports_multiplex()) return Error::kNoSupport;
  if (slice_cycles == 0) return Error::kInvalid;
  if (!overflow_configs_.empty()) return Error::kConflict;
  multiplex_ = true;
  mux_slice_cycles_ = slice_cycles;
  return rebuild(entries_, natives_);
}

Status EventSet::program_mux_group(std::size_t g) {
  // The member event list is prebuilt at rebuild(): a slice rotation
  // reprograms the counters without allocating.
  return context_->program(mux_group_events_[g], mux_plans_[g].assignment);
}

Status EventSet::set_domain(std::uint32_t domain_mask) {
  if (running()) return Error::kIsRunning;
  if (!valid_domain(domain_mask)) return Error::kInvalid;
  domain_mask_ = domain_mask;
  return Error::kOk;
}

Status EventSet::program_and_arm() {
  if (const Status s = context_->set_domain(domain_mask_);
      !s.ok() && !(s.error() == Error::kNoSupport &&
                   domain_mask_ == domain::kAll)) {
    return s;
  }
  if (multiplex_) {
    mux_state_.assign(mux_plans_.size(), {});
    for (std::size_t g = 0; g < mux_plans_.size(); ++g) {
      mux_state_[g].accum.assign(mux_plans_[g].members.size(), 0);
    }
    mux_current_ = 0;
    PAPIREPRO_RETURN_IF_ERROR(program_mux_group(0));
    return Error::kOk;
  }
  PAPIREPRO_RETURN_IF_ERROR(context_->program(natives_, assignment_));
  for (const OverflowConfig& config : overflow_configs_) {
    PAPIREPRO_RETURN_IF_ERROR(arm_overflow(config));
  }
  return Error::kOk;
}

Status EventSet::arm_overflow(const OverflowConfig& config) {
  const int pos = find_entry(config.id);
  assert(pos >= 0);
  const Entry& entry = entries_[pos];
  assert(entry.terms.size() == 1);
  const auto event_index =
      static_cast<std::uint32_t>(entry.terms.front().native_index);
  ProfileBuffer* profile = config.profile;
  const bool prefer_precise = config.prefer_precise;
  EventId id = config.id;
  const OverflowHandler* handler = &config.handler;
  return context_->set_overflow(
      event_index, config.threshold,
      [this, profile, prefer_precise, id,
       handler](const SubstrateOverflow& o) {
        if (profile != nullptr) {
          profile->record(prefer_precise && o.has_precise ? o.pc_precise
                                                          : o.pc_observed);
          return;
        }
        if (*handler) {
          (*handler)(*this, OverflowEvent{.event = id,
                                          .pc_observed = o.pc_observed,
                                          .pc_precise = o.pc_precise,
                                          .has_precise = o.has_precise,
                                          .addr = o.addr});
        }
      });
}

void EventSet::preallocate_scratch() {
  // Size every buffer the running paths touch, so read()/accum()/stop()
  // and the mux slice rotation reuse capacity instead of allocating.
  scratch_raw_.assign(natives_.size(), 0);
  scratch_values_.assign(entries_.size(), 0);
  std::size_t max_group = 0;
  for (const MuxGroupPlan& plan : mux_plans_) {
    max_group = std::max(max_group, plan.members.size());
  }
  scratch_live_.assign(multiplex_ ? max_group : 0, 0);
  stopped_raw_.reserve(natives_.size());  // stop() snapshots into this
}

Status EventSet::start() {
  if (running()) return Error::kIsRunning;
  if (entries_.empty()) return Error::kInvalid;
  // Claim the calling thread's context; kIsRunning when another set
  // already runs on this thread (the per-thread rule).
  auto ctx = library_.acquire_context(this);
  if (!ctx.ok()) return ctx.error();
  context_ = ctx.value();

  auto abort_start = [this](Status status) {
    library_.release_context(this);
    context_ = nullptr;
    return status;
  };
  // Transient substrate faults (a counter file briefly busy, an
  // interrupted syscall) are retried as one unit — program is idempotent
  // on a stopped context, so re-running the whole sequence is safe.
  const Status started = library_.run_with_retries([this]() -> Status {
    PAPIREPRO_RETURN_IF_ERROR(program_and_arm());
    PAPIREPRO_RETURN_IF_ERROR(context_->reset_counts());
    return context_->start();
  });
  if (!started.ok()) return abort_start(started);
  state_ = State::kRunning;
  degradations_ = 0;
  preallocate_scratch();

  // Arm wraparound folding against the substrate's counter width.
  const std::uint32_t width = library_.substrate().counter_width_bits();
  wrap_mask_ = width < 64 ? (1ULL << width) - 1 : ~0ULL;
  wrap_last_.assign(natives_.size(), 0);
  wrap_accum_.assign(natives_.size(), 0);

  if (multiplex_) {
    mux_window_start_ = mux_slice_start_ = context_->cycles();
    auto timer =
        context_->add_timer(mux_slice_cycles_, [this] { rotate_mux(); });
    if (!timer.ok()) {
      // Degradation ladder: no timer service — fall back to sequential
      // slices, rotated by read()/accum() instead of aborting the run.
      mux_timer_id_ = -1;
      degradations_ |= degradation::kMuxSequential;
    } else {
      mux_timer_id_ = timer.value();
    }
  }
  return Error::kOk;
}

void EventSet::rotate_mux() {
  if (!running() || mux_plans_.size() < 2) return;

  // One clock snapshot at entry, reused for both the closing slice's
  // active-cycle accounting and the opening slice's start mark: the
  // rotation's own stop/read/program overhead is charged to neither
  // slice (it used to inflate the closing slice's active window, biasing
  // its scale-up factor low).
  const std::uint64_t now = context_->cycles();

  // Close the current slice.
  (void)context_->stop();
  scratch_live_.assign(mux_plans_[mux_current_].members.size(), 0);
  (void)context_->read(scratch_live_);
  MuxGroupState& st = mux_state_[mux_current_];
  for (std::size_t i = 0; i < scratch_live_.size(); ++i) {
    st.accum[i] += scratch_live_[i];
  }
  st.active_cycles += now - mux_slice_start_;

  // Open the next one.
  mux_current_ = (mux_current_ + 1) % mux_plans_.size();
  (void)program_mux_group(mux_current_);
  (void)context_->reset_counts();
  (void)context_->start();
  mux_slice_start_ = now;
}

Status EventSet::read_folded(std::vector<std::uint64_t>& raw_out) {
  PAPIREPRO_RETURN_IF_ERROR(library_.run_with_retries(
      [&] { return context_->read(raw_out); }));
  if (wrap_mask_ == ~0ULL) return Error::kOk;  // full-width fast path
  // Narrow counters wrap: trust only the delta since the previous read,
  // folded modulo the counter width into the 64-bit accumulator.  Any
  // reader cadence faster than one wrap period recovers exact totals.
  for (std::size_t i = 0; i < raw_out.size(); ++i) {
    const std::uint64_t raw = raw_out[i] & wrap_mask_;
    wrap_accum_[i] += (raw - wrap_last_[i]) & wrap_mask_;
    wrap_last_[i] = raw;
    raw_out[i] = wrap_accum_[i];
  }
  return Error::kOk;
}

Status EventSet::snapshot_raw(std::vector<std::uint64_t>& raw_out) {
  raw_out.assign(natives_.size(), 0);

  if (!multiplex_) {
    return read_folded(raw_out);
  }

  const std::uint64_t now = context_->cycles();
  if (running()) {
    scratch_live_.assign(mux_plans_[mux_current_].members.size(), 0);
    PAPIREPRO_RETURN_IF_ERROR(library_.run_with_retries(
        [&] { return context_->read(scratch_live_); }));
  }
  const std::uint64_t window =
      now > mux_window_start_ ? now - mux_window_start_ : 0;

  for (std::size_t g = 0; g < mux_plans_.size(); ++g) {
    const MuxGroupPlan& plan = mux_plans_[g];
    const MuxGroupState& st = mux_state_[g];
    std::uint64_t active = st.active_cycles;
    for (std::size_t i = 0; i < plan.members.size(); ++i) {
      std::uint64_t raw = st.accum[i];
      if (running() && g == mux_current_) {
        raw += scratch_live_[i];  // current slice is still open
      }
      std::uint64_t active_g = active;
      if (running() && g == mux_current_ && now > mux_slice_start_) {
        active_g += now - mux_slice_start_;
      }
      // Scale the observed counts up by the fraction of the window this
      // group was actually live — the estimation step whose convergence
      // Section 2 warns about.
      double scaled = static_cast<double>(raw);
      if (active_g > 0 && window > 0) {
        scaled *= static_cast<double>(window) /
                  static_cast<double>(active_g);
      }
      raw_out[plan.members[i]] =
          static_cast<std::uint64_t>(std::llround(scaled));
    }
  }
  return Error::kOk;
}

void EventSet::compute_values(std::span<const std::uint64_t> raw,
                              std::span<long long> out) const {
  for (std::size_t i = 0; i < entries_.size() && i < out.size(); ++i) {
    long long v = 0;
    for (const TermRef& t : entries_[i].terms) {
      v += static_cast<long long>(t.coefficient) *
           static_cast<long long>(raw[t.native_index]);
    }
    out[i] = v;
  }
}

Status EventSet::read(std::span<long long> out) {
  if (out.size() < entries_.size()) return Error::kInvalid;
  if (!running() && !stopped_raw_valid_) return Error::kNotRunning;
  if (!running() && stopped_raw_valid_) {
    compute_values(stopped_raw_, out);
    return Error::kOk;
  }
  if (multiplex_ && (degradations_ & degradation::kMuxSequential) != 0) {
    rotate_mux();  // sequential-slice fallback: reads drive the rotation
  }
  PAPIREPRO_RETURN_IF_ERROR(snapshot_raw(scratch_raw_));
  compute_values(scratch_raw_, out);
  return Error::kOk;
}

Status EventSet::accum(std::span<long long> inout) {
  if (inout.size() < entries_.size()) return Error::kInvalid;
  scratch_values_.assign(entries_.size(), 0);
  PAPIREPRO_RETURN_IF_ERROR(read(scratch_values_));
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    inout[i] += scratch_values_[i];
  }
  return reset();
}

Status EventSet::reset() {
  // When stopped there is no context and nothing live to reset: just
  // drop the snapshot so read() reports kNotRunning again.
  if (running()) {
    PAPIREPRO_RETURN_IF_ERROR(context_->reset_counts());
  }
  std::fill(wrap_last_.begin(), wrap_last_.end(), 0ULL);
  std::fill(wrap_accum_.begin(), wrap_accum_.end(), 0ULL);
  if (multiplex_) {
    for (auto& st : mux_state_) {
      std::fill(st.accum.begin(), st.accum.end(), 0ULL);
      st.active_cycles = 0;
    }
    if (running()) {
      mux_window_start_ = mux_slice_start_ = context_->cycles();
    }
  }
  stopped_raw_valid_ = false;
  return Error::kOk;
}

Status EventSet::stop(std::span<long long> out) {
  if (!running()) return Error::kNotRunning;

  if (multiplex_) {
    // Close the final slice before the counters go away.  As in
    // rotate_mux(), the clock is snapshotted before the stop/read
    // overhead so it is not billed to the closing slice.
    const std::uint64_t now = context_->cycles();
    (void)context_->stop();
    scratch_live_.assign(mux_plans_[mux_current_].members.size(), 0);
    PAPIREPRO_RETURN_IF_ERROR(library_.run_with_retries(
        [&] { return context_->read(scratch_live_); }));
    MuxGroupState& st = mux_state_[mux_current_];
    for (std::size_t i = 0; i < scratch_live_.size(); ++i) {
      st.accum[i] += scratch_live_[i];
    }
    st.active_cycles += now - mux_slice_start_;
    if (mux_timer_id_ >= 0) {
      (void)context_->cancel_timer(mux_timer_id_);
      mux_timer_id_ = -1;
    }
    state_ = State::kStopped;
  } else {
    PAPIREPRO_RETURN_IF_ERROR(context_->stop());
    state_ = State::kStopped;
  }
  // Snapshot straight into the preallocated stop buffer: stop() is part
  // of the steady-state path and performs no heap allocation.
  PAPIREPRO_RETURN_IF_ERROR(snapshot_raw(stopped_raw_));

  stopped_raw_valid_ = true;
  library_.release_context(this);
  context_ = nullptr;
  if (!out.empty()) {
    if (out.size() < entries_.size()) return Error::kInvalid;
    compute_values(stopped_raw_, out);
  }
  return Error::kOk;
}

Status EventSet::set_overflow(EventId id, std::uint64_t threshold,
                              OverflowHandler handler) {
  if (running()) return Error::kIsRunning;
  if (multiplex_) return Error::kConflict;  // PAPI: no overflow while muxed
  if (threshold == 0 || !handler) return Error::kInvalid;
  const int pos = find_entry(id);
  if (pos < 0) return Error::kNoEvent;
  if (entries_[pos].terms.size() != 1 ||
      entries_[pos].terms.front().coefficient != 1) {
    return Error::kInvalid;  // overflow on derived events is not allowed
  }
  clear_overflow(id).ok();  // replace any prior config
  overflow_configs_.push_back(
      {id, threshold, std::move(handler), nullptr, true});
  return Error::kOk;
}

Status EventSet::clear_overflow(EventId id) {
  const auto before = overflow_configs_.size();
  overflow_configs_.erase(
      std::remove_if(overflow_configs_.begin(), overflow_configs_.end(),
                     [&](const OverflowConfig& c) { return c.id == id; }),
      overflow_configs_.end());
  return before == overflow_configs_.size() ? Error::kNoEvent : Error::kOk;
}

Status EventSet::profil(ProfileBuffer& buffer, EventId id,
                        std::uint64_t threshold, bool prefer_precise) {
  if (running()) return Error::kIsRunning;
  if (multiplex_) return Error::kConflict;
  if (threshold == 0) return Error::kInvalid;
  const int pos = find_entry(id);
  if (pos < 0) return Error::kNoEvent;
  if (entries_[pos].terms.size() != 1 ||
      entries_[pos].terms.front().coefficient != 1) {
    return Error::kInvalid;
  }
  clear_overflow(id).ok();
  overflow_configs_.push_back(
      {id, threshold, nullptr, &buffer, prefer_precise});
  return Error::kOk;
}

Status EventSet::profil_stop(EventId id) { return clear_overflow(id); }

}  // namespace papirepro::papi
