// Multiplex planning: partition a native-event list into subsets, each
// simultaneously countable on the hardware, to be time-sliced by the
// EventSet.  "Multiplexing allows more counters to be used simultaneously
// than are physically supported by the hardware.  With multiplexing, the
// physical counters are time-sliced, and the counts are estimated from
// the measurements."  Estimation accuracy (and its failure on short
// runs) is experiment E4.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "pmu/native_event.h"
#include "substrate/substrate.h"

namespace papirepro::papi {

class AllocationCache;

struct MuxGroupPlan {
  /// Indices into the original native-event list.
  std::vector<std::size_t> members;
  /// Physical counter (or sampled slot) per member, parallel to members.
  std::vector<std::uint32_t> assignment;
};

/// Greedy set-cover partition: repeatedly allocate the largest
/// simultaneously-countable subset of the remaining events (via the
/// optimal max-cardinality matcher) until all are covered.
/// Error::kConflict if some event cannot be counted even alone.
/// With `cache`, the whole-remainder allocation probes (including their
/// kConflict outcomes) go through the memo instead of re-solving on
/// every rebuild.
Result<std::vector<MuxGroupPlan>> plan_multiplex(
    const Substrate& substrate,
    std::span<const pmu::NativeEventCode> natives,
    AllocationCache* cache = nullptr);

/// Default time-slice, in substrate cycles.  Real PAPI sliced on the
/// ~10 ms profiling timer; at simulated GHz rates that is far longer
/// than our kernels, so the default is chosen to give a few dozen
/// rotations on a millions-of-cycles run.
inline constexpr std::uint64_t kDefaultMuxSliceCycles = 50'000;

}  // namespace papirepro::papi
