// Memory-utilization extensions planned for PAPI version 3 (Section 5):
// "memory available on a node, total memory available/used
// (high-water-mark), memory used by process/thread, ...".  Substrates
// fill in what they can: the host substrate reads /proc, the simulated
// substrates report the machine's touched-page accounting.
#pragma once

#include <cstdint>

namespace papirepro::papi {

struct MemoryInfo {
  std::uint64_t total_bytes = 0;      ///< memory available on the node
  std::uint64_t available_bytes = 0;  ///< currently available
  std::uint64_t process_resident_bytes = 0;  ///< used by this process
  std::uint64_t process_peak_bytes = 0;      ///< high-water mark
  std::uint64_t page_size_bytes = 0;
  std::uint64_t page_faults = 0;  ///< major+minor where known
};

}  // namespace papirepro::papi
