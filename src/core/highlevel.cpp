#include "core/highlevel.h"

#include <vector>

namespace papirepro::papi {

HighLevel::~HighLevel() { shutdown(); }

void HighLevel::shutdown() {
  for (int* handle : {&counters_set_, &rate_set_}) {
    if (*handle < 0) continue;
    if (auto set = library_.event_set(*handle); set.ok()) {
      if (set.value()->running()) (void)set.value()->stop();
    }
    (void)library_.destroy_event_set(*handle);
    *handle = -1;
  }
}

Status HighLevel::start_counters(std::span<const EventId> events) {
  if (events.empty()) return Error::kInvalid;
  if (counters_set_ >= 0) return Error::kIsRunning;

  auto handle = library_.create_event_set();
  if (!handle.ok()) return handle.error();
  auto set = library_.event_set(handle.value());
  for (const EventId& id : events) {
    const Status added = set.value()->add_event(id);
    if (!added.ok()) {
      (void)library_.destroy_event_set(handle.value());
      return added;
    }
  }
  const Status started = set.value()->start();
  if (!started.ok()) {
    (void)library_.destroy_event_set(handle.value());
    return started;
  }
  counters_set_ = handle.value();
  counters_len_ = events.size();
  return Error::kOk;
}

Status HighLevel::read_counters(std::span<long long> values) {
  if (counters_set_ < 0) return Error::kNotRunning;
  auto set = library_.event_set(counters_set_);
  if (!set.ok()) return set.error();
  // PAPI_read_counters resets after reading.
  std::vector<long long> scratch(counters_len_, 0);
  PAPIREPRO_RETURN_IF_ERROR(set.value()->accum(scratch));
  for (std::size_t i = 0; i < counters_len_ && i < values.size(); ++i) {
    values[i] = scratch[i];
  }
  return Error::kOk;
}

Status HighLevel::accum_counters(std::span<long long> values) {
  if (counters_set_ < 0) return Error::kNotRunning;
  auto set = library_.event_set(counters_set_);
  if (!set.ok()) return set.error();
  return set.value()->accum(values);
}

Status HighLevel::stop_counters(std::span<long long> values) {
  if (counters_set_ < 0) return Error::kNotRunning;
  auto set = library_.event_set(counters_set_);
  if (!set.ok()) return set.error();
  PAPIREPRO_RETURN_IF_ERROR(set.value()->stop(values));
  (void)library_.destroy_event_set(counters_set_);
  counters_set_ = -1;
  counters_len_ = 0;
  return Error::kOk;
}

Status HighLevel::ensure_rate_set(bool want_ipc) {
  if (rate_set_ >= 0 && rate_is_ipc_ == want_ipc) return Error::kOk;
  if (rate_set_ >= 0) return Error::kConflict;  // flops/ipc are exclusive

  auto handle = library_.create_event_set();
  if (!handle.ok()) return handle.error();
  auto set = library_.event_set(handle.value());
  Status added = want_ipc
                     ? set.value()->add_preset(Preset::kTotIns)
                     : set.value()->add_preset(Preset::kFpOps);
  if (added.ok() && want_ipc) {
    added = set.value()->add_preset(Preset::kTotCyc);
  }
  if (added.ok()) added = set.value()->start();
  if (!added.ok()) {
    (void)library_.destroy_event_set(handle.value());
    return added;
  }
  rate_set_ = handle.value();
  rate_is_ipc_ = want_ipc;
  rate_start_us_ = rate_last_us_ = library_.real_usec();
  rate_start_virt_us_ = library_.virt_usec();
  rate_last_value_ = 0;
  rate_last_cycles_ = 0;
  return Error::kOk;
}

Result<HighLevel::FlopsInfo> HighLevel::flops() {
  const bool first = rate_set_ < 0;
  PAPIREPRO_RETURN_IF_ERROR(ensure_rate_set(/*want_ipc=*/false));
  if (first) return FlopsInfo{};

  auto set = library_.event_set(rate_set_);
  std::vector<long long> values(1, 0);
  PAPIREPRO_RETURN_IF_ERROR(set.value()->read(values));

  const std::uint64_t now = library_.real_usec();
  FlopsInfo info;
  info.real_time_s = static_cast<double>(now - rate_start_us_) * 1e-6;
  info.proc_time_s =
      static_cast<double>(library_.virt_usec() - rate_start_virt_us_) * 1e-6;
  info.flops = values[0];
  const double interval_s =
      static_cast<double>(now - rate_last_us_) * 1e-6;
  const long long delta = values[0] - rate_last_value_;
  info.mflops = interval_s > 0
                    ? static_cast<double>(delta) / interval_s * 1e-6
                    : 0.0;
  rate_last_us_ = now;
  rate_last_value_ = values[0];
  return info;
}

Result<HighLevel::IpcInfo> HighLevel::ipc() {
  const bool first = rate_set_ < 0;
  PAPIREPRO_RETURN_IF_ERROR(ensure_rate_set(/*want_ipc=*/true));
  if (first) return IpcInfo{};

  auto set = library_.event_set(rate_set_);
  std::vector<long long> values(2, 0);
  PAPIREPRO_RETURN_IF_ERROR(set.value()->read(values));

  const std::uint64_t now = library_.real_usec();
  IpcInfo info;
  info.real_time_s = static_cast<double>(now - rate_start_us_) * 1e-6;
  info.proc_time_s =
      static_cast<double>(library_.virt_usec() - rate_start_virt_us_) * 1e-6;
  info.instructions = values[0];
  const long long dins = values[0] - rate_last_value_;
  const long long dcyc = values[1] - rate_last_cycles_;
  info.ipc = dcyc > 0 ? static_cast<double>(dins) /
                            static_cast<double>(dcyc)
                      : 0.0;
  rate_last_us_ = now;
  rate_last_value_ = values[0];
  rate_last_cycles_ = values[1];
  return info;
}

}  // namespace papirepro::papi
