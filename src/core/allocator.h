// Hardware-independent counter allocation.  Section 5 of the paper: "the
// counter allocation problem may be cast in terms of the bipartite graph
// matching problem ... A matching consists of a set of edges, no two of
// which are adjacent to the same vertex ... Variations are to obtain a
// maximum cardinality mapping if not all the events can be mapped, or a
// maximum weight matching if some events have higher priority than
// others."  This module is the hardware-independent half of the PAPI 3
// split: it solves pure bipartite instances; the substrates translate
// their constraint schemes (counter masks, POWER groups) into instances.
#pragma once

#include <cstdint>
#include <vector>

namespace papirepro::papi {

/// A bipartite matching instance: events on the left, physical counters
/// on the right, an edge wherever the event can be counted on the
/// counter.
struct AllocationInstance {
  std::uint32_t num_counters = 0;
  /// allowed[i] is the counter bitmask for event i.
  std::vector<std::uint32_t> allowed;
  /// Optional per-event priority (higher = more important); empty means
  /// uniform.  Used by the max-weight variant.
  std::vector<int> priority;
};

struct AllocationResult {
  /// assignment[i] = physical counter for event i, or kUnassigned.
  std::vector<int> assignment;
  std::uint32_t mapped_count = 0;

  static constexpr int kUnassigned = -1;
  bool complete() const noexcept {
    return mapped_count == assignment.size();
  }
};

/// Optimal maximum-cardinality matching (Kuhn's augmenting-path
/// algorithm; instances are small — events x counters <= 32 x 32).
AllocationResult solve_max_cardinality(const AllocationInstance& instance);

/// Maximum-weight matching for vertex-weighted events: processes events
/// in descending priority order with augmenting paths.  Because matchable
/// event subsets form a transversal matroid, this greedy-with-augmentation
/// is exactly optimal.
AllocationResult solve_max_weight(const AllocationInstance& instance);

/// The naive baseline PAPI used before 2.3: first-fit without
/// backtracking.  Fails on instances the optimal matcher solves —
/// benchmarked in experiment E5.
AllocationResult solve_greedy_first_fit(const AllocationInstance& instance);

}  // namespace papirepro::papi
