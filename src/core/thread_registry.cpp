#include "core/thread_registry.h"

#include <mutex>

namespace papirepro::papi {

ThreadRegistry::ThreadState* ThreadRegistry::find_current() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = entries_.find(std::this_thread::get_id());
  return it != entries_.end() ? it->second.get() : nullptr;
}

ThreadRegistry::ThreadState& ThreadRegistry::claim_current(
    unsigned long numeric_id) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  auto& slot = entries_[std::this_thread::get_id()];
  if (slot == nullptr) {
    slot = std::make_unique<ThreadState>();
    slot->key = std::this_thread::get_id();
    slot->numeric_id = numeric_id;
  }
  return *slot;
}

void ThreadRegistry::release_partial_current() {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto it = entries_.find(std::this_thread::get_id());
  if (it != entries_.end() && it->second->context == nullptr) {
    entries_.erase(it);
  }
}

Status ThreadRegistry::erase_current() {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto it = entries_.find(std::this_thread::get_id());
  if (it == entries_.end()) return Error::kInvalid;
  if (it->second->running.load(std::memory_order_acquire) != nullptr) {
    return Error::kIsRunning;
  }
  entries_.erase(it);
  return Error::kOk;
}

ThreadRegistry::ThreadState* ThreadRegistry::find_running(
    const EventSet* set) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  for (const auto& [key, state] : entries_) {
    if (state->running.load(std::memory_order_acquire) == set) {
      return state.get();
    }
  }
  return nullptr;
}

std::vector<EventSet*> ThreadRegistry::running_sets() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<EventSet*> out;
  for (const auto& [key, state] : entries_) {
    if (EventSet* set = state->running.load(std::memory_order_acquire)) {
      out.push_back(set);
    }
  }
  return out;
}

std::size_t ThreadRegistry::size() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace papirepro::papi
