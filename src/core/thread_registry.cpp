#include "core/thread_registry.h"

#include <cstdint>
#include <limits>

namespace papirepro::papi {

ThreadRegistry::~ThreadRegistry() {
  Chunk* chunk = head_.next.load(std::memory_order_acquire);
  while (chunk != nullptr) {
    Chunk* next = chunk->next.load(std::memory_order_acquire);
    delete chunk;
    chunk = next;
  }
}

std::uint64_t ThreadRegistry::current_key() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  thread_local const std::uint64_t key =
      counter.fetch_add(1, std::memory_order_relaxed);
  return key;
}

ThreadRegistry::ThreadState* ThreadRegistry::find_current() const noexcept {
  const std::uint64_t key = current_key();
  return scan([&](const ThreadState& slot) {
    return slot.key.load(std::memory_order_acquire) == key;
  });
}

ThreadRegistry::ThreadState& ThreadRegistry::claim_current(
    unsigned long numeric_id) {
  const std::uint64_t key = current_key();
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  ThreadState* free_slot = nullptr;
  Chunk* last = nullptr;
  for (Chunk* chunk = &head_; chunk != nullptr;
       chunk = chunk->next.load(std::memory_order_acquire)) {
    for (ThreadState& slot : chunk->slots) {
      const std::uint64_t k = slot.key.load(std::memory_order_relaxed);
      if (k == key) return slot;  // raced our own earlier claim
      if (k == 0 && free_slot == nullptr) free_slot = &slot;
    }
    last = chunk;
  }
  if (free_slot == nullptr) {
    // Append a chunk; its slots are default-initialized (keys 0) before
    // the release-store of `next` publishes them to lock-free walkers.
    Chunk* chunk = new Chunk();
    last->next.store(chunk, std::memory_order_release);
    free_slot = &chunk->slots.front();
  }
  free_slot->numeric_id = numeric_id;
  // Publish last: a scanner that acquires this key sees the plain
  // fields above, and the previous occupant's contexts were reset under
  // the writer mutex at erase (mutex ordering covers slot reuse).
  free_slot->key.store(key, std::memory_order_release);
  size_.fetch_add(1, std::memory_order_relaxed);
  return *free_slot;
}

void ThreadRegistry::release_partial_current() {
  const std::uint64_t key = current_key();
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  ThreadState* slot = scan([&](const ThreadState& s) {
    return s.key.load(std::memory_order_relaxed) == key;
  });
  if (slot != nullptr && slot->context == nullptr) {
    slot->key.store(0, std::memory_order_release);
    size_.fetch_sub(1, std::memory_order_relaxed);
  }
}

Status ThreadRegistry::erase_current() {
  const std::uint64_t key = current_key();
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(writer_mutex_);
  ThreadState* slot = scan([&](const ThreadState& s) {
    return s.key.load(std::memory_order_relaxed) == key;
  });
  if (slot == nullptr) return Error::kInvalid;
  if (slot->running.load(std::memory_order_acquire) != nullptr) {
    return Error::kIsRunning;
  }
  // Free the contexts under the mutex: the next claimant of this slot
  // also runs under it, so the reset happens-before any reuse.  The
  // slot storage itself is never freed — concurrent scanners only ever
  // touch the atomic fields, which stay valid.
  slot->context.reset();
  for (auto& ctx : slot->component_contexts) ctx.reset();
  slot->numeric_id = 0;
  slot->key.store(0, std::memory_order_release);
  size_.fetch_sub(1, std::memory_order_relaxed);
  return Error::kOk;
}

ThreadRegistry::ThreadState* ThreadRegistry::find_running(
    const EventSet* set) const noexcept {
  return scan([&](const ThreadState& slot) {
    return slot.running.load(std::memory_order_acquire) == set;
  });
}

std::vector<EventSet*> ThreadRegistry::running_sets() const {
  std::vector<EventSet*> out;
  scan([&](const ThreadState& slot) {
    if (EventSet* set = slot.running.load(std::memory_order_acquire)) {
      out.push_back(set);
    }
    return false;  // full walk
  });
  return out;
}

std::uint64_t ThreadRegistry::min_active_epoch() const noexcept {
  std::uint64_t min_epoch = std::numeric_limits<std::uint64_t>::max();
  scan([&](const ThreadState& slot) {
    const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e < min_epoch) min_epoch = e;
    return false;  // full walk
  });
  return min_epoch;
}

}  // namespace papirepro::papi
