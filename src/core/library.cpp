#include "core/library.h"

#include <cassert>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>

#include "substrate/preset_maps.h"

namespace papirepro::papi {

namespace {

unsigned long default_thread_id() {
  return static_cast<unsigned long>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

/// Monotonic source of Library::instance_token_ values (never reused,
/// so a stale thread-local cache can never match a new Library).
std::atomic<std::uint64_t> next_library_token{1};

/// Per-thread memo of this thread's registry slot: repeat start()/read()
/// on the same thread skip the ThreadRegistry shared_mutex entirely.
/// Valid only while `token` matches the Library asking; cleared by
/// Library::unregister_thread (erase_current frees the ThreadState, and
/// only the owning thread can erase itself, so clearing here is safe
/// and sufficient — no other thread can hold a cache for this slot).
struct TlsContextCache {
  std::uint64_t token = 0;
  ThreadRegistry::ThreadState* state = nullptr;
};
thread_local TlsContextCache tls_context_cache;

}  // namespace

Library::Library(std::unique_ptr<Substrate> substrate)
    : instance_token_(
          next_library_token.fetch_add(1, std::memory_order_relaxed)) {
  assert(substrate != nullptr);
  substrate_ = substrate.get();
  // Component 0 is always the CPU core: every pre-component call site
  // (unqualified event names, bare native codes) resolves against it.
  // The description is read before std::move(substrate): argument
  // evaluation order is unspecified.
  std::string cpu_description(substrate->name());
  const auto added = components_.add("cpu", std::move(cpu_description),
                                     std::move(substrate));
  assert(added.ok());
  (void)added;
  substrate_->bind_telemetry(&telemetry_);
  alloc_cache_.bind_telemetry(&telemetry_);
  sampling_.bind_telemetry(&telemetry_);
  // Component 0's health monitor uses the CPU substrate as its cool-down
  // clock (every component does — one time base for the whole breaker).
  components_.at(0)->health.bind(&telemetry_, substrate_, 0);
}

Library::~Library() {
  // Stop every running set.  By now user threads must have quiesced (the
  // Library outlives its users); stop() releases each thread's running
  // slot, so don't hold the registry lock while calling it.
  for (EventSet* set : threads_.running_sets()) {
    (void)set->stop();
  }
  // PAPIREPRO_TELEMETRY=stderr|<path>: at-shutdown summary of the
  // library's own behaviour, for runs that never call the C API.
  if (const char* dest = std::getenv("PAPIREPRO_TELEMETRY")) {
    if (*dest != '\0') {
      const std::string summary =
          TelemetryRegistry::render_summary(telemetry_snapshot());
      if (std::strcmp(dest, "stderr") == 0) {
        std::fputs(summary.c_str(), stderr);
      } else {
        std::ofstream out(dest, std::ios::app);
        if (out) out << summary;
      }
    }
  }
}

TelemetrySnapshot Library::telemetry_snapshot() const {
  TelemetrySnapshot snap = telemetry_.snapshot();
  snap.num_components = components_.size();
  snap.alloc_cache_entries = alloc_cache_.stats().entries;
  const SamplingStats sampling = sampling_.stats();
  snap.sampling_sweeps = sampling.sweeps;
  snap.sampling_flushes = sampling.flushes;
  snap.sampling_rings_active = sampling.rings_active;
  snap.sampling_ring_capacity = sampling.ring_capacity;
  snap.sampling_async = sampling.async;
  return snap;
}

Status Library::set_trace(bool enabled, std::size_t ring_capacity) {
  return telemetry_.set_trace(
      enabled, ring_capacity == 0 ? TelemetryRegistry::kDefaultTraceCapacity
                                  : ring_capacity);
}

// --- components ----------------------------------------------------------

Result<std::uint32_t> Library::register_component(
    std::string name, std::string description,
    std::unique_ptr<Substrate> substrate) {
  Substrate* raw = substrate.get();
  auto added = components_.add(std::move(name), std::move(description),
                               std::move(substrate));
  if (added.ok()) {
    raw->bind_telemetry(&telemetry_);
    // New components inherit the library-wide health policy in force.
    Component* component = components_.at(added.value());
    component->health.bind(&telemetry_, substrate_, added.value());
    component->health.set_policy(components_.at(0)->health.policy());
  }
  return added;
}

Result<ComponentInfo> Library::component_info(std::uint32_t id) const {
  const Component* component = components_.at(id);
  if (component == nullptr) return Error::kNoComponent;
  ComponentInfo info;
  info.id = component->id;
  info.name = component->name;
  info.description = component->description;
  info.num_counters = component->substrate->num_counters();
  info.enabled = component->enabled.load(std::memory_order_relaxed);
  return info;
}

Result<std::uint32_t> Library::component_by_name(
    std::string_view name) const {
  const Component* component = components_.find(name);
  if (component == nullptr) return Error::kNoComponent;
  return component->id;
}

Status Library::set_component_enabled(std::uint32_t id, bool enabled) {
  Component* component = components_.at(id);
  if (component == nullptr) return Error::kNoComponent;
  component->enabled.store(enabled, std::memory_order_relaxed);
  return Error::kOk;
}

Status Library::set_health_policy(const HealthPolicy& policy) {
  if (policy.failure_rate_threshold < 0.0 ||
      policy.failure_rate_threshold > 1.0 ||
      policy.max_consecutive_exhaustions < 1 ||
      policy.probation_successes < 1 ||
      policy.probe_cooldown_max_usec < policy.probe_cooldown_usec) {
    return Error::kInvalid;
  }
  for (std::uint32_t id = 0; id < components_.size(); ++id) {
    components_.at(id)->health.set_policy(policy);
  }
  return Error::kOk;
}

HealthPolicy Library::health_policy() const {
  return components_.at(0)->health.policy();
}

Result<ComponentHealth> Library::component_health(std::uint32_t id) const {
  const Component* component = components_.at(id);
  if (component == nullptr) return Error::kNoComponent;
  return component->health.snapshot();
}

// --- event namespace -----------------------------------------------------

bool Library::query_event(EventId id) const {
  const Component* component = components_.at(id.component);
  if (component == nullptr) return false;
  if (id.is_preset()) {
    return component->substrate->preset_mapping(id.as_preset()).ok();
  }
  return component->substrate->native_name(id.as_native()).ok();
}

Result<std::string> Library::event_name(EventId id) const {
  const Component* component = components_.at(id.component);
  if (component == nullptr) return Error::kNoComponent;
  std::string bare;
  if (id.is_preset()) {
    if (!query_event(id)) return Error::kNoEvent;
    bare = std::string(preset_name(id.as_preset()));
  } else {
    auto native = component->substrate->native_name(id.as_native());
    if (!native.ok()) return native.error();
    bare = std::move(native).value();
  }
  // Component-0 names stay bare (legacy round-trip); other components
  // render namespace-qualified so the name resolves back to the same id.
  if (id.component == 0) return bare;
  return component->name + "::" + bare;
}

Result<std::string> Library::event_description(EventId id) const {
  const Component* component = components_.at(id.component);
  if (component == nullptr) return Error::kNoComponent;
  if (id.is_preset()) {
    if (!query_event(id)) return Error::kNoEvent;
    return std::string(preset_description(id.as_preset()));
  }
  return component->substrate->native_description(id.as_native());
}

Result<EventId> Library::event_from_name(std::string_view name) const {
  const auto sep = name.find("::");
  if (sep != std::string_view::npos) {
    const std::string_view prefix = name.substr(0, sep);
    const std::string_view rest = name.substr(sep + 2);
    const Component* component = components_.find(prefix);
    if (component == nullptr) return Error::kNoComponent;
    // Preset names resolve with or without the PAPI_ prefix
    // ("cpu::TOT_CYC" == "cpu::PAPI_TOT_CYC").
    auto preset = preset_from_name(rest);
    if (!preset) {
      preset = preset_from_name("PAPI_" + std::string(rest));
    }
    if (preset) {
      if (!component->substrate->preset_mapping(*preset).ok()) {
        return Error::kNoEvent;
      }
      return EventId::preset(*preset, component->id);
    }
    auto native = component->substrate->native_by_name(rest);
    if (!native.ok()) return native.error();
    return EventId::native(native.value(), component->id);
  }
  if (const auto preset = preset_from_name(name)) {
    const EventId id = EventId::preset(*preset);
    if (!query_event(id)) return Error::kNoEvent;
    return id;
  }
  auto native = substrate_->native_by_name(name);
  if (!native.ok()) return native.error();
  return EventId::native(native.value());
}

std::vector<Preset> Library::available_presets() const {
  std::vector<Preset> out;
  for (std::size_t i = 0; i < kNumPresets; ++i) {
    const auto p = static_cast<Preset>(i);
    if (substrate_->preset_mapping(p).ok()) out.push_back(p);
  }
  return out;
}

// --- threads -------------------------------------------------------------

Status Library::thread_init(ThreadIdFn id_fn) {
  if (!id_fn) return Error::kInvalid;
  const std::unique_lock<std::shared_mutex> lock(id_fn_mutex_);
  id_fn_ = std::move(id_fn);
  return Error::kOk;
}

bool Library::threaded() const noexcept {
  const std::shared_lock<std::shared_mutex> lock(id_fn_mutex_);
  return static_cast<bool>(id_fn_);
}

// --- transient-fault hardening ---------------------------------------------

Status Library::set_retry_policy(const RetryPolicy& policy) {
  if (policy.max_attempts < 1) return Error::kInvalid;
  retry_max_attempts_.store(policy.max_attempts,
                            std::memory_order_relaxed);
  retry_backoff_usec_.store(policy.backoff_base_usec,
                            std::memory_order_relaxed);
  return Error::kOk;
}

// --- asynchronous sampling pipeline -----------------------------------------

Status Library::configure_sampling(const SamplingConfig& config) {
  if (config.ring_capacity > SampleRing::kMaxCapacity) {
    return Error::kInvalid;
  }
  sampling_.configure(config);
  return Error::kOk;
}

RetryPolicy Library::retry_policy() const {
  RetryPolicy policy;
  policy.max_attempts = retry_max_attempts_.load(std::memory_order_relaxed);
  policy.backoff_base_usec =
      retry_backoff_usec_.load(std::memory_order_relaxed);
  return policy;
}

void Library::backoff_before_retry(int attempt) const {
  const std::uint64_t base =
      retry_backoff_usec_.load(std::memory_order_relaxed);
  if (base > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(base << (attempt - 1)));
  }
}

Result<ThreadRegistry::ThreadState*> Library::current_thread_state() {
  if (tls_context_cache.token == instance_token_) {
    return tls_context_cache.state;  // steady state: no registry lock
  }
  if (ThreadRegistry::ThreadState* state = threads_.find_current()) {
    tls_context_cache = {instance_token_, state};
    return state;
  }
  unsigned long numeric_id = 0;
  {
    const std::shared_lock<std::shared_mutex> lock(id_fn_mutex_);
    numeric_id = id_fn_ ? id_fn_() : default_thread_id();
  }
  // Claim the registry slot first so the numeric id is assigned exactly
  // once (the id function may not be idempotent), then create the
  // context.  A failed create must release the claim, or the partial
  // slot would shadow this thread forever and no retry could succeed.
  ThreadRegistry::ThreadState& state = threads_.claim_current(numeric_id);
  if (state.context != nullptr) {  // raced our own claim
    tls_context_cache = {instance_token_, &state};
    return &state;
  }
  std::unique_ptr<CounterContext> context;
  const Status created = run_slice_op(0, [&] {
    auto attempt = substrate_->create_context();
    if (!attempt.ok()) return Status(attempt.error());
    context = std::move(attempt).value();
    return Status();
  });
  if (!created.ok()) {
    threads_.release_partial_current();
    return created.error();
  }
  state.context = std::move(context);
  tls_context_cache = {instance_token_, &state};
  return &state;
}

Result<unsigned long> Library::thread_id() {
  auto state = current_thread_state();
  if (!state.ok()) return state.error();
  return state.value()->numeric_id;
}

Status Library::register_thread() {
  auto state = current_thread_state();
  return state.ok() ? Status() : state.error();
}

Status Library::unregister_thread() {
  const Status erased = threads_.erase_current();
  // The erase frees this thread's ThreadState, so drop the thread-local
  // pointer to it.  Only the owning thread can erase itself (and this IS
  // that thread), so no other thread's cache can reference the slot.
  if (erased.ok() && tls_context_cache.token == instance_token_) {
    tls_context_cache = {};
  }
  return erased;
}

Result<ThreadRegistry::ThreadState*> Library::acquire_thread(
    EventSet* set) {
  auto state = current_thread_state();
  if (!state.ok()) return state.error();
  EventSet* expected = nullptr;
  if (!state.value()->running.compare_exchange_strong(
          expected, set, std::memory_order_acq_rel) &&
      expected != set) {
    // Per-thread one-running-EventSet rule: another set on *this* thread
    // is already counting.  A set running on a different thread is fine.
    return Error::kIsRunning;
  }
  return state.value();
}

Result<CounterContext*> Library::component_context(
    ThreadRegistry::ThreadState& state, std::uint32_t component) {
  if (component == 0) return state.context.get();
  Component* entry = components_.at(component);
  if (entry == nullptr) return Error::kNoComponent;
  auto& slot = state.component_contexts[component];
  if (slot == nullptr) {
    // Lazy creation on the owning thread: thread-aware component
    // substrates bind the context to the calling thread's domain (its
    // machine, its rank), so this must not happen at registration time
    // on someone else's thread.
    std::unique_ptr<CounterContext> context;
    const Status created = run_slice_op(component, [&] {
      auto attempt = entry->substrate->create_context();
      if (!attempt.ok()) return Status(attempt.error());
      context = std::move(attempt).value();
      return Status();
    });
    if (!created.ok()) return created.error();
    slot = std::move(context);
  }
  return slot.get();
}

void Library::release_context(EventSet* set) {
  // Common case: the stop() runs on the thread that started the set, so
  // its own slot (thread-locally cached) holds it — release without
  // touching the registry lock.
  if (tls_context_cache.token == instance_token_ &&
      tls_context_cache.state != nullptr) {
    EventSet* expected = set;
    if (tls_context_cache.state->running.compare_exchange_strong(
            expected, nullptr, std::memory_order_acq_rel)) {
      return;
    }
  }
  // Cross-thread stop (the destructor does this): scan for whichever
  // thread's slot holds `set`.
  if (ThreadRegistry::ThreadState* state = threads_.find_running(set)) {
    state->running.store(nullptr, std::memory_order_release);
  }
}

// --- EventSets -----------------------------------------------------------

Result<int> Library::create_event_set() {
  const std::unique_lock<std::shared_mutex> lock(sets_mutex_);
  int handle = 0;
  if (!free_handles_.empty()) {
    handle = free_handles_.back();
    free_handles_.pop_back();
  } else if (next_handle_ == INT_MAX) {
    return Error::kNoMemory;  // handle space exhausted
  } else {
    handle = next_handle_++;
  }
  sets_.emplace(handle,
                std::unique_ptr<EventSet>(new EventSet(*this, handle)));
  return handle;
}

Result<EventSet*> Library::event_set(int handle) {
  const std::shared_lock<std::shared_mutex> lock(sets_mutex_);
  const auto it = sets_.find(handle);
  if (it == sets_.end()) return Error::kNoEventSet;
  return it->second.get();
}

Status Library::destroy_event_set(int handle) {
  const std::unique_lock<std::shared_mutex> lock(sets_mutex_);
  const auto it = sets_.find(handle);
  if (it == sets_.end()) return Error::kNoEventSet;
  if (it->second->running()) return Error::kIsRunning;
  sets_.erase(it);
  free_handles_.push_back(handle);
  return Error::kOk;
}

std::size_t Library::num_event_sets() const noexcept {
  const std::shared_lock<std::shared_mutex> lock(sets_mutex_);
  return sets_.size();
}

}  // namespace papirepro::papi
