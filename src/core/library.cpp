#include "core/library.h"

#include <cassert>

#include "substrate/preset_maps.h"

namespace papirepro::papi {

Library::Library(std::unique_ptr<Substrate> substrate)
    : substrate_(std::move(substrate)) {
  assert(substrate_ != nullptr);
}

Library::~Library() {
  if (running_ != nullptr) {
    (void)running_->stop();
  }
}

bool Library::query_event(EventId id) const {
  if (id.is_preset()) {
    return substrate_->preset_mapping(id.as_preset()).ok();
  }
  return substrate_->native_name(id.as_native()).ok();
}

Result<std::string> Library::event_name(EventId id) const {
  if (id.is_preset()) {
    if (!query_event(id)) return Error::kNoEvent;
    return std::string(preset_name(id.as_preset()));
  }
  return substrate_->native_name(id.as_native());
}

Result<std::string> Library::event_description(EventId id) const {
  if (id.is_preset()) {
    if (!query_event(id)) return Error::kNoEvent;
    return std::string(preset_description(id.as_preset()));
  }
  const pmu::PlatformDescription* platform = substrate_->platform();
  if (platform == nullptr) return Error::kNoEvent;
  const pmu::NativeEvent* ev = platform->find_event(id.as_native());
  if (ev == nullptr) return Error::kNoEvent;
  return ev->description;
}

Result<EventId> Library::event_from_name(std::string_view name) const {
  if (const auto preset = preset_from_name(name)) {
    const EventId id = EventId::preset(*preset);
    if (!query_event(id)) return Error::kNoEvent;
    return id;
  }
  auto native = substrate_->native_by_name(name);
  if (!native.ok()) return native.error();
  return EventId::native(native.value());
}

std::vector<Preset> Library::available_presets() const {
  std::vector<Preset> out;
  for (std::size_t i = 0; i < kNumPresets; ++i) {
    const auto p = static_cast<Preset>(i);
    if (substrate_->preset_mapping(p).ok()) out.push_back(p);
  }
  return out;
}

Result<int> Library::create_event_set() {
  const int handle = next_handle_++;
  sets_.emplace(handle,
                std::unique_ptr<EventSet>(new EventSet(*this, handle)));
  return handle;
}

Result<EventSet*> Library::event_set(int handle) {
  const auto it = sets_.find(handle);
  if (it == sets_.end()) return Error::kNoEventSet;
  return it->second.get();
}

Status Library::destroy_event_set(int handle) {
  const auto it = sets_.find(handle);
  if (it == sets_.end()) return Error::kNoEventSet;
  if (it->second->running()) return Error::kIsRunning;
  sets_.erase(it);
  return Error::kOk;
}

Status Library::notify_starting(EventSet* set) {
  // Overlapping EventSets were removed in PAPI 3: only one set may drive
  // the substrate's counters at a time.
  if (running_ != nullptr && running_ != set) return Error::kIsRunning;
  running_ = set;
  return Error::kOk;
}

void Library::notify_stopped(EventSet* set) {
  if (running_ == set) running_ = nullptr;
}

}  // namespace papirepro::papi
