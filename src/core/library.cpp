#include "core/library.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>

#include "substrate/preset_maps.h"

namespace papirepro::papi {

namespace {

unsigned long default_thread_id() {
  return static_cast<unsigned long>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

/// Monotonic source of Library::instance_token_ values (never reused,
/// so a stale thread-local cache can never match a new Library).
std::atomic<std::uint64_t> next_library_token{1};

/// Per-thread memo of this thread's registry slot: repeat start()/read()
/// on the same thread skip the ThreadRegistry shared_mutex entirely.
/// Valid only while `token` matches the Library asking; cleared by
/// Library::unregister_thread (erase_current frees the ThreadState, and
/// only the owning thread can erase itself, so clearing here is safe
/// and sufficient — no other thread can hold a cache for this slot).
struct TlsContextCache {
  std::uint64_t token = 0;
  ThreadRegistry::ThreadState* state = nullptr;
};
thread_local TlsContextCache tls_context_cache;

}  // namespace

Library::Library(std::unique_ptr<Substrate> substrate)
    : instance_token_(
          next_library_token.fetch_add(1, std::memory_order_relaxed)) {
  assert(substrate != nullptr);
  substrate_ = substrate.get();
  // Component 0 is always the CPU core: every pre-component call site
  // (unqualified event names, bare native codes) resolves against it.
  // The description is read before std::move(substrate): argument
  // evaluation order is unspecified.
  std::string cpu_description(substrate->name());
  const auto added = components_.add("cpu", std::move(cpu_description),
                                     std::move(substrate));
  assert(added.ok());
  (void)added;
  substrate_->bind_telemetry(&telemetry_);
  alloc_cache_.bind_telemetry(&telemetry_);
  sampling_.bind_telemetry(&telemetry_);
  // Component 0's health monitor uses the CPU substrate as its cool-down
  // clock (every component does — one time base for the whole breaker).
  components_.at(0)->health.bind(&telemetry_, substrate_, 0);
}

Library::~Library() {
  // Stop every running set.  By now user threads must have quiesced (the
  // Library outlives its users); stop() releases each thread's running
  // slot, so don't hold the registry lock while calling it.
  for (EventSet* set : threads_.running_sets()) {
    (void)set->stop();
  }
  // Handle-table chunks are only ever freed here, after all user threads
  // (and thus all lock-free readers) have quiesced.
  for (auto& chunk_slot : set_chunks_) {
    delete[] chunk_slot.load(std::memory_order_acquire);
  }
  // PAPIREPRO_TELEMETRY=stderr|<path>: at-shutdown summary of the
  // library's own behaviour, for runs that never call the C API.
  if (const char* dest = std::getenv("PAPIREPRO_TELEMETRY")) {
    if (*dest != '\0') {
      const std::string summary =
          TelemetryRegistry::render_summary(telemetry_snapshot());
      if (std::strcmp(dest, "stderr") == 0) {
        std::fputs(summary.c_str(), stderr);
      } else {
        std::ofstream out(dest, std::ios::app);
        if (out) out << summary;
      }
    }
  }
}

TelemetrySnapshot Library::telemetry_snapshot() const {
  TelemetrySnapshot snap = telemetry_.snapshot();
  snap.num_components = components_.size();
  snap.alloc_cache_entries = alloc_cache_.stats().entries;
  const SamplingStats sampling = sampling_.stats();
  snap.sampling_sweeps = sampling.sweeps;
  snap.sampling_flushes = sampling.flushes;
  snap.sampling_rings_active = sampling.rings_active;
  snap.sampling_ring_capacity = sampling.ring_capacity;
  snap.sampling_async = sampling.async;
  return snap;
}

Status Library::set_trace(bool enabled, std::size_t ring_capacity) {
  return telemetry_.set_trace(
      enabled, ring_capacity == 0 ? TelemetryRegistry::kDefaultTraceCapacity
                                  : ring_capacity);
}

// --- components ----------------------------------------------------------

Result<std::uint32_t> Library::register_component(
    std::string name, std::string description,
    std::unique_ptr<Substrate> substrate) {
  Substrate* raw = substrate.get();
  auto added = components_.add(std::move(name), std::move(description),
                               std::move(substrate));
  if (added.ok()) {
    raw->bind_telemetry(&telemetry_);
    // New components inherit the library-wide health policy in force.
    Component* component = components_.at(added.value());
    component->health.bind(&telemetry_, substrate_, added.value());
    component->health.set_policy(components_.at(0)->health.policy());
  }
  return added;
}

Result<ComponentInfo> Library::component_info(std::uint32_t id) const {
  const Component* component = components_.at(id);
  if (component == nullptr) return Error::kNoComponent;
  ComponentInfo info;
  info.id = component->id;
  info.name = component->name;
  info.description = component->description;
  info.num_counters = component->substrate->num_counters();
  info.enabled = component->enabled.load(std::memory_order_relaxed);
  return info;
}

Result<std::uint32_t> Library::component_by_name(
    std::string_view name) const {
  const Component* component = components_.find(name);
  if (component == nullptr) return Error::kNoComponent;
  return component->id;
}

Status Library::set_component_enabled(std::uint32_t id, bool enabled) {
  Component* component = components_.at(id);
  if (component == nullptr) return Error::kNoComponent;
  component->enabled.store(enabled, std::memory_order_relaxed);
  return Error::kOk;
}

Status Library::set_health_policy(const HealthPolicy& policy) {
  if (policy.failure_rate_threshold < 0.0 ||
      policy.failure_rate_threshold > 1.0 ||
      policy.max_consecutive_exhaustions < 1 ||
      policy.probation_successes < 1 ||
      policy.probe_cooldown_max_usec < policy.probe_cooldown_usec) {
    return Error::kInvalid;
  }
  for (std::uint32_t id = 0; id < components_.size(); ++id) {
    components_.at(id)->health.set_policy(policy);
  }
  return Error::kOk;
}

HealthPolicy Library::health_policy() const {
  return components_.at(0)->health.policy();
}

Result<ComponentHealth> Library::component_health(std::uint32_t id) const {
  const Component* component = components_.at(id);
  if (component == nullptr) return Error::kNoComponent;
  return component->health.snapshot();
}

// --- event namespace -----------------------------------------------------

bool Library::query_event(EventId id) const {
  const Component* component = components_.at(id.component);
  if (component == nullptr) return false;
  if (id.is_preset()) {
    return component->substrate->preset_mapping(id.as_preset()).ok();
  }
  return component->substrate->native_name(id.as_native()).ok();
}

Result<std::string> Library::event_name(EventId id) const {
  const Component* component = components_.at(id.component);
  if (component == nullptr) return Error::kNoComponent;
  std::string bare;
  if (id.is_preset()) {
    if (!query_event(id)) return Error::kNoEvent;
    bare = std::string(preset_name(id.as_preset()));
  } else {
    auto native = component->substrate->native_name(id.as_native());
    if (!native.ok()) return native.error();
    bare = std::move(native).value();
  }
  // Component-0 names stay bare (legacy round-trip); other components
  // render namespace-qualified so the name resolves back to the same id.
  if (id.component == 0) return bare;
  return component->name + "::" + bare;
}

Result<std::string> Library::event_description(EventId id) const {
  const Component* component = components_.at(id.component);
  if (component == nullptr) return Error::kNoComponent;
  if (id.is_preset()) {
    if (!query_event(id)) return Error::kNoEvent;
    return std::string(preset_description(id.as_preset()));
  }
  return component->substrate->native_description(id.as_native());
}

Result<EventId> Library::event_from_name(std::string_view name) const {
  const auto sep = name.find("::");
  if (sep != std::string_view::npos) {
    const std::string_view prefix = name.substr(0, sep);
    const std::string_view rest = name.substr(sep + 2);
    const Component* component = components_.find(prefix);
    if (component == nullptr) return Error::kNoComponent;
    // Preset names resolve with or without the PAPI_ prefix
    // ("cpu::TOT_CYC" == "cpu::PAPI_TOT_CYC").
    auto preset = preset_from_name(rest);
    if (!preset) {
      preset = preset_from_name("PAPI_" + std::string(rest));
    }
    if (preset) {
      if (!component->substrate->preset_mapping(*preset).ok()) {
        return Error::kNoEvent;
      }
      return EventId::preset(*preset, component->id);
    }
    auto native = component->substrate->native_by_name(rest);
    if (!native.ok()) return native.error();
    return EventId::native(native.value(), component->id);
  }
  if (const auto preset = preset_from_name(name)) {
    const EventId id = EventId::preset(*preset);
    if (!query_event(id)) return Error::kNoEvent;
    return id;
  }
  auto native = substrate_->native_by_name(name);
  if (!native.ok()) return native.error();
  return EventId::native(native.value());
}

std::vector<Preset> Library::available_presets() const {
  std::vector<Preset> out;
  for (std::size_t i = 0; i < kNumPresets; ++i) {
    const auto p = static_cast<Preset>(i);
    if (substrate_->preset_mapping(p).ok()) out.push_back(p);
  }
  return out;
}

// --- threads -------------------------------------------------------------

Status Library::thread_init(ThreadIdFn id_fn) {
  if (!id_fn) return Error::kInvalid;
  writer_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(id_fn_mutex_);
  id_fn_ = std::move(id_fn);
  has_id_fn_.store(true, std::memory_order_release);
  return Error::kOk;
}

bool Library::threaded() const noexcept {
  // Lock-free: the flag is release-published after the function object
  // is installed, and thread_init never uninstalls it.
  return has_id_fn_.load(std::memory_order_acquire);
}

// --- transient-fault hardening ---------------------------------------------

Status Library::set_retry_policy(const RetryPolicy& policy) {
  if (policy.max_attempts < 1) return Error::kInvalid;
  retry_max_attempts_.store(policy.max_attempts,
                            std::memory_order_relaxed);
  retry_backoff_usec_.store(policy.backoff_base_usec,
                            std::memory_order_relaxed);
  return Error::kOk;
}

// --- asynchronous sampling pipeline -----------------------------------------

Status Library::configure_sampling(const SamplingConfig& config) {
  if (config.ring_capacity > SampleRing::kMaxCapacity) {
    return Error::kInvalid;
  }
  sampling_.configure(config);
  return Error::kOk;
}

RetryPolicy Library::retry_policy() const {
  RetryPolicy policy;
  policy.max_attempts = retry_max_attempts_.load(std::memory_order_relaxed);
  policy.backoff_base_usec =
      retry_backoff_usec_.load(std::memory_order_relaxed);
  return policy;
}

void Library::backoff_before_retry(int attempt) const {
  const std::uint64_t base =
      retry_backoff_usec_.load(std::memory_order_relaxed);
  if (base > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(base << (attempt - 1)));
  }
}

Result<ThreadRegistry::ThreadState*> Library::current_thread_state() {
  if (tls_context_cache.token == instance_token_) {
    return tls_context_cache.state;  // steady state: no registry lock
  }
  if (ThreadRegistry::ThreadState* state = threads_.find_current()) {
    tls_context_cache = {instance_token_, state};
    return state;
  }
  unsigned long numeric_id = 0;
  if (has_id_fn_.load(std::memory_order_acquire)) {
    // Registration slow path only — steady-state reads never get here.
    writer_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(id_fn_mutex_);
    numeric_id = id_fn_ ? id_fn_() : default_thread_id();
  } else {
    numeric_id = default_thread_id();
  }
  // Claim the registry slot first so the numeric id is assigned exactly
  // once (the id function may not be idempotent), then create the
  // context.  A failed create must release the claim, or the partial
  // slot would shadow this thread forever and no retry could succeed.
  ThreadRegistry::ThreadState& state = threads_.claim_current(numeric_id);
  if (state.context != nullptr) {  // raced our own claim
    tls_context_cache = {instance_token_, &state};
    return &state;
  }
  std::unique_ptr<CounterContext> context;
  const Status created = run_slice_op(0, [&] {
    auto attempt = substrate_->create_context();
    if (!attempt.ok()) return Status(attempt.error());
    context = std::move(attempt).value();
    return Status();
  });
  if (!created.ok()) {
    threads_.release_partial_current();
    return created.error();
  }
  state.context = std::move(context);
  tls_context_cache = {instance_token_, &state};
  return &state;
}

Result<unsigned long> Library::thread_id() {
  auto state = current_thread_state();
  if (!state.ok()) return state.error();
  return state.value()->numeric_id;
}

Status Library::register_thread() {
  auto state = current_thread_state();
  return state.ok() ? Status() : state.error();
}

Status Library::unregister_thread() {
  const Status erased = threads_.erase_current();
  // The erase frees this thread's ThreadState, so drop the thread-local
  // pointer to it.  Only the owning thread can erase itself (and this IS
  // that thread), so no other thread's cache can reference the slot.
  if (erased.ok() && tls_context_cache.token == instance_token_) {
    tls_context_cache = {};
  }
  return erased;
}

Result<ThreadRegistry::ThreadState*> Library::acquire_thread(
    EventSet* set) {
  auto state = current_thread_state();
  if (!state.ok()) return state.error();
  EventSet* expected = nullptr;
  if (!state.value()->running.compare_exchange_strong(
          expected, set, std::memory_order_acq_rel) &&
      expected != set) {
    // Per-thread one-running-EventSet rule: another set on *this* thread
    // is already counting.  A set running on a different thread is fine.
    return Error::kIsRunning;
  }
  return state.value();
}

Result<CounterContext*> Library::component_context(
    ThreadRegistry::ThreadState& state, std::uint32_t component) {
  if (component == 0) return state.context.get();
  Component* entry = components_.at(component);
  if (entry == nullptr) return Error::kNoComponent;
  auto& slot = state.component_contexts[component];
  if (slot == nullptr) {
    // Lazy creation on the owning thread: thread-aware component
    // substrates bind the context to the calling thread's domain (its
    // machine, its rank), so this must not happen at registration time
    // on someone else's thread.
    std::unique_ptr<CounterContext> context;
    const Status created = run_slice_op(component, [&] {
      auto attempt = entry->substrate->create_context();
      if (!attempt.ok()) return Status(attempt.error());
      context = std::move(attempt).value();
      return Status();
    });
    if (!created.ok()) return created.error();
    slot = std::move(context);
  }
  return slot.get();
}

void Library::release_context(EventSet* set) {
  // Common case: the stop() runs on the thread that started the set, so
  // its own slot (thread-locally cached) holds it — release without
  // touching the registry lock.
  if (tls_context_cache.token == instance_token_ &&
      tls_context_cache.state != nullptr) {
    EventSet* expected = set;
    if (tls_context_cache.state->running.compare_exchange_strong(
            expected, nullptr, std::memory_order_acq_rel)) {
      return;
    }
  }
  // Cross-thread stop (the destructor does this): scan for whichever
  // thread's slot holds `set`.
  if (ThreadRegistry::ThreadState* state = threads_.find_running(set)) {
    state->running.store(nullptr, std::memory_order_release);
  }
}

// --- EventSets -----------------------------------------------------------

std::atomic<EventSet*>* Library::set_slot(int handle) const noexcept {
  if (handle <= 0) return nullptr;
  const std::size_t idx = static_cast<std::size_t>(handle) - 1;
  const std::size_t chunk_idx = idx >> kSetChunkShift;
  if (chunk_idx >= kMaxSetChunks) return nullptr;
  std::atomic<EventSet*>* chunk =
      set_chunks_[chunk_idx].load(std::memory_order_acquire);
  if (chunk == nullptr) return nullptr;
  return &chunk[idx & (kSetChunkSlots - 1)];
}

EventSet* Library::find_set(int handle) const noexcept {
  std::atomic<EventSet*>* slot = set_slot(handle);
  // seq_cst slot load: participates in the reclamation protocol's single
  // total order (see EpochPin) so a pinned reader either sees the set or
  // provably pinned after its unpublish.
  return slot != nullptr ? slot->load(std::memory_order_seq_cst) : nullptr;
}

Result<int> Library::create_event_set() {
  writer_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(sets_mutex_);
  int handle = 0;
  if (!free_handles_.empty()) {
    handle = free_handles_.back();
    free_handles_.pop_back();
  } else if (static_cast<std::size_t>(next_handle_) >
             kMaxSetChunks * kSetChunkSlots) {
    return Error::kNoMemory;  // handle space exhausted
  } else {
    handle = next_handle_++;
  }
  const std::size_t idx = static_cast<std::size_t>(handle) - 1;
  const std::size_t chunk_idx = idx >> kSetChunkShift;
  std::atomic<EventSet*>* chunk =
      set_chunks_[chunk_idx].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    // Value-initialized: every slot is null before the release store
    // publishes the chunk to lock-free readers.  Chunks are never freed
    // before the Library dies.
    chunk = new std::atomic<EventSet*>[kSetChunkSlots]();
    set_chunks_[chunk_idx].store(chunk, std::memory_order_release);
  }
  auto set = std::unique_ptr<EventSet>(new EventSet(*this, handle));
  EventSet* raw = set.get();
  sets_.emplace(handle, std::move(set));
  num_sets_.fetch_add(1, std::memory_order_relaxed);
  // Publish last, after the set is fully constructed and owned.
  chunk[idx & (kSetChunkSlots - 1)].store(raw, std::memory_order_seq_cst);
  return handle;
}

Result<EventSet*> Library::event_set(int handle) {
  EventSet* set = find_set(handle);  // lock-free: two atomic loads
  if (set == nullptr) return Error::kNoEventSet;
  return set;
}

void Library::reclaim_retired_locked() {
  if (graveyard_.empty()) return;
  // A retired set is freeable once every pinned reader's epoch is at or
  // past its retire epoch: such a pin's seq_cst global-epoch load came
  // after the retire bump, therefore after the unpublish, so that
  // reader's table walk can only have seen null for this handle.
  const std::uint64_t min_pin = threads_.min_active_epoch();
  std::erase_if(graveyard_, [&](const RetiredSet& retired) {
    return retired.retire_epoch <= min_pin;
  });
}

Status Library::destroy_event_set(int handle) {
  writer_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(sets_mutex_);
  const auto it = sets_.find(handle);
  if (it == sets_.end()) return Error::kNoEventSet;
  if (it->second->running()) return Error::kIsRunning;
  // 1. Unpublish: lock-free readers stop finding the set.
  set_slot(handle)->store(nullptr, std::memory_order_seq_cst);
  // 2. Retire under the epoch that exists *after* the unpublish; readers
  //    pinned before it may still hold the pointer, so the storage moves
  //    to the graveyard instead of being freed.
  const std::uint64_t retire =
      global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  graveyard_.push_back({std::move(it->second), retire});
  sets_.erase(it);
  num_sets_.fetch_sub(1, std::memory_order_relaxed);
  free_handles_.push_back(handle);
  // 3. Opportunistically free whatever prior retirees have quiesced.
  reclaim_retired_locked();
  return Error::kOk;
}

std::size_t Library::retired_sets_pending() const {
  const std::lock_guard<std::mutex> lock(sets_mutex_);
  return graveyard_.size();
}

// --- batched snapshot reads ----------------------------------------------

EventSet* Library::current_running() const noexcept {
  if (tls_context_cache.token == instance_token_ &&
      tls_context_cache.state != nullptr) {
    return tls_context_cache.state->running.load(std::memory_order_acquire);
  }
  if (ThreadRegistry::ThreadState* state = threads_.find_current()) {
    return state->running.load(std::memory_order_acquire);
  }
  return nullptr;
}

std::size_t Library::batch_num_values(EventSet& set,
                                      bool live) const noexcept {
  if (live) return set.entries_.size();
  return set.published_.num_events.load(std::memory_order_acquire);
}

Status Library::batch_fill(EventSet& set, bool live,
                           std::span<long long> out, SnapshotEntry& e) {
  e.status = Error::kOk;
  e.flags = 0;
  e.num_values = 0;
  e.pub_cycles = 0;
  if (live) {
    const std::size_t n = set.entries_.size();
    if (out.size() < n) return Error::kInvalid;
    const Status s = set.read(out.first(n));
    if (s.ok()) {
      e.num_values = static_cast<std::uint32_t>(n);
      e.flags = set.folded_read_flags();
      // The live read just republished: its stamp is the read time.
      e.pub_cycles =
          set.published_.pub_cycles.load(std::memory_order_relaxed);
      return Error::kOk;
    }
    if (s.error() == Error::kNotRunning) {
      e.status = s.error();
      return Error::kOk;
    }
    // The live read failed (quarantine, substrate fault): serve the last
    // publication and mark the provenance instead of failing the batch.
    set.read_published_into(out, e);
    e.flags |= read_flag::kStale;
    if (s.error() == Error::kComponentQuarantined) {
      e.flags |= read_flag::kQuarantined;
    }
    return Error::kOk;
  }
  set.read_published_into(out, e);
  return Error::kOk;
}

Status Library::read_many(std::span<EventSet* const> sets,
                          std::span<long long> values,
                          std::span<SnapshotEntry> entries,
                          std::size_t* values_used) {
  if (values_used != nullptr) *values_used = 0;
  if (entries.size() < sets.size()) return Error::kInvalid;
  // Resolve the calling thread's context once for the whole batch.
  EventSet* const my_running = current_running();
  std::size_t used = 0;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    EventSet* set = sets[i];
    if (set == nullptr) return Error::kInvalid;
    SnapshotEntry& e = entries[i];
    e.handle = set->handle();
    e.first_value = static_cast<std::uint32_t>(used);
    const bool live = set == my_running;
    if (used + batch_num_values(*set, live) > values.size()) {
      return Error::kInvalid;  // caller's values buffer is too small
    }
    PAPIREPRO_RETURN_IF_ERROR(
        batch_fill(*set, live, values.subspan(used), e));
    used += e.num_values;
  }
  if (values_used != nullptr) *values_used = used;
  return Error::kOk;
}

Status Library::read_many_handles(std::span<const int> handles,
                                  std::span<long long> values,
                                  std::span<SnapshotEntry> entries,
                                  std::size_t* values_used) {
  if (values_used != nullptr) *values_used = 0;
  if (entries.size() < handles.size()) return Error::kInvalid;
  auto state = current_thread_state();
  if (!state.ok()) return state.error();
  EventSet* const my_running =
      state.value()->running.load(std::memory_order_acquire);
  // Handle resolution happens inside the pin: a concurrent destroy of
  // any of these sets parks the storage in the graveyard until we drop
  // the pin, so the pointers stay valid for the whole batch.
  const EpochPin pin(*this, *state.value());
  std::size_t used = 0;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    SnapshotEntry& e = entries[i];
    e.handle = handles[i];
    e.first_value = static_cast<std::uint32_t>(used);
    e.num_values = 0;
    e.flags = 0;
    e.pub_cycles = 0;
    EventSet* set = find_set(handles[i]);
    if (set == nullptr) {
      e.status = Error::kNoEventSet;  // per-entry, not a batch failure
      continue;
    }
    const bool live = set == my_running;
    if (used + batch_num_values(*set, live) > values.size()) {
      return Error::kInvalid;  // caller's values buffer is too small
    }
    PAPIREPRO_RETURN_IF_ERROR(
        batch_fill(*set, live, values.subspan(used), e));
    used += e.num_values;
  }
  if (values_used != nullptr) *values_used = used;
  return Error::kOk;
}

Status Library::snapshot_all(std::vector<SnapshotEntry>& entries,
                             std::vector<long long>& values) {
  // Thin grow-and-retry wrapper over the span overload: the hot walk
  // runs over plain spans with no per-set vector bookkeeping (the
  // earlier resize-per-set/push_back-per-set loop cost more than the
  // seqlock copies it fed).  A warm caller's capacity survives the
  // trailing shrink, so steady state is one span pass per call.
  entries.resize(std::max<std::size_t>(entries.capacity(), 64));
  values.resize(std::max<std::size_t>(values.capacity(), 256));
  for (;;) {
    std::size_t n_entries = 0;
    std::size_t n_values = 0;
    const Status s = snapshot_all(std::span<SnapshotEntry>(entries),
                                  std::span<long long>(values), &n_entries,
                                  &n_values);
    if (s.ok()) {
      entries.resize(n_entries);
      values.resize(n_values);
      return s;
    }
    if (s.error() != Error::kInvalid) {
      entries.clear();
      values.clear();
      return s;
    }
    // Undersized for the current registry: kInvalid from the span
    // overload only means one of the two buffers ran out.
    entries.resize(entries.size() * 2);
    values.resize(values.size() * 2);
  }
}

Status Library::snapshot_all(std::span<SnapshotEntry> entries,
                             std::span<long long> values,
                             std::size_t* entries_used,
                             std::size_t* values_used) {
  if (entries_used != nullptr) *entries_used = 0;
  if (values_used != nullptr) *values_used = 0;
  auto state = current_thread_state();
  if (!state.ok()) return state.error();
  EventSet* const my_running =
      state.value()->running.load(std::memory_order_acquire);
  const EpochPin pin(*this, *state.value());
  std::size_t n_entries = 0;
  std::size_t used = 0;
  for (std::size_t chunk_idx = 0; chunk_idx < kMaxSetChunks; ++chunk_idx) {
    std::atomic<EventSet*>* chunk =
        set_chunks_[chunk_idx].load(std::memory_order_acquire);
    if (chunk == nullptr) break;
    for (std::size_t s = 0; s < kSetChunkSlots; ++s) {
      EventSet* set = chunk[s].load(std::memory_order_seq_cst);
      if (set == nullptr) continue;
      if (n_entries == entries.size()) return Error::kInvalid;
      SnapshotEntry& e = entries[n_entries];
      e.handle = set->handle();
      e.first_value = static_cast<std::uint32_t>(used);
      const bool live = set == my_running;
      if (used + batch_num_values(*set, live) > values.size()) {
        return Error::kInvalid;  // caller's values buffer is too small
      }
      PAPIREPRO_RETURN_IF_ERROR(
          batch_fill(*set, live, values.subspan(used), e));
      used += e.num_values;
      ++n_entries;
    }
  }
  if (entries_used != nullptr) *entries_used = n_entries;
  if (values_used != nullptr) *values_used = used;
  return Error::kOk;
}

}  // namespace papirepro::papi
