// The library front door (PAPI_library_init and friends).  Owns the
// component registry (every measurement component — CPU core, memory/
// uncore, network — with its own Substrate, event namespace, and counter
// budget; component 0 is the substrate the Library was constructed
// with), the EventSets (by integer handle, so the C bridge is trivial),
// the event-name namespace ("mem::BANDWIDTH_RD" routes to the "mem"
// component), and the per-thread one-running-EventSet rule: PAPI 3 dropped overlapping EventSets "to reduce memory
// usage and runtime overhead and simplify the code", and thread support
// keys that rule by thread — each registered thread gets its own
// CounterContext from the substrate factory, so N threads can each drive
// one running EventSet concurrently with no shared counter state.
//
// Thread discipline: the handle table is a lock-free chunked array of
// atomic EventSet pointers — lookups and batched walks take zero locks;
// creation/destruction serialize on one plain writer mutex with
// epoch-based deferred reclamation (a destroyed set's storage survives
// until every in-flight batched reader has unpinned).  Counter control
// goes through the calling thread's context, and the stateless services
// (event namespace, allocation, timers, memory info) are safe from any
// thread.  Threads are auto-registered on their first start(); explicit
// register_thread()/unregister_thread() bound the lifetime when callers
// want PAPI_register_thread semantics.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/allocation_cache.h"
#include "core/component.h"
#include "core/eventset.h"
#include "core/memory_info.h"
#include "core/sampling_pipeline.h"
#include "core/telemetry.h"
#include "core/thread_registry.h"
#include "substrate/substrate.h"

namespace papirepro::papi {

/// Bounded retry for transient substrate failures (the PAPI_set_opt-style
/// hardening knob).  Context creation, counter programming, start, and
/// reads are re-attempted up to `max_attempts` total tries when the
/// failure is_transient(); the *last* substrate error — never a retry
/// artifact — surfaces when the budget is exhausted.  `backoff_base_usec`
/// of wall-clock sleep, doubling per attempt, separates the tries (0 =
/// immediate retry, the right setting for simulated substrates whose
/// clock does not advance while we sleep).
struct RetryPolicy {
  int max_attempts = 3;
  std::uint64_t backoff_base_usec = 0;
};

class Library {
 public:
  /// Version handshake, PAPI-style: callers pass the version they were
  /// compiled against.
  static constexpr int kVersion = 0x03000000;  // 3.0.0

  using ThreadIdFn = std::function<unsigned long()>;

  explicit Library(std::unique_ptr<Substrate> substrate);
  ~Library();

  Library(const Library&) = delete;
  Library& operator=(const Library&) = delete;

  /// Component 0's (the CPU core's) substrate.
  Substrate& substrate() noexcept { return *substrate_; }
  const Substrate& substrate() const noexcept { return *substrate_; }

  // --- components (PAPI-C style registry) ---
  /// Registers a measurement component under namespace prefix `name`
  /// ("mem", "net", ...) and returns its id.  Registration belongs to
  /// init time, before threads start counting — the registry is
  /// lock-free to read and therefore append-only and single-threaded to
  /// write.
  Result<std::uint32_t> register_component(
      std::string name, std::string description,
      std::unique_ptr<Substrate> substrate);
  std::size_t num_components() const noexcept {
    return components_.size();
  }
  Result<ComponentInfo> component_info(std::uint32_t id) const;
  Result<std::uint32_t> component_by_name(std::string_view name) const;
  /// The component's substrate, or nullptr for an unknown id.
  Substrate* component_substrate(std::uint32_t id) const noexcept {
    Component* component = components_.at(id);
    return component != nullptr ? component->substrate.get() : nullptr;
  }
  /// Soft-disables a component: existing EventSets keep working, new
  /// add_event() calls against it fail with kComponentDisabled.
  Status set_component_enabled(std::uint32_t id, bool enabled);

  // --- component health (circuit breaker) ---
  /// Applies `policy` to every registered component's health monitor.
  Status set_health_policy(const HealthPolicy& policy);
  /// The health policy currently in force (component 0's copy — the
  /// policy is library-wide).
  HealthPolicy health_policy() const;
  /// Point-in-time health of one component.
  Result<ComponentHealth> component_health(std::uint32_t id) const;
  /// Gate before touching `component`'s substrate: kOk, or
  /// kComponentQuarantined fail-fast while its breaker is open.
  Status health_admit(std::uint32_t component) noexcept {
    Component* c = components_.at(component);
    return c != nullptr ? c->health.admit() : Status(Error::kNoComponent);
  }
  /// Feeds an operation's final (post-retry) outcome back into
  /// `component`'s breaker.
  void health_record(std::uint32_t component, Error outcome) noexcept {
    if (Component* c = components_.at(component)) c->health.record(outcome);
  }

  // --- event namespace (stateless; any thread) ---
  bool query_event(EventId id) const;
  Result<std::string> event_name(EventId id) const;
  Result<std::string> event_description(EventId id) const;
  /// Accepts "PAPI_*" preset names and platform native names, plus
  /// component-qualified forms: "mem::BANDWIDTH_RD" resolves in the
  /// "mem" component's namespace (native names, preset names with or
  /// without the PAPI_ prefix).  Unknown prefixes fail with
  /// kNoComponent.
  Result<EventId> event_from_name(std::string_view name) const;
  std::vector<Preset> available_presets() const;
  std::uint32_t num_counters() const noexcept {
    return substrate_->num_counters();
  }

  // --- threads (PAPI_thread_init / PAPI_register_thread) ---
  /// Installs the id function used to label threads (PAPI_thread_init).
  /// Without it, threads are labelled by a hash of std::thread::id.
  Status thread_init(ThreadIdFn id_fn);
  bool threaded() const noexcept;
  /// Numeric id of the calling thread (PAPI_thread_id); registers the
  /// thread as a side effect, like the first start() would.
  Result<unsigned long> thread_id();
  /// Eagerly creates the calling thread's CounterContext.  Idempotent.
  Status register_thread();
  /// Drops the calling thread's context; kIsRunning while its EventSet
  /// runs.  Registration is re-created on the next start().
  Status unregister_thread();
  std::size_t num_threads() const noexcept { return threads_.size(); }

  // --- EventSets ---
  Result<int> create_event_set();
  Result<EventSet*> event_set(int handle);
  Status destroy_event_set(int handle);
  std::size_t num_event_sets() const noexcept {
    return num_sets_.load(std::memory_order_relaxed);
  }

  // --- batched snapshot reads ---
  /// Reads every set in `sets` in one pass: the calling thread's context
  /// is resolved once, its own running set gets a full live read, every
  /// other set is served from its seqlock publication (kPublished flag).
  /// `entries[i]` describes set i's values at
  /// values[entries[i].first_value ..+ num_values).  Zero heap
  /// allocation.  kInvalid when entries or values are too small.
  Status read_many(std::span<EventSet* const> sets,
                   std::span<long long> values,
                   std::span<SnapshotEntry> entries,
                   std::size_t* values_used = nullptr);
  /// Handle-resolving variant (the C API's entry): lookups happen inside
  /// the caller's epoch pin, so a concurrent destroy_event_set defers
  /// reclamation instead of racing.  Unknown handles yield a per-entry
  /// kNoEventSet status, not a batch failure.
  Status read_many_handles(std::span<const int> handles,
                           std::span<long long> values,
                           std::span<SnapshotEntry> entries,
                           std::size_t* values_used = nullptr);
  /// One coherent pass over every live EventSet in the library (the
  /// whole handle table), into caller-owned vectors that are resized to
  /// fit (contents replaced) and reused — steady state allocates
  /// nothing once capacity is warm.
  Status snapshot_all(std::vector<SnapshotEntry>& entries,
                      std::vector<long long>& values);
  /// Fixed-capacity variant (the C API's entry): kInvalid when either
  /// buffer is too small for the live population.  Never allocates.
  Status snapshot_all(std::span<SnapshotEntry> entries,
                      std::span<long long> values,
                      std::size_t* entries_used, std::size_t* values_used);

  /// Lock-free handle lookup: two atomic loads.  The pointer is only
  /// safe to dereference while the caller holds an epoch pin or
  /// otherwise owns the set's lifetime.
  EventSet* find_set(int handle) const noexcept;

  // --- lock observability (test hooks) ---
  /// Total writer-mutex acquisitions (thread registry + handle table) so
  /// far.  Steady-state read/accum/read_many/snapshot_all must leave
  /// this unchanged — the assertion tests prove the lock-free claim.
  std::uint64_t lock_acquisitions() const noexcept {
    return threads_.lock_acquisitions() +
           writer_lock_acquisitions_.load(std::memory_order_relaxed);
  }
  /// Destroyed EventSets whose storage is still deferred behind an
  /// active reader pin.
  std::size_t retired_sets_pending() const;

  // --- timers ("the most popular feature") ---
  std::uint64_t real_usec() const { return substrate_->real_usec(); }
  std::uint64_t real_cycles() const { return substrate_->real_cycles(); }
  std::uint64_t virt_usec() const { return substrate_->virt_usec(); }

  // --- PAPI 3 memory utilization extension ---
  Result<MemoryInfo> memory_info() const {
    return substrate_->memory_info();
  }

  // --- transient-fault hardening ---
  /// max_attempts < 1 is invalid; max_attempts == 1 disables retries.
  Status set_retry_policy(const RetryPolicy& policy);
  RetryPolicy retry_policy() const;
  /// Runs `op`, re-attempting transient failures per the retry policy.
  /// Returns the final attempt's status (the original substrate error on
  /// a permanent or retry-exhausted fault).  Templated on the callable so
  /// the read hot path never materializes a std::function (no type
  /// erasure, no possible heap allocation, full inlining).
  template <typename Op>
  Status run_with_retries(Op&& op) {
    const int max_attempts =
        retry_max_attempts_.load(std::memory_order_relaxed);
    Status status = op();
    for (int attempt = 1; attempt < max_attempts && !status.ok() &&
                          is_transient(status.error());
         ++attempt) {
      telemetry_.bump(TelemetryCounter::kRetryAttempts);
      telemetry_.trace_instant(TraceEventKind::kRetry,
                               substrate_->real_cycles(),
                               static_cast<std::uint64_t>(attempt));
      backoff_before_retry(attempt);
      status = op();
    }
    if (!status.ok() && is_transient(status.error())) {
      telemetry_.bump(TelemetryCounter::kRetryExhaustions);
    }
    return status;
  }

  /// run_with_retries() bracketed by `component`'s circuit breaker: a
  /// quarantined component rejects the op up front (fail fast, no
  /// backoff sleeps), and the final outcome feeds the health state
  /// machine.  Templated like run_with_retries so the hot path stays
  /// free of type erasure; the Healthy bracket is two relaxed loads.
  template <typename Op>
  Status run_slice_op(std::uint32_t component, Op&& op) {
    Component* c = components_.at(component);
    if (c == nullptr) return Error::kNoComponent;
    return run_slice_op(*c, std::forward<Op>(op));
  }

  /// Same bracket with the Component already resolved — the read hot
  /// path caches the pointer per slice at rebuild so steady-state reads
  /// skip the registry indirection entirely.
  template <typename Op>
  Status run_slice_op(Component& c, Op&& op) {
    PAPIREPRO_RETURN_IF_ERROR(c.health.admit());
    const Status status = run_with_retries(std::forward<Op>(op));
    c.health.record(status.error());
    return status;
  }

  /// Memoized front of Substrate::allocate, shared by every EventSet
  /// rebuild and multiplex plan in this library.
  AllocationCache& allocation_cache() noexcept { return alloc_cache_; }
  const AllocationCache& allocation_cache() const noexcept {
    return alloc_cache_;
  }

  // --- asynchronous sampling pipeline ---
  /// The per-Library sample aggregator: one consumer thread draining
  /// every running EventSet's overflow ring (PAPIrepro_set_sampling /
  /// PAPIrepro_sampling_stats at the C level).
  SamplingAggregator& sampling() noexcept { return sampling_; }
  const SamplingAggregator& sampling() const noexcept { return sampling_; }
  /// Applies to EventSets started after the call; running sets keep the
  /// mode they latched at start().
  Status configure_sampling(const SamplingConfig& config);
  SamplingStats sampling_stats() const { return sampling_.stats(); }

  // --- self-telemetry ---
  /// The library-wide introspection registry.  Every subsystem (EventSet
  /// control paths, retry wrapper, allocation cache, sampling pipeline,
  /// fault decorator) bumps counters here; tools and the C API read one
  /// consistent snapshot back out.
  TelemetryRegistry& telemetry() noexcept { return telemetry_; }
  const TelemetryRegistry& telemetry() const noexcept { return telemetry_; }
  /// Registry counter totals plus the subsystem gauges (alloc-cache
  /// entries, sampling ring state) folded in — the one read path behind
  /// PAPIrepro_get_telemetry and the legacy stats entry points.
  TelemetrySnapshot telemetry_snapshot() const;
  /// Enables/disables the per-thread trace rings (PAPIrepro_set_trace).
  /// `ring_capacity` 0 keeps the registry default.
  Status set_trace(bool enabled, std::size_t ring_capacity = 0);
  /// Drains buffered trace records into chrome://tracing JSON or CSV.
  std::string dump_trace(TraceFormat format) {
    return telemetry_.dump_trace(format);
  }

 private:
  friend class EventSet;
  /// Claims the calling thread's running slot for `set` and returns the
  /// thread's state (auto-registering the thread on first use).
  /// kIsRunning when another set already runs on this thread.
  Result<ThreadRegistry::ThreadState*> acquire_thread(EventSet* set);
  /// The calling thread's CounterContext for `component`, creating it on
  /// first use (component 0's was created at registration).  Must be
  /// called with the thread's own state.
  Result<CounterContext*> component_context(
      ThreadRegistry::ThreadState& state, std::uint32_t component);
  /// Clears whichever thread's running slot holds `set`.
  void release_context(EventSet* set);
  /// The calling thread's state, creating it if needed.  Steady state is
  /// a thread-local cache hit that never touches the registry lock;
  /// the slow path registers the thread and fills the cache.
  Result<ThreadRegistry::ThreadState*> current_thread_state();
  /// Sleeps the policy's exponential backoff before retry `attempt`.
  void backoff_before_retry(int attempt) const;

  /// RAII epoch pin for batched readers.  While alive, destroyed
  /// EventSets whose unpublish the pinned reader may not have observed
  /// stay in the graveyard instead of being freed.  The pin load of the
  /// global epoch is seq_cst: correctness argues through the single
  /// total order over {pin store, unpublish store, epoch bump, writer
  /// scan} — a pin at or past a set's retire epoch proves the reader's
  /// table walk started after the unpublish and cannot hold the pointer.
  class EpochPin {
   public:
    EpochPin(Library& library, ThreadRegistry::ThreadState& state) noexcept
        : state_(state) {
      state_.epoch.store(
          library.global_epoch_.load(std::memory_order_seq_cst),
          std::memory_order_seq_cst);
    }
    ~EpochPin() { state_.epoch.store(0, std::memory_order_release); }
    EpochPin(const EpochPin&) = delete;
    EpochPin& operator=(const EpochPin&) = delete;

   private:
    ThreadRegistry::ThreadState& state_;
  };

  /// The handle's slot in the chunked table, or nullptr when its chunk
  /// was never allocated.
  std::atomic<EventSet*>* set_slot(int handle) const noexcept;
  /// Frees every graveyard entry no active reader pin can still reach.
  /// Caller holds sets_mutex_.
  void reclaim_retired_locked();
  /// Number of values `set` will produce in a batch (live event count or
  /// the published header's count).
  std::size_t batch_num_values(EventSet& set, bool live) const noexcept;
  /// Fills one batch entry: live read for the caller's running set (with
  /// publication fallback on failure), seqlock publication copy for
  /// everything else.  Writes e.num_values values into `out`; kInvalid
  /// only when `out` cannot hold a live read.
  Status batch_fill(EventSet& set, bool live, std::span<long long> out,
                    SnapshotEntry& e);
  /// The calling thread's currently running set, resolved through the
  /// thread-local cache (no registry lock), or nullptr.
  EventSet* current_running() const noexcept;

  /// Declared first: every other subsystem (substrate decorators, the
  /// allocation cache, the sampling aggregator, EventSets) holds a raw
  /// pointer into the registry, so it must be constructed before and
  /// destroyed after all of them.
  TelemetryRegistry telemetry_;

  /// Owns every component's Substrate (component 0 is the one the
  /// Library was constructed with).  Declared before the thread registry
  /// and EventSets, whose contexts point into the substrates.
  ComponentRegistry components_;
  /// Component 0's substrate — the hot-path alias (owned by
  /// components_).
  Substrate* substrate_ = nullptr;
  /// Distinguishes this Library in thread-local context caches: a new
  /// Library constructed at a recycled address must never match a stale
  /// cache entry (ABA), so tokens are drawn from a process-wide counter.
  const std::uint64_t instance_token_;

  ThreadRegistry threads_;
  /// threaded() is an acquire load on the flag; the mutex only covers
  /// the registration slow path and reads of the function object.
  std::atomic<bool> has_id_fn_{false};
  mutable std::mutex id_fn_mutex_;
  ThreadIdFn id_fn_;

  /// Retry policy as relaxed atomics: read on every hot-path retry
  /// wrapper entry, so no lock.  A concurrent set_retry_policy() may be
  /// observed field-by-field; both orderings are valid policies.
  std::atomic<int> retry_max_attempts_{3};
  std::atomic<std::uint64_t> retry_backoff_usec_{0};

  AllocationCache alloc_cache_;

  /// Declared before sets_: EventSets detach their rings in their
  /// destructors, so the aggregator must outlive the handle table.
  SamplingAggregator sampling_;

  // --- handle table: lock-free readers, mutex-serialized writers ---
  /// Chunk geometry: handle h lives at chunk[(h-1) >> kSetChunkShift]
  /// slot[(h-1) & (kSetChunkSlots-1)].  Chunks are allocated on demand
  /// under sets_mutex_, release-published, and never freed before the
  /// Library dies, so a lock-free reader's two loads (acquire chunk,
  /// seq_cst slot) always land on live storage.
  static constexpr std::size_t kSetChunkShift = 10;
  static constexpr std::size_t kSetChunkSlots = 1u << kSetChunkShift;
  static constexpr std::size_t kMaxSetChunks = 1024;  // ~1M handles
  std::array<std::atomic<std::atomic<EventSet*>*>, kMaxSetChunks>
      set_chunks_{};

  mutable std::mutex sets_mutex_;
  /// Ownership ledger behind the lock-free table: the unique_ptrs that
  /// actually own live EventSets.
  std::unordered_map<int, std::unique_ptr<EventSet>> sets_;
  /// Destroyed sets whose storage waits out in-flight reader pins.
  struct RetiredSet {
    std::unique_ptr<EventSet> set;
    std::uint64_t retire_epoch;
  };
  std::vector<RetiredSet> graveyard_;
  std::vector<int> free_handles_;  ///< destroyed handles, reused LIFO
  int next_handle_ = 1;
  /// Global reclamation epoch; bumped (seq_cst) after each unpublish.
  std::atomic<std::uint64_t> global_epoch_{1};
  std::atomic<std::size_t> num_sets_{0};
  /// Handle-table writer-mutex acquisitions (see lock_acquisitions()).
  std::atomic<std::uint64_t> writer_lock_acquisitions_{0};
};

}  // namespace papirepro::papi
