// The library front door (PAPI_library_init and friends).  Owns the
// substrate, the EventSets (by integer handle, so the C bridge is
// trivial), the event-name namespace, and the one-running-EventSet rule
// (PAPI 3 dropped overlapping EventSets "to reduce memory usage and
// runtime overhead and simplify the code").
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/eventset.h"
#include "core/memory_info.h"
#include "substrate/substrate.h"

namespace papirepro::papi {

class Library {
 public:
  /// Version handshake, PAPI-style: callers pass the version they were
  /// compiled against.
  static constexpr int kVersion = 0x03000000;  // 3.0.0

  explicit Library(std::unique_ptr<Substrate> substrate);
  ~Library();

  Library(const Library&) = delete;
  Library& operator=(const Library&) = delete;

  Substrate& substrate() noexcept { return *substrate_; }
  const Substrate& substrate() const noexcept { return *substrate_; }

  // --- event namespace ---
  bool query_event(EventId id) const;
  Result<std::string> event_name(EventId id) const;
  Result<std::string> event_description(EventId id) const;
  /// Accepts "PAPI_*" preset names and platform native names.
  Result<EventId> event_from_name(std::string_view name) const;
  std::vector<Preset> available_presets() const;
  std::uint32_t num_counters() const noexcept {
    return substrate_->num_counters();
  }

  // --- EventSets ---
  Result<int> create_event_set();
  Result<EventSet*> event_set(int handle);
  Status destroy_event_set(int handle);
  std::size_t num_event_sets() const noexcept { return sets_.size(); }

  // --- timers ("the most popular feature") ---
  std::uint64_t real_usec() const { return substrate_->real_usec(); }
  std::uint64_t real_cycles() const { return substrate_->real_cycles(); }
  std::uint64_t virt_usec() const { return substrate_->virt_usec(); }

  // --- PAPI 3 memory utilization extension ---
  Result<MemoryInfo> memory_info() const {
    return substrate_->memory_info();
  }

 private:
  friend class EventSet;
  /// One-running-EventSet enforcement.
  Status notify_starting(EventSet* set);
  void notify_stopped(EventSet* set);

  std::unique_ptr<Substrate> substrate_;
  std::unordered_map<int, std::unique_ptr<EventSet>> sets_;
  int next_handle_ = 1;
  EventSet* running_ = nullptr;
};

}  // namespace papirepro::papi
