// Self-telemetry: the library watching itself.  The paper's operational
// lesson is that the measurement layer has a cost — "up to ~30 %
// overhead with direct counting vs 1-2 % with sampling" — and a
// monitoring library that cannot report its *own* behaviour (retries,
// degradations, mux rotations, sample drops) forces users to re-derive
// that cost from external benches.  The TelemetryRegistry makes it a
// first-class runtime surface:
//
//   * a fixed enum of library-wide counters, maintained as per-thread
//     cache-line-padded relaxed-atomic slabs and summed on read.  The
//     bump path is zero-allocation and lock-free in steady state: a
//     thread-local (token, slab) memo — the same ABA-safe pattern as the
//     Library's context cache — resolves the slab without touching the
//     registry mutex; only a thread's *first* bump registers a slab.
//   * an opt-in per-thread trace ring of fixed-size span/instant records
//     (the SampleRing SPSC shape: the producer is the instrumented hot
//     path and must never block or allocate; the consumer is whoever
//     calls dump_trace(), serialized by the registry mutex), exportable
//     as chrome://tracing JSON or CSV.
//
// Counter slabs and trace rings are never freed before the registry is
// destroyed: a thread that exits keeps its counts in the totals, and a
// producer racing a dump can never touch freed storage.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace papirepro::papi {

/// Every introspection counter the library maintains about itself.  One
/// slot per slab entry; the order is the wire order of the C API struct.
enum class TelemetryCounter : std::size_t {
  kStarts = 0,           ///< successful EventSet::start() calls
  kStops,                ///< successful EventSet::stop() calls
  kReads,                ///< EventSet::read() calls (accum reads included)
  kAccums,               ///< EventSet::accum() calls
  kResets,               ///< EventSet::reset() calls
  kMuxRotations,         ///< multiplex slice rotations
  kRetryAttempts,        ///< re-attempts after a transient fault
  kRetryExhaustions,     ///< transient faults surfaced after the budget
  kDegradations,         ///< degradation-ladder activations
  kFaultsInjected,       ///< faults the injecting decorator delivered
  kAllocCacheHits,       ///< allocation-memo hits
  kAllocCacheMisses,     ///< allocation-memo misses (matcher solves)
  kAllocCacheEvictions,  ///< LRU evictions
  kAllocCacheInvalidations,  ///< generation-change flushes
  kSamplesEnqueued,      ///< overflow samples accepted by rings
  kSamplesDropped,       ///< overflow samples lost to full rings
  kSamplesDispatched,    ///< samples delivered by the aggregator
  kOverflowsSuppressed,  ///< dispatches dropped after clear_overflow()
  kTraceRecords,         ///< trace records accepted by trace rings
  kTraceDrops,           ///< trace records lost to full trace rings
  kHealthTransitions,    ///< health state-machine transitions
  kHealthFailFasts,      ///< ops rejected fast by an open circuit breaker
  kHealthProbes,         ///< probation probes admitted to the substrate
  kSanityFaults,         ///< counter readings flagged non-monotonic
  kCollectorFrames,      ///< snapshot frames ingested by collectors
  kCollectorDecodeErrors,  ///< frames rejected by the wire decoder
  kCollectorReductions,  ///< cluster reductions computed by collectors
  kNumCounters
};

inline constexpr std::size_t kNumTelemetryCounters =
    static_cast<std::size_t>(TelemetryCounter::kNumCounters);

/// Stable short names, indexed by counter (summary dumps, C callers).
constexpr std::array<const char*, kNumTelemetryCounters>
    kTelemetryCounterNames = {
        "starts",           "stops",
        "reads",            "accums",
        "resets",           "mux_rotations",
        "retry_attempts",   "retry_exhaustions",
        "degradations",     "faults_injected",
        "alloc_cache_hits", "alloc_cache_misses",
        "alloc_cache_evictions", "alloc_cache_invalidations",
        "samples_enqueued", "samples_dropped",
        "samples_dispatched", "overflows_suppressed",
        "trace_records",    "trace_drops",
        "health_transitions", "health_fail_fasts",
        "health_probes",    "sanity_faults",
        "collector_frames", "collector_decode_errors",
        "collector_reductions",
};

constexpr const char* telemetry_counter_name(TelemetryCounter c) {
  return kTelemetryCounterNames[static_cast<std::size_t>(c)];
}

/// Per-component dimension of the control-operation counters: the
/// component registry makes "how often did each component's counters get
/// started/stopped/read" a distinct question from the library-wide
/// totals (one cross-component read bumps kReads once but every spanned
/// component's kReads slot once each).
enum class ComponentCounter : std::size_t {
  kStarts = 0,  ///< per-component start fan-outs
  kStops,       ///< per-component stop fan-outs
  kReads,       ///< per-component counter snapshots
  kNumCounters
};

inline constexpr std::size_t kNumComponentCounters =
    static_cast<std::size_t>(ComponentCounter::kNumCounters);

/// Must match papi::kMaxComponents (component.h keeps the registry-side
/// cap; the slabs carry a fixed block so the bump path stays a plain
/// indexed store).
inline constexpr std::size_t kTelemetryMaxComponents = 8;

/// What a trace record marks.  Spans (dur > 0 possible) for the control
/// operations, instants for one-shot occurrences.
enum class TraceEventKind : std::uint8_t {
  kStart = 0,
  kStop,
  kRead,
  kAccum,
  kReset,
  kRotate,
  kRetry,
  kDegrade,
  kOverflowDispatch,
  kHealth,  ///< health state transition; arg packs component | from | to
  kNumKinds
};

constexpr const char* trace_event_name(TraceEventKind kind) {
  constexpr std::array<const char*,
                       static_cast<std::size_t>(TraceEventKind::kNumKinds)>
      names = {"start",  "stop",  "read",    "accum",            "reset",
               "rotate", "retry", "degrade", "overflow_dispatch",
               "health"};
  return names[static_cast<std::size_t>(kind)];
}

/// One trace event: a span when dur_cycles > 0, an instant otherwise.
/// POD so enqueue is a handful of stores; timestamps are substrate
/// cycles of whatever clock the instrumented path runs on.
struct TraceRecord {
  std::uint64_t ts_cycles = 0;
  std::uint64_t dur_cycles = 0;
  std::uint64_t arg = 0;  ///< EventSet handle / attempt number / flags
  TraceEventKind kind = TraceEventKind::kStart;
};

/// SPSC ring of trace records, the SampleRing design re-applied: the
/// producer is the instrumented hot path on the slab-owning thread
/// (wait-free, allocation-free, drops on full); the consumer is
/// dump_trace(), serialized by the registry mutex.
class TraceRing {
 public:
  static constexpr std::size_t kMinCapacity = 8;
  static constexpr std::size_t kMaxCapacity = 1u << 20;

  explicit TraceRing(std::size_t capacity) {
    std::size_t cap = kMinCapacity;
    while (cap < capacity && cap < kMaxCapacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<TraceRecord[]>(cap);
  }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }

  bool try_push(const TraceRecord& record) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= capacity_) return false;
    slots_[tail & mask_] = record;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  bool try_pop(TraceRecord& out) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  std::size_t size() const noexcept {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

 private:
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::unique_ptr<TraceRecord[]> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

/// Point-in-time sum of every telemetry counter plus the gauges folded
/// in from the subsystems (Library::telemetry_snapshot() fills those) —
/// the one consistent read path behind PAPIrepro_get_telemetry and the
/// legacy alloc-cache / sampling stats entry points.
struct TelemetrySnapshot {
  std::array<std::uint64_t, kNumTelemetryCounters> counters{};
  /// Per-component control-operation totals, indexed
  /// [component * kNumComponentCounters + counter].
  std::array<std::uint64_t,
             kTelemetryMaxComponents * kNumComponentCounters>
      component_counters{};
  /// Registered components at snapshot time (Library fills this).
  std::uint64_t num_components = 0;
  bool enabled = true;
  bool trace_enabled = false;
  std::uint64_t threads_seen = 0;  ///< slabs ever registered
  std::uint64_t trace_records_buffered = 0;

  // Gauges copied from their owning subsystems at snapshot time.
  std::uint64_t alloc_cache_entries = 0;
  std::uint64_t sampling_sweeps = 0;
  std::uint64_t sampling_flushes = 0;
  std::uint64_t sampling_rings_active = 0;
  std::uint64_t sampling_ring_capacity = 0;
  bool sampling_async = false;

  std::uint64_t value(TelemetryCounter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  std::uint64_t component_value(std::size_t component,
                                ComponentCounter c) const noexcept {
    if (component >= kTelemetryMaxComponents) return 0;
    return component_counters[component * kNumComponentCounters +
                              static_cast<std::size_t>(c)];
  }
};

enum class TraceFormat : std::uint8_t { kChromeJson = 0, kCsv = 1 };

class TelemetryRegistry {
 public:
  static constexpr std::size_t kDefaultTraceCapacity = 4096;

  TelemetryRegistry()
      : token_(next_registry_token().fetch_add(
            1, std::memory_order_relaxed)) {}
  ~TelemetryRegistry() = default;

  TelemetryRegistry(const TelemetryRegistry&) = delete;
  TelemetryRegistry& operator=(const TelemetryRegistry&) = delete;

  /// Master switch.  Off turns every bump/trace call into one relaxed
  /// load + branch — bench_telemetry_overhead measures enabled-vs-
  /// disabled on exactly this knob.
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  bool tracing() const noexcept {
    return trace_enabled_.load(std::memory_order_relaxed);
  }

  /// The hot path: one relaxed flag load, one thread-local memo probe,
  /// one relaxed load+store on a cache-line-private atomic.  The slab
  /// is single-writer (current_slab() always resolves the *calling*
  /// thread's slab), so the increment needs no atomic RMW — a plain
  /// load/add/store is exact and keeps the `lock` prefix off the read
  /// path.  The only slow case is a thread's first bump against this
  /// registry, which registers a slab under the mutex (and allocates —
  /// callers that assert zero-allocation warm up first, like every
  /// other TLS cache in the library).
  void bump(TelemetryCounter c, std::uint64_t n = 1) noexcept {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    if (Slab* slab = current_slab()) {
      auto& cell = slab->counts[static_cast<std::size_t>(c)].value;
      cell.store(cell.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
    }
  }

  /// Per-component variant of bump(): same one-flag-load, one-memo-probe,
  /// one relaxed load+store shape, landing in the slab's fixed
  /// per-component block.  Out-of-range components are dropped rather
  /// than checked upstream — the registry caps ids at kMaxComponents.
  void bump_component(std::uint32_t component, ComponentCounter c,
                      std::uint64_t n = 1) noexcept {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    if (component >= kTelemetryMaxComponents) return;
    if (Slab* slab = current_slab()) {
      auto& cell =
          slab->component_counts[component * kNumComponentCounters +
                                 static_cast<std::size_t>(c)];
      cell.store(cell.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
    }
  }

  /// Fused read-path bump: the library-wide kReads counter and
  /// `component`'s kReads slot in one slab resolve (one enabled-flag
  /// load, one thread-local memo probe) instead of two — the
  /// single-read fast path's only telemetry touch.  `n` > 1 lets the
  /// batched read paths account a whole pass with one call.
  void bump_read(std::uint32_t component, std::uint64_t n = 1) noexcept {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    Slab* slab = current_slab();
    if (slab == nullptr) return;
    auto& cell =
        slab->counts[static_cast<std::size_t>(TelemetryCounter::kReads)]
            .value;
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
    if (component >= kTelemetryMaxComponents) return;
    auto& ccell =
        slab->component_counts[component * kNumComponentCounters +
                               static_cast<std::size_t>(
                                   ComponentCounter::kReads)];
    ccell.store(ccell.load(std::memory_order_relaxed) + n,
                std::memory_order_relaxed);
  }

  /// Trace enqueue: wait-free and allocation-free once the thread's
  /// ring exists (set_trace(true) creates rings for known slabs; slabs
  /// registered later get one at registration).  Full rings drop the
  /// record and account it — never block the instrumented path.
  void trace(TraceEventKind kind, std::uint64_t ts_cycles,
             std::uint64_t dur_cycles, std::uint64_t arg) noexcept {
    if (!trace_enabled_.load(std::memory_order_relaxed)) return;
    Slab* slab = current_slab();
    if (slab == nullptr) return;
    TraceRing* ring = slab->ring.load(std::memory_order_acquire);
    if (ring == nullptr) return;
    const bool pushed =
        ring->try_push(TraceRecord{ts_cycles, dur_cycles, arg, kind});
    auto& cell = slab->counts[static_cast<std::size_t>(
                                  pushed ? TelemetryCounter::kTraceRecords
                                         : TelemetryCounter::kTraceDrops)]
                     .value;
    cell.store(cell.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  }
  void trace_instant(TraceEventKind kind, std::uint64_t ts_cycles,
                     std::uint64_t arg) noexcept {
    trace(kind, ts_cycles, 0, arg);
  }

  /// Enables/disables per-thread trace rings.  Enabling creates a ring
  /// (capacity records, rounded up to a power of two; 0 = default) for
  /// every known slab and for slabs registered later; disabling stops
  /// recording but keeps buffered records for dump_trace().  Rings keep
  /// their capacity once created.
  Status set_trace(bool enabled,
                   std::size_t ring_capacity = kDefaultTraceCapacity);

  /// Counter totals summed across every slab (live and dead threads).
  /// Gauges owned by other subsystems are zero here; Library's
  /// telemetry_snapshot() fills them.
  TelemetrySnapshot snapshot() const;

  /// Drains every trace ring (destructive: records are consumed) into
  /// one time-sorted export.  kChromeJson is a chrome://tracing
  /// traceEvents document with cycle timestamps in the "ts"/"dur"
  /// microsecond fields (1 simulated cycle == 1 display unit); kCsv is
  /// tid,kind,ts_cycles,dur_cycles,arg rows.
  std::string dump_trace(TraceFormat format);

  /// Human-readable counter table for the PAPIREPRO_TELEMETRY shutdown
  /// dump; `snapshot` should come from Library::telemetry_snapshot() so
  /// the gauges are filled.
  static std::string render_summary(const TelemetrySnapshot& snapshot);

 private:
  struct alignas(64) PaddedCounter {
    std::atomic<std::uint64_t> value{0};
  };
  /// One thread's counter slab.  The counters are the thread's private
  /// cache lines (padded so two threads' bumps never false-share) and
  /// **single-writer**: every bump/trace call resolves the calling
  /// thread's own slab, so increments are relaxed load+store pairs and
  /// only snapshot() reads them cross-thread; the ring pointer is
  /// written under the registry mutex and acquire-read by the owning
  /// thread's trace path.
  struct Slab {
    std::array<PaddedCounter, kNumTelemetryCounters> counts{};
    /// Per-component block, same single-writer contract as `counts`.
    /// Unpadded: one thread owns the whole block, so the only sharing
    /// is with snapshot() reads.
    std::array<std::atomic<std::uint64_t>,
               kTelemetryMaxComponents * kNumComponentCounters>
        component_counts{};
    std::atomic<TraceRing*> ring{nullptr};
    std::uint64_t thread_key = 0;
    std::uint64_t tid_label = 0;  ///< dense label for trace exports
  };
  struct TlsSlabCache {
    std::uint64_t token = 0;
    Slab* slab = nullptr;
  };

  /// Process-wide monotonic registry tokens (never reused, so a stale
  /// thread-local memo can never match a new registry — the same ABA
  /// defence as Library::instance_token_).
  static std::atomic<std::uint64_t>& next_registry_token() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    return counter;
  }
  /// Process-wide monotonic per-thread key: unique per live thread and
  /// never reused, so a new thread can never match a dead thread's slab
  /// (a hash of thread::id could collide; this cannot).
  static std::uint64_t current_thread_key() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    thread_local const std::uint64_t key =
        counter.fetch_add(1, std::memory_order_relaxed);
    return key;
  }

  Slab* current_slab() noexcept {
    if (tls_cache_.token == token_) return tls_cache_.slab;
    return register_current_thread();
  }

  /// Slow path: find or create this thread's slab.  Inline so substrate
  /// code (the fault decorator) can bump without linking the core
  /// library's objects.
  Slab* register_current_thread() {
    const std::uint64_t key = current_thread_key();
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& slab : slabs_) {
      if (slab->thread_key == key) {
        tls_cache_ = {token_, slab.get()};
        return slab.get();
      }
    }
    auto slab = std::make_unique<Slab>();
    slab->thread_key = key;
    slab->tid_label = slabs_.size();
    if (trace_enabled_.load(std::memory_order_relaxed)) {
      rings_.push_back(std::make_unique<TraceRing>(trace_capacity_));
      slab->ring.store(rings_.back().get(), std::memory_order_release);
    }
    slabs_.push_back(std::move(slab));
    tls_cache_ = {token_, slabs_.back().get()};
    return slabs_.back().get();
  }

  static thread_local TlsSlabCache tls_cache_;

  const std::uint64_t token_;
  std::atomic<bool> enabled_{true};
  std::atomic<bool> trace_enabled_{false};

  mutable std::mutex mutex_;  ///< guards slabs_, rings_, trace_capacity_
  std::vector<std::unique_ptr<Slab>> slabs_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::size_t trace_capacity_ = kDefaultTraceCapacity;
};

inline thread_local TelemetryRegistry::TlsSlabCache
    TelemetryRegistry::tls_cache_{};

}  // namespace papirepro::papi
