#include "core/component.h"

#include <utility>

#include "substrate/substrate.h"

namespace papirepro::papi {

// Out of line so translation units that only see the forward-declared
// Substrate can still hold Components (e.g. through the thread
// registry's headers).
Component::Component() = default;
Component::~Component() = default;

Result<std::uint32_t> ComponentRegistry::add(
    std::string name, std::string description,
    std::unique_ptr<Substrate> substrate) {
  if (name.empty() || name.find(':') != std::string::npos ||
      substrate == nullptr) {
    return Error::kInvalid;
  }
  if (components_.size() >= kMaxComponents) return Error::kNoMemory;
  for (const auto& c : components_) {
    if (c->name == name) return Error::kConflict;
  }
  auto component = std::make_unique<Component>();
  component->id = static_cast<std::uint32_t>(components_.size());
  component->name = std::move(name);
  component->description = std::move(description);
  component->substrate = std::move(substrate);
  components_.push_back(std::move(component));
  return components_.back()->id;
}

}  // namespace papirepro::papi
