// Per-component health monitor: a lock-free circuit breaker between the
// retry layer and the substrates.  The paper's degradation lesson (and
// ScALPEL's adaptive-monitoring thesis) is that a monitoring layer must
// survive a misbehaving counter source: without a breaker, a substrate
// that is hard-down pays the full bounded-retry exponential backoff on
// *every* operation forever, turning one dead component into a
// process-wide stall.  The HealthMonitor watches the per-operation
// outcomes the retry wrapper already produces and drives a four-state
// machine:
//
//            consecutive exhaustions >= max, or
//            window failure rate >= threshold
//   Healthy ----------> Degraded ----------> Quarantined
//      ^   first fault       (breaker trips)      |
//      |                                          | cool-down elapses
//      |   window drains clean                    | (exponential)
//      +-------- Degraded                         v
//      ^                                      Probation
//      |   probation_successes probes OK          |
//      +------------------------------------------+
//                 (a probe failure re-quarantines with doubled cool-down)
//
// While Quarantined, admit() rejects the operation with
// Error::kComponentQuarantined *before* the retry wrapper runs, so a
// dead component costs one relaxed load + one clock read instead of the
// full backoff ladder.  Recovery is lazy — probe-on-next-op once the
// cool-down elapses; no background thread.
//
// Concurrency: the state is a single atomic<uint8_t> advanced by CAS;
// the failure window is a 64-bit bitmask shifted in by CAS; counters
// are relaxed atomics.  Racing recorders may both observe a trip
// condition, but the CAS ensures exactly one performs each transition
// (and bumps the transition telemetry).  The Healthy fast paths —
// admit() and record(kOk) — are one relaxed load each and never touch
// the clock, keeping the steady-state read hot path at its budget.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace papirepro::papi {

class Substrate;
class TelemetryRegistry;

/// Health states, ordered so the admit() fast path is one comparison:
/// states <= kDegraded admit operations unconditionally.
enum class HealthState : std::uint8_t {
  kHealthy = 0,     ///< normal operation
  kDegraded = 1,    ///< recent faults, still admitting (window filling)
  kQuarantined = 2, ///< breaker open: fail fast until cool-down elapses
  kProbation = 3,   ///< cool-down elapsed: admitting probes
};

constexpr const char* health_state_name(HealthState s) noexcept {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kQuarantined: return "quarantined";
    case HealthState::kProbation: return "probation";
  }
  return "?";
}

/// Tunables for the breaker, settable per Library (mirrors RetryPolicy).
struct HealthPolicy {
  bool enabled = true;
  /// Consecutive retry-exhausted transient faults that trip the breaker.
  std::uint32_t max_consecutive_exhaustions = 3;
  /// Minimum ops in the sliding window before the rate test applies.
  std::uint32_t window_min_ops = 16;
  /// Window failure rate (failures / ops, over the last <=64 ops) that
  /// trips the breaker once window_min_ops have been observed.
  double failure_rate_threshold = 0.5;
  /// Successful probes required to leave Probation for Healthy.
  std::uint32_t probation_successes = 2;
  /// Initial quarantine cool-down; doubles on each probe failure.
  std::uint64_t probe_cooldown_usec = 100;
  /// Cool-down ceiling for the exponential growth.
  std::uint64_t probe_cooldown_max_usec = 1'000'000;
};

/// Point-in-time view of one component's health (C API mirror).
struct ComponentHealth {
  std::uint32_t component = 0;
  HealthState state = HealthState::kHealthy;
  std::uint32_t consecutive_exhaustions = 0;
  std::uint32_t window_ops = 0;       ///< ops in the sliding window (<=64)
  std::uint32_t window_failures = 0;  ///< failed ops among those
  std::uint64_t quarantines = 0;      ///< breaker trips, lifetime
  std::uint64_t fail_fasts = 0;       ///< ops rejected while quarantined
  std::uint64_t probes = 0;           ///< probation probes admitted
  std::uint64_t transitions = 0;      ///< state changes, lifetime
  std::uint64_t cooldown_usec = 0;    ///< current cool-down interval
  Error last_error = Error::kOk;      ///< most recent recorded fault
};

class HealthMonitor {
 public:
  HealthMonitor() = default;
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Wires the monitor to its telemetry sink, the clock it uses for
  /// cool-down arithmetic, and its component id (for trace args).
  /// Called once at component registration, before any concurrent use.
  void bind(TelemetryRegistry* telemetry, Substrate* clock,
            std::uint32_t component) noexcept {
    telemetry_ = telemetry;
    clock_ = clock;
    component_ = component;
  }

  void set_policy(const HealthPolicy& policy) noexcept;
  HealthPolicy policy() const noexcept;

  HealthState state() const noexcept {
    return static_cast<HealthState>(state_.load(std::memory_order_relaxed));
  }

  /// Gate called before an operation touches the component's substrate.
  /// Healthy/Degraded admit in one relaxed load; Quarantined fails fast
  /// with kComponentQuarantined until the cool-down elapses, then flips
  /// to Probation and admits the op as a probe.
  Status admit() noexcept {
    const auto s =
        static_cast<HealthState>(state_.load(std::memory_order_relaxed));
    if (s <= HealthState::kDegraded) return Error::kOk;
    return admit_slow(s);
  }

  /// Feeds an operation's final outcome (post-retry) back into the
  /// state machine.  The Healthy-success path is one relaxed load.
  void record(Error outcome) noexcept {
    const auto s =
        static_cast<HealthState>(state_.load(std::memory_order_relaxed));
    if (outcome == Error::kOk && s == HealthState::kHealthy) return;
    record_slow(outcome, s);
  }

  ComponentHealth snapshot() const noexcept;

  /// Test/administrative escape hatch: reopen the component immediately
  /// (clears the window, cool-down, and consecutive-failure count).
  void force_healthy() noexcept;

 private:
  Status admit_slow(HealthState s) noexcept;
  void record_slow(Error outcome, HealthState s) noexcept;
  /// CAS `from` -> `to`; on success accounts the transition (telemetry
  /// counter + trace record) and returns true.
  bool transition(HealthState from, HealthState to) noexcept;
  /// Pushes one op into the sliding window (bit 0 = newest; 1 = fail).
  void window_push(bool failed) noexcept;
  /// Trips the breaker if the consecutive/exhaustion or window-rate
  /// condition holds in state `s`.
  void maybe_trip(HealthState s) noexcept;
  std::uint64_t now_usec() const noexcept;

  TelemetryRegistry* telemetry_ = nullptr;
  Substrate* clock_ = nullptr;
  std::uint32_t component_ = 0;

  std::atomic<std::uint8_t> state_{
      static_cast<std::uint8_t>(HealthState::kHealthy)};

  // Policy knobs as individual atomics so set_policy() never blocks the
  // hot path (same pattern as Library's RetryPolicy).
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint32_t> max_consecutive_{3};
  std::atomic<std::uint32_t> window_min_ops_{16};
  std::atomic<double> failure_rate_threshold_{0.5};
  std::atomic<std::uint32_t> probation_successes_{2};
  std::atomic<std::uint64_t> cooldown_base_usec_{100};
  std::atomic<std::uint64_t> cooldown_max_usec_{1'000'000};

  // Sliding window: newest op in bit 0, saturating op count to 64.
  std::atomic<std::uint64_t> window_bits_{0};
  std::atomic<std::uint32_t> window_ops_{0};

  std::atomic<std::uint32_t> consecutive_exhaustions_{0};
  std::atomic<std::uint32_t> probe_successes_{0};
  std::atomic<std::uint64_t> quarantine_until_usec_{0};
  std::atomic<std::uint64_t> cooldown_usec_{0};
  std::atomic<int> last_error_{0};

  // Lifetime stats.
  std::atomic<std::uint64_t> quarantines_{0};
  std::atomic<std::uint64_t> fail_fasts_{0};
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> transitions_{0};
};

}  // namespace papirepro::papi
