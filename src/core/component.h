// PAPI-C style component registry: the Library owns an ordered set of
// measurement components — CPU core, memory/uncore, network — each with
// its own Substrate, event namespace ("cpu::", "mem::", "net::"), and
// counter budget.  Component 0 is always the CPU core substrate the
// Library was constructed with, so every pre-component call site keeps
// its exact behaviour; further components register at init time and are
// enumerable through the component-info API.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/health.h"

namespace papirepro::papi {

class Substrate;

/// Hard cap on registered components: the component id must fit the
/// 7-bit event-code field, and telemetry keeps a fixed per-component
/// counter block per thread slab (kTelemetryMaxComponents must match).
inline constexpr std::uint32_t kMaxComponents = 8;

/// Snapshot of one registered component, as surfaced by the
/// component-info API (PAPI_get_component_info analogue).
struct ComponentInfo {
  std::uint32_t id = 0;
  std::string name;         ///< namespace prefix, e.g. "cpu"
  std::string description;  ///< substrate's self-description
  std::uint32_t num_counters = 0;
  bool enabled = true;
};

/// One registered component: the namespace name plus the owning
/// Substrate.  `enabled` is a soft switch — a disabled component keeps
/// its registration (ids are stable) but rejects new event adds with
/// Error::kComponentDisabled.  `health` is the component's circuit
/// breaker, bound by the Library at registration time.
struct Component {
  Component();
  ~Component();  // out of line: Substrate is incomplete here

  std::uint32_t id = 0;
  std::string name;
  std::string description;
  std::unique_ptr<Substrate> substrate;
  std::atomic<bool> enabled{true};
  HealthMonitor health;
};

/// Ordered, append-only registry.  Registration happens at Library
/// construction/init (single-threaded, as in real PAPI); afterwards the
/// vector is immutable, so lookups need no lock.
class ComponentRegistry {
 public:
  /// Appends a component and returns its id.  Rejects duplicate names,
  /// empty names, names containing ':', and registration beyond
  /// kMaxComponents.
  Result<std::uint32_t> add(std::string name, std::string description,
                            std::unique_ptr<Substrate> substrate);

  std::size_t size() const noexcept { return components_.size(); }

  Component* at(std::uint32_t id) const noexcept {
    return id < components_.size() ? components_[id].get() : nullptr;
  }

  Component* find(std::string_view name) const noexcept {
    for (const auto& c : components_) {
      if (c->name == name) return c.get();
    }
    return nullptr;
  }

 private:
  std::vector<std::unique_ptr<Component>> components_;
};

}  // namespace papirepro::papi
