// The PAPI high-level interface: "the ability to start, stop, and read
// the counters for a specified list of events ... intended for the
// acquisition of simple but accurate measurements by application
// engineers", plus the PAPI_flops and PAPI_ipc convenience calls.
// flops() is where normalization happens — "the PAPI flops call attempts
// to return the expected number of floating point operations, which
// sometimes entails multiplying the measured counts by a factor of two
// to count floating-point multiply-add instructions as two floating
// point operations and/or subtracting counts for miscellaneous types of
// floating point instructions" — via the PAPI_FP_OPS derived mapping.
#pragma once

#include <span>

#include "common/status.h"
#include "core/library.h"

namespace papirepro::papi {

class HighLevel {
 public:
  explicit HighLevel(Library& library) : library_(library) {}
  ~HighLevel();

  HighLevel(const HighLevel&) = delete;
  HighLevel& operator=(const HighLevel&) = delete;

  /// Number of counters available to the high level.
  int num_counters() const noexcept {
    return static_cast<int>(library_.num_counters());
  }

  Status start_counters(std::span<const EventId> events);
  Status read_counters(std::span<long long> values);
  /// Adds into `values` instead of overwriting.
  Status accum_counters(std::span<long long> values);
  Status stop_counters(std::span<long long> values);

  struct FlopsInfo {
    double real_time_s = 0;  ///< wall time since the first flops() call
    double proc_time_s = 0;  ///< process time since the first flops() call
    long long flops = 0;     ///< normalized FLOPs since the first call
    double mflops = 0;       ///< rate over the interval since the last call
  };
  /// First call starts counting and returns zeros; subsequent calls
  /// report totals and the incremental MFLOP/s rate.
  Result<FlopsInfo> flops();

  struct IpcInfo {
    double real_time_s = 0;
    double proc_time_s = 0;
    long long instructions = 0;
    double ipc = 0;  ///< instructions per cycle over the last interval
  };
  Result<IpcInfo> ipc();

  /// Tears down the hidden EventSets (also done by the destructor).
  void shutdown();

 private:
  Status ensure_rate_set(bool want_ipc);

  Library& library_;
  int counters_set_ = -1;
  std::size_t counters_len_ = 0;

  // flops()/ipc() share one hidden rate EventSet (they are mutually
  // exclusive, as in PAPI).
  int rate_set_ = -1;
  bool rate_is_ipc_ = false;
  std::uint64_t rate_start_us_ = 0;
  std::uint64_t rate_start_virt_us_ = 0;
  std::uint64_t rate_last_us_ = 0;
  long long rate_last_value_ = 0;
  long long rate_last_cycles_ = 0;
};

}  // namespace papirepro::papi
