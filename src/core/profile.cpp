#include "core/profile.h"

#include <algorithm>
#include <limits>

namespace papirepro::papi {

namespace {
// The SVR4 mapping (pc - base) * scale / 0x10000, computed wide: span
// and scale are caller-controlled and (span - 1) * scale overflows 64
// bits for text ranges past 2^48 at full byte scale.
std::uint64_t scaled_offset(std::uint64_t offset,
                            std::uint32_t scale) noexcept {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(offset) * scale) >> 16);
}
}  // namespace

ProfileBuffer::ProfileBuffer(std::uint64_t text_base,
                             std::uint64_t span_bytes, std::uint32_t scale)
    : text_base_(text_base),
      span_bytes_(span_bytes),
      scale_(valid_scale(scale) ? scale : kDefaultScale) {
  // Bucket of the last covered byte, plus one.  For scales dividing
  // 0x10000 this equals ceil(span / (0x10000 / scale)), matching the
  // old bytes-per-bucket arithmetic; for the rest it follows SVR4
  // exactly instead of truncating 0x10000 / scale.
  const std::uint64_t n =
      span_bytes_ == 0 ? 0 : scaled_offset(span_bytes_ - 1, scale_) + 1;
  buckets_.assign(static_cast<std::size_t>(n), 0);
}

void ProfileBuffer::record(std::uint64_t pc) noexcept {
  total_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t b = bucket_of(pc);
  if (b < 0) {
    out_of_range_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  constexpr std::uint32_t kMax = std::numeric_limits<std::uint32_t>::max();
  std::atomic_ref<std::uint32_t> cell(buckets_[static_cast<std::size_t>(b)]);
  std::uint32_t cur = cell.load(std::memory_order_relaxed);
  for (;;) {
    if (cur == kMax) {
      saturated_samples_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (cell.compare_exchange_weak(cur, cur + 1,
                                   std::memory_order_relaxed)) {
      if (cur + 1 == kMax) {
        saturated_buckets_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
  }
}

ProfileBuffer::Snapshot ProfileBuffer::snapshot() const {
  Snapshot snap;
  snap.buckets.resize(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    snap.buckets[i] = std::atomic_ref<const std::uint32_t>(buckets_[i])
                          .load(std::memory_order_relaxed);
  }
  snap.total = total_.load(std::memory_order_relaxed);
  snap.out_of_range = out_of_range_.load(std::memory_order_relaxed);
  snap.saturated_buckets =
      saturated_buckets_.load(std::memory_order_relaxed);
  snap.saturated_samples =
      saturated_samples_.load(std::memory_order_relaxed);
  return snap;
}

std::uint64_t ProfileBuffer::bucket_address(std::size_t i) const noexcept {
  // Smallest offset mapping to bucket i: ceil(i * 0x10000 / scale).
  const unsigned __int128 off =
      (static_cast<unsigned __int128>(i) << 16) + scale_ - 1;
  return text_base_ + static_cast<std::uint64_t>(off / scale_);
}

std::int64_t ProfileBuffer::bucket_of(std::uint64_t pc) const noexcept {
  if (pc < text_base_ || pc >= text_base_ + span_bytes_) return -1;
  return static_cast<std::int64_t>(scaled_offset(pc - text_base_, scale_));
}

void ProfileBuffer::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0u);
  total_.store(0, std::memory_order_relaxed);
  out_of_range_.store(0, std::memory_order_relaxed);
  saturated_buckets_.store(0, std::memory_order_relaxed);
  saturated_samples_.store(0, std::memory_order_relaxed);
}

}  // namespace papirepro::papi
