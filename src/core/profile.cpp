#include "core/profile.h"

#include <algorithm>
#include <cassert>

namespace papirepro::papi {

ProfileBuffer::ProfileBuffer(std::uint64_t text_base,
                             std::uint64_t span_bytes, std::uint32_t scale)
    : text_base_(text_base), span_bytes_(span_bytes), scale_(scale) {
  assert(scale > 0 && scale <= 0x10000);
  // SVR4 profil: bucket_index = (pc - base) * scale / 0x10000 / 2 for
  // 16-bit buckets.  We use the byte-granularity form: bytes per bucket
  // = 0x10000 / scale.
  bytes_per_bucket_ = 0x10000u / scale_;
  if (bytes_per_bucket_ == 0) bytes_per_bucket_ = 1;
  const std::uint64_t n =
      (span_bytes + bytes_per_bucket_ - 1) / bytes_per_bucket_;
  buckets_.assign(static_cast<std::size_t>(n), 0);
}

void ProfileBuffer::record(std::uint64_t pc) {
  ++total_;
  const std::int64_t b = bucket_of(pc);
  if (b < 0) {
    ++out_of_range_;
    return;
  }
  ++buckets_[static_cast<std::size_t>(b)];
}

std::uint64_t ProfileBuffer::bucket_address(std::size_t i) const noexcept {
  return text_base_ + i * bytes_per_bucket_;
}

std::int64_t ProfileBuffer::bucket_of(std::uint64_t pc) const noexcept {
  if (pc < text_base_ || pc >= text_base_ + span_bytes_) return -1;
  return static_cast<std::int64_t>((pc - text_base_) / bytes_per_bucket_);
}

void ProfileBuffer::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0u);
  total_ = 0;
  out_of_range_ = 0;
}

}  // namespace papirepro::papi
