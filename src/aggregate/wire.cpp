#include "aggregate/wire.h"

namespace papirepro::aggregate {

const char* wire_error_name(WireError e) noexcept {
  switch (e) {
    case WireError::kOk: return "ok";
    case WireError::kNeedMore: return "need_more";
    case WireError::kTruncated: return "truncated";
    case WireError::kBadMagic: return "bad_magic";
    case WireError::kBadVersion: return "bad_version";
    case WireError::kOversized: return "oversized";
    case WireError::kMalformed: return "malformed";
  }
  return "unknown";
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_varint_signed(std::vector<std::uint8_t>& out, long long v) {
  put_varint(out, zigzag_encode(v));
}

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

}  // namespace

bool encode_frame(std::uint32_t rank, std::uint64_t frame_cycles,
                  std::span<const papi::SnapshotEntry> entries,
                  std::span<const long long> values,
                  std::vector<std::uint8_t>& out, std::uint8_t mode) {
  if (entries.size() > kMaxEntriesPerFrame) return false;
  if (mode > kFrameModeRankRun) return false;
  const std::size_t base = out.size();
  put_u32(out, 0);  // frame_len backpatched below
  put_u32(out, kWireMagic);
  out.push_back(kWireVersion);
  out.push_back(mode);
  put_varint(out, rank);
  put_varint(out, frame_cycles);
  put_varint(out, entries.size());
  for (const papi::SnapshotEntry& e : entries) {
    if (e.num_values > kMaxValuesPerEntry ||
        e.first_value + static_cast<std::size_t>(e.num_values) >
            values.size()) {
      out.resize(base);
      return false;
    }
    // entry_len rides ahead of the fields so the decoder can hop
    // entry-to-entry off one byte.  Reserve one byte and backpatch;
    // entries of 128+ bytes (rare: many values or huge deltas) shift
    // the tail to make room for the longer varint.
    const std::size_t len_pos = out.size();
    out.push_back(0);
    put_varint(out, static_cast<std::uint32_t>(e.handle));
    // Error codes are 0 or negative; one byte covers the enum range.
    out.push_back(static_cast<std::uint8_t>(-static_cast<int>(e.status)));
    out.push_back(static_cast<std::uint8_t>(e.flags));
    // Publication stamps ride as zigzag deltas from frame_cycles: one
    // byte in the steady state (the poller stamps the frame with the
    // clock it just snapshotted under).  Wrapping subtraction keeps the
    // mapping exact for any stamp pair.
    put_varint_signed(out, static_cast<long long>(e.pub_cycles -
                                                  frame_cycles));
    put_varint(out, e.num_values);
    for (std::uint32_t i = 0; i < e.num_values; ++i) {
      put_varint_signed(out, values[e.first_value + i]);
    }
    const std::size_t entry_len = out.size() - (len_pos + 1);
    if (entry_len < 0x80) {
      out[len_pos] = static_cast<std::uint8_t>(entry_len);
    } else {
      std::uint8_t enc[10];
      std::size_t n = 0;
      std::uint64_t v = entry_len;
      while (v >= 0x80) {
        enc[n++] = static_cast<std::uint8_t>(v) | 0x80u;
        v >>= 7;
      }
      enc[n++] = static_cast<std::uint8_t>(v);
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(len_pos) + 1,
                 n - 1, 0);
      for (std::size_t i = 0; i < n; ++i) out[len_pos + i] = enc[i];
    }
  }
  const std::size_t frame_len = out.size() - base;
  if (frame_len > kMaxFrameBytes) {
    out.resize(base);
    return false;
  }
  out[base] = static_cast<std::uint8_t>(frame_len);
  out[base + 1] = static_cast<std::uint8_t>(frame_len >> 8);
  out[base + 2] = static_cast<std::uint8_t>(frame_len >> 16);
  out[base + 3] = static_cast<std::uint8_t>(frame_len >> 24);
  return true;
}

}  // namespace papirepro::aggregate
