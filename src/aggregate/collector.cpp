#include "aggregate/collector.h"

#include <algorithm>
#include <limits>

namespace papirepro::aggregate {

namespace {

using papi::TelemetryCounter;

/// Histogram domain is unsigned; negative counter values (possible for
/// derived formulas) clamp to zero for the percentile stream.
std::uint64_t clamp_non_negative(long long v) noexcept {
  return v > 0 ? static_cast<std::uint64_t>(v) : 0u;
}

}  // namespace

Collector::Collector(const CollectorConfig& config,
                     papi::TelemetryRegistry* telemetry)
    : config_(config), telemetry_(telemetry) {
  if (config_.max_ranks == 0) config_.max_ranks = 1;
  if (config_.ranks_per_node == 0) config_.ranks_per_node = 1;
  if (config_.num_metrics == 0) config_.num_metrics = 1;
  if (config_.num_metrics > kMaxMetrics) {
    config_.num_metrics = static_cast<std::uint32_t>(kMaxMetrics);
  }
  ranks_ = std::make_unique<RankSlot[]>(config_.max_ranks);
  rank_values_ = std::make_unique<long long[]>(
      static_cast<std::size_t>(config_.max_ranks) * config_.num_metrics);
  max_nodes_ = (config_.max_ranks + config_.ranks_per_node - 1) /
               config_.ranks_per_node;
  nodes_ = std::make_unique<NodeStats[]>(max_nodes_);
  cluster_.num_metrics = config_.num_metrics;
}

std::size_t Collector::ingest(std::span<const std::uint8_t> buf) noexcept {
  WireReader reader(buf);
  std::size_t accepted = 0;
  std::uint64_t errors = 0;
  FrameHeader fh;
  for (;;) {
    const std::size_t frame_start = reader.offset();
    const WireError b = reader.begin_frame(fh);
    if (b == WireError::kNeedMore) break;
    if (b != WireError::kOk) {
      ++stats_.decode_errors;
      ++errors;
      if (!reader.skip_frame()) break;  // cannot resync: abandon buffer
      continue;
    }
    if (fh.mode == kFrameModeRankRun) {
      // Node-agent batch: entry i is the single set of rank
      // `fh.rank + i`.  Entries commit individually as they decode
      // cleanly — a malformed tail still never half-updates any rank,
      // it just stops the run at the last good entry.
      std::uint64_t entries_seen = 0;
      std::uint64_t dropped = 0;
      bool bad = false;
      for (std::uint32_t i = 0; i < fh.entry_count && !bad; ++i) {
        EntryHeader eh;
        if (reader.read_entry(eh) != WireError::kOk) {
          bad = true;
          break;
        }
        // Values beyond the metric cap are counted from the declared
        // num_values and skipped via the entry length hop — never
        // decoded.
        const std::uint32_t stored =
            std::min(eh.num_values, config_.num_metrics);
        if (reader.read_values(staging_.data(), stored) !=
            WireError::kOk) {
          bad = true;
          break;
        }
        dropped += eh.num_values - stored;
        ++entries_seen;
        const std::uint64_t rank =
            static_cast<std::uint64_t>(fh.rank) + i;
        if (rank >= config_.max_ranks) {
          ++stats_.ranks_dropped;
          continue;
        }
        RankSlot& slot = ranks_[static_cast<std::uint32_t>(rank)];
        slot.seen = true;
        slot.flags = eh.flags;
        long long* dst = values_of(static_cast<std::uint32_t>(rank));
        for (std::uint32_t k = 0; k < stored; ++k) dst[k] = staging_[k];
        slot.num_values = stored;
        slot.frame_cycles = fh.frame_cycles;
        slot.pub_cycles = eh.pub_cycles;
      }
      if (!bad && reader.end_frame() != WireError::kOk) bad = true;
      if (bad) {
        ++stats_.decode_errors;
        ++errors;
        if (!reader.skip_frame()) break;
        continue;
      }
      ++accepted;
      ++stats_.frames;
      stats_.entries += entries_seen;
      stats_.bytes += reader.offset() - frame_start;
      stats_.values_dropped += dropped;
      continue;
    }
    if (fh.rank >= config_.max_ranks) {
      ++stats_.ranks_dropped;
      (void)reader.skip_frame();
      continue;
    }
    // Decode into the fixed staging array — no per-frame heap storage
    // on the ingest path.  The rank slot is only committed once the
    // whole frame decoded cleanly.
    RankSlot& slot = ranks_[fh.rank];
    std::uint32_t stored = 0;
    std::uint64_t dropped = 0;
    std::uint64_t newest_pub = 0;
    std::uint8_t flags = 0;
    std::uint64_t entries_seen = 0;
    bool bad = false;
    for (std::uint32_t i = 0; i < fh.entry_count && !bad; ++i) {
      EntryHeader eh;
      if (reader.read_entry(eh) != WireError::kOk) {
        bad = true;
        break;
      }
      flags |= eh.flags;
      if (eh.pub_cycles > newest_pub) newest_pub = eh.pub_cycles;
      ++entries_seen;
      const std::uint32_t take =
          std::min(eh.num_values, config_.num_metrics - stored);
      if (reader.read_values(staging_.data() + stored, take) !=
          WireError::kOk) {
        bad = true;
        break;
      }
      stored += take;
      dropped += eh.num_values - take;  // skipped via the entry length
    }
    if (!bad && reader.end_frame() != WireError::kOk) bad = true;
    if (bad) {
      ++stats_.decode_errors;
      ++errors;
      if (!reader.skip_frame()) break;
      continue;
    }
    slot.seen = true;
    slot.flags = flags;
    long long* dst = values_of(fh.rank);
    for (std::uint32_t i = 0; i < stored; ++i) {
      dst[i] = staging_[i];
    }
    slot.num_values = stored;
    slot.frame_cycles = fh.frame_cycles;
    slot.pub_cycles = newest_pub;
    ++accepted;
    ++stats_.frames;
    stats_.entries += entries_seen;
    stats_.bytes += reader.offset() - frame_start;
    stats_.values_dropped += dropped;
  }
  // Telemetry is batched per ingest() call: one slab resolve for the
  // whole buffer instead of one per frame keeps the per-frame decode
  // cost within the snapshot-read budget the bench gates.
  if (telemetry_ != nullptr) {
    if (accepted != 0) {
      telemetry_->bump(TelemetryCounter::kCollectorFrames, accepted);
    }
    if (errors != 0) {
      telemetry_->bump(TelemetryCounter::kCollectorDecodeErrors, errors);
    }
  }
  return accepted;
}

const ClusterReduction& Collector::reduce(
    std::uint64_t now_cycles) noexcept {
  const std::uint32_t m = config_.num_metrics;
  for (std::uint32_t i = 0; i < m; ++i) histograms_[i].reset();

  // Pass 1: per-rank -> per-node partials.  Every node slot is reset
  // first (bounded work over preallocated storage) so a node that had
  // live ranks last round but none this round reads as empty, never as
  // last round's leftovers.
  for (std::size_t n = 0; n < max_nodes_; ++n) {
    nodes_[n].node = static_cast<std::uint32_t>(n);
    nodes_[n].ranks = 0;
    for (std::uint32_t i = 0; i < m; ++i) nodes_[n].metrics[i] = {};
  }
  num_nodes_used_ = 0;
  std::uint32_t live = 0;
  std::uint32_t stale = 0;
  for (std::uint32_t r = 0; r < config_.max_ranks; ++r) {
    RankSlot& slot = ranks_[r];
    if (!slot.seen) continue;
    // Liveness: stamp distance and stamp stagnation.
    bool is_live = true;
    if (config_.max_age_cycles != 0 && now_cycles > slot.pub_cycles &&
        now_cycles - slot.pub_cycles > config_.max_age_cycles) {
      is_live = false;
    }
    if (config_.stale_reduce_rounds != 0) {
      if (slot.pub_cycles == slot.prev_pub_cycles) {
        if (slot.stale_rounds < std::numeric_limits<std::uint32_t>::max()) {
          ++slot.stale_rounds;
        }
        if (slot.stale_rounds >= config_.stale_reduce_rounds) {
          is_live = false;
        }
      } else {
        slot.stale_rounds = 0;
      }
    }
    slot.prev_pub_cycles = slot.pub_cycles;
    slot.live = is_live;
    if (!is_live) {
      ++stale;
      continue;
    }
    ++live;
    const std::size_t node_index = r / config_.ranks_per_node;
    NodeStats& node = nodes_[node_index];
    ++node.ranks;
    const std::uint32_t nv = std::min(slot.num_values, m);
    const long long* vals = values_of(r);
    for (std::uint32_t i = 0; i < nv; ++i) {
      const long long v = vals[i];
      MetricStats& ms = node.metrics[i];
      if (ms.count == 0 || v < ms.min) ms.min = v;
      if (ms.count == 0 || v > ms.max) ms.max = v;
      ms.sum += v;
      ++ms.count;
      histograms_[i].record(clamp_non_negative(v));
    }
    if (node_index + 1 > num_nodes_used_) num_nodes_used_ = node_index + 1;
  }

  // Pass 2: per-node -> cluster.
  cluster_.now_cycles = now_cycles;
  cluster_.ranks_live = live;
  cluster_.ranks_stale = stale;
  cluster_.num_metrics = m;
  for (std::uint32_t i = 0; i < m; ++i) cluster_.metrics[i] = {};
  for (std::size_t n = 0; n < num_nodes_used_; ++n) {
    NodeStats& node = nodes_[n];
    if (node.ranks == 0) continue;  // empty node: no live ranks landed
    for (std::uint32_t i = 0; i < m; ++i) {
      MetricStats& nm = node.metrics[i];
      if (nm.count == 0) continue;
      nm.avg = static_cast<double>(nm.sum) /
               static_cast<double>(nm.count);
      MetricStats& cm = cluster_.metrics[i];
      if (cm.count == 0 || nm.min < cm.min) cm.min = nm.min;
      if (cm.count == 0 || nm.max > cm.max) cm.max = nm.max;
      cm.sum += nm.sum;
      cm.count += nm.count;
    }
  }
  for (std::uint32_t i = 0; i < m; ++i) {
    MetricStats& cm = cluster_.metrics[i];
    if (cm.count != 0) {
      cm.avg = static_cast<double>(cm.sum) / static_cast<double>(cm.count);
    }
    cm.p50 = histograms_[i].quantile(0.50);
    cm.p95 = histograms_[i].quantile(0.95);
    cm.p99 = histograms_[i].quantile(0.99);
  }
  ++cluster_.reduce_count;
  ++stats_.reductions;
  if (telemetry_ != nullptr) {
    telemetry_->bump(TelemetryCounter::kCollectorReductions);
  }
  return cluster_;
}

std::size_t Collector::top_ranks(std::uint32_t metric,
                                 std::span<RankValue> out) const noexcept {
  if (metric >= config_.num_metrics || out.empty()) return 0;
  std::size_t used = 0;
  for (std::uint32_t r = 0; r < config_.max_ranks; ++r) {
    const RankSlot& slot = ranks_[r];
    if (!slot.seen || !slot.live || slot.num_values <= metric) continue;
    const long long v = values_of(r)[metric];
    // Insertion position in the descending prefix [0, used).
    std::size_t pos = used;
    while (pos > 0 && out[pos - 1].value < v) --pos;
    if (pos >= out.size()) continue;  // below the current top-N floor
    const std::size_t tail = std::min(used, out.size() - 1);
    for (std::size_t i = tail; i > pos; --i) out[i] = out[i - 1];
    out[pos] = RankValue{r, v, slot.pub_cycles};
    if (used < out.size()) ++used;
  }
  return used;
}

}  // namespace papirepro::aggregate
