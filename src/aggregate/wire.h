// Compact, versioned binary wire format for per-rank counter snapshots.
// The aggregation service (collector.h) ingests hundreds to thousands
// of ranks' `Library::snapshot_all` results per polling interval; the
// frames here are what travels from a rank (or the thread polling on
// its behalf) to the collector: length-prefixed, varint-packed, and
// self-delimiting so a stream of frames from many ranks can share one
// buffer and a corrupt frame can be skipped without resynchronizing.
//
// Frame layout (all little-endian, offsets in bytes):
//   u32  frame_len   total frame size including this prefix
//   u32  magic       kWireMagic ("PSCF")
//   u8   version     kWireVersion
//   u8   mode        kFrameModeSingleRank: every entry is one EventSet
//                    of the rank named in the header (a rank with many
//                    sets sends them in one frame);
//                    kFrameModeRankRun: entry i is the single set of
//                    rank `rank + i` — the node-agent batch shape of
//                    the reduction tree, amortizing this header across
//                    a whole node's fan-in.  Other values are rejected.
//   var  rank        sender rank id
//   var  frame_cycles sender clock when the frame was assembled
//   var  entry_count
//   entries, each:
//     var  entry_len   byte length of the rest of the entry (fields +
//                      values).  Self-delimiting entries keep decode
//                      latency flat in batched frames: the next entry's
//                      position comes from one byte, not from chaining
//                      through every varint of this one.
//     var  handle      EventSet handle (>= 0)
//     u8   status      negated Error code (0 = kOk, 2 = kNotRunning, ...)
//     u8   flags       OR of the entry's read_flag::* bits
//     var  pub_delta   SnapshotEntry::pub_cycles as a zigzag delta from
//                      frame_cycles (wrapping): entries published near
//                      the frame's assembly time — the steady state —
//                      cost one byte instead of a full absolute stamp
//     var  num_values
//     var× values      zigzag-encoded long long counter values
//
// "var" is LEB128: 7 value bits per byte, high bit = continuation, at
// most 10 bytes for 64-bit payloads.  Signed values are zigzag-mapped
// first so small magnitudes of either sign stay short.
//
// The decoder is a bounds-checked cursor (WireReader): every read is
// validated against the buffer end AND the frame's declared length, and
// declared counts are capped (kMaxEntriesPerFrame / kMaxValuesPerEntry
// / kMaxFrameBytes) before anything is trusted, so truncated frames,
// bad magic/version, and oversized declared lengths error cleanly
// without reading out of bounds or allocating.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "core/eventset.h"

namespace papirepro::aggregate {

inline constexpr std::uint32_t kWireMagic = 0x46435350u;  // "PSCF"
inline constexpr std::uint8_t kWireVersion = 1;

/// Frame modes (the byte after the version; see the layout above).
inline constexpr std::uint8_t kFrameModeSingleRank = 0;
inline constexpr std::uint8_t kFrameModeRankRun = 1;

/// Hard caps the decoder enforces before trusting any declared size.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;
inline constexpr std::size_t kMaxEntriesPerFrame = 4096;
inline constexpr std::size_t kMaxValuesPerEntry = 1024;

enum class WireError : std::uint8_t {
  kOk = 0,
  kNeedMore,    ///< buffer ends cleanly between frames
  kTruncated,   ///< frame or field extends past the buffer
  kBadMagic,    ///< frame does not start with kWireMagic
  kBadVersion,  ///< version this decoder does not speak
  kOversized,   ///< declared length/count exceeds a kMax* cap
  kMalformed,   ///< internal inconsistency (overlong varint, reserved
                ///< bits, counts that do not fit the declared length)
};

const char* wire_error_name(WireError e) noexcept;

/// Decoded per-frame header.
struct FrameHeader {
  std::uint32_t rank = 0;  ///< sender rank; first rank of a rank run
  std::uint64_t frame_cycles = 0;
  std::uint32_t entry_count = 0;
  std::uint8_t mode = kFrameModeSingleRank;
};

/// Decoded per-entry header; values follow via read_value().
struct EntryHeader {
  int handle = 0;
  Error status = Error::kOk;
  std::uint8_t flags = 0;
  std::uint64_t pub_cycles = 0;
  std::uint32_t num_values = 0;
};

// --- varint primitives (exposed for tests) --------------------------------

/// Appends `v` as LEB128.  Appending into a warm vector is
/// allocation-free.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);
/// Zigzag-maps then LEB128-encodes a signed value.
void put_varint_signed(std::vector<std::uint8_t>& out, long long v);
inline std::uint64_t zigzag_encode(long long v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline long long zigzag_decode(std::uint64_t u) noexcept {
  return static_cast<long long>((u >> 1) ^ (~(u & 1) + 1));
}

// --- encoding -------------------------------------------------------------

/// Appends one frame carrying `entries` (their value windows resolved
/// through `values` via first_value/num_values, exactly as
/// snapshot_all laid them out) to `out`.  Reuses `out`'s capacity:
/// steady-state encoding into a warm buffer performs no allocation.
/// Returns false (and leaves `out` untouched) when the frame would
/// exceed kMaxFrameBytes or a declared cap.
bool encode_frame(std::uint32_t rank, std::uint64_t frame_cycles,
                  std::span<const papi::SnapshotEntry> entries,
                  std::span<const long long> values,
                  std::vector<std::uint8_t>& out,
                  std::uint8_t mode = kFrameModeSingleRank);

// --- decoding -------------------------------------------------------------

/// Bounds-checked streaming decoder over a buffer of frames.  Usage:
///
///   WireReader r(buf);
///   FrameHeader fh;
///   while (r.begin_frame(fh) == WireError::kOk) {
///     for (each of fh.entry_count entries) {
///       EntryHeader eh;  r.read_entry(eh);
///       for (each of eh.num_values) { long long v;  r.read_value(v); }
///     }
///     r.end_frame();  // verifies position == declared length
///   }
///
/// After any error except kNeedMore the caller may call skip_frame()
/// to jump to the next length-delimited frame (only possible when the
/// length prefix itself was readable and sane).  The reader never
/// reads outside `buf` and never allocates.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> buf)
      : begin_(buf.data()),
        end_(buf.data() + buf.size()),
        p_(buf.data()),
        fend_(buf.data()) {}

  /// Parses the next frame's prefix + header.  kNeedMore at a clean
  /// end of buffer; kTruncated/kBadMagic/kBadVersion/kOversized/
  /// kMalformed otherwise.
  WireError begin_frame(FrameHeader& out) noexcept;
  /// Parses the next entry header within the current frame.
  WireError read_entry(EntryHeader& out) noexcept;
  /// Parses the next counter value of the current entry.
  WireError read_value(long long& out) noexcept;
  /// Bulk form of read_value: decodes exactly `n` values.  One
  /// state/bounds setup for the whole run, so the collector's hot loop
  /// pays per-varint cost only.
  WireError read_values(long long* out, std::uint32_t n) noexcept;
  /// Finishes the current frame: the cursor must sit exactly at the
  /// declared frame end (kMalformed otherwise — trailing garbage
  /// inside the declared length is corruption, not padding).
  WireError end_frame() noexcept;

  /// Jumps to the byte after the current frame's declared end, if that
  /// length was successfully read and lies within the buffer.  Returns
  /// false when resynchronization is impossible (the rest of the
  /// buffer must be abandoned).
  bool skip_frame() noexcept;

  std::size_t offset() const noexcept {
    return static_cast<std::size_t>(p_ - begin_);
  }
  bool done() const noexcept { return p_ >= end_; }

 private:
  WireError get_varint(std::uint64_t& out,
                       const std::uint8_t* limit) noexcept;

  // Pointer cursor rather than index + span: the decode hot loop is
  // all address arithmetic, and keeping the cursor and the frame end
  // as raw pointers measurably tightens the inlined ingest path (the
  // bench gates it against the snapshot read cost).
  const std::uint8_t* begin_;
  const std::uint8_t* end_;
  const std::uint8_t* p_;     ///< cursor
  const std::uint8_t* fend_;  ///< one past the current frame
  const std::uint8_t* eend_ = nullptr;  ///< one past the current entry
  std::uint64_t frame_cycles_ = 0;  ///< base for entry pub_delta fields
  bool in_frame_ = false;
  bool in_entry_ = false;
};

// WireReader definitions live in the header so the collector's ingest
// loop inlines the whole decode: at one entry per frame the per-frame
// call overhead (5 out-of-line calls) would otherwise rival the decode
// itself, and the bench gates ingest against the snapshot read cost.

inline WireError WireReader::get_varint(
    std::uint64_t& out, const std::uint8_t* limit) noexcept {
  if (p_ >= limit) return WireError::kTruncated;
  // Fast paths for the ingest hot loop: the one-byte case (small
  // counts, handles, flags-adjacent fields) costs a single bounds
  // check, and when a full maximal varint fits before the frame end
  // the decode loop drops the per-byte bounds check entirely.  All
  // paths enforce the same overlong rule as the guarded loop below.
  if ((*p_ & 0x80u) == 0) {
    out = *p_++;
    return WireError::kOk;
  }
  if (limit - p_ >= 10) {
    const std::uint8_t* q = p_;
    if constexpr (std::endian::native == std::endian::little) {
      // Word path: one 8-byte load finds the terminator (first byte
      // with a clear continuation bit) via countr_zero, then gathers
      // the 7-bit groups.  Counter-magnitude varints are 2-5 bytes,
      // so this covers the hot ingest path; 9- and 10-byte encodings
      // fall through to the guarded loop.
      std::uint64_t word = 0;
      std::memcpy(&word, q, 8);
      const std::uint64_t stops = ~word & 0x8080808080808080ull;
      if (stops != 0) {
        const int n = (std::countr_zero(stops) >> 3) + 1;  // bytes, 1..8
        std::uint64_t v = 0;
        for (int i = 0; i < n; ++i) {
          v |= ((word >> (8 * i)) & 0x7Fu) << (7 * i);
        }
        p_ += n;
        out = v;
        return WireError::kOk;
      }
    }
    std::uint64_t v = 0;
    int shift = 0;
    for (int i = 0; i < 10; ++i) {
      const std::uint8_t b = q[i];
      if (i == 9 && (b & ~0x01u) != 0) return WireError::kMalformed;
      v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
      if ((b & 0x80u) == 0) {
        p_ += i + 1;
        out = v;
        return WireError::kOk;
      }
      shift += 7;
    }
    return WireError::kMalformed;
  }
  std::uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (p_ >= limit) return WireError::kTruncated;
    const std::uint8_t b = *p_++;
    if (i == 9 && (b & ~0x01u) != 0) return WireError::kMalformed;
    v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
    if ((b & 0x80u) == 0) {
      out = v;
      return WireError::kOk;
    }
    shift += 7;
  }
  return WireError::kMalformed;  // continuation bit on the 10th byte
}

inline WireError WireReader::begin_frame(FrameHeader& out) noexcept {
  in_frame_ = false;
  if (p_ >= end_) return WireError::kNeedMore;
  if (end_ - p_ < 4) return WireError::kTruncated;
  const std::uint8_t* base = p_;
  const std::uint32_t frame_len =
      static_cast<std::uint32_t>(base[0]) |
      static_cast<std::uint32_t>(base[1]) << 8 |
      static_cast<std::uint32_t>(base[2]) << 16 |
      static_cast<std::uint32_t>(base[3]) << 24;
  if (frame_len > kMaxFrameBytes) return WireError::kOversized;
  // 4 len + 4 magic + 1 version + 1 reserved + >= 3 one-byte varints.
  if (frame_len < 13) return WireError::kMalformed;
  if (frame_len > static_cast<std::size_t>(end_ - base)) {
    return WireError::kTruncated;
  }
  fend_ = base + frame_len;
  const std::uint32_t magic =
      static_cast<std::uint32_t>(base[4]) |
      static_cast<std::uint32_t>(base[5]) << 8 |
      static_cast<std::uint32_t>(base[6]) << 16 |
      static_cast<std::uint32_t>(base[7]) << 24;
  p_ = base + 8;
  if (magic != kWireMagic) return WireError::kBadMagic;
  if (base[8] != kWireVersion) return WireError::kBadVersion;
  const std::uint8_t mode = base[9];
  if (mode > kFrameModeRankRun) return WireError::kMalformed;
  p_ = base + 10;
  std::uint64_t rank = 0;
  std::uint64_t cycles = 0;
  std::uint64_t count = 0;
  WireError e = get_varint(rank, fend_);
  if (e != WireError::kOk) return e;
  e = get_varint(cycles, fend_);
  if (e != WireError::kOk) return e;
  e = get_varint(count, fend_);
  if (e != WireError::kOk) return e;
  if (rank > 0xFFFFFFFFu) return WireError::kMalformed;
  if (count > kMaxEntriesPerFrame) return WireError::kOversized;
  // Each entry needs at least 6 bytes (four 1-byte varints + status +
  // flags): reject counts that cannot possibly fit the declared length
  // before anyone sizes storage from them.
  if (count * 6 > static_cast<std::size_t>(fend_ - p_)) {
    return WireError::kMalformed;
  }
  out.rank = static_cast<std::uint32_t>(rank);
  out.frame_cycles = cycles;
  out.entry_count = static_cast<std::uint32_t>(count);
  out.mode = mode;
  frame_cycles_ = cycles;
  in_frame_ = true;
  in_entry_ = false;
  return WireError::kOk;
}

inline WireError WireReader::read_entry(EntryHeader& out) noexcept {
  if (!in_frame_) return WireError::kMalformed;
  if (in_entry_) {
    // The declared length is authoritative: the cursor hops straight
    // to the boundary it named.  Bytes past the fields a decoder of
    // this version consumes are skipped — that is what lets a newer
    // encoder append entry fields without breaking old decoders — and
    // it keeps consecutive entry decodes independent of each other's
    // varint chains (one byte names the next entry's position).
    p_ = eend_;
  }
  std::uint64_t entry_len = 0;
  WireError e = get_varint(entry_len, fend_);
  if (e != WireError::kOk) return e;
  if (entry_len > static_cast<std::size_t>(fend_ - p_)) {
    return WireError::kMalformed;
  }
  eend_ = p_ + entry_len;
  in_entry_ = true;
  // Every field below is bounded by the entry's own end, so a lying
  // field can never consume the next entry's bytes.
  std::uint64_t handle = 0;
  e = get_varint(handle, eend_);
  if (e != WireError::kOk) return e;
  if (handle > 0x7FFFFFFFu) return WireError::kMalformed;
  if (eend_ - p_ < 2) return WireError::kTruncated;
  const std::uint8_t status = *p_++;
  const std::uint8_t flags = *p_++;
  // Status must be a known Error code: 0 .. -kMinError.
  if (status > static_cast<std::uint8_t>(
                   -static_cast<int>(Error::kComponentQuarantined))) {
    return WireError::kMalformed;
  }
  std::uint64_t pub_delta = 0;
  std::uint64_t num_values = 0;
  e = get_varint(pub_delta, eend_);
  if (e != WireError::kOk) return e;
  e = get_varint(num_values, eend_);
  if (e != WireError::kOk) return e;
  if (num_values > kMaxValuesPerEntry) return WireError::kOversized;
  if (num_values > static_cast<std::size_t>(eend_ - p_)) {
    return WireError::kMalformed;
  }
  out.handle = static_cast<int>(handle);
  out.status = static_cast<Error>(-static_cast<int>(status));
  out.flags = flags;
  // Wrapping add inverts the encoder's wrapping subtract exactly, for
  // any pub/frame stamp pair.
  out.pub_cycles =
      frame_cycles_ + static_cast<std::uint64_t>(zigzag_decode(pub_delta));
  out.num_values = static_cast<std::uint32_t>(num_values);
  return WireError::kOk;
}

inline WireError WireReader::read_value(long long& out) noexcept {
  if (!in_frame_) return WireError::kMalformed;
  std::uint64_t u = 0;
  const WireError e = get_varint(u, in_entry_ ? eend_ : fend_);
  if (e != WireError::kOk) return e;
  out = zigzag_decode(u);
  return WireError::kOk;
}

inline WireError WireReader::read_values(long long* out,
                                         std::uint32_t n) noexcept {
  if (!in_frame_) return WireError::kMalformed;
  const std::uint8_t* const limit = in_entry_ ? eend_ : fend_;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t u = 0;
    const WireError e = get_varint(u, limit);
    if (e != WireError::kOk) return e;
    out[i] = zigzag_decode(u);
  }
  return WireError::kOk;
}

inline WireError WireReader::end_frame() noexcept {
  if (!in_frame_) return WireError::kMalformed;
  in_frame_ = false;
  if (in_entry_) p_ = eend_;  // skip the last entry's trailing bytes
  in_entry_ = false;
  if (p_ != fend_) {
    p_ = fend_;  // stay frame-aligned for the next begin_frame
    return WireError::kMalformed;
  }
  return WireError::kOk;
}

inline bool WireReader::skip_frame() noexcept {
  // Resync is only possible when the current frame's declared end was
  // read, validated, and lies ahead of the cursor.
  if (fend_ <= p_ || fend_ > end_) return false;
  p_ = fend_;
  in_frame_ = false;
  return true;
}

}  // namespace papirepro::aggregate
