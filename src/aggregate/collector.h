// Cluster-scale snapshot aggregation: the consumer ROADMAP item #2
// calls for, sized for the paper's perfometer-at-scale scenario
// (hundreds to thousands of ranks, one counter snapshot stream each).
// A Collector ingests wire-format frames (wire.h) produced from
// `Library::snapshot_all` by per-rank counting threads, folds them into
// fixed per-rank slots, and reduces hierarchically:
//
//   per-rank values  ->  per-node min/max/sum/avg  ->  per-cluster
//   min/max/sum/avg plus streaming p50/p95/p99 from fixed-bucket
//   histograms (histogram.h)
//
// Invariants the bench gates (bench_aggregation) hold the design to:
//   * the ingest path is zero-allocation in steady state: frames decode
//     straight into the rank slots, no intermediate per-frame storage;
//   * counting threads are never stopped or contacted — the collector
//     only ever consumes published snapshots;
//   * reduce() is bounded work over the fixed slot arrays and performs
//     no allocation after construction.
//
// Liveness: every snapshot entry carries its publication cycle stamp
// (SnapshotEntry::pub_cycles).  A rank whose stamp stops advancing
// across `stale_reduce_rounds` consecutive reduces, or whose stamp
// lags `now - max_age_cycles`, is aged out of the reduction (counted,
// not silently dropped) — a quarantined or dead rank must not freeze
// the cluster view at its last values.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>

#include "aggregate/histogram.h"
#include "aggregate/wire.h"
#include "core/telemetry.h"

namespace papirepro::aggregate {

/// Compile-time cap on metrics tracked per rank (the concatenation of
/// a frame's entry values, in order).  Extra values are counted in
/// CollectorStats::values_dropped — never silently discarded.
inline constexpr std::size_t kMaxMetrics = 16;

struct CollectorConfig {
  std::uint32_t max_ranks = 1024;
  std::uint32_t ranks_per_node = 32;  ///< reduction-tree fan-in
  /// Metrics reduced per rank (<= kMaxMetrics).
  std::uint32_t num_metrics = 4;
  /// Age-out by stamp distance: a rank whose newest pub_cycles lags
  /// `now_cycles` by more than this is excluded from the reduction.
  /// 0 disables the distance rule.
  std::uint64_t max_age_cycles = 0;
  /// Age-out by stagnation: a rank whose stamp fails to advance for
  /// this many consecutive reduce() calls is excluded.  0 disables.
  std::uint32_t stale_reduce_rounds = 0;
};

/// One metric's reduction across a node or the cluster.
struct MetricStats {
  long long min = 0;
  long long max = 0;
  long long sum = 0;
  double avg = 0.0;
  std::uint64_t count = 0;  ///< ranks contributing
  // Percentiles are cluster-level only (nodes carry min/max/sum/avg).
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
};

/// One node's partial reduction.
struct NodeStats {
  std::uint32_t node = 0;
  std::uint32_t ranks = 0;  ///< live ranks folded into this node
  std::array<MetricStats, kMaxMetrics> metrics{};
};

/// The cluster-level result reduce() refreshes in place.
struct ClusterReduction {
  std::uint64_t now_cycles = 0;
  std::uint64_t reduce_count = 0;
  std::uint32_t ranks_live = 0;
  std::uint32_t ranks_stale = 0;  ///< aged out this round
  std::uint32_t num_metrics = 0;
  std::array<MetricStats, kMaxMetrics> metrics{};
};

/// Ingest/decode accounting, cumulative since construction.
struct CollectorStats {
  std::uint64_t frames = 0;         ///< frames accepted
  std::uint64_t entries = 0;        ///< entries accepted
  std::uint64_t bytes = 0;          ///< bytes consumed (good frames)
  std::uint64_t decode_errors = 0;  ///< frames rejected by the decoder
  std::uint64_t values_dropped = 0; ///< values beyond num_metrics
  std::uint64_t ranks_dropped = 0;  ///< frames for rank >= max_ranks
  std::uint64_t reductions = 0;     ///< reduce() calls
};

/// One row of a top-N ranking (top_ranks()).
struct RankValue {
  std::uint32_t rank = 0;
  long long value = 0;
  std::uint64_t pub_cycles = 0;
};

class Collector {
 public:
  /// All storage (rank slots, node partials, histograms) is sized here
  /// once; no later call allocates.  `telemetry` (optional) receives
  /// kCollectorFrames / kCollectorDecodeErrors / kCollectorReductions
  /// attribution.
  explicit Collector(const CollectorConfig& config,
                     papi::TelemetryRegistry* telemetry = nullptr);

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  const CollectorConfig& config() const noexcept { return config_; }

  /// Decodes every frame in `buf` into the rank slots.  Structurally
  /// recoverable bad frames (bad magic/version, malformed interior)
  /// are skipped and counted; an unrecoverable prefix (truncated or
  /// oversized length) abandons the rest of the buffer.  Returns the
  /// number of frames accepted.  Zero-allocation.
  std::size_t ingest(std::span<const std::uint8_t> buf) noexcept;

  /// Recomputes the hierarchical reduction over the current slots.
  /// `now_cycles` is the collector's clock, used for age-out and
  /// stamped into the result.  Returns the refreshed cluster view
  /// (also available via cluster()).  Zero-allocation.
  const ClusterReduction& reduce(std::uint64_t now_cycles) noexcept;

  const ClusterReduction& cluster() const noexcept { return cluster_; }
  /// Per-node partials of the most recent reduce().
  std::span<const NodeStats> nodes() const noexcept {
    return {nodes_.get(), num_nodes_used_};
  }

  /// Fills `out` with the top-N live ranks by metric `metric` from the
  /// most recent reduce(), descending.  Returns rows written.
  /// Zero-allocation (insertion into the caller's span).
  std::size_t top_ranks(std::uint32_t metric,
                        std::span<RankValue> out) const noexcept;

  const CollectorStats& stats() const noexcept { return stats_; }

 private:
  /// Per-rank bookkeeping.  The metric values live in the separate
  /// dense `rank_values_` array (max_ranks x num_metrics) instead of a
  /// kMaxMetrics-sized member: at 1024 ranks that keeps the ingest and
  /// reduce working set at tens of KB instead of a couple hundred —
  /// the difference between the per-frame cost sitting within the
  /// bench's 2x-snapshot gate and blowing through it on cache misses.
  struct RankSlot {
    bool seen = false;
    bool live = false;           ///< included in the last reduce()
    std::uint8_t flags = 0;      ///< OR-fold of the last frame's flags
    std::uint32_t stale_rounds = 0;
    std::uint32_t num_values = 0;
    std::uint64_t frame_cycles = 0;
    std::uint64_t pub_cycles = 0;       ///< newest entry stamp
    std::uint64_t prev_pub_cycles = 0;  ///< stamp at the prior reduce
  };

  /// Rank `r`'s metric window in rank_values_.
  long long* values_of(std::uint32_t r) noexcept {
    return rank_values_.get() + static_cast<std::size_t>(r) *
                                    config_.num_metrics;
  }
  const long long* values_of(std::uint32_t r) const noexcept {
    return rank_values_.get() + static_cast<std::size_t>(r) *
                                    config_.num_metrics;
  }

  CollectorConfig config_;
  papi::TelemetryRegistry* telemetry_;
  /// Ingest staging: a frame's values decode here first and are copied
  /// into the rank slot only after the whole frame parsed cleanly, so a
  /// malformed tail can never leave a half-updated rank.
  std::array<long long, kMaxMetrics> staging_{};
  std::unique_ptr<RankSlot[]> ranks_;
  std::unique_ptr<long long[]> rank_values_;
  std::unique_ptr<NodeStats[]> nodes_;
  std::size_t max_nodes_ = 0;
  std::size_t num_nodes_used_ = 0;
  std::array<FixedHistogram, kMaxMetrics> histograms_;
  ClusterReduction cluster_;
  CollectorStats stats_;
};

}  // namespace papirepro::aggregate
