// Fixed-bucket log-linear histogram for streaming percentiles.  The
// collector reduces thousands of ranks per polling interval and must
// produce p50/p95/p99 without sorting or allocating: buckets are laid
// out HDR-style — values below 2^kSubBucketBits land in exact unit
// buckets, larger values in octaves split into 2^kSubBucketBits
// sub-buckets — giving a bounded relative error of 2^-kSubBucketBits
// (12.5 %) over the full 64-bit range in a fixed 512-slot array.
// record/merge/quantile are all O(1)/O(buckets) with no heap use, so a
// histogram can live inside a per-metric slot and be merged up the
// rank -> node -> cluster reduction tree.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace papirepro::aggregate {

class FixedHistogram {
 public:
  static constexpr std::uint32_t kSubBucketBits = 3;  // 8 per octave
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBucketBits;
  /// Octave 0 covers [0, kSubBuckets) exactly; octaves 1..61 cover the
  /// remaining powers of two up to 2^64.
  static constexpr std::uint32_t kBuckets =
      (64 - kSubBucketBits + 1) * kSubBuckets;  // 496, padded to 512
  static constexpr std::uint32_t kSlots = 512;
  static_assert(kBuckets <= kSlots);

  void reset() noexcept {
    counts_.fill(0);
    total_ = 0;
  }

  /// Buckets `v` (negative inputs clamp to 0 at the caller; this class
  /// is unsigned-only).
  void record(std::uint64_t v, std::uint64_t weight = 1) noexcept {
    counts_[bucket_index(v)] += weight;
    total_ += weight;
  }

  void merge(const FixedHistogram& other) noexcept {
    for (std::uint32_t i = 0; i < kSlots; ++i) {
      counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
  }

  std::uint64_t total() const noexcept { return total_; }

  /// Value at quantile `q` in [0, 1]: the representative (lower bound)
  /// of the bucket containing the ceil(q * total)-th observation.  0 on
  /// an empty histogram.
  std::uint64_t quantile(double q) const noexcept {
    if (total_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(total_));
    if (target >= total_) target = total_ - 1;
    std::uint64_t seen = 0;
    for (std::uint32_t i = 0; i < kSlots; ++i) {
      seen += counts_[i];
      if (seen > target) return bucket_value(i);
    }
    return bucket_value(kSlots - 1);
  }

  /// Bucket index for `v`: exact below kSubBuckets, log-linear above.
  static std::uint32_t bucket_index(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<std::uint32_t>(v);
    const auto top = static_cast<std::uint32_t>(63 - std::countl_zero(v));
    const auto sub = static_cast<std::uint32_t>(
        (v >> (top - kSubBucketBits)) & (kSubBuckets - 1));
    return (top - kSubBucketBits + 1) * kSubBuckets + sub;
  }

  /// Lower bound of bucket `i` — the value quantile() reports for it.
  static std::uint64_t bucket_value(std::uint32_t i) noexcept {
    if (i < kSubBuckets) return i;
    const std::uint32_t octave = i / kSubBuckets - 1;
    const std::uint32_t sub = i % kSubBuckets;
    return (static_cast<std::uint64_t>(kSubBuckets) + sub)
           << octave;
  }

 private:
  std::array<std::uint64_t, kSlots> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace papirepro::aggregate
