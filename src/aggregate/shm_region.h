// Seqlock-published snapshot region for out-of-process polling.  The
// collector refreshes it after each reduce(); readers — another thread,
// or another process when the region is placed in a MAP_SHARED mapping
// — copy the latest cluster reduction without syscalls, locks, or any
// interaction with the counting threads.
//
// Memory-ordering contract (the EventSet::Published pattern, restated
// for a region that may cross a process boundary):
//   * single writer: exactly one thread publishes; seq is odd while a
//     write is open and even when the region is consistent.
//   * writer: store seq+1 relaxed, release fence, relaxed data stores,
//     store seq+2 release.
//   * reader: load seq acquire (spin past odd), relaxed data loads,
//     acquire fence, re-load seq relaxed — equal means the copy is
//     consistent; otherwise retry (bounded, then report failure).
//   * every field is a lock-free std::atomic on a standard-layout
//     struct, so concurrent access is race-free (TSan-clean) and the
//     bytes are meaningful across processes sharing the mapping.
#pragma once

#include <atomic>
#include <cstdint>

#include "aggregate/collector.h"

namespace papirepro::aggregate {

inline constexpr std::uint32_t kRegionMagic = 0x52534350u;  // "PCSR"
inline constexpr std::uint32_t kRegionVersion = 1;

/// Plain copy of one metric row a reader extracts from the region.
struct RegionMetric {
  long long min = 0;
  long long max = 0;
  long long sum = 0;
  double avg = 0.0;
  std::uint64_t count = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
};

/// Plain consistent snapshot read_into() fills for a reader.
struct RegionSnapshot {
  std::uint64_t reduce_count = 0;
  std::uint64_t now_cycles = 0;
  std::uint32_t ranks_live = 0;
  std::uint32_t ranks_stale = 0;
  std::uint32_t num_metrics = 0;
  std::array<RegionMetric, kMaxMetrics> metrics{};
};

class SharedSnapshotRegion {
 public:
  SharedSnapshotRegion() noexcept {
    magic_.store(kRegionMagic, std::memory_order_relaxed);
    version_.store(kRegionVersion, std::memory_order_release);
  }

  SharedSnapshotRegion(const SharedSnapshotRegion&) = delete;
  SharedSnapshotRegion& operator=(const SharedSnapshotRegion&) = delete;

  bool valid() const noexcept {
    return magic_.load(std::memory_order_relaxed) == kRegionMagic &&
           version_.load(std::memory_order_relaxed) == kRegionVersion;
  }

  /// Publishes `reduction` (single writer — the collector's thread).
  void publish(const ClusterReduction& reduction) noexcept {
    const std::uint32_t s = seq_shadow_;
    seq_shadow_ = s + 2;
    seq_.store(s + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    reduce_count_.store(reduction.reduce_count, std::memory_order_relaxed);
    now_cycles_.store(reduction.now_cycles, std::memory_order_relaxed);
    ranks_live_.store(reduction.ranks_live, std::memory_order_relaxed);
    ranks_stale_.store(reduction.ranks_stale, std::memory_order_relaxed);
    const std::uint32_t m =
        reduction.num_metrics <= kMaxMetrics
            ? reduction.num_metrics
            : static_cast<std::uint32_t>(kMaxMetrics);
    num_metrics_.store(m, std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < m; ++i) {
      const MetricStats& ms = reduction.metrics[i];
      MetricCells& c = metrics_[i];
      c.min.store(ms.min, std::memory_order_relaxed);
      c.max.store(ms.max, std::memory_order_relaxed);
      c.sum.store(ms.sum, std::memory_order_relaxed);
      c.avg_bits.store(bit_cast_u64(ms.avg), std::memory_order_relaxed);
      c.count.store(ms.count, std::memory_order_relaxed);
      c.p50.store(ms.p50, std::memory_order_relaxed);
      c.p95.store(ms.p95, std::memory_order_relaxed);
      c.p99.store(ms.p99, std::memory_order_relaxed);
    }
    seq_.store(s + 2, std::memory_order_release);
  }

  /// Copies the latest consistent snapshot into `out`.  Returns false
  /// when `max_attempts` seqlock brackets all raced the writer (the
  /// caller keeps its previous copy) or the region header is invalid.
  bool read_into(RegionSnapshot& out,
                 int max_attempts = 64) const noexcept {
    if (!valid()) return false;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      const std::uint32_t s1 = seq_.load(std::memory_order_acquire);
      if ((s1 & 1u) != 0) continue;  // write in progress
      out.reduce_count = reduce_count_.load(std::memory_order_relaxed);
      out.now_cycles = now_cycles_.load(std::memory_order_relaxed);
      out.ranks_live = ranks_live_.load(std::memory_order_relaxed);
      out.ranks_stale = ranks_stale_.load(std::memory_order_relaxed);
      std::uint32_t m = num_metrics_.load(std::memory_order_relaxed);
      if (m > kMaxMetrics) m = static_cast<std::uint32_t>(kMaxMetrics);
      out.num_metrics = m;
      for (std::uint32_t i = 0; i < m; ++i) {
        const MetricCells& c = metrics_[i];
        RegionMetric& rm = out.metrics[i];
        rm.min = c.min.load(std::memory_order_relaxed);
        rm.max = c.max.load(std::memory_order_relaxed);
        rm.sum = c.sum.load(std::memory_order_relaxed);
        rm.avg = bit_cast_double(
            c.avg_bits.load(std::memory_order_relaxed));
        rm.count = c.count.load(std::memory_order_relaxed);
        rm.p50 = c.p50.load(std::memory_order_relaxed);
        rm.p95 = c.p95.load(std::memory_order_relaxed);
        rm.p99 = c.p99.load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) return true;
    }
    return false;
  }

  /// Publications so far (readers poll this to detect fresh data).
  std::uint64_t publications() const noexcept {
    return reduce_count_.load(std::memory_order_acquire);
  }

 private:
  /// double <-> u64 through atomics: the region only stores integral
  /// atomic cells so every field has the same lock-free guarantees.
  static std::uint64_t bit_cast_u64(double d) noexcept {
    return __builtin_bit_cast(std::uint64_t, d);
  }
  static double bit_cast_double(std::uint64_t u) noexcept {
    return __builtin_bit_cast(double, u);
  }

  struct MetricCells {
    std::atomic<long long> min{0};
    std::atomic<long long> max{0};
    std::atomic<long long> sum{0};
    std::atomic<std::uint64_t> avg_bits{0};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> p50{0};
    std::atomic<std::uint64_t> p95{0};
    std::atomic<std::uint64_t> p99{0};
  };

  std::atomic<std::uint32_t> magic_{0};
  std::atomic<std::uint32_t> version_{0};
  std::atomic<std::uint32_t> seq_{0};
  std::atomic<std::uint32_t> num_metrics_{0};
  std::atomic<std::uint64_t> reduce_count_{0};
  std::atomic<std::uint64_t> now_cycles_{0};
  std::atomic<std::uint32_t> ranks_live_{0};
  std::atomic<std::uint32_t> ranks_stale_{0};
  std::array<MetricCells, kMaxMetrics> metrics_{};
  /// Writer-private shadow of seq_ (same idiom as EventSet's
  /// pub_seq_shadow_): the single writer bumps this plain copy instead
  /// of re-loading the atomic.
  std::uint32_t seq_shadow_ = 0;
};

}  // namespace papirepro::aggregate
