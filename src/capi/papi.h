/* C binding for the PAPI reproduction.  PAPI is, first and foremost, a C
 * specification; this header mirrors the classic PAPI 2/3 function
 * surface so C code (and Fortran via the usual wrappers) can drive the
 * library.  The global state model matches real PAPI: one library
 * instance per process, integer EventSet handles.
 *
 * The one extension over the 2003 API is the simulator bootstrap
 * (PAPIrepro_sim_*): real PAPI measured the host CPU, we measure a
 * simulated one, so the C client must say which platform model and
 * workload to bind.  PAPI_library_init() without a simulator binds the
 * host substrate (timers and memory info work; counters return
 * PAPI_ENOCNTR, as on an unpatched 2003 Linux kernel).
 */
#ifndef PAPIREPRO_CAPI_PAPI_H_
#define PAPIREPRO_CAPI_PAPI_H_

#ifdef __cplusplus
extern "C" {
#endif

/* ---- return codes (classic PAPI values) ---- */
#define PAPI_OK 0
#define PAPI_EINVAL (-1)
#define PAPI_ENOMEM (-2)
#define PAPI_ESYS (-3)
#define PAPI_ESBSTR (-4)
#define PAPI_ENOSUPP (-7)
#define PAPI_ENOEVNT (-8)
#define PAPI_ECNFLCT (-9)
#define PAPI_ENOTRUN (-10)
#define PAPI_EISRUN (-11)
#define PAPI_ENOEVST (-12)
#define PAPI_ENOTPRESET (-13)
#define PAPI_ENOCNTR (-14)
#define PAPI_EMISC (-15)
#define PAPI_EPERM (-16)
#define PAPI_ENOINIT (-17)
#define PAPI_ECMPDIS (-19) /* component is disabled */
#define PAPI_ENOCMP (-20)  /* no such component */
#define PAPI_ECMPQUAR (-21) /* component quarantined by health monitor */

#define PAPI_VER_CURRENT 0x03000000
#define PAPI_NULL (-1)

#define PAPI_MIN_STR_LEN 64
#define PAPI_MAX_STR_LEN 128

/* counting domains (PAPI_set_domain) */
#define PAPI_DOM_USER 0x1
#define PAPI_DOM_KERNEL 0x2
#define PAPI_DOM_ALL (PAPI_DOM_USER | PAPI_DOM_KERNEL)

/* ---- preset event codes (high bit set, index in low bits) ---- */
#define PAPI_PRESET_MASK 0x80000000u
#define PAPI_TOT_CYC (int)(PAPI_PRESET_MASK | 0)
#define PAPI_TOT_INS (int)(PAPI_PRESET_MASK | 1)
#define PAPI_FP_INS (int)(PAPI_PRESET_MASK | 2)
#define PAPI_FP_OPS (int)(PAPI_PRESET_MASK | 3)
#define PAPI_FMA_INS (int)(PAPI_PRESET_MASK | 4)
#define PAPI_FDV_INS (int)(PAPI_PRESET_MASK | 5)
#define PAPI_LD_INS (int)(PAPI_PRESET_MASK | 6)
#define PAPI_SR_INS (int)(PAPI_PRESET_MASK | 7)
#define PAPI_LST_INS (int)(PAPI_PRESET_MASK | 8)
#define PAPI_L1_DCA (int)(PAPI_PRESET_MASK | 9)
#define PAPI_L1_DCM (int)(PAPI_PRESET_MASK | 10)
#define PAPI_L1_ICM (int)(PAPI_PRESET_MASK | 11)
#define PAPI_L1_TCM (int)(PAPI_PRESET_MASK | 12)
#define PAPI_L2_TCA (int)(PAPI_PRESET_MASK | 13)
#define PAPI_L2_TCM (int)(PAPI_PRESET_MASK | 14)
#define PAPI_TLB_DM (int)(PAPI_PRESET_MASK | 15)
#define PAPI_TLB_IM (int)(PAPI_PRESET_MASK | 16)
#define PAPI_TLB_TL (int)(PAPI_PRESET_MASK | 17)
#define PAPI_BR_INS (int)(PAPI_PRESET_MASK | 18)
#define PAPI_BR_TKN (int)(PAPI_PRESET_MASK | 19)
#define PAPI_BR_MSP (int)(PAPI_PRESET_MASK | 20)
#define PAPI_BR_PRC (int)(PAPI_PRESET_MASK | 21)
#define PAPI_STL_CCY (int)(PAPI_PRESET_MASK | 22)
#define PAPI_MSG_SNT (int)(PAPI_PRESET_MASK | 23)
#define PAPI_MSG_RCV (int)(PAPI_PRESET_MASK | 24)

/* ---- components (PAPI-C style registry) ----
 * Each measurement component (CPU core, memory/uncore, network) owns
 * its own substrate, event namespace, and counter budget.  Component 0
 * is always the CPU core; a simulator-bound library registers "mem"
 * (memory-bandwidth counters over the simulated cache hierarchy) and
 * "net" (CommWorld message counters) at init.  Event codes carry the
 * owning component id in bits 30..24; qualified names ("mem::
 * BANDWIDTH_RD", "net::PAPI_MSG_SNT") resolve through
 * PAPI_event_name_to_code.  An EventSet may span components: counters
 * start/stop/read across all of them as one coherent snapshot. */
#define PAPIREPRO_MAX_COMPONENTS 8
#define PAPIREPRO_COMPONENT_MASK 0x7f000000u
#define PAPIREPRO_COMPONENT_SHIFT 24
/* Component id carried by an event code. */
#define PAPIREPRO_EVENT_COMPONENT(code) \
  (((unsigned int)(code) & PAPIREPRO_COMPONENT_MASK) >> \
   PAPIREPRO_COMPONENT_SHIFT)

typedef struct PAPIrepro_component_info {
  int id;
  char name[PAPI_MIN_STR_LEN];        /* namespace prefix, e.g. "mem" */
  char description[PAPI_MAX_STR_LEN]; /* substrate self-description */
  int num_counters;                   /* component's counter budget */
  int enabled;                        /* 0 after PAPIrepro_set_component_enabled(id, 0) */
} PAPIrepro_component_info_t;

/* Number of registered components, or PAPI_ENOINIT. */
int PAPI_num_components(void);
/* PAPI_ENOCMP for an unknown id; PAPI_EINVAL on NULL out. */
int PAPI_get_component_info(int id, PAPIrepro_component_info_t* out);
/* Soft-disables a component: running EventSets keep working, new
 * PAPI_add_event calls against it fail with PAPI_ECMPDIS. */
int PAPIrepro_set_component_enabled(int id, int enable);

/* ---- simulator bootstrap (reproduction extension) ---- */
typedef struct PAPIrepro_sim PAPIrepro_sim_t;

/* platform: "sim-x86" | "sim-power3" | "sim-ia64" | "sim-alpha";
 * workload: see sim/workload_registry.h; n: problem-size knob (0 =
 * default).  Returns NULL on unknown names. */
PAPIrepro_sim_t* PAPIrepro_sim_create(const char* platform,
                                      const char* workload, long long n);
/* Runs up to max_instructions (<=0: to completion).  Returns retired
 * instruction count. */
long long PAPIrepro_sim_run(PAPIrepro_sim_t* sim,
                            long long max_instructions);
int PAPIrepro_sim_halted(const PAPIrepro_sim_t* sim);
void PAPIrepro_sim_destroy(PAPIrepro_sim_t* sim);
/* Binds the global PAPI library to this simulator's substrate.  Must be
 * called before PAPI_library_init. */
int PAPIrepro_bind_sim(PAPIrepro_sim_t* sim);
/* Binds this simulator's machine as the *calling thread's* counter
 * domain: the thread's EventSets then count on it.  Requires an
 * initialized library bound to a sim of the same platform; used by
 * multi-rank programs running one machine per thread. */
int PAPIrepro_sim_bind_thread(PAPIrepro_sim_t* sim);
/* Enables DADD-style count estimation from samples (sim-alpha only). */
int PAPIrepro_set_estimation(int enable);

/* ---- fault injection & hardening (reproduction extension) ----
 * A deterministic fault plan wraps the substrate in a fault-injecting
 * decorator: scripted "fail N times then succeed" transients plus seeded
 * per-call failure probabilities on the counter-control paths, narrow
 * (wrapping) counter registers, and multiplex-timer misfire.  Configure
 * the plan *before* PAPI_library_init (the decorator is installed at
 * init); toggle injection on and off at any time with
 * PAPIrepro_inject_faults.  All fields zero = a no-op plan. */
typedef struct PAPIrepro_fault_plan {
  unsigned long long seed;         /* fault-stream seed */
  int create_context_fail_times;   /* fail the first N context creates */
  int program_fail_times;          /* fail the first N program() calls */
  int start_fail_times;            /* fail the first N start() calls */
  int read_fail_times;             /* fail the first N read() calls */
  int add_timer_fail_times;        /* fail the first N timer arms */
  double program_fail_probability; /* after the script, per-call odds */
  double read_fail_probability;
  int fault_code;                  /* injected PAPI_* code; 0 = PAPI_ECNFLCT */
  int counter_width_bits;          /* reads wrap at this width; 0/64 = off */
  double timer_drop_probability;   /* multiplex slice-timer misfire odds */
  unsigned long long timer_extra_delay_cycles; /* late timer service */
  /* Which component's substrate the decorator wraps: 0 = every
   * registered component (the all-zero plan stays a no-op for all of
   * them), N > 0 = only component N-1.  Applied at init time. */
  int target_component;
  /* Deferred hard-down windows: the first *_fail_after calls at a site
   * pass untouched, then the site's *_fail_times scripted failures fire
   * back-to-back, then the site recovers.  0 (the default) keeps the
   * legacy fail-from-the-first-call behavior. */
  int create_context_fail_after;
  int program_fail_after;
  int start_fail_after;
  int read_fail_after;
  int add_timer_fail_after;
  /* Non-monotonic counter injection: after read_rewind_after successful
   * reads, the next read_rewind_times reads report values rewound by
   * read_rewind_delta (clamped at 0) — exercises the fold path's
   * monotonicity sanity guard.  Times or delta of 0 disables it. */
  unsigned int read_rewind_after;
  unsigned int read_rewind_times;
  unsigned long long read_rewind_delta;
} PAPIrepro_fault_plan_t;

/* Stages `plan` for the next PAPI_library_init, or — when the library is
 * already initialized with a fault decorator installed — replaces the
 * active plan and rewinds its scripts.  PAPI_EISRUN if the library is
 * initialized without a decorator. */
int PAPIrepro_set_fault_plan(const PAPIrepro_fault_plan_t* plan);
/* Master injection switch.  Before init: arms (or disarms) the staged
 * plan, staging a default plan if none was set.  After init: toggles the
 * installed decorator; PAPI_ENOSUPP when none is installed. */
int PAPIrepro_inject_faults(int enable);
/* Bounded-retry hardening knob: total attempts (>= 1; 1 = no retries)
 * for transient substrate faults, with doubling wall-clock backoff
 * starting at backoff_usec (0 = immediate).  Requires an initialized
 * library. */
int PAPIrepro_set_retry(int max_attempts,
                        unsigned long long backoff_usec);

/* ---- component health monitor (reproduction extension) ----
 * Every component is watched by a circuit breaker: consecutive retry
 * exhaustions or a high failure rate over a sliding window trip it into
 * quarantine, where counter operations against the component fail fast
 * with PAPI_ECMPQUAR instead of burning the retry/backoff budget.  A
 * quarantined component self-heals: after an exponential cool-down the
 * next operation is admitted as a probe, and enough consecutive probe
 * successes return the component to service. */
#define PAPIREPRO_HEALTH_HEALTHY 0
#define PAPIREPRO_HEALTH_DEGRADED 1    /* failures seen, still admitted */
#define PAPIREPRO_HEALTH_QUARANTINED 2 /* breaker open: ops fail fast */
#define PAPIREPRO_HEALTH_PROBATION 3   /* cool-down over: probing */

typedef struct PAPIrepro_component_health {
  int component;                 /* component id */
  int state;                     /* PAPIREPRO_HEALTH_* */
  int consecutive_exhaustions;   /* current retry-exhaustion streak */
  int window_ops;                /* ops in the sliding window (<= 64) */
  int window_failures;           /* failed ops in the window */
  long long quarantines;         /* times the breaker tripped */
  long long fail_fasts;          /* ops rejected with PAPI_ECMPQUAR */
  long long probes;              /* ops admitted on probation */
  long long transitions;         /* state transitions since init */
  long long cooldown_usec;       /* current quarantine cool-down */
  int last_error;                /* last failing PAPI_* code, 0 if none */
} PAPIrepro_component_health_t;

typedef struct PAPIrepro_health_policy {
  int enabled;                    /* 0 disables the breaker entirely */
  int max_consecutive_exhaustions; /* streak that trips quarantine (>=1) */
  int window_min_ops;             /* min window ops before rate applies */
  double failure_rate_threshold;  /* window failure rate trip [0..1] */
  int probation_successes;        /* probe successes to re-enter service */
  long long probe_cooldown_usec;  /* initial quarantine cool-down */
  long long probe_cooldown_max_usec; /* cool-down doubling cap */
} PAPIrepro_health_policy_t;

/* PAPI_ENOCMP for an unknown component; PAPI_EINVAL on NULL out. */
int PAPIrepro_get_component_health(int component,
                                   PAPIrepro_component_health_t* out);
/* Applies `policy` to every component (library-wide).  PAPI_EINVAL on
 * NULL or out-of-range fields. */
int PAPIrepro_set_health_policy(const PAPIrepro_health_policy_t* policy);
/* Reads the active library-wide policy.  PAPI_EINVAL on NULL out. */
int PAPIrepro_get_health_policy(PAPIrepro_health_policy_t* out);

/* Per-event validity flags for PAPIrepro_read_ex and the batched reads
 * below. */
#define PAPIREPRO_READ_VALID 0       /* fresh value from the hardware */
#define PAPIREPRO_READ_STALE 0x1     /* last latched value (slice failed) */
#define PAPIREPRO_READ_QUARANTINED 0x2 /* owning component quarantined */
#define PAPIREPRO_READ_SUSPECT 0x4   /* non-monotonic delta was clamped */
#define PAPIREPRO_READ_PUBLISHED 0x8 /* served from the owning thread's
                                      * published snapshot, not a live read */
#define PAPIREPRO_READ_NODATA 0x10   /* value unavailable (reads 0): beyond
                                      * publication capacity / never ran */

/* Partial-failure read for spanning EventSets: like PAPI_read, but a
 * failed or quarantined component slice no longer fails the whole call —
 * its events report their last latched values flagged
 * PAPIREPRO_READ_STALE (plus _QUARANTINED when the breaker is open)
 * while healthy slices deliver fresh values flagged _VALID.  `flags`
 * receives one entry per event (same order as values); returns PAPI_OK
 * as long as the EventSet is running, even when every slice failed. */
int PAPIrepro_read_ex(int event_set, long long* values, int* flags);

/* ---- batched snapshot reads (reproduction extension) ----
 * One call reads many EventSets: the calling thread's context is
 * resolved once, its own running set gets a full live read, and every
 * other set — including sets running on other threads — is served from
 * the seqlock-published snapshot its owning thread refreshes at
 * start/read/stop (flagged PAPIREPRO_READ_PUBLISHED).  The whole pass
 * is lock-free and allocation-free. */
typedef struct PAPIrepro_snapshot {
  int event_set;   /* the handle this entry describes */
  int first_value; /* index of its first value in the shared buffer */
  int num_values;  /* values written for it (0 on error/never ran) */
  int status;      /* PAPI_OK, PAPI_ENOTRUN, PAPI_ENOEVST, ... */
  int flags;       /* OR of its events' PAPIREPRO_READ_* bits */
  /* Substrate cycle stamp of the moment the values were produced (the
   * publication time for _PUBLISHED entries, the read time for live
   * ones; 0 if the set never ran).  Collectors age-out ranks whose
   * stamps stop advancing. */
  long long pub_cycles;
} PAPIrepro_snapshot_t;

/* Reads `count` EventSets in one pass.  Values land back-to-back in
 * `values` (capacity `values_capacity`); entries[i] describes where
 * event_sets[i]'s values went.  An unknown handle yields a per-entry
 * PAPI_ENOEVST status — not a call failure — so a racing destroy is
 * survivable.  PAPI_EINVAL on NULL args, count <= 0, or insufficient
 * values capacity. */
int PAPIrepro_read_many(const int* event_sets, int count,
                        long long* values, int values_capacity,
                        PAPIrepro_snapshot_t* entries);

/* Walks every live EventSet in the library in one coherent pass.
 * Returns the number of entries written (>= 0), PAPI_EINVAL when
 * entries/values are NULL or a buffer is too small (max_entries /
 * values_capacity), or another PAPI error.  Ordering follows handle
 * numbering. */
int PAPIrepro_snapshot_all(PAPIrepro_snapshot_t* entries, int max_entries,
                           long long* values, int values_capacity);

/* ---- cluster aggregation service (reproduction extension) ----
 * A collector ingests per-rank snapshot frames (the compact wire format
 * PAPIrepro_wire_encode produces from PAPIrepro_snapshot_all output)
 * and reduces them hierarchically: per-rank -> per-node min/max/sum/avg
 * -> per-cluster min/max/sum/avg plus streaming p50/p95/p99.  Ingest
 * and reduce allocate nothing after create, and never touch the
 * counting threads — only their published snapshots.  The reduction is
 * double-buffered through a seqlock region, so PAPIrepro_collector_read
 * may be called from any thread while another ingests/reduces. */
#define PAPIREPRO_COLLECTOR_MAX_METRICS 16

typedef struct PAPIrepro_collector_config {
  int max_ranks;       /* rank slots preallocated (<=0 -> 1024) */
  int ranks_per_node;  /* reduction-tree fan-in (<=0 -> 32) */
  int num_metrics;     /* metrics reduced per rank (<=0 -> 4) */
  /* Age-out: a rank whose newest publication stamp lags now_cycles by
   * more than max_age_cycles (0 = off), or fails to advance for
   * stale_reduce_rounds consecutive reduces (0 = off), is excluded
   * from the reduction and counted in ranks_stale. */
  long long max_age_cycles;
  int stale_reduce_rounds;
} PAPIrepro_collector_config_t;

typedef struct PAPIrepro_metric_stats {
  long long min;
  long long max;
  long long sum;
  double avg;
  long long count; /* ranks contributing */
  long long p50;   /* histogram lower-bound representatives */
  long long p95;
  long long p99;
} PAPIrepro_metric_stats_t;

typedef struct PAPIrepro_cluster_view {
  long long now_cycles;
  long long reduce_count;
  int ranks_live;
  int ranks_stale;
  int num_metrics;
  PAPIrepro_metric_stats_t metrics[PAPIREPRO_COLLECTOR_MAX_METRICS];
} PAPIrepro_cluster_view_t;

/* Creates a collector sized by `config` (NULL = all defaults).  Returns
 * a handle >= 0, or PAPI_ENOMEM.  Collectors are independent of
 * PAPI_library_init, but when the library is initialized their frame /
 * decode-error / reduction counts land in PAPIrepro_get_telemetry. */
int PAPIrepro_collector_create(const PAPIrepro_collector_config_t* config);
int PAPIrepro_collector_destroy(int collector);

/* Decodes every frame in buf[0..len) into the collector's rank slots.
 * Returns frames accepted (>= 0; bad frames are skipped and counted),
 * PAPI_ENOEVST for an unknown collector handle, PAPI_EINVAL on NULL
 * buf with nonzero len. */
int PAPIrepro_collector_ingest(int collector, const void* buf,
                               long long len);

/* Recomputes the hierarchical reduction at `now_cycles` (the caller's
 * clock, used for age-out), publishes it through the seqlock region,
 * and optionally copies it to *out (NULL ok). */
int PAPIrepro_collector_reduce(int collector, long long now_cycles,
                               PAPIrepro_cluster_view_t* out);

/* Copies the most recently published reduction into *out without
 * disturbing a concurrent ingest/reduce (bounded seqlock retry;
 * PAPI_ESYS if every attempt raced the writer). */
int PAPIrepro_collector_read(int collector, PAPIrepro_cluster_view_t* out);

/* Encodes one rank's snapshot (entries/values as filled in by
 * PAPIrepro_snapshot_all) into the wire format, appended at out[0].
 * Returns bytes written, PAPI_EINVAL on NULL args or when the frame
 * would exceed `capacity` or the format's caps. */
int PAPIrepro_wire_encode(unsigned int rank, long long frame_cycles,
                          const PAPIrepro_snapshot_t* entries,
                          int num_entries, const long long* values,
                          int num_values, void* out, long long capacity);

/* Counter-allocation memo instrumentation: the library caches bipartite
 * allocation solves keyed on the native-event list, so repeated EventSet
 * builds skip the matcher.  hits/misses/evictions are cumulative since
 * init (or the last invalidating substrate-mode change, counted in
 * invalidations); entries is the current resident count. */
typedef struct PAPIrepro_alloc_cache_stats {
  long long hits;
  long long misses;
  long long evictions;
  long long invalidations;
  long long entries;
} PAPIrepro_alloc_cache_stats_t;
/* Requires an initialized library; PAPI_EINVAL on NULL out. */
int PAPIrepro_alloc_cache_stats(PAPIrepro_alloc_cache_stats_t* out);

/* ---- asynchronous sampling pipeline ----
 * With async enabled, overflow/PAPI_profil dispatch is deferred: the
 * counting thread enqueues an O(1) sample into a per-run lock-free ring
 * and a library aggregator thread runs handlers / histogram updates.
 * A full ring drops the sample (counted below) rather than ever
 * blocking the counting thread.  Applies to event sets started after
 * the call. */
/* async_enable: 0 = classic synchronous dispatch (default), nonzero =
 * ring + aggregator.  ring_capacity: records per ring, rounded up to a
 * power of two (0 keeps the current setting's default of 1024).
 * PAPI_EINVAL when ring_capacity exceeds the supported maximum. */
int PAPIrepro_set_sampling(int async_enable,
                           unsigned long long ring_capacity);

/* Cumulative pipeline counters since init, across all rings. */
typedef struct PAPIrepro_sampling_stats {
  long long enqueued;     /* samples accepted by rings */
  long long dropped;      /* samples lost to full rings */
  long long dispatched;   /* samples delivered to handlers/histograms */
  long long sweeps;       /* aggregator drain passes */
  long long flushes;      /* synchronous flush/detach drains */
  long long rings_active; /* rings currently registered */
  long long ring_capacity; /* capacity applied to new rings */
  int async;              /* nonzero when async mode is on */
} PAPIrepro_sampling_stats_t;
/* Requires an initialized library; PAPI_EINVAL on NULL out. */
int PAPIrepro_sampling_stats(PAPIrepro_sampling_stats_t* out);

/* ---- self-telemetry (reproduction extension) ----
 * The library watches itself: every control-path call, retry,
 * degradation, mux rotation, allocation-memo outcome, sample, and
 * injected fault bumps a process-wide introspection counter.  One
 * consistent snapshot (below) backs this call, the legacy
 * PAPIrepro_alloc_cache_stats / PAPIrepro_sampling_stats entry points,
 * and the PAPIREPRO_TELEMETRY=stderr|<path> at-shutdown summary. */
typedef struct PAPIrepro_telemetry {
  /* counters, cumulative since init */
  long long starts;             /* successful PAPI_start calls */
  long long stops;              /* successful PAPI_stop calls */
  long long reads;              /* PAPI_read calls (accum reads included) */
  long long accums;             /* PAPI_accum calls */
  long long resets;             /* PAPI_reset calls */
  long long mux_rotations;      /* multiplex slice rotations */
  long long retry_attempts;     /* re-attempts after transient faults */
  long long retry_exhaustions;  /* transients surfaced after the budget */
  long long degradations;       /* degradation-ladder activations */
  long long faults_injected;    /* faults the injecting decorator fired */
  long long alloc_cache_hits;
  long long alloc_cache_misses;
  long long alloc_cache_evictions;
  long long alloc_cache_invalidations;
  long long samples_enqueued;   /* overflow samples accepted by rings */
  long long samples_dropped;    /* overflow samples lost to full rings */
  long long samples_dispatched; /* samples the aggregator delivered */
  long long overflows_suppressed; /* dispatches dropped after clear */
  long long trace_records;      /* trace records accepted */
  long long trace_drops;        /* trace records lost to full rings */
  long long health_transitions; /* health state-machine transitions */
  long long health_fail_fasts;  /* ops rejected with PAPI_ECMPQUAR */
  long long health_probes;      /* ops admitted on probation */
  long long sanity_faults;      /* non-monotonic deltas flagged suspect */
  long long collector_frames;   /* snapshot frames ingested by collectors */
  long long collector_decode_errors; /* frames the wire decoder rejected */
  long long collector_reductions;    /* cluster reductions computed */
  /* gauges at snapshot time */
  long long threads_seen;       /* threads that ever touched telemetry */
  long long trace_records_buffered;
  long long alloc_cache_entries;
  int enabled;                  /* master telemetry switch */
  int trace_enabled;            /* trace rings recording */
  /* per-component control-path counters, indexed by component id */
  int num_components;           /* valid entries in the arrays below */
  long long component_starts[PAPIREPRO_MAX_COMPONENTS];
  long long component_stops[PAPIREPRO_MAX_COMPONENTS];
  long long component_reads[PAPIREPRO_MAX_COMPONENTS];
} PAPIrepro_telemetry_t;
/* Requires an initialized library; PAPI_EINVAL on NULL out. */
int PAPIrepro_get_telemetry(PAPIrepro_telemetry_t* out);

/* Opt-in zero-allocation event tracing: each thread gets a fixed-size
 * ring of span/instant records (start/stop/read/rotate/retry/degrade/
 * overflow-dispatch) stamped with substrate cycles.  ring_capacity is
 * records per ring, rounded up to a power of two (0 keeps the current
 * default of 4096); PAPI_EINVAL when it exceeds the supported maximum.
 * Disabling stops recording but keeps buffered records for dump. */
int PAPIrepro_set_trace(int enable, unsigned long long ring_capacity);

#define PAPIREPRO_TRACE_JSON 0 /* chrome://tracing traceEvents document */
#define PAPIREPRO_TRACE_CSV 1  /* tid,kind,ts_cycles,dur_cycles,arg */
/* Drains buffered trace records (destructive) into `path`.  PAPI_EINVAL
 * on NULL path or unknown format, PAPI_ESYS when the file cannot be
 * written. */
int PAPIrepro_dump_trace(const char* path, int format);

/* Self-overhead attribution: cycles the substrate charged to
 * measurement infrastructure on behalf of `event_set`, divided by the
 * cycles its runs spanned — the paper's "up to ~30 % direct counting vs
 * 1-2 % sampling" finding as a queryable metric.  PAPI_EINVAL on NULL
 * out. */
int PAPIrepro_overhead_ratio(int event_set, double* out);

/* ---- library ---- */
int PAPI_library_init(int version);
int PAPI_is_initialized(void);
void PAPI_shutdown(void);
const char* PAPI_strerror(int code);
int PAPI_num_hwctrs(void);

/* ---- threads (PAPI 3 thread support) ----
 * The running-EventSet rule is per thread: each thread may run one
 * EventSet, and N threads may count concurrently.  PAPI_thread_init
 * installs the id function used to label threads (e.g. pthread_self);
 * threads are registered implicitly on their first PAPI_start, or
 * explicitly via PAPI_register_thread. */
int PAPI_thread_init(unsigned long (*id_fn)(void));
/* Numeric id of the calling thread, or (unsigned long)-1 before init. */
unsigned long PAPI_thread_id(void);
int PAPI_register_thread(void);
/* Fails with PAPI_EISRUN while the calling thread's EventSet runs. */
int PAPI_unregister_thread(void);
/* Number of threads known to the library. */
int PAPI_num_threads(void);

/* ---- event name space ---- */
int PAPI_query_event(int event_code);
int PAPI_event_name_to_code(const char* name, int* event_code);
int PAPI_event_code_to_name(int event_code, char* out, int len);

/* ---- low level: EventSets ---- */
int PAPI_create_eventset(int* event_set);
int PAPI_destroy_eventset(int* event_set);
int PAPI_add_event(int event_set, int event_code);
int PAPI_add_named_event(int event_set, const char* name);
int PAPI_remove_event(int event_set, int event_code);
int PAPI_num_events(int event_set);
int PAPI_set_multiplex(int event_set);
/* Set the counting domain of an event set (PAPI_DOM_*). */
int PAPI_set_domain(int event_set, int domain);
int PAPI_start(int event_set);
int PAPI_stop(int event_set, long long* values);
int PAPI_read(int event_set, long long* values);
int PAPI_accum(int event_set, long long* values);
int PAPI_reset(int event_set);

/* ---- overflow dispatch ---- */
typedef void (*PAPI_overflow_handler_t)(int event_set, void* address,
                                        long long overflow_vector,
                                        void* context);
int PAPI_overflow(int event_set, int event_code, int threshold,
                  int flags, PAPI_overflow_handler_t handler);

/* ---- SVR4-style statistical profiling ---- */
/* Buckets PC samples for `event_code` overflow every `threshold` counts
 * into buf[0..bufsiz).  Pass threshold 0 to stop profiling.  Bucket i
 * covers 4 bytes of text starting at offset + 4*i (scale 0x4000). */
int PAPI_profil(unsigned int* buf, unsigned int bufsiz,
                unsigned long long offset, unsigned int scale,
                int event_set, int event_code, int threshold);

/* event set states for PAPI_state */
#define PAPI_STOPPED 0x1
#define PAPI_RUNNING 0x2

/* Lists the events in an event set: on input *number is the capacity of
 * `events`; on output it is the member count (codes written up to the
 * smaller of the two). */
int PAPI_list_events(int event_set, int* events, int* number);
/* Stores PAPI_STOPPED or PAPI_RUNNING into *status. */
int PAPI_state(int event_set, int* status);

/* ---- timers ---- */
long long PAPI_get_real_usec(void);
long long PAPI_get_real_cyc(void);
long long PAPI_get_virt_usec(void);
long long PAPI_get_virt_cyc(void);

/* ---- high level ---- */
int PAPI_num_counters(void);
int PAPI_start_counters(int* events, int array_len);
int PAPI_read_counters(long long* values, int array_len);
int PAPI_accum_counters(long long* values, int array_len);
int PAPI_stop_counters(long long* values, int array_len);
int PAPI_flops(float* rtime, float* ptime, long long* flpops,
               float* mflops);
int PAPI_ipc(float* rtime, float* ptime, long long* ins, float* ipc);

/* ---- PAPI 3 memory utilization extension ---- */
typedef struct PAPI_mem_info {
  long long total_bytes;
  long long available_bytes;
  long long process_resident_bytes;
  long long process_peak_bytes;
  long long page_size_bytes;
  long long page_faults;
} PAPI_mem_info_t;
int PAPI_get_memory_info(PAPI_mem_info_t* info);

#ifdef __cplusplus
}
#endif

#endif /* PAPIREPRO_CAPI_PAPI_H_ */
