// C bridge: global-state shim over the C++ library, mirroring real
// PAPI's process-global model.  Thread-aware since the CounterContext
// refactor: the Library keys the running-EventSet rule by thread, and
// the bridge's own maps (overflow handlers, profil state) are mutex-
// guarded.  Init/shutdown remain single-threaded operations, as in real
// PAPI.
#include "capi/papi.h"

#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "aggregate/collector.h"
#include "aggregate/shm_region.h"
#include "aggregate/wire.h"
#include "core/highlevel.h"
#include "core/library.h"
#include "sim/comm.h"
#include "sim/workload_registry.h"
#include "substrate/component_substrates.h"
#include "substrate/fault_substrate.h"
#include "substrate/host_substrate.h"
#include "substrate/sim_substrate.h"

namespace {

using papirepro::Error;
using papirepro::Status;
namespace papi = papirepro::papi;
namespace sim = papirepro::sim;
namespace pmu = papirepro::pmu;

int to_code(Status s) { return static_cast<int>(s.error()); }
int to_code(Error e) { return static_cast<int>(e); }

std::optional<papi::EventId> decode_event(int event_code);

struct ProfilState {
  std::unique_ptr<papi::ProfileBuffer> buffer;
  unsigned int* user_buf = nullptr;
  unsigned int bufsiz = 0;
  int event_code = 0;
};

struct GlobalState {
  std::unique_ptr<papi::Library> library;
  std::unique_ptr<papi::HighLevel> high_level;
  PAPIrepro_sim* bound_sim = nullptr;
  /// Non-CPU components a simulator-bound init registers: the memory
  /// bandwidth substrate over the bound machine (raw pointer kept so
  /// PAPIrepro_sim_bind_thread can bind per-thread machines on it too)
  /// and a one-rank CommWorld backing the "net" component.  The world
  /// must outlive the library (the net substrate references it), so it
  /// is destroyed after library.reset() in PAPI_shutdown.
  papi::MemBandwidthSubstrate* mem_substrate = nullptr;  // owned by library
  std::unique_ptr<sim::CommWorld> comm_world;
  /// Fault-injection staging: the plan (and switch state) to install as
  /// a substrate decorator at the next PAPI_library_init.
  /// pending_fault_target selects which components get wrapped
  /// (0 = all, N > 0 = only component N-1).
  std::optional<papi::FaultPlan> pending_fault_plan;
  bool pending_fault_enabled = false;
  int pending_fault_target = 0;
  /// Installed decorators, one per wrapped component (owned by library).
  std::vector<papi::FaultInjectingSubstrate*> fault_substrates;
  /// Guards the two bridge maps below (handlers fire on whichever thread
  /// drives the overflowing context).
  std::mutex bridge_mutex;
  std::map<int, PAPI_overflow_handler_t> overflow_handlers;
  std::map<int, ProfilState> profil_states;  // keyed by event set
};

GlobalState& g() {
  static GlobalState state;
  return state;
}

std::optional<papi::EventId> decode_event(int event_code) {
  const auto code = static_cast<std::uint32_t>(event_code);
  const std::uint32_t component = papi::event_code_component(code);
  const std::size_t registered =
      g().library != nullptr ? g().library->num_components() : 1;
  if (const auto p = papi::preset_from_code(code)) {
    // Preset codes with component bits naming an unregistered component
    // are not events (PAPI_ENOEVNT), same as before components existed.
    if (component >= registered) return std::nullopt;
    return papi::EventId::preset(*p, component);
  }
  if (component != 0 && component < registered) {
    return papi::EventId::native(code & ~papi::kEventComponentMask,
                                 component);
  }
  // Legacy path: the whole code is a component-0 native.  CPU native
  // codes predate the component field and may use its bits; codes whose
  // component bits name no registered component land here too and fail
  // event resolution exactly as they always did.
  return papi::EventId::native(code);
}

void flush_profil(int event_set) {
  const std::lock_guard<std::mutex> lock(g().bridge_mutex);
  auto it = g().profil_states.find(event_set);
  if (it == g().profil_states.end() || it->second.user_buf == nullptr) {
    return;
  }
  const auto& buckets = it->second.buffer->buckets();
  for (unsigned int i = 0; i < it->second.bufsiz && i < buckets.size();
       ++i) {
    it->second.user_buf[i] = buckets[i];
  }
}

}  // namespace

struct PAPIrepro_sim {
  sim::Workload workload;
  std::unique_ptr<sim::Machine> machine;
  const pmu::PlatformDescription* platform = nullptr;
  papi::SimSubstrate* substrate = nullptr;  // owned by the Library
};

extern "C" {

PAPIrepro_sim_t* PAPIrepro_sim_create(const char* platform,
                                      const char* workload, long long n) {
  if (platform == nullptr || workload == nullptr) return nullptr;
  const pmu::PlatformDescription* p = pmu::find_platform(platform);
  if (p == nullptr) return nullptr;
  auto w = sim::make_workload(workload, n);
  if (!w.has_value()) return nullptr;

  auto* s = new PAPIrepro_sim;
  s->platform = p;
  s->workload = std::move(*w);
  s->machine =
      std::make_unique<sim::Machine>(s->workload.program, p->machine);
  if (s->workload.setup) s->workload.setup(*s->machine);
  return s;
}

long long PAPIrepro_sim_run(PAPIrepro_sim_t* s,
                            long long max_instructions) {
  if (s == nullptr || s->machine == nullptr) return 0;
  const auto budget =
      max_instructions <= 0
          ? std::numeric_limits<std::uint64_t>::max()
          : static_cast<std::uint64_t>(max_instructions);
  return static_cast<long long>(s->machine->run(budget).instructions);
}

int PAPIrepro_sim_halted(const PAPIrepro_sim_t* s) {
  return (s != nullptr && s->machine != nullptr && s->machine->halted())
             ? 1
             : 0;
}

void PAPIrepro_sim_destroy(PAPIrepro_sim_t* s) {
  if (g().bound_sim == s) {
    PAPI_shutdown();
  }
  delete s;
}

int PAPIrepro_bind_sim(PAPIrepro_sim_t* s) {
  if (s == nullptr) return PAPI_EINVAL;
  if (g().library != nullptr) return PAPI_EISRUN;
  g().bound_sim = s;
  return PAPI_OK;
}

int PAPIrepro_sim_bind_thread(PAPIrepro_sim_t* s) {
  if (s == nullptr || s->machine == nullptr) return PAPI_EINVAL;
  if (g().library == nullptr) return PAPI_ENOINIT;
  if (g().bound_sim == nullptr || g().bound_sim->substrate == nullptr) {
    return PAPI_ENOSUPP;  // host substrate has no machines to bind
  }
  if (s->platform != g().bound_sim->platform) return PAPI_ECNFLCT;
  g().bound_sim->substrate->bind_thread_machine(*s->machine);
  // The memory component mirrors the CPU binding: this thread's mem::
  // counters then read the same machine's cache hierarchy.
  if (g().mem_substrate != nullptr) {
    g().mem_substrate->bind_thread_machine(*s->machine);
  }
  return PAPI_OK;
}

int PAPIrepro_set_estimation(int enable) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  if (g().bound_sim == nullptr || g().bound_sim->substrate == nullptr) {
    return PAPI_ENOSUPP;
  }
  return to_code(
      g().bound_sim->substrate->set_estimation(enable != 0));
}

int PAPIrepro_set_fault_plan(const PAPIrepro_fault_plan_t* plan) {
  if (plan == nullptr) return PAPI_EINVAL;
  if (plan->counter_width_bits < 0 || plan->fault_code > 0 ||
      plan->create_context_fail_times < 0 ||
      plan->program_fail_times < 0 || plan->start_fail_times < 0 ||
      plan->read_fail_times < 0 || plan->add_timer_fail_times < 0 ||
      plan->create_context_fail_after < 0 ||
      plan->program_fail_after < 0 || plan->start_fail_after < 0 ||
      plan->read_fail_after < 0 || plan->add_timer_fail_after < 0 ||
      plan->target_component < 0 ||
      plan->target_component > PAPIREPRO_MAX_COMPONENTS) {
    return PAPI_EINVAL;
  }
  papi::FaultPlan converted;
  converted.seed = plan->seed;
  const Error code = plan->fault_code == 0
                         ? Error::kConflict
                         : static_cast<Error>(plan->fault_code);
  auto script = [code](int fail_times, double probability,
                       int fail_after) {
    return papi::FaultScript{fail_times, probability, code, fail_after};
  };
  converted.at(papi::FaultSite::kCreateContext) =
      script(plan->create_context_fail_times, 0.0,
             plan->create_context_fail_after);
  converted.at(papi::FaultSite::kProgram) =
      script(plan->program_fail_times, plan->program_fail_probability,
             plan->program_fail_after);
  converted.at(papi::FaultSite::kStart) =
      script(plan->start_fail_times, 0.0, plan->start_fail_after);
  converted.at(papi::FaultSite::kRead) =
      script(plan->read_fail_times, plan->read_fail_probability,
             plan->read_fail_after);
  converted.at(papi::FaultSite::kAddTimer) =
      script(plan->add_timer_fail_times, 0.0,
             plan->add_timer_fail_after);
  converted.counter_width_bits =
      plan->counter_width_bits == 0
          ? 64u
          : static_cast<std::uint32_t>(plan->counter_width_bits);
  converted.timer_drop_probability = plan->timer_drop_probability;
  converted.timer_extra_delay_cycles = plan->timer_extra_delay_cycles;
  converted.read_rewind_after = plan->read_rewind_after;
  converted.read_rewind_times = plan->read_rewind_times;
  converted.read_rewind_delta = plan->read_rewind_delta;

  if (g().library == nullptr) {
    g().pending_fault_plan = converted;
    g().pending_fault_target = plan->target_component;
    return PAPI_OK;
  }
  if (g().fault_substrates.empty()) return PAPI_EISRUN;
  // Post-init the decorated set is fixed; re-planning rewinds every
  // installed decorator's scripts (target_component only selects what
  // gets wrapped at init).
  for (papi::FaultInjectingSubstrate* fs : g().fault_substrates) {
    fs->set_plan(converted);
  }
  return PAPI_OK;
}

int PAPIrepro_inject_faults(int enable) {
  if (g().library == nullptr) {
    // Arm the staged plan; stage a default (no-fault) plan if none so
    // the decorator is installed at init and can be re-planned later.
    if (!g().pending_fault_plan.has_value()) {
      g().pending_fault_plan = papi::FaultPlan{};
    }
    g().pending_fault_enabled = enable != 0;
    return PAPI_OK;
  }
  if (g().fault_substrates.empty()) return PAPI_ENOSUPP;
  for (papi::FaultInjectingSubstrate* fs : g().fault_substrates) {
    fs->set_enabled(enable != 0);
  }
  return PAPI_OK;
}

int PAPIrepro_set_retry(int max_attempts,
                        unsigned long long backoff_usec) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  return to_code(g().library->set_retry_policy(
      {max_attempts, static_cast<std::uint64_t>(backoff_usec)}));
}

int PAPIrepro_alloc_cache_stats(PAPIrepro_alloc_cache_stats_t* out) {
  // Compat wrapper: the allocation-memo counters now live in the
  // library-wide telemetry registry; this entry point reads the same
  // snapshot PAPIrepro_get_telemetry does.
  if (out == nullptr) return PAPI_EINVAL;
  if (g().library == nullptr) return PAPI_ENOINIT;
  const papi::TelemetrySnapshot snap = g().library->telemetry_snapshot();
  using TC = papi::TelemetryCounter;
  out->hits = static_cast<long long>(snap.value(TC::kAllocCacheHits));
  out->misses = static_cast<long long>(snap.value(TC::kAllocCacheMisses));
  out->evictions =
      static_cast<long long>(snap.value(TC::kAllocCacheEvictions));
  out->invalidations =
      static_cast<long long>(snap.value(TC::kAllocCacheInvalidations));
  out->entries = static_cast<long long>(snap.alloc_cache_entries);
  return PAPI_OK;
}

int PAPIrepro_set_sampling(int async_enable,
                           unsigned long long ring_capacity) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  papi::SamplingConfig config = g().library->sampling().config();
  config.async = async_enable != 0;
  if (ring_capacity != 0) {
    config.ring_capacity = static_cast<std::size_t>(ring_capacity);
  }
  return to_code(g().library->configure_sampling(config));
}

int PAPIrepro_sampling_stats(PAPIrepro_sampling_stats_t* out) {
  // Compat wrapper over the telemetry snapshot: pipeline counters come
  // from the registry, the ring/aggregator gauges ride along in the
  // same snapshot, so this and PAPIrepro_get_telemetry can never
  // disagree mid-run.
  if (out == nullptr) return PAPI_EINVAL;
  if (g().library == nullptr) return PAPI_ENOINIT;
  const papi::TelemetrySnapshot snap = g().library->telemetry_snapshot();
  using TC = papi::TelemetryCounter;
  out->enqueued = static_cast<long long>(snap.value(TC::kSamplesEnqueued));
  out->dropped = static_cast<long long>(snap.value(TC::kSamplesDropped));
  out->dispatched =
      static_cast<long long>(snap.value(TC::kSamplesDispatched));
  out->sweeps = static_cast<long long>(snap.sampling_sweeps);
  out->flushes = static_cast<long long>(snap.sampling_flushes);
  out->rings_active = static_cast<long long>(snap.sampling_rings_active);
  out->ring_capacity =
      static_cast<long long>(snap.sampling_ring_capacity);
  out->async = snap.sampling_async ? 1 : 0;
  return PAPI_OK;
}

int PAPIrepro_get_telemetry(PAPIrepro_telemetry_t* out) {
  if (out == nullptr) return PAPI_EINVAL;
  if (g().library == nullptr) return PAPI_ENOINIT;
  const papi::TelemetrySnapshot snap = g().library->telemetry_snapshot();
  using TC = papi::TelemetryCounter;
  const auto counter = [&snap](TC c) {
    return static_cast<long long>(snap.value(c));
  };
  out->starts = counter(TC::kStarts);
  out->stops = counter(TC::kStops);
  out->reads = counter(TC::kReads);
  out->accums = counter(TC::kAccums);
  out->resets = counter(TC::kResets);
  out->mux_rotations = counter(TC::kMuxRotations);
  out->retry_attempts = counter(TC::kRetryAttempts);
  out->retry_exhaustions = counter(TC::kRetryExhaustions);
  out->degradations = counter(TC::kDegradations);
  out->faults_injected = counter(TC::kFaultsInjected);
  out->alloc_cache_hits = counter(TC::kAllocCacheHits);
  out->alloc_cache_misses = counter(TC::kAllocCacheMisses);
  out->alloc_cache_evictions = counter(TC::kAllocCacheEvictions);
  out->alloc_cache_invalidations =
      counter(TC::kAllocCacheInvalidations);
  out->samples_enqueued = counter(TC::kSamplesEnqueued);
  out->samples_dropped = counter(TC::kSamplesDropped);
  out->samples_dispatched = counter(TC::kSamplesDispatched);
  out->overflows_suppressed = counter(TC::kOverflowsSuppressed);
  out->trace_records = counter(TC::kTraceRecords);
  out->trace_drops = counter(TC::kTraceDrops);
  out->health_transitions = counter(TC::kHealthTransitions);
  out->health_fail_fasts = counter(TC::kHealthFailFasts);
  out->health_probes = counter(TC::kHealthProbes);
  out->sanity_faults = counter(TC::kSanityFaults);
  out->collector_frames = counter(TC::kCollectorFrames);
  out->collector_decode_errors = counter(TC::kCollectorDecodeErrors);
  out->collector_reductions = counter(TC::kCollectorReductions);
  out->threads_seen = static_cast<long long>(snap.threads_seen);
  out->trace_records_buffered =
      static_cast<long long>(snap.trace_records_buffered);
  out->alloc_cache_entries =
      static_cast<long long>(snap.alloc_cache_entries);
  out->enabled = snap.enabled ? 1 : 0;
  out->trace_enabled = snap.trace_enabled ? 1 : 0;
  out->num_components = static_cast<int>(snap.num_components);
  for (int i = 0; i < PAPIREPRO_MAX_COMPONENTS; ++i) {
    const auto comp = static_cast<std::uint32_t>(i);
    using CC = papi::ComponentCounter;
    out->component_starts[i] =
        static_cast<long long>(snap.component_value(comp, CC::kStarts));
    out->component_stops[i] =
        static_cast<long long>(snap.component_value(comp, CC::kStops));
    out->component_reads[i] =
        static_cast<long long>(snap.component_value(comp, CC::kReads));
  }
  return PAPI_OK;
}

int PAPI_num_components(void) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  return static_cast<int>(g().library->num_components());
}

int PAPI_get_component_info(int id, PAPIrepro_component_info_t* out) {
  if (out == nullptr) return PAPI_EINVAL;
  if (g().library == nullptr) return PAPI_ENOINIT;
  if (id < 0) return PAPI_ENOCMP;
  auto info =
      g().library->component_info(static_cast<std::uint32_t>(id));
  if (!info.ok()) return to_code(info.error());
  out->id = static_cast<int>(info.value().id);
  std::snprintf(out->name, sizeof out->name, "%s",
                info.value().name.c_str());
  std::snprintf(out->description, sizeof out->description, "%s",
                info.value().description.c_str());
  out->num_counters = static_cast<int>(info.value().num_counters);
  out->enabled = info.value().enabled ? 1 : 0;
  return PAPI_OK;
}

int PAPIrepro_set_component_enabled(int id, int enable) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  if (id < 0) return PAPI_ENOCMP;
  return to_code(g().library->set_component_enabled(
      static_cast<std::uint32_t>(id), enable != 0));
}

int PAPIrepro_get_component_health(int component,
                                   PAPIrepro_component_health_t* out) {
  if (out == nullptr) return PAPI_EINVAL;
  if (g().library == nullptr) return PAPI_ENOINIT;
  if (component < 0) return PAPI_ENOCMP;
  auto health = g().library->component_health(
      static_cast<std::uint32_t>(component));
  if (!health.ok()) return to_code(health.error());
  const papi::ComponentHealth& h = health.value();
  out->component = static_cast<int>(h.component);
  out->state = static_cast<int>(h.state);
  out->consecutive_exhaustions =
      static_cast<int>(h.consecutive_exhaustions);
  out->window_ops = static_cast<int>(h.window_ops);
  out->window_failures = static_cast<int>(h.window_failures);
  out->quarantines = static_cast<long long>(h.quarantines);
  out->fail_fasts = static_cast<long long>(h.fail_fasts);
  out->probes = static_cast<long long>(h.probes);
  out->transitions = static_cast<long long>(h.transitions);
  out->cooldown_usec = static_cast<long long>(h.cooldown_usec);
  out->last_error = to_code(h.last_error);
  return PAPI_OK;
}

int PAPIrepro_set_health_policy(const PAPIrepro_health_policy_t* policy) {
  if (policy == nullptr) return PAPI_EINVAL;
  if (g().library == nullptr) return PAPI_ENOINIT;
  if (policy->max_consecutive_exhaustions < 1 ||
      policy->window_min_ops < 0 || policy->probation_successes < 1 ||
      policy->probe_cooldown_usec < 0 ||
      policy->probe_cooldown_max_usec < 0) {
    return PAPI_EINVAL;
  }
  papi::HealthPolicy converted;
  converted.enabled = policy->enabled != 0;
  converted.max_consecutive_exhaustions =
      static_cast<std::uint32_t>(policy->max_consecutive_exhaustions);
  converted.window_min_ops =
      static_cast<std::uint32_t>(policy->window_min_ops);
  converted.failure_rate_threshold = policy->failure_rate_threshold;
  converted.probation_successes =
      static_cast<std::uint32_t>(policy->probation_successes);
  converted.probe_cooldown_usec =
      static_cast<std::uint64_t>(policy->probe_cooldown_usec);
  converted.probe_cooldown_max_usec =
      static_cast<std::uint64_t>(policy->probe_cooldown_max_usec);
  return to_code(g().library->set_health_policy(converted));
}

int PAPIrepro_get_health_policy(PAPIrepro_health_policy_t* out) {
  if (out == nullptr) return PAPI_EINVAL;
  if (g().library == nullptr) return PAPI_ENOINIT;
  const papi::HealthPolicy p = g().library->health_policy();
  out->enabled = p.enabled ? 1 : 0;
  out->max_consecutive_exhaustions =
      static_cast<int>(p.max_consecutive_exhaustions);
  out->window_min_ops = static_cast<int>(p.window_min_ops);
  out->failure_rate_threshold = p.failure_rate_threshold;
  out->probation_successes = static_cast<int>(p.probation_successes);
  out->probe_cooldown_usec =
      static_cast<long long>(p.probe_cooldown_usec);
  out->probe_cooldown_max_usec =
      static_cast<long long>(p.probe_cooldown_max_usec);
  return PAPI_OK;
}

int PAPIrepro_set_trace(int enable, unsigned long long ring_capacity) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  return to_code(g().library->set_trace(
      enable != 0, static_cast<std::size_t>(ring_capacity)));
}

int PAPIrepro_dump_trace(const char* path, int format) {
  if (path == nullptr || *path == '\0') return PAPI_EINVAL;
  if (format != PAPIREPRO_TRACE_JSON && format != PAPIREPRO_TRACE_CSV) {
    return PAPI_EINVAL;
  }
  if (g().library == nullptr) return PAPI_ENOINIT;
  const std::string text = g().library->dump_trace(
      format == PAPIREPRO_TRACE_JSON ? papi::TraceFormat::kChromeJson
                                     : papi::TraceFormat::kCsv);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return PAPI_ESYS;
  file << text;
  file.flush();
  return file ? PAPI_OK : PAPI_ESYS;
}

namespace {
/// Wraps `inner` in the staged fault decorator when the pending plan
/// targets `component_id` (target 0 = every component, N = component
/// N-1 only).  Decorators are owned by the library via the component
/// registry; raw pointers are kept for re-planning.
std::unique_ptr<papi::Substrate> maybe_wrap_faults(
    std::unique_ptr<papi::Substrate> inner, int component_id) {
  if (!g().pending_fault_plan.has_value()) return inner;
  const int target = g().pending_fault_target;
  if (target != 0 && target - 1 != component_id) return inner;
  auto wrapped = std::make_unique<papi::FaultInjectingSubstrate>(
      std::move(inner), *g().pending_fault_plan);
  wrapped->set_enabled(g().pending_fault_enabled);
  g().fault_substrates.push_back(wrapped.get());
  return wrapped;
}
}  // namespace

int PAPI_library_init(int version) {
  if (version != PAPI_VER_CURRENT) return PAPI_EINVAL;
  if (g().library != nullptr) return PAPI_VER_CURRENT;  // idempotent
  std::unique_ptr<papi::Substrate> substrate;
  if (g().bound_sim != nullptr) {
    auto sub = std::make_unique<papi::SimSubstrate>(
        *g().bound_sim->machine, *g().bound_sim->platform);
    g().bound_sim->substrate = sub.get();
    substrate = std::move(sub);
  } else {
    substrate = std::make_unique<papi::HostSubstrate>();
  }
  substrate = maybe_wrap_faults(std::move(substrate), /*component_id=*/0);
  g().library = std::make_unique<papi::Library>(std::move(substrate));

  if (g().bound_sim != nullptr) {
    // A simulator-bound library gets the non-CPU components: "mem"
    // (uncore bandwidth over the bound machine's cache hierarchy) and
    // "net" (message counters over a one-rank CommWorld on the same
    // machine — rank 0 sending to itself exercises the counters;
    // multi-rank programs use the C++ API's CommWorld directly).
    auto mem = std::make_unique<papi::MemBandwidthSubstrate>(
        *g().bound_sim->machine);
    g().mem_substrate = mem.get();
    (void)g().library->register_component(
        "mem", "simulated memory/uncore bandwidth counters",
        maybe_wrap_faults(std::move(mem), /*component_id=*/1));

    g().comm_world = std::make_unique<sim::CommWorld>(
        std::vector<sim::Machine*>{g().bound_sim->machine.get()});
    (void)g().library->register_component(
        "net", "simulated network message counters",
        maybe_wrap_faults(
            std::make_unique<papi::NetworkSubstrate>(*g().comm_world),
            /*component_id=*/2));
  }

  g().high_level = std::make_unique<papi::HighLevel>(*g().library);
  return PAPI_VER_CURRENT;
}

int PAPI_is_initialized(void) { return g().library != nullptr ? 1 : 0; }

void PAPI_shutdown(void) {
  g().high_level.reset();
  {
    const std::lock_guard<std::mutex> lock(g().bridge_mutex);
    g().overflow_handlers.clear();
    g().profil_states.clear();
  }
  if (g().bound_sim != nullptr) g().bound_sim->substrate = nullptr;
  g().fault_substrates.clear();
  g().mem_substrate = nullptr;
  g().library.reset();
  // After the library (and with it the net substrate): the world's
  // probe handlers restore in its destructor, and the substrate must
  // not outlive the world it references.
  g().comm_world.reset();
  g().bound_sim = nullptr;
  g().pending_fault_plan.reset();
  g().pending_fault_enabled = false;
  g().pending_fault_target = 0;
}

const char* PAPI_strerror(int code) {
  return papirepro::to_string(static_cast<Error>(code)).data();
}

int PAPI_num_hwctrs(void) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  return static_cast<int>(g().library->num_counters());
}

int PAPI_thread_init(unsigned long (*id_fn)(void)) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  if (id_fn == nullptr) return PAPI_EINVAL;
  return to_code(g().library->thread_init(id_fn));
}

unsigned long PAPI_thread_id(void) {
  if (g().library == nullptr) return static_cast<unsigned long>(-1);
  auto id = g().library->thread_id();
  return id.ok() ? id.value() : static_cast<unsigned long>(-1);
}

int PAPI_register_thread(void) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  return to_code(g().library->register_thread());
}

int PAPI_unregister_thread(void) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  return to_code(g().library->unregister_thread());
}

int PAPI_num_threads(void) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  return static_cast<int>(g().library->num_threads());
}

int PAPI_query_event(int event_code) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  const auto id = decode_event(event_code);
  if (!id) return PAPI_ENOEVNT;
  return g().library->query_event(*id) ? PAPI_OK : PAPI_ENOEVNT;
}

int PAPI_event_name_to_code(const char* name, int* event_code) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  if (name == nullptr || event_code == nullptr) return PAPI_EINVAL;
  auto id = g().library->event_from_name(name);
  if (!id.ok()) return to_code(id.error());
  *event_code = static_cast<int>(id.value().code());
  return PAPI_OK;
}

int PAPI_event_code_to_name(int event_code, char* out, int len) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  if (out == nullptr || len <= 0) return PAPI_EINVAL;
  const auto id = decode_event(event_code);
  if (!id) return PAPI_ENOEVNT;
  auto name = g().library->event_name(*id);
  if (!name.ok()) return to_code(name.error());
  std::snprintf(out, static_cast<std::size_t>(len), "%s",
                name.value().c_str());
  return PAPI_OK;
}

int PAPI_create_eventset(int* event_set) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  if (event_set == nullptr) return PAPI_EINVAL;
  auto handle = g().library->create_event_set();
  if (!handle.ok()) return to_code(handle.error());
  *event_set = handle.value();
  return PAPI_OK;
}

int PAPI_destroy_eventset(int* event_set) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  if (event_set == nullptr) return PAPI_EINVAL;
  const Status s = g().library->destroy_event_set(*event_set);
  if (s.ok()) {
    const std::lock_guard<std::mutex> lock(g().bridge_mutex);
    g().profil_states.erase(*event_set);
    g().overflow_handlers.erase(*event_set);
    *event_set = PAPI_NULL;
  }
  return to_code(s);
}

namespace {
papirepro::Result<papi::EventSet*> lookup(int event_set) {
  if (g().library == nullptr) return Error::kNoInit;
  return g().library->event_set(event_set);
}
}  // namespace

int PAPI_add_event(int event_set, int event_code) {
  auto set = lookup(event_set);
  if (!set.ok()) return to_code(set.error());
  const auto id = decode_event(event_code);
  if (!id) return PAPI_ENOEVNT;
  return to_code(set.value()->add_event(*id));
}

int PAPI_add_named_event(int event_set, const char* name) {
  auto set = lookup(event_set);
  if (!set.ok()) return to_code(set.error());
  if (name == nullptr) return PAPI_EINVAL;
  return to_code(set.value()->add_named(name));
}

int PAPI_remove_event(int event_set, int event_code) {
  auto set = lookup(event_set);
  if (!set.ok()) return to_code(set.error());
  const auto id = decode_event(event_code);
  if (!id) return PAPI_ENOEVNT;
  return to_code(set.value()->remove_event(*id));
}

int PAPI_num_events(int event_set) {
  auto set = lookup(event_set);
  if (!set.ok()) return to_code(set.error());
  return static_cast<int>(set.value()->num_events());
}

int PAPI_set_multiplex(int event_set) {
  auto set = lookup(event_set);
  if (!set.ok()) return to_code(set.error());
  return to_code(set.value()->enable_multiplex());
}

int PAPI_set_domain(int event_set, int domain) {
  auto set = lookup(event_set);
  if (!set.ok()) return to_code(set.error());
  return to_code(
      set.value()->set_domain(static_cast<std::uint32_t>(domain)));
}

int PAPI_start(int event_set) {
  auto set = lookup(event_set);
  if (!set.ok()) return to_code(set.error());
  return to_code(set.value()->start());
}

int PAPI_stop(int event_set, long long* values) {
  auto set = lookup(event_set);
  if (!set.ok()) return to_code(set.error());
  std::span<long long> out;
  if (values != nullptr) {
    out = {values, set.value()->num_events()};
  }
  const Status s = set.value()->stop(out);
  if (s.ok()) flush_profil(event_set);
  return to_code(s);
}

int PAPI_read(int event_set, long long* values) {
  auto set = lookup(event_set);
  if (!set.ok()) return to_code(set.error());
  if (values == nullptr) return PAPI_EINVAL;
  return to_code(
      set.value()->read({values, set.value()->num_events()}));
}

int PAPIrepro_read_ex(int event_set, long long* values, int* flags) {
  auto set = lookup(event_set);
  if (!set.ok()) return to_code(set.error());
  if (values == nullptr || flags == nullptr) return PAPI_EINVAL;
  static_assert(sizeof(int) == sizeof(std::uint32_t),
                "flag marshalling assumes 32-bit int");
  const std::size_t n = set.value()->num_events();
  return to_code(set.value()->read_ex(
      {values, n}, {reinterpret_cast<std::uint32_t*>(flags), n}));
}

int PAPIrepro_read_many(const int* event_sets, int count, long long* values,
                        int values_capacity,
                        PAPIrepro_snapshot_t* entries) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  if (event_sets == nullptr || values == nullptr || entries == nullptr ||
      count <= 0 || values_capacity < 0) {
    return PAPI_EINVAL;
  }
  // Marshalling scratch is thread-local and reused: steady-state calls
  // allocate nothing once the capacity is warm.
  thread_local std::vector<papi::SnapshotEntry> scratch;
  scratch.assign(static_cast<std::size_t>(count), {});
  const Status s = g().library->read_many_handles(
      {event_sets, static_cast<std::size_t>(count)},
      {values, static_cast<std::size_t>(values_capacity)}, scratch);
  if (!s.ok()) return to_code(s);
  for (int i = 0; i < count; ++i) {
    entries[i].event_set = scratch[i].handle;
    entries[i].first_value = static_cast<int>(scratch[i].first_value);
    entries[i].num_values = static_cast<int>(scratch[i].num_values);
    entries[i].status = to_code(scratch[i].status);
    entries[i].flags = static_cast<int>(scratch[i].flags);
    entries[i].pub_cycles = static_cast<long long>(scratch[i].pub_cycles);
  }
  return PAPI_OK;
}

int PAPIrepro_snapshot_all(PAPIrepro_snapshot_t* entries, int max_entries,
                           long long* values, int values_capacity) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  if (entries == nullptr || values == nullptr || max_entries < 0 ||
      values_capacity < 0) {
    return PAPI_EINVAL;
  }
  thread_local std::vector<papi::SnapshotEntry> scratch;
  scratch.assign(static_cast<std::size_t>(max_entries), {});
  std::size_t entries_used = 0;
  const Status s = g().library->snapshot_all(
      {scratch.data(), static_cast<std::size_t>(max_entries)},
      {values, static_cast<std::size_t>(values_capacity)}, &entries_used,
      nullptr);
  if (!s.ok()) return to_code(s);
  for (std::size_t i = 0; i < entries_used; ++i) {
    entries[i].event_set = scratch[i].handle;
    entries[i].first_value = static_cast<int>(scratch[i].first_value);
    entries[i].num_values = static_cast<int>(scratch[i].num_values);
    entries[i].status = to_code(scratch[i].status);
    entries[i].flags = static_cast<int>(scratch[i].flags);
    entries[i].pub_cycles = static_cast<long long>(scratch[i].pub_cycles);
  }
  return static_cast<int>(entries_used);
}

}  /* extern "C" */

namespace {

namespace aggregate = papirepro::aggregate;

/// One C-visible collector: the reducer, its seqlock-published region,
/// and cursors for attributing stat deltas to the library's telemetry.
/// The Collector itself holds no telemetry pointer — the library may be
/// shut down and re-initialized while collectors live, so attribution
/// happens by delta at each call instead of through a stored registry.
struct CollectorState {
  explicit CollectorState(const aggregate::CollectorConfig& config)
      : collector(config) {}
  aggregate::Collector collector;
  aggregate::SharedSnapshotRegion region;
  /// Serializes ingest/reduce (the Collector is single-writer; the
  /// region handles concurrent readers on its own).
  std::mutex writer_mutex;
  std::uint64_t frames_attributed = 0;
  std::uint64_t errors_attributed = 0;
  std::uint64_t reductions_attributed = 0;
};

struct CollectorRegistry {
  std::mutex mutex;
  std::map<int, std::shared_ptr<CollectorState>> map;
  int next_handle = 0;
};

CollectorRegistry& collectors() {
  static CollectorRegistry r;
  return r;
}

std::shared_ptr<CollectorState> find_collector(int handle) {
  const std::lock_guard<std::mutex> lock(collectors().mutex);
  auto it = collectors().map.find(handle);
  return it == collectors().map.end() ? nullptr : it->second;
}

/// Forwards stat growth since the last call into the library registry
/// (call with writer_mutex held).  No-op while the library is down; the
/// deltas simply attribute at the first call after the next init.
void attribute_collector_telemetry(CollectorState& cs) {
  if (g().library == nullptr) return;
  papi::TelemetryRegistry& t = g().library->telemetry();
  const aggregate::CollectorStats& st = cs.collector.stats();
  if (st.frames > cs.frames_attributed) {
    t.bump(papi::TelemetryCounter::kCollectorFrames,
           st.frames - cs.frames_attributed);
  }
  if (st.decode_errors > cs.errors_attributed) {
    t.bump(papi::TelemetryCounter::kCollectorDecodeErrors,
           st.decode_errors - cs.errors_attributed);
  }
  if (st.reductions > cs.reductions_attributed) {
    t.bump(papi::TelemetryCounter::kCollectorReductions,
           st.reductions - cs.reductions_attributed);
  }
  cs.frames_attributed = st.frames;
  cs.errors_attributed = st.decode_errors;
  cs.reductions_attributed = st.reductions;
}

void fill_metric(const aggregate::MetricStats& in,
                 PAPIrepro_metric_stats_t& out) {
  out.min = in.min;
  out.max = in.max;
  out.sum = in.sum;
  out.avg = in.avg;
  out.count = static_cast<long long>(in.count);
  out.p50 = static_cast<long long>(in.p50);
  out.p95 = static_cast<long long>(in.p95);
  out.p99 = static_cast<long long>(in.p99);
}

void fill_view(const aggregate::ClusterReduction& in,
               PAPIrepro_cluster_view_t& out) {
  out.now_cycles = static_cast<long long>(in.now_cycles);
  out.reduce_count = static_cast<long long>(in.reduce_count);
  out.ranks_live = static_cast<int>(in.ranks_live);
  out.ranks_stale = static_cast<int>(in.ranks_stale);
  out.num_metrics = static_cast<int>(in.num_metrics);
  for (std::uint32_t i = 0;
       i < in.num_metrics && i < PAPIREPRO_COLLECTOR_MAX_METRICS; ++i) {
    fill_metric(in.metrics[i], out.metrics[i]);
  }
}

}  // namespace

extern "C" {

int PAPIrepro_collector_create(
    const PAPIrepro_collector_config_t* config) {
  aggregate::CollectorConfig cc;
  if (config != nullptr) {
    if (config->max_ranks > 0) {
      cc.max_ranks = static_cast<std::uint32_t>(config->max_ranks);
    }
    if (config->ranks_per_node > 0) {
      cc.ranks_per_node =
          static_cast<std::uint32_t>(config->ranks_per_node);
    }
    if (config->num_metrics > 0) {
      cc.num_metrics = static_cast<std::uint32_t>(config->num_metrics);
    }
    if (config->max_age_cycles > 0) {
      cc.max_age_cycles =
          static_cast<std::uint64_t>(config->max_age_cycles);
    }
    if (config->stale_reduce_rounds > 0) {
      cc.stale_reduce_rounds =
          static_cast<std::uint32_t>(config->stale_reduce_rounds);
    }
  }
  std::shared_ptr<CollectorState> state;
  try {
    state = std::make_shared<CollectorState>(cc);
  } catch (const std::bad_alloc&) {
    return PAPI_ENOMEM;
  }
  const std::lock_guard<std::mutex> lock(collectors().mutex);
  const int handle = collectors().next_handle++;
  collectors().map.emplace(handle, std::move(state));
  return handle;
}

int PAPIrepro_collector_destroy(int collector) {
  const std::lock_guard<std::mutex> lock(collectors().mutex);
  return collectors().map.erase(collector) != 0 ? PAPI_OK : PAPI_ENOEVST;
}

int PAPIrepro_collector_ingest(int collector, const void* buf,
                               long long len) {
  if (len < 0 || (buf == nullptr && len != 0)) return PAPI_EINVAL;
  auto state = find_collector(collector);
  if (state == nullptr) return PAPI_ENOEVST;
  const std::lock_guard<std::mutex> lock(state->writer_mutex);
  const std::size_t accepted = state->collector.ingest(
      {static_cast<const std::uint8_t*>(buf),
       static_cast<std::size_t>(len)});
  attribute_collector_telemetry(*state);
  return static_cast<int>(accepted);
}

int PAPIrepro_collector_reduce(int collector, long long now_cycles,
                               PAPIrepro_cluster_view_t* out) {
  auto state = find_collector(collector);
  if (state == nullptr) return PAPI_ENOEVST;
  const std::lock_guard<std::mutex> lock(state->writer_mutex);
  const aggregate::ClusterReduction& r = state->collector.reduce(
      now_cycles > 0 ? static_cast<std::uint64_t>(now_cycles) : 0u);
  state->region.publish(r);
  attribute_collector_telemetry(*state);
  if (out != nullptr) fill_view(r, *out);
  return PAPI_OK;
}

int PAPIrepro_collector_read(int collector,
                             PAPIrepro_cluster_view_t* out) {
  if (out == nullptr) return PAPI_EINVAL;
  auto state = find_collector(collector);
  if (state == nullptr) return PAPI_ENOEVST;
  aggregate::RegionSnapshot snap;
  if (!state->region.read_into(snap)) return PAPI_ESYS;
  out->now_cycles = static_cast<long long>(snap.now_cycles);
  out->reduce_count = static_cast<long long>(snap.reduce_count);
  out->ranks_live = static_cast<int>(snap.ranks_live);
  out->ranks_stale = static_cast<int>(snap.ranks_stale);
  out->num_metrics = static_cast<int>(snap.num_metrics);
  for (std::uint32_t i = 0;
       i < snap.num_metrics && i < PAPIREPRO_COLLECTOR_MAX_METRICS;
       ++i) {
    const aggregate::RegionMetric& m = snap.metrics[i];
    PAPIrepro_metric_stats_t& o = out->metrics[i];
    o.min = m.min;
    o.max = m.max;
    o.sum = m.sum;
    o.avg = m.avg;
    o.count = static_cast<long long>(m.count);
    o.p50 = static_cast<long long>(m.p50);
    o.p95 = static_cast<long long>(m.p95);
    o.p99 = static_cast<long long>(m.p99);
  }
  return PAPI_OK;
}

int PAPIrepro_wire_encode(unsigned int rank, long long frame_cycles,
                          const PAPIrepro_snapshot_t* entries,
                          int num_entries, const long long* values,
                          int num_values, void* out, long long capacity) {
  if (entries == nullptr || out == nullptr || num_entries < 0 ||
      num_values < 0 || capacity < 0 ||
      (values == nullptr && num_values != 0)) {
    return PAPI_EINVAL;
  }
  // Marshal the C snapshot rows back into SnapshotEntry form; scratch
  // is thread-local so steady-state encoding allocates nothing.
  thread_local std::vector<papi::SnapshotEntry> scratch;
  scratch.assign(static_cast<std::size_t>(num_entries), {});
  for (int i = 0; i < num_entries; ++i) {
    scratch[i].handle = entries[i].event_set;
    scratch[i].first_value =
        static_cast<std::uint32_t>(entries[i].first_value);
    scratch[i].num_values =
        static_cast<std::uint32_t>(entries[i].num_values);
    scratch[i].status = static_cast<Error>(entries[i].status);
    scratch[i].flags = static_cast<std::uint32_t>(entries[i].flags);
    scratch[i].pub_cycles =
        static_cast<std::uint64_t>(entries[i].pub_cycles);
  }
  thread_local std::vector<std::uint8_t> frame;
  frame.clear();
  if (!aggregate::encode_frame(
          rank,
          frame_cycles > 0 ? static_cast<std::uint64_t>(frame_cycles) : 0u,
          scratch, {values, static_cast<std::size_t>(num_values)},
          frame)) {
    return PAPI_EINVAL;
  }
  if (frame.size() > static_cast<std::size_t>(capacity)) {
    return PAPI_EINVAL;
  }
  std::memcpy(out, frame.data(), frame.size());
  return static_cast<int>(frame.size());
}

int PAPI_accum(int event_set, long long* values) {
  auto set = lookup(event_set);
  if (!set.ok()) return to_code(set.error());
  if (values == nullptr) return PAPI_EINVAL;
  return to_code(
      set.value()->accum({values, set.value()->num_events()}));
}

int PAPI_reset(int event_set) {
  auto set = lookup(event_set);
  if (!set.ok()) return to_code(set.error());
  return to_code(set.value()->reset());
}

int PAPIrepro_overhead_ratio(int event_set, double* out) {
  if (out == nullptr) return PAPI_EINVAL;
  auto set = lookup(event_set);
  if (!set.ok()) return to_code(set.error());
  *out = set.value()->overhead_ratio();
  return PAPI_OK;
}

int PAPI_overflow(int event_set, int event_code, int threshold,
                  int /*flags*/, PAPI_overflow_handler_t handler) {
  auto set = lookup(event_set);
  if (!set.ok()) return to_code(set.error());
  const auto id = decode_event(event_code);
  if (!id) return PAPI_ENOEVNT;
  if (threshold == 0) {
    return to_code(set.value()->clear_overflow(*id));
  }
  if (handler == nullptr || threshold < 0) return PAPI_EINVAL;
  {
    const std::lock_guard<std::mutex> lock(g().bridge_mutex);
    g().overflow_handlers[event_set] = handler;
  }
  return to_code(set.value()->set_overflow(
      *id, static_cast<std::uint64_t>(threshold),
      [event_set](papi::EventSet&, const papi::OverflowEvent& ev) {
        PAPI_overflow_handler_t user = nullptr;
        {
          const std::lock_guard<std::mutex> lock(g().bridge_mutex);
          auto it = g().overflow_handlers.find(event_set);
          if (it == g().overflow_handlers.end()) return;
          user = it->second;
        }
        user(event_set, reinterpret_cast<void*>(ev.pc_observed),
             /*overflow_vector=*/1, nullptr);
      }));
}

int PAPI_profil(unsigned int* buf, unsigned int bufsiz,
                unsigned long long offset, unsigned int scale,
                int event_set, int event_code, int threshold) {
  auto set = lookup(event_set);
  if (!set.ok()) return to_code(set.error());
  const auto id = decode_event(event_code);
  if (!id) return PAPI_ENOEVNT;
  if (threshold == 0) {
    flush_profil(event_set);
    {
      const std::lock_guard<std::mutex> lock(g().bridge_mutex);
      g().profil_states.erase(event_set);
    }
    return to_code(set.value()->profil_stop(*id));
  }
  if (buf == nullptr || bufsiz == 0 || threshold < 0) return PAPI_EINVAL;
  if (scale == 0) scale = 0x4000;  // one bucket per 4-byte instruction
  if (!papi::ProfileBuffer::valid_scale(scale)) return PAPI_EINVAL;

  ProfilState state;
  // Exact SVR4 span: the old bytes-per-bucket form truncated
  // 0x10000 / scale, shrinking the covered range (and, for scales above
  // 0x10000, dividing by zero in release builds).  bufsiz buckets cover
  // bufsiz * 0x10000 / scale bytes.
  const std::uint64_t span =
      (static_cast<std::uint64_t>(bufsiz) << 16) / scale;
  state.buffer =
      std::make_unique<papi::ProfileBuffer>(offset, span, scale);
  state.user_buf = buf;
  state.bufsiz = bufsiz;
  state.event_code = event_code;
  const Status s = set.value()->profil(
      *state.buffer, *id, static_cast<std::uint64_t>(threshold));
  if (!s.ok()) return to_code(s);
  {
    const std::lock_guard<std::mutex> lock(g().bridge_mutex);
    g().profil_states[event_set] = std::move(state);
  }
  return PAPI_OK;
}

long long PAPI_get_real_usec(void) {
  if (g().library == nullptr) return 0;
  return static_cast<long long>(g().library->real_usec());
}

long long PAPI_get_real_cyc(void) {
  if (g().library == nullptr) return 0;
  return static_cast<long long>(g().library->real_cycles());
}

long long PAPI_get_virt_usec(void) {
  if (g().library == nullptr) return 0;
  return static_cast<long long>(g().library->virt_usec());
}

long long PAPI_get_virt_cyc(void) {
  // Virtual time equals real time on the single-process simulated
  // machines; the host substrate scales thread CPU-time to "cycles" the
  // same way it reports them (nanosecond granularity).
  if (g().library == nullptr) return 0;
  return static_cast<long long>(g().library->virt_usec()) * 1000;
}

int PAPI_list_events(int event_set, int* events, int* number) {
  auto set = lookup(event_set);
  if (!set.ok()) return to_code(set.error());
  if (number == nullptr) return PAPI_EINVAL;
  const auto members = set.value()->events();
  if (events != nullptr) {
    const int cap = *number;
    for (int i = 0; i < cap && i < static_cast<int>(members.size());
         ++i) {
      events[i] = static_cast<int>(members[i].code());
    }
  }
  *number = static_cast<int>(members.size());
  return PAPI_OK;
}

int PAPI_state(int event_set, int* status) {
  auto set = lookup(event_set);
  if (!set.ok()) return to_code(set.error());
  if (status == nullptr) return PAPI_EINVAL;
  *status = set.value()->running() ? PAPI_RUNNING : PAPI_STOPPED;
  return PAPI_OK;
}

int PAPI_num_counters(void) { return PAPI_num_hwctrs(); }

int PAPI_start_counters(int* events, int array_len) {
  if (g().high_level == nullptr) return PAPI_ENOINIT;
  if (events == nullptr || array_len <= 0) return PAPI_EINVAL;
  std::vector<papi::EventId> ids;
  ids.reserve(static_cast<std::size_t>(array_len));
  for (int i = 0; i < array_len; ++i) {
    const auto id = decode_event(events[i]);
    if (!id) return PAPI_ENOEVNT;
    ids.push_back(*id);
  }
  return to_code(g().high_level->start_counters(ids));
}

int PAPI_read_counters(long long* values, int array_len) {
  if (g().high_level == nullptr) return PAPI_ENOINIT;
  if (values == nullptr || array_len <= 0) return PAPI_EINVAL;
  return to_code(g().high_level->read_counters(
      {values, static_cast<std::size_t>(array_len)}));
}

int PAPI_accum_counters(long long* values, int array_len) {
  if (g().high_level == nullptr) return PAPI_ENOINIT;
  if (values == nullptr || array_len <= 0) return PAPI_EINVAL;
  return to_code(g().high_level->accum_counters(
      {values, static_cast<std::size_t>(array_len)}));
}

int PAPI_stop_counters(long long* values, int array_len) {
  if (g().high_level == nullptr) return PAPI_ENOINIT;
  if (values == nullptr || array_len <= 0) return PAPI_EINVAL;
  return to_code(g().high_level->stop_counters(
      {values, static_cast<std::size_t>(array_len)}));
}

int PAPI_flops(float* rtime, float* ptime, long long* flpops,
               float* mflops) {
  if (g().high_level == nullptr) return PAPI_ENOINIT;
  if (rtime == nullptr || ptime == nullptr || flpops == nullptr ||
      mflops == nullptr) {
    return PAPI_EINVAL;
  }
  auto info = g().high_level->flops();
  if (!info.ok()) return to_code(info.error());
  *rtime = static_cast<float>(info.value().real_time_s);
  *ptime = static_cast<float>(info.value().proc_time_s);
  *flpops = info.value().flops;
  *mflops = static_cast<float>(info.value().mflops);
  return PAPI_OK;
}

int PAPI_ipc(float* rtime, float* ptime, long long* ins, float* ipc) {
  if (g().high_level == nullptr) return PAPI_ENOINIT;
  if (rtime == nullptr || ptime == nullptr || ins == nullptr ||
      ipc == nullptr) {
    return PAPI_EINVAL;
  }
  auto info = g().high_level->ipc();
  if (!info.ok()) return to_code(info.error());
  *rtime = static_cast<float>(info.value().real_time_s);
  *ptime = static_cast<float>(info.value().proc_time_s);
  *ins = info.value().instructions;
  *ipc = static_cast<float>(info.value().ipc);
  return PAPI_OK;
}

int PAPI_get_memory_info(PAPI_mem_info_t* info) {
  if (g().library == nullptr) return PAPI_ENOINIT;
  if (info == nullptr) return PAPI_EINVAL;
  auto mem = g().library->memory_info();
  if (!mem.ok()) return to_code(mem.error());
  info->total_bytes = static_cast<long long>(mem.value().total_bytes);
  info->available_bytes =
      static_cast<long long>(mem.value().available_bytes);
  info->process_resident_bytes =
      static_cast<long long>(mem.value().process_resident_bytes);
  info->process_peak_bytes =
      static_cast<long long>(mem.value().process_peak_bytes);
  info->page_size_bytes =
      static_cast<long long>(mem.value().page_size_bytes);
  info->page_faults = static_cast<long long>(mem.value().page_faults);
  return PAPI_OK;
}

}  // extern "C"
