#include "pmu/sampling.h"

#include <cassert>

namespace papirepro::pmu {

ProfileMeEngine::ProfileMeEngine(sim::Machine& machine,
                                 std::span<const sim::SimEvent> tracked,
                                 std::uint64_t period_mean,
                                 std::uint64_t seed,
                                 std::uint64_t sample_cost_cycles)
    : machine_(machine),
      period_mean_(period_mean),
      sample_cost_cycles_(sample_cost_cycles),
      rng_(seed) {
  assert(period_mean > 0);
  assert(tracked.size() <= kMaxTracked);
  num_tracked_ = tracked.size();
  tracked_of_signal_.fill(-1);
  for (std::size_t i = 0; i < num_tracked_; ++i) {
    tracked_[i] = tracked[i];
    tracked_of_signal_[static_cast<std::size_t>(tracked[i])] =
        static_cast<int>(i);
  }
  countdown_ = draw_gap();
  machine_.add_listener(this);
}

ProfileMeEngine::~ProfileMeEngine() { machine_.remove_listener(this); }

void ProfileMeEngine::start() { enabled_ = true; }

void ProfileMeEngine::stop() {
  finalize_instruction();
  enabled_ = false;
}

std::uint64_t ProfileMeEngine::draw_gap() {
  // Randomized interval in [period/2, 3*period/2): mean = period, enough
  // jitter to avoid lock-step with loop bodies (the classic sampling
  // aliasing hazard).
  const std::uint64_t half = period_mean_ / 2;
  return half + rng_.next_below(period_mean_ == 1 ? 1 : period_mean_) + 1;
}

void ProfileMeEngine::begin_instruction(const sim::EventContext& ctx) {
  finalize_instruction();
  have_current_ = true;
  current_seq_ = ctx.seq;
  ++instructions_;
  if (countdown_ > 0) --countdown_;
  current_selected_ = countdown_ == 0;
  if (current_selected_) {
    countdown_ = draw_gap();
    current_ = Sample{.pc = ctx.pc};
  }
}

void ProfileMeEngine::finalize_instruction() {
  if (!have_current_ || !current_selected_) {
    have_current_ = false;
    return;
  }
  have_current_ = false;
  current_selected_ = false;
  samples_.push_back(current_);
  for (std::size_t i = 0; i < num_tracked_; ++i) {
    sampled_weight_sums_[i] += current_.weights[i];
  }
  if (sample_cost_cycles_ > 0) {
    // The charge raises a cycle event that would re-enter on_event and
    // be mistaken for a new instruction; guard against observing our own
    // bookkeeping cost.
    in_self_charge_ = true;
    machine_.charge_cycles(sample_cost_cycles_);
    in_self_charge_ = false;
  }
}

void ProfileMeEngine::on_event(sim::SimEvent event, std::uint64_t weight,
                               const sim::EventContext& ctx) {
  if (!enabled_ || in_self_charge_) return;
  if (!have_current_ || ctx.seq != current_seq_) begin_instruction(ctx);
  if (!current_selected_) return;
  if (ctx.has_addr && !current_.has_addr) {
    current_.addr = ctx.addr;
    current_.has_addr = true;
  }
  const int t = tracked_of_signal_[static_cast<std::size_t>(event)];
  if (t >= 0) {
    current_.weights[static_cast<std::size_t>(t)] +=
        static_cast<std::uint32_t>(weight);
  }
}

double ProfileMeEngine::estimate(std::size_t tracked_index) const {
  assert(tracked_index < num_tracked_);
  if (samples_.empty()) return 0.0;
  // Two expansion factors:
  //  - self-normalizing (observed instructions / observed samples) is
  //    the better estimator once there are enough samples, because it
  //    corrects for any drift in the realized sampling rate;
  //  - below that, the ratio estimator's small-sample bias (E[1/M] >
  //    1/E[M]) dominates, so use the fixed inverse inclusion
  //    probability — the configured mean gap — which is unbiased for a
  //    continuously running sampling stream.
  constexpr std::size_t kSelfNormalizeThreshold = 200;
  const double expansion =
      samples_.size() >= kSelfNormalizeThreshold
          ? static_cast<double>(instructions_) /
                static_cast<double>(samples_.size())
          : static_cast<double>(period_mean_) + 0.5;
  return static_cast<double>(sampled_weight_sums_[tracked_index]) *
         expansion;
}

std::uint64_t ProfileMeEngine::sampled_weight(
    std::size_t tracked_index) const {
  assert(tracked_index < num_tracked_);
  return sampled_weight_sums_[tracked_index];
}

void ProfileMeEngine::reset() {
  instructions_ = 0;
  samples_.clear();
  sampled_weight_sums_.fill(0);
  have_current_ = false;
  current_selected_ = false;
  // Deliberately keep the in-flight countdown: resets delimit counting
  // windows (multiplex slices), and the sampling stream must stay
  // stationary across them — redrawing would leave the early part of
  // every window unsampleable and bias window estimates low.
}

}  // namespace papirepro::pmu
