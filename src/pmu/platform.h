// Platform descriptions: everything machine-dependent about a simulated
// counter architecture — counter file width, native event table,
// allocation constraints (masks or groups), sampling capabilities
// (EAR / ProfileMe), interrupt skid, and the substrate cost model
// (simulated cycles per counter-interface call).  The four platforms
// mirror the four interface styles the paper discusses:
//
//   sim-x86     Linux/x86 kernel-patch style: 4 counters with
//               per-counter event constraints, out-of-order skid,
//               moderately expensive system calls.
//   sim-power3  IBM pmtoolkit style: 8 counters allocated in fixed
//               groups; FP-instruction event includes convert/rounding
//               instructions (the Section 4 discrepancy).
//   sim-ia64    Itanium style: 4 counters plus Event Address Registers
//               that capture precise instruction/data addresses.
//   sim-alpha   Alpha/Tru64 DCPI/DADD style: only 2 counters but a
//               ProfileMe engine that randomly samples in-flight
//               instructions, supports precise profiling and
//               estimating aggregate counts from samples at 1-2 %
//               overhead.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "pmu/native_event.h"
#include "sim/machine.h"
#include "sim/skid.h"

namespace papirepro::pmu {

struct SamplingCaps {
  bool has_ear = false;        ///< precise event address registers
  bool has_profileme = false;  ///< random in-flight instruction sampling
};

/// Substrate cost model, in simulated cycles.  These reproduce the
/// overhead findings: reads are system calls that also pollute the data
/// cache; overflow interrupts cost handler cycles.
struct CostModel {
  std::uint64_t read_cost_cycles = 2500;
  std::uint64_t start_stop_cost_cycles = 3500;
  std::uint64_t overflow_handler_cost_cycles = 4000;
  /// Charged instead of the handler cost when overflow delivery is
  /// deferred (OverflowDeliveryMode::kDeferred): the interrupt only
  /// captures the PC into a sample ring, so the counting thread pays
  /// the trap-plus-enqueue price while dispatch runs elsewhere.
  std::uint64_t overflow_enqueue_cost_cycles = 400;
  std::uint32_t read_pollute_lines = 32;
  /// ProfileMe per-sample retirement cost (tiny: hardware-assisted).
  std::uint64_t sample_cost_cycles = 15;
};

struct PlatformDescription {
  std::string name;
  std::string vendor_interface;  ///< which 2003 interface style it mirrors
  std::uint32_t num_counters = 4;
  std::vector<NativeEvent> events;
  /// Non-empty => group-constrained platform: a programming must pick one
  /// group, and every requested event must occupy its slot in that group.
  std::vector<CounterGroup> groups;
  SamplingCaps sampling;
  sim::SkidModel skid = sim::SkidModel::precise();
  CostModel costs;
  sim::MachineConfig machine;

  bool group_constrained() const noexcept { return !groups.empty(); }

  const NativeEvent* find_event(NativeEventCode code) const noexcept;
  const NativeEvent* find_event(std::string_view name) const noexcept;
};

/// Built-in platforms (static lifetime, thread-safe initialization).
const PlatformDescription& sim_x86();
const PlatformDescription& sim_power3();
const PlatformDescription& sim_ia64();
const PlatformDescription& sim_alpha();
const PlatformDescription& sim_t3e();

const std::vector<const PlatformDescription*>& all_platforms();
const PlatformDescription* find_platform(std::string_view name);

}  // namespace papirepro::pmu
