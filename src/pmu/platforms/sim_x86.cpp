// sim-x86: models the Linux/x86 kernel-patch substrate.  Four physical
// counters with per-counter event constraints (cache events on the low
// counters, FP/branch events on the high counters, L2 on counter 0
// only), deep out-of-order skid on overflow interrupts, and a
// system-call cost per counter access — the substrate style whose direct
// counting overhead the paper measured at up to 30 %.
#include "pmu/platform.h"

using papirepro::sim::SimEvent;

namespace papirepro::pmu {
namespace {

constexpr std::uint32_t kAll = 0b1111;
constexpr std::uint32_t kLow = 0b0011;   // counters 0,1
constexpr std::uint32_t kHigh = 0b1100;  // counters 2,3

PlatformDescription make() {
  PlatformDescription p;
  p.name = "sim-x86";
  p.vendor_interface = "Linux/x86 kernel patch (perfctr-style)";
  p.num_counters = 4;
  p.sampling = {};  // no hardware sampling assist
  p.skid = sim::SkidModel::out_of_order(/*p=*/0.3, /*cap=*/24, /*min=*/3);
  p.costs = {.read_cost_cycles = 2500,
             .start_stop_cost_cycles = 3800,
             .overflow_handler_cost_cycles = 4500,
             .overflow_enqueue_cost_cycles = 420,
             .read_pollute_lines = 48,
             .sample_cost_cycles = 0};

  std::uint32_t code = 0x100;
  auto ev = [&](std::string name, std::string desc,
                std::vector<SignalTerm> terms, std::uint32_t mask) {
    p.events.push_back({code++, std::move(name), std::move(desc),
                        std::move(terms), mask});
  };

  ev("CPU_CLK_UNHALTED", "Unhalted core cycles",
     {{SimEvent::kCycles, 1}}, kAll);
  ev("INST_RETIRED", "Instructions retired",
     {{SimEvent::kInstructions, 1}}, kAll);
  // FMA retires as ONE floating point operation natively; the PAPI
  // high-level flops call multiplies FMA contributions by two.
  ev("FP_OPS_RETIRED", "Floating point operations retired",
     {{SimEvent::kFpAdd, 1},
      {SimEvent::kFpMul, 1},
      {SimEvent::kFpFma, 1},
      {SimEvent::kFpDiv, 1},
      {SimEvent::kFpSqrt, 1}},
     kHigh);
  ev("FP_FMA_RETIRED", "Fused multiply-adds retired",
     {{SimEvent::kFpFma, 1}}, kHigh);
  ev("FP_INS_RETIRED", "All floating point instructions (incl. moves)",
     {{SimEvent::kFpAdd, 1},
      {SimEvent::kFpMul, 1},
      {SimEvent::kFpFma, 1},
      {SimEvent::kFpDiv, 1},
      {SimEvent::kFpSqrt, 1},
      {SimEvent::kFpCvt, 1},
      {SimEvent::kFpMove, 1}},
     kHigh);
  ev("DATA_MEM_REFS", "Loads + stores retired",
     {{SimEvent::kLoadIns, 1}, {SimEvent::kStoreIns, 1}}, kLow);
  ev("LD_RETIRED", "Loads retired", {{SimEvent::kLoadIns, 1}}, kLow);
  ev("ST_RETIRED", "Stores retired", {{SimEvent::kStoreIns, 1}}, kLow);
  ev("L1D_ACCESS", "L1 data cache accesses",
     {{SimEvent::kL1DAccess, 1}}, kLow);
  ev("L1D_MISS", "L1 data cache misses", {{SimEvent::kL1DMiss, 1}}, kLow);
  ev("L1I_MISS", "L1 instruction cache misses",
     {{SimEvent::kL1IMiss, 1}}, kLow);
  ev("L2_ACCESS", "L2 cache accesses", {{SimEvent::kL2Access, 1}}, 0b0001);
  ev("L2_MISS", "L2 cache misses", {{SimEvent::kL2Miss, 1}}, 0b0001);
  ev("DTLB_MISS", "Data TLB misses", {{SimEvent::kDTlbMiss, 1}}, 0b0110);
  ev("ITLB_MISS", "Instruction TLB misses",
     {{SimEvent::kITlbMiss, 1}}, 0b0110);
  ev("BR_INS_RETIRED", "Conditional branches retired",
     {{SimEvent::kBrIns, 1}}, kHigh);
  ev("BR_TAKEN_RETIRED", "Taken branches retired",
     {{SimEvent::kBrTaken, 1}}, kHigh);
  ev("BR_MISP_RETIRED", "Mispredicted branches retired",
     {{SimEvent::kBrMispred, 1}}, kHigh);
  ev("RESOURCE_STALLS", "Stall cycles",
     {{SimEvent::kStallCycles, 1}}, kAll);

  return p;
}

}  // namespace

const PlatformDescription& sim_x86() {
  static const PlatformDescription p = make();
  return p;
}

}  // namespace papirepro::pmu
