// sim-alpha: models the Alpha/Tru64 DCPI-DADD substrate.  Only two
// aggregate counters with a handful of events — the paper notes the
// original Tru64 aggregate interface "included only a handful of events"
// — but a ProfileMe engine that randomly samples in-flight instructions,
// records their precise PC and event state, and lets the substrate both
// profile with exact addresses and *estimate aggregate counts from
// samples* at one-to-two-percent overhead (the DADD measurement in
// Section 4).
#include "pmu/platform.h"

using papirepro::sim::SimEvent;

namespace papirepro::pmu {
namespace {

PlatformDescription make() {
  PlatformDescription p;
  p.name = "sim-alpha";
  p.vendor_interface = "Tru64 DCPI / DADD (ProfileMe)";
  p.num_counters = 2;
  p.sampling = {.has_profileme = true};
  p.skid = sim::SkidModel::out_of_order(/*p=*/0.25, /*cap=*/32, /*min=*/4);
  p.costs = {.read_cost_cycles = 2000,
             .start_stop_cost_cycles = 3000,
             .overflow_handler_cost_cycles = 4200,
             .overflow_enqueue_cost_cycles = 350,
             .read_pollute_lines = 32,
             .sample_cost_cycles = 12};

  std::uint32_t code = 0x400;
  auto ev = [&](std::string name, std::string desc,
                std::vector<SignalTerm> terms) {
    p.events.push_back({code++, std::move(name), std::move(desc),
                        std::move(terms), 0b11});
  };

  ev("CYCLES", "Processor cycles", {{SimEvent::kCycles, 1}});
  ev("RETIRED_INSTRUCTIONS", "Instructions retired",
     {{SimEvent::kInstructions, 1}});
  ev("RETIRED_FP", "FP operate instructions retired",
     {{SimEvent::kFpAdd, 1},
      {SimEvent::kFpMul, 1},
      {SimEvent::kFpFma, 1},
      {SimEvent::kFpDiv, 1},
      {SimEvent::kFpSqrt, 1}});
  ev("BCACHE_MISSES", "Board cache (L2) misses",
     {{SimEvent::kL2Miss, 1}});

  // ProfileMe events: the DADD extension HP made for PAPI ("To make all
  // the ProfileMe events available through PAPI ... Hewlett-Packard
  // engineers extended the Alpha's DCPI interface").  counter_mask 0:
  // not countable on the aggregate counters — serviced exclusively by
  // sample extrapolation when the substrate's estimation mode is on.
  auto pme = [&](std::string name, std::string desc,
                 std::vector<SignalTerm> terms) {
    p.events.push_back({code++, std::move(name), std::move(desc),
                        std::move(terms), 0});
  };
  pme("PME_RETIRED_FP", "Sampled FP operate instructions",
      {{SimEvent::kFpAdd, 1},
       {SimEvent::kFpMul, 1},
       {SimEvent::kFpFma, 1},
       {SimEvent::kFpDiv, 1},
       {SimEvent::kFpSqrt, 1}});
  pme("PME_FMA", "Sampled fused multiply-adds", {{SimEvent::kFpFma, 1}});
  pme("PME_L1D_MISS", "Sampled L1 D-cache misses",
      {{SimEvent::kL1DMiss, 1}});
  pme("PME_DTLB_MISS", "Sampled data TLB misses",
      {{SimEvent::kDTlbMiss, 1}});
  pme("PME_RETIRED_LOADS", "Sampled loads", {{SimEvent::kLoadIns, 1}});
  pme("PME_RETIRED_STORES", "Sampled stores", {{SimEvent::kStoreIns, 1}});
  pme("PME_BR_MISPRED", "Sampled branch mispredictions",
      {{SimEvent::kBrMispred, 1}});
  pme("PME_BR_RETIRED", "Sampled conditional branches",
      {{SimEvent::kBrIns, 1}});

  return p;
}

}  // namespace

const PlatformDescription& sim_alpha() {
  static const PlatformDescription p = make();
  return p;
}

}  // namespace papirepro::pmu
