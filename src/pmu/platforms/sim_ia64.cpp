// sim-ia64: models the Itanium PMU.  Four flexible counters and Event
// Address Registers (EARs) that "accurately identify the instruction and
// data addresses for some events" (Section 4) — cache-miss and TLB-miss
// overflow profiling is precise, while plain interrupts still carry a
// small fixed delivery skid.
#include "pmu/platform.h"

using papirepro::sim::SimEvent;

namespace papirepro::pmu {
namespace {

constexpr std::uint32_t kAll = 0b1111;

PlatformDescription make() {
  PlatformDescription p;
  p.name = "sim-ia64";
  p.vendor_interface = "Itanium perfmon with EARs";
  p.num_counters = 4;
  p.sampling = {.has_ear = true};
  p.skid = sim::SkidModel::fixed_skid(6);
  p.costs = {.read_cost_cycles = 2200,
             .start_stop_cost_cycles = 3200,
             .overflow_handler_cost_cycles = 4000,
             .overflow_enqueue_cost_cycles = 360,
             .read_pollute_lines = 40,
             .sample_cost_cycles = 0};

  std::uint32_t code = 0x300;
  auto ev = [&](std::string name, std::string desc,
                std::vector<SignalTerm> terms,
                std::uint32_t mask = kAll) {
    p.events.push_back({code++, std::move(name), std::move(desc),
                        std::move(terms), mask});
  };

  ev("CPU_CYCLES", "CPU cycles", {{SimEvent::kCycles, 1}});
  ev("IA64_INST_RETIRED", "Instructions retired",
     {{SimEvent::kInstructions, 1}});
  ev("FP_OPS_RETIRED", "FP operations retired (FMA counts once)",
     {{SimEvent::kFpAdd, 1},
      {SimEvent::kFpMul, 1},
      {SimEvent::kFpFma, 1},
      {SimEvent::kFpDiv, 1},
      {SimEvent::kFpSqrt, 1}});
  ev("FP_FMA_RETIRED", "Fused multiply-adds retired",
     {{SimEvent::kFpFma, 1}});
  ev("LOADS_RETIRED", "Loads retired", {{SimEvent::kLoadIns, 1}});
  ev("STORES_RETIRED", "Stores retired", {{SimEvent::kStoreIns, 1}});
  ev("L1D_READS", "L1 data cache accesses",
     {{SimEvent::kL1DAccess, 1}}, 0b0111);
  ev("L1D_READ_MISSES", "L1 data cache misses (EAR-capable)",
     {{SimEvent::kL1DMiss, 1}}, 0b0111);
  ev("L1I_MISSES", "L1 instruction cache misses",
     {{SimEvent::kL1IMiss, 1}}, 0b0111);
  ev("L2_REFERENCES", "L2 references", {{SimEvent::kL2Access, 1}}, 0b0011);
  ev("L2_MISSES", "L2 misses", {{SimEvent::kL2Miss, 1}}, 0b0011);
  ev("DTLB_MISSES", "Data TLB misses (EAR-capable)",
     {{SimEvent::kDTlbMiss, 1}}, 0b0110);
  ev("ITLB_MISSES", "Instruction TLB misses",
     {{SimEvent::kITlbMiss, 1}}, 0b0110);
  ev("BR_RETIRED", "Conditional branches retired",
     {{SimEvent::kBrIns, 1}});
  ev("BR_MISPRED_DETAIL", "Mispredicted branches",
     {{SimEvent::kBrMispred, 1}});
  ev("BACK_END_BUBBLE", "Stall cycles", {{SimEvent::kStallCycles, 1}});

  return p;
}

}  // namespace

const PlatformDescription& sim_ia64() {
  static const PlatformDescription p = make();
  return p;
}

}  // namespace papirepro::pmu
