// sim-t3e: models the Cray T3E substrate.  The paper singles it out as
// the platform whose counter interface is plain "register level
// operations" — no system call, so reads cost a handful of cycles and
// pollute nothing.  The 21164-style PMU is small (3 counters) and
// strictly in-order (precise interrupts), with a thin event list and no
// sampling assists; the E3/E9 overhead experiments use it as the
// cheap-read extreme.
#include "pmu/platform.h"

using papirepro::sim::SimEvent;

namespace papirepro::pmu {
namespace {

constexpr std::uint32_t kAll3 = 0b111;

PlatformDescription make() {
  PlatformDescription p;
  p.name = "sim-t3e";
  p.vendor_interface = "Cray T3E register-level access (Alpha 21164)";
  p.num_counters = 3;
  p.sampling = {};
  p.skid = sim::SkidModel::precise();  // in-order core
  p.costs = {.read_cost_cycles = 6,   // a couple of register moves
             .start_stop_cost_cycles = 10,
             .overflow_handler_cost_cycles = 2500,
             .overflow_enqueue_cost_cycles = 220,
             .read_pollute_lines = 0,
             .sample_cost_cycles = 0};
  p.machine.frequency_ghz = 0.45;  // 450 MHz EV5

  std::uint32_t code = 0x500;
  auto ev = [&](std::string name, std::string desc,
                std::vector<SignalTerm> terms, std::uint32_t mask) {
    p.events.push_back({code++, std::move(name), std::move(desc),
                        std::move(terms), mask});
  };

  // 21164 style: counter 0 counts cycles or issues, counter 1/2 take the
  // configurable events.
  ev("EV5_CYCLES", "Machine cycles", {{SimEvent::kCycles, 1}}, 0b001);
  ev("EV5_ISSUES", "Instructions issued",
     {{SimEvent::kInstructions, 1}}, kAll3);
  ev("EV5_FLOPS", "FP operate instructions",
     {{SimEvent::kFpAdd, 1},
      {SimEvent::kFpMul, 1},
      {SimEvent::kFpFma, 1},
      {SimEvent::kFpDiv, 1},
      {SimEvent::kFpSqrt, 1}},
     0b110);
  ev("EV5_LOADS", "Load instructions", {{SimEvent::kLoadIns, 1}}, 0b110);
  ev("EV5_STORES", "Store instructions", {{SimEvent::kStoreIns, 1}},
     0b110);
  ev("EV5_DCACHE_MISS", "D-cache misses", {{SimEvent::kL1DMiss, 1}},
     0b110);
  ev("EV5_ICACHE_MISS", "I-cache misses", {{SimEvent::kL1IMiss, 1}},
     0b110);
  ev("EV5_SCACHE_MISS", "Secondary cache misses",
     {{SimEvent::kL2Miss, 1}}, 0b100);
  ev("EV5_BRANCHES", "Conditional branches", {{SimEvent::kBrIns, 1}},
     0b110);
  ev("EV5_BRANCH_MISPR", "Branch mispredictions",
     {{SimEvent::kBrMispred, 1}}, 0b100);
  ev("EV5_DTB_MISS", "Data TB misses", {{SimEvent::kDTlbMiss, 1}},
     0b110);

  return p;
}

}  // namespace

const PlatformDescription& sim_t3e() {
  static const PlatformDescription p = make();
  return p;
}

}  // namespace papirepro::pmu
