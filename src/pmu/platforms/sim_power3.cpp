// sim-power3: models the IBM pmtoolkit/AIX substrate.  Eight physical
// counters that must be programmed as a *group* (a fixed assignment of
// events to counters), and the Section 4 quirk: the FP-instruction event
// PM_FPU_INS also counts the double<->single convert ("extra rounding")
// instructions, and counts an FMA as one instruction — so raw counts
// disagree with expected FLOPs until the PAPI high level normalizes them.
#include "pmu/platform.h"

using papirepro::sim::SimEvent;

namespace papirepro::pmu {
namespace {

PlatformDescription make() {
  PlatformDescription p;
  p.name = "sim-power3";
  p.vendor_interface = "IBM pmtoolkit (AIX)";
  p.num_counters = 8;
  p.sampling = {};
  p.skid = sim::SkidModel::fixed_skid(2);  // modestly pipelined, in-order-ish
  p.costs = {.read_cost_cycles = 1800,
             .start_stop_cost_cycles = 2600,
             .overflow_handler_cost_cycles = 3500,
             .overflow_enqueue_cost_cycles = 320,
             .read_pollute_lines = 24,
             .sample_cost_cycles = 0};
  p.machine.frequency_ghz = 0.375;  // 375 MHz POWER3-II

  std::uint32_t code = 0x200;
  auto ev = [&](std::string name, std::string desc,
                std::vector<SignalTerm> terms) {
    // Counter masks are irrelevant on a group-constrained platform; the
    // group slot decides the counter.
    p.events.push_back({code, std::move(name), std::move(desc),
                        std::move(terms), 0xff});
    return code++;
  };

  const auto cyc = ev("PM_CYC", "Processor cycles", {{SimEvent::kCycles, 1}});
  const auto inst =
      ev("PM_INST_CMPL", "Instructions completed",
         {{SimEvent::kInstructions, 1}});
  // The discrepancy: converts count as FP instructions, FMA counts once.
  const auto fpu_ins =
      ev("PM_FPU_INS", "FPU instructions (includes FP converts/rounds)",
         {{SimEvent::kFpAdd, 1},
          {SimEvent::kFpMul, 1},
          {SimEvent::kFpFma, 1},
          {SimEvent::kFpDiv, 1},
          {SimEvent::kFpSqrt, 1},
          {SimEvent::kFpCvt, 1}});
  const auto fma =
      ev("PM_EXEC_FMA", "Fused multiply-adds executed",
         {{SimEvent::kFpFma, 1}});
  const auto cvt =
      ev("PM_FPU_CVT", "FP precision converts (rounding instructions)",
         {{SimEvent::kFpCvt, 1}});
  const auto fdiv =
      ev("PM_FPU_DIV", "FP divides", {{SimEvent::kFpDiv, 1}});
  const auto ld = ev("PM_LD_CMPL", "Loads completed",
                     {{SimEvent::kLoadIns, 1}});
  const auto st = ev("PM_ST_CMPL", "Stores completed",
                     {{SimEvent::kStoreIns, 1}});
  const auto dc_acc = ev("PM_DC_ACCESS", "L1 D-cache accesses",
                         {{SimEvent::kL1DAccess, 1}});
  const auto dc_miss = ev("PM_DC_MISS", "L1 D-cache misses",
                          {{SimEvent::kL1DMiss, 1}});
  const auto ic_miss = ev("PM_IC_MISS", "L1 I-cache misses",
                          {{SimEvent::kL1IMiss, 1}});
  const auto l2_miss = ev("PM_L2_MISS", "L2 cache misses",
                          {{SimEvent::kL2Miss, 1}});
  const auto dtlb = ev("PM_DTLB_MISS", "Data TLB misses",
                       {{SimEvent::kDTlbMiss, 1}});
  const auto itlb = ev("PM_ITLB_MISS", "Instruction TLB misses",
                       {{SimEvent::kITlbMiss, 1}});
  const auto br = ev("PM_BR_CMPL", "Conditional branches completed",
                     {{SimEvent::kBrIns, 1}});
  const auto br_msp = ev("PM_BR_MPRED", "Branches mispredicted",
                         {{SimEvent::kBrMispred, 1}});
  const auto br_tkn = ev("PM_BR_TAKEN", "Branches taken",
                         {{SimEvent::kBrTaken, 1}});
  const auto stall = ev("PM_STALL_CYC", "Stall cycles",
                        {{SimEvent::kStallCycles, 1}});

  const auto none = kNoNativeEvent;
  auto group = [&](std::uint32_t id, std::string name,
                   std::vector<NativeEventCode> slots) {
    slots.resize(p.num_counters, none);
    p.groups.push_back({id, std::move(name), std::move(slots)});
  };

  group(0, "basic", {cyc, inst, fpu_ins, fma, ld, st, br, br_msp});
  group(1, "cache", {cyc, inst, dc_acc, dc_miss, l2_miss, ic_miss, ld, st});
  group(2, "tlb", {cyc, inst, dtlb, itlb, dc_miss, l2_miss, none, none});
  group(3, "fp", {cyc, inst, fpu_ins, fma, cvt, fdiv, stall, none});
  group(4, "branch", {cyc, inst, br, br_msp, br_tkn, stall, none, none});

  return p;
}

}  // namespace

const PlatformDescription& sim_power3() {
  static const PlatformDescription p = make();
  return p;
}

}  // namespace papirepro::pmu
