#include "pmu/pmu.h"

#include <algorithm>
#include <cassert>

namespace papirepro::pmu {

bool is_ear_signal(sim::SimEvent signal) noexcept {
  switch (signal) {
    case sim::SimEvent::kL1DMiss:
    case sim::SimEvent::kL1IMiss:
    case sim::SimEvent::kL2Miss:
    case sim::SimEvent::kDTlbMiss:
    case sim::SimEvent::kITlbMiss:
      return true;
    default:
      return false;
  }
}

PmuModel::PmuModel(const PlatformDescription& platform,
                   sim::Machine& machine)
    : platform_(platform), machine_(machine) {
  counters_.resize(platform.num_counters);
  machine_.add_listener(this);
}

PmuModel::~PmuModel() { machine_.remove_listener(this); }

Status PmuModel::program(std::span<const NativeEventCode> events,
                         std::span<const std::uint32_t> assignment) {
  if (running_) return Error::kIsRunning;
  if (events.size() != assignment.size()) return Error::kInvalid;
  if (events.size() > platform_.num_counters) return Error::kConflict;

  // Validate before mutating anything.
  std::uint32_t used = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const NativeEvent* ev = platform_.find_event(events[i]);
    if (ev == nullptr) return Error::kNoEvent;
    const std::uint32_t c = assignment[i];
    if (c >= platform_.num_counters) return Error::kInvalid;
    if (used & (1u << c)) return Error::kConflict;
    used |= 1u << c;
    if (!platform_.group_constrained() &&
        (ev->counter_mask & (1u << c)) == 0) {
      return Error::kConflict;
    }
  }
  if (platform_.group_constrained()) {
    const bool some_group_fits = std::any_of(
        platform_.groups.begin(), platform_.groups.end(),
        [&](const CounterGroup& g) {
          for (std::size_t i = 0; i < events.size(); ++i) {
            if (g.slots[assignment[i]] != events[i]) return false;
          }
          return true;
        });
    if (!some_group_fits) return Error::kConflict;
  }

  clear();
  for (std::size_t i = 0; i < events.size(); ++i) {
    Counter& c = counters_[assignment[i]];
    c.event = events[i];
    const NativeEvent* ev = platform_.find_event(events[i]);
    c.ear_capable =
        platform_.sampling.has_ear &&
        std::any_of(ev->terms.begin(), ev->terms.end(),
                    [](const SignalTerm& t) { return is_ear_signal(t.signal); });
  }
  rebuild_dispatch();
  return Error::kOk;
}

void PmuModel::clear() {
  for (auto& c : counters_) c = Counter{};
  for (auto& d : dispatch_) d.clear();
  running_ = false;
}

void PmuModel::rebuild_dispatch() {
  for (auto& d : dispatch_) d.clear();
  for (std::uint32_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i].event == kNoNativeEvent) continue;
    const NativeEvent* ev = platform_.find_event(counters_[i].event);
    assert(ev != nullptr);
    for (const SignalTerm& t : ev->terms) {
      dispatch_[static_cast<std::size_t>(t.signal)].push_back(
          {i, t.multiplier});
    }
  }
}

Status PmuModel::start() {
  if (running_) return Error::kIsRunning;
  running_ = true;
  return Error::kOk;
}

Status PmuModel::stop() {
  if (!running_) return Error::kNotRunning;
  running_ = false;
  return Error::kOk;
}

void PmuModel::reset_counts() {
  for (auto& c : counters_) {
    c.value = 0;
    if (c.overflow_threshold > 0) c.next_overflow_at = c.overflow_threshold;
  }
}

Status PmuModel::set_overflow(std::uint32_t idx, std::uint64_t threshold,
                              OverflowHandler handler) {
  if (idx >= counters_.size() || threshold == 0 || !handler) {
    return Error::kInvalid;
  }
  if (counters_[idx].event == kNoNativeEvent) return Error::kNoEvent;
  Counter& c = counters_[idx];
  c.overflow_threshold = threshold;
  c.next_overflow_at = c.value + threshold;
  c.handler = std::move(handler);
  return Error::kOk;
}

Status PmuModel::clear_overflow(std::uint32_t idx) {
  if (idx >= counters_.size()) return Error::kInvalid;
  counters_[idx].overflow_threshold = 0;
  counters_[idx].handler = nullptr;
  return Error::kOk;
}

Status PmuModel::set_domain(std::uint32_t idx,
                            std::uint32_t domain_mask) {
  if (idx >= counters_.size()) return Error::kInvalid;
  if (domain_mask == 0 || (domain_mask & ~0x3u) != 0) {
    return Error::kInvalid;
  }
  counters_[idx].domain_mask = domain_mask;
  return Error::kOk;
}

void PmuModel::on_event(sim::SimEvent event, std::uint64_t weight,
                        const sim::EventContext& ctx) {
  if (!running_) return;
  const std::uint32_t domain_bit = ctx.kernel ? 0x2u : 0x1u;
  const auto& entries = dispatch_[static_cast<std::size_t>(event)];
  for (const DispatchEntry& e : entries) {
    Counter& c = counters_[e.counter];
    if ((c.domain_mask & domain_bit) == 0) continue;
    c.value += static_cast<std::uint64_t>(e.multiplier) * weight;
    if (c.ear_capable && is_ear_signal(event)) {
      c.ear_pc = ctx.pc;
      c.ear_addr = ctx.addr;
      c.ear_valid = true;
    }
    if (c.overflow_threshold > 0 && c.value >= c.next_overflow_at) {
      // Coalesce multiple crossings from one large increment into a
      // single interrupt, as real PMUs do.
      while (c.next_overflow_at <= c.value) {
        c.next_overflow_at += c.overflow_threshold;
      }
      const bool precise = c.ear_capable && c.ear_valid;
      OverflowInfo info{
          .counter = e.counter,
          .pc_skidded = 0,  // filled at delivery
          .pc_precise = precise ? c.ear_pc : ctx.pc,
          .addr = precise ? c.ear_addr : ctx.addr,
          .has_precise = precise,
      };
      const std::uint32_t delay = platform_.skid.draw(machine_.skid_rng());
      // Copy the handler: the counter file may be reprogrammed while the
      // interrupt is still in flight.
      OverflowHandler handler = c.handler;
      machine_.schedule_interrupt(
          delay, ctx.pc,
          [info, handler = std::move(handler)](
              const sim::InterruptContext& ictx) mutable {
            info.pc_skidded = ictx.pc_delivered;
            info.retired = ictx.retired;
            info.cycles = ictx.cycles;
            if (handler) handler(info);
          });
    }
  }
}

}  // namespace papirepro::pmu
