// Native hardware event descriptors.  Each simulated platform exposes its
// own native event namespace — its counters count *these*, and the PAPI
// preset table maps portable preset names onto them (or reports
// Error::kNoEvent where a platform has no equivalent, exactly as the real
// PAPI substrates do).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event.h"

namespace papirepro::pmu {

using NativeEventCode = std::uint32_t;
inline constexpr NativeEventCode kNoNativeEvent = 0xffffffff;

/// One term of a native event definition: the counter increments by
/// `multiplier` each time `signal` fires (times the signal weight).
struct SignalTerm {
  sim::SimEvent signal;
  std::uint32_t multiplier = 1;
};

/// A native event: a named combination of architectural signals plus the
/// constraints on which physical counters can count it.  Quirks live
/// here: sim-power3's PM_FPU_INS includes the kFpCvt signal (the
/// "rounding instructions" discrepancy); platforms differ in whether an
/// FMA increments their FP-operation event by 1 or 2.
struct NativeEvent {
  NativeEventCode code = kNoNativeEvent;
  std::string name;
  std::string description;
  std::vector<SignalTerm> terms;
  /// Bit i set => countable on physical counter i.  Ignored on
  /// group-constrained platforms (the group fixes the counter).
  std::uint32_t counter_mask = 0;
};

/// POWER-style counter group: a fixed assignment of native events to
/// counters that must be programmed as a unit.  slots[i] is the event on
/// physical counter i, or kNoNativeEvent for an idle counter.
struct CounterGroup {
  std::uint32_t id = 0;
  std::string name;
  std::vector<NativeEventCode> slots;
};

}  // namespace papirepro::pmu
