#include "pmu/platform.h"

#include <algorithm>

namespace papirepro::pmu {

const NativeEvent* PlatformDescription::find_event(
    NativeEventCode code) const noexcept {
  for (const auto& e : events) {
    if (e.code == code) return &e;
  }
  return nullptr;
}

const NativeEvent* PlatformDescription::find_event(
    std::string_view name_) const noexcept {
  for (const auto& e : events) {
    if (e.name == name_) return &e;
  }
  return nullptr;
}

const std::vector<const PlatformDescription*>& all_platforms() {
  static const std::vector<const PlatformDescription*> platforms = {
      &sim_x86(), &sim_power3(), &sim_ia64(), &sim_alpha(), &sim_t3e()};
  return platforms;
}

const PlatformDescription* find_platform(std::string_view name) {
  const auto& ps = all_platforms();
  const auto it = std::find_if(ps.begin(), ps.end(), [&](const auto* p) {
    return p->name == name;
  });
  return it == ps.end() ? nullptr : *it;
}

}  // namespace papirepro::pmu
