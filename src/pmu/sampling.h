// ProfileMe-style hardware sampling engine (Alpha 21264 / DCPI / DADD).
// "With hardware sampling, an in-flight instruction is selected at random
// and information about its state is recorded ... The sampling results
// provide a histogram of the profiling data ... In addition, aggregate
// event counts can be estimated from sampling data with lower overhead
// than direct counting." (Section 4.)
//
// The engine listens on the machine's signal bus, groups signals by
// retirement index, randomly selects instructions at a configured mean
// period, records each selected instruction's precise PC/address and the
// weights of a small set of tracked signals, and charges the (tiny)
// per-sample hardware cost.  Aggregate counts are estimated by inverse
// sampling probability.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sim/event.h"
#include "sim/machine.h"

namespace papirepro::pmu {

class ProfileMeEngine final : public sim::EventListener {
 public:
  static constexpr std::size_t kMaxTracked = 8;

  struct Sample {
    std::uint64_t pc = 0;
    std::uint64_t addr = 0;
    bool has_addr = false;
    /// Weight of tracked signal i for the sampled instruction.
    std::array<std::uint32_t, kMaxTracked> weights{};
  };

  /// `period_mean` is the mean instruction gap between samples;
  /// `sample_cost_cycles` is charged to the machine per sample taken.
  ProfileMeEngine(sim::Machine& machine,
                  std::span<const sim::SimEvent> tracked,
                  std::uint64_t period_mean, std::uint64_t seed,
                  std::uint64_t sample_cost_cycles);
  ~ProfileMeEngine() override;

  ProfileMeEngine(const ProfileMeEngine&) = delete;
  ProfileMeEngine& operator=(const ProfileMeEngine&) = delete;

  void start();
  void stop();

  std::uint64_t instructions_observed() const noexcept {
    return instructions_;
  }
  std::uint64_t samples_taken() const noexcept { return samples_.size(); }
  const std::vector<Sample>& samples() const noexcept { return samples_; }
  std::span<const sim::SimEvent> tracked() const noexcept {
    return {tracked_.data(), num_tracked_};
  }

  /// Estimated aggregate count of tracked signal `tracked_index` over the
  /// observed window: sampled weight scaled by the empirical inverse
  /// sampling fraction (self-normalizing; converges as samples grow).
  double estimate(std::size_t tracked_index) const;

  /// Exact sampled weight sum (before expansion), for tests.
  std::uint64_t sampled_weight(std::size_t tracked_index) const;

  void reset();

  // sim::EventListener
  void on_event(sim::SimEvent event, std::uint64_t weight,
                const sim::EventContext& ctx) override;

 private:
  void begin_instruction(const sim::EventContext& ctx);
  void finalize_instruction();
  std::uint64_t draw_gap();

  sim::Machine& machine_;
  std::array<sim::SimEvent, kMaxTracked> tracked_{};
  std::size_t num_tracked_ = 0;
  /// tracked index per signal, or -1.
  std::array<int, sim::kNumSimEvents> tracked_of_signal_{};
  std::uint64_t period_mean_;
  std::uint64_t sample_cost_cycles_;
  Xoshiro256 rng_;

  bool enabled_ = false;
  bool in_self_charge_ = false;
  std::uint64_t instructions_ = 0;
  std::uint64_t countdown_ = 0;
  bool have_current_ = false;
  bool current_selected_ = false;
  std::uint64_t current_seq_ = 0;
  Sample current_{};
  std::vector<Sample> samples_;
  std::array<std::uint64_t, kMaxTracked> sampled_weight_sums_{};
};

}  // namespace papirepro::pmu
