// The performance monitoring unit model: a small file of physical
// counters programmed with native events, incremented from the machine's
// architectural signal bus, with threshold-overflow interrupts delivered
// through the platform's skid model and (on EAR platforms) precise
// event-address capture.  This is the "hardware" the substrate layer
// drives; PAPI never touches it directly.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/status.h"
#include "pmu/platform.h"
#include "sim/event.h"
#include "sim/machine.h"

namespace papirepro::pmu {

/// Delivered to the overflow handler.  `pc_precise` is only meaningful
/// when `has_precise` is set (EAR platforms, EAR-capable events); all
/// handlers also receive the skidded delivery PC, which is what a plain
/// interrupt-driven profiler would see.
struct OverflowInfo {
  std::uint32_t counter = 0;
  std::uint64_t pc_skidded = 0;
  std::uint64_t pc_precise = 0;
  std::uint64_t addr = 0;
  bool has_precise = false;
  std::uint64_t retired = 0;
  std::uint64_t cycles = 0;
};

class PmuModel final : public sim::EventListener {
 public:
  using OverflowHandler = std::function<void(const OverflowInfo&)>;

  PmuModel(const PlatformDescription& platform, sim::Machine& machine);
  ~PmuModel() override;

  PmuModel(const PmuModel&) = delete;
  PmuModel& operator=(const PmuModel&) = delete;

  const PlatformDescription& platform() const noexcept { return platform_; }

  /// Programs the counter file: `assignment[i]` is the physical counter
  /// for `events[i]`.  Validates counter masks (mask platforms) or group
  /// membership (group platforms).  Counters are left stopped and zero.
  Status program(std::span<const NativeEventCode> events,
                 std::span<const std::uint32_t> assignment);

  /// Removes all programmed events, overflow settings, and counts.
  void clear();

  Status start();
  Status stop();
  bool running() const noexcept { return running_; }

  /// Value of physical counter `idx`.  Inline: this sits under every
  /// substrate counter read, and a cross-TU call (plus Result
  /// materialization) would be the single largest cost on that path.
  Result<std::uint64_t> read(std::uint32_t idx) const {
    if (idx >= counters_.size()) return Error::kInvalid;
    return counters_[idx].value;
  }
  void reset_counts();

  /// Arms threshold overflow on physical counter `idx`: `handler` runs
  /// once per `threshold` increments, after the platform skid.
  Status set_overflow(std::uint32_t idx, std::uint64_t threshold,
                      OverflowHandler handler);
  Status clear_overflow(std::uint32_t idx);

  /// Counting domain for physical counter `idx`: bit 0 = user context,
  /// bit 1 = kernel/measurement context (see core/options.h).  Default
  /// is both.
  Status set_domain(std::uint32_t idx, std::uint32_t domain_mask);

  // sim::EventListener
  void on_event(sim::SimEvent event, std::uint64_t weight,
                const sim::EventContext& ctx) override;

 private:
  struct Counter {
    NativeEventCode event = kNoNativeEvent;
    std::uint32_t domain_mask = 0x3;  ///< user | kernel
    std::uint64_t value = 0;
    std::uint64_t overflow_threshold = 0;  ///< 0 = overflow disarmed
    std::uint64_t next_overflow_at = 0;
    OverflowHandler handler;
    bool ear_capable = false;
    std::uint64_t ear_pc = 0;
    std::uint64_t ear_addr = 0;
    bool ear_valid = false;
  };
  struct DispatchEntry {
    std::uint32_t counter;
    std::uint32_t multiplier;
  };

  void rebuild_dispatch();

  const PlatformDescription& platform_;
  sim::Machine& machine_;
  std::vector<Counter> counters_;
  std::array<std::vector<DispatchEntry>, sim::kNumSimEvents> dispatch_;
  bool running_ = false;
};

/// True if `signal` is one the sim-ia64 Event Address Registers capture.
bool is_ear_signal(sim::SimEvent signal) noexcept;

}  // namespace papirepro::pmu
