#include "tools/papirun.h"

#include <algorithm>
#include <iomanip>
#include <memory>
#include <sstream>

#include "core/library.h"
#include "sim/comm.h"
#include "sim/workload_registry.h"
#include "substrate/component_substrates.h"
#include "substrate/sim_substrate.h"

namespace papirepro::tools {

Result<PapirunResult> papirun(const PapirunRequest& request) {
  const pmu::PlatformDescription* platform =
      pmu::find_platform(request.platform);
  if (platform == nullptr) return Error::kInvalid;
  auto workload = sim::make_workload(request.workload, request.n);
  if (!workload.has_value()) return Error::kInvalid;

  sim::Machine machine(workload->program, platform->machine);
  if (workload->setup) workload->setup(machine);
  // Declared before the library: the net component's substrate
  // references the world, so the world must outlive the library.
  sim::CommWorld world({&machine});

  auto substrate_ptr =
      std::make_unique<papi::SimSubstrate>(machine, *platform);
  papi::SimSubstrate* substrate = substrate_ptr.get();
  papi::Library library(std::move(substrate_ptr));
  // papirun is the enumeration tool: register the non-CPU components
  // over the same machine so --list-components shows the full registry
  // and --events accepts namespaced names (mem::BANDWIDTH_RD, ...).
  (void)library.register_component(
      "mem", "simulated memory/uncore bandwidth counters",
      std::make_unique<papi::MemBandwidthSubstrate>(machine));
  (void)library.register_component(
      "net", "simulated network message counters",
      std::make_unique<papi::NetworkSubstrate>(world));

  PapirunResult result;
  for (std::size_t c = 0; c < library.num_components(); ++c) {
    auto info = library.component_info(static_cast<std::uint32_t>(c));
    if (info.ok()) result.components.push_back(info.value().name);
  }
  if (request.list_components) {
    std::ostringstream os;
    os << "components:\n";
    for (std::size_t c = 0; c < library.num_components(); ++c) {
      auto info = library.component_info(static_cast<std::uint32_t>(c));
      if (!info.ok()) continue;
      os << "  " << info.value().id << "  " << std::left << std::setw(6)
         << info.value().name << std::right << std::setw(2)
         << info.value().num_counters << " counters  ("
         << info.value().description << ")\n";
    }
    result.report = os.str();
    return result;
  }
  if (request.use_estimation) {
    // Degradation ladder: estimation service unavailable -> direct
    // counting, flagged in the result and the printed report.
    result.estimation_degraded = !substrate->set_estimation(true).ok();
  }

  const bool defaulted = request.events.empty();
  std::vector<std::string> names = request.events;
  if (defaulted) {
    names = {"PAPI_TOT_CYC", "PAPI_TOT_INS"};
    if (library.query_event(papi::EventId::preset(papi::Preset::kFpOps))) {
      names.push_back("PAPI_FP_OPS");
    }
  }

  auto handle = library.create_event_set();
  if (!handle.ok()) return handle.error();
  papi::EventSet* set = library.event_set(handle.value()).value();

  // Pre-flight each requested event's component: a disabled or
  // quarantined component produces a warning (and, under --strict, a
  // nonzero CLI exit) instead of a silent zero or an opaque failure.
  for (const std::string& name : names) {
    auto id = library.event_from_name(name);
    if (!id.ok()) continue;  // unknown names fail loudly in add_named
    const std::uint32_t comp = id.value().component;
    auto info = library.component_info(comp);
    if (info.ok() && !info.value().enabled) {
      result.warnings.push_back("papirun: component '" +
                                info.value().name + "' for event '" +
                                name + "' is disabled");
    }
    auto health = library.component_health(comp);
    if (health.ok() &&
        health.value().state == papi::HealthState::kQuarantined) {
      result.warnings.push_back(
          "papirun: component '" +
          (info.ok() ? info.value().name : std::to_string(comp)) +
          "' for event '" + name + "' is quarantined");
    }
  }

  std::vector<std::string> added_names;
  for (const std::string& name : names) {
    Status added = set->add_named(name);
    if (added.error() == Error::kConflict && request.allow_multiplex &&
        !set->multiplexed()) {
      // More events than counters: turn on multiplexing (explicitly, per
      // the PAPI rule) and retry.
      PAPIREPRO_RETURN_IF_ERROR(set->enable_multiplex());
      result.multiplexed = true;
      added = set->add_named(name);
    }
    if (!added.ok()) {
      // A default event the platform cannot count (e.g. sampled-only
      // PAPI_FP_OPS on sim-alpha without estimation) is simply dropped;
      // events the user asked for by name fail loudly — except events
      // already warned about (disabled component), which are skipped so
      // the rest of the run proceeds.
      if (defaulted && added.error() == Error::kConflict) continue;
      if (added.error() == Error::kComponentDisabled) continue;
      return added.error();
    }
    added_names.push_back(name);
  }
  names = std::move(added_names);
  if (names.empty()) return Error::kNoEvent;

  const std::uint64_t start_us = library.real_usec();
  PAPIREPRO_RETURN_IF_ERROR(set->start());
  machine.run();
  PAPIREPRO_RETURN_IF_ERROR(set->stop());
  // Gather the finals through the batched snapshot path: stop()
  // published the totals, and one snapshot_all pass returns every set's
  // values (here just ours) without touching the counter contexts.
  std::vector<long long> values(set->num_events(), 0);
  std::vector<papi::SnapshotEntry> snap_entries;
  std::vector<long long> snap_values;
  bool snapped = false;
  if (library.snapshot_all(snap_entries, snap_values).ok()) {
    for (const papi::SnapshotEntry& e : snap_entries) {
      if (e.handle == handle.value() && e.status == Error::kOk &&
          e.num_values == values.size() &&
          (e.flags & papi::read_flag::kNoData) == 0) {
        std::copy(snap_values.begin() + e.first_value,
                  snap_values.begin() + e.first_value + e.num_values,
                  values.begin());
        snapped = true;
        break;
      }
    }
  }
  // Sets wider than the publication window fall back to the classic
  // stopped-snapshot read.
  if (!snapped) PAPIREPRO_RETURN_IF_ERROR(set->read(values));
  result.real_usec = library.real_usec() - start_us;
  result.cycles = machine.cycles();
  result.instructions = machine.retired();
  result.multiplexed = set->multiplexed();
  result.overhead_ratio = set->overhead_ratio();

  // The run report carries the library's own telemetry: how much work
  // the instrumentation did (and cost) alongside what it measured.
  const papi::TelemetrySnapshot telemetry = library.telemetry_snapshot();
  result.telemetry_starts = telemetry.value(papi::TelemetryCounter::kStarts);
  result.telemetry_reads = telemetry.value(papi::TelemetryCounter::kReads);
  result.telemetry_mux_rotations =
      telemetry.value(papi::TelemetryCounter::kMuxRotations);
  result.telemetry_retry_attempts =
      telemetry.value(papi::TelemetryCounter::kRetryAttempts);

  std::ostringstream os;
  os << "papirun: " << request.workload << " on " << platform->name
     << (result.multiplexed ? " (multiplexed)" : "")
     << (result.estimation_degraded
             ? " (estimation unavailable: direct counting)"
             : "")
     << "\n";
  os << "  real time: " << result.real_usec << " us, cycles: "
     << result.cycles << ", instructions: " << result.instructions
     << "\n";
  for (std::size_t i = 0; i < names.size(); ++i) {
    result.counts.emplace_back(names[i], values[i]);
    os << "  " << std::left << std::setw(18) << names[i] << std::right
       << std::setw(16) << values[i] << "\n";
  }
  os << "  telemetry: starts=" << result.telemetry_starts
     << " reads=" << result.telemetry_reads
     << " rotations=" << result.telemetry_mux_rotations
     << " retries=" << result.telemetry_retry_attempts << "\n";
  for (std::size_t c = 0; c < telemetry.num_components &&
                          c < result.components.size();
       ++c) {
    const auto comp = static_cast<std::uint32_t>(c);
    using CC = papi::ComponentCounter;
    const std::uint64_t starts =
        telemetry.component_value(comp, CC::kStarts);
    const std::uint64_t reads =
        telemetry.component_value(comp, CC::kReads);
    if (starts == 0 && reads == 0) continue;
    os << "  component " << result.components[c] << ": starts=" << starts
       << " reads=" << reads << "\n";
  }
  os << "  library overhead: " << std::fixed << std::setprecision(2)
     << result.overhead_ratio * 100.0 << "% of measured window\n";
  if (request.health_report) {
    os << "health:\n";
    for (std::size_t c = 0; c < library.num_components(); ++c) {
      const auto comp = static_cast<std::uint32_t>(c);
      auto health = library.component_health(comp);
      if (!health.ok()) continue;
      const papi::ComponentHealth& h = health.value();
      os << "  " << std::left << std::setw(6)
         << (c < result.components.size() ? result.components[c]
                                          : std::to_string(c))
         << std::right << " state=" << papi::health_state_name(h.state)
         << " quarantines=" << h.quarantines
         << " fail_fasts=" << h.fail_fasts << " probes=" << h.probes
         << " window=" << h.window_failures << "/" << h.window_ops
         << "\n";
    }
  }
  result.report = os.str();
  return result;
}

}  // namespace papirepro::tools
