// dynaprof: the paper's dynamic-instrumentation tool.  "Dynaprof inserts
// instrumentation in the form of probes ... a PAPI probe for collecting
// hardware counter data and a wallclock probe for measuring elapsed
// time."  Real dynaprof patched running executables with DyninstAPI; we
// patch simulated Programs: instrument_program() rewrites the
// instruction stream with kProbe instructions at the entry and exits of
// selected functions (retargeting every branch/call across the
// insertions — the same job Dyninst's relocation does), and
// DynaprofSession drives the run, maintaining a shadow call stack to
// produce per-function inclusive/exclusive metric totals.
//
// Every probe firing reads the counters through the normal substrate
// path, so instrumentation overhead (counter-read system calls, cache
// pollution) lands on the measured program exactly as Section 4
// describes — experiment E9 sweeps it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/library.h"
#include "sim/kernels.h"
#include "sim/program.h"

namespace papirepro::tools {

/// Probe id convention: function i gets entry probe 2*i, exit probe
/// 2*i + 1 (indices into the instrumented program's function table).
constexpr std::int64_t entry_probe_id(std::size_t function_index) {
  return static_cast<std::int64_t>(2 * function_index);
}
constexpr std::int64_t exit_probe_id(std::size_t function_index) {
  return static_cast<std::int64_t>(2 * function_index + 1);
}

/// Rewrites `program`, inserting entry/exit probes around every function
/// whose name appears in `functions` (all functions when empty).
/// Branch targets, call targets, and function boundary records are
/// remapped across the insertions.
sim::Program instrument_program(const sim::Program& program,
                                const std::vector<std::string>& functions);

struct DynaprofOptions {
  /// Functions to instrument; empty = all.
  std::vector<std::string> functions;
  /// Metrics to collect per function (the "papi probe").
  std::vector<papi::EventId> metrics = {
      papi::EventId::preset(papi::Preset::kTotCyc)};
  /// Also collect wallclock elapsed time (the "wallclock probe").
  bool wallclock = true;
  /// Attach-to-running-process mode ("attach to a running executable"):
  /// probes stay inert until this many instructions have retired, so
  /// collection starts mid-run without restarting the application.
  std::uint64_t attach_after_instructions = 0;
};

struct FunctionStats {
  std::string name;
  std::uint64_t calls = 0;
  /// Parallel to DynaprofOptions::metrics.
  std::vector<long long> inclusive;
  std::vector<long long> exclusive;
  std::uint64_t wall_usec_inclusive = 0;
};

class DynaprofSession {
 public:
  DynaprofSession(const sim::Workload& workload,
                  const pmu::PlatformDescription& platform,
                  DynaprofOptions options);

  /// Instruments, runs to completion, and collects per-function stats.
  Status run();

  /// Detaches mid-session (probes become inert again); counts already
  /// collected are kept.  Callable from probe context.
  void detach() { attached_ = false; }
  bool attached() const noexcept { return attached_; }

  const std::vector<FunctionStats>& results() const noexcept {
    return results_;
  }
  const sim::Machine& machine() const noexcept { return *machine_; }
  /// Formatted per-function table (dynaprof's report output).
  std::string report() const;

 private:
  void on_probe(std::int64_t probe_id);

  sim::Workload workload_;
  const pmu::PlatformDescription& platform_;
  DynaprofOptions options_;
  sim::Program instrumented_;
  std::unique_ptr<sim::Machine> machine_;
  std::unique_ptr<papi::Library> library_;
  papi::EventSet* set_ = nullptr;

  struct Frame {
    std::size_t function_index;
    std::vector<long long> values_at_entry;
    std::uint64_t wall_at_entry;
    std::vector<long long> child_accum;
    std::uint64_t wall_child_accum = 0;
  };
  std::vector<Frame> stack_;
  std::vector<FunctionStats> results_;
  bool attached_ = true;
};

}  // namespace papirepro::tools
