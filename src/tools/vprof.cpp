#include "tools/vprof.h"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

namespace papirepro::tools {
namespace {

/// Instruction index for bucket i, or -1 when outside the program.
std::int64_t bucket_instruction(const papi::ProfileBuffer& buffer,
                                const sim::Program& program,
                                std::size_t bucket) {
  const std::uint64_t addr = buffer.bucket_address(bucket);
  if (addr < sim::kTextBase) return -1;
  const std::int64_t idx = sim::address_to_index(addr);
  if (idx < 0 || static_cast<std::size_t>(idx) >= program.size()) return -1;
  return idx;
}

}  // namespace

std::vector<LineProfile> correlate_lines(const papi::ProfileBuffer& buffer,
                                         const sim::Program& program) {
  // Atomic per-cell snapshot: the buffer may still be fed by the async
  // sampling aggregator while a live view correlates it.
  const papi::ProfileBuffer::Snapshot snap = buffer.snapshot();
  std::map<std::uint32_t, std::uint64_t> by_line;
  std::uint64_t in_range = 0;
  for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
    const std::uint32_t n = snap.buckets[b];
    if (n == 0) continue;
    const std::int64_t idx = bucket_instruction(buffer, program, b);
    if (idx < 0) continue;
    by_line[program.line_of(idx)] += n;
    in_range += n;
  }
  std::vector<LineProfile> out;
  out.reserve(by_line.size());
  for (const auto& [line, samples] : by_line) {
    out.push_back({line, samples,
                   in_range > 0 ? static_cast<double>(samples) /
                                      static_cast<double>(in_range)
                                : 0.0});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.samples > b.samples;
  });
  return out;
}

std::vector<FunctionProfile> correlate_functions(
    const papi::ProfileBuffer& buffer, const sim::Program& program) {
  const papi::ProfileBuffer::Snapshot snap = buffer.snapshot();
  std::map<std::string, std::uint64_t> by_func;
  std::uint64_t in_range = 0;
  for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
    const std::uint32_t n = snap.buckets[b];
    if (n == 0) continue;
    const std::int64_t idx = bucket_instruction(buffer, program, b);
    if (idx < 0) continue;
    const sim::Function* f = program.function_at(idx);
    by_func[f != nullptr ? f->name : "<unknown>"] += n;
    in_range += n;
  }
  std::vector<FunctionProfile> out;
  out.reserve(by_func.size());
  for (const auto& [name, samples] : by_func) {
    out.push_back({name, samples,
                   in_range > 0 ? static_cast<double>(samples) /
                                      static_cast<double>(in_range)
                                : 0.0});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.samples > b.samples;
  });
  return out;
}

AttributionAccuracy attribution_accuracy(const papi::ProfileBuffer& buffer,
                                         const sim::Program& program,
                                         std::int64_t expected_index) {
  AttributionAccuracy acc;
  const std::uint32_t expected_line = program.line_of(expected_index);
  const sim::Function* expected_func = program.function_at(expected_index);

  const papi::ProfileBuffer::Snapshot snap = buffer.snapshot();
  std::uint64_t exact = 0, same_line = 0, same_func = 0, total = 0;
  for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
    const std::uint32_t n = snap.buckets[b];
    if (n == 0) continue;
    total += n;
    const std::int64_t idx = bucket_instruction(buffer, program, b);
    if (idx < 0) continue;
    if (idx == expected_index) exact += n;
    if (program.line_of(idx) == expected_line) same_line += n;
    const sim::Function* f = program.function_at(idx);
    if (f != nullptr && f == expected_func) same_func += n;
  }
  total += snap.out_of_range;
  acc.total_samples = total;
  if (total > 0) {
    acc.exact = static_cast<double>(exact) / static_cast<double>(total);
    acc.same_line =
        static_cast<double>(same_line) / static_cast<double>(total);
    acc.same_function =
        static_cast<double>(same_func) / static_cast<double>(total);
  }
  return acc;
}

std::string render_annotated(const papi::ProfileBuffer& buffer,
                             const sim::Program& program,
                             std::uint64_t min_samples) {
  std::ostringstream os;
  os << std::setw(10) << "samples" << "  " << "instruction\n";
  const papi::ProfileBuffer::Snapshot snap = buffer.snapshot();
  for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
    const std::uint32_t n = snap.buckets[b];
    if (n < min_samples) continue;
    const std::int64_t idx = bucket_instruction(buffer, program, b);
    if (idx < 0) continue;
    const sim::Function* f = program.function_at(idx);
    os << std::setw(10) << n << "  " << (f != nullptr ? f->name : "?")
       << "+" << idx << ": " << sim::disassemble(program.at(idx))
       << "  (line " << program.line_of(idx) << ")\n";
  }
  return os.str();
}

}  // namespace papirepro::tools
