// Per-object memory profiling: the last of the PAPI 3 memory-utilization
// wishes in Section 5 — "location of memory used by an object (e.g.,
// array or structure)".  A MemoryProfiler subscribes to the machine's
// data-memory signals and attributes accesses, cache misses, and TLB
// misses to the workload's named data objects, answering "which array is
// missing" rather than just "how many misses happened".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event.h"
#include "sim/kernels.h"
#include "sim/machine.h"

namespace papirepro::tools {

struct RegionStats {
  sim::MemoryRegion region;
  std::uint64_t accesses = 0;   ///< L1D accesses
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t tlb_misses = 0;

  double l1_miss_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(l1_misses) /
                               static_cast<double>(accesses);
  }
};

class MemoryProfiler final : public sim::EventListener {
 public:
  /// Attributes data-memory events to `regions`; anything outside lands
  /// in the synthetic "<other>" bucket.
  MemoryProfiler(sim::Machine& machine,
                 std::vector<sim::MemoryRegion> regions);
  ~MemoryProfiler() override;

  MemoryProfiler(const MemoryProfiler&) = delete;
  MemoryProfiler& operator=(const MemoryProfiler&) = delete;

  /// Per-region stats in registration order; the final entry is the
  /// "<other>" bucket.
  const std::vector<RegionStats>& stats() const noexcept { return stats_; }
  const RegionStats* find(std::string_view name) const noexcept;

  /// Formatted per-object table.
  std::string report() const;

  void reset();

  // sim::EventListener
  void on_event(sim::SimEvent event, std::uint64_t weight,
                const sim::EventContext& ctx) override;

 private:
  int region_of(std::uint64_t addr) const noexcept;

  sim::Machine& machine_;
  std::vector<RegionStats> stats_;
  /// Cache of the last hit region (memory access streams are runs).
  mutable int last_region_ = -1;
};

}  // namespace papirepro::tools
