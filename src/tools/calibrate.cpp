#include "tools/calibrate.h"

#include <cmath>
#include <iomanip>
#include <memory>
#include <sstream>

#include "core/library.h"
#include "substrate/sim_substrate.h"

namespace papirepro::tools {
namespace {

struct Check {
  papi::Preset preset;
  std::optional<std::uint64_t> sim::ExpectedCounts::*field;
};

constexpr Check kChecks[] = {
    {papi::Preset::kFpOps, &sim::ExpectedCounts::flops},
    {papi::Preset::kFmaIns, &sim::ExpectedCounts::fp_fma},
    {papi::Preset::kLdIns, &sim::ExpectedCounts::loads},
    {papi::Preset::kSrIns, &sim::ExpectedCounts::stores},
    {papi::Preset::kBrIns, &sim::ExpectedCounts::branches},
};

}  // namespace

Result<std::vector<CalibrationRow>> calibrate_workload(
    const sim::Workload& workload,
    const pmu::PlatformDescription& platform,
    const CalibrationOptions& options) {
  std::vector<CalibrationRow> rows;

  for (const Check& check : kChecks) {
    const auto expected = workload.expected.*check.field;
    if (!expected.has_value()) continue;

    // Fresh machine per preset: runs must be independent and identical.
    sim::Machine machine(workload.program, platform.machine);
    if (workload.setup) workload.setup(machine);

    auto substrate_ptr =
        std::make_unique<papi::SimSubstrate>(machine, platform);
    papi::SimSubstrate* substrate = substrate_ptr.get();
    papi::Library library(std::move(substrate_ptr));
    bool estimation_degraded = false;
    if (options.use_estimation) {
      // Degradation ladder: if the sampling service refuses, fall back
      // to direct counting rather than abort — flagged per row so the
      // caller never mistakes a degraded run for an estimation one.
      estimation_degraded = !substrate->set_estimation(true).ok();
    }

    auto handle = library.create_event_set();
    if (!handle.ok()) return handle.error();
    auto set = library.event_set(handle.value());
    const Status added = set.value()->add_preset(check.preset);
    if (!added.ok()) continue;  // preset unavailable on this platform

    long long scratch = 0;
    if (options.read_interval_cycles > 0) {
      auto timer = substrate->add_timer(
          options.read_interval_cycles,
          [&set, &scratch] { (void)set.value()->read({&scratch, 1}); });
      if (!timer.ok()) return timer.error();
    }

    PAPIREPRO_RETURN_IF_ERROR(set.value()->start());
    machine.run(options.max_instructions == 0
                    ? std::numeric_limits<std::uint64_t>::max()
                    : options.max_instructions);
    long long value = 0;
    PAPIREPRO_RETURN_IF_ERROR(set.value()->stop({&value, 1}));

    CalibrationRow row;
    row.kernel = workload.name;
    row.event = std::string(papi::preset_name(check.preset));
    row.expected = static_cast<double>(*expected);
    row.measured = static_cast<double>(value);
    row.rel_error = row.expected > 0
                        ? std::abs(row.measured - row.expected) /
                              row.expected
                        : std::abs(row.measured);
    row.overhead_cycles = machine.overhead_cycles();
    row.overhead_fraction =
        machine.cycles() > 0
            ? static_cast<double>(row.overhead_cycles) /
                  static_cast<double>(machine.cycles())
            : 0.0;
    row.estimation_degraded = estimation_degraded;
    rows.push_back(row);
  }
  return rows;
}

std::string render_calibration(const std::vector<CalibrationRow>& rows) {
  std::ostringstream os;
  os << std::left << std::setw(16) << "kernel" << std::setw(14) << "event"
     << std::right << std::setw(14) << "expected" << std::setw(14)
     << "measured" << std::setw(12) << "rel_err" << std::setw(12)
     << "ovh_cyc" << std::setw(10) << "ovh_%" << "\n";
  for (const CalibrationRow& r : rows) {
    os << std::left << std::setw(16) << r.kernel << std::setw(14)
       << r.event << std::right << std::fixed << std::setprecision(0)
       << std::setw(14) << r.expected << std::setw(14) << r.measured
       << std::setprecision(5) << std::setw(12) << r.rel_error
       << std::setprecision(0) << std::setw(12)
       << static_cast<double>(r.overhead_cycles) << std::setprecision(2)
       << std::setw(10) << r.overhead_fraction * 100 << "\n";
  }
  return os.str();
}

}  // namespace papirepro::tools
