#include "tools/perfometer.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace papirepro::tools {

Perfometer::Perfometer(papi::Library& library, papi::EventId metric,
                       std::uint64_t interval_cycles)
    : library_(library),
      metric_(metric),
      interval_cycles_(interval_cycles) {}

Status Perfometer::select_metric(papi::EventId metric) {
  if (running_) return Error::kIsRunning;
  metric_ = metric;
  return Error::kOk;
}

Status Perfometer::start() {
  if (running_) return Error::kIsRunning;
  if (!library_.substrate().supports_multiplex()) {
    return Error::kNoSupport;  // needs the cycle-timer service
  }
  auto handle = library_.create_event_set();
  if (!handle.ok()) return handle.error();
  set_handle_ = handle.value();
  auto set = library_.event_set(set_handle_);
  set_ = set.value();
  PAPIREPRO_RETURN_IF_ERROR(set.value()->add_event(metric_));
  PAPIREPRO_RETURN_IF_ERROR(set.value()->start());

  trace_.clear();
  last_usec_ = library_.real_usec();
  last_value_ = 0;
  auto timer =
      library_.substrate().add_timer(interval_cycles_, [this] { sample(); });
  if (!timer.ok()) {
    (void)set.value()->stop();
    return timer.error();
  }
  timer_id_ = timer.value();
  running_ = true;
  return Error::kOk;
}

void Perfometer::sample() {
  if (!running_ || set_ == nullptr) return;
  // Batched read, span of one: resolves the thread context once and
  // performs no handle lookup or allocation on the timer path.  The
  // timer may fire on a thread other than the one driving the set, in
  // which case the value arrives from the set's publication.
  long long value = 0;
  papi::SnapshotEntry entry;
  if (!papi::EventSet::read_many({&set_, 1}, {&value, 1}, {&entry, 1})
           .ok() ||
      entry.status != Error::kOk) {
    return;
  }
  const std::uint64_t now = library_.real_usec();
  Point p;
  p.usec = now;
  p.value = value;
  const double dt_s = static_cast<double>(now - last_usec_) * 1e-6;
  p.rate_per_sec =
      dt_s > 0 ? static_cast<double>(value - last_value_) / dt_s : 0.0;
  // Live pipeline telemetry rides along with each point, so a trace of
  // a sampled run also shows whether (and when) rings dropped samples.
  // Sourced from the library-wide telemetry snapshot — the same read
  // path every other stats surface uses.
  const papi::TelemetrySnapshot telemetry = library_.telemetry_snapshot();
  p.samples_dispatched =
      telemetry.value(papi::TelemetryCounter::kSamplesDispatched);
  p.samples_dropped =
      telemetry.value(papi::TelemetryCounter::kSamplesDropped);
  trace_.push_back(p);
  last_usec_ = now;
  last_value_ = value;
}

Status Perfometer::stop() {
  if (!running_) return Error::kNotRunning;
  sample();  // final point
  (void)library_.substrate().cancel_timer(timer_id_);
  timer_id_ = -1;
  auto set = library_.event_set(set_handle_);
  if (set.ok()) {
    (void)set.value()->stop();
    (void)library_.destroy_event_set(set_handle_);
  }
  set_handle_ = -1;
  set_ = nullptr;
  running_ = false;
  return Error::kOk;
}

std::string Perfometer::render_ascii(std::size_t width,
                                     std::size_t height) const {
  std::ostringstream os;
  if (trace_.empty() || width == 0 || height == 0) {
    return "(no samples)\n";
  }
  double max_rate = 0;
  for (const Point& p : trace_) max_rate = std::max(max_rate, p.rate_per_sec);
  if (max_rate <= 0) max_rate = 1;

  // Column-compress the trace to `width` buckets (mean rate per column).
  std::vector<double> cols(width, 0.0);
  std::vector<std::size_t> counts(width, 0);
  for (std::size_t i = 0; i < trace_.size(); ++i) {
    const std::size_t c =
        std::min(width - 1, i * width / trace_.size());
    cols[c] += trace_[i].rate_per_sec;
    ++counts[c];
  }
  for (std::size_t c = 0; c < width; ++c) {
    if (counts[c] > 0) cols[c] /= static_cast<double>(counts[c]);
  }

  os << "rate (peak " << std::scientific << std::setprecision(2)
     << max_rate << "/s)\n";
  for (std::size_t row = 0; row < height; ++row) {
    const double level =
        max_rate * static_cast<double>(height - row) /
        static_cast<double>(height);
    os << (row == 0 ? '^' : '|');
    for (std::size_t c = 0; c < width; ++c) {
      os << (cols[c] >= level - max_rate / (2.0 * height) ? '#' : ' ');
    }
    os << "\n";
  }
  os << '+' << std::string(width, '-') << "> time\n";
  return os.str();
}

std::string Perfometer::to_csv() const {
  std::ostringstream os;
  os << "usec,value,rate_per_sec,samples_dispatched,samples_dropped\n";
  for (const Point& p : trace_) {
    os << p.usec << ',' << p.value << ',' << p.rate_per_sec << ','
       << p.samples_dispatched << ',' << p.samples_dropped << "\n";
  }
  return os.str();
}

}  // namespace papirepro::tools
