// perfometer: "Real-time performance monitoring is supported by the
// perfometer tool ... the tool provides a runtime trace of a
// user-selected PAPI metric" (Fig. 2 shows FLOPS over time).  The
// original had a Java front-end fed by a backend linked with PAPI; here
// the backend samples a metric EventSet on a cycle timer and the
// "display" renders the trace as an ASCII chart / CSV trace file (the
// paper notes the backend "can save a trace file for later off-line
// analysis").  Experiment E2 regenerates the Fig. 2 shape with a
// multi-phase program.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/library.h"

namespace papirepro::tools {

class Perfometer {
 public:
  struct Point {
    std::uint64_t usec = 0;        ///< sample timestamp
    long long value = 0;           ///< cumulative metric value
    double rate_per_sec = 0;       ///< metric rate over the last interval
    /// Async sampling-pipeline snapshot at this point (cumulative
    /// library-wide counters; zero when the pipeline is idle).
    std::uint64_t samples_dispatched = 0;
    std::uint64_t samples_dropped = 0;
  };

  /// Samples `metric` every `interval_cycles` substrate cycles.
  Perfometer(papi::Library& library, papi::EventId metric,
             std::uint64_t interval_cycles);

  /// Select a different metric (perfometer's "Select Metric" button);
  /// only while stopped.
  Status select_metric(papi::EventId metric);

  Status start();
  Status stop();
  bool running() const noexcept { return running_; }

  const std::vector<Point>& trace() const noexcept { return trace_; }

  /// ASCII rendering of the rate trace (the Fig. 2 view).
  std::string render_ascii(std::size_t width = 72,
                           std::size_t height = 12) const;
  /// Trace file for off-line analysis.
  std::string to_csv() const;

 private:
  void sample();

  papi::Library& library_;
  papi::EventId metric_;
  std::uint64_t interval_cycles_;
  int set_handle_ = -1;
  /// Cached between start() and stop(): sample() runs on the timer path,
  /// so it uses the batched read API with no per-sample handle lookup.
  papi::EventSet* set_ = nullptr;
  int timer_id_ = -1;
  bool running_ = false;
  std::uint64_t last_usec_ = 0;
  long long last_value_ = 0;
  std::vector<Point> trace_;
};

}  // namespace papirepro::tools
