#include "tools/tracer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace papirepro::tools {

EventTracer::EventTracer(papi::Library& library,
                         std::vector<papi::EventId> metrics,
                         std::uint64_t interval_cycles,
                         sim::Machine* machine, std::int64_t marker_base)
    : library_(library),
      metrics_(std::move(metrics)),
      interval_cycles_(interval_cycles),
      machine_(machine),
      marker_base_(marker_base) {}

Status EventTracer::start() {
  if (running_) return Error::kIsRunning;
  if (metrics_.empty() || interval_cycles_ == 0) return Error::kInvalid;
  if (!library_.substrate().supports_multiplex()) {
    return Error::kNoSupport;  // needs the cycle-timer service
  }

  auto handle = library_.create_event_set();
  if (!handle.ok()) return handle.error();
  set_handle_ = handle.value();
  papi::EventSet* set = library_.event_set(set_handle_).value();
  for (const papi::EventId& id : metrics_) {
    Status added = set->add_event(id);
    if (added.error() == Error::kConflict && !set->multiplexed()) {
      PAPIREPRO_RETURN_IF_ERROR(set->enable_multiplex());
      added = set->add_event(id);
    }
    if (!added.ok()) {
      (void)library_.destroy_event_set(set_handle_);
      set_handle_ = -1;
      return added;
    }
  }
  PAPIREPRO_RETURN_IF_ERROR(set->start());

  intervals_.clear();
  markers_.clear();
  last_usec_ = library_.real_usec();
  last_values_.assign(metrics_.size(), 0);
  auto timer =
      library_.substrate().add_timer(interval_cycles_, [this] { sample(); });
  if (!timer.ok()) {
    (void)set->stop();
    return timer.error();
  }
  timer_id_ = timer.value();

  if (machine_ != nullptr) {
    saved_probe_handler_ = machine_->probe_handler();
    machine_->set_probe_handler(
        [this](std::int64_t id, sim::Machine& m) {
          if (id >= marker_base_) {
            markers_.push_back({library_.real_usec(), id - marker_base_});
          }
          if (saved_probe_handler_) saved_probe_handler_(id, m);
        });
  }
  running_ = true;
  return Error::kOk;
}

void EventTracer::sample() {
  if (!running_) return;
  auto set = library_.event_set(set_handle_);
  if (!set.ok()) return;
  std::vector<long long> values(metrics_.size());
  if (!set.value()->read(values).ok()) return;
  const std::uint64_t now = library_.real_usec();
  Interval iv;
  iv.start_usec = last_usec_;
  iv.end_usec = now;
  iv.estimated = set.value()->multiplexed();
  iv.deltas.resize(metrics_.size());
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    iv.deltas[i] = values[i] - last_values_[i];
  }
  intervals_.push_back(std::move(iv));
  last_usec_ = now;
  last_values_ = std::move(values);
}

Status EventTracer::stop() {
  if (!running_) return Error::kNotRunning;
  sample();  // close the final interval
  (void)library_.substrate().cancel_timer(timer_id_);
  timer_id_ = -1;
  if (machine_ != nullptr) {
    machine_->set_probe_handler(saved_probe_handler_);
    saved_probe_handler_ = nullptr;
  }
  if (auto set = library_.event_set(set_handle_); set.ok()) {
    (void)set.value()->stop();
    (void)library_.destroy_event_set(set_handle_);
  }
  set_handle_ = -1;
  running_ = false;
  return Error::kOk;
}

std::string EventTracer::render_timeline() const {
  std::ostringstream os;
  os << std::left << std::setw(22) << "interval (us)";
  for (const papi::EventId& id : metrics_) {
    auto name = library_.event_name(id);
    os << std::right << std::setw(14)
       << (name.ok() ? name.value() : std::string("metric"));
  }
  os << "\n";
  std::size_t marker_cursor = 0;
  for (const Interval& iv : intervals_) {
    while (marker_cursor < markers_.size() &&
           markers_[marker_cursor].usec <= iv.end_usec) {
      os << "  -- marker " << markers_[marker_cursor].id << " @ "
         << markers_[marker_cursor].usec << " us --\n";
      ++marker_cursor;
    }
    std::ostringstream range;
    range << "[" << iv.start_usec << ", " << iv.end_usec << ")";
    os << std::left << std::setw(22) << range.str();
    bool clamped = false;
    for (long long d : iv.deltas) {
      // A multiplexed interval is a difference of two estimates: a
      // negative delta is an estimator artifact, not a count.  Clamp it
      // and flag the row instead of printing an impossible value.
      if (iv.estimated && d < 0) {
        clamped = true;
        d = 0;
      }
      os << std::right << std::setw(14) << d;
    }
    if (iv.estimated) os << (clamped ? "  ~clamped" : "  ~est");
    os << "\n";
  }
  return os.str();
}

std::string EventTracer::to_csv() const {
  std::ostringstream os;
  os << "start_usec,end_usec";
  for (const papi::EventId& id : metrics_) {
    auto name = library_.event_name(id);
    os << ',' << (name.ok() ? name.value() : std::string("metric"));
  }
  os << ",estimated\n";
  for (const Interval& iv : intervals_) {
    os << iv.start_usec << ',' << iv.end_usec;
    for (long long d : iv.deltas) {
      // Multiplexed deltas are estimator differences; negatives are
      // clamped here and the row carries the estimated flag so the
      // consumer knows the values are not exact counts.
      if (iv.estimated && d < 0) d = 0;
      os << ',' << d;
    }
    os << ',' << (iv.estimated ? 1 : 0) << "\n";
  }
  return os.str();
}

}  // namespace papirepro::tools
