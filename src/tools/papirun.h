// papirun: "a papirun utility that will allow users to execute a program
// and easily collect basic timing and hardware counter data is under
// development" (Section 5).  We finish the thought: run a named workload
// on a named platform, count a list of events (multiplexing
// automatically when they exceed the hardware counters, which papirun
// enables deliberately — it is a low-level consumer), and print a report
// with timing from the portable timers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace papirepro::tools {

struct PapirunRequest {
  std::string platform = "sim-x86";
  std::string workload = "matmul";
  std::int64_t n = 0;  ///< workload size knob (0 = default)
  /// Event names ("PAPI_*" or native); empty = a basic default set.
  std::vector<std::string> events;
  bool allow_multiplex = true;
  bool use_estimation = false;  ///< sim-alpha DADD mode
  /// Report the registered components (id, namespace, counter budget)
  /// instead of running the workload.
  bool list_components = false;
  /// Append a per-component health report (state, quarantines,
  /// fail-fasts) to the run output.
  bool health_report = false;
  /// Treat warnings (disabled/quarantined component for a requested
  /// event) as fatal: the CLI exits nonzero when any were emitted.
  bool strict = false;
};

struct PapirunResult {
  std::string report;  ///< formatted table
  /// Human-readable warnings (one per line, no trailing newline): a
  /// requested event's component was disabled or quarantined.  The CLI
  /// prints these to stderr; with `strict` it also exits nonzero.
  std::vector<std::string> warnings;
  std::vector<std::pair<std::string, long long>> counts;
  /// Namespace prefixes of the registered components, in id order
  /// ("cpu", "mem", "net").
  std::vector<std::string> components;
  std::uint64_t real_usec = 0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  bool multiplexed = false;
  /// use_estimation was requested but the sampling service refused; the
  /// run fell back to direct counting (degradation ladder).
  bool estimation_degraded = false;
  /// Library self-telemetry for this run, sourced from the registry.
  std::uint64_t telemetry_starts = 0;
  std::uint64_t telemetry_reads = 0;
  std::uint64_t telemetry_mux_rotations = 0;
  std::uint64_t telemetry_retry_attempts = 0;
  /// Cycles spent inside the library divided by the measured window
  /// (EventSet::overhead_ratio) — the paper's instrumentation-cost
  /// number, attached to every run report.
  double overhead_ratio = 0.0;
};

Result<PapirunResult> papirun(const PapirunRequest& request);

}  // namespace papirepro::tools
