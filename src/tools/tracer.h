// Interval tracing for timeline tools (Section 3): "Collecting PAPI data
// for various events over intervals of time and displaying this data
// alongside the Vampir timeline view enables correlation of various
// event frequencies with message passing behavior."  The tracer samples
// a set of metrics on a fixed cycle interval and records phase markers
// the program emits through probe instructions, producing a merged
// timeline that can be dumped as a Vampir-style text trace or CSV.
//
// Unlike perfometer (one metric, live display), the tracer is the
// multi-metric offline path a tool like Vampir or TAU's trace mode
// consumes.
//
// Caveat (the Section 2 multiplexing caveat, sharpened for tracing):
// when the metric list does not fit the hardware counters, the tracer
// multiplexes, and each interval delta becomes the difference of two
// *estimates* — it fluctuates (and can even go negative) as groups
// rotate, though the deltas still sum to a converged total.  For exact
// per-interval counts, pick a metric set that co-schedules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/library.h"
#include "sim/machine.h"

namespace papirepro::tools {

class EventTracer {
 public:
  struct Interval {
    std::uint64_t start_usec = 0;
    std::uint64_t end_usec = 0;
    /// Metric deltas over this interval, parallel to the metric list.
    std::vector<long long> deltas;
    /// True when the set was multiplexing at sample time: the deltas are
    /// differences of two scaled estimates, so they fluctuate and can go
    /// negative even though they sum to a converged total.  Exports
    /// clamp negatives to 0 and mark the row instead of publishing
    /// impossible counts.
    bool estimated = false;
  };
  struct Marker {
    std::uint64_t usec = 0;
    std::int64_t id = 0;
  };

  /// Samples `metrics` every `interval_cycles`.  If `machine` is given,
  /// probe instructions with ids >= `marker_base` are recorded as phase
  /// markers (program-emitted trace events).
  EventTracer(papi::Library& library, std::vector<papi::EventId> metrics,
              std::uint64_t interval_cycles,
              sim::Machine* machine = nullptr,
              std::int64_t marker_base = 1000);

  Status start();
  Status stop();
  bool running() const noexcept { return running_; }

  const std::vector<Interval>& intervals() const noexcept {
    return intervals_;
  }
  const std::vector<Marker>& markers() const noexcept { return markers_; }
  const std::vector<papi::EventId>& metrics() const noexcept {
    return metrics_;
  }

  /// Vampir-style text timeline: one row per interval, one column per
  /// metric rate, markers interleaved.
  std::string render_timeline() const;
  std::string to_csv() const;

 private:
  void sample();

  papi::Library& library_;
  std::vector<papi::EventId> metrics_;
  std::uint64_t interval_cycles_;
  sim::Machine* machine_;
  std::int64_t marker_base_;

  int set_handle_ = -1;
  int timer_id_ = -1;
  bool running_ = false;
  std::uint64_t last_usec_ = 0;
  std::vector<long long> last_values_;
  std::vector<Interval> intervals_;
  std::vector<Marker> markers_;
  sim::Machine::ProbeHandler saved_probe_handler_;
};

}  // namespace papirepro::tools
