#include "tools/memprof.h"

#include <iomanip>
#include <sstream>

namespace papirepro::tools {

MemoryProfiler::MemoryProfiler(sim::Machine& machine,
                               std::vector<sim::MemoryRegion> regions)
    : machine_(machine) {
  stats_.reserve(regions.size() + 1);
  for (auto& r : regions) stats_.push_back({std::move(r)});
  stats_.push_back({{"<other>", 0, 0}});
  machine_.add_listener(this);
}

MemoryProfiler::~MemoryProfiler() { machine_.remove_listener(this); }

int MemoryProfiler::region_of(std::uint64_t addr) const noexcept {
  if (last_region_ >= 0 &&
      stats_[last_region_].region.contains(addr)) {
    return last_region_;
  }
  for (std::size_t i = 0; i + 1 < stats_.size(); ++i) {
    if (stats_[i].region.contains(addr)) {
      last_region_ = static_cast<int>(i);
      return last_region_;
    }
  }
  return static_cast<int>(stats_.size()) - 1;  // <other>
}

void MemoryProfiler::on_event(sim::SimEvent event, std::uint64_t weight,
                              const sim::EventContext& ctx) {
  if (!ctx.has_addr) return;
  RegionStats* rs = nullptr;
  switch (event) {
    case sim::SimEvent::kL1DAccess:
      rs = &stats_[region_of(ctx.addr)];
      rs->accesses += weight;
      break;
    case sim::SimEvent::kL1DMiss:
      rs = &stats_[region_of(ctx.addr)];
      rs->l1_misses += weight;
      break;
    case sim::SimEvent::kL2Miss:
      rs = &stats_[region_of(ctx.addr)];
      rs->l2_misses += weight;
      break;
    case sim::SimEvent::kDTlbMiss:
      rs = &stats_[region_of(ctx.addr)];
      rs->tlb_misses += weight;
      break;
    default:
      break;
  }
}

const RegionStats* MemoryProfiler::find(std::string_view name) const
    noexcept {
  for (const RegionStats& rs : stats_) {
    if (rs.region.name == name) return &rs;
  }
  return nullptr;
}

std::string MemoryProfiler::report() const {
  std::ostringstream os;
  os << std::left << std::setw(12) << "object" << std::right
     << std::setw(12) << "bytes" << std::setw(14) << "accesses"
     << std::setw(12) << "L1_miss" << std::setw(12) << "L2_miss"
     << std::setw(12) << "TLB_miss" << std::setw(12) << "L1 rate"
     << "\n";
  for (const RegionStats& rs : stats_) {
    if (rs.accesses == 0 && rs.region.name == "<other>") continue;
    os << std::left << std::setw(12) << rs.region.name << std::right
       << std::setw(12) << rs.region.bytes << std::setw(14)
       << rs.accesses << std::setw(12) << rs.l1_misses << std::setw(12)
       << rs.l2_misses << std::setw(12) << rs.tlb_misses << std::setw(11)
       << std::fixed << std::setprecision(2) << 100.0 * rs.l1_miss_rate()
       << "%\n";
  }
  return os.str();
}

void MemoryProfiler::reset() {
  for (RegionStats& rs : stats_) {
    rs.accesses = rs.l1_misses = rs.l2_misses = rs.tlb_misses = 0;
  }
}

}  // namespace papirepro::tools
