// papicollect: the cluster-scale consumer of the aggregation service —
// perfometer's "runtime trace" idea scaled from one process to a rank
// population.  N simulated ranks run a ring exchange on real threads
// sharing one library; a collector thread polls snapshot_all, encodes
// each rank's published snapshot into the compact wire format, ingests
// it into an aggregate::Collector, reduces rank -> node -> cluster, and
// publishes each reduction through the seqlock snapshot region exactly
// as an out-of-process monitor would consume it.  The counting threads
// are never stopped or signalled: every sample is served from seqlock
// publications, and the result carries the telemetry proof.
#pragma once

#include <cstdint>
#include <string>

#include "aggregate/collector.h"
#include "aggregate/shm_region.h"
#include "common/status.h"

namespace papirepro::tools {

struct PapicollectRequest {
  std::string platform = "sim-x86";
  std::uint32_t ranks = 8;
  std::int64_t iters = 60;         ///< ring iterations per rank
  std::int64_t work = 2'000;       ///< compute per iteration
  std::uint32_t ranks_per_node = 4;  ///< reduction-tree fan-in
  std::uint32_t top_n = 4;         ///< rows in the live top-N table
  /// Age-out knob forwarded to the collector (0 = off).
  std::uint32_t stale_reduce_rounds = 0;
  /// Overload one rank (4x work) so the top-N table has a story;
  /// ranks stay balanced when false.
  bool imbalance = true;
};

struct PapicollectResult {
  std::string report;  ///< formatted run summary + top-N table
  /// Final cluster reduction (metric 0 = PAPI_TOT_CYC,
  /// 1 = PAPI_TOT_INS) and its per-poll accounting.
  aggregate::ClusterReduction cluster;
  aggregate::CollectorStats collector_stats;
  /// The final reduction as read back through the seqlock region — what
  /// an out-of-process poller would have seen.
  aggregate::RegionSnapshot region;
  /// Top ranks by metric 0 at the final reduction, descending.
  std::vector<aggregate::RankValue> top;
  std::uint32_t polls = 0;  ///< collector polling passes completed
  /// PAPI_stop count over the whole run: exactly `ranks` (one per rank
  /// at thread exit) proves the collector never stopped a counting
  /// thread to sample it.
  std::uint64_t total_stops = 0;
  std::uint64_t total_starts = 0;
};

Result<PapicollectResult> papicollect(const PapicollectRequest& request);

}  // namespace papirepro::tools
