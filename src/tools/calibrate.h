// calibrate: the PAPI validation utility.  "These test programs can take
// the form of micro-benchmarks for which the expected counts are known."
// Runs kernels with analytically-known event counts on a platform and
// reports measured vs expected, the relative error, and the
// instrumentation overhead — the utility behind the Section 4 finding
// that the DADD sampling substrate converges to expected counts "while
// incurring only one to two percent overhead, as compared to up to 30
// percent on other substrates that use direct counting."
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/presets.h"
#include "pmu/platform.h"
#include "sim/kernels.h"

namespace papirepro::tools {

struct CalibrationOptions {
  /// Periodic counter reads every N cycles, emulating fine-grained
  /// direct-counting instrumentation; 0 = one start/stop pair around the
  /// whole run.  Each read charges the platform's system-call cost, so
  /// this knob sweeps the instrumentation-overhead axis.
  std::uint64_t read_interval_cycles = 0;
  /// Use DADD-style estimation from samples (sim-alpha only).
  bool use_estimation = false;
  std::uint64_t max_instructions = 0;  ///< 0 = run to completion
};

struct CalibrationRow {
  std::string kernel;
  std::string event;  ///< preset name
  double expected = 0;
  double measured = 0;
  double rel_error = 0;  ///< |measured-expected| / expected
  std::uint64_t overhead_cycles = 0;
  double overhead_fraction = 0;  ///< overhead / total cycles
  /// Estimation was requested but unavailable; the row was measured by
  /// direct counting instead (the degradation ladder's loud fallback).
  bool estimation_degraded = false;
};

/// Runs `workload` on `platform`, measuring every preset whose expected
/// count the kernel declares; one row per (kernel, preset).
Result<std::vector<CalibrationRow>> calibrate_workload(
    const sim::Workload& workload,
    const pmu::PlatformDescription& platform,
    const CalibrationOptions& options = {});

/// Formats rows as the calibrate utility's table.
std::string render_calibration(const std::vector<CalibrationRow>& rows);

}  // namespace papirepro::tools
