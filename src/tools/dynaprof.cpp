#include "tools/dynaprof.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

#include "substrate/sim_substrate.h"

namespace papirepro::tools {

sim::Program instrument_program(const sim::Program& program,
                                const std::vector<std::string>& functions) {
  const auto& old_code = program.code();
  const auto& old_funcs = program.functions();

  auto instrumented = [&](std::size_t func_idx) {
    if (functions.empty()) return true;
    return std::find(functions.begin(), functions.end(),
                     old_funcs[func_idx].name) != functions.end();
  };

  // Pass 1: emit, recording where each old instruction lands.  When a
  // probe is inserted at a site, the old instruction maps to the probe
  // so that calls and branches reach the probe first.
  std::vector<sim::Instruction> new_code;
  new_code.reserve(old_code.size() + 2 * old_funcs.size() + 4);
  std::vector<std::int32_t> new_index_of(old_code.size() + 1, -1);

  for (std::size_t i = 0; i < old_code.size(); ++i) {
    new_index_of[i] = static_cast<std::int32_t>(new_code.size());
    // Entry probes.
    for (std::size_t f = 0; f < old_funcs.size(); ++f) {
      if (old_funcs[f].entry == static_cast<std::int32_t>(i) &&
          instrumented(f)) {
        sim::Instruction probe{.op = sim::Opcode::kProbe,
                               .imm = entry_probe_id(f)};
        probe.line = old_code[i].line;
        new_code.push_back(probe);
      }
    }
    // Exit probes: before every ret/halt of an instrumented function.
    const sim::Opcode op = old_code[i].op;
    if (op == sim::Opcode::kRet || op == sim::Opcode::kHalt) {
      for (std::size_t f = 0; f < old_funcs.size(); ++f) {
        if (old_funcs[f].contains(static_cast<std::int64_t>(i)) &&
            instrumented(f)) {
          sim::Instruction probe{.op = sim::Opcode::kProbe,
                                 .imm = exit_probe_id(f)};
          probe.line = old_code[i].line;
          new_code.push_back(probe);
        }
      }
    }
    new_code.push_back(old_code[i]);
  }
  new_index_of[old_code.size()] = static_cast<std::int32_t>(new_code.size());

  // Pass 2: retarget branches and calls.
  for (sim::Instruction& ins : new_code) {
    if (ins.target >= 0) {
      ins.target = new_index_of[ins.target];
    }
  }

  // Rebuild function boundary records.
  std::vector<sim::Function> new_funcs;
  new_funcs.reserve(old_funcs.size());
  for (const sim::Function& f : old_funcs) {
    new_funcs.push_back(
        {f.name, new_index_of[f.entry], new_index_of[f.end]});
  }
  return sim::Program::from_parts(std::move(new_code),
                                  std::move(new_funcs));
}

DynaprofSession::DynaprofSession(const sim::Workload& workload,
                                 const pmu::PlatformDescription& platform,
                                 DynaprofOptions options)
    : workload_(workload),
      platform_(platform),
      options_(std::move(options)) {}

Status DynaprofSession::run() {
  instrumented_ = instrument_program(workload_.program, options_.functions);
  machine_ = std::make_unique<sim::Machine>(instrumented_,
                                            platform_.machine);
  if (workload_.setup) workload_.setup(*machine_);

  library_ = std::make_unique<papi::Library>(
      std::make_unique<papi::SimSubstrate>(*machine_, platform_));
  auto handle = library_->create_event_set();
  if (!handle.ok()) return handle.error();
  auto set = library_->event_set(handle.value());
  if (!set.ok()) return set.error();
  set_ = set.value();
  for (const papi::EventId& id : options_.metrics) {
    PAPIREPRO_RETURN_IF_ERROR(set_->add_event(id));
  }

  results_.clear();
  results_.resize(instrumented_.functions().size());
  for (std::size_t f = 0; f < results_.size(); ++f) {
    results_[f].name = instrumented_.functions()[f].name;
    results_[f].inclusive.assign(options_.metrics.size(), 0);
    results_[f].exclusive.assign(options_.metrics.size(), 0);
  }

  attached_ = options_.attach_after_instructions == 0;
  machine_->set_probe_handler(
      [this](std::int64_t id, sim::Machine& m) {
        if (!attached_) {
          // Not yet attached: the probe retires but costs nothing and
          // collects nothing (the Dyninst "attach later" mode).
          if (m.retired() >= options_.attach_after_instructions) {
            attached_ = true;
          } else {
            return;
          }
        }
        on_probe(id);
      });

  PAPIREPRO_RETURN_IF_ERROR(set_->start());
  machine_->run();
  std::vector<long long> final_values(options_.metrics.size());
  PAPIREPRO_RETURN_IF_ERROR(set_->stop(final_values));
  return Error::kOk;
}

void DynaprofSession::on_probe(std::int64_t probe_id) {
  const auto func = static_cast<std::size_t>(probe_id / 2);
  const bool is_entry = probe_id % 2 == 0;
  assert(func < results_.size());

  std::vector<long long> now(options_.metrics.size(), 0);
  if (set_ != nullptr && !options_.metrics.empty()) {
    (void)set_->read(now);  // the PAPI probe: a real counter read
  }
  const std::uint64_t wall = library_->real_usec();

  if (is_entry) {
    stack_.push_back({func, now, wall,
                      std::vector<long long>(options_.metrics.size(), 0),
                      0});
    return;
  }

  if (stack_.empty() || stack_.back().function_index != func) {
    return;  // unbalanced probe (exit without entry); ignore
  }
  Frame frame = std::move(stack_.back());
  stack_.pop_back();

  FunctionStats& stats = results_[func];
  ++stats.calls;
  std::vector<long long> inclusive(options_.metrics.size());
  for (std::size_t m = 0; m < options_.metrics.size(); ++m) {
    inclusive[m] = now[m] - frame.values_at_entry[m];
    stats.inclusive[m] += inclusive[m];
    stats.exclusive[m] += inclusive[m] - frame.child_accum[m];
  }
  const std::uint64_t wall_incl = wall - frame.wall_at_entry;
  stats.wall_usec_inclusive += wall_incl;

  if (!stack_.empty()) {
    Frame& parent = stack_.back();
    for (std::size_t m = 0; m < options_.metrics.size(); ++m) {
      parent.child_accum[m] += inclusive[m];
    }
    parent.wall_child_accum += wall_incl;
  }
}

std::string DynaprofSession::report() const {
  std::ostringstream os;
  os << "dynaprof report (platform " << platform_.name << ")\n";
  os << std::left << std::setw(16) << "function" << std::right
     << std::setw(10) << "calls";
  for (const papi::EventId& id : options_.metrics) {
    auto name = library_ != nullptr ? library_->event_name(id)
                                    : Result<std::string>(Error::kNoInit);
    os << std::setw(16) << (name.ok() ? name.value() : "metric")
       << std::setw(16) << "(exclusive)";
  }
  if (options_.wallclock) os << std::setw(12) << "wall_us";
  os << "\n";
  for (const FunctionStats& f : results_) {
    if (f.calls == 0) continue;
    os << std::left << std::setw(16) << f.name << std::right
       << std::setw(10) << f.calls;
    for (std::size_t m = 0; m < options_.metrics.size(); ++m) {
      os << std::setw(16) << f.inclusive[m] << std::setw(16)
         << f.exclusive[m];
    }
    if (options_.wallclock) os << std::setw(12) << f.wall_usec_inclusive;
    os << "\n";
  }
  return os.str();
}

}  // namespace papirepro::tools
