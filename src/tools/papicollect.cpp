#include "tools/papicollect.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/library.h"
#include "sim/comm.h"
#include "sim/machine.h"
#include "substrate/sim_substrate.h"

namespace papirepro::tools {

namespace {

constexpr std::uint32_t kMetricsPerRank = 2;  // TOT_CYC, TOT_INS

std::string format_report(const PapicollectRequest& request,
                          const PapicollectResult& result) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line,
                "papicollect: %u ranks x %lld iters on %s, fan-in %u "
                "(%zu nodes)\n",
                request.ranks, static_cast<long long>(request.iters),
                request.platform.c_str(), request.ranks_per_node,
                static_cast<std::size_t>((request.ranks +
                                          request.ranks_per_node - 1) /
                                         request.ranks_per_node));
  out += line;
  std::snprintf(line, sizeof line,
                "collector: %u polls, %llu frames (%llu bytes), "
                "%llu decode errors, %llu reductions\n",
                result.polls,
                static_cast<unsigned long long>(
                    result.collector_stats.frames),
                static_cast<unsigned long long>(
                    result.collector_stats.bytes),
                static_cast<unsigned long long>(
                    result.collector_stats.decode_errors),
                static_cast<unsigned long long>(
                    result.collector_stats.reductions));
  out += line;
  static const char* const kMetricNames[kMetricsPerRank] = {
      "PAPI_TOT_CYC", "PAPI_TOT_INS"};
  out += "cluster reduction (live ranks: " +
         std::to_string(result.cluster.ranks_live) + ", aged out: " +
         std::to_string(result.cluster.ranks_stale) + ")\n";
  std::snprintf(line, sizeof line, "%14s %12s %12s %14s %12s %12s\n",
                "metric", "min", "max", "avg", "p50", "p99");
  out += line;
  for (std::uint32_t m = 0;
       m < result.cluster.num_metrics && m < kMetricsPerRank; ++m) {
    const aggregate::MetricStats& ms = result.cluster.metrics[m];
    std::snprintf(line, sizeof line,
                  "%14s %12lld %12lld %14.1f %12llu %12llu\n",
                  kMetricNames[m], ms.min, ms.max, ms.avg,
                  static_cast<unsigned long long>(ms.p50),
                  static_cast<unsigned long long>(ms.p99));
    out += line;
  }
  out += "top ranks by " + std::string(kMetricNames[0]) + ":\n";
  for (const aggregate::RankValue& rv : result.top) {
    std::snprintf(line, sizeof line, "%10s %4u %12lld\n", "rank",
                  rv.rank, rv.value);
    out += line;
  }
  std::snprintf(line, sizeof line,
                "counting threads: %llu starts, %llu stops (one per "
                "rank; the collector sampled %u times without stopping "
                "any)\n",
                static_cast<unsigned long long>(result.total_starts),
                static_cast<unsigned long long>(result.total_stops),
                result.polls);
  out += line;
  return out;
}

}  // namespace

Result<PapicollectResult> papicollect(const PapicollectRequest& request) {
  if (request.ranks == 0 || request.ranks > 4096 ||
      request.ranks_per_node == 0 || request.iters <= 0 ||
      request.work <= 0) {
    return Error::kInvalid;
  }
  const pmu::PlatformDescription* platform =
      pmu::find_platform(request.platform);
  if (platform == nullptr) return Error::kNoSupport;

  const std::size_t nranks = request.ranks;
  std::vector<sim::Workload> workloads;
  std::vector<std::unique_ptr<sim::Machine>> machines;
  std::vector<sim::Machine*> raw;
  workloads.reserve(nranks);
  machines.reserve(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    const std::int64_t work = (request.imbalance && r == nranks / 2)
                                  ? request.work * 4
                                  : request.work;
    workloads.push_back(sim::make_ring_rank(r, nranks, request.iters,
                                            work, /*chunk_words=*/16));
    machines.push_back(std::make_unique<sim::Machine>(
        workloads.back().program, platform->machine));
    raw.push_back(machines.back().get());
  }

  papi::SimSubstrateOptions options;
  options.charge_costs = false;
  auto owned = std::make_unique<papi::SimSubstrate>(*machines[0],
                                                    *platform, options);
  papi::SimSubstrate* substrate = owned.get();
  papi::Library library(std::move(owned));

  // handle_of_rank is written once by each rank's thread (before its
  // set starts) and read by the collector thread; atomics make the
  // handshake race-free.  -1 = not yet created.
  std::vector<std::atomic<int>> handle_of_rank(nranks);
  for (auto& h : handle_of_rank) h.store(-1, std::memory_order_relaxed);
  std::vector<papi::EventSet*> sets(nranks, nullptr);
  std::vector<std::vector<long long>> finals(nranks);

  aggregate::CollectorConfig cc;
  cc.max_ranks = request.ranks;
  cc.ranks_per_node = request.ranks_per_node;
  cc.num_metrics = kMetricsPerRank;
  cc.stale_reduce_rounds = request.stale_reduce_rounds;
  aggregate::Collector collector(cc, &library.telemetry());
  aggregate::SharedSnapshotRegion region;

  // The collector thread: poll published snapshots, translate handle ->
  // rank, encode, ingest, reduce, publish.  It never touches an
  // EventSet or a Machine — only the library's snapshot surface.
  std::atomic<bool> collecting{true};
  std::uint32_t polls = 0;
  std::vector<papi::SnapshotEntry> snap_entries;
  std::vector<long long> snap_values;
  std::vector<std::uint8_t> wire;
  // The collector's clock is the newest publication stamp it has
  // ingested, not the machine's live cycle counter: reading the latter
  // from this thread would race the rank threads stepping it (a real
  // collector has no shared cycle clock with its remote ranks either).
  std::uint64_t collector_now = 0;
  std::thread collector_thread([&] {
    while (collecting.load(std::memory_order_acquire)) {
      if (library.snapshot_all(snap_entries, snap_values).ok() &&
          !snap_entries.empty()) {
        wire.clear();
        for (const papi::SnapshotEntry& e : snap_entries) {
          // Linear handle -> rank translation: rank populations map
          // 1:1 to sets here; real deployments would key a table.
          std::uint32_t rank = UINT32_MAX;
          for (std::size_t r = 0; r < nranks; ++r) {
            if (handle_of_rank[r].load(std::memory_order_acquire) ==
                e.handle) {
              rank = static_cast<std::uint32_t>(r);
              break;
            }
          }
          if (rank == UINT32_MAX) continue;
          if (e.pub_cycles > collector_now) collector_now = e.pub_cycles;
          (void)aggregate::encode_frame(rank, e.pub_cycles, {&e, 1},
                                        snap_values, wire);
        }
        collector.ingest(wire);
        collector.reduce(collector_now);
        region.publish(collector.cluster());
        ++polls;
      }
      std::this_thread::yield();
    }
  });

  sim::CommWorld world(raw);
  const bool all_halted = world.run_threaded(
      /*max_instructions_per_rank=*/100'000'000,
      /*thread_begin=*/
      [&](std::size_t r) {
        substrate->bind_thread_machine(*machines[r]);
        auto handle = library.create_event_set();
        if (!handle.ok()) return;
        sets[r] = library.event_set(handle.value()).value();
        (void)sets[r]->add_preset(papi::Preset::kTotCyc);
        (void)sets[r]->add_preset(papi::Preset::kTotIns);
        if (sets[r]->start().ok()) {
          // Publish the handle only once the set is counting: the
          // collector thread keys frames off this table.
          handle_of_rank[r].store(handle.value(),
                                  std::memory_order_release);
        }
      },
      /*thread_end=*/
      [&](std::size_t r) {
        if (sets[r] == nullptr) return;
        finals[r].assign(kMetricsPerRank, 0);
        (void)sets[r]->stop(finals[r]);
        (void)library.unregister_thread();
      });
  collecting.store(false, std::memory_order_release);
  collector_thread.join();
  if (!all_halted) return Error::kMisc;

  // Final pass so the result reflects every rank's last publication
  // (the collector thread may have stopped mid-interval).
  if (library.snapshot_all(snap_entries, snap_values).ok()) {
    wire.clear();
    for (const papi::SnapshotEntry& e : snap_entries) {
      for (std::size_t r = 0; r < nranks; ++r) {
        if (handle_of_rank[r].load(std::memory_order_acquire) ==
            e.handle) {
          (void)aggregate::encode_frame(static_cast<std::uint32_t>(r),
                                        e.pub_cycles, {&e, 1},
                                        snap_values, wire);
          break;
        }
      }
    }
    collector.ingest(wire);
    collector.reduce(library.real_cycles());
    region.publish(collector.cluster());
    ++polls;
  }

  PapicollectResult result;
  result.cluster = collector.cluster();
  result.collector_stats = collector.stats();
  result.polls = polls;
  result.top.resize(request.top_n);
  result.top.resize(collector.top_ranks(0, result.top));
  (void)region.read_into(result.region);
  const papi::TelemetrySnapshot t = library.telemetry_snapshot();
  result.total_starts = t.value(papi::TelemetryCounter::kStarts);
  result.total_stops = t.value(papi::TelemetryCounter::kStops);
  result.report = format_report(request, result);
  return result;
}

}  // namespace papirepro::tools
