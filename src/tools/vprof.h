// VProf-style source correlation: "This routine can be used by end-user
// tools such as VProf to collect profiling data which can then be
// correlated with application source code."  Takes a PAPI_profil bucket
// histogram and the program's debug info and aggregates samples per
// source line and per function — also the measurement instrument for
// experiment E6 (what fraction of samples lands on the correct
// line/function under skidded vs precise attribution).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/profile.h"
#include "sim/program.h"

namespace papirepro::tools {

struct LineProfile {
  std::uint32_t line = 0;
  std::uint64_t samples = 0;
  double fraction = 0;  ///< of in-range samples
};

struct FunctionProfile {
  std::string name;
  std::uint64_t samples = 0;
  double fraction = 0;
};

/// Aggregates profil buckets per source line, descending by samples.
std::vector<LineProfile> correlate_lines(const papi::ProfileBuffer& buffer,
                                         const sim::Program& program);

/// Aggregates profil buckets per function, descending by samples.
std::vector<FunctionProfile> correlate_functions(
    const papi::ProfileBuffer& buffer, const sim::Program& program);

/// Fraction of samples attributed to instruction index `expected_index`
/// exactly / within the same source line / within the same function —
/// the three attribution-accuracy granularities of experiment E6.
struct AttributionAccuracy {
  double exact = 0;
  double same_line = 0;
  double same_function = 0;
  std::uint64_t total_samples = 0;
};
AttributionAccuracy attribution_accuracy(const papi::ProfileBuffer& buffer,
                                         const sim::Program& program,
                                         std::int64_t expected_index);

/// Annotated listing: per-instruction sample counts next to disassembly.
std::string render_annotated(const papi::ProfileBuffer& buffer,
                             const sim::Program& program,
                             std::uint64_t min_samples = 1);

}  // namespace papirepro::tools
