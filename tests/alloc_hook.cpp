// Global operator-new counting hook for the test binary (declared in
// test_util.h).  Every replaceable allocation function funnels through a
// relaxed atomic counter, so tests can assert that a code path performs
// zero heap allocations — the steady-state counter hot-path guarantee.
#include <atomic>
#include <cstdlib>
#include <new>

namespace papirepro::test {

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

std::uint64_t allocation_count() {
  return g_allocation_count.load(std::memory_order_relaxed);
}

}  // namespace papirepro::test

namespace {

void* counted_alloc(std::size_t size) {
  papirepro::test::g_allocation_count.fetch_add(1,
                                                std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  papirepro::test::g_allocation_count.fetch_add(1,
                                                std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) !=
      0) {
    return nullptr;
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned_alloc(size, align)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
