// Thread support: N threads each drive their own simulated machine and
// their own running EventSet through one shared Library — the per-thread
// one-running-EventSet rule.  These tests are the tier-1 gate for the
// CounterContext refactor and are expected to run clean under TSan.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/library.h"
#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::SimFixture;

// Deterministic reference: PAPI_TOT_INS for saxpy(n) on sim-x86 with
// cost charging off, measured single-threaded.
long long reference_tot_ins(std::int64_t n) {
  SimFixture f(sim::make_saxpy(n), pmu::sim_x86(), {.charge_costs = false});
  EventSet& set = f.new_set();
  EXPECT_TRUE(set.add_preset(Preset::kTotIns).ok());
  EXPECT_TRUE(set.start().ok());
  f.machine->run();
  long long v[1] = {0};
  EXPECT_TRUE(set.stop(v).ok());
  return v[0];
}

TEST(Threading, EightThreadsCountIndependently) {
  constexpr int kThreads = 8;

  // One machine per simulated rank, each over a different-sized saxpy so
  // every thread's expected count is distinct.
  std::vector<sim::Workload> workloads;
  std::vector<std::unique_ptr<sim::Machine>> machines;
  std::vector<long long> expected(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    const std::int64_t n = 500 * (t + 1);
    workloads.push_back(sim::make_saxpy(n));
    machines.push_back(std::make_unique<sim::Machine>(
        workloads.back().program, pmu::sim_x86().machine));
    if (workloads.back().setup) workloads.back().setup(*machines.back());
    expected[t] = reference_tot_ins(n);
  }

  auto sub = std::make_unique<SimSubstrate>(
      *machines[0], pmu::sim_x86(), SimSubstrateOptions{.charge_costs = false});
  SimSubstrate* substrate = sub.get();
  Library library(std::move(sub));

  // gtest assertions are main-thread-only; workers record outcomes.
  std::vector<long long> got(kThreads, -1);
  // (unsigned char, not bool: vector<bool> packs bits — a data race.)
  std::vector<unsigned char> clean(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      substrate->bind_thread_machine(*machines[t]);
      auto handle = library.create_event_set();
      if (!handle.ok()) return;
      auto set = library.event_set(handle.value());
      if (!set.ok() || !set.value()->add_preset(Preset::kTotIns).ok()) {
        return;
      }
      if (!set.value()->start().ok()) return;
      machines[t]->run();
      long long v[1] = {0};
      if (!set.value()->stop(v).ok()) return;
      got[t] = v[0];
      clean[t] = library.destroy_event_set(handle.value()).ok() &&
                 library.unregister_thread().ok();
    });
  }
  for (auto& th : threads) th.join();

  // All eight ran concurrently (no spurious kIsRunning from another
  // thread's set), and each observed exactly its own machine's count.
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(clean[t]) << "thread " << t;
    EXPECT_EQ(got[t], expected[t]) << "thread " << t;
  }
  EXPECT_EQ(library.num_threads(), 0u);  // all unregistered
}

TEST(Threading, SameThreadSecondStartIsRunning) {
  // Regression: the rule became per-thread, not gone.  Two EventSets on
  // the *same* thread still cannot run at once.
  SimFixture f(sim::make_saxpy(1'000), pmu::sim_x86());
  EventSet& first = f.new_set();
  EventSet& second = f.new_set();
  ASSERT_TRUE(first.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(second.add_preset(Preset::kTotCyc).ok());

  ASSERT_TRUE(first.start().ok());
  EXPECT_EQ(second.start().error(), Error::kIsRunning);
  EXPECT_FALSE(second.running());

  // Releasing the thread's context frees the slot for the second set.
  ASSERT_TRUE(first.stop().ok());
  EXPECT_TRUE(second.start().ok());
  EXPECT_TRUE(second.stop().ok());
}

TEST(Threading, RegisterUnregisterLifecycle) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  EXPECT_EQ(f.library->num_threads(), 0u);

  EXPECT_TRUE(f.library->register_thread().ok());
  EXPECT_EQ(f.library->num_threads(), 1u);
  EXPECT_TRUE(f.library->register_thread().ok());  // idempotent
  EXPECT_EQ(f.library->num_threads(), 1u);

  EXPECT_TRUE(f.library->unregister_thread().ok());
  EXPECT_EQ(f.library->num_threads(), 0u);
  EXPECT_EQ(f.library->unregister_thread().error(), Error::kInvalid);
}

TEST(Threading, UnregisterWhileRunningRefused) {
  SimFixture f(sim::make_saxpy(1'000), pmu::sim_x86());
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.start().ok());
  EXPECT_EQ(f.library->unregister_thread().error(), Error::kIsRunning);
  ASSERT_TRUE(set.stop().ok());
  EXPECT_TRUE(f.library->unregister_thread().ok());
}

TEST(Threading, ThreadIdUsesInstalledFunction) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  EXPECT_FALSE(f.library->threaded());
  ASSERT_TRUE(f.library->thread_init([] { return 42ul; }).ok());
  EXPECT_TRUE(f.library->threaded());
  EXPECT_EQ(f.library->thread_id().value(), 42ul);
  EXPECT_EQ(f.library->thread_init(nullptr).error(), Error::kInvalid);
}

TEST(Threading, StartAutoRegistersThread) {
  SimFixture f(sim::make_saxpy(1'000), pmu::sim_x86());
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  EXPECT_EQ(f.library->num_threads(), 0u);
  ASSERT_TRUE(set.start().ok());
  EXPECT_EQ(f.library->num_threads(), 1u);
  ASSERT_TRUE(set.stop().ok());
}

TEST(Threading, ContextCacheSurvivesReRegistration) {
  // The thread-local CounterContext cache must be invalidated by
  // unregister_thread(): a register/start/stop/unregister loop on worker
  // threads (while other workers churn the registry) must never serve a
  // stale context.  Runs under TSan in CI.
  SimFixture f(sim::make_saxpy(500), pmu::sim_x86(),
               {.charge_costs = false});
  constexpr int kThreads = 4;
  constexpr int kCycles = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kCycles; ++i) {
        auto handle = f.library->create_event_set();
        if (!handle.ok()) break;
        EventSet* set = f.library->event_set(handle.value()).value();
        long long v[1] = {0};
        const bool ok = set->add_preset(Preset::kTotIns).ok() &&
                        set->start().ok() && set->read(v).ok() &&
                        set->stop().ok() &&
                        f.library->destroy_event_set(handle.value()).ok() &&
                        f.library->unregister_thread().ok();
        if (!ok) {
          failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(f.library->num_threads(), 0u);
}

TEST(Threading, ContextCacheDistinguishesLibraries) {
  // Two Libraries alternating on one thread: the thread-local cache is
  // keyed by a per-Library instance token, so switching libraries (and
  // destroying/recreating one at a possibly-reused address) must always
  // resolve to the right registry entry.
  SimFixture a(sim::make_saxpy(1'000), pmu::sim_x86(),
               {.charge_costs = false});
  auto b = std::make_unique<SimFixture>(sim::make_saxpy(1'000),
                                        pmu::sim_x86(),
                                        SimSubstrateOptions{
                                            .charge_costs = false});
  EventSet& set_a = a.new_set();
  ASSERT_TRUE(set_a.add_preset(Preset::kTotIns).ok());
  EventSet* set_b = &b->new_set();
  ASSERT_TRUE(set_b->add_preset(Preset::kTotIns).ok());

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(set_a.start().ok());
    ASSERT_TRUE(set_b->start().ok());  // distinct library: no conflict
    ASSERT_TRUE(set_a.stop().ok());
    ASSERT_TRUE(set_b->stop().ok());
  }

  // Recreate library B: its replacement must not inherit the cached
  // context of the old instance.
  b = std::make_unique<SimFixture>(sim::make_saxpy(1'000), pmu::sim_x86(),
                                   SimSubstrateOptions{
                                       .charge_costs = false});
  set_b = &b->new_set();
  ASSERT_TRUE(set_b->add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set_b->start().ok());
  ASSERT_TRUE(set_b->stop().ok());
  ASSERT_TRUE(set_a.start().ok());
  ASSERT_TRUE(set_a.stop().ok());
}

TEST(Threading, HandleTableSafeUnderConcurrentChurn) {
  // Create/lookup/destroy EventSets from many threads at once; the
  // shared_mutex-guarded handle table must neither corrupt nor leak.
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        auto handle = f.library->create_event_set();
        if (!handle.ok() || !f.library->event_set(handle.value()).ok() ||
            !f.library->destroy_event_set(handle.value()).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(f.library->num_event_sets(), 0u);
}

}  // namespace
}  // namespace papirepro::papi
